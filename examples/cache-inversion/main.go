// cache-inversion runs a TPC-C-like trace through the pipeline with each
// DL0 inversion scheme of §3.2.1 — SetFixed50%, LineFixed50% and
// LineDynamic60% — and reports the performance each one costs and the
// inverted-line fraction each one sustains (the quantity that balances
// cell wear).
package main

import (
	"fmt"

	"penelope/internal/cache"
	"penelope/internal/pipeline"
	"penelope/internal/trace"
)

func main() {
	tr := trace.NewTrace(trace.Server, 0, 30000)

	schemes := []struct {
		name string
		opt  cache.Options
	}{
		{"baseline (none)", cache.Options{}},
		{"SetFixed50%", cache.Options{Scheme: cache.SchemeSetFixed, InvertRatio: 0.5, RotatePeriod: 2_000_000}},
		{"WayFixed50%", cache.Options{Scheme: cache.SchemeWayFixed, InvertRatio: 0.5, RotatePeriod: 2_000_000}},
		{"LineFixed50%", cache.Options{Scheme: cache.SchemeLineFixed, InvertRatio: 0.5, Seed: 7}},
		{"LineDynamic60%", func() cache.Options {
			o := cache.DefaultDynamicOptions(0.6, 0.02, 7)
			o.PeriodCycles = 10_000
			o.WarmupCycles = 400
			o.TestCycles = 400
			return o
		}()},
	}

	var baseCPI float64
	fmt.Printf("%-18s %8s %10s %10s %12s\n", "scheme", "CPI", "missrate", "loss", "invertfrac")
	for i, s := range schemes {
		cfg := pipeline.DefaultConfig()
		cfg.DL0Options = s.opt
		r := pipeline.Run(cfg, tr)
		if i == 0 {
			baseCPI = r.CPI
		}
		fmt.Printf("%-18s %8.3f %9.2f%% %9.2f%% %11.1f%%\n",
			s.name, r.CPI, r.DL0MissRate*100, (r.CPI/baseCPI-1)*100, r.DL0Inverted*100)
	}
	fmt.Println("\nThe dynamic scheme backs off when a program needs the full cache,")
	fmt.Println("keeping the inverted fraction near target at the lowest cost (Table 3).")
}
