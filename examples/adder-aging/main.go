// adder-aging builds the paper's 32-bit Ladner-Fischer adder at the gate
// level, verifies it against behavioural addition, searches the 28
// synthetic input pairs for the one that minimizes fully stressed narrow
// PMOS transistors (Figure 4), and ages the adder under realistic
// utilization with idle-time input injection (Figure 5, §4.3).
package main

import (
	"fmt"
	"math/rand"

	"penelope/internal/adder"
	"penelope/internal/nbti"
)

// operands mimics trace-sampled integer data: small magnitudes, carry-in
// almost always zero (§1.1).
type operands struct{ rng *rand.Rand }

func (o *operands) NextOperands() (a, b uint64, cin bool) {
	return uint64(o.rng.Intn(4096)), uint64(o.rng.Intn(4096)), o.rng.Intn(25) == 0
}

func main() {
	ad := adder.New32()
	fmt.Printf("Ladner-Fischer adder: %d gates, %d prefix levels\n",
		ad.Netlist().NumGates(), ad.PrefixLevels())

	// Sanity: the netlist must add.
	r := ad.Eval(0xFFFF_FFFF, 1, false)
	fmt.Printf("0xFFFFFFFF + 1 = %#x carry=%v zero=%v\n", r.Sum, r.CarryOut, r.Zero)

	// Figure 4: sweep all synthetic input pairs.
	params := nbti.DefaultParams()
	pairs := ad.SweepPairs(params)
	best := adder.BestPair(pairs)
	fmt.Printf("\ninput pair sweep (fraction of narrow PMOS fully stressed):\n")
	for _, p := range pairs {
		if p.NarrowFullyStressed < 0.01 {
			fmt.Printf("  %-4s %6.2f%%  <-- low\n", p.Label(), p.NarrowFullyStressed*100)
		}
	}
	fmt.Printf("best pair: %s (paper: 1+8 = <0,0,0> and <1,1,1>)\n", best.Label())

	// Figure 5: guardband vs. utilization with pair 1+8 injected during
	// idle periods.
	src := &operands{rng: rand.New(rand.NewSource(42))}
	fmt.Println("\nguardband by adder utilization:")
	for _, frac := range []float64{1.0, 0.30, 0.21, 0.11} {
		res := ad.GuardbandScenario(src, frac, best.I, best.J, 300, params)
		fmt.Printf("  %-18s guardband %5.1f%% (worst bias %.3f)\n",
			res.Name, res.Guardband*100, res.WorstBias)
	}
}
