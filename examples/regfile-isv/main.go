// regfile-isv demonstrates the §4.4 register-file mechanism in
// isolation: biased integer values produce heavily skewed per-bit wear,
// and the ISV invert-at-release technique (RINV register, write-port
// reuse, timestamp gating) pulls every bit back toward the balanced 50%
// that minimizes NBTI guardband and Vmin.
package main

import (
	"fmt"
	"math/rand"

	"penelope/internal/nbti"
	"penelope/internal/regfile"
)

func run(isv bool) regfile.Report {
	f := regfile.New(regfile.Config{
		Name: "int", Entries: 64, Bits: 32, WritePorts: 4,
		RINVPeriod: 128, EnableISV: isv,
	})
	rng := rand.New(rand.NewSource(9))
	type live struct {
		reg   int
		until uint64
	}
	var inFlight []live
	const cycles = 60000
	for cyc := uint64(0); cyc < cycles; cyc++ {
		keep := inFlight[:0]
		for _, l := range inFlight {
			if l.until <= cyc {
				f.Release(l.reg, cyc)
			} else {
				keep = append(keep, l)
			}
		}
		inFlight = keep
		if rng.Float64() < 0.6 {
			if r, ok := f.Allocate(cyc); ok {
				f.Write(r, value(rng), 0, cyc)
				inFlight = append(inFlight, live{reg: r, until: cyc + uint64(5+rng.Intn(40))})
			}
		}
	}
	f.Finish(cycles)
	return f.Report()
}

// value draws from the biased integer mixture of §1.1.
func value(rng *rand.Rand) uint64 {
	switch r := rng.Float64(); {
	case r < 0.3:
		return 0
	case r < 0.7:
		return uint64(rng.Intn(256))
	case r < 0.78:
		return uint64(uint32(-int32(rng.Intn(100) + 1)))
	default:
		return uint64(rng.Uint32())
	}
}

func main() {
	base := run(false)
	isv := run(true)
	params := nbti.DefaultParams()

	fmt.Printf("%4s %10s %10s\n", "bit", "baseline", "ISV")
	for i := 0; i < 32; i++ {
		fmt.Printf("%4d %9.1f%% %9.1f%%\n", i, base.Biases[i]*100, isv.Biases[i]*100)
	}
	fmt.Printf("\nworst cell bias: baseline %.1f%% -> ISV %.1f%% (paper: 89.9%% -> 48.5%%)\n",
		base.WorstBias*100, isv.WorstBias*100)
	fmt.Printf("guardband:       baseline %.1f%% -> ISV %.1f%%\n",
		params.Guardband(base.WorstBias)*100, params.Guardband(isv.WorstBias)*100)
	fmt.Printf("Vmin increase:   baseline %.1f%% -> ISV %.1f%%\n",
		params.VminIncrease(base.WorstBias)*100, params.VminIncrease(isv.WorstBias)*100)
	fmt.Printf("repair writes: %d (%d discarded for lack of ports)\n",
		isv.RepairWrites, isv.RepairDiscarded)
}
