// Fleet lifetime: age a population of chips with process variation
// through a multi-year schedule — including a mid-life wearout attack —
// and watch the baseline fleet burn through a guardband budget the
// Penelope fleet never touches. Demonstrates the lifetime engine
// directly (synthetic duty profiles) plus checkpoint/resume.
package main

import (
	"bytes"
	"fmt"
	"log"

	"penelope/internal/circuit"
	"penelope/internal/lifetime"
)

func main() {
	params := lifetime.DefaultParams()
	delay := circuit.NewDelayModel(circuit.PathStats{Depth: 21, Narrow: 18},
		params.MaxVTHShift, params.MaxGuardband)

	// Duty profiles: worst-case stress duty per structure, as the
	// experiments layer would measure them from the workload. The
	// attack phase pins every structure at full stress.
	structures := []string{"adder", "int-regfile", "fp-regfile", "scheduler"}
	baseline := []float64{1.0, 0.84, 0.97, 1.0}
	penelope := []float64{0.57, 0.64, 0.77, 0.82}
	attack := []float64{1, 1, 1, 1}

	run := func(name string, duty []float64) *lifetime.Engine {
		eng, err := lifetime.New(lifetime.Config{
			Structures: structures,
			Phases: []lifetime.Phase{
				{Name: "service", Years: 3, Duty: duty},
				{Name: "attack", Years: 1, Duty: attack},
				{Name: "service", Years: 3, Duty: duty},
			},
			Population: 20000,
			EpochYears: 30 / 365.25,
			Seed:       1,
			Sigma:      0.08,
			Limit:      lifetime.DefaultLimit,
			Params:     params,
			Delay:      delay,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Checkpoint mid-run and resume: the rest of the trajectory is
		// bit-identical to never having stopped.
		for eng.Epoch() < eng.TotalEpochs()/2 {
			eng.Step(0)
		}
		var ckpt bytes.Buffer
		if err := eng.WriteCheckpoint(&ckpt); err != nil {
			log.Fatal(err)
		}
		resumed, err := lifetime.ReadCheckpoint(&ckpt)
		if err != nil {
			log.Fatal(err)
		}
		resumed.Run(0)

		fmt.Printf("\n%s fleet (20k chips, 7 years, 1-year attack):\n", name)
		fmt.Printf("%6s %6s %8s %8s %9s\n", "years", "phase", "mean", "p99", "violated")
		for i, st := range resumed.Stats() {
			if (i+1)%12 != 0 && i != resumed.TotalEpochs()-1 {
				continue
			}
			fmt.Printf("%6.2f %7s %7.2f%% %7.2f%% %8.2f%%\n",
				st.Years, st.Phase, st.MeanGuardband*100, st.P99Guardband*100,
				st.ViolatedFraction*100)
		}
		if y := resumed.FirstViolationYears(); y >= 0 {
			fmt.Printf("first chip exceeded the %.0f%% budget after %.2f years\n",
				lifetime.DefaultLimit*100, y)
		} else {
			fmt.Printf("no chip ever exceeded the %.0f%% budget\n", lifetime.DefaultLimit*100)
		}
		return resumed
	}

	b := run("baseline", baseline)
	p := run("penelope", penelope)
	bl, pl := b.Stats(), p.Stats()
	fmt.Printf("\nend-of-life mean guardband: baseline %.2f%% -> penelope %.2f%%\n",
		bl[len(bl)-1].MeanGuardband*100, pl[len(pl)-1].MeanGuardband*100)
}
