// Quickstart: age a single PMOS transistor, compute the guardband the
// NBTI calibration assigns to a biased signal, and compare mitigation
// techniques with the NBTIefficiency metric — the three core concepts of
// the Penelope paper in ~60 lines.
package main

import (
	"fmt"

	"penelope/internal/metric"
	"penelope/internal/nbti"
)

func main() {
	params := nbti.DefaultParams()

	// 1. NBTI dynamics: a PMOS transistor stressed (gate at "0") and
	// relaxed (gate at "1") accumulates and anneals interface traps.
	dev := nbti.NewDevice(params)
	dev.Stress(1.0)
	fmt.Printf("after stress:   NIT=%.3f  VTH shift=%.2f%%\n", dev.NIT(), dev.VTHShift()*100)
	dev.Relax(1.0)
	fmt.Printf("after recovery: NIT=%.3f  VTH shift=%.2f%%\n", dev.NIT(), dev.VTHShift()*100)

	// 2. Bias -> guardband: a signal that is "0" 90% of the time needs a
	// large cycle-time guardband; balancing it to 50% shrinks the
	// guardband 10X.
	for _, bias := range []float64{0.9, 0.75, 0.605, 0.5} {
		fmt.Printf("zero-signal probability %.0f%% -> guardband %.1f%%\n",
			bias*100, params.Guardband(bias)*100)
	}

	// 3. NBTIefficiency (eq. 1): compare paying the full guardband,
	// periodic inversion, and a Penelope-style technique with no delay
	// cost and a small residual guardband.
	blocks := []metric.Block{
		metric.Baseline(),
		metric.PeriodicInversion(),
		{Name: "penelope-style (ISV)", CPIFactor: 1, CycleTimeFactor: 1,
			Guardband: 0.036, TDPFactor: 1.01},
	}
	fmt.Println()
	fmt.Print(metric.FormatTable(metric.Compare(blocks)))

	// 4. Lifetime: balancing the duty cycle buys at least 4X lifetime.
	fmt.Printf("\nlifetime extension at 50%% duty: %.0fX\n", params.LifetimeFactor(0.5))
}
