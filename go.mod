module penelope

go 1.24
