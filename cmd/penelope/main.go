// Command penelope regenerates the tables and figures of "Penelope: The
// NBTI-Aware Processor" (MICRO 2007) from the Go reproduction.
//
// Usage:
//
//	penelope -experiment all
//	penelope -experiment fig4
//	penelope -experiment table3 -length 20000 -stride 8
//
// Experiments: fig1, fig4, fig5, fig6, fig8, table1, table2, table3,
// mru, efficiency, all. Length is uops per trace; stride subsamples the
// 531-trace workload (1 = full workload, as in the paper — slow).
package main

import (
	"flag"
	"fmt"
	"os"

	"penelope/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("experiment", "all", "experiment id: fig1|fig4|fig5|fig6|fig8|table1|table2|table3|mru|efficiency|all")
		length = flag.Int("length", 0, "uops per trace (default 12000)")
		stride = flag.Int("stride", 0, "workload subsampling stride (default 12; 1 = all 531 traces)")
	)
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *length > 0 {
		opts.TraceLength = *length
	}
	if *stride > 0 {
		opts.TraceStride = *stride
	}

	w := os.Stdout
	run := func(id string) bool {
		switch id {
		case "fig1":
			experiments.Fig1().Render(w)
		case "fig4":
			experiments.Fig4().Render(w)
		case "fig5":
			experiments.Fig5(opts).Render(w)
		case "fig6":
			experiments.Fig6(opts).Render(w)
		case "fig8":
			experiments.Fig8(opts).Render(w)
		case "table1":
			experiments.Table1(w)
		case "table2":
			experiments.Table2(w)
		case "table3":
			experiments.Table3(opts).Render(w)
		case "mru":
			experiments.MRUStudy(opts, w)
		case "bpred":
			experiments.Bpred(opts).Render(w)
		case "latch":
			experiments.Latch(opts).Render(w)
		case "vmin":
			experiments.Vmin(experiments.Fig6(opts), experiments.Fig8(opts)).Render(w)
		case "efficiency":
			t3 := experiments.Table3(opts)
			f5 := experiments.Fig5(opts)
			f6 := experiments.Fig6(opts)
			f8 := experiments.Fig8(opts)
			in := experiments.EfficiencyInputs{
				AdderGuardband: f5.Scenarios[1].Guardband,
				IntRFWorstBias: f6.IntWorstISV,
				FPRFWorstBias:  f6.FPWorstISV,
				SchedWorstBias: f8.WorstProtected,
				CombinedCPI:    t3.CombinedCPI,
			}
			fmt.Fprintln(w, "\nmeasured inputs:")
			fmt.Fprintf(w, "  adder guardband %.1f%%, RF worst bias %.1f%%/%.1f%%, sched worst bias %.1f%%, combined CPI %.4f\n",
				in.AdderGuardband*100, in.IntRFWorstBias*100, in.FPRFWorstBias*100,
				in.SchedWorstBias*100, in.CombinedCPI)
			experiments.Efficiency(in).Render(w)
			fmt.Fprintln(w, "\nreference (paper inputs):")
			experiments.Efficiency(experiments.PaperInputs()).Render(w)
		default:
			return false
		}
		return true
	}

	if *exp == "all" {
		for _, id := range []string{"table1", "table2", "fig1", "fig4", "fig5", "fig6", "fig8", "mru", "table3", "efficiency", "bpred", "latch", "vmin"} {
			if !run(id) {
				panic("unreachable")
			}
		}
		return
	}
	if !run(*exp) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
