// Command penelope regenerates the tables and figures of "Penelope: The
// NBTI-Aware Processor" (MICRO 2007) from the Go reproduction, and can
// serve them over HTTP as a long-running experiment service.
//
// Usage:
//
//	penelope run -experiment all
//	penelope run -experiment fig4 -json
//	penelope run -experiment table3 -length 20000 -stride 8
//	penelope run -experiment lifetime -population 100000 -years 7 -attack-years 1
//	penelope run -experiment lifetime -checkpoint fleet.ckpt -workers 8
//	penelope serve -addr :8080
//	penelope serve -addr :8080 -data-dir /var/lib/penelope -rate 5 -burst 20
//	penelope serve -data-dir /var/lib/penelope -fleet-config fleets.json -alert-webhook http://ops/hook
//
// The experiment list comes from the experiments registry (run
// `penelope run -h`). Length is uops per trace; stride subsamples the
// 531-trace workload (1 = full workload, as in the paper — slow). The
// fleet flags parameterize the lifetime/yield experiments; -checkpoint
// makes a long lifetime run resumable. With -data-dir the server
// persists results to a content-addressed store and resumes
// interrupted lifetime jobs after a restart; -rate/-burst enable
// per-client rate limiting and -job-timeout bounds each attempt.
// -store-budget and -store-retention bound the on-disk result cache
// (LRU results are evicted first, then oversized cache writes shed;
// checkpoints are never evicted) and -scrub-interval re-verifies stored
// frames against their checksums in the background.
// -fleet-config schedules continuously-aged populations at boot (they
// also register over POST /v1/fleets and resume from -data-dir
// sidecars); -fleet-tick paces their epochs and -alert-webhook receives
// their threshold and wearout-attack alerts. GET /metrics serves
// Prometheus text (JSON at /metrics.json) and -pprof serves
// net/http/pprof on its own loopback listener, off by default.
// Every metric family is also sampled into an embedded time-series
// store (-history-interval, default 10s) queryable over GET
// /v1/metrics/query and rendered live on GET /dashboard; with -data-dir
// the history persists across restarts for -history-retention.
// -slo-config declares burn-rate/threshold/slope objectives evaluated
// against that history; breaches fire through the same alert pipeline.
// Invoking penelope with flags but no subcommand behaves like `run`.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"penelope/internal/experiments"
	"penelope/internal/fleetops"
	"penelope/internal/service"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && (args[0] == "-h" || args[0] == "--help" || args[0] == "help") {
		usage(os.Stdout)
		return
	}
	cmd := "run"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	switch cmd {
	case "run":
		runCmd(args)
	case "serve":
		serveCmd(args)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
}

func usage(w *os.File) {
	fmt.Fprintf(w, `penelope regenerates the paper's tables and figures.

Commands:
  run    execute experiments and print them (default command)
  serve  serve experiments over HTTP with a job queue and result cache

Run "penelope <command> -h" for the command's flags.
Experiments: %s|all
`, experiments.IDList())
}

// runCmd executes one experiment (or all of them) and renders the
// result as text, or as one JSON payload per line with -json.
func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		exp    = fs.String("experiment", "all", "experiment id: "+experiments.IDList()+"|all")
		length = fs.Int("length", 0, "uops per trace (default 12000)")
		stride = fs.Int("stride", 0, "workload subsampling stride (default 12; 1 = all 531 traces)")
		asJSON = fs.Bool("json", false, "emit structured JSON payloads (one per line) instead of text")

		population = fs.Int("population", 0, "fleet size for lifetime/yield (default 5000)")
		years      = fs.Float64("years", 0, "simulated service life in years (default 7)")
		epochDays  = fs.Float64("epoch-days", 0, "lifetime engine epoch length in days (default 30)")
		sigma      = fs.Float64("sigma", 0, "process-variation sigma (default 0.08; negative disables variation)")
		attack     = fs.Float64("attack-years", 0, "wearout-attack phase length in years (default none)")
		fleetSeed  = fs.Uint64("fleet-seed", 0, "per-chip sampling seed (default 1)")
		workers    = fs.Int("workers", 0, "lifetime engine worker count (default GOMAXPROCS; results identical for any value)")

		checkpoint = fs.String("checkpoint", "", "lifetime only: checkpoint file; resumes if it exists")
		ckptEvery  = fs.Int("checkpoint-every", 16, "epochs between checkpoint writes")
	)
	fs.Parse(args)

	opts := experiments.DefaultOptions()
	if *length > 0 {
		opts.TraceLength = *length
	}
	if *stride > 0 {
		opts.TraceStride = *stride
	}
	if *population > 0 {
		opts.Population = *population
	}
	if *years > 0 {
		opts.Years = *years
	}
	if *epochDays > 0 {
		opts.EpochDays = *epochDays
	}
	if *sigma != 0 {
		opts.VariationSigma = *sigma
	}
	if *attack > 0 {
		opts.AttackYears = *attack
	}
	if *fleetSeed != 0 {
		opts.FleetSeed = *fleetSeed
	}
	opts.Workers = *workers

	if *checkpoint != "" && *exp != "lifetime" {
		fmt.Fprintln(os.Stderr, "-checkpoint only applies to -experiment lifetime")
		os.Exit(2)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	w := os.Stdout
	for _, id := range ids {
		var res experiments.Result
		var err error
		if *checkpoint != "" {
			res, err = experiments.LifetimeCheckpointed(opts, *checkpoint, *ckptEvery)
		} else {
			res, err = experiments.Run(id, opts)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *asJSON {
			payload, err := experiments.NewPayload(res, opts).MarshalCompact()
			if err != nil {
				fmt.Fprintf(os.Stderr, "marshal %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Fprintf(w, "%s\n", payload)
		} else {
			res.Render(w)
		}
	}
}

// serveCmd starts the experiment service: a worker pool over the
// simulator with a content-addressed result cache (persisted to
// -data-dir when set), exposed as an HTTP JSON API with per-client fair
// scheduling and admission control.
func serveCmd(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		workers    = fs.Int("workers", 0, "simulation worker count (default: GOMAXPROCS)")
		queue      = fs.Int("queue", 0, "job queue depth (default 256)")
		dataDir    = fs.String("data-dir", "", "persist results and checkpoints under this directory; survives restarts")
		rate       = fs.Float64("rate", 0, "per-client submissions/second (0 = unlimited; sweeps charge one per grid point)")
		burst      = fs.Int("burst", 0, "per-client rate-limit burst (default ceil(rate))")
		jobTimeout = fs.Duration("job-timeout", 0, "per-job runner timeout (0 = unbounded)")

		storeBudget    = fs.Int64("store-budget", 0, "disk budget in bytes for cached result payloads; past it LRU results are evicted and oversized cache writes shed (0 = unbounded; checkpoints are never evicted)")
		storeRetention = fs.Duration("store-retention", 0, "evict cached results unused for longer than this (0 = keep forever)")
		scrubInterval  = fs.Duration("scrub-interval", time.Minute, "background re-verification interval for stored result checksums (0 = off)")

		fleetConfig  = fs.String("fleet-config", "", "JSON file of fleet registrations to schedule at boot ({\"fleets\": [...]} or a bare array)")
		fleetTick    = fs.Duration("fleet-tick", 0, "default interval between fleet epoch ticks (default 30s)")
		alertWebhook = fs.String("alert-webhook", "", "POST fired fleet alerts to this URL (retries, circuit breaker, dead-letter queue)")

		historyInterval  = fs.Duration("history-interval", 0, "metric-history sampling cadence behind /v1/metrics/query and /dashboard (default 10s; negative disables history)")
		historyRetention = fs.Duration("history-retention", 0, "how long persisted metric-history blocks are kept under -data-dir (default 168h)")
		sloConfig        = fs.String("slo-config", "", "JSON file of SLO rules evaluated against the metric history ({\"rules\": [...]} or a bare array); breaches alert like fleet alerts")

		pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this address, e.g. 127.0.0.1:6060 (default off; keep it loopback — the profiler is unauthenticated)")
	)
	fs.Parse(args)

	logger := slog.Default().With("component", "serve")
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	sloRules, err := loadSLOConfig(*sloConfig)
	if err != nil {
		fatal("-slo-config", err)
	}
	srv, err := service.New(service.Config{
		Workers: *workers, QueueDepth: *queue,
		DataDir: *dataDir, Rate: *rate, Burst: *burst, JobTimeout: *jobTimeout,
		StoreBudget: *storeBudget, StoreRetention: *storeRetention, ScrubInterval: *scrubInterval,
		FleetTick: *fleetTick, AlertWebhook: *alertWebhook,
		HistoryInterval: *historyInterval, HistoryRetention: *historyRetention,
		SLORules: sloRules,
	})
	if err != nil {
		fatal("starting service", err)
	}
	if *fleetConfig != "" {
		n, err := registerFleetConfig(srv, *fleetConfig)
		if err != nil {
			fatal("-fleet-config", err)
		}
		logger.Info("scheduled fleet registrations", "count", n, "file", *fleetConfig)
	}
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal("-pprof listen", err)
		}
		// Explicit mux: the profiler never rides on the API listener,
		// and nothing else is reachable on the profiling port.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.Serve(pln, pmux); err != nil && err != http.ErrServerClosed {
				logger.Error("pprof server failed", "error", err)
			}
		}()
		logger.Info("profiling enabled", "addr", pln.Addr().String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("draining (in-flight lifetime jobs checkpoint before exit)")
		// Stop accepting connections, then drain the pool: in-flight
		// jobs see their context cancelled and checkpointed lifetime
		// runs persist their state before the process exits.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		httpSrv.Shutdown(ctx)
		cancel()
		srv.Close()
		httpSrv.Close()
	}()
	logger.Info("listening", "addr", ln.Addr().String(), "workers", srv.Workers())
	if *dataDir != "" {
		logger.Info("persisting results", "dir", *dataDir)
	}
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatal("serving", err)
	}
	srv.Close()
}

// loadSLOConfig reads a -slo-config file: {"rules": [...]} or a bare
// array of rules. The rules themselves are validated by the service.
func loadSLOConfig(path string) ([]fleetops.SLORule, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rules []fleetops.SLORule
	var wrapped struct {
		Rules []fleetops.SLORule `json:"rules"`
	}
	if err := json.Unmarshal(data, &wrapped); err == nil && wrapped.Rules != nil {
		return wrapped.Rules, nil
	}
	if err := json.Unmarshal(data, &rules); err != nil {
		return nil, fmt.Errorf("want {\"rules\": [...]} or a bare array: %w", err)
	}
	return rules, nil
}

// registerFleetConfig schedules every registration in a -fleet-config
// file. Registrations already resumed from data-dir sidecars are
// skipped silently, so a fixed config file plus a persistent data dir
// is idempotent across restarts.
func registerFleetConfig(srv *service.Server, path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var regs []fleetops.Registration
	var wrapped struct {
		Fleets []fleetops.Registration `json:"fleets"`
	}
	if err := json.Unmarshal(data, &wrapped); err == nil && wrapped.Fleets != nil {
		regs = wrapped.Fleets
	} else if err := json.Unmarshal(data, &regs); err != nil {
		return 0, fmt.Errorf("want {\"fleets\": [...]} or a bare array: %w", err)
	}
	n := 0
	for _, reg := range regs {
		_, err := srv.RegisterFleet(reg)
		switch {
		case errors.Is(err, fleetops.ErrExists):
			// Already resumed from its sidecar.
			continue
		case err != nil:
			return n, fmt.Errorf("fleet %q: %w", reg.Name, err)
		}
		n++
	}
	return n, nil
}
