// Package penelope_test is the benchmark harness of the reproduction:
// one benchmark per paper table/figure (regenerating its data and
// reporting the headline quantity via ReportMetric) plus ablation
// benchmarks for the design choices called out in DESIGN.md §10.
//
// Run with: go test -bench=. -benchmem
package penelope_test

import (
	"math/rand"
	"runtime"
	"strconv"
	"testing"
	"time"

	"penelope/internal/adder"
	"penelope/internal/cache"
	"penelope/internal/circuit"
	"penelope/internal/experiments"
	"penelope/internal/fleetops"
	"penelope/internal/lifetime"
	"penelope/internal/metric"
	"penelope/internal/nbti"
	"penelope/internal/obs"
	"penelope/internal/obs/tsdb"
	"penelope/internal/pipeline"
	"penelope/internal/trace"
)

// benchOptions keeps per-iteration work bounded.
func benchOptions() experiments.Options {
	return experiments.Options{TraceLength: 5000, TraceStride: 120}
}

// BenchmarkFig1NITDynamics regenerates the Figure 1 stress/relax
// saw-tooth and reports the equilibrium trap density at 50% duty.
func BenchmarkFig1NITDynamics(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1()
		last = r.Equilibrium(0.5)
	}
	b.ReportMetric(last, "NIT50/N0")
}

// BenchmarkFig4InputPairs sweeps the 28 synthetic input pairs on the
// Ladner-Fischer adder and reports the best pair's stressed fraction.
func BenchmarkFig4InputPairs(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4()
		best = r.Best.NarrowFullyStressed
	}
	b.ReportMetric(best*100, "best-narrow100%")
}

// BenchmarkFig5AdderGuardband ages the adder at 21% utilization with
// pair 1+8 idle injection and reports the guardband (paper: 5.8%).
func BenchmarkFig5AdderGuardband(b *testing.B) {
	ad := adder.New32()
	params := nbti.DefaultParams()
	src := trace.NewOperandStream([]trace.Source{trace.Record(trace.SpecINT2000, 0, 4000).Cursor()})
	var gb float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := ad.GuardbandScenario(src, 0.21, 1, 8, 150, params)
		gb = res.Guardband
	}
	b.ReportMetric(gb*100, "guardband%")
}

// BenchmarkFig6RegfileBias runs the ISV register-file mechanism through
// the pipeline and reports the worst-case integer bias (paper: 48.5%).
// The trace is recorded once and replayed per iteration — the sweep
// shape every multi-config experiment now has.
func BenchmarkFig6RegfileBias(b *testing.B) {
	cfg := pipeline.DefaultConfig()
	cfg.EnableISV = true
	src := trace.Record(trace.SpecINT2000, 1, 8000).Cursor()
	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := pipeline.Run(cfg, src)
		worst = r.IntRF.WorstBias
	}
	b.ReportMetric(worst*100, "worstbias%")
}

// BenchmarkFig8SchedulerBias builds the field plan and runs the
// protected scheduler, reporting the worst-case bias (paper: 63.2%).
func BenchmarkFig8SchedulerBias(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(benchOptions())
		worst = r.WorstProtected
	}
	b.ReportMetric(worst*100, "worstbias%")
}

// BenchmarkTable3CacheSchemes evaluates each inversion scheme on the
// 32KB 8-way DL0 and reports its CPI loss (paper Table 3 row 1).
func BenchmarkTable3CacheSchemes(b *testing.B) {
	src := trace.Record(trace.Server, 1, 8000).Cursor()
	base := pipeline.Run(pipeline.DefaultConfig(), src)
	schemes := []struct {
		name string
		opt  cache.Options
	}{
		{"SetFixed50", cache.Options{Scheme: cache.SchemeSetFixed, InvertRatio: 0.5, RotatePeriod: 2_000_000}},
		{"LineFixed50", cache.Options{Scheme: cache.SchemeLineFixed, InvertRatio: 0.5, Seed: 3}},
		{"LineDynamic60", func() cache.Options {
			o := cache.DefaultDynamicOptions(0.6, 0.02, 3)
			o.PeriodCycles = 4000
			o.WarmupCycles = 150
			o.TestCycles = 150
			return o
		}()},
	}
	for _, s := range schemes {
		b.Run(s.name, func(b *testing.B) {
			cfg := pipeline.DefaultConfig()
			cfg.DL0Options = s.opt
			var loss float64
			for i := 0; i < b.N; i++ {
				r := pipeline.Run(cfg, src)
				loss = r.CPI/base.CPI - 1
			}
			b.ReportMetric(loss*100, "loss%")
		})
	}
}

// BenchmarkEfficiencyMetric evaluates the §4.7 whole-processor summary
// from the paper's inputs and reports the Penelope NBTIefficiency
// (paper: 1.28).
func BenchmarkEfficiencyMetric(b *testing.B) {
	var eff float64
	for i := 0; i < b.N; i++ {
		r := experiments.Efficiency(experiments.PaperInputs())
		eff = r.Penelope
	}
	b.ReportMetric(eff, "NBTIefficiency")
}

// BenchmarkPipelineThroughput measures raw simulator speed in uops/s
// with the synthesizing generator in the loop (the pre-recording
// baseline shape; compare BenchmarkPipelineReplayThroughput).
func BenchmarkPipelineThroughput(b *testing.B) {
	cfg := pipeline.DefaultConfig()
	tr := trace.NewTrace(trace.Multimedia, 0, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipeline.Run(cfg, tr)
	}
	b.SetBytes(0)
	b.ReportMetric(float64(10000*b.N)/b.Elapsed().Seconds(), "uops/s")
}

// BenchmarkPipelineReplayThroughput measures simulator speed in uops/s
// when the trace is replayed from a packed recording: the synthesis cost
// of BenchmarkPipelineThroughput is gone and only the core model is
// timed.
func BenchmarkPipelineReplayThroughput(b *testing.B) {
	cfg := pipeline.DefaultConfig()
	src := trace.Record(trace.Multimedia, 0, 10000).Cursor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipeline.Run(cfg, src)
	}
	b.ReportMetric(float64(10000*b.N)/b.Elapsed().Seconds(), "uops/s")
}

// BenchmarkTraceRecord measures one-time synthesis-and-pack cost: one
// 12000-uop trace recorded per iteration, reported as uops/s.
func BenchmarkTraceRecord(b *testing.B) {
	var rec *trace.Recording
	for i := 0; i < b.N; i++ {
		rec = trace.Record(trace.Multimedia, 1, 12000)
	}
	b.ReportMetric(float64(12000*b.N)/b.Elapsed().Seconds(), "uops/s")
	b.ReportMetric(float64(rec.Bytes())/float64(rec.Len()), "B/uop")
}

// BenchmarkCursorReplay measures the replay fast path: one full pass
// over a recorded 12000-uop stream per iteration, zero allocations.
func BenchmarkCursorReplay(b *testing.B) {
	src := trace.Record(trace.Multimedia, 1, 12000).Cursor()
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset()
		for {
			u, ok := src.NextUop()
			if !ok {
				break
			}
			sink ^= u.DstVal
		}
	}
	_ = sink
	b.ReportMetric(float64(12000*b.N)/b.Elapsed().Seconds(), "uops/s")
}

// BenchmarkRunBatch measures multi-trace scaling through the parallel
// batch runner: the same 8-trace sweep with 1 worker and with one worker
// per core. Aggregate uops/s should scale near-linearly with workers up
// to the trace count (single-core machines report both the same).
func BenchmarkRunBatch(b *testing.B) {
	cfg := pipeline.DefaultConfig()
	traces := trace.NewBank(5000, 70).Sources()
	if len(traces) > 8 {
		traces = traces[:8]
	}
	totalUops := uint64(0)
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, r := range pipeline.RunBatch(cfg, traces, workers) {
					totalUops += r.Uops
				}
			}
			b.ReportMetric(float64(5000*len(traces)*b.N)/b.Elapsed().Seconds(), "uops/s")
		})
	}
	_ = totalUops
}

// fleetBenchConfig builds a lifetime engine config with synthetic duty
// profiles, skipping the workload measurement so only the engine is
// timed.
func fleetBenchConfig(pop int, years float64) lifetime.Config {
	p := lifetime.DefaultParams()
	return lifetime.Config{
		Structures: []string{"adder", "int-regfile", "fp-regfile", "scheduler"},
		Phases: []lifetime.Phase{
			{Name: "service", Years: years, Duty: []float64{0.9, 0.8, 0.95, 1.0}},
		},
		Population: pop,
		EpochYears: 30 / 365.25,
		Seed:       9,
		Sigma:      0.08,
		Limit:      lifetime.DefaultLimit,
		Params:     p,
		Delay:      circuit.NewDelayModel(circuit.PathStats{Depth: 21, Narrow: 18}, p.MaxVTHShift, p.MaxGuardband),
	}
}

// BenchmarkFleetEpoch measures one epoch of a 100k-chip fleet — the
// inner loop of the lifetime engine — reported as chip-epochs/s.
func BenchmarkFleetEpoch(b *testing.B) {
	const pop = 100_000
	cfg := fleetBenchConfig(pop, 1000)
	eng, err := lifetime.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if eng.Done() {
			b.StopTimer()
			eng, _ = lifetime.New(cfg)
			b.StartTimer()
		}
		eng.Step(0)
	}
	b.ReportMetric(float64(pop*b.N)/b.Elapsed().Seconds(), "chip-epochs/s")
}

// BenchmarkLifetimeTrajectory measures a full 20k-chip, 7-year fleet
// run per iteration and reports the end-of-life mean guardband.
func BenchmarkLifetimeTrajectory(b *testing.B) {
	const pop = 20_000
	cfg := fleetBenchConfig(pop, 7)
	var final float64
	for i := 0; i < b.N; i++ {
		eng, err := lifetime.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		stats := eng.Run(0)
		final = stats[len(stats)-1].MeanGuardband
	}
	b.ReportMetric(final*100, "guardband%")
}

// BenchmarkBusPublish measures the continuous-operations event bus on
// its hot path — one per-epoch aggregate published to a topic with four
// live (and saturated) subscribers, the fan-out every scheduled fleet
// pays per epoch. Delivery is non-blocking by design, so the cost is
// one JSON marshal plus bounded channel sends.
func BenchmarkBusPublish(b *testing.B) {
	bus := fleetops.NewBus(0)
	for i := 0; i < 4; i++ {
		defer bus.Subscribe("fleet/bench", 0, 8).Close()
	}
	row := lifetime.EpochStats{Epoch: 1, Years: 0.1, Phase: "service", MeanVTHShift: []float64{0.01, 0.02}}
	ev := fleetops.EpochEvent{Fleet: "bench", EpochStats: row}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bus.Publish("fleet/bench", "epoch", ev); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkAblationRINVPeriod sweeps the RINV refresh period (DESIGN.md
// §5): sampling too rarely leaves per-bit noise, too often costs
// nothing here but would cost sampling bandwidth in hardware.
func BenchmarkAblationRINVPeriod(b *testing.B) {
	src := trace.Record(trace.SpecINT2000, 2, 8000).Cursor()
	for _, period := range []uint64{64, 256, 1024, 4096} {
		b.Run(benchName("period", int(period)), func(b *testing.B) {
			cfg := pipeline.DefaultConfig()
			cfg.EnableISV = true
			cfg.RINVPeriod = period
			var worst float64
			for i := 0; i < b.N; i++ {
				r := pipeline.Run(cfg, src)
				worst = r.IntRF.WorstBias
			}
			b.ReportMetric(worst*100, "worstbias%")
		})
	}
}

// BenchmarkAblationGranularity compares inversion granularities
// (set/way/line) at K=50% on the same workload.
func BenchmarkAblationGranularity(b *testing.B) {
	src := trace.Record(trace.Multimedia, 2, 8000).Cursor()
	baseCfg := pipeline.DefaultConfig()
	baseCfg.DL0Bytes = 8 * 1024 // pressured configuration so losses show
	base := pipeline.Run(baseCfg, src)
	for _, g := range []struct {
		name   string
		scheme cache.Scheme
	}{
		{"set", cache.SchemeSetFixed},
		{"way", cache.SchemeWayFixed},
		{"line", cache.SchemeLineFixed},
	} {
		b.Run(g.name, func(b *testing.B) {
			cfg := baseCfg
			cfg.DL0Options = cache.Options{Scheme: g.scheme, InvertRatio: 0.5, RotatePeriod: 2_000_000, Seed: 5}
			var loss float64
			for i := 0; i < b.N; i++ {
				r := pipeline.Run(cfg, src)
				loss = r.CPI/base.CPI - 1
			}
			b.ReportMetric(loss*100, "loss%")
		})
	}
}

// BenchmarkAblationInvertRatio sweeps the fixed invert ratio K for the
// line scheme: higher K balances wear better but costs more capacity.
func BenchmarkAblationInvertRatio(b *testing.B) {
	src := trace.Record(trace.SpecINT2000, 3, 8000).Cursor()
	baseCfg := pipeline.DefaultConfig()
	baseCfg.DL0Bytes = 8 * 1024 // pressured configuration so losses show
	base := pipeline.Run(baseCfg, src)
	for _, k := range []int{30, 40, 50, 60, 70} {
		b.Run(benchName("K", k), func(b *testing.B) {
			cfg := baseCfg
			cfg.DL0Options = cache.Options{Scheme: cache.SchemeLineFixed, InvertRatio: float64(k) / 100, Seed: 5}
			var loss float64
			for i := 0; i < b.N; i++ {
				r := pipeline.Run(cfg, src)
				loss = r.CPI/base.CPI - 1
			}
			b.ReportMetric(loss*100, "loss%")
		})
	}
}

// BenchmarkAblationAdderInputs varies how many synthetic inputs the idle
// injector alternates: one input leaves complementary transistors fully
// stressed; the complementary pair fixes them.
func BenchmarkAblationAdderInputs(b *testing.B) {
	ad := adder.New32()
	params := nbti.DefaultParams()
	sets := map[string][]int{
		"1input":  {1},
		"2inputs": {1, 8},
		"4inputs": {1, 4, 5, 8},
		"8inputs": {1, 2, 3, 4, 5, 6, 7, 8},
	}
	rng := rand.New(rand.NewSource(11))
	for _, name := range []string{"1input", "2inputs", "4inputs", "8inputs"} {
		idxs := sets[name]
		b.Run(name, func(b *testing.B) {
			var gb float64
			for i := 0; i < b.N; i++ {
				sim := ad.NewStressSim()
				// 21% utilization with random operands packed 64 per
				// bit-parallel pass; the idle round-robin over the input
				// set is constant across samples, so each synthetic input
				// is applied once with its aggregate share. Stress sums
				// are order-independent: same guardband as the scalar
				// per-sample loop.
				const samples = 120
				ops := make([]adder.Operands, 0, 64)
				for s := 0; s < samples; s++ {
					ops = append(ops, adder.Operands{A: uint64(rng.Uint32()), B: uint64(rng.Uint32())})
					if len(ops) == 64 {
						sim.ApplyVec(ad.InputWords(ops), len(ops), 21)
						ops = ops[:0]
					}
				}
				if len(ops) > 0 {
					sim.ApplyVec(ad.InputWords(ops), len(ops), 21)
				}
				share := uint64(79 / len(idxs))
				for _, k := range idxs {
					sim.Apply(ad.SyntheticInput(k), share*samples)
				}
				gb = sim.Analyze(params).Guardband
			}
			b.ReportMetric(gb*100, "guardband%")
		})
	}
}

// BenchmarkAdderEvalBatch measures bit-parallel adder evaluation
// throughput: 4096 operand triples per iteration through EvalBatch (64
// lanes per netlist pass), reported as adds/s.
func BenchmarkAdderEvalBatch(b *testing.B) {
	ad := adder.New32()
	rng := rand.New(rand.NewSource(17))
	ops := make([]adder.Operands, 4096)
	for i := range ops {
		ops[i] = adder.Operands{
			A:   uint64(rng.Uint32()),
			B:   uint64(rng.Uint32()),
			Cin: rng.Intn(2) == 1,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ad.EvalBatch(ops)
	}
	b.ReportMetric(float64(len(ops)*b.N)/b.Elapsed().Seconds(), "adds/s")
}

// BenchmarkStressApplyVec measures the compiled stress path: one 64-lane
// ApplyVec (netlist pass + tap-program walk) per iteration, reported as
// lane-applies/s against the scalar Apply equivalent of 64 calls.
func BenchmarkStressApplyVec(b *testing.B) {
	ad := adder.New32()
	sim := ad.NewStressSim()
	rng := rand.New(rand.NewSource(23))
	ops := make([]adder.Operands, 64)
	for i := range ops {
		ops[i] = adder.Operands{A: uint64(rng.Uint32()), B: uint64(rng.Uint32())}
	}
	words := ad.InputWords(ops)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.ApplyVec(words, 64, 1)
	}
	b.ReportMetric(float64(64*b.N)/b.Elapsed().Seconds(), "lane-applies/s")
}

// BenchmarkAblationMetricExponent evaluates the §4.2 metric with
// delay exponents 1..3 on the paper's processor inputs, showing how the
// PD³ choice weighs delay against guardband.
func BenchmarkAblationMetricExponent(b *testing.B) {
	for _, exp := range []int{1, 2, 3} {
		b.Run(benchName("exp", exp), func(b *testing.B) {
			var eff float64
			for i := 0; i < b.N; i++ {
				eff = metric.EfficiencyExp(1.007, 0.074, 1.01, float64(exp))
			}
			b.ReportMetric(eff, "NBTIefficiency")
		})
	}
}

// BenchmarkObsOverhead prices the observability layer's hot-path
// primitives: atomic counter increments, lock-free histogram observes,
// label resolution, one-shot span recording, and — the guarantee the
// fleet engine and cursor replay rely on — the nil-instrument no-op
// path, which must be close to free.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("CounterInc", func(b *testing.B) {
		reg := obs.NewRegistry()
		c := reg.Counter("bench_counter_total", "bench")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("HistogramObserve", func(b *testing.B) {
		reg := obs.NewRegistry()
		h := reg.Histogram("bench_seconds", "bench", nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i%1000) * 1e-6)
		}
	})
	b.Run("HistogramVecResolved", func(b *testing.B) {
		reg := obs.NewRegistry()
		h := reg.HistogramVec("bench_vec_seconds", "bench", "label", nil).With("hot")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i%1000) * 1e-6)
		}
	})
	b.Run("TracerRecord", func(b *testing.B) {
		tr := obs.NewTracer()
		start := time.Now()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Record("bench", "span", start, time.Microsecond, nil)
		}
	})
	b.Run("TracePhases", func(b *testing.B) {
		tr := obs.NewTracer()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := tr.Begin("bench-job", "bench", "admit")
			t.Phase("run")
			t.Phase("done")
			t.Finish()
		}
	})
	b.Run("NilInstruments", func(b *testing.B) {
		var c *obs.Counter
		var h *obs.Histogram
		var t *obs.Trace
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
			h.Observe(1e-6)
			t.Phase("noop")
		}
	})
}

// BenchmarkTsdbSample prices one metric-history sampling pass over a
// representative registry (counter, gauge, histogram, two-cell vec) and
// pins the steady-state path at zero allocations — the sampler runs
// forever on a 10s cadence, so any per-tick garbage would accumulate
// for the life of the server.
func BenchmarkTsdbSample(b *testing.B) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("bench_events_total", "bench")
	gauge := reg.Gauge("bench_depth", "bench")
	hist := reg.Histogram("bench_seconds", "bench", nil)
	vec := reg.HistogramVec("bench_vec_seconds", "bench", "cell", nil)
	vec.With("a").Observe(0.1)
	vec.With("b").Observe(0.2)

	db, err := tsdb.Open(tsdb.Config{Registry: reg, Interval: 10 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()

	now := time.Now()
	step := func(i int) {
		ctr.Add(3)
		gauge.Set(float64(i % 64))
		hist.Observe(float64(i%100) * 1e-3)
		db.Sample(now.Add(time.Duration(i) * 10 * time.Second))
	}
	// Warm the bindings and the rings past the first fold windows.
	for i := 0; i < 256; i++ {
		step(i)
	}
	iter := 256
	if allocs := testing.AllocsPerRun(100, func() {
		step(iter)
		iter++
	}); allocs != 0 {
		b.Fatalf("steady-state Sample allocates %.1f times per tick, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(iter + i)
	}
}

func benchName(prefix string, v int) string {
	return prefix + strconv.Itoa(v)
}
