#!/usr/bin/env bash
# Runs the benchmark suite and archives the results as BENCH_<date>.json
# so successive PRs accumulate a performance trajectory.
#
# The suite covers every paper figure/table plus the raw-throughput
# benchmarks: pipeline (BenchmarkPipelineThroughput with the generator in
# the loop, BenchmarkPipelineReplayThroughput over a packed recording,
# BenchmarkRunBatch), the trace record/replay subsystem
# (BenchmarkTraceRecord one-time synthesis+pack uops/s,
# BenchmarkCursorReplay zero-alloc replay uops/s), the bit-parallel
# circuit stack (BenchmarkAdderEvalBatch adds/s, BenchmarkStressApplyVec
# lane-applies/s), the fleet lifetime engine (BenchmarkFleetEpoch
# chip-epochs/s over a 100k-chip fleet, BenchmarkLifetimeTrajectory full
# 7-year runs) and the continuous-operations event bus
# (BenchmarkBusPublish events/s fanned out to saturated subscribers,
# i.e. the worst-case drop-and-count path of the streaming tier) and the
# observability layer (BenchmarkObsOverhead: ns per counter inc,
# histogram observe, trace record and nil-instrument call — the budget
# every instrumented hot path pays; BenchmarkTsdbSample: ns per full
# registry sample into the metric-history store, asserted 0 allocs at
# steady state so the sampler can never become a GC tax).
#
# Usage: scripts/bench.sh [extra go test args...]
#   e.g. scripts/bench.sh -benchtime 2s -count 3
set -euo pipefail

cd "$(dirname "$0")/.."

date="$(date -u +%Y-%m-%d)"
out="BENCH_${date}.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench . -benchmem "$@" . | tee "$tmp"

# Convert `go test -bench` output lines into a JSON array of records.
awk -v date="$date" '
BEGIN { print "[" }
/^Benchmark/ {
    if (n++) printf ",\n"
    printf "  {\"date\": \"%s\", \"name\": \"%s\", \"iterations\": %s", date, $1, $2
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/"/, "", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { print "\n]" }
' "$tmp" > "$out"

echo "wrote $out"
