// Integration tests: cross-module scenarios exercising the public flow
// end to end — the paths a downstream user of the library would take.
package penelope_test

import (
	"testing"

	"penelope/internal/adder"
	"penelope/internal/cache"
	"penelope/internal/metric"
	"penelope/internal/mitigation"
	"penelope/internal/nbti"
	"penelope/internal/pipeline"
	"penelope/internal/sched"
	"penelope/internal/trace"
)

// TestEndToEndPenelopeBeatsAlternatives runs the full Penelope stack —
// ISV register files, planned scheduler, LineFixed caches — on one
// workload slice and checks the paper's bottom line: lower
// NBTIefficiency than both the guardband baseline and periodic
// inversion.
func TestEndToEndPenelopeBeatsAlternatives(t *testing.T) {
	traces := trace.SampleTraces(10000, 40)
	if len(traces) < 8 {
		t.Fatal("not enough traces")
	}

	// Profile the scheduler across the suite mix (the paper profiles on
	// 100 traces spanning all ten suites; a single-suite profile would
	// misclassify workload-dependent fields like tos).
	profCfg := pipeline.DefaultConfig()
	profile := pipeline.Run(profCfg, traces[0]).Sched
	for _, tr := range traces[1:] {
		r := pipeline.Run(profCfg, tr).Sched
		for fi := range profile.Fields {
			for b := range profile.Fields[fi].BusyBias {
				profile.Fields[fi].BusyBias[b] =
					(profile.Fields[fi].BusyBias[b] + r.Fields[fi].BusyBias[b]) / 2
			}
			profile.Fields[fi].Occupancy =
				(profile.Fields[fi].Occupancy + r.Fields[fi].Occupancy) / 2
		}
	}
	plan := sched.BuildPlan(profile)

	full := pipeline.DefaultConfig()
	full.EnableISV = true
	full.SchedPlan = plan
	full.DL0Options = cache.Options{Scheme: cache.SchemeLineFixed, InvertRatio: 0.5, Seed: 1}
	full.DTLBOptions = cache.Options{Scheme: cache.SchemeLineFixed, InvertRatio: 0.5, Seed: 2}

	// Aggregate biases across the workload, as the paper does: the
	// guardband is set by the average wear of a cell over the product's
	// life, not by the worst single program. Per-field accumulation
	// mirrors Figure 8's aggregation.
	var baseCPI, protCPI float64
	var sumRF float64
	var bitSum [][]float64
	n := 0
	for _, tr := range traces[1:] {
		b := pipeline.Run(pipeline.DefaultConfig(), tr)
		p := pipeline.Run(full, tr)
		baseCPI += b.CPI
		protCPI += p.CPI
		sumRF += p.IntRF.WorstBias
		if bitSum == nil {
			bitSum = make([][]float64, len(p.Sched.Fields))
			for fi := range bitSum {
				bitSum[fi] = make([]float64, len(p.Sched.Fields[fi].Biases))
			}
		}
		for fi, f := range p.Sched.Fields {
			for bi, bias := range f.Biases {
				bitSum[fi][bi] += bias
			}
		}
		n++
	}
	worstRF := sumRF / float64(n)
	worstSched := 0.5
	for fi := range bitSum {
		if !sched.Spec(sched.FieldID(fi)).Plot {
			continue
		}
		for _, s := range bitSum[fi] {
			avg := s / float64(n)
			if avg > worstSched {
				worstSched = avg
			}
			if 1-avg > worstSched {
				worstSched = 1 - avg
			}
		}
	}
	cpiFactor := protCPI / baseCPI
	if cpiFactor > 1.10 {
		t.Fatalf("all mechanisms together cost %.1f%% CPI, too much", (cpiFactor-1)*100)
	}

	params := nbti.DefaultParams()
	blocks := []metric.Block{
		{Name: "rf", CPIFactor: 1, CycleTimeFactor: 1, Guardband: params.CellGuardband(worstRF), TDPFactor: 1.01},
		{Name: "sched", CPIFactor: 1, CycleTimeFactor: 1, Guardband: params.CellGuardband(worstSched), TDPFactor: 1.02},
		{Name: "dl0", CPIFactor: 1, CycleTimeFactor: 1, Guardband: params.MinGuardband, TDPFactor: 1.01},
	}
	s := metric.Processor(cpiFactor, blocks)
	eff := s.Efficiency()
	if eff >= metric.Baseline().Efficiency() {
		t.Errorf("Penelope efficiency %.3f should beat baseline 1.73", eff)
	}
	if eff >= metric.PeriodicInversion().Efficiency() {
		t.Errorf("Penelope efficiency %.3f should beat periodic inversion 1.41", eff)
	}
}

// TestAdderPlusWorkloadGuardband ties the trace generator, operand
// stream and gate-level adder together: the Figure 5 pipeline.
func TestAdderPlusWorkloadGuardband(t *testing.T) {
	ad := adder.New32()
	params := nbti.DefaultParams()
	src := trace.NewOperandStream(trace.NewBank(3000, 150).Sources())
	res := ad.GuardbandScenario(src, 0.21, 1, 8, 200, params)
	if res.Guardband < 0.04 || res.Guardband > 0.08 {
		t.Errorf("21%% utilization guardband = %.3f, want ≈ 0.058", res.Guardband)
	}
	// Round-robin injection must beat paying the full guardband.
	eff := metric.Efficiency(1, res.Guardband, 1)
	if eff >= metric.Baseline().Efficiency() {
		t.Errorf("adder efficiency %.3f should beat 1.73", eff)
	}
}

// TestCasuisticAgainstPipeline cross-checks that the plan the classifier
// builds from pipeline measurements actually balances the scheduler when
// applied — the profile->plan->apply loop closes.
func TestCasuisticAgainstPipeline(t *testing.T) {
	tr := trace.NewTrace(trace.Multimedia, 5, 10000)
	base := pipeline.Run(pipeline.DefaultConfig(), tr)
	plan := sched.BuildPlan(base.Sched)

	// Every technique family must appear — the workload exercises all
	// branches of Figure 3.
	seen := map[mitigation.Technique]bool{}
	for f := sched.FieldID(0); f < sched.NumFields; f++ {
		seen[plan.Technique(f)] = true
	}
	for _, want := range []mitigation.Technique{
		mitigation.TechALL1, mitigation.TechISV,
		mitigation.TechSelfBalanced, mitigation.TechUncovered,
	} {
		if !seen[want] {
			t.Errorf("classifier never chose %v", want)
		}
	}

	cfg := pipeline.DefaultConfig()
	cfg.SchedPlan = plan
	prot := pipeline.Run(cfg, tr)
	if prot.Sched.WorstBias() >= base.Sched.WorstBias() {
		t.Errorf("plan did not improve worst bias: %.3f -> %.3f",
			base.Sched.WorstBias(), prot.Sched.WorstBias())
	}
}

// TestDeterministicAcrossStack re-runs the full stack and requires
// bit-identical statistics: everything is seeded.
func TestDeterministicAcrossStack(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.EnableISV = true
	cfg.DL0Options = cache.DefaultDynamicOptions(0.6, 0.02, 5)
	cfg.DL0Options.PeriodCycles = 3000
	cfg.DL0Options.WarmupCycles = 100
	cfg.DL0Options.TestCycles = 100
	run := func() pipeline.Result {
		return pipeline.Run(cfg, trace.NewTrace(trace.Server, 3, 6000))
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.DL0Stats.Misses != b.DL0Stats.Misses ||
		a.IntRF.WorstBias != b.IntRF.WorstBias {
		t.Error("full-stack runs diverged despite fixed seeds")
	}
}
