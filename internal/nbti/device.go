package nbti

import "math"

// Device simulates the interface-trap dynamics of a single PMOS
// transistor under an arbitrary stress/relax schedule. It implements the
// fractional model the paper describes in §2.2: during a stress interval
// traps are created in proportion to the remaining Si-H bonds; during a
// relax interval traps are annealed in proportion to the current trap
// count. Both processes integrate exactly over an interval, so long
// intervals need not be subdivided.
type Device struct {
	params Params
	nit    float64 // current interface-trap density, in units of N0
	time   float64 // total simulated time
	stress float64 // total time spent under stress
}

// NewDevice returns a fresh (undegraded) device governed by params.
func NewDevice(params Params) *Device {
	if !params.Valid() {
		panic("nbti: invalid parameters")
	}
	return &Device{params: params}
}

// Params returns the device's model parameters.
func (d *Device) Params() Params { return d.params }

// NIT returns the current interface-trap density as a fraction of N0.
func (d *Device) NIT() float64 { return d.nit / d.params.N0 }

// VTHShift returns the current relative threshold-voltage shift,
// proportional to NIT (Figure 1 caption).
func (d *Device) VTHShift() float64 {
	return d.params.MaxVTHShift * d.NIT()
}

// Time returns total simulated time.
func (d *Device) Time() float64 { return d.time }

// StressDuty returns the fraction of simulated time spent under stress.
func (d *Device) StressDuty() float64 {
	if d.time == 0 {
		return 0
	}
	return d.stress / d.time
}

// Stress ages the device for dt time units with the gate at "0".
// dN/dt = KStress·(N0 - N) integrates to
// N(t+dt) = N0 - (N0-N)·exp(-KStress·dt): creation slows down as bonds
// are exhausted, exactly the saturating behaviour of Figure 1.
func (d *Device) Stress(dt float64) {
	if dt < 0 {
		panic("nbti: negative stress interval")
	}
	n0 := d.params.N0
	d.nit = n0 - (n0-d.nit)*math.Exp(-d.params.KStress*dt)
	d.time += dt
	d.stress += dt
}

// Relax heals the device for dt time units with the gate at "1".
// dN/dt = -KRelax·N integrates to N(t+dt) = N·exp(-KRelax·dt): recovery
// is fastest when many traps exist and full recovery needs infinite time
// (§2.2).
func (d *Device) Relax(dt float64) {
	if dt < 0 {
		panic("nbti: negative relax interval")
	}
	d.nit *= math.Exp(-d.params.KRelax * dt)
	d.time += dt
}

// Apply ages the device for dt time units with the gate observing the
// given logic level: level false ("0") stresses, true ("1") relaxes.
func (d *Device) Apply(level bool, dt float64) {
	if level {
		d.Relax(dt)
	} else {
		d.Stress(dt)
	}
}

// Reset restores the device to its unstressed state.
func (d *Device) Reset() { d.nit, d.time, d.stress = 0, 0, 0 }

// TracePoint is one sample of a degradation trace.
type TracePoint struct {
	Time float64
	NIT  float64 // fraction of N0
	VTH  float64 // relative VTH shift
}

// SquareWave ages a fresh device with an alternating stress/relax square
// wave — stress for duty·period, then relax for (1-duty)·period — over
// the given number of periods, sampling the trap density at every phase
// boundary. The result regenerates Figure 1: saw-tooth NIT with a rising
// envelope that converges to the duty-cycle equilibrium.
func SquareWave(params Params, period, duty float64, periods int) []TracePoint {
	if period <= 0 || duty < 0 || duty > 1 || periods < 1 {
		panic("nbti: invalid square-wave shape")
	}
	dev := NewDevice(params)
	out := make([]TracePoint, 0, 2*periods+1)
	sample := func() {
		out = append(out, TracePoint{Time: dev.Time(), NIT: dev.NIT(), VTH: dev.VTHShift()})
	}
	sample()
	for i := 0; i < periods; i++ {
		dev.Stress(period * duty)
		sample()
		dev.Relax(period * (1 - duty))
		sample()
	}
	return out
}

// PeakEnvelope extracts the local maxima (end-of-stress samples) of a
// SquareWave trace, i.e. the upper envelope of Figure 1.
func PeakEnvelope(trace []TracePoint) []TracePoint {
	var out []TracePoint
	for i := 1; i < len(trace); i++ {
		prev, cur := trace[i-1], trace[i]
		next := cur
		if i+1 < len(trace) {
			next = trace[i+1]
		}
		if cur.NIT >= prev.NIT && cur.NIT >= next.NIT {
			out = append(out, cur)
		}
	}
	return out
}
