package nbti

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeviceStressMonotone(t *testing.T) {
	d := NewDevice(DefaultParams())
	prev := d.NIT()
	for i := 0; i < 20; i++ {
		d.Stress(0.1)
		if d.NIT() < prev {
			t.Fatalf("NIT decreased during stress at step %d", i)
		}
		prev = d.NIT()
	}
	if d.NIT() > 1 {
		t.Fatalf("NIT = %v exceeded N0", d.NIT())
	}
}

func TestDeviceRelaxHeals(t *testing.T) {
	d := NewDevice(DefaultParams())
	d.Stress(1)
	high := d.NIT()
	d.Relax(0.5)
	if d.NIT() >= high {
		t.Fatal("relaxation must reduce NIT")
	}
	if d.NIT() <= 0 {
		t.Fatal("finite relaxation must not fully heal (needs infinite time)")
	}
}

func TestDeviceSaturates(t *testing.T) {
	d := NewDevice(DefaultParams())
	d.Stress(1000)
	if !almostEqual(d.NIT(), 1, 1e-9) {
		t.Fatalf("long DC stress should saturate at N0, got %v", d.NIT())
	}
	if got := d.VTHShift(); !almostEqual(got, DefaultParams().MaxVTHShift, 1e-9) {
		t.Fatalf("saturated VTH shift = %v, want max", got)
	}
}

func TestDeviceDegradationSlowsDown(t *testing.T) {
	// Figure 1: "degradation speed decreases as the number of Si-H bonds
	// decreases". Equal stress intervals must add less and less NIT.
	d := NewDevice(DefaultParams())
	var deltas []float64
	prev := 0.0
	for i := 0; i < 5; i++ {
		d.Stress(0.3)
		deltas = append(deltas, d.NIT()-prev)
		prev = d.NIT()
	}
	for i := 1; i < len(deltas); i++ {
		if deltas[i] >= deltas[i-1] {
			t.Fatalf("stress increment %d (%v) not smaller than previous (%v)",
				i, deltas[i], deltas[i-1])
		}
	}
}

func TestDeviceRecoveryFasterWhenMoreTraps(t *testing.T) {
	// "the higher the number of NIT, the faster the recovery" (§2.2).
	p := DefaultParams()
	heavy := NewDevice(p)
	heavy.Stress(2)
	light := NewDevice(p)
	light.Stress(0.1)
	hBefore, lBefore := heavy.NIT(), light.NIT()
	heavy.Relax(0.05)
	light.Relax(0.05)
	if (hBefore - heavy.NIT()) <= (lBefore - light.NIT()) {
		t.Fatal("device with more traps must recover more in absolute terms")
	}
}

func TestDeviceApplyAndAccounting(t *testing.T) {
	d := NewDevice(DefaultParams())
	d.Apply(false, 1) // stress
	d.Apply(true, 1)  // relax
	if d.Time() != 2 {
		t.Fatalf("Time = %v, want 2", d.Time())
	}
	if got := d.StressDuty(); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("StressDuty = %v, want 0.5", got)
	}
	d.Reset()
	if d.NIT() != 0 || d.Time() != 0 || d.StressDuty() != 0 {
		t.Fatal("Reset did not clear device")
	}
}

func TestDevicePanics(t *testing.T) {
	d := NewDevice(DefaultParams())
	for _, f := range []func(){
		func() { d.Stress(-1) },
		func() { d.Relax(-1) },
		func() { NewDevice(Params{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSquareWaveShape(t *testing.T) {
	p := DefaultParams()
	trace := SquareWave(p, 0.2, 0.5, 50)
	if len(trace) != 101 {
		t.Fatalf("trace length = %d, want 101", len(trace))
	}
	if trace[0].NIT != 0 {
		t.Fatal("trace must start unstressed")
	}
	// Samples alternate up (after stress) and down (after relax).
	for i := 1; i+1 < len(trace); i += 2 {
		if trace[i].NIT <= trace[i-1].NIT {
			t.Fatalf("sample %d: stress phase did not raise NIT", i)
		}
		if trace[i+1].NIT >= trace[i].NIT {
			t.Fatalf("sample %d: relax phase did not lower NIT", i+1)
		}
	}
}

func TestSquareWaveConvergesToEquilibrium(t *testing.T) {
	// The saw-tooth envelope must converge to the duty-cycle equilibrium
	// for short periods (fast switching averages the two phases).
	p := DefaultParams()
	for _, duty := range []float64{0.3, 0.5, 0.8} {
		trace := SquareWave(p, 0.001, duty, 20000)
		final := trace[len(trace)-1].NIT
		want := p.EquilibriumTraps(duty)
		if !almostEqual(final, want, 0.01) {
			t.Errorf("duty %v: converged to %v, want %v", duty, final, want)
		}
	}
}

func TestSquareWaveEquilibriumOrdering(t *testing.T) {
	// Lower stress duty must settle at lower degradation.
	p := DefaultParams()
	low := SquareWave(p, 0.01, 0.3, 3000)
	high := SquareWave(p, 0.01, 0.9, 3000)
	if low[len(low)-1].NIT >= high[len(high)-1].NIT {
		t.Fatal("lower duty must yield lower steady-state NIT")
	}
}

func TestPeakEnvelope(t *testing.T) {
	p := DefaultParams()
	trace := SquareWave(p, 0.2, 0.5, 10)
	peaks := PeakEnvelope(trace)
	if len(peaks) != 10 {
		t.Fatalf("peaks = %d, want 10", len(peaks))
	}
	for i := 1; i < len(peaks); i++ {
		if peaks[i].NIT < peaks[i-1].NIT {
			t.Fatal("peak envelope must be non-decreasing under a steady square wave")
		}
	}
}

func TestSquareWavePanics(t *testing.T) {
	for _, f := range []func(){
		func() { SquareWave(DefaultParams(), 0, 0.5, 10) },
		func() { SquareWave(DefaultParams(), 1, -0.1, 10) },
		func() { SquareWave(DefaultParams(), 1, 0.5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDevicePropertyNITBounded(t *testing.T) {
	// Property: under any schedule, NIT stays within [0, N0].
	p := DefaultParams()
	f := func(steps []bool, dts []uint8) bool {
		d := NewDevice(p)
		n := len(steps)
		if len(dts) < n {
			n = len(dts)
		}
		for i := 0; i < n; i++ {
			d.Apply(steps[i], float64(dts[i])/64)
			if d.NIT() < 0 || d.NIT() > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDevicePropertyStressIncreasesVTH(t *testing.T) {
	p := DefaultParams()
	f := func(dtRaw uint8) bool {
		dt := float64(dtRaw)/255 + 0.001
		d := NewDevice(p)
		before := d.VTHShift()
		d.Stress(dt)
		return d.VTHShift() > before && !math.IsNaN(d.VTHShift())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
