package nbti

import (
	"testing"
	"testing/quick"
)

func TestResizeForAlreadyWithinBudget(t *testing.T) {
	p := DefaultParams()
	cost, ok := p.ResizeFor(0.55, 0.10)
	if !ok || cost.WidthMultiple != 1 {
		t.Errorf("bias 0.55 within 10%% budget should need nominal width, got %+v ok=%v", cost, ok)
	}
}

func TestResizeForImpossibleTarget(t *testing.T) {
	p := DefaultParams()
	if _, ok := p.ResizeFor(0.9, p.MinGuardband/2); ok {
		t.Error("target below the residual guardband must be unreachable")
	}
}

func TestResizeForMeetsTarget(t *testing.T) {
	p := DefaultParams()
	bias := 0.95
	target := 0.05
	cost, ok := p.ResizeFor(bias, target)
	if !ok {
		t.Fatal("resize should be possible")
	}
	if cost.WidthMultiple <= 1 {
		t.Fatalf("widening factor = %v, want > 1", cost.WidthMultiple)
	}
	// Check: effective bias after widening meets the guardband budget.
	eff := 0.5 + (bias-0.5)/cost.WidthMultiple
	if got := p.Guardband(eff); got > target+1e-9 {
		t.Errorf("guardband after resize = %v, want <= %v", got, target)
	}
	if cost.AreaFactor != cost.WidthMultiple || cost.PowerFactor != cost.WidthMultiple {
		t.Error("area and power must scale with width")
	}
}

func TestResizeForSymmetric(t *testing.T) {
	p := DefaultParams()
	a, okA := p.ResizeFor(0.9, 0.05)
	b, okB := p.ResizeFor(0.1, 0.05)
	if okA != okB || a != b {
		t.Error("resize must treat bias 0.9 and 0.1 identically (cell view)")
	}
}

func TestResizePropertyMonotone(t *testing.T) {
	// Property: a worse bias never needs a narrower transistor for the
	// same target.
	p := DefaultParams()
	f := func(b1Raw, b2Raw uint8) bool {
		b1 := 0.6 + float64(b1Raw)/255*0.4
		b2 := 0.6 + float64(b2Raw)/255*0.4
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		c1, ok1 := p.ResizeFor(b1, 0.05)
		c2, ok2 := p.ResizeFor(b2, 0.05)
		return ok1 && ok2 && c1.WidthMultiple <= c2.WidthMultiple+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergySaving(t *testing.T) {
	p := DefaultParams()
	// Balancing a 90%-biased structure to 50% cuts Vmin guardband ~9X
	// and saves measurable energy.
	s := p.EnergySaving(0.9, 0.5)
	if s <= 0 || s >= 0.5 {
		t.Errorf("energy saving = %v, want small positive fraction", s)
	}
	if got := p.EnergySaving(0.5, 0.5); got != 0 {
		t.Errorf("no bias change should save nothing, got %v", got)
	}
	// Symmetric in cell view.
	if a, b := p.EnergySaving(0.9, 0.5), p.EnergySaving(0.1, 0.5); a != b {
		t.Errorf("energy saving must be symmetric: %v vs %v", a, b)
	}
}

func TestEnergySavingPropertyOrdering(t *testing.T) {
	p := DefaultParams()
	f := func(bRaw uint8) bool {
		b := 0.5 + float64(bRaw)/255*0.5
		// More imbalance before -> more to gain by balancing.
		return p.EnergySaving(b, 0.5) >= p.EnergySaving((b+0.5)/2, 0.5)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
