package nbti

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDefaultParamsValid(t *testing.T) {
	if !DefaultParams().Valid() {
		t.Fatal("DefaultParams must be valid")
	}
}

func TestParamsValidRejects(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero N0", func(p *Params) { p.N0 = 0 }},
		{"negative KStress", func(p *Params) { p.KStress = -1 }},
		{"guardband inversion", func(p *Params) { p.MinGuardband = 0.5 }},
		{"width factor above one", func(p *Params) { p.WideWidthFactor = 2 }},
		{"recovery above one", func(p *Params) { p.RecoveryStrength = 1.5 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			tc.mutate(&p)
			if p.Valid() {
				t.Error("expected invalid parameters")
			}
		})
	}
}

func TestEquilibriumAnchors(t *testing.T) {
	p := DefaultParams()
	if got := p.EquilibriumTraps(1); !almostEqual(got, 1, 1e-12) {
		t.Errorf("equilibrium at DC = %v, want 1", got)
	}
	if got := p.EquilibriumTraps(0); got != 0 {
		t.Errorf("equilibrium at no stress = %v, want 0", got)
	}
	// The 10X VTH-shift reduction at 50% duty the paper cites from [1].
	if got := p.RelativeDegradation(0.5); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("relative degradation at 50%% duty = %v, want 0.1", got)
	}
}

func TestEquilibriumMonotone(t *testing.T) {
	p := DefaultParams()
	prev := -1.0
	for d := 0.0; d <= 1.0; d += 0.01 {
		cur := p.EquilibriumTraps(d)
		if cur < prev {
			t.Fatalf("equilibrium not monotone at duty %v", d)
		}
		prev = cur
	}
}

func TestVTHShiftAnchors(t *testing.T) {
	p := DefaultParams()
	if got := p.VTHShift(1); !almostEqual(got, 0.10, 1e-12) {
		t.Errorf("VTH shift at DC = %v, want 0.10", got)
	}
	if got := p.VTHShift(0.5); !almostEqual(got, 0.01, 1e-12) {
		t.Errorf("VTH shift at 50%% = %v, want 0.01 (10X lower)", got)
	}
	if got := p.VminIncrease(0.5); !almostEqual(got, 0.01, 1e-12) {
		t.Errorf("Vmin increase = %v, want 0.01", got)
	}
}

// TestGuardbandPaperAnchors checks every guardband number the paper
// quotes against the calibrated map (see DESIGN.md §2).
func TestGuardbandPaperAnchors(t *testing.T) {
	p := DefaultParams()
	tests := []struct {
		name string
		bias float64
		want float64
		eps  float64
	}{
		{"worst case 20%", 1.0, 0.20, 1e-12},
		{"perfect balance 2%", 0.5, 0.02, 1e-12},
		{"adder at 21% utilization -> 5.8%", 0.605, 0.058, 0.001},
		{"adder at 30% utilization -> 7.4%", 0.65, 0.074, 0.001},
		{"adder at 11% utilization -> 4.0%", 0.555, 0.040, 0.001},
		{"register file worst bias -> 3.6%", 0.545, 0.036, 0.001},
		{"scheduler worst bias -> 6.7%", 0.632, 0.0675, 0.001},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := p.Guardband(tc.bias); !almostEqual(got, tc.want, tc.eps) {
				t.Errorf("Guardband(%v) = %v, want %v", tc.bias, got, tc.want)
			}
		})
	}
}

func TestGuardbandClamps(t *testing.T) {
	p := DefaultParams()
	if got := p.Guardband(0.2); !almostEqual(got, p.MinGuardband, 1e-12) {
		t.Errorf("Guardband below 0.5 = %v, want MinGuardband", got)
	}
	if got := p.Guardband(1.5); !almostEqual(got, p.MaxGuardband, 1e-12) {
		t.Errorf("Guardband above 1.0 = %v, want MaxGuardband", got)
	}
}

func TestCellGuardbandSymmetric(t *testing.T) {
	p := DefaultParams()
	if a, b := p.CellGuardband(0.9), p.CellGuardband(0.1); !almostEqual(a, b, 1e-12) {
		t.Errorf("cell guardband must be symmetric: %v vs %v", a, b)
	}
	if got := p.CellGuardband(0.5); !almostEqual(got, p.MinGuardband, 1e-12) {
		t.Errorf("balanced cell guardband = %v, want minimum", got)
	}
}

func TestEffectiveBiasWide(t *testing.T) {
	p := DefaultParams()
	// §4.3: wide PMOS at 100% zero-signal probability degrade less than
	// narrow PMOS at 50%.
	wide := p.EffectiveBias(1.0, true)
	if wide >= 0.75 {
		t.Errorf("wide transistor effective bias %v should stay below narrow@0.75", wide)
	}
	if got := p.EffectiveBias(0.7, false); got != 0.7 {
		t.Errorf("narrow transistor bias must pass through, got %v", got)
	}
	// Symmetry below the neutral point.
	lo := p.EffectiveBias(0.0, true)
	if !almostEqual(lo, 0.5-p.WideWidthFactor*0.5, 1e-12) {
		t.Errorf("wide low-side bias = %v", lo)
	}
}

func TestLifetimeFactor(t *testing.T) {
	p := DefaultParams()
	if got := p.LifetimeFactor(1); !almostEqual(got, 1, 1e-12) {
		t.Errorf("lifetime at DC = %v, want 1", got)
	}
	// The paper's "lifetime can be increased by a factor of at least 4X"
	// at balanced duty [4].
	if got := p.LifetimeFactor(0.5); !almostEqual(got, 4, 1e-12) {
		t.Errorf("lifetime at 50%% duty = %v, want 4", got)
	}
	if got := p.LifetimeFactor(0); !math.IsInf(got, 1) {
		t.Errorf("lifetime with no stress = %v, want +Inf", got)
	}
}

func TestGuardbandPropertyMonotone(t *testing.T) {
	p := DefaultParams()
	f := func(aRaw, bRaw uint16) bool {
		a := 0.5 + float64(aRaw)/float64(math.MaxUint16)/2
		b := 0.5 + float64(bRaw)/float64(math.MaxUint16)/2
		if a > b {
			a, b = b, a
		}
		return p.Guardband(a) <= p.Guardband(b)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEquilibriumPropertyBounded(t *testing.T) {
	p := DefaultParams()
	f := func(dRaw uint16) bool {
		d := float64(dRaw) / float64(math.MaxUint16)
		e := p.EquilibriumTraps(d)
		return e >= 0 && e <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
