package nbti

import (
	"math"
	"testing"
)

// TestExactIntegrationSubdivision is the "exact integration" property
// the Device documents: aging over one long interval must be bit-close
// (within 1e-12) to the same interval subdivided into N steps, for both
// stress and relaxation and for mixed schedules. The closed forms
// compose exactly — exp(-K(t1+t2)) = exp(-Kt1)·exp(-Kt2) — so the only
// divergence is float rounding.
func TestExactIntegrationSubdivision(t *testing.T) {
	params := DefaultParams()
	const tol = 1e-12
	for _, tc := range []struct {
		name     string
		total    float64
		steps    int
		schedule func(d *Device, dt float64)
	}{
		{"stress", 3.7, 1000, func(d *Device, dt float64) { d.Stress(dt) }},
		{"stress-long", 250, 64, func(d *Device, dt float64) { d.Stress(dt) }},
		{"relax-after-stress", 5.0, 777, func(d *Device, dt float64) { d.Relax(dt) }},
		{"apply-stress", 0.9, 9, func(d *Device, dt float64) { d.Apply(false, dt) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			one := NewDevice(params)
			many := NewDevice(params)
			// Give the relax cases something to anneal.
			one.Stress(2)
			many.Stress(2)

			tc.schedule(one, tc.total)
			for i := 0; i < tc.steps; i++ {
				tc.schedule(many, tc.total/float64(tc.steps))
			}
			if diff := math.Abs(one.NIT() - many.NIT()); diff > tol {
				t.Errorf("NIT diverges by %g after %d-way subdivision (one=%.15f many=%.15f)",
					diff, tc.steps, one.NIT(), many.NIT())
			}
			if diff := math.Abs(one.Time() - many.Time()); diff > 1e-9 {
				t.Errorf("time accounting diverges by %g", diff)
			}
		})
	}

	// A mixed stress/relax schedule subdivides the same way: each phase
	// is split independently.
	phases := []struct {
		level bool
		dt    float64
	}{{false, 1.3}, {true, 0.4}, {false, 2.2}, {true, 3.1}, {false, 0.05}}
	one := NewDevice(params)
	many := NewDevice(params)
	for _, ph := range phases {
		one.Apply(ph.level, ph.dt)
		const n = 311
		for i := 0; i < n; i++ {
			many.Apply(ph.level, ph.dt/n)
		}
	}
	if diff := math.Abs(one.NIT() - many.NIT()); diff > tol {
		t.Errorf("mixed schedule diverges by %g under subdivision", diff)
	}
}

// TestDutyCycleEquilibriumMatchesClosedForm runs a long alternating
// stress/relax schedule at several duty cycles and checks the trap
// density converges to Params.EquilibriumTraps: the closed form is the
// infinitesimal-period limit, so with a period much shorter than the
// 1/KRelax response time, the steady-state saw-tooth must bracket it
// tightly.
func TestDutyCycleEquilibriumMatchesClosedForm(t *testing.T) {
	params := DefaultParams()
	const period = 1e-4
	for _, duty := range []float64{0.1, 0.3, 0.5, 0.8, 0.95} {
		want := params.EquilibriumTraps(duty)
		dev := NewDevice(params)
		// Run long past the slowest time constant (1/KStress = 1).
		for total := 0.0; total < 40; total += period {
			dev.Stress(period * duty)
			dev.Relax(period * (1 - duty))
		}
		trough := dev.NIT()
		dev.Stress(period * duty)
		peak := dev.NIT()
		// The steady-state ripple around the equilibrium is O(K·period).
		tol := 20 * period * want
		if !(trough <= want+tol && peak >= want-tol) {
			t.Errorf("duty %.2f: steady state [%.9f, %.9f] does not bracket closed form %.9f",
				duty, trough, peak, want)
		}
		if mid := (trough + peak) / 2; math.Abs(mid-want) > 1e-3*want+1e-9 {
			t.Errorf("duty %.2f: saw-tooth midpoint %.9f vs closed form %.9f", duty, mid, want)
		}
	}
}
