package nbti

// This file models the two fallback/benefit mechanisms the paper
// mentions but does not center on: resizing PMOS transistors that cannot
// be balanced (§2.1 "NBTI can be mitigated by using wider transistors,
// but it has an impact in delay, area and power"; §3.2 situation III;
// §4.5 "such resizing has a cost in power, area and delay"), and the
// Vmin/energy benefit of balanced storage cells (§1, §5).

// ResizeCost describes what widening a transistor costs.
type ResizeCost struct {
	// WidthMultiple is the required width relative to nominal.
	WidthMultiple float64
	// AreaFactor and PowerFactor scale linearly with width for the
	// resized device.
	AreaFactor  float64
	PowerFactor float64
}

// ResizeFor returns the widening needed so a transistor stressed with
// the given zero-signal probability meets the guardband budget
// targetGuardband. Widening by w scales the effective stress distance
// from neutral by 1/w (the same first-order model as EffectiveBias):
//
//	0.5 + (bias-0.5)/w  <=  biasFor(targetGuardband)
//
// ok is false when the target is below the technology's residual
// MinGuardband, which no amount of widening reaches.
func (p Params) ResizeFor(bias, targetGuardband float64) (ResizeCost, bool) {
	if bias < 0.5 {
		bias = 1 - bias // cell view: the complementary PMOS is stressed
	}
	if targetGuardband <= p.MinGuardband {
		return ResizeCost{}, false
	}
	if targetGuardband >= p.Guardband(bias) {
		// Already within budget: nominal width.
		return ResizeCost{WidthMultiple: 1, AreaFactor: 1, PowerFactor: 1}, true
	}
	// Invert the guardband map to the admissible bias.
	biasTarget := 0.5 + (targetGuardband-p.MinGuardband)/(p.MaxGuardband-p.MinGuardband)/2
	w := (bias - 0.5) / (biasTarget - 0.5)
	return ResizeCost{WidthMultiple: w, AreaFactor: w, PowerFactor: w}, true
}

// EnergySaving returns the relative dynamic-energy saving of a storage
// structure whose Vmin guardband shrinks from the bias before mitigation
// to the bias after. Supply voltage tracks Vmin (E ∝ V²), so balancing
// bias lets the structure run at a lower voltage:
//
//	saving = 1 - ((1+Vmin_after)/(1+Vmin_before))²
func (p Params) EnergySaving(biasBefore, biasAfter float64) float64 {
	vb := 1 + p.VminIncrease(cellView(biasBefore))
	va := 1 + p.VminIncrease(cellView(biasAfter))
	r := va / vb
	return 1 - r*r
}

func cellView(bias float64) float64 {
	if bias < 0.5 {
		return 1 - bias
	}
	return bias
}
