// Package nbti models negative bias temperature instability: the aging
// mechanism the Penelope processor mitigates (paper §2).
//
// NBTI progressively breaks silicon-hydrogen bonds at the silicon/oxide
// interface of a PMOS transistor while its gate observes a logic "0"
// (negative gate voltage). The broken bonds leave interface traps (NIT)
// that raise the threshold voltage VTH, slowing the transistor. While the
// gate observes a "1" the transistor partially self-heals: hydrogen
// diffuses back and anneals traps (§2.2, Figure 1).
//
// The package provides two layers:
//
//   - A dynamic reaction-diffusion style model (Device) matching the
//     paper's description: "the number of NIT created (recovered) during
//     Δt is a fraction of the current number of Si-H bonds (H atoms)".
//     It regenerates Figure 1 and yields the duty-cycle equilibrium that
//     justifies balancing signal probabilities.
//
//   - An empirical calibration layer (Guardband, VTHShift, Vmin,
//     Lifetime) mapping the worst-case zero-signal probability of a block
//     to the cycle-time guardband it requires. Anchors come from the
//     measurements the paper cites [Abadeer&Ellis, IRPS'03]: 20%
//     guardband at full stress, 2% at perfect balance (the "10X"
//     reduction), 10% vs 1% VTH shift, and at least 4X lifetime at 50%
//     duty [Alam, IEDM'03]. Linear interpolation between those anchors
//     reproduces every intermediate guardband the paper quotes (5.8% at
//     bias 0.605, 6.7% at 0.632, 3.6% at 0.545 — see DESIGN.md).
package nbti

import "math"

// Params holds the physical constants of the NBTI model. The zero value
// is not useful; use DefaultParams.
type Params struct {
	// N0 is the initial density of unbroken Si-H bonds, in normalized
	// units. VTH shift is proportional to the fraction of N0 converted
	// to interface traps.
	N0 float64

	// KStress is the fraction of remaining Si-H bonds broken per unit
	// time under stress (gate at "0").
	KStress float64

	// KRelax is the fraction of existing interface traps annealed per
	// unit time under relaxation (gate at "1"). The ratio KRelax/KStress
	// sets the equilibrium degradation at a given duty cycle; the
	// default ratio of 9 puts equilibrium degradation at 50% duty at
	// one tenth of the DC value, matching the 10X VTH-shift reduction
	// reported for balanced patterns.
	KRelax float64

	// MaxVTHShift is the relative VTH shift reached under DC stress
	// (duty 1.0) at end of life: 10% per the measurements in [1].
	MaxVTHShift float64

	// MaxGuardband is the cycle-time guardband required to tolerate
	// end-of-life degradation under worst-case (DC) stress: 20% [1].
	MaxGuardband float64

	// MinGuardband is the residual guardband at perfect balance
	// (duty 0.5): 2%, the paper's 10X reduction.
	MinGuardband float64

	// WideWidthFactor scales the effective stress of wide PMOS
	// transistors. Wide transistors "do not suffer from NBTI
	// significantly" [19]; the paper's electrical simulator shows wide
	// PMOS at 100% zero-signal probability degrading less than narrow
	// PMOS at 50% (§4.3). The default 0.05 satisfies that ordering:
	// effective bias 0.5+0.05·0.5 = 0.525 < 0.75.
	WideWidthFactor float64

	// RecoveryStrength in [0,1] scales how much of the idle-time
	// recovery counts against accumulated stress in the lifetime model.
	// 1 yields lifetime ∝ 1/duty², giving the paper's 4X at 50% duty.
	RecoveryStrength float64
}

// DefaultParams returns the calibration used throughout the paper
// reproduction (65nm-era anchors; see package comment).
func DefaultParams() Params {
	return Params{
		N0:               1.0,
		KStress:          1.0,
		KRelax:           9.0,
		MaxVTHShift:      0.10,
		MaxGuardband:     0.20,
		MinGuardband:     0.02,
		WideWidthFactor:  0.05,
		RecoveryStrength: 1.0,
	}
}

// Valid reports whether the parameters are physically meaningful.
func (p Params) Valid() bool {
	return p.N0 > 0 && p.KStress > 0 && p.KRelax >= 0 &&
		p.MaxVTHShift > 0 && p.MaxGuardband > p.MinGuardband &&
		p.MinGuardband >= 0 &&
		p.WideWidthFactor >= 0 && p.WideWidthFactor <= 1 &&
		p.RecoveryStrength >= 0 && p.RecoveryStrength <= 1
}

// EquilibriumTraps returns the steady-state interface-trap density (as a
// fraction of N0) for a gate signal with the given zero-signal
// probability (duty of stress). Derived from the fractional model: in
// equilibrium, traps created during stress equal traps annealed during
// relaxation, giving
//
//	NIT/N0 = d·KStress / (d·KStress + (1-d)·KRelax)
//
// which is 1 at d=1, 0 at d=0, and 1/(1+KRelax/KStress) at d=0.5.
func (p Params) EquilibriumTraps(duty float64) float64 {
	duty = clamp01(duty)
	num := duty * p.KStress
	den := num + (1-duty)*p.KRelax
	if den == 0 {
		return 0
	}
	return num / den
}

// RelativeDegradation returns the long-run degradation of a PMOS
// transistor with the given zero-signal probability, relative to DC
// stress (1.0 at duty 1, ~0.1 at duty 0.5 with default parameters).
func (p Params) RelativeDegradation(zeroProb float64) float64 {
	return p.EquilibriumTraps(zeroProb) / p.EquilibriumTraps(1)
}

// VTHShift returns the relative end-of-life threshold-voltage shift for
// a transistor with the given zero-signal probability: MaxVTHShift scaled
// by the equilibrium degradation.
func (p Params) VTHShift(zeroProb float64) float64 {
	return p.MaxVTHShift * p.RelativeDegradation(zeroProb)
}

// VminIncrease returns the relative increase in the minimum retention
// voltage of a storage cell whose worse-stressed PMOS has the given
// bias. Per the data the paper cites, Vmin must rise about 1:1 with the
// relative VTH shift (10% Vmin for 10% VTH [1], §1).
func (p Params) VminIncrease(cellBias float64) float64 {
	return p.VTHShift(cellBias)
}

// Guardband returns the cycle-time guardband required for a block whose
// worst-stressed transistor has the given effective zero-signal
// probability. Linear interpolation between the calibration anchors:
// MinGuardband at bias 0.5 and MaxGuardband at bias 1.0. Biases below
// 0.5 still require the residual MinGuardband (full recovery is only
// reached after infinite relaxation, §2.2).
func (p Params) Guardband(bias float64) float64 {
	if bias < 0.5 {
		bias = 0.5
	}
	if bias > 1 {
		bias = 1
	}
	return p.MinGuardband + (p.MaxGuardband-p.MinGuardband)*(bias-0.5)*2
}

// CellGuardband returns the guardband for a memory cell storing "0" with
// probability zeroBias. A cell is two cross-coupled inverters, so one
// PMOS is stressed zeroBias of the time and the other 1-zeroBias; the
// worse one dominates (§3.2).
func (p Params) CellGuardband(zeroBias float64) float64 {
	return p.Guardband(math.Max(zeroBias, 1-zeroBias))
}

// EffectiveBias folds transistor width into the stress bias: a wide
// transistor under bias b behaves like a narrow one under
// 0.5 + WideWidthFactor·(b-0.5).
func (p Params) EffectiveBias(bias float64, wide bool) float64 {
	if !wide {
		return bias
	}
	if bias < 0.5 {
		// A wide transistor biased toward "1" is even further from
		// danger; keep symmetry around the neutral point.
		return 0.5 - p.WideWidthFactor*(0.5-bias)
	}
	return 0.5 + p.WideWidthFactor*(bias-0.5)
}

// LifetimeFactor returns the factor by which lifetime extends when a
// transistor's zero-signal probability drops from 1.0 (DC stress) to
// duty. The model treats the effective aging rate as
// duty·(1 - RecoveryStrength·(1-duty)); with full recovery strength the
// rate is duty², so halving the duty quadruples lifetime — the paper's
// "at least 4X" [4].
func (p Params) LifetimeFactor(duty float64) float64 {
	duty = clamp01(duty)
	rate := duty * (1 - p.RecoveryStrength*(1-duty))
	if rate <= 0 {
		return math.Inf(1)
	}
	return 1 / rate
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
