package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestBpredExtension(t *testing.T) {
	r := Bpred(quickOptions())
	if r.BaselineBias < 0.80 {
		t.Errorf("baseline predictor bias = %.3f, want high", r.BaselineBias)
	}
	if r.InvertedBias >= r.BaselineBias {
		t.Error("inversion must reduce counter-cell bias")
	}
	if r.InvertedBias > 0.70 {
		t.Errorf("inverted predictor bias = %.3f, want near 0.5", r.InvertedBias)
	}
	// The mechanism must not wreck prediction.
	if r.BaselineAccuracy-r.InvertedAccuracy > 0.10 {
		t.Errorf("accuracy dropped %.3f -> %.3f, too costly",
			r.BaselineAccuracy, r.InvertedAccuracy)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "branch predictor") {
		t.Error("render incomplete")
	}
}

func TestLatchExtension(t *testing.T) {
	r := Latch(quickOptions())
	// §3.3/§4.3 shape: alternating the complementary pair is far better
	// for the latches than either real data or a single parked input.
	if !(r.Pair < r.SingleInput && r.Pair < r.RealOnly) {
		t.Errorf("pair (%.3f) must beat single (%.3f) and real-only (%.3f)",
			r.Pair, r.SingleInput, r.RealOnly)
	}
	if r.Pair > 0.70 {
		t.Errorf("alternating-pair latch bias = %.3f, want near balance", r.Pair)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "latch") {
		t.Error("render incomplete")
	}
}

func TestVminExtension(t *testing.T) {
	f6 := Fig6(quickOptions())
	f8 := Fig8(quickOptions())
	r := Vmin(f6, f8)
	if len(r.Structures) != 3 {
		t.Fatalf("got %d structures, want 3", len(r.Structures))
	}
	for _, s := range r.Structures {
		if s.VminAfter > s.VminBefore {
			t.Errorf("%s: Vmin guardband must not grow (%.3f -> %.3f)",
				s.Name, s.VminBefore, s.VminAfter)
		}
		if s.EnergySaving < 0 {
			t.Errorf("%s: negative energy saving %.4f", s.Name, s.EnergySaving)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Vmin") {
		t.Error("render incomplete")
	}
}
