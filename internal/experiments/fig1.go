package experiments

import (
	"fmt"
	"io"

	"penelope/internal/nbti"
)

// DutyPoint is the equilibrium trap density at one stress duty cycle.
type DutyPoint struct {
	Duty float64
	NIT  float64
}

// Fig1Result holds the regenerated NBTI stress/relax dynamics of paper
// Figure 1.
type Fig1Result struct {
	Trace []nbti.TracePoint
	// DutyEquilibria is the final NIT per duty cycle in ascending duty
	// order, demonstrating the equilibrium the balancing techniques aim
	// for.
	DutyEquilibria []DutyPoint
	// LifetimeAt50 is the lifetime extension factor at balanced duty
	// (the paper cites at least 4X).
	LifetimeAt50 float64
}

// Equilibrium returns the equilibrium NIT at the given duty cycle, or 0
// if the sweep did not include it.
func (r Fig1Result) Equilibrium(duty float64) float64 {
	for _, dp := range r.DutyEquilibria {
		if dp.Duty == duty {
			return dp.NIT
		}
	}
	return 0
}

// Fig1 simulates a PMOS device under an alternating stress/relax square
// wave, reproducing the saw-tooth interface-trap dynamics of Figure 1,
// plus the duty-cycle equilibria that motivate bias balancing.
func Fig1() Fig1Result {
	p := nbti.DefaultParams()
	res := Fig1Result{
		Trace:        nbti.SquareWave(p, 0.4, 0.5, 12),
		LifetimeAt50: p.LifetimeFactor(0.5),
	}
	for _, duty := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		res.DutyEquilibria = append(res.DutyEquilibria, DutyPoint{Duty: duty, NIT: p.EquilibriumTraps(duty)})
	}
	return res
}

// Render writes the Figure 1 data as text.
func (r Fig1Result) Render(w io.Writer) {
	section(w, "Figure 1: NIT under alternating stress (gate=0) and relax (gate=1)")
	fmt.Fprintf(w, "%10s %12s %12s\n", "time", "NIT/N0", "VTH shift")
	for _, pt := range r.Trace {
		bar := int(pt.NIT * 60)
		fmt.Fprintf(w, "%10.2f %12.4f %12.4f %s\n", pt.Time, pt.NIT, pt.VTH, hashBar(bar))
	}
	fmt.Fprintf(w, "\nduty-cycle equilibria (NIT/N0):\n")
	for _, dp := range r.DutyEquilibria {
		fmt.Fprintf(w, "  duty %.2f -> %.4f\n", dp.Duty, dp.NIT)
	}
	fmt.Fprintf(w, "lifetime extension at 50%% duty: %.1fX (paper: at least 4X)\n", r.LifetimeAt50)
}

func hashBar(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
