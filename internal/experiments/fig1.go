package experiments

import (
	"fmt"
	"io"

	"penelope/internal/nbti"
)

// Fig1Result holds the regenerated NBTI stress/relax dynamics of paper
// Figure 1.
type Fig1Result struct {
	Trace []nbti.TracePoint
	// FinalNIT per duty cycle, demonstrating the equilibrium the
	// balancing techniques aim for.
	DutyEquilibria map[float64]float64
	// LifetimeAt50 is the lifetime extension factor at balanced duty
	// (the paper cites at least 4X).
	LifetimeAt50 float64
}

// Fig1 simulates a PMOS device under an alternating stress/relax square
// wave, reproducing the saw-tooth interface-trap dynamics of Figure 1,
// plus the duty-cycle equilibria that motivate bias balancing.
func Fig1() Fig1Result {
	p := nbti.DefaultParams()
	res := Fig1Result{
		Trace:          nbti.SquareWave(p, 0.4, 0.5, 12),
		DutyEquilibria: map[float64]float64{},
		LifetimeAt50:   p.LifetimeFactor(0.5),
	}
	for _, duty := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		res.DutyEquilibria[duty] = p.EquilibriumTraps(duty)
	}
	return res
}

// Render writes the Figure 1 data as text.
func (r Fig1Result) Render(w io.Writer) {
	section(w, "Figure 1: NIT under alternating stress (gate=0) and relax (gate=1)")
	fmt.Fprintf(w, "%10s %12s %12s\n", "time", "NIT/N0", "VTH shift")
	for _, pt := range r.Trace {
		bar := int(pt.NIT * 60)
		fmt.Fprintf(w, "%10.2f %12.4f %12.4f %s\n", pt.Time, pt.NIT, pt.VTH, hashBar(bar))
	}
	fmt.Fprintf(w, "\nduty-cycle equilibria (NIT/N0):\n")
	for _, duty := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		fmt.Fprintf(w, "  duty %.2f -> %.4f\n", duty, r.DutyEquilibria[duty])
	}
	fmt.Fprintf(w, "lifetime extension at 50%% duty: %.1fX (paper: at least 4X)\n", r.LifetimeAt50)
}

func hashBar(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
