package experiments

import (
	"fmt"
	"io"

	"penelope/internal/pipeline"
	"penelope/internal/sched"
	"penelope/internal/trace"
)

// Fig8Result holds the scheduler bit-bias study of paper Figure 8 and
// the §4.5 field classification (Table 2).
type Fig8Result struct {
	Baseline  sched.Report
	Protected sched.Report
	Plan      *sched.Plan

	WorstBaseline  float64
	WorstProtected float64
}

// Fig8 profiles the scheduler on a slice of the workload to build the
// per-field technique plan (the paper profiles K on 100 of the 531
// traces), then evaluates baseline and protected schedulers on the
// remaining traces. All three sweeps replay the shared recording bank.
func Fig8(o Options) Fig8Result {
	o = o.normalized()
	return fig8(o.sources())
}

// fig8 is the driver body over an explicit source set, so the
// equivalence tests can feed it generator-backed sources and require
// bit-identical results to the recorded path.
func fig8(traces []trace.Source) Fig8Result {
	profileN := len(traces) / 5
	if profileN < 1 {
		profileN = 1
	}
	base := pipeline.DefaultConfig()
	profile := aggregateSchedReports(base, traces[:profileN])
	plan := sched.BuildPlan(profile)

	prot := pipeline.DefaultConfig()
	prot.SchedPlan = plan

	res := Fig8Result{
		Plan:      plan,
		Baseline:  aggregateSchedReports(base, traces[profileN:]),
		Protected: aggregateSchedReports(prot, traces[profileN:]),
	}
	res.WorstBaseline = res.Baseline.WorstBias()
	res.WorstProtected = res.Protected.WorstBias()
	return res
}

// aggregateSchedReports averages scheduler field reports across traces
// run on fresh cores. The runs fan out over the batch runner; the
// averaging happens in trace order, keeping the floats bit-identical to
// a serial sweep.
func aggregateSchedReports(cfg pipeline.Config, traces []trace.Source) sched.Report {
	return meanSchedReports(pipeline.RunBatch(cfg, traces, 0))
}

// meanSchedReports averages the scheduler reports of already-run
// pipeline results, in result order. Shared between Fig 8 and the fleet
// duty profiler, which reuses one batch of results for several
// structures.
func meanSchedReports(results []pipeline.Result) sched.Report {
	var agg sched.Report
	n := 0
	for _, res := range results {
		r := res.Sched
		if n == 0 {
			agg = r
			for fi := range agg.Fields {
				agg.Fields[fi].Biases = append([]float64(nil), r.Fields[fi].Biases...)
				agg.Fields[fi].BusyBias = append([]float64(nil), r.Fields[fi].BusyBias...)
			}
		} else {
			agg.EntryOccupancy += r.EntryOccupancy
			agg.DataOccupancy += r.DataOccupancy
			agg.PortAvailability += r.PortAvailability
			agg.Dispatches += r.Dispatches
			agg.RepairWrites += r.RepairWrites
			agg.RepairDiscarded += r.RepairDiscarded
			for fi := range agg.Fields {
				agg.Fields[fi].Occupancy += r.Fields[fi].Occupancy
				for b := range agg.Fields[fi].Biases {
					agg.Fields[fi].Biases[b] += r.Fields[fi].Biases[b]
					agg.Fields[fi].BusyBias[b] += r.Fields[fi].BusyBias[b]
				}
			}
		}
		n++
	}
	if n == 0 {
		return agg
	}
	inv := 1 / float64(n)
	agg.EntryOccupancy *= inv
	agg.DataOccupancy *= inv
	agg.PortAvailability *= inv
	for fi := range agg.Fields {
		f := &agg.Fields[fi]
		f.Occupancy *= inv
		worst := 0.5
		for b := range f.Biases {
			f.Biases[b] *= inv
			f.BusyBias[b] *= inv
			if f.Biases[b] > worst {
				worst = f.Biases[b]
			}
			if 1-f.Biases[b] > worst {
				worst = 1 - f.Biases[b]
			}
		}
		f.WorstBias = worst
	}
	return agg
}

// Render writes the Figure 8 series and the field classification.
func (r Fig8Result) Render(w io.Writer) {
	section(w, "Figure 8: scheduler bit bias (bias towards \"0\")")
	fmt.Fprintf(w, "entry occupancy %.1f%% (paper: 63%%), data fields %.1f%% busy (paper: 25-30%%), ports available %.1f%% (paper: 77%%)\n\n",
		r.Baseline.EntryOccupancy*100, r.Baseline.DataOccupancy*100, r.Baseline.PortAvailability*100)

	fmt.Fprintf(w, "%-12s %5s %12s %12s  %-14s\n", "field", "bits", "base worst", "prot worst", "technique")
	for fi, bf := range r.Baseline.Fields {
		spec := sched.Spec(bf.ID)
		if !spec.Plot {
			continue
		}
		pf := r.Protected.Fields[fi]
		fmt.Fprintf(w, "%-12s %5d %11.1f%% %11.1f%%  %-14s\n",
			bf.Name, bf.Bits, bf.WorstBias*100, pf.WorstBias*100, r.Plan.Technique(bf.ID))
	}
	fmt.Fprintf(w, "\nworst-case bias: baseline %.1f%% -> protected %.1f%% (paper: ~100%% -> 63.2%%)\n",
		r.WorstBaseline*100, r.WorstProtected*100)

	fmt.Fprintln(w, "\nper-bit series (plottable fields concatenated, baseline | protected):")
	bb := r.Baseline.BitSeries()
	pb := r.Protected.BitSeries()
	for i := range bb {
		fmt.Fprintf(w, "%4d %6.1f%% %6.1f%%\n", i+1, bb[i]*100, pb[i]*100)
	}
}

// SchedFieldRow is one field of the Table 2 layout.
type SchedFieldRow struct {
	Field       string
	Bits        int
	Description string
}

// Table2Result holds the scheduler field layout of paper Table 2.
type Table2Result struct {
	Rows      []SchedFieldRow
	TotalBits int
}

// Table2 collects the scheduler field layout (paper Table 2).
func Table2() Table2Result {
	var res Table2Result
	for _, f := range sched.Specs() {
		res.Rows = append(res.Rows, SchedFieldRow{Field: f.Name, Bits: f.Bits, Description: f.Description})
	}
	res.TotalBits = sched.TotalBits()
	return res
}

// Render writes Table 2.
func (r Table2Result) Render(w io.Writer) {
	section(w, "Table 2: scheduler fields")
	fmt.Fprintf(w, "%-12s %5s  %s\n", "field", "bits", "description")
	for _, f := range r.Rows {
		fmt.Fprintf(w, "%-12s %5d  %s\n", f.Field, f.Bits, f.Description)
	}
	fmt.Fprintf(w, "%-12s %5d\n", "total", r.TotalBits)
}
