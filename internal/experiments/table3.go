package experiments

import (
	"fmt"
	"io"

	"penelope/internal/cache"
	"penelope/internal/pipeline"
	"penelope/internal/stats"
)

// CacheConfig identifies one row group of paper Table 3.
type CacheConfig struct {
	Name    string
	IsTLB   bool
	Bytes   int // DL0 size (ignored for TLBs)
	Entries int // TLB entries (ignored for DL0)
	Ways    int
	// DynThreshold is the induced-extra-miss threshold of the dynamic
	// monitor for this configuration (§4.6: 2/3/4% for the DL0 sizes,
	// 0.5/1/2% for the DTLB sizes).
	DynThreshold float64
}

// Table3Configs returns the nine configurations evaluated in Table 3.
func Table3Configs() []CacheConfig {
	return []CacheConfig{
		{Name: "DL0 8-way 32KB", Bytes: 32 * 1024, Ways: 8, DynThreshold: 0.02},
		{Name: "DL0 8-way 16KB", Bytes: 16 * 1024, Ways: 8, DynThreshold: 0.03},
		{Name: "DL0 8-way 8KB", Bytes: 8 * 1024, Ways: 8, DynThreshold: 0.04},
		{Name: "DL0 4-way 32KB", Bytes: 32 * 1024, Ways: 4, DynThreshold: 0.02},
		{Name: "DL0 4-way 16KB", Bytes: 16 * 1024, Ways: 4, DynThreshold: 0.03},
		{Name: "DL0 4-way 8KB", Bytes: 8 * 1024, Ways: 4, DynThreshold: 0.04},
		{Name: "DTLB 8-way 128 ent.", IsTLB: true, Entries: 128, Ways: 8, DynThreshold: 0.005},
		{Name: "DTLB 8-way 64 ent.", IsTLB: true, Entries: 64, Ways: 8, DynThreshold: 0.01},
		{Name: "DTLB 8-way 32 ent.", IsTLB: true, Entries: 32, Ways: 8, DynThreshold: 0.02},
	}
}

// Table3Row is one row of Table 3: average performance loss per scheme.
type Table3Row struct {
	Config          CacheConfig
	SetFixed50      float64
	LineFixed50     float64
	LineDynamic60   float64
	BaselineMiss    float64 // baseline miss rate, for context
	InvertedLineDyn float64 // avg inverted fraction under the dynamic scheme
}

// Table3Result holds all rows plus the §4.7 combined-CPI run.
type Table3Result struct {
	Rows []Table3Row
	// CombinedCPI is the relative CPI with LineFixed50% on both the DL0
	// and the DTLB simultaneously (paper: 1.007).
	CombinedCPI float64
}

// Table3 evaluates SetFixed50%, LineFixed50% and LineDynamic60% on the
// six DL0 and three DTLB configurations, reporting the average relative
// performance loss across the workload.
func Table3(o Options) Table3Result {
	o = o.normalized()
	// One recorded workload serves all four schemes of all nine
	// configurations plus the combined run: 37 replays of a single
	// synthesis pass.
	traces := o.sources()
	var res Table3Result
	for _, cc := range Table3Configs() {
		row := Table3Row{Config: cc}
		var baseCPI, setCPI, lineCPI, dynCPI, baseMiss, dynInv float64
		// The four schemes sweep the workload through the batch runner;
		// sums accumulate in trace order so the averages are bit-identical
		// to a serial sweep.
		baseRes := pipeline.RunBatch(applyCacheConfig(cc, cache.Options{}), traces, 0)
		setRes := pipeline.RunBatch(applyCacheConfig(cc, cache.Options{
			Scheme: cache.SchemeSetFixed, InvertRatio: 0.5, RotatePeriod: 2_000_000,
		}), traces, 0)
		lineRes := pipeline.RunBatch(applyCacheConfig(cc, cache.Options{
			Scheme: cache.SchemeLineFixed, InvertRatio: 0.5, Seed: 17,
		}), traces, 0)
		dynRes := pipeline.RunBatch(applyCacheConfig(cc, dynOptions(o, cc)), traces, 0)
		for ti := range traces {
			base, set, line, dyn := baseRes[ti], setRes[ti], lineRes[ti], dynRes[ti]
			baseCPI += base.CPI
			setCPI += set.CPI
			lineCPI += line.CPI
			dynCPI += dyn.CPI
			if cc.IsTLB {
				baseMiss += base.DTLBMissRate
				dynInv += dyn.DTLBInverted
			} else {
				baseMiss += base.DL0MissRate
				dynInv += dyn.DL0Inverted
			}
		}
		n := float64(len(traces))
		row.SetFixed50 = setCPI/baseCPI - 1
		row.LineFixed50 = lineCPI/baseCPI - 1
		row.LineDynamic60 = dynCPI/baseCPI - 1
		row.BaselineMiss = baseMiss / n
		row.InvertedLineDyn = dynInv / n
		res.Rows = append(res.Rows, row)
	}

	// §4.7: LineFixed50% on DL0 and DTLB together.
	var baseCPI, bothCPI float64
	lineOpt := cache.Options{Scheme: cache.SchemeLineFixed, InvertRatio: 0.5, Seed: 17}
	bothCfg := pipeline.DefaultConfig()
	bothCfg.DL0Options = lineOpt
	bothCfg.DTLBOptions = lineOpt
	baseRes := pipeline.RunBatch(pipeline.DefaultConfig(), traces, 0)
	bothRes := pipeline.RunBatch(bothCfg, traces, 0)
	for ti := range traces {
		baseCPI += baseRes[ti].CPI
		bothCPI += bothRes[ti].CPI
	}
	res.CombinedCPI = bothCPI / baseCPI
	return res
}

// applyCacheConfig builds a pipeline config with the given cache
// geometry and inversion options on the structure under test, leaving
// the other structure at its default, unprotected configuration.
func applyCacheConfig(cc CacheConfig, opt cache.Options) pipeline.Config {
	cfg := pipeline.DefaultConfig()
	if cc.IsTLB {
		cfg.DTLBEntries = cc.Entries
		cfg.DTLBWays = cc.Ways
		cfg.DTLBOptions = opt
	} else {
		cfg.DL0Bytes = cc.Bytes
		cfg.DL0Ways = cc.Ways
		cfg.DL0Options = opt
	}
	return cfg
}

// dynOptions scales the §4.6 monitor windows (200K warm-up and test in a
// 10M-cycle period) to the experiment's run length so several decision
// windows fit in every trace replay.
func dynOptions(o Options, cc CacheConfig) cache.Options {
	period := uint64(o.TraceLength / 3)
	if period < 1500 {
		period = 1500
	}
	return cache.Options{
		Scheme:        cache.SchemeLineDynamic,
		InvertRatio:   0.6,
		PeriodCycles:  period,
		WarmupCycles:  period / 50,
		TestCycles:    period / 50,
		MissThreshold: cc.DynThreshold,
		PortFreeProb:  1,
		Seed:          17,
	}
}

// Render writes Table 3.
func (r Table3Result) Render(w io.Writer) {
	section(w, "Table 3: average performance loss per inversion scheme")
	fmt.Fprintf(w, "%-20s %14s %14s %16s %10s\n",
		"configuration", "SetFixed50%", "LineFixed50%", "LineDynamic60%", "base miss")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-20s %13s %14s %16s %10s\n", row.Config.Name,
			stats.Ratio(row.SetFixed50), stats.Ratio(row.LineFixed50),
			stats.Ratio(row.LineDynamic60), stats.Ratio(row.BaselineMiss))
	}
	fmt.Fprintf(w, "\ncombined CPI with LineFixed50%% on DL0+DTLB: %.4f (paper: 1.007)\n", r.CombinedCPI)
}

// MRUResult holds the DL0 hit-position distribution backing §3.2.1's
// line-granularity argument (paper: 90% of hits in the MRU position for
// a 32KB 8-way DL0, 7% at MRU+1, 3% elsewhere).
type MRUResult struct {
	// Ranks[i] is the fraction of DL0 hits landing at MRU+i, averaged
	// across traces.
	Ranks []float64
}

// MRUStudy measures the DL0 hit-position distribution on a sample of
// the workload.
func MRUStudy(o Options) MRUResult {
	o = o.normalized()
	cfg := pipeline.DefaultConfig()
	ranks := make([]float64, cfg.DL0Ways)
	n := 0.0
	for _, r := range pipeline.RunBatch(cfg, o.sampleSources(2), 0) {
		var hits uint64
		for _, c := range r.DL0Stats.HitWayRank {
			hits += c
		}
		if hits == 0 {
			continue
		}
		for i, c := range r.DL0Stats.HitWayRank {
			ranks[i] += float64(c) / float64(hits)
		}
		n++
	}
	for i := range ranks {
		ranks[i] /= n
	}
	return MRUResult{Ranks: ranks}
}

// Render writes the hit-position distribution.
func (r MRUResult) Render(w io.Writer) {
	section(w, "DL0 hit position distribution (§3.2.1)")
	for i, f := range r.Ranks {
		fmt.Fprintf(w, "MRU+%d: %6.2f%%\n", i, f*100)
	}
	fmt.Fprintln(w, "(paper: 90% MRU, 7% MRU+1, 3% remaining)")
}
