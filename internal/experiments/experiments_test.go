package experiments

import (
	"bytes"
	"strings"
	"testing"

	"penelope/internal/mitigation"
	"penelope/internal/sched"
)

// quickOptions keeps experiment tests fast: a handful of traces, short
// replays.
func quickOptions() Options {
	return Options{TraceLength: 6000, TraceStride: 60}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	Table1().Render(&buf)
	out := buf.String()
	for _, want := range []string{"encoder", "server", "531", "TPC-C"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	Table2().Render(&buf)
	out := buf.String()
	for _, want := range []string{"valid", "SRC1 data", "144"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q", want)
		}
	}
}

func TestFig1(t *testing.T) {
	r := Fig1()
	if len(r.Trace) == 0 {
		t.Fatal("no trace points")
	}
	if r.LifetimeAt50 < 4 {
		t.Errorf("lifetime at 50%% duty = %v, want >= 4", r.LifetimeAt50)
	}
	if r.Equilibrium(1.0) <= r.Equilibrium(0.5) {
		t.Error("equilibrium must grow with duty")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "duty-cycle equilibria") {
		t.Error("render incomplete")
	}
}

func TestFig4(t *testing.T) {
	r := Fig4()
	if len(r.Pairs) != 28 {
		t.Fatalf("got %d pairs, want 28", len(r.Pairs))
	}
	if r.Best.Label() != "1+8" {
		t.Errorf("best pair = %s, want 1+8 (paper)", r.Best.Label())
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "1+8") {
		t.Error("render incomplete")
	}
}

func TestFig5(t *testing.T) {
	r := Fig5(quickOptions())
	if len(r.Scenarios) != 4 {
		t.Fatalf("got %d scenarios, want 4", len(r.Scenarios))
	}
	// Figure 5 shape: guardband falls monotonically with idle share.
	for i := 1; i < len(r.Scenarios); i++ {
		if r.Scenarios[i].Guardband >= r.Scenarios[i-1].Guardband {
			t.Errorf("guardband must fall: %v then %v",
				r.Scenarios[i-1].Guardband, r.Scenarios[i].Guardband)
		}
	}
	if r.Scenarios[0].Guardband < 0.15 {
		t.Errorf("real-inputs guardband = %v, want near 20%%", r.Scenarios[0].Guardband)
	}
	if r.Efficiency >= 1.73 {
		t.Errorf("round-robin efficiency = %v, must beat the baseline 1.73", r.Efficiency)
	}
	// Priority allocation skews utilization; uniform flattens it.
	if len(r.UtilPriority) == 0 || len(r.UtilUniform) == 0 {
		t.Fatal("missing utilizations")
	}
	if r.UtilPriority[0] <= r.UtilUniform[0] {
		t.Error("priority policy should load adder 0 above the uniform share")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Error("render incomplete")
	}
}

func TestFig6(t *testing.T) {
	r := Fig6(quickOptions())
	if r.IntWorstBaseline < 0.70 {
		t.Errorf("baseline int worst bias = %v, want high (paper: 0.899)", r.IntWorstBaseline)
	}
	if r.IntWorstISV > 0.60 {
		t.Errorf("ISV int worst bias = %v, want near 0.5 (paper: 0.485)", r.IntWorstISV)
	}
	if r.FPWorstISV >= r.FPWorstBaseline {
		t.Error("ISV must improve the FP file")
	}
	if r.FreeInt < 0.5 || r.FreeFP < 0.5 {
		t.Error("register files must be free most of the time for ISV to apply")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Error("render incomplete")
	}
}

func TestFig8(t *testing.T) {
	r := Fig8(quickOptions())
	if r.WorstBaseline < 0.95 {
		t.Errorf("baseline worst bias = %v, want ~1.0", r.WorstBaseline)
	}
	if r.WorstProtected >= r.WorstBaseline {
		t.Error("protection must reduce the worst bias")
	}
	if r.WorstProtected > 0.85 {
		t.Errorf("protected worst bias = %v, want well below baseline (paper: 0.632)", r.WorstProtected)
	}
	// Classification spot checks from §4.5.
	if got := r.Plan.Technique(sched.FieldShift1); got != mitigation.TechALL1 {
		t.Errorf("shift1 = %v, want ALL1", got)
	}
	if got := r.Plan.Technique(sched.FieldSRC1Data); got != mitigation.TechISV {
		t.Errorf("SRC1 data = %v, want ISV", got)
	}
	if got := r.Plan.Technique(sched.FieldDSTTag); got != mitigation.TechSelfBalanced {
		t.Errorf("DST tag = %v, want self-balanced", got)
	}
	if got := r.Plan.Technique(sched.FieldValid); got != mitigation.TechUncovered {
		t.Errorf("valid = %v, want uncovered", got)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 8") {
		t.Error("render incomplete")
	}
}

func TestTable3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("table3 sweep is slow")
	}
	r := Table3(Options{TraceLength: 4000, TraceStride: 120})
	if len(r.Rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(r.Rows))
	}
	// Shape: DL0 losses grow as the cache shrinks for the fixed scheme.
	if !(r.Rows[0].SetFixed50 < r.Rows[2].SetFixed50) {
		t.Errorf("SetFixed loss should grow as DL0 shrinks: 32KB=%v 8KB=%v",
			r.Rows[0].SetFixed50, r.Rows[2].SetFixed50)
	}
	// The combined run must cost something but stay small.
	if r.CombinedCPI < 1.0 || r.CombinedCPI > 1.15 {
		t.Errorf("combined CPI = %v, want slightly above 1 (paper: 1.007)", r.CombinedCPI)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Table 3") {
		t.Error("render incomplete")
	}
}

func TestEfficiencyPaperInputs(t *testing.T) {
	r := Efficiency(PaperInputs())
	if r.Baseline < 1.72 || r.Baseline > 1.74 {
		t.Errorf("baseline = %v, want 1.73", r.Baseline)
	}
	if r.Inversion < 1.40 || r.Inversion > 1.42 {
		t.Errorf("periodic inversion = %v, want 1.41", r.Inversion)
	}
	if r.Penelope < 1.25 || r.Penelope > 1.31 {
		t.Errorf("Penelope = %v, want 1.28", r.Penelope)
	}
	if !(r.Penelope < r.Inversion && r.Inversion < r.Baseline) {
		t.Error("ordering must be Penelope < inversion < baseline")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "NBTIefficiency") {
		t.Error("render incomplete")
	}
}

func TestMRUStudy(t *testing.T) {
	var buf bytes.Buffer
	MRUStudy(quickOptions()).Render(&buf)
	if !strings.Contains(buf.String(), "MRU+0") {
		t.Error("MRU study output incomplete")
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalized()
	if o.TraceLength <= 0 || o.TraceStride <= 0 {
		t.Error("normalized options must be positive")
	}
}
