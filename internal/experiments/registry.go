package experiments

import (
	"fmt"
	"strings"
)

// ExperimentSpec is one registry entry: a stable id, a one-line
// description, and the driver that regenerates the experiment under a
// set of Options. The registry is the single source of truth for what
// experiments exist — cmd/penelope derives its flag help and "all"
// sweep from it, and the experiment service validates and dispatches
// jobs through it.
type ExperimentSpec struct {
	ID          string
	Description string
	// OptionsFree marks drivers whose result does not depend on Options
	// (static tables, device-model and gate-level studies). The service
	// canonicalizes their requests to the defaults so every spelling of
	// such an experiment shares one cache entry and one simulation.
	OptionsFree bool
	// Fleet marks drivers that consume the fleet lifetime knobs. For
	// every other experiment those knobs are irrelevant, and
	// CanonicalOptions resets them so fleet-axis sweeps never re-run an
	// identical trace-only simulation under a different key.
	Fleet bool
	Run   func(Options) Result
}

// CanonicalOptions reduces o to the fields the experiment actually
// consumes: options-free drivers collapse to the defaults, and
// non-fleet drivers drop the fleet knobs. Requests that would run the
// same simulation therefore share one cache key.
func (s ExperimentSpec) CanonicalOptions(o Options) Options {
	o = o.Normalized()
	if s.OptionsFree {
		return DefaultOptions()
	}
	if !s.Fleet {
		def := DefaultOptions()
		o.Population, o.Years, o.EpochDays = def.Population, def.Years, def.EpochDays
		o.VariationSigma, o.AttackYears, o.FleetSeed = def.VariationSigma, def.AttackYears, def.FleetSeed
	}
	return o
}

// registry lists every experiment in report order: the order
// `penelope run -experiment all` renders, which follows the paper's
// evaluation (§4) and then the extensions.
var registry = []ExperimentSpec{
	{ID: "table1", OptionsFree: true, Description: "workload inventory (paper Table 1)",
		Run: func(Options) Result { return Table1() }},
	{ID: "table2", OptionsFree: true, Description: "scheduler field layout (paper Table 2)",
		Run: func(Options) Result { return Table2() }},
	{ID: "fig1", OptionsFree: true, Description: "NIT stress/relax dynamics and duty-cycle equilibria (paper Figure 1)",
		Run: func(Options) Result { return Fig1() }},
	{ID: "fig4", OptionsFree: true, Description: "synthetic adder input pair sweep (paper Figure 4)",
		Run: func(Options) Result { return Fig4() }},
	{ID: "fig5", Description: "adder utilization and NBTI guardband scenarios (paper Figure 5, §4.3)",
		Run: func(o Options) Result { return Fig5(o) }},
	{ID: "fig6", Description: "register file bit bias, baseline vs ISV (paper Figure 6)",
		Run: func(o Options) Result { return Fig6(o) }},
	{ID: "fig8", Description: "scheduler bit bias and field plan (paper Figure 8, §4.5)",
		Run: func(o Options) Result { return Fig8(o) }},
	{ID: "mru", Description: "DL0 hit position distribution (§3.2.1)",
		Run: func(o Options) Result { return MRUStudy(o) }},
	{ID: "table3", Description: "cache inversion scheme performance loss (paper Table 3)",
		Run: func(o Options) Result { return Table3(o) }},
	{ID: "efficiency", Description: "NBTIefficiency summary, measured and paper inputs (§4.2, §4.7)",
		Run: func(o Options) Result { return EfficiencyStudy(o) }},
	{ID: "bpred", Description: "extension: branch predictor rotating inversion (§3.2.1)",
		Run: func(o Options) Result { return Bpred(o) }},
	{ID: "latch", Description: "extension: adder input latch aging (§3.3)",
		Run: func(o Options) Result { return Latch(o) }},
	{ID: "vmin", Description: "extension: Vmin and energy benefit of balanced cells (§1, §5)",
		Run: func(o Options) Result { return Vmin(Fig6(o), Fig8(o)) }},
	{ID: "lifetime", Fleet: true, Description: "fleet lifetime: multi-year guardband trajectory under process variation, baseline vs Penelope",
		Run: func(o Options) Result { return Lifetime(o) }},
	{ID: "yield", Fleet: true, Description: "fleet lifetime-yield curve at the provisioned guardband budget",
		Run: func(o Options) Result { return Yield(o) }},
}

// Experiments returns the registry in report order. The slice is
// shared; callers must not modify it.
func Experiments() []ExperimentSpec { return registry }

// Lookup returns the registry entry for id.
func Lookup(id string) (ExperimentSpec, bool) {
	for _, spec := range registry {
		if spec.ID == id {
			return spec, true
		}
	}
	return ExperimentSpec{}, false
}

// Run executes the experiment with the given id.
func Run(id string, o Options) (Result, error) {
	spec, ok := Lookup(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, IDList())
	}
	return spec.Run(o), nil
}

// IDs returns every experiment id in report order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, spec := range registry {
		ids[i] = spec.ID
	}
	return ids
}

// IDList renders the ids as a "|"-separated list for usage strings.
func IDList() string { return strings.Join(IDs(), "|") }
