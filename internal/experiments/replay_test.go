package experiments

import (
	"reflect"
	"testing"

	"penelope/internal/trace"
)

// replayOptions keeps the golden comparisons fast while still covering
// several traces from several suites.
func replayOptions() Options {
	return Options{TraceLength: 2000, TraceStride: 90}
}

// generatorSources builds the same workload subset the bank records, but
// backed by the synthesizing generator — the oracle side of the golden
// comparisons.
func generatorSources(o Options) []trace.Source {
	o = o.normalized()
	return trace.Sources(trace.SampleTraces(o.TraceLength, o.TraceStride))
}

// TestFig6ReplayGolden is the Figure 6 golden comparison: the driver
// over the shared recording bank must report every statistic — per-bit
// series, worst cases, free fractions, port availabilities —
// bit-identical to the same driver over generator-backed traces.
func TestFig6ReplayGolden(t *testing.T) {
	o := replayOptions()
	banked := Fig6(o)
	golden := fig6(generatorSources(o))
	if !reflect.DeepEqual(banked, golden) {
		t.Errorf("Fig6 over recordings differs from generator path:\n%+v\nvs\n%+v", banked, golden)
	}
}

// TestFig8ReplayGolden is the Figure 8 golden comparison: profile,
// plan, baseline and protected reports must all be bit-identical
// between the recorded and generator paths.
func TestFig8ReplayGolden(t *testing.T) {
	o := replayOptions()
	banked := Fig8(o)
	golden := fig8(generatorSources(o))
	if !reflect.DeepEqual(banked.Baseline, golden.Baseline) {
		t.Errorf("Fig8 baseline report differs between recorded and generator paths")
	}
	if !reflect.DeepEqual(banked.Protected, golden.Protected) {
		t.Errorf("Fig8 protected report differs between recorded and generator paths")
	}
	if !reflect.DeepEqual(banked.Plan, golden.Plan) {
		t.Errorf("Fig8 plan differs between recorded and generator paths")
	}
	if banked.WorstBaseline != golden.WorstBaseline || banked.WorstProtected != golden.WorstProtected {
		t.Errorf("Fig8 worst biases differ: recorded (%v, %v) vs generator (%v, %v)",
			banked.WorstBaseline, banked.WorstProtected, golden.WorstBaseline, golden.WorstProtected)
	}
}

// TestBankReusedAcrossDrivers pins the record-once property: two
// invocations with the same Options must hand out cursors over the very
// same Recording instances (pointer equality), not re-synthesized ones.
func TestBankReusedAcrossDrivers(t *testing.T) {
	o := replayOptions()
	a := o.bank()
	b := o.bank()
	if a != b {
		t.Fatal("bank() built two banks for identical Options")
	}
	recs := a.Recordings()
	if len(recs) == 0 {
		t.Fatal("bank is empty")
	}
	srcA := o.sources()
	srcB := o.sampleSources(1)
	if len(srcA) != len(recs) || len(srcB) != len(recs) {
		t.Fatalf("source counts %d/%d, want %d", len(srcA), len(srcB), len(recs))
	}
	for i := range recs {
		ca, okA := srcA[i].(*trace.Cursor)
		cb, okB := srcB[i].(*trace.Cursor)
		if !okA || !okB {
			t.Fatalf("source %d is not a replay cursor", i)
		}
		if ca.Recording() != recs[i] || cb.Recording() != recs[i] {
			t.Errorf("source %d does not share the bank's recording", i)
		}
	}
}
