package experiments

import (
	"encoding/json"
	"testing"
)

// TestOptionsKeyCanonical checks that every Options value that runs the
// same workload maps to the same cache key: zero fields normalize to
// the defaults, and JSON field order is irrelevant.
func TestOptionsKeyCanonical(t *testing.T) {
	def := DefaultOptions()
	same := []Options{
		{},
		{TraceLength: def.TraceLength},
		{TraceStride: def.TraceStride},
		{TraceLength: def.TraceLength, TraceStride: def.TraceStride},
		{TraceLength: -1, TraceStride: -7},
	}
	for _, o := range same {
		if got, want := o.Key(), def.Key(); got != want {
			t.Errorf("Options%+v.Key() = %q, want %q", o, got, want)
		}
	}

	// Permuted JSON bodies decode to the same key.
	var a, b Options
	if err := json.Unmarshal([]byte(`{"trace_length":8000,"trace_stride":24}`), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(`{"trace_stride":24,"trace_length":8000}`), &b); err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Errorf("permuted JSON keys differ: %q vs %q", a.Key(), b.Key())
	}

	// Distinct workloads get distinct keys.
	if a.Key() == def.Key() {
		t.Error("distinct options share a key")
	}
	if (Options{TraceLength: 8000, TraceStride: 12}).Key() == (Options{TraceLength: 12, TraceStride: 8000}).Key() {
		t.Error("length/stride must not be interchangeable in the key")
	}
}

// TestBankMemoizationSharesKey checks that the per-process bank cache
// is keyed on the canonical form: an explicit and a zero-valued spelling
// of the same workload share one recorded bank.
func TestBankMemoizationSharesKey(t *testing.T) {
	// Stride 531 keeps this cheap: a single recorded trace.
	a := Options{TraceLength: 900, TraceStride: 531}
	if a.bank() != (Options{TraceLength: 900, TraceStride: 531}).bank() {
		t.Error("equal options must share one memoized bank")
	}
	// A negative stride normalizes to the default before keying, so it
	// shares the default-stride bank for the same length.
	if (Options{TraceLength: 900, TraceStride: -3}).bank() != (Options{TraceLength: 900, TraceStride: DefaultOptions().TraceStride}).bank() {
		t.Error("normalized-equivalent options must share the memoized bank")
	}
	if (Options{TraceLength: 900, TraceStride: 531}).bank() == (Options{TraceLength: 901, TraceStride: 531}).bank() {
		t.Error("distinct options must not share a bank")
	}
}
