package experiments

import (
	"fmt"
	"io"

	"penelope/internal/bpred"
	"penelope/internal/nbti"
	"penelope/internal/trace"
)

// BpredResult holds the branch-predictor extension study: the paper
// names the branch predictor as a cache-like block (§3.2.1) but does not
// evaluate it; this driver does, with the rotating invalidate-and-invert
// mechanism.
type BpredResult struct {
	BaselineBias     float64
	InvertedBias     float64
	BaselineAccuracy float64
	InvertedAccuracy float64
	Guardband        float64 // residual guardband with inversion
}

// Bpred runs branch streams from the workload through a 4K-entry
// bimodal predictor with and without 50% rotating inversion.
func Bpred(o Options) BpredResult {
	o = o.normalized()
	run := func(invert bool) (*bpred.Predictor, float64, float64) {
		// 1K entries with a fast rotation so the inverted window sweeps
		// the table several times within the (scaled-down) run; real
		// hardware would rotate at coarse periods over a full lifetime.
		cfg := bpred.Config{Entries: 1024}
		if invert {
			cfg.InvertRatio = 0.5
			cfg.RotatePeriod = 8
		}
		p := bpred.New(cfg)
		for _, src := range o.sampleSources(2) {
			pc := uint64(0x1000)
			for {
				u, ok := src.NextUop()
				if !ok {
					break
				}
				pc += 4
				if u.Class == trace.ClassBranch {
					p.Predict(pc, u.Taken)
				}
			}
		}
		p.Finish()
		return p, p.WorstCellBias(), p.Accuracy()
	}
	_, baseBias, baseAcc := run(false)
	_, invBias, invAcc := run(true)
	params := nbti.DefaultParams()
	return BpredResult{
		BaselineBias:     baseBias,
		InvertedBias:     invBias,
		BaselineAccuracy: baseAcc,
		InvertedAccuracy: invAcc,
		Guardband:        params.CellGuardband(invBias),
	}
}

// Render writes the predictor study.
func (r BpredResult) Render(w io.Writer) {
	section(w, "Extension: branch predictor (cache-like block, §3.2.1)")
	fmt.Fprintf(w, "worst counter-cell bias: baseline %.1f%% -> inverted %.1f%%\n",
		r.BaselineBias*100, r.InvertedBias*100)
	fmt.Fprintf(w, "prediction accuracy:     baseline %.1f%% -> inverted %.1f%%\n",
		r.BaselineAccuracy*100, r.InvertedAccuracy*100)
	fmt.Fprintf(w, "residual guardband with inversion: %.1f%%\n", r.Guardband*100)
}

// LatchResult holds the §3.3 latch study on the adder's input latches.
type LatchResult struct {
	RealOnly    float64 // worst latch bias, real inputs held during idle
	SingleInput float64 // worst latch bias, one synthetic input injected
	Pair        float64 // worst latch bias, pair 1+8 alternated
}

// Latch ages the adder input latches under the Figure 5 scenarios and
// reports how the §3.1 injection policy treats the latches themselves.
func Latch(o Options) LatchResult {
	o = o.normalized()
	ad := adder32()
	src := trace.NewOperandStream(o.sampleSources(4))
	return LatchResult{
		RealOnly:    ad.LatchStudy(src, 1.0, []int{1, 8}, 300).WorstBias,
		SingleInput: ad.LatchStudy(src, 0.21, []int{1}, 300).WorstBias,
		Pair:        ad.LatchStudy(src, 0.21, []int{1, 8}, 300).WorstBias,
	}
}

// Render writes the latch study.
func (r LatchResult) Render(w io.Writer) {
	section(w, "Extension: adder input latches (§3.3)")
	fmt.Fprintf(w, "worst latch cell bias:\n")
	fmt.Fprintf(w, "  real inputs held during idle:   %.1f%%\n", r.RealOnly*100)
	fmt.Fprintf(w, "  single synthetic input (<0,0,0>): %.1f%%\n", r.SingleInput*100)
	fmt.Fprintf(w, "  alternating pair 1+8:           %.1f%% (the §4.3 side benefit)\n", r.Pair*100)
}

// VminResult holds the Vmin/energy benefit study (§1, §5).
type VminResult struct {
	Structures []VminRow
}

// VminRow is one storage structure's Vmin outcome.
type VminRow struct {
	Name         string
	BiasBefore   float64
	BiasAfter    float64
	VminBefore   float64
	VminAfter    float64
	EnergySaving float64
}

// Vmin converts the measured bias improvements of the Fig. 6/Fig. 8
// studies into Vmin guardband and energy savings.
func Vmin(f6 Fig6Result, f8 Fig8Result) VminResult {
	p := nbti.DefaultParams()
	row := func(name string, before, after float64) VminRow {
		cell := func(b float64) float64 {
			if 1-b > b {
				return 1 - b
			}
			return b
		}
		return VminRow{
			Name:         name,
			BiasBefore:   before,
			BiasAfter:    after,
			VminBefore:   p.VminIncrease(cell(before)),
			VminAfter:    p.VminIncrease(cell(after)),
			EnergySaving: p.EnergySaving(before, after),
		}
	}
	return VminResult{Structures: []VminRow{
		row("INT register file", f6.IntWorstBaseline, f6.IntWorstISV),
		row("FP register file", f6.FPWorstBaseline, f6.FPWorstISV),
		row("scheduler", f8.WorstBaseline, f8.WorstProtected),
	}}
}

// Render writes the Vmin study.
func (r VminResult) Render(w io.Writer) {
	section(w, "Extension: Vmin and energy benefit of balanced cells (§1, §5)")
	fmt.Fprintf(w, "%-20s %12s %12s %10s %10s %8s\n",
		"structure", "bias before", "bias after", "Vmin+", "Vmin+ after", "energy")
	for _, s := range r.Structures {
		fmt.Fprintf(w, "%-20s %11.1f%% %11.1f%% %9.1f%% %10.1f%% %7.1f%%\n",
			s.Name, s.BiasBefore*100, s.BiasAfter*100,
			s.VminBefore*100, s.VminAfter*100, s.EnergySaving*100)
	}
}
