package experiments

import (
	"encoding/json"
	"io"
)

// Result is the structured outcome of one experiment driver. Every
// figure and table produces a Result: data first, with Render as one
// view over it, so the same run can feed the text report, the -json
// flag and the experiment service's HTTP payloads. ID returns the
// registry id the result regenerates ("fig6", "table3", ...).
//
// Results marshal to a stable JSON schema: exported fields only, no
// maps with non-string keys, deterministic byte-for-byte output for a
// deterministic run (guarded by the json determinism tests).
type Result interface {
	ID() string
	Render(w io.Writer)
}

// SchemaVersion tags every marshaled payload so clients can detect
// schema changes. Bump it whenever a result struct changes shape.
// Version 2: Options gained the fleet lifetime knobs.
const SchemaVersion = 2

// Payload is the envelope every marshaled result ships in: which
// experiment produced it, under which (normalized) options, and the
// result data itself.
type Payload struct {
	Schema     int     `json:"schema"`
	Experiment string  `json:"experiment"`
	Options    Options `json:"options"`
	Data       Result  `json:"data"`
}

// NewPayload wraps a result and the options that produced it.
func NewPayload(r Result, o Options) Payload {
	return Payload{Schema: SchemaVersion, Experiment: r.ID(), Options: o.normalized(), Data: r}
}

// Marshal renders the payload as stable, indented JSON. The output is
// deterministic: marshaling the same result twice yields identical
// bytes.
func (p Payload) Marshal() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// MarshalCompact renders the payload on a single line, for NDJSON
// streams (`penelope run -json`). Same determinism as Marshal.
func (p Payload) MarshalCompact() ([]byte, error) {
	return json.Marshal(p)
}

// The experiment ids, one per registry entry. Each result type names
// the experiment it regenerates; the ids double as the service's cache
// key component.

// ID returns "table1".
func (Table1Result) ID() string { return "table1" }

// ID returns "table2".
func (Table2Result) ID() string { return "table2" }

// ID returns "fig1".
func (Fig1Result) ID() string { return "fig1" }

// ID returns "fig4".
func (Fig4Result) ID() string { return "fig4" }

// ID returns "fig5".
func (Fig5Result) ID() string { return "fig5" }

// ID returns "fig6".
func (Fig6Result) ID() string { return "fig6" }

// ID returns "fig8".
func (Fig8Result) ID() string { return "fig8" }

// ID returns "mru".
func (MRUResult) ID() string { return "mru" }

// ID returns "table3".
func (Table3Result) ID() string { return "table3" }

// ID returns "efficiency".
func (EfficiencyStudyResult) ID() string { return "efficiency" }

// ID returns "bpred".
func (BpredResult) ID() string { return "bpred" }

// ID returns "latch".
func (LatchResult) ID() string { return "latch" }

// ID returns "vmin".
func (VminResult) ID() string { return "vmin" }

// ID returns "lifetime".
func (LifetimeResult) ID() string { return "lifetime" }

// ID returns "yield".
func (YieldResult) ID() string { return "yield" }
