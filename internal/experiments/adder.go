package experiments

import (
	"fmt"
	"io"
	"sync"

	"penelope/internal/adder"
	"penelope/internal/metric"
	"penelope/internal/nbti"
	"penelope/internal/pipeline"
	"penelope/internal/trace"
)

// adder32 shares one elaborated 32-bit Ladner-Fischer adder across the
// experiment drivers: the netlist and its compiled program are immutable
// after construction (each sweep owns its StressSim), and rebuilding the
// ~400-gate netlist dominated the allocation profile of Fig4.
var adder32 = sync.OnceValue(adder.New32)

// Fig4Result holds the synthetic-input pair sweep of paper Figure 4.
type Fig4Result struct {
	Pairs []adder.PairResult
	Best  adder.PairResult
}

// Fig4 sweeps all 28 pairs of synthetic adder inputs and reports the
// fraction of narrow PMOS transistors left fully stressed by each pair.
// The paper finds pair 1+8 (<0,0,0> with <1,1,1>) best.
func Fig4() Fig4Result {
	ad := adder32()
	params := nbti.DefaultParams()
	pairs := ad.SweepPairs(params)
	return Fig4Result{Pairs: pairs, Best: adder.BestPair(pairs)}
}

// Render writes the Figure 4 series.
func (r Fig4Result) Render(w io.Writer) {
	section(w, "Figure 4: % narrow transistors with 100% zero-signal probability")
	for _, p := range r.Pairs {
		fmt.Fprintf(w, "%-5s %6.2f%% %s\n", p.Label(), p.NarrowFullyStressed*100,
			hashBar(int(p.NarrowFullyStressed*100)))
	}
	fmt.Fprintf(w, "best pair: %s (paper: 1+8)\n", r.Best.Label())
}

// Fig5Result holds the adder guardband scenarios of paper Figure 5 plus
// the measured adder utilizations that justify them (§4.3).
type Fig5Result struct {
	// UtilPriority and UtilUniform are the measured per-adder busy
	// fractions under the two allocation policies (paper: 11–30% with
	// priorities, 21% uniform).
	UtilPriority []float64
	UtilUniform  []float64

	Scenarios []adder.ScenarioResult

	// Efficiency is the §4.3 NBTIefficiency of round-robin injection
	// (paper: 1.24 at the worst-case 30% utilization).
	Efficiency float64
}

// Fig5 measures adder utilization on the workload under both allocation
// policies, then ages the Ladner-Fischer adder with trace-sampled real
// operands for 100%/30%/21%/11% of the time and the best synthetic pair
// (1+8) during the idle remainder, reporting the guardband each scenario
// requires.
func Fig5(o Options) Fig5Result {
	o = o.normalized()
	var res Fig5Result

	// Measured utilizations on a representative slice of the workload.
	// One recorded slice serves both utilization runs and the operand
	// stream: every consumer replays fresh cursors over the same shared
	// recordings, deterministic from Reset.
	traces := o.sampleSources(4)
	cfgP := pipeline.DefaultConfig()
	cfgP.AdderPolicy = pipeline.AdderPriority
	cfgU := pipeline.DefaultConfig()
	cfgU.AdderPolicy = pipeline.AdderUniform
	util := func(cfg pipeline.Config) []float64 {
		sum := make([]float64, cfg.NumAdders)
		n := 0
		for _, r := range pipeline.RunBatch(cfg, traces, 0) {
			for i, u := range r.AdderUtil {
				sum[i] += u
			}
			n++
		}
		for i := range sum {
			sum[i] /= float64(n)
		}
		return sum
	}
	res.UtilPriority = util(cfgP)
	res.UtilUniform = util(cfgU)

	// Aging scenarios at the paper's utilization points.
	ad := adder32()
	params := nbti.DefaultParams()
	src := trace.NewOperandStream(o.sampleSources(4))
	samples := 400
	for _, frac := range []float64{1.0, 0.30, 0.21, 0.11} {
		res.Scenarios = append(res.Scenarios, ad.GuardbandScenario(src, frac, 1, 8, samples, params))
	}
	// §4.3: efficiency at the worst-case utilization (30% real).
	res.Efficiency = metric.Efficiency(1.0, res.Scenarios[1].Guardband, 1.0)
	return res
}

// Render writes the Figure 5 bars.
func (r Fig5Result) Render(w io.Writer) {
	section(w, "Adder utilization (§4.3)")
	fmt.Fprintf(w, "priority allocation: ")
	for _, u := range r.UtilPriority {
		fmt.Fprintf(w, "%5.1f%% ", u*100)
	}
	fmt.Fprintf(w, " (paper: 11%%–30%%)\nuniform allocation:  ")
	for _, u := range r.UtilUniform {
		fmt.Fprintf(w, "%5.1f%% ", u*100)
	}
	fmt.Fprintf(w, " (paper: 21%%)\n")

	section(w, "Figure 5: NBTI guardband for adder input scenarios")
	paper := map[string]string{
		"real inputs":      "20%",
		"30% real + 1 + 8": "7.4%",
		"21% real + 1 + 8": "5.8%",
		"11% real + 1 + 8": "~4%",
	}
	for _, s := range r.Scenarios {
		fmt.Fprintf(w, "%-18s guardband %5.1f%%  (paper: %s)\n", s.Name, s.Guardband*100, paper[s.Name])
	}
	fmt.Fprintf(w, "NBTIefficiency at 30%% utilization: %.2f (paper: 1.24)\n", r.Efficiency)
}
