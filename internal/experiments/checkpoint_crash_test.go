package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"penelope/internal/lifetime"
	"penelope/internal/store/vfs"
)

// swapCheckpointFS installs fsys as the checkpoint writer's filesystem
// for the duration of the test.
func swapCheckpointFS(t *testing.T, fsys vfs.FS) {
	t.Helper()
	prev := checkpointFS
	checkpointFS = fsys
	t.Cleanup(func() { checkpointFS = prev })
}

// crashOptions is the smallest fleet that still crosses several
// checkpoint intervals: a handful of epochs, checkpointed every other
// one.
func crashOptions() Options {
	o := fleetOptions()
	o.Years = 0.4
	o.AttackYears = 0
	o.Population = 200
	return o
}

// TestCheckpointWriteDiscipline is the regression net for the
// un-fsynced checkpoint writer: writeFleetPair must follow the full
// temp-write/fsync/close/rename/dir-fsync discipline. The CLI once
// wrote checkpoints with os.WriteFile + os.Rename and no sync at all —
// a crash shortly after "checkpoint written" could take the file back.
func TestCheckpointWriteDiscipline(t *testing.T) {
	f := vfs.NewFaultFS(vfs.OS{})
	swapCheckpointFS(t, f)
	o := crashOptions().Normalized()
	duties := o.fleetDuties()
	engB, err := lifetime.New(o.fleetConfig(duties, false))
	if err != nil {
		t.Fatal(err)
	}
	engP, err := lifetime.New(o.fleetConfig(duties, true))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	if err := writeFleetPair(path, engB, engP); err != nil {
		t.Fatal(err)
	}
	if err := vfs.VerifyDiscipline(f.Log()); err != nil {
		t.Fatalf("checkpoint writer violates the durability discipline: %v", err)
	}
}

// TestLifetimeCheckpointCrashMatrix crashes a checkpointed lifetime run
// at every I/O step of every checkpoint write (with torn-write
// variants), then resumes from whatever the crash left on disk. The
// invariant is the paper-grade one: the resumed run's payload is
// byte-identical to an uninterrupted run — a crash can cost recomputed
// epochs, never correctness.
func TestLifetimeCheckpointCrashMatrix(t *testing.T) {
	o := crashOptions()
	want := marshalLifetime(t, Lifetime(o), o)

	// Rehearsal: run fault-free through the injector to enumerate the
	// checkpoint writer's I/O steps.
	r := vfs.NewFaultFS(vfs.OS{})
	swapCheckpointFS(t, r)
	rdir := t.TempDir()
	if _, err := LifetimeCheckpointed(o, filepath.Join(rdir, "fleet.ckpt"), 2); err != nil {
		t.Fatalf("rehearsal run failed: %v", err)
	}
	steps := r.Steps()
	if steps < 12 {
		t.Fatalf("rehearsal saw only %d I/O steps; expected several checkpoint writes", steps)
	}
	if err := vfs.VerifyDiscipline(r.Log()); err != nil {
		t.Fatalf("write discipline: %v", err)
	}
	writes := map[int]int{}
	for _, rec := range r.Log() {
		if rec.Op == vfs.OpWrite {
			writes[rec.Step] = rec.N
		}
	}

	for step := 0; step < steps; step++ {
		arms := []func(f *vfs.FaultFS){func(f *vfs.FaultFS) { f.CrashAt(step) }}
		if n := writes[step]; n > 1 {
			arms = append(arms, func(f *vfs.FaultFS) { f.CrashAtWrite(step, n/2) })
		}
		for vi, arm := range arms {
			label := fmt.Sprintf("step %d variant %d", step, vi)
			path := filepath.Join(t.TempDir(), "fleet.ckpt")
			f := vfs.NewFaultFS(vfs.OS{})
			arm(f)
			checkpointFS = f
			res, err := LifetimeCheckpointed(o, path, 2)
			if err == nil {
				// Only a crash at the very last directory sync lets the
				// run finish; the answer must already be right.
				if got := marshalLifetime(t, res, o); !bytes.Equal(got, want) {
					t.Fatalf("%s: completed run diverged", label)
				}
			}
			if !f.Crashed() {
				t.Fatalf("%s: crash step never executed", label)
			}

			// Reboot: plain filesystem, resume from whatever survived.
			checkpointFS = vfs.OS{}
			if data, err := os.ReadFile(path); err == nil {
				// Whatever is under the final name must be a complete,
				// readable checkpoint — never a torn prefix.
				if !bytes.HasPrefix(data, []byte(fleetPairMagic)) {
					t.Fatalf("%s: torn checkpoint under the final name", label)
				}
			}
			res, err = LifetimeCheckpointed(o, path, 2)
			if err != nil {
				t.Fatalf("%s: resume failed: %v", label, err)
			}
			if got := marshalLifetime(t, res, o); !bytes.Equal(got, want) {
				t.Fatalf("%s: resumed payload not byte-identical to uninterrupted run", label)
			}
		}
	}
}
