package experiments

import (
	"fmt"
	"io"

	"penelope/internal/metric"
	"penelope/internal/nbti"
)

// EfficiencyInputs carries the measured quantities the §4.7 summary
// combines. They can come from the other experiments (measured) or from
// the paper's own numbers (reference).
type EfficiencyInputs struct {
	AdderGuardband float64 // Fig. 5, worst-case utilization scenario
	IntRFWorstBias float64 // Fig. 6
	FPRFWorstBias  float64 // Fig. 6
	SchedWorstBias float64 // Fig. 8
	CombinedCPI    float64 // Table 3 runs with both caches protected
}

// PaperInputs returns the values the paper reports, for the reference
// column.
func PaperInputs() EfficiencyInputs {
	return EfficiencyInputs{
		AdderGuardband: 0.074,
		IntRFWorstBias: 0.485,
		FPRFWorstBias:  0.545, // 45.5% bias towards 0 = 54.5% cell stress
		SchedWorstBias: 0.632,
		CombinedCPI:    1.007,
	}
}

// EfficiencyResult is the §4.2/§4.7 comparison: NBTIefficiency of the
// baseline, periodic inversion, each Penelope block and the whole
// processor.
type EfficiencyResult struct {
	Inputs     EfficiencyInputs
	Blocks     []metric.Block
	Summary    metric.ProcessorSummary
	Baseline   float64
	Inversion  float64
	Penelope   float64
	Comparison []metric.Comparison
}

// Efficiency combines per-block measurements into the whole-processor
// NBTIefficiency (equations 1–4). TDP factors follow the paper's
// estimates: RINV and timestamps are below 1% of a register file, below
// 2% of the scheduler, one line plus INVCOUNT below 1% of a cache.
func Efficiency(in EfficiencyInputs) EfficiencyResult {
	p := nbti.DefaultParams()
	worst := func(bias float64) float64 {
		if 1-bias > bias {
			return 1 - bias
		}
		return bias
	}
	rfBias := worst(in.IntRFWorstBias)
	if w := worst(in.FPRFWorstBias); w > rfBias {
		rfBias = w
	}
	blocks := []metric.Block{
		{Name: "adder (round-robin inputs)", CPIFactor: 1, CycleTimeFactor: 1,
			Guardband: in.AdderGuardband, TDPFactor: 1.00},
		{Name: "register file (ISV)", CPIFactor: 1, CycleTimeFactor: 1,
			Guardband: p.Guardband(rfBias), TDPFactor: 1.01},
		{Name: "scheduler (ALL1/ALL1-K%/ISV)", CPIFactor: 1, CycleTimeFactor: 1,
			Guardband: p.Guardband(worst(in.SchedWorstBias)), TDPFactor: 1.02},
		{Name: "DL0 (LineFixed50%)", CPIFactor: 1, CycleTimeFactor: 1,
			Guardband: p.MinGuardband, TDPFactor: 1.01},
		{Name: "DTLB (LineFixed50%)", CPIFactor: 1, CycleTimeFactor: 1,
			Guardband: p.MinGuardband, TDPFactor: 1.01},
	}
	res := EfficiencyResult{
		Inputs:    in,
		Blocks:    blocks,
		Summary:   metric.Processor(in.CombinedCPI, blocks),
		Baseline:  metric.Baseline().Efficiency(),
		Inversion: metric.PeriodicInversion().Efficiency(),
	}
	res.Penelope = res.Summary.Efficiency()
	all := append([]metric.Block{metric.Baseline(), metric.PeriodicInversion()}, blocks...)
	res.Comparison = metric.Compare(all)
	return res
}

// EfficiencyStudyResult pairs the measured-input efficiency summary
// with the paper-input reference column — the full §4.7 comparison the
// "efficiency" experiment reports.
type EfficiencyStudyResult struct {
	Measured  EfficiencyResult
	Reference EfficiencyResult
}

// EfficiencyStudy runs the experiments the §4.7 summary combines —
// Table 3, Figure 5, Figure 6 and Figure 8 — and evaluates the
// NBTIefficiency with the measured inputs next to the paper's own
// numbers. All four sub-experiments replay the shared recording bank
// for o.
func EfficiencyStudy(o Options) EfficiencyStudyResult {
	t3 := Table3(o)
	f5 := Fig5(o)
	f6 := Fig6(o)
	f8 := Fig8(o)
	in := EfficiencyInputs{
		AdderGuardband: f5.Scenarios[1].Guardband,
		IntRFWorstBias: f6.IntWorstISV,
		FPRFWorstBias:  f6.FPWorstISV,
		SchedWorstBias: f8.WorstProtected,
		CombinedCPI:    t3.CombinedCPI,
	}
	return EfficiencyStudyResult{
		Measured:  Efficiency(in),
		Reference: Efficiency(PaperInputs()),
	}
}

// Render writes the measured summary, its inputs, and the reference
// column.
func (r EfficiencyStudyResult) Render(w io.Writer) {
	in := r.Measured.Inputs
	fmt.Fprintln(w, "\nmeasured inputs:")
	fmt.Fprintf(w, "  adder guardband %.1f%%, RF worst bias %.1f%%/%.1f%%, sched worst bias %.1f%%, combined CPI %.4f\n",
		in.AdderGuardband*100, in.IntRFWorstBias*100, in.FPRFWorstBias*100,
		in.SchedWorstBias*100, in.CombinedCPI)
	r.Measured.Render(w)
	fmt.Fprintln(w, "\nreference (paper inputs):")
	r.Reference.Render(w)
}

// Render writes the efficiency summary.
func (r EfficiencyResult) Render(w io.Writer) {
	section(w, "NBTIefficiency (eq. 1): (Delay·(1+guardband))³·TDP — lower is better")
	fmt.Fprint(w, metric.FormatTable(r.Comparison))
	fmt.Fprintf(w, "\nwhole-processor combination (eqs. 2-4):\n")
	fmt.Fprintf(w, "  delay (combined CPI) %.4f, TDP %.3f, guardband %.1f%%\n",
		r.Summary.Delay, r.Summary.TDP, r.Summary.Guardband*100)
	fmt.Fprintf(w, "  baseline            %.2f (paper: 1.73)\n", r.Baseline)
	fmt.Fprintf(w, "  periodic inversion  %.2f (paper: 1.41, memory-like blocks only)\n", r.Inversion)
	fmt.Fprintf(w, "  Penelope processor  %.2f (paper: 1.28)\n", r.Penelope)
}
