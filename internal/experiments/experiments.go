// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): each driver runs the relevant workload through the
// simulation stack and formats the same rows or series the paper
// reports. The cmd/penelope binary exposes them by id; the test suite
// asserts their shape against the paper's findings.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"penelope/internal/trace"
)

// Options tunes how much workload the experiment drivers run. The zero
// value is not useful; use DefaultOptions (full fidelity is a matter of
// raising TraceLength and lowering TraceStride).
type Options struct {
	// TraceLength is the uop count replayed per trace. The paper used
	// 10M instructions per trace; the default trades absolute numbers
	// (which depend on the substituted workload anyway) for runtime.
	TraceLength int `json:"trace_length"`
	// TraceStride subsamples the 531-trace workload: 1 runs everything,
	// n runs every n-th trace, preserving the suite mix.
	TraceStride int `json:"trace_stride"`
}

// DefaultOptions returns the settings used by the checked-in experiment
// outputs: every 12th trace (45 traces across all ten suites), 12000
// uops each.
func DefaultOptions() Options {
	return Options{TraceLength: 12000, TraceStride: 12}
}

func (o Options) normalized() Options {
	if o.TraceLength <= 0 {
		o.TraceLength = DefaultOptions().TraceLength
	}
	if o.TraceStride <= 0 {
		o.TraceStride = DefaultOptions().TraceStride
	}
	return o
}

// Normalized returns the options with zero and negative fields replaced
// by the defaults — the canonical form Key, the result payloads and the
// experiment service report.
func (o Options) Normalized() Options { return o.normalized() }

// Key canonicalizes the options into a stable string: zero and
// defaulted fields normalize first, so every Options value that runs
// the same workload maps to the same key. The experiment service keys
// its result cache on it (combined with the experiment id), and the
// per-process bank cache below shares the same canonical form.
func (o Options) Key() string {
	o = o.normalized()
	return fmt.Sprintf("length=%d,stride=%d", o.TraceLength, o.TraceStride)
}

// defaultBank records the default workload — every 12th trace, 45
// recordings, ~27 MB packed — exactly once per process, like the shared
// compiled adder. Every driver replays cursors over it, so Fig 5/6/8,
// Table 3 and the ablations all share one synthesis pass.
var defaultBank = sync.OnceValue(func() *trace.Bank {
	o := DefaultOptions()
	return trace.NewBank(o.TraceLength, o.TraceStride)
})

// bankCache memoizes banks for non-default Options (keyed by the
// canonical Options.Key), so benchmark and test sweeps that re-run a
// driver with the same custom workload also synthesize it only once —
// including Options values that only differ in zero/defaulted fields.
// Entries live for the process — the experiment drivers see a handful
// of Options values, and a bank is exactly what repeated sweeps want
// resident. The cache holds once-functions, not banks, so concurrent
// first users of one Options value never synthesize the same workload
// twice.
var bankCache sync.Map // Options.Key() -> func() *trace.Bank

// bank returns the process-wide recording bank for o.
func (o Options) bank() *trace.Bank {
	o = o.normalized()
	if o == DefaultOptions() {
		return defaultBank()
	}
	key := o.Key()
	if f, ok := bankCache.Load(key); ok {
		return f.(func() *trace.Bank)()
	}
	once := sync.OnceValue(func() *trace.Bank {
		return trace.NewBank(o.TraceLength, o.TraceStride)
	})
	f, _ := bankCache.LoadOrStore(key, once)
	return f.(func() *trace.Bank)()
}

// sources returns fresh replay cursors over the whole bank workload.
func (o Options) sources() []trace.Source {
	return o.bank().Sources()
}

// sampleSources returns cursors for every (TraceStride·mul)-th trace of
// the workload — the subsets the lighter studies (Fig 5, MRU, the
// extensions) run on.
func (o Options) sampleSources(mul int) []trace.Source {
	o = o.normalized()
	return o.bank().SampleSources(o.TraceStride * mul)
}

// section prints a titled separator for experiment output.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("-", len(title)))
}

// WorkloadRow is one suite of the Table 1 inventory.
type WorkloadRow struct {
	Suite       string
	Traces      int
	Description string
}

// Table1Result holds the workload inventory of paper Table 1.
type Table1Result struct {
	Rows  []WorkloadRow
	Total int
}

// Table1 collects the workload inventory (paper Table 1), as generated
// by the synthetic suite profiles.
func Table1() Table1Result {
	var res Table1Result
	for _, s := range trace.Suites() {
		res.Rows = append(res.Rows, WorkloadRow{Suite: s.Name, Traces: s.Count, Description: s.Description})
		res.Total += s.Count
	}
	return res
}

// Render writes Table 1.
func (r Table1Result) Render(w io.Writer) {
	section(w, "Table 1: Workloads")
	fmt.Fprintf(w, "%-14s %8s  %s\n", "suite", "#traces", "description")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %8d  %s\n", row.Suite, row.Traces, row.Description)
	}
	fmt.Fprintf(w, "%-14s %8d\n", "total", r.Total)
}
