// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): each driver runs the relevant workload through the
// simulation stack and formats the same rows or series the paper
// reports. The cmd/penelope binary exposes them by id; the test suite
// asserts their shape against the paper's findings.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"penelope/internal/trace"
)

// Options tunes how much workload the experiment drivers run. The zero
// value is not useful; use DefaultOptions (full fidelity is a matter of
// raising TraceLength and lowering TraceStride).
type Options struct {
	// TraceLength is the uop count replayed per trace. The paper used
	// 10M instructions per trace; the default trades absolute numbers
	// (which depend on the substituted workload anyway) for runtime.
	TraceLength int `json:"trace_length"`
	// TraceStride subsamples the 531-trace workload: 1 runs everything,
	// n runs every n-th trace, preserving the suite mix.
	TraceStride int `json:"trace_stride"`

	// Fleet lifetime knobs, consumed by the lifetime and yield
	// experiments (the per-workload drivers ignore them).

	// Population is the number of simulated chips in the fleet.
	Population int `json:"population"`
	// Years is the simulated service life.
	Years float64 `json:"years"`
	// EpochDays is the aggregation step of the lifetime engine: one
	// fleet statistics row per epoch.
	EpochDays float64 `json:"epoch_days"`
	// VariationSigma is the lognormal process-variation spread of the
	// per-chip NBTI parameters. Negative disables variation entirely
	// (zero, like the other fields, normalizes to the default).
	VariationSigma float64 `json:"variation_sigma"`
	// AttackYears inserts an adversarial wearout-attack phase
	// (maximum stress duty on every structure) of this length in the
	// middle of the service life. 0 = no attack.
	AttackYears float64 `json:"attack_years"`
	// FleetSeed roots the deterministic per-chip parameter sampling.
	FleetSeed uint64 `json:"fleet_seed"`

	// Workers caps the lifetime engine's shard fan-out (0 =
	// GOMAXPROCS). Results are bit-identical for every value, so it is
	// execution policy, not an experiment parameter: it is excluded
	// from Key and from the JSON payload envelope, and the HTTP API
	// cannot set it.
	Workers int `json:"-"`
}

// DefaultOptions returns the settings used by the checked-in experiment
// outputs: every 12th trace (45 traces across all ten suites), 12000
// uops each; a 5000-chip fleet aged 7 years in 30-day epochs with 8%
// process variation and no attack phase.
func DefaultOptions() Options {
	return Options{
		TraceLength: 12000, TraceStride: 12,
		Population: 5000, Years: 7, EpochDays: 30,
		VariationSigma: 0.08, AttackYears: 0, FleetSeed: 1,
	}
}

func (o Options) normalized() Options {
	def := DefaultOptions()
	if o.TraceLength <= 0 {
		o.TraceLength = def.TraceLength
	}
	if o.TraceStride <= 0 {
		o.TraceStride = def.TraceStride
	}
	if o.Population <= 0 {
		o.Population = def.Population
	}
	if o.Years <= 0 {
		o.Years = def.Years
	}
	if o.EpochDays <= 0 {
		o.EpochDays = def.EpochDays
	}
	switch {
	case o.VariationSigma < 0:
		o.VariationSigma = 0
	case o.VariationSigma == 0:
		o.VariationSigma = def.VariationSigma
	}
	if o.AttackYears < 0 {
		o.AttackYears = 0
	}
	if o.AttackYears > o.Years {
		o.AttackYears = o.Years
	}
	if o.FleetSeed == 0 {
		o.FleetSeed = def.FleetSeed
	}
	if o.Workers < 0 {
		o.Workers = 0
	}
	return o
}

// Normalized returns the options with zero and negative fields replaced
// by the defaults — the canonical form Key, the result payloads and the
// experiment service report.
func (o Options) Normalized() Options { return o.normalized() }

// Key canonicalizes the options into a stable string: zero and
// defaulted fields normalize first, so every Options value that runs
// the same workload maps to the same key. The experiment service keys
// its result cache on it (combined with the experiment id), and the
// per-process bank cache below keys on the trace-only prefix
// (traceKey). Workers is execution policy and deliberately absent.
func (o Options) Key() string {
	o = o.normalized()
	return fmt.Sprintf("%s,pop=%d,years=%g,epoch=%g,sigma=%g,attack=%g,seed=%d",
		o.traceKey(), o.Population, o.Years, o.EpochDays,
		o.VariationSigma, o.AttackYears, o.FleetSeed)
}

// traceKey canonicalizes only the workload-shaping fields — the part of
// the key the recording bank and the fleet duty profiles depend on.
func (o Options) traceKey() string {
	o = o.normalized()
	return fmt.Sprintf("length=%d,stride=%d", o.TraceLength, o.TraceStride)
}

// defaultBank records the default workload — every 12th trace, 45
// recordings, ~27 MB packed — exactly once per process, like the shared
// compiled adder. Every driver replays cursors over it, so Fig 5/6/8,
// Table 3 and the ablations all share one synthesis pass.
var defaultBank = sync.OnceValue(func() *trace.Bank {
	o := DefaultOptions()
	return trace.NewBank(o.TraceLength, o.TraceStride)
})

// bankCache memoizes banks for non-default Options (keyed by the
// canonical trace-only key, so fleet-knob variants share one bank), so
// benchmark and test sweeps that re-run a driver with the same custom
// workload also synthesize it only once — including Options values that
// only differ in zero/defaulted fields.
// Entries live for the process — the experiment drivers see a handful
// of Options values, and a bank is exactly what repeated sweeps want
// resident. The cache holds once-functions, not banks, so concurrent
// first users of one Options value never synthesize the same workload
// twice.
var bankCache sync.Map // Options.traceKey() -> func() *trace.Bank

// bank returns the process-wide recording bank for o.
func (o Options) bank() *trace.Bank {
	o = o.normalized()
	if def := DefaultOptions(); o.TraceLength == def.TraceLength && o.TraceStride == def.TraceStride {
		return defaultBank()
	}
	key := o.traceKey()
	if f, ok := bankCache.Load(key); ok {
		return f.(func() *trace.Bank)()
	}
	once := sync.OnceValue(func() *trace.Bank {
		return trace.NewBank(o.TraceLength, o.TraceStride)
	})
	f, _ := bankCache.LoadOrStore(key, once)
	return f.(func() *trace.Bank)()
}

// sources returns fresh replay cursors over the whole bank workload.
func (o Options) sources() []trace.Source {
	return o.bank().Sources()
}

// sampleSources returns cursors for every (TraceStride·mul)-th trace of
// the workload — the subsets the lighter studies (Fig 5, MRU, the
// extensions) run on.
func (o Options) sampleSources(mul int) []trace.Source {
	o = o.normalized()
	return o.bank().SampleSources(o.TraceStride * mul)
}

// section prints a titled separator for experiment output.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("-", len(title)))
}

// WorkloadRow is one suite of the Table 1 inventory.
type WorkloadRow struct {
	Suite       string
	Traces      int
	Description string
}

// Table1Result holds the workload inventory of paper Table 1.
type Table1Result struct {
	Rows  []WorkloadRow
	Total int
}

// Table1 collects the workload inventory (paper Table 1), as generated
// by the synthetic suite profiles.
func Table1() Table1Result {
	var res Table1Result
	for _, s := range trace.Suites() {
		res.Rows = append(res.Rows, WorkloadRow{Suite: s.Name, Traces: s.Count, Description: s.Description})
		res.Total += s.Count
	}
	return res
}

// Render writes Table 1.
func (r Table1Result) Render(w io.Writer) {
	section(w, "Table 1: Workloads")
	fmt.Fprintf(w, "%-14s %8s  %s\n", "suite", "#traces", "description")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %8d  %s\n", row.Suite, row.Traces, row.Description)
	}
	fmt.Fprintf(w, "%-14s %8d\n", "total", r.Total)
}
