package experiments

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"penelope/internal/lifetime"
)

// fleetOptions is a light workload and small fleet for the lifetime
// driver tests.
func fleetOptions() Options {
	return Options{
		TraceLength: 2000, TraceStride: 120,
		Population: 900, Years: 3, EpochDays: 45,
		VariationSigma: 0.1, AttackYears: 1, FleetSeed: 5,
	}
}

func marshalLifetime(t *testing.T, r LifetimeResult, o Options) []byte {
	t.Helper()
	payload, err := NewPayload(r, o).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// TestLifetimeWorkerInvariance requires the lifetime payload to be
// byte-identical for any engine worker count — Workers is execution
// policy, not an experiment parameter.
func TestLifetimeWorkerInvariance(t *testing.T) {
	// computeLifetime bypasses the trajectory memo: the point is that
	// re-running with different worker counts produces the same bytes.
	o := fleetOptions().Normalized()
	o.Workers = 1
	want := marshalLifetime(t, computeLifetime(o), o)
	for _, workers := range []int{2, 7} {
		o.Workers = workers
		if got := marshalLifetime(t, computeLifetime(o), o); !bytes.Equal(got, want) {
			t.Fatalf("lifetime payload with %d workers diverges from serial run", workers)
		}
	}
}

// TestLifetimeMemoized checks yield and repeated lifetime calls share
// one fleet simulation: the memoized result is the same value.
func TestLifetimeMemoized(t *testing.T) {
	o := fleetOptions()
	a, b := Lifetime(o), Lifetime(o)
	if len(a.Baseline.Epochs) == 0 || &a.Baseline.Epochs[0] != &b.Baseline.Epochs[0] {
		t.Error("repeated Lifetime calls re-ran the fleet simulation")
	}
}

// TestLifetimeRenderShortRun covers sub-year trajectories: the yearly
// subsample must still render (it once indexed an empty slice).
func TestLifetimeRenderShortRun(t *testing.T) {
	o := fleetOptions()
	o.Years = 0.4
	o.AttackYears = 0
	o.Population = 200
	r := Lifetime(o)
	var buf bytes.Buffer
	r.Render(&buf)
	Yield(o).Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

// TestLifetimeResultShape sanity-checks the experiment against the
// paper's argument: mitigation must lower the end-of-life guardband,
// the attack phase must appear in the schedule, and both fleets must
// cover the full service life.
func TestLifetimeResultShape(t *testing.T) {
	o := fleetOptions()
	r := Lifetime(o)
	if len(r.Structures) != 4 {
		t.Fatalf("expected 4 profiled structures, got %v", r.Structures)
	}
	for _, s := range r.Structures {
		if !(s.Penelope <= s.Baseline) {
			t.Errorf("structure %s: mitigation raised the duty (%.3f -> %.3f)", s.Name, s.Baseline, s.Penelope)
		}
		if s.Baseline < 0.5 || s.Baseline > 1 {
			t.Errorf("structure %s: baseline duty %.3f out of worst-case range", s.Name, s.Baseline)
		}
	}
	if !(r.Penelope.FinalMeanGuardband < r.Baseline.FinalMeanGuardband) {
		t.Errorf("penelope fleet guardband %.4f not below baseline %.4f",
			r.Penelope.FinalMeanGuardband, r.Baseline.FinalMeanGuardband)
	}
	if len(r.Baseline.Epochs) != len(r.Penelope.Epochs) || len(r.Baseline.Epochs) == 0 {
		t.Fatalf("fleet trajectories diverge in length: %d vs %d",
			len(r.Baseline.Epochs), len(r.Penelope.Epochs))
	}
	sawAttack := false
	for _, st := range r.Baseline.Epochs {
		if st.Phase == "attack" {
			sawAttack = true
		}
	}
	if !sawAttack {
		t.Error("attack phase missing from the schedule despite AttackYears")
	}
	if r.CriticalPath.Depth == 0 || !r.DelayModel.Valid() {
		t.Errorf("delay model not derived from the compiled adder: %+v %+v", r.CriticalPath, r.DelayModel)
	}
}

// TestLifetimeCheckpointResume is the end-to-end checkpoint guarantee:
// a run checkpointed mid-flight at epoch k and resumed — with a
// different worker count — produces a payload byte-identical to an
// uninterrupted run.
func TestLifetimeCheckpointResume(t *testing.T) {
	o := fleetOptions()
	o.Workers = 2
	want := marshalLifetime(t, Lifetime(o), o)

	for _, k := range []int{1, 5} {
		path := filepath.Join(t.TempDir(), "fleet.ckpt")
		// Interrupt: step both fleets to epoch k and checkpoint, exactly
		// as a killed LifetimeCheckpointed run would have left the file.
		duties := o.Normalized().fleetDuties()
		engB, err := lifetime.New(o.Normalized().fleetConfig(duties, false))
		if err != nil {
			t.Fatal(err)
		}
		engP, err := lifetime.New(o.Normalized().fleetConfig(duties, true))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			engB.Step(1)
			engP.Step(1)
		}
		if err := writeFleetPair(path, engB, engP); err != nil {
			t.Fatal(err)
		}

		o.Workers = 5
		res, err := LifetimeCheckpointed(o, path, 2)
		if err != nil {
			t.Fatalf("resume from epoch %d: %v", k, err)
		}
		if got := marshalLifetime(t, res, o); !bytes.Equal(got, want) {
			t.Fatalf("resume from epoch %d: payload not byte-identical to uninterrupted run", k)
		}
		// The completed run leaves a final checkpoint; re-running resumes
		// from the finished state and still answers identically.
		res, err = LifetimeCheckpointed(o, path, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got := marshalLifetime(t, res, o); !bytes.Equal(got, want) {
			t.Fatal("re-run from completed checkpoint diverged")
		}
	}
}

// pollLimitCtx cancels after a fixed number of Err polls: runLifetime
// polls once per epoch step, so the limit interrupts a run at an exact,
// deterministic epoch — no timing races.
type pollLimitCtx struct {
	context.Context
	polls, limit int
}

func (c *pollLimitCtx) Err() error {
	c.polls++
	if c.polls > c.limit {
		return context.Canceled
	}
	return nil
}

// TestLifetimeCheckpointedCtxInterrupted cancels a checkpointed run
// mid-flight and checks the cancellation path wrote a resumable
// checkpoint: the resumed run's payload is byte-identical to an
// uninterrupted one.
func TestLifetimeCheckpointedCtxInterrupted(t *testing.T) {
	o := fleetOptions()
	want := marshalLifetime(t, Lifetime(o), o)

	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	ctx := &pollLimitCtx{Context: context.Background(), limit: 5}
	_, err := LifetimeCheckpointedCtx(ctx, o, path, 4)
	if !errors.Is(err, ErrLifetimeInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrLifetimeInterrupted", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cancellation did not leave a checkpoint: %v", err)
	}

	res, err := LifetimeCheckpointedCtx(context.Background(), o, path, 4)
	if err != nil {
		t.Fatalf("resume after interruption: %v", err)
	}
	if got := marshalLifetime(t, res, o); !bytes.Equal(got, want) {
		t.Fatal("resumed payload not byte-identical to uninterrupted run")
	}
}

// TestLifetimeCheckpointRejectsMismatch requires a stale checkpoint
// from different options to fail loudly instead of answering.
func TestLifetimeCheckpointRejectsMismatch(t *testing.T) {
	o := fleetOptions()
	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	if _, err := LifetimeCheckpointed(o, path, 4); err != nil {
		t.Fatal(err)
	}
	other := o
	other.Population = o.Population + 1
	if _, err := LifetimeCheckpointed(other, path, 4); err == nil ||
		!strings.Contains(err.Error(), "different options") {
		t.Fatalf("mismatched checkpoint accepted (err = %v)", err)
	}
	// Corrupt magic fails loudly too.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LifetimeCheckpointed(o, path, 4); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

// TestFleetDutiesMemoized checks the per-workload duty profile is
// measured once and shared, like the recording bank.
func TestFleetDutiesMemoized(t *testing.T) {
	a := Options{TraceLength: 900, TraceStride: 531}.fleetDuties()
	b := Options{TraceLength: 900, TraceStride: 531, Population: 42}.fleetDuties()
	if len(a) == 0 || &a[0] != &b[0] {
		t.Error("same workload re-measured for different fleet knobs")
	}
}

// TestYieldConsistent checks the yield curve is exactly the complement
// of the lifetime violation trajectory.
func TestYieldConsistent(t *testing.T) {
	o := fleetOptions()
	life := Lifetime(o)
	y := Yield(o)
	if len(y.Curve) != len(life.Baseline.Epochs) {
		t.Fatalf("yield curve has %d points for %d epochs", len(y.Curve), len(life.Baseline.Epochs))
	}
	for i, pt := range y.Curve {
		if pt.Baseline != 1-life.Baseline.Epochs[i].ViolatedFraction ||
			pt.Penelope != 1-life.Penelope.Epochs[i].ViolatedFraction {
			t.Fatalf("yield point %d inconsistent with lifetime run", i)
		}
	}
	if y.BaselineLifetime > 0 && y.PenelopeLifetime > 0 && y.PenelopeLifetime < y.BaselineLifetime {
		t.Errorf("penelope fleet died sooner: %.2f vs %.2f years", y.PenelopeLifetime, y.BaselineLifetime)
	}
}

// TestFleetOptionsNormalization covers the fleet knobs' canonical form:
// zeros take defaults, negative sigma disables variation, attack spans
// clamp to the service life.
func TestFleetOptionsNormalization(t *testing.T) {
	def := DefaultOptions()
	n := (Options{}).Normalized()
	if n.Population != def.Population || n.Years != def.Years ||
		n.EpochDays != def.EpochDays || n.VariationSigma != def.VariationSigma ||
		n.FleetSeed != def.FleetSeed {
		t.Errorf("zero options normalized to %+v, want defaults %+v", n, def)
	}
	if got := (Options{VariationSigma: -1}).Normalized().VariationSigma; got != 0 {
		t.Errorf("negative sigma normalized to %g, want 0 (disabled)", got)
	}
	if got := (Options{Years: 2, AttackYears: 5}).Normalized().AttackYears; got != 2 {
		t.Errorf("oversized attack normalized to %g years, want clamp to 2", got)
	}
	// Workers never reaches the cache key or the payload envelope.
	a, b := Options{Workers: 1}, Options{Workers: 8}
	if a.Key() != b.Key() {
		t.Error("Workers leaked into the cache key")
	}
	// Fleet knobs do reach the key.
	if (Options{Population: 100}).Key() == (Options{Population: 200}).Key() {
		t.Error("population missing from the cache key")
	}
}
