package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the committed JSON goldens")

// goldenOptions matches the replay golden tests: a light workload and a
// small fleet so the whole registry runs in seconds.
func goldenOptions() Options {
	return Options{TraceLength: 2000, TraceStride: 90, Population: 600}
}

// TestResultJSONDeterministic runs every registry experiment once and
// requires two marshals of the result to be byte-identical, the
// envelope to carry the right id and normalized options, and the bytes
// to round-trip as JSON.
func TestResultJSONDeterministic(t *testing.T) {
	o := goldenOptions()
	for _, spec := range Experiments() {
		res := spec.Run(o)
		if res.ID() != spec.ID {
			t.Errorf("%s: result ID() = %q", spec.ID, res.ID())
		}
		first, err := NewPayload(res, o).Marshal()
		if err != nil {
			t.Fatalf("%s: marshal: %v", spec.ID, err)
		}
		second, err := NewPayload(res, o).Marshal()
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", spec.ID, err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s: marshaling twice produced different bytes", spec.ID)
		}
		var env struct {
			Schema     int             `json:"schema"`
			Experiment string          `json:"experiment"`
			Options    Options         `json:"options"`
			Data       json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal(first, &env); err != nil {
			t.Fatalf("%s: payload does not parse: %v", spec.ID, err)
		}
		if env.Schema != SchemaVersion || env.Experiment != spec.ID {
			t.Errorf("%s: envelope = {schema %d, experiment %q}", spec.ID, env.Schema, env.Experiment)
		}
		if env.Options != o.normalized() {
			t.Errorf("%s: envelope options = %+v, want normalized %+v", spec.ID, env.Options, o.normalized())
		}
		if len(env.Data) == 0 || string(env.Data) == "null" {
			t.Errorf("%s: empty data payload", spec.ID)
		}
	}
}

// TestResultJSONGolden pins the Fig 6, Fig 8 and fleet lifetime/yield
// payloads against committed goldens: the simulation is deterministic,
// so the marshaled bytes must reproduce exactly across processes and
// machines. Refresh with `go test ./internal/experiments -run Golden
// -update` after an intentional schema or simulation change.
func TestResultJSONGolden(t *testing.T) {
	o := goldenOptions()
	for _, id := range []string{"fig6", "fig8", "lifetime", "yield"} {
		res, err := Run(id, o)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := NewPayload(res, o).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", id+"_golden.json")
		if *updateGolden {
			if err := os.WriteFile(path, payload, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to create)", id, err)
		}
		if !bytes.Equal(payload, want) {
			t.Errorf("%s: payload diverges from committed golden %s (%d vs %d bytes); run with -update if intentional",
				id, path, len(payload), len(want))
		}
	}
}
