package experiments

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"reflect"
	"sync"

	"penelope/internal/circuit"
	"penelope/internal/lifetime"
	"penelope/internal/nbti"
	"penelope/internal/pipeline"
	"penelope/internal/sched"
	"penelope/internal/store/vfs"
	"penelope/internal/trace"
)

// StructureDuty is the measured worst-case stress duty of one
// microarchitectural structure under the workload, with the paper's
// mitigations off (baseline) and on (Penelope): the per-phase inputs of
// the fleet lifetime engine.
type StructureDuty struct {
	Name     string  `json:"name"`
	Baseline float64 `json:"baseline"`
	Penelope float64 `json:"penelope"`
}

// fleetAdderSamples sets how many real operand samples the adder duty
// measurement draws; it matches the Fig 5 scenarios.
const fleetAdderSamples = 400

// dutyCache memoizes measured fleet duty profiles per trace workload
// (the fleet knobs do not affect them), mirroring the recording-bank
// cache: once-functions so concurrent first users measure exactly once.
var dutyCache sync.Map // Options.traceKey() -> func() []StructureDuty

// fleetDuties returns the memoized duty profile for o's workload.
func (o Options) fleetDuties() []StructureDuty {
	o = o.normalized()
	key := o.traceKey()
	if f, ok := dutyCache.Load(key); ok {
		return f.(func() []StructureDuty)()
	}
	once := sync.OnceValue(func() []StructureDuty { return measureFleetDuties(o) })
	f, _ := dutyCache.LoadOrStore(key, once)
	return f.(func() []StructureDuty)()
}

// measureFleetDuties runs the workload through the pipeline twice —
// mitigations off and on — and distills each structure's worst-case
// stress duty from the pipeline statistics: the per-trace-averaged
// worst cell bias for the register files and scheduler (ISV and the
// Fig 8 field plan are the mitigations), and the worst PMOS effective
// bias of the aged adder with idle inputs held (baseline) versus the
// 1+8 synthetic pair injected at the measured utilization (Penelope,
// §4.3). Duties feed lifetime.Phase directly.
func measureFleetDuties(o Options) []StructureDuty {
	traces := o.sources()
	baseCfg := pipeline.DefaultConfig()
	baseRes := pipeline.RunBatch(baseCfg, traces, 0)

	// The scheduler plan is profiled on the first fifth of the
	// workload, like Fig 8.
	profileN := len(traces) / 5
	if profileN < 1 {
		profileN = 1
	}
	plan := sched.BuildPlan(meanSchedReports(baseRes[:profileN]))
	penCfg := pipeline.DefaultConfig()
	penCfg.EnableISV = true
	penCfg.SchedPlan = plan
	penRes := pipeline.RunBatch(penCfg, traces, 0)

	mean := func(res []pipeline.Result, pick func(pipeline.Result) float64) float64 {
		sum := 0.0
		for _, r := range res {
			sum += pick(r)
		}
		return sum / float64(len(res))
	}

	// Adder: operand streams replay the same recorded slice Fig 5 uses.
	ad := adder32()
	params := nbti.DefaultParams()
	src := trace.NewOperandStream(o.sampleSources(4))
	baseSc := ad.GuardbandScenario(src, 1.0, 1, 8, fleetAdderSamples, params)
	util := mean(penRes, func(r pipeline.Result) float64 { return r.AdderUtilMean })
	penSc := ad.GuardbandScenario(src, util, 1, 8, fleetAdderSamples, params)

	return []StructureDuty{
		{Name: "adder", Baseline: baseSc.WorstBias, Penelope: penSc.WorstBias},
		{Name: "int-regfile",
			Baseline: mean(baseRes, func(r pipeline.Result) float64 { return r.IntRF.WorstBias }),
			Penelope: mean(penRes, func(r pipeline.Result) float64 { return r.IntRF.WorstBias })},
		{Name: "fp-regfile",
			Baseline: mean(baseRes, func(r pipeline.Result) float64 { return r.FPRF.WorstBias }),
			Penelope: mean(penRes, func(r pipeline.Result) float64 { return r.FPRF.WorstBias })},
		{Name: "scheduler",
			Baseline: meanSchedReports(baseRes).WorstBias(),
			Penelope: meanSchedReports(penRes).WorstBias()},
	}
}

// fleetDelayModel builds the shared VTH→guardband map from the compiled
// 32-bit adder's critical path, anchored at the calibration layer's
// end-of-life point (20% guardband at the 10% DC-stress shift).
var fleetDelayModel = sync.OnceValues(func() (circuit.PathStats, circuit.DelayModel) {
	path := adder32().Netlist().CriticalPath()
	p := nbti.DefaultParams()
	return path, circuit.NewDelayModel(path, p.MaxVTHShift, p.MaxGuardband)
})

// fleetSchedule builds the service-life phase list for one fleet:
// measured duties for normal service, with an optional wearout-attack
// phase — every structure pinned at full stress duty — splitting the
// service life in half.
func fleetSchedule(duties []StructureDuty, penelope bool, o Options) []lifetime.Phase {
	duty := make([]float64, len(duties))
	for i, d := range duties {
		if penelope {
			duty[i] = d.Penelope
		} else {
			duty[i] = d.Baseline
		}
	}
	service := lifetime.Phase{Name: "service", Years: o.Years, Duty: duty}
	if o.AttackYears <= 0 {
		return []lifetime.Phase{service}
	}
	full := make([]float64, len(duties))
	for i := range full {
		full[i] = 1
	}
	attack := lifetime.Phase{Name: "attack", Years: o.AttackYears, Duty: full}
	pre := (o.Years - o.AttackYears) / 2
	if pre <= 0 {
		return []lifetime.Phase{attack}
	}
	var phases []lifetime.Phase
	phases = append(phases, lifetime.Phase{Name: "service", Years: pre, Duty: duty})
	phases = append(phases, attack)
	phases = append(phases, lifetime.Phase{Name: "service", Years: o.Years - o.AttackYears - pre, Duty: duty})
	return phases
}

// fleetConfig assembles the lifetime engine configuration for one fleet.
func (o Options) fleetConfig(duties []StructureDuty, penelope bool) lifetime.Config {
	names := make([]string, len(duties))
	for i, d := range duties {
		names[i] = d.Name
	}
	_, delay := fleetDelayModel()
	return lifetime.Config{
		Structures: names,
		Phases:     fleetSchedule(duties, penelope, o),
		Population: o.Population,
		EpochYears: o.EpochDays / 365.25,
		Seed:       o.FleetSeed,
		Sigma:      o.VariationSigma,
		Limit:      lifetime.DefaultLimit,
		Params:     lifetime.DefaultParams(),
		Delay:      delay,
	}
}

// FleetConfig is the exported form of fleetConfig for the fleetops
// scheduler: the exact lifetime engine configuration the lifetime
// experiment would run for these options — measured duty profiles
// (memoized per trace workload), the compiled adder's delay model, and
// the attack phases implied by AttackYears.
func FleetConfig(o Options, penelope bool) lifetime.Config {
	o = o.normalized()
	return o.fleetConfig(o.fleetDuties(), penelope)
}

// FleetTrajectory is one fleet's full lifetime run: per-epoch
// aggregates plus the headline numbers.
type FleetTrajectory struct {
	Fleet  string                `json:"fleet"`
	Epochs []lifetime.EpochStats `json:"epochs"`
	// FirstViolationYears is the service time at which the first chip
	// exceeded the guardband budget; -1 if the fleet never violated.
	FirstViolationYears   float64 `json:"first_violation_years"`
	FinalViolatedFraction float64 `json:"final_violated_fraction"`
	FinalMeanGuardband    float64 `json:"final_mean_guardband"`
	FinalP99Guardband     float64 `json:"final_p99_guardband"`
}

// LifetimeResult holds the fleet lifetime experiment: measured
// structure duties and the baseline-vs-Penelope guardband trajectories
// of an identical chip population (same seeds, same variation) under
// the two schedules.
type LifetimeResult struct {
	Structures     []StructureDuty    `json:"structures"`
	GuardbandLimit float64            `json:"guardband_limit"`
	CriticalPath   circuit.PathStats  `json:"critical_path"`
	DelayModel     circuit.DelayModel `json:"delay_model"`
	Baseline       FleetTrajectory    `json:"baseline"`
	Penelope       FleetTrajectory    `json:"penelope"`
}

// trajectoryFrom summarizes a completed engine.
func trajectoryFrom(name string, eng *lifetime.Engine) FleetTrajectory {
	stats := eng.Stats()
	last := stats[len(stats)-1]
	return FleetTrajectory{
		Fleet:                 name,
		Epochs:                stats,
		FirstViolationYears:   eng.FirstViolationYears(),
		FinalViolatedFraction: last.ViolatedFraction,
		FinalMeanGuardband:    last.MeanGuardband,
		FinalP99Guardband:     last.P99Guardband,
	}
}

// lifetimeCache memoizes completed trajectories per canonical fleet
// options (Workers is execution-only and absent from the key), so
// `yield` — and repeated `lifetime` requests in one process — reuse
// one paired fleet simulation instead of aging the population again.
var lifetimeCache sync.Map // Options.Key() -> func() LifetimeResult

// Lifetime runs the fleet lifetime experiment: measure duty profiles on
// the workload, then age the same chip population through the baseline
// and Penelope schedules and report both guardband trajectories.
func Lifetime(o Options) LifetimeResult {
	o = o.normalized()
	key := o.Key()
	if f, ok := lifetimeCache.Load(key); ok {
		return f.(func() LifetimeResult)()
	}
	once := sync.OnceValue(func() LifetimeResult { return computeLifetime(o) })
	f, _ := lifetimeCache.LoadOrStore(key, once)
	return f.(func() LifetimeResult)()
}

// computeLifetime is the uncached driver body.
func computeLifetime(o Options) LifetimeResult {
	res, err := runLifetime(context.Background(), o, "", 0)
	if err != nil {
		// No checkpoint I/O is involved, so an error here is an
		// internal invariant violation, like other driver panics.
		panic(err)
	}
	return res
}

// LifetimeCheckpointed is Lifetime with rolling checkpoints: the paired
// fleet state is written to path every `every` epochs (atomically, via
// rename), and an existing checkpoint at path — from an interrupted or
// completed run with the same options — is resumed instead of starting
// over. The result is byte-identical to an uninterrupted Lifetime run.
func LifetimeCheckpointed(o Options, path string, every int) (LifetimeResult, error) {
	return LifetimeCheckpointedCtx(context.Background(), o, path, every)
}

// ErrLifetimeInterrupted reports that a checkpointed lifetime run was
// cancelled mid-flight; the checkpoint on disk holds the epoch it
// reached, and rerunning with the same options resumes from it and
// produces the same bytes an uninterrupted run would have.
var ErrLifetimeInterrupted = fmt.Errorf("lifetime: run interrupted")

// LifetimeCheckpointedCtx is LifetimeCheckpointed with cooperative
// cancellation: the engine polls ctx once per epoch step, and on
// cancellation writes a final checkpoint before returning
// ErrLifetimeInterrupted — so a shutdown or timeout loses at most the
// epoch in flight, never the run.
func LifetimeCheckpointedCtx(ctx context.Context, o Options, path string, every int) (LifetimeResult, error) {
	if path == "" {
		return LifetimeResult{}, fmt.Errorf("lifetime: empty checkpoint path")
	}
	if every < 1 {
		every = 16
	}
	return runLifetime(ctx, o.Normalized(), path, every)
}

// runLifetime advances the baseline and Penelope fleets in lockstep,
// optionally checkpointing the pair.
func runLifetime(ctx context.Context, o Options, ckpt string, every int) (LifetimeResult, error) {
	duties := o.fleetDuties()
	cfgB := o.fleetConfig(duties, false)
	cfgP := o.fleetConfig(duties, true)

	var engB, engP *lifetime.Engine
	if ckpt != "" {
		var err error
		engB, engP, err = readFleetPair(ckpt, cfgB, cfgP)
		if err != nil {
			return LifetimeResult{}, err
		}
	}
	if engB == nil {
		var err error
		if engB, err = lifetime.New(cfgB); err != nil {
			return LifetimeResult{}, err
		}
		if engP, err = lifetime.New(cfgP); err != nil {
			return LifetimeResult{}, err
		}
	}

	steps := 0
	for !engB.Done() || !engP.Done() {
		if err := ctx.Err(); err != nil {
			// Cancelled (shutdown or timeout): persist the epoch we
			// reached so the next run continues instead of restarting.
			if ckpt != "" {
				if werr := writeFleetPair(ckpt, engB, engP); werr != nil {
					return LifetimeResult{}, fmt.Errorf("%w; checkpoint write failed: %v", ErrLifetimeInterrupted, werr)
				}
			}
			return LifetimeResult{}, fmt.Errorf("%w: %v", ErrLifetimeInterrupted, err)
		}
		if !engB.Done() {
			engB.Step(o.Workers)
		}
		if !engP.Done() {
			engP.Step(o.Workers)
		}
		steps++
		if ckpt != "" && steps%every == 0 {
			if err := writeFleetPair(ckpt, engB, engP); err != nil {
				return LifetimeResult{}, err
			}
		}
	}
	if ckpt != "" {
		if err := writeFleetPair(ckpt, engB, engP); err != nil {
			return LifetimeResult{}, err
		}
	}

	path, delay := fleetDelayModel()
	return LifetimeResult{
		Structures:     duties,
		GuardbandLimit: lifetime.DefaultLimit,
		CriticalPath:   path,
		DelayModel:     delay,
		Baseline:       trajectoryFrom("baseline", engB),
		Penelope:       trajectoryFrom("penelope", engP),
	}, nil
}

// fleetPairMagic heads the experiment-level checkpoint file: two
// length-prefixed engine checkpoints, baseline then Penelope.
const fleetPairMagic = "penelope-fleet-pair-v1\n"

// checkpointFS is the filesystem the checkpoint writer runs on; tests
// swap in a vfs.FaultFS to crash it at any I/O step.
var checkpointFS vfs.FS = vfs.OS{}

// writeFleetPair atomically replaces path with the pair's state under
// the full durability discipline (temp file, fsync, rename, directory
// fsync) — a checkpoint that survives the write returning is one a
// power loss cannot take back.
func writeFleetPair(path string, engB, engP *lifetime.Engine) error {
	var buf bytes.Buffer
	buf.WriteString(fleetPairMagic)
	for _, eng := range []*lifetime.Engine{engB, engP} {
		var one bytes.Buffer
		if err := eng.WriteCheckpoint(&one); err != nil {
			return fmt.Errorf("lifetime: serializing checkpoint: %w", err)
		}
		binary.Write(&buf, binary.LittleEndian, uint64(one.Len()))
		buf.Write(one.Bytes())
	}
	_, err := vfs.WriteAtomic(checkpointFS, path, buf.Bytes())
	return err
}

// readFleetPair loads a pair checkpoint if path exists, verifying the
// embedded configs match the requested options. A missing file returns
// nil engines (fresh start); a mismatched file is an error, so a stale
// checkpoint never silently answers for different options.
func readFleetPair(path string, cfgB, cfgP lifetime.Config) (*lifetime.Engine, *lifetime.Engine, error) {
	data, err := checkpointFS.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	if len(data) < len(fleetPairMagic) || string(data[:len(fleetPairMagic)]) != fleetPairMagic {
		return nil, nil, fmt.Errorf("lifetime: %s is not a fleet checkpoint", path)
	}
	rest := data[len(fleetPairMagic):]
	engs := make([]*lifetime.Engine, 0, 2)
	for i := 0; i < 2; i++ {
		if len(rest) < 8 {
			return nil, nil, fmt.Errorf("lifetime: truncated checkpoint %s", path)
		}
		n := binary.LittleEndian.Uint64(rest[:8])
		rest = rest[8:]
		if uint64(len(rest)) < n {
			return nil, nil, fmt.Errorf("lifetime: truncated checkpoint %s", path)
		}
		eng, err := lifetime.ReadCheckpoint(bytes.NewReader(rest[:n]))
		if err != nil {
			return nil, nil, fmt.Errorf("lifetime: reading %s: %w", path, err)
		}
		engs = append(engs, eng)
		rest = rest[n:]
	}
	if !reflect.DeepEqual(engs[0].Config(), cfgB) || !reflect.DeepEqual(engs[1].Config(), cfgP) {
		return nil, nil, fmt.Errorf("lifetime: checkpoint %s was created with different options; delete it to start over", path)
	}
	return engs[0], engs[1], nil
}

// Render writes the lifetime trajectory as text: the measured duty
// profile, then a yearly guardband table for both fleets.
func (r LifetimeResult) Render(w io.Writer) {
	section(w, "Fleet lifetime: NBTI guardband trajectory (baseline vs Penelope)")
	fmt.Fprintf(w, "critical path: %d gates (%d narrow); guardband budget %.0f%%\n\n",
		r.CriticalPath.Depth, r.CriticalPath.Narrow, r.GuardbandLimit*100)
	fmt.Fprintf(w, "%-14s %10s %10s\n", "structure", "baseline", "penelope")
	for _, s := range r.Structures {
		fmt.Fprintf(w, "%-14s %9.1f%% %9.1f%%\n", s.Name, s.Baseline*100, s.Penelope*100)
	}
	fmt.Fprintln(w, "(worst-case stress duty per structure)")

	for _, tr := range []FleetTrajectory{r.Baseline, r.Penelope} {
		fmt.Fprintf(w, "\n%s fleet:\n", tr.Fleet)
		fmt.Fprintf(w, "%6s %6s %8s %8s %8s %9s\n", "years", "phase", "mean", "p99", "max", "violated")
		for _, st := range yearlyEpochs(tr.Epochs) {
			fmt.Fprintf(w, "%6.2f %6s %7.2f%% %7.2f%% %7.2f%% %8.2f%% %s\n",
				st.Years, st.Phase, st.MeanGuardband*100, st.P99Guardband*100,
				st.MaxGuardband*100, st.ViolatedFraction*100,
				hashBar(int(st.MeanGuardband*200)))
		}
		if tr.FirstViolationYears >= 0 {
			fmt.Fprintf(w, "first violation after %.2f years; %.2f%% of the fleet violated at end of life\n",
				tr.FirstViolationYears, tr.FinalViolatedFraction*100)
		} else {
			fmt.Fprintf(w, "no chip ever exceeded the %.0f%% budget\n", r.GuardbandLimit*100)
		}
	}
	fmt.Fprintf(w, "\nend-of-life mean guardband: baseline %.2f%% -> penelope %.2f%%\n",
		r.Baseline.FinalMeanGuardband*100, r.Penelope.FinalMeanGuardband*100)
}

// yearlyEpochs subsamples a trajectory to roughly one row per year
// (always keeping the final epoch) so the text report stays readable.
func yearlyEpochs(epochs []lifetime.EpochStats) []lifetime.EpochStats {
	if len(epochs) == 0 {
		return nil
	}
	stride := 1
	if last := epochs[len(epochs)-1]; last.Years > 0 {
		perYear := float64(len(epochs)) / last.Years
		if perYear > 1 {
			stride = int(perYear)
		}
	}
	var out []lifetime.EpochStats
	for i := stride - 1; i < len(epochs); i += stride {
		out = append(out, epochs[i])
	}
	// Sub-year runs can stride past every epoch; the final epoch is
	// always reported.
	if len(out) == 0 || out[len(out)-1].Epoch != epochs[len(epochs)-1].Epoch {
		out = append(out, epochs[len(epochs)-1])
	}
	return out
}

// YieldPoint is one sample of the lifetime-yield curve: the fraction of
// each fleet still within the guardband budget after the given service
// time.
type YieldPoint struct {
	Years    float64 `json:"years"`
	Baseline float64 `json:"baseline"`
	Penelope float64 `json:"penelope"`
}

// yieldTarget is the survival fraction the yield experiment quotes
// lifetimes at.
const yieldTarget = 0.95

// YieldResult holds the fleet lifetime-yield experiment.
type YieldResult struct {
	GuardbandLimit float64      `json:"guardband_limit"`
	YieldTarget    float64      `json:"yield_target"`
	Curve          []YieldPoint `json:"curve"`
	// BaselineLifetime and PenelopeLifetime are the service times at
	// which each fleet's yield drops below YieldTarget; -1 means the
	// fleet outlived the simulated horizon.
	BaselineLifetime float64 `json:"baseline_lifetime_years"`
	PenelopeLifetime float64 `json:"penelope_lifetime_years"`
}

// Yield derives the lifetime-yield curve from the fleet lifetime run:
// survival against the provisioned guardband budget over service time,
// baseline vs Penelope.
func Yield(o Options) YieldResult {
	life := Lifetime(o)
	res := YieldResult{
		GuardbandLimit:   life.GuardbandLimit,
		YieldTarget:      yieldTarget,
		BaselineLifetime: -1,
		PenelopeLifetime: -1,
	}
	b, p := life.Baseline.Epochs, life.Penelope.Epochs
	for i := range b {
		pt := YieldPoint{
			Years:    b[i].Years,
			Baseline: 1 - b[i].ViolatedFraction,
			Penelope: 1 - p[i].ViolatedFraction,
		}
		res.Curve = append(res.Curve, pt)
		if res.BaselineLifetime < 0 && pt.Baseline < yieldTarget {
			res.BaselineLifetime = pt.Years
		}
		if res.PenelopeLifetime < 0 && pt.Penelope < yieldTarget {
			res.PenelopeLifetime = pt.Years
		}
	}
	return res
}

// Render writes the yield curve as text.
func (r YieldResult) Render(w io.Writer) {
	section(w, "Fleet lifetime yield (fraction within the guardband budget)")
	fmt.Fprintf(w, "budget %.0f%%, lifetime quoted at %.0f%% yield\n\n",
		r.GuardbandLimit*100, r.YieldTarget*100)
	fmt.Fprintf(w, "%6s %10s %10s\n", "years", "baseline", "penelope")
	points := r.Curve
	if len(points) > 16 {
		stride := (len(points) + 15) / 16
		var sampled []YieldPoint
		for i := stride - 1; i < len(points); i += stride {
			sampled = append(sampled, points[i])
		}
		if sampled[len(sampled)-1].Years != points[len(points)-1].Years {
			sampled = append(sampled, points[len(points)-1])
		}
		points = sampled
	}
	for _, pt := range points {
		fmt.Fprintf(w, "%6.2f %9.2f%% %9.2f%% %s\n",
			pt.Years, pt.Baseline*100, pt.Penelope*100, hashBar(int(pt.Penelope*40)))
	}
	lifetimeStr := func(v float64) string {
		if v < 0 {
			return "beyond horizon"
		}
		return fmt.Sprintf("%.2f years", v)
	}
	fmt.Fprintf(w, "\nlifetime at %.0f%% yield: baseline %s, penelope %s\n",
		r.YieldTarget*100, lifetimeStr(r.BaselineLifetime), lifetimeStr(r.PenelopeLifetime))
}
