package experiments

import (
	"fmt"
	"io"

	"penelope/internal/pipeline"
	"penelope/internal/stats"
	"penelope/internal/trace"
)

// Fig6Result holds the register-file bit-bias series of paper Figure 6:
// per-bit zero bias for the integer (32-bit) and FP (80-bit) files,
// baseline versus ISV.
type Fig6Result struct {
	IntBaseline []float64
	IntISV      []float64
	FPBaseline  []float64
	FPISV       []float64

	IntWorstBaseline float64
	IntWorstISV      float64
	FPWorstBaseline  float64
	FPWorstISV       float64

	// FreeInt and FreeFP are the measured free-time fractions (paper:
	// 54% and 69%), and port availabilities (92% and 86%).
	FreeInt, FreeFP           float64
	PortAvailInt, PortAvailFP float64
}

// Fig6 runs the workload through the pipeline with the register-file ISV
// mechanism off and on, aggregating per-bit bias across traces. The
// workload comes from the shared recording bank; both sweeps replay the
// same recorded streams.
func Fig6(o Options) Fig6Result {
	o = o.normalized()
	return fig6(o.sources())
}

// fig6 is the driver body over an explicit source set, so the
// equivalence tests can feed it generator-backed sources and require
// bit-identical results to the recorded path.
func fig6(traces []trace.Source) Fig6Result {
	baseCfg := pipeline.DefaultConfig()
	isvCfg := pipeline.DefaultConfig()
	isvCfg.EnableISV = true

	var res Fig6Result
	res.IntBaseline = make([]float64, 32)
	res.IntISV = make([]float64, 32)
	res.FPBaseline = make([]float64, 80)
	res.FPISV = make([]float64, 80)
	n := 0
	// Both sweeps fan out over the worker pool; accumulation stays in
	// trace order so the aggregated floats are bit-identical to a serial
	// run.
	baseRes := pipeline.RunBatch(baseCfg, traces, 0)
	isvRes := pipeline.RunBatch(isvCfg, traces, 0)
	for ti := range traces {
		b, i := baseRes[ti], isvRes[ti]
		for k := 0; k < 32; k++ {
			res.IntBaseline[k] += b.IntRF.Biases[k]
			res.IntISV[k] += i.IntRF.Biases[k]
		}
		for k := 0; k < 80; k++ {
			res.FPBaseline[k] += b.FPRF.Biases[k]
			res.FPISV[k] += i.FPRF.Biases[k]
		}
		res.FreeInt += i.IntRF.FreeFraction
		res.FreeFP += i.FPRF.FreeFraction
		res.PortAvailInt += i.IntRF.PortAvailability
		res.PortAvailFP += i.FPRF.PortAvailability
		n++
	}
	div := func(xs []float64) {
		for k := range xs {
			xs[k] /= float64(n)
		}
	}
	div(res.IntBaseline)
	div(res.IntISV)
	div(res.FPBaseline)
	div(res.FPISV)
	res.FreeInt /= float64(n)
	res.FreeFP /= float64(n)
	res.PortAvailInt /= float64(n)
	res.PortAvailFP /= float64(n)
	res.IntWorstBaseline = worstCell(res.IntBaseline)
	res.IntWorstISV = worstCell(res.IntISV)
	res.FPWorstBaseline = worstCell(res.FPBaseline)
	res.FPWorstISV = worstCell(res.FPISV)
	return res
}

// worstCell returns the worst memory-cell stress bias of a series:
// max over bits of max(bias, 1-bias).
func worstCell(biases []float64) float64 {
	worst := 0.5
	for _, b := range biases {
		if b > worst {
			worst = b
		}
		if 1-b > worst {
			worst = 1 - b
		}
	}
	return worst
}

// Render writes the Figure 6 series.
func (r Fig6Result) Render(w io.Writer) {
	section(w, "Figure 6: register file bit bias (bias towards \"0\")")
	fmt.Fprintf(w, "register files free: INT %s, FP %s (paper: 54%%, 69%%)\n",
		stats.Ratio(r.FreeInt), stats.Ratio(r.FreeFP))
	fmt.Fprintf(w, "write ports available: INT %s, FP %s (paper: 92%%, 86%%)\n\n",
		stats.Ratio(r.PortAvailInt), stats.Ratio(r.PortAvailFP))

	fmt.Fprintln(w, "INT register file:")
	fmt.Fprintf(w, "%4s %10s %10s\n", "bit", "baseline", "ISV")
	for k := 0; k < 32; k++ {
		fmt.Fprintf(w, "%4d %9.1f%% %9.1f%%\n", k+1, r.IntBaseline[k]*100, r.IntISV[k]*100)
	}
	fmt.Fprintf(w, "worst-case: baseline %.1f%% -> ISV %.1f%% (paper: 89.9%% -> 48.5%%)\n\n",
		r.IntWorstBaseline*100, r.IntWorstISV*100)

	fmt.Fprintln(w, "FP register file:")
	fmt.Fprintf(w, "%4s %10s %10s\n", "bit", "baseline", "ISV")
	for k := 0; k < 80; k += 2 {
		fmt.Fprintf(w, "%4d %9.1f%% %9.1f%%\n", k+1, r.FPBaseline[k]*100, r.FPISV[k]*100)
	}
	fmt.Fprintf(w, "worst-case: baseline %.1f%% -> ISV %.1f%% (paper: 84.2%% -> 45.5%%)\n",
		r.FPWorstBaseline*100, r.FPWorstISV*100)
}
