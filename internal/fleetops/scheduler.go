package fleetops

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"penelope/internal/lifetime"
	"penelope/internal/obs"
)

// State is a population's scheduler state.
type State string

const (
	// StateActive populations tick on their interval.
	StateActive State = "active"
	// StateQuarantined populations failed MaxFailures consecutive
	// ticks; the scheduler parks them for QuarantineCooldown, then
	// probes — a successful probe returns them to active. Other
	// populations are unaffected.
	StateQuarantined State = "quarantined"
	// StateDone populations finished their schedule.
	StateDone State = "done"
)

// fleetTopic names the bus topic carrying a fleet's events.
func fleetTopic(name string) string { return "fleet/" + name }

// ErrExists rejects a Register for a name already scheduled; the HTTP
// layer maps it to 409.
var ErrExists = errors.New("fleetops: fleet already registered")

// TickFunc overrides what one tick does — tests inject failures, hangs,
// and panics here. The default (nil) steps the engine EpochsPerTick
// epochs.
type TickFunc func(ctx context.Context, name string, eng *lifetime.Engine) error

// Config configures the scheduler.
type Config struct {
	// Builder turns registrations into engine configs. Nil uses
	// ExperimentBuilder.
	Builder ConfigBuilder
	// Storage persists registration sidecars and checkpoints; nil keeps
	// everything in memory.
	Storage Storage
	// Bus receives epoch/state events; nil disables publishing.
	Bus *Bus
	// Alerter evaluates alert rules per epoch; nil disables alerting.
	Alerter *Alerter
	// DefaultInterval spaces ticks for registrations that do not set
	// one (default 30s).
	DefaultInterval time.Duration
	// MaxFailures consecutive tick failures quarantine a population
	// (default 3).
	MaxFailures int
	// QuarantineCooldown is how long a quarantined population parks
	// before a probation probe (default 5m).
	QuarantineCooldown time.Duration
	// TickTimeout is the watchdog deadline: a tick still running after
	// this is cancelled, counted as a failure, and its engine abandoned
	// in favor of the last good snapshot (default 60s).
	TickTimeout time.Duration
	// RetryBackoff is the base delay before retrying a failed tick,
	// doubled per consecutive failure (default 1s).
	RetryBackoff time.Duration
	// Workers bounds each engine step's internal fan-out (<=0 uses
	// GOMAXPROCS).
	Workers int
	// Tick overrides the tick body (tests).
	Tick TickFunc
	// Instruments, when set, records tick latency, aging throughput,
	// and tick spans. Nil costs nothing.
	Instruments *Instruments
	// Logger receives the scheduler's structured log records; nil uses
	// the process default tagged with component=fleetops.
	Logger *slog.Logger
}

// population is one registered fleet's scheduler state. All mutable
// fields are guarded by the scheduler mutex; the engine itself is only
// touched by the population's (single) in-flight tick goroutine.
type population struct {
	reg     Registration
	state   State
	removed bool

	eng      *lifetime.Engine
	snapshot []byte // last good checkpoint bytes; source of truth for persistence
	resumed  bool   // restored from a storage checkpoint at least once

	epoch       int
	totalEpochs int
	lastStats   *lifetime.EpochStats
	failures    int // consecutive
	lastErr     string

	ticks, tickFailures, watchdogTimeouts, quarantines uint64
	lastTickStart                                      time.Time
}

// Status is the externally visible state of one population.
type Status struct {
	Name                string               `json:"name"`
	Fleet               string               `json:"fleet"`
	State               State                `json:"state"`
	Epoch               int                  `json:"epoch"`
	TotalEpochs         int                  `json:"total_epochs,omitempty"`
	Resumed             bool                 `json:"resumed,omitempty"`
	Interval            Duration             `json:"interval"`
	Ticks               uint64               `json:"ticks"`
	TickFailures        uint64               `json:"tick_failures,omitempty"`
	WatchdogTimeouts    uint64               `json:"watchdog_timeouts,omitempty"`
	Quarantines         uint64               `json:"quarantines,omitempty"`
	ConsecutiveFailures int                  `json:"consecutive_failures,omitempty"`
	LastError           string               `json:"last_error,omitempty"`
	Alerts              AlertRules           `json:"alerts,omitempty"`
	Last                *lifetime.EpochStats `json:"last,omitempty"`
}

// Stats is the scheduler section of /metrics.
type Stats struct {
	Populations      int    `json:"populations"`
	Active           int    `json:"active"`
	Quarantined      int    `json:"quarantined"`
	Done             int    `json:"done"`
	Resumed          int    `json:"resumed"`
	Ticks            uint64 `json:"ticks"`
	TickFailures     uint64 `json:"tick_failures"`
	WatchdogTimeouts uint64 `json:"watchdog_timeouts"`
	Quarantines      uint64 `json:"quarantines"`
	// CheckpointFailures counts fleet checkpoint writes the storage
	// refused or failed. The fleet keeps aging in memory — the failure
	// only widens how far a restart would rewind it, which is exactly
	// why it must be visible rather than swallowed.
	CheckpointFailures uint64 `json:"checkpoint_failures"`
}

// Scheduler keeps registered populations aging. Each population runs
// its own goroutine, so a failing, hung, or quarantined fleet never
// stalls the others.
type Scheduler struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	pops     map[string]*population
	closed   bool
	ckptFail uint64 // fleet checkpoint writes refused or failed
}

// NewScheduler builds a scheduler; populations are added with Register.
func NewScheduler(cfg Config) *Scheduler {
	if cfg.Builder == nil {
		cfg.Builder = ExperimentBuilder
	}
	if cfg.DefaultInterval <= 0 {
		cfg.DefaultInterval = 30 * time.Second
	}
	if cfg.MaxFailures <= 0 {
		cfg.MaxFailures = 3
	}
	if cfg.QuarantineCooldown <= 0 {
		cfg.QuarantineCooldown = 5 * time.Minute
	}
	if cfg.TickTimeout <= 0 {
		cfg.TickTimeout = 60 * time.Second
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Logger("fleetops")
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Scheduler{cfg: cfg, ctx: ctx, cancel: cancel, pops: make(map[string]*population)}
}

// Register validates and admits a population, persists its sidecar, and
// starts its tick loop (first tick runs immediately). Expensive,
// fallible work — engine construction, checkpoint restore — happens
// inside the first tick, under the same retry/quarantine protection as
// any other tick.
func (s *Scheduler) Register(reg Registration) (Status, error) {
	if err := reg.Validate(); err != nil {
		return Status{}, err
	}
	if reg.EpochsPerTick == 0 {
		reg.EpochsPerTick = 1
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Status{}, fmt.Errorf("fleetops: scheduler is closed")
	}
	if _, ok := s.pops[reg.Name]; ok {
		s.mu.Unlock()
		return Status{}, fmt.Errorf("fleet %q: %w", reg.Name, ErrExists)
	}
	p := &population{reg: reg, state: StateActive}
	s.pops[reg.Name] = p
	s.wg.Add(1)
	s.mu.Unlock()

	if s.cfg.Storage != nil {
		if data, err := json.Marshal(reg); err == nil {
			s.cfg.Storage.PutFleet(reg.Name, data)
		}
	}
	if s.cfg.Bus != nil {
		s.cfg.Bus.Touch(fleetTopic(reg.Name))
		s.cfg.Bus.Publish(fleetTopic(reg.Name), "state",
			StateEvent{Fleet: reg.Name, State: StateActive, Reason: "registered"})
	}
	go s.loop(p)
	return s.statusOf(p), nil
}

// StateEvent is the payload of "state" bus events.
type StateEvent struct {
	Fleet  string `json:"fleet"`
	State  State  `json:"state"`
	Epoch  int    `json:"epoch"`
	Reason string `json:"reason,omitempty"`
}

// EpochEvent is the payload of "epoch" bus events: the fleet name plus
// the epoch's aggregate row.
type EpochEvent struct {
	Fleet string `json:"fleet"`
	lifetime.EpochStats
}

// Deregister stops a population, removes its sidecars, and ends its
// event stream.
func (s *Scheduler) Deregister(name string) error {
	s.mu.Lock()
	p, ok := s.pops[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("fleetops: fleet %q not registered", name)
	}
	p.removed = true
	delete(s.pops, name)
	s.mu.Unlock()
	if s.cfg.Storage != nil {
		s.cfg.Storage.RemoveFleet(name)
	}
	if s.cfg.Bus != nil {
		s.cfg.Bus.Drop(fleetTopic(name))
	}
	return nil
}

// Get returns one population's status.
func (s *Scheduler) Get(name string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pops[name]
	if !ok {
		return Status{}, false
	}
	return s.statusLocked(p), true
}

// List returns every population's status, sorted by name.
func (s *Scheduler) List() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.pops))
	for _, p := range s.pops {
		out = append(out, s.statusLocked(p))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Quarantined returns the names of quarantined populations, sorted.
func (s *Scheduler) Quarantined() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for name, p := range s.pops {
		if p.state == StateQuarantined {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Stats returns aggregate scheduler counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Populations: len(s.pops)}
	for _, p := range s.pops {
		switch p.state {
		case StateActive:
			st.Active++
		case StateQuarantined:
			st.Quarantined++
		case StateDone:
			st.Done++
		}
		if p.resumed {
			st.Resumed++
		}
		st.Ticks += p.ticks
		st.TickFailures += p.tickFailures
		st.WatchdogTimeouts += p.watchdogTimeouts
		st.Quarantines += p.quarantines
	}
	st.CheckpointFailures = s.ckptFail
	return st
}

// GuardbandSummary is the fleet-wide aging picture: the worst value of
// each guardband statistic across every population with at least one
// completed epoch. Fleets reports how many populations contributed.
type GuardbandSummary struct {
	Fleets           int     `json:"fleets"`
	P99Guardband     float64 `json:"p99_guardband"`
	MeanGuardband    float64 `json:"mean_guardband"`
	ViolatedFraction float64 `json:"violated_fraction"`
}

// Guardband aggregates the latest epoch rows into the worst-case
// summary the guardband gauges (and the SLO slope rules watching them)
// export. Populations that have not completed an epoch yet contribute
// nothing.
func (s *Scheduler) Guardband() GuardbandSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out GuardbandSummary
	for _, p := range s.pops {
		if p.removed || p.lastStats == nil {
			continue
		}
		row := p.lastStats
		out.Fleets++
		if row.P99Guardband > out.P99Guardband {
			out.P99Guardband = row.P99Guardband
		}
		if row.MeanGuardband > out.MeanGuardband {
			out.MeanGuardband = row.MeanGuardband
		}
		if row.ViolatedFraction > out.ViolatedFraction {
			out.ViolatedFraction = row.ViolatedFraction
		}
	}
	return out
}

func (s *Scheduler) statusOf(p *population) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked(p)
}

func (s *Scheduler) statusLocked(p *population) Status {
	fleet := p.reg.Fleet
	if fleet == "" {
		fleet = "penelope"
	}
	interval := p.reg.Interval
	if interval <= 0 {
		interval = Duration(s.cfg.DefaultInterval)
	}
	st := Status{
		Name:                p.reg.Name,
		Fleet:               fleet,
		State:               p.state,
		Epoch:               p.epoch,
		TotalEpochs:         p.totalEpochs,
		Resumed:             p.resumed,
		Interval:            interval,
		Ticks:               p.ticks,
		TickFailures:        p.tickFailures,
		WatchdogTimeouts:    p.watchdogTimeouts,
		Quarantines:         p.quarantines,
		ConsecutiveFailures: p.failures,
		LastError:           p.lastErr,
		Alerts:              p.reg.Alerts,
	}
	if p.lastStats != nil {
		row := *p.lastStats
		st.Last = &row
	}
	return st
}

// loop is one population's life: sleep, tick, repeat — with backoff on
// failure, a long park when quarantined, and exit when done or removed.
func (s *Scheduler) loop(p *population) {
	defer s.wg.Done()
	first := true
	for {
		d, exit := s.nextDelay(p, first)
		first = false
		if exit {
			return
		}
		if d > 0 {
			t := time.NewTimer(d)
			select {
			case <-s.ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
		} else if s.ctx.Err() != nil {
			return
		}
		s.mu.Lock()
		gone := p.removed || p.state == StateDone
		s.mu.Unlock()
		if gone {
			return
		}
		s.tick(p)
	}
}

// nextDelay picks the next sleep for a population: immediately for the
// first tick, exponential backoff after failures, the quarantine
// cooldown when parked, otherwise the registration interval (floored by
// its cooldown since the last tick start).
func (s *Scheduler) nextDelay(p *population, first bool) (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.removed || p.state == StateDone {
		return 0, true
	}
	if first {
		return 0, false
	}
	if p.state == StateQuarantined {
		return s.cfg.QuarantineCooldown, false
	}
	if p.failures > 0 {
		shift := p.failures - 1
		if shift > 10 {
			shift = 10
		}
		d := s.cfg.RetryBackoff << shift
		if d > s.cfg.QuarantineCooldown {
			d = s.cfg.QuarantineCooldown
		}
		return d, false
	}
	d := time.Duration(p.reg.Interval)
	if d <= 0 {
		d = s.cfg.DefaultInterval
	}
	if cd := time.Duration(p.reg.Cooldown); cd > 0 && !p.lastTickStart.IsZero() {
		if until := time.Until(p.lastTickStart.Add(cd)); until > d {
			d = until
		}
	}
	return d, false
}

// tickResult carries one tick's outcome out of its goroutine.
type tickResult struct {
	eng      *lifetime.Engine
	rows     []lifetime.EpochStats
	snapshot []byte
	resumed  bool
	// restoredStats is the last stats row already inside a restored
	// checkpoint, captured before the tick advances it. It re-seeds the
	// duty-deviation detector's previous-epoch baseline after a process
	// restart (p.lastStats lives only in memory); without it the first
	// resumed tick would invert 0 → accumulated-shift as one epoch step
	// and fire a false wearout-attack alert.
	restoredStats *lifetime.EpochStats
	err           error
}

// tick runs one tick under the watchdog: the tick body runs in its own
// goroutine with a deadline; if the deadline passes, the tick is
// abandoned (its engine with it — the next tick reloads from the last
// good snapshot) and counted as a failure.
func (s *Scheduler) tick(p *population) {
	start := time.Now()
	s.mu.Lock()
	p.lastTickStart = start
	name := p.reg.Name
	s.mu.Unlock()
	ctx, cancel := context.WithTimeout(s.ctx, s.cfg.TickTimeout)
	defer cancel()
	ch := make(chan tickResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- tickResult{err: fmt.Errorf("tick panicked: %v", r)}
			}
		}()
		ch <- s.runTick(ctx, p)
	}()
	select {
	case res := <-ch:
		if res.err != nil {
			s.cfg.Instruments.observeTick(name, start, 0, 0, res.err)
			s.tickFailed(p, res.err)
		} else {
			s.cfg.Instruments.observeTick(name, start, len(res.rows), res.eng.Config().Population, nil)
			s.tickOK(p, res)
		}
	case <-ctx.Done():
		if s.ctx.Err() != nil {
			// Shutdown: leave the in-flight tick to die with the
			// process; the last good snapshot is what persists.
			return
		}
		s.cfg.Instruments.observeTick(name, start, 0, 0, fmt.Errorf("watchdog: tick exceeded %s deadline", s.cfg.TickTimeout))
		s.watchdogFired(p)
	}
}

// runTick executes the tick body in the watchdog goroutine: obtain the
// engine (build or restore — both fallible, both under the same
// protection), advance it, and snapshot the result. It never touches
// scheduler state; results are applied by tickOK/tickFailed.
func (s *Scheduler) runTick(ctx context.Context, p *population) tickResult {
	s.mu.Lock()
	eng := p.eng
	snap := p.snapshot
	reg := p.reg
	s.mu.Unlock()

	resumed := false
	var restoredStats *lifetime.EpochStats
	if eng == nil {
		if snap == nil && s.cfg.Storage != nil {
			if b, ok := s.cfg.Storage.ReadFleetCheckpoint(reg.Name); ok {
				snap = b
			}
		}
		if snap != nil {
			restored, err := lifetime.FromSnapshot(snap)
			if err != nil {
				return tickResult{err: fmt.Errorf("restoring checkpoint: %w", err)}
			}
			eng = restored
			resumed = true
			if row, ok := restored.LastStats(); ok {
				restoredStats = &row
			}
		} else {
			cfg, err := s.cfg.Builder(reg)
			if err != nil {
				return tickResult{err: fmt.Errorf("building engine config: %w", err)}
			}
			built, err := lifetime.New(cfg)
			if err != nil {
				return tickResult{err: fmt.Errorf("building engine: %w", err)}
			}
			eng = built
		}
	}

	prev := eng.Epoch()
	if s.cfg.Tick != nil {
		if err := s.cfg.Tick(ctx, reg.Name, eng); err != nil {
			return tickResult{err: err}
		}
	} else {
		for i := 0; i < reg.EpochsPerTick && !eng.Done(); i++ {
			if err := ctx.Err(); err != nil {
				return tickResult{err: err}
			}
			eng.Step(s.cfg.Workers)
		}
	}
	rows := append([]lifetime.EpochStats(nil), eng.Stats()[prev:eng.Epoch()]...)
	snapshot, err := eng.Snapshot()
	if err != nil {
		return tickResult{err: fmt.Errorf("snapshotting engine: %w", err)}
	}
	return tickResult{eng: eng, rows: rows, snapshot: snapshot, resumed: resumed, restoredStats: restoredStats}
}

// tickOK applies a successful tick: adopt the engine and snapshot,
// clear failures (announcing recovery if the population was
// quarantined), persist the checkpoint, publish epoch events, and
// evaluate alert rules.
func (s *Scheduler) tickOK(p *population, res tickResult) {
	s.mu.Lock()
	var prevVTH []float64
	if p.lastStats == nil {
		p.lastStats = res.restoredStats
	}
	if p.lastStats != nil {
		prevVTH = p.lastStats.MeanVTHShift
	}
	wasQuarantined := p.state == StateQuarantined
	p.eng = res.eng
	p.snapshot = res.snapshot
	if res.resumed {
		p.resumed = true
	}
	p.ticks++
	p.failures = 0
	p.lastErr = ""
	p.epoch = res.eng.Epoch()
	p.totalEpochs = res.eng.TotalEpochs()
	if n := len(res.rows); n > 0 {
		row := res.rows[n-1]
		p.lastStats = &row
	}
	done := res.eng.Done()
	if done {
		p.state = StateDone
	} else {
		p.state = StateActive
	}
	reg := p.reg
	epoch := p.epoch
	s.mu.Unlock()

	if s.cfg.Storage != nil {
		if err := s.cfg.Storage.WriteFleetCheckpoint(reg.Name, res.snapshot); err != nil {
			s.noteCheckpointFailure(reg.Name, err)
		}
	}
	if s.cfg.Bus != nil {
		if wasQuarantined {
			s.cfg.Bus.Publish(fleetTopic(reg.Name), "state",
				StateEvent{Fleet: reg.Name, State: StateActive, Epoch: epoch, Reason: "recovered from quarantine"})
		}
		for _, row := range res.rows {
			s.cfg.Bus.Publish(fleetTopic(reg.Name), "epoch", EpochEvent{Fleet: reg.Name, EpochStats: row})
		}
	}
	if s.cfg.Alerter != nil && reg.Alerts.Enabled() {
		var det *DeviationDetector
		if reg.Alerts.DutyTolerance > 0 {
			det = NewDeviationDetector(res.eng.Config(), reg.Alerts.DutyTolerance)
		}
		for _, row := range res.rows {
			s.cfg.Alerter.Observe(reg.Name, reg.Alerts, det, prevVTH, row)
			prevVTH = row.MeanVTHShift
		}
	}
	if done && s.cfg.Bus != nil {
		s.cfg.Bus.Publish(fleetTopic(reg.Name), "state",
			StateEvent{Fleet: reg.Name, State: StateDone, Epoch: epoch, Reason: "schedule complete"})
	}
}

// tickFailed counts a consecutive failure and quarantines the
// population once it reaches MaxFailures.
func (s *Scheduler) tickFailed(p *population, err error) {
	s.mu.Lock()
	p.ticks++
	p.tickFailures++
	p.failures++
	p.lastErr = err.Error()
	quarantine := p.failures >= s.cfg.MaxFailures && p.state == StateActive
	if quarantine {
		p.state = StateQuarantined
		p.quarantines++
	}
	reg := p.reg
	epoch := p.epoch
	s.mu.Unlock()
	if quarantine && s.cfg.Bus != nil {
		s.cfg.Bus.Publish(fleetTopic(reg.Name), "state",
			StateEvent{Fleet: reg.Name, State: StateQuarantined, Epoch: epoch,
				Reason: fmt.Sprintf("%d consecutive tick failures: %v", s.cfg.MaxFailures, err)})
	}
}

// watchdogFired abandons a tick that blew its deadline: the engine is
// dropped (the abandoned goroutine may still be mutating it), so the
// next tick reloads from the last good snapshot, and the timeout counts
// toward quarantine like any other failure.
func (s *Scheduler) watchdogFired(p *population) {
	s.mu.Lock()
	p.eng = nil
	p.watchdogTimeouts++
	s.mu.Unlock()
	s.tickFailed(p, fmt.Errorf("watchdog: tick exceeded %s deadline", s.cfg.TickTimeout))
	if s.cfg.Bus != nil {
		s.mu.Lock()
		reg, epoch, state := p.reg, p.epoch, p.state
		s.mu.Unlock()
		if state != StateQuarantined { // quarantine transition already announced
			s.cfg.Bus.Publish(fleetTopic(reg.Name), "state",
				StateEvent{Fleet: reg.Name, State: state, Epoch: epoch, Reason: "watchdog cancelled a stalled tick"})
		}
	}
}

// Close stops every loop and persists each population's last good
// checkpoint, bounded by grace — SIGTERM mid-tick still leaves every
// registered population resumable from its last completed tick.
func (s *Scheduler) Close(grace time.Duration) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if grace <= 0 {
		grace = 5 * time.Second
	}
	select {
	case <-done:
	case <-time.After(grace):
	}
	if s.cfg.Storage == nil {
		return
	}
	s.mu.Lock()
	type pending struct {
		name string
		snap []byte
	}
	var out []pending
	for name, p := range s.pops {
		if p.snapshot != nil {
			out = append(out, pending{name, p.snapshot})
		}
	}
	s.mu.Unlock()
	for _, pn := range out {
		if err := s.cfg.Storage.WriteFleetCheckpoint(pn.name, pn.snap); err != nil {
			s.noteCheckpointFailure(pn.name, err)
		}
	}
}

// noteCheckpointFailure counts and logs a failed fleet checkpoint
// write: the population keeps aging in memory, but a restart would
// rewind it to the last checkpoint that did land.
func (s *Scheduler) noteCheckpointFailure(name string, err error) {
	s.mu.Lock()
	s.ckptFail++
	first := s.ckptFail == 1
	s.mu.Unlock()
	if first {
		s.cfg.Logger.Warn("fleet checkpoint write failed (counted; logged once)", "fleet", name, "error", err)
	}
}
