package fleetops

import (
	"math"

	"penelope/internal/lifetime"
)

// DeviationDetector is the wearout-attack monitor. Each epoch the
// engine publishes the fleet-mean relative VTH shift per structure;
// under the duty-averaged reaction-diffusion model one epoch advances
// the normalized trap density n = shift/(MaxVTHShift/N0) by the affine
// step
//
//	n' = m·n + Neq·(1-m),  λ = d·Ks + (1-d)·Kr,  m = exp(-λ·dt)
//
// which is strictly monotonic in the stress duty d for n below DC
// equilibrium. The detector inverts that step with the nominal
// parameters — bisecting d over [0,1] to match the observed (n, n')
// pair — and compares the implied duty against the duty the
// registration's declared workload would hold per structure. A
// population aged under a substituted workload (a wearout attack pins
// duty at 1.0 on the victim structure) shows an implied duty far above
// its declaration within one epoch of the substitution, long before
// the guardband itself is in trouble. Process variation perturbs the
// per-chip rate constants, so the fleet-mean inversion carries an
// O(σ²) bias; DefaultDutyTolerance comfortably covers it at the
// σ ≈ 0.08–0.1 used throughout.
type DeviationDetector struct {
	declared []float64 // per-structure declared duty
	names    []string
	tol      float64

	ks, kr, n0, dt, scale float64
}

// NewDeviationDetector builds the monitor for an engine config. The
// declared workload is the config's first non-attack phase (the
// steady-state service phase a registration promises to run); nil is
// returned when the schedule has no such phase. tol <= 0 uses
// DefaultDutyTolerance.
func NewDeviationDetector(cfg lifetime.Config, tol float64) *DeviationDetector {
	if tol <= 0 {
		tol = DefaultDutyTolerance
	}
	var declared []float64
	for _, ph := range cfg.Phases {
		if ph.Name == "attack" {
			continue
		}
		declared = append([]float64(nil), ph.Duty...)
		break
	}
	if declared == nil {
		return nil
	}
	p := cfg.Params
	return &DeviationDetector{
		declared: declared,
		names:    append([]string(nil), cfg.Structures...),
		tol:      tol,
		ks:       p.KStress,
		kr:       p.KRelax,
		n0:       p.N0,
		dt:       cfg.EpochYears,
		scale:    p.MaxVTHShift / p.N0,
	}
}

// step advances normalized trap density n by one epoch under duty d
// with the nominal parameters.
func (dd *DeviationDetector) step(n, d float64) float64 {
	create := d * dd.ks
	lambda := create + (1-d)*dd.kr
	if lambda == 0 {
		return n
	}
	m := math.Exp(-lambda * dd.dt)
	return m*n + dd.n0*create/lambda*(1-m)
}

// ImpliedDuty inverts one epoch step for one structure: the stress duty
// that best explains moving the fleet-mean VTH shift from prevShift to
// curShift. The result clamps to [0,1].
func (dd *DeviationDetector) ImpliedDuty(prevShift, curShift float64) float64 {
	n := prevShift / dd.scale
	target := curShift / dd.scale
	// The step is monotonically increasing in d (more stress, more
	// traps), so the boundary checks orient the bisection.
	if target <= dd.step(n, 0) {
		return 0
	}
	if target >= dd.step(n, 1) {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if dd.step(n, mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Deviation is the worst per-structure gap between implied and declared
// duty across one observed epoch step.
type Deviation struct {
	Structure string  `json:"structure"`
	Implied   float64 `json:"implied_duty"`
	Declared  float64 `json:"declared_duty"`
	Delta     float64 `json:"delta"`
}

// Check inverts the epoch step prev → cur for every structure and
// returns the worst deviation plus whether it exceeds the tolerance.
// prev is the previous epoch's MeanVTHShift (nil or zeros for the first
// epoch); cur must have one entry per structure.
func (dd *DeviationDetector) Check(prev, cur []float64) (Deviation, bool) {
	var worst Deviation
	for s := range dd.declared {
		if s >= len(cur) {
			break
		}
		var p float64
		if s < len(prev) {
			p = prev[s]
		}
		implied := dd.ImpliedDuty(p, cur[s])
		delta := math.Abs(implied - dd.declared[s])
		if delta > worst.Delta {
			worst = Deviation{
				Structure: dd.names[s],
				Implied:   implied,
				Declared:  dd.declared[s],
				Delta:     delta,
			}
		}
	}
	return worst, worst.Delta > dd.tol
}

// Tolerance returns the armed tolerance.
func (dd *DeviationDetector) Tolerance() float64 { return dd.tol }
