package fleetops

import (
	"math"
	"testing"

	"penelope/internal/lifetime"
)

// runFleet ages a config to completion and returns its epoch rows.
func runFleet(t *testing.T, cfg lifetime.Config) []lifetime.EpochStats {
	t.Helper()
	eng, err := lifetime.New(cfg)
	if err != nil {
		t.Fatalf("lifetime.New: %v", err)
	}
	for !eng.Done() {
		eng.Step(2)
	}
	return eng.Stats()
}

// attackEpochs returns the epoch indexes whose phase is "attack".
func attackEpochs(rows []lifetime.EpochStats) (first, last int) {
	first, last = -1, -1
	for _, r := range rows {
		if r.Phase == "attack" {
			if first < 0 {
				first = r.Epoch
			}
			last = r.Epoch
		}
	}
	return first, last
}

// TestDetectorImpliedDutyRoundTrip: inverting a noiseless nominal step
// recovers the duty that produced it to bisection precision.
func TestDetectorImpliedDutyRoundTrip(t *testing.T) {
	cfg := testConfig(1, 0, 0) // sigma 0: every chip is nominal
	det := NewDeviationDetector(cfg, 0.1)
	if det == nil {
		t.Fatal("no detector for a config with a service phase")
	}
	for _, d := range []float64{0, 0.15, 0.35, 0.55, 0.8, 1} {
		n := 0.2 // some partially-aged trap density
		next := det.step(n, d)
		got := det.ImpliedDuty(n*det.scale, next*det.scale)
		if math.Abs(got-d) > 1e-9 {
			t.Fatalf("ImpliedDuty round trip for d=%v: got %v", d, got)
		}
	}
}

// TestDetectorCleanBaselineNeverFires ages a fleet under its declared
// workload with full process variation: the detector must stay quiet
// for every epoch of the whole service life.
func TestDetectorCleanBaselineNeverFires(t *testing.T) {
	cfg := testConfig(2, 0, 0.08)
	rows := runFleet(t, cfg)
	det := NewDeviationDetector(cfg, DefaultDutyTolerance)
	if det == nil {
		t.Fatal("nil detector")
	}
	var prev []float64
	for _, row := range rows {
		dev, deviant := det.Check(prev, row.MeanVTHShift)
		if deviant {
			t.Fatalf("false positive at epoch %d: %+v (tolerance %v)", row.Epoch, dev, det.Tolerance())
		}
		prev = row.MeanVTHShift
	}
}

// TestDetectorFlagsAttackWithinTwoEpochs substitutes a duty-1.0 attack
// phase mid-life and checks the implied-duty monitor fires within two
// epochs of the substitution — and re-arms cleanly after the attack
// ends.
func TestDetectorFlagsAttackWithinTwoEpochs(t *testing.T) {
	// 2 years of service with a ~4-epoch attack in the middle.
	cfg := testConfig(2, 0.3, 0.08)
	rows := runFleet(t, cfg)
	first, last := attackEpochs(rows)
	if first < 0 {
		t.Fatal("schedule has no attack epochs")
	}

	// The detector is armed with the declared (service) workload, which
	// is what a registration promises; the attack phase is the lie.
	det := NewDeviationDetector(cfg, DefaultDutyTolerance)
	firedAt := -1
	var prev []float64
	for _, row := range rows {
		_, deviant := det.Check(prev, row.MeanVTHShift)
		if deviant {
			if row.Epoch < first {
				t.Fatalf("fired at epoch %d, before the attack started at %d", row.Epoch, first)
			}
			if firedAt < 0 {
				firedAt = row.Epoch
			}
			if row.Epoch > last+1 {
				t.Fatalf("still firing at epoch %d, attack ended at %d", row.Epoch, last)
			}
		}
		prev = row.MeanVTHShift
	}
	if firedAt < 0 {
		t.Fatal("attack never detected")
	}
	if firedAt > first+1 {
		t.Fatalf("detected at epoch %d, want within 2 epochs of attack start %d", firedAt, first)
	}
}

// TestDetectorNilWithoutServicePhase: a schedule that is all attack has
// no declared workload to compare against.
func TestDetectorNilWithoutServicePhase(t *testing.T) {
	cfg := testConfig(1, 0, 0)
	cfg.Phases = []lifetime.Phase{{Name: "attack", Years: 1, Duty: []float64{1, 1}}}
	if det := NewDeviationDetector(cfg, 0.1); det != nil {
		t.Fatal("detector armed with no declared workload")
	}
}

// TestDetectorToleranceDefault: tol <= 0 falls back to the package
// default.
func TestDetectorToleranceDefault(t *testing.T) {
	det := NewDeviationDetector(testConfig(1, 0, 0), 0)
	if det.Tolerance() != DefaultDutyTolerance {
		t.Fatalf("Tolerance() = %v, want %v", det.Tolerance(), DefaultDutyTolerance)
	}
}
