// Package fleetops is the continuous-operations layer over the fleet
// lifetime engine: where internal/service runs one-shot experiment
// jobs, fleetops keeps registered chip populations aging in real time.
// A scheduler advances each population epoch-by-epoch on its own
// interval, checkpointing after every tick so a restart resumes every
// fleet from its last epoch; per-epoch aggregates publish to an
// in-process event bus with bounded, drop-and-count subscriber buffers
// (the HTTP layer streams them as SSE and NDJSON with Last-Event-ID
// resume); and threshold rules — plus a duty-deviation detector that
// flags populations whose observed aging trajectory does not match
// their declared workload, the wearout-attack monitor of "Targeted
// Wearout Attacks in Microprocessor Cores" — fire alerts through a
// hardened webhook pipeline (per-sink timeout, retry with backoff and
// jitter, circuit breaker, dead-letter queue).
//
// The package is engineered for failure first: a failing tick retries
// with exponential backoff and quarantines the population after N
// consecutive failures instead of wedging the scheduler; a watchdog
// cancels and restarts ticks that exceed their deadline, reloading the
// engine from its last good snapshot; and every fault path is
// deterministic under test via seeded fault-injecting hooks in the
// spirit of internal/service/faultrunner.
package fleetops

import (
	"encoding/json"
	"fmt"
	"time"

	"penelope/internal/experiments"
	"penelope/internal/lifetime"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("30s", "5m") and unmarshals from either a string or nanoseconds, so
// registrations read naturally as JSON.
type Duration time.Duration

// MarshalJSON renders the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "30s"-style strings or integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("fleetops: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// AlertRules are the per-registration alert thresholds. Zero values
// disable a rule, so a registration without an "alerts" object runs
// unmonitored.
type AlertRules struct {
	// P99Guardband fires when the population's P99 guardband crosses
	// this fraction of the cycle time (e.g. 0.08 = 8%).
	P99Guardband float64 `json:"p99_guardband,omitempty"`
	// ViolatedFraction fires when the cumulative fraction of the fleet
	// past the provisioned guardband budget crosses this line.
	ViolatedFraction float64 `json:"violated_fraction,omitempty"`
	// DutyTolerance arms the wearout-attack monitor: each epoch the
	// observed per-structure mean-VTH step is inverted to the stress
	// duty that explains it, and an alert fires when any structure's
	// implied duty deviates from the declared workload's duty by more
	// than this. 0 disables the detector; DefaultDutyTolerance is a
	// reasonable setting.
	DutyTolerance float64 `json:"duty_tolerance,omitempty"`
}

// DefaultDutyTolerance separates process-variation wobble (a few
// percent of implied duty) from a workload substitution: a wearout
// attack pins duty at 1.0 while declared service duties sit well below.
const DefaultDutyTolerance = 0.25

// Enabled reports whether any rule is armed.
func (r AlertRules) Enabled() bool {
	return r.P99Guardband > 0 || r.ViolatedFraction > 0 || r.DutyTolerance > 0
}

// Registration declares one continuously-aged fleet population. It is
// the unit the scheduler persists (as a store sidecar) and resumes.
type Registration struct {
	// Name identifies the population; it doubles as the sidecar
	// filename, so it must be short lowercase alphanumerics with
	// interior dashes.
	Name string `json:"name"`
	// Fleet selects the schedule to age under: "penelope" (default,
	// mitigations on) or "baseline".
	Fleet string `json:"fleet,omitempty"`
	// Options parameterize the fleet exactly as the lifetime experiment
	// does: population size, years, epoch length, variation sigma,
	// attack phase, seed, and the trace workload the duty profile is
	// measured from.
	Options experiments.Options `json:"options"`
	// Interval is the spacing between epoch ticks; 0 uses the
	// scheduler's default.
	Interval Duration `json:"interval,omitempty"`
	// Cooldown is the minimum spacing between tick starts, a guard
	// against a slow tick immediately re-triggering; 0 means none
	// beyond Interval.
	Cooldown Duration `json:"cooldown,omitempty"`
	// EpochsPerTick advances more than one epoch per tick (default 1).
	EpochsPerTick int `json:"epochs_per_tick,omitempty"`
	// Alerts are the population's alert thresholds.
	Alerts AlertRules `json:"alerts,omitempty"`
}

// ValidName reports whether a registration name is safe to use as a
// sidecar filename (mirrors store.ValidFleetName).
func ValidName(name string) bool {
	if len(name) < 1 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
			(c == '-' && i > 0 && i < len(name)-1)
		if !ok {
			return false
		}
	}
	return true
}

// Validate reports the first shape problem with a registration. Engine
// construction is deliberately not attempted here — it is expensive and
// fallible, and belongs inside the self-healing tick path.
func (r Registration) Validate() error {
	switch {
	case !ValidName(r.Name):
		return fmt.Errorf("fleetops: invalid fleet name %q (want lowercase alphanumerics and interior dashes, 1-64 chars)", r.Name)
	case r.Fleet != "" && r.Fleet != "penelope" && r.Fleet != "baseline":
		return fmt.Errorf("fleetops: unknown fleet %q (want penelope or baseline)", r.Fleet)
	case r.EpochsPerTick < 0:
		return fmt.Errorf("fleetops: negative epochs_per_tick")
	case r.Interval < 0 || r.Cooldown < 0:
		return fmt.Errorf("fleetops: negative interval or cooldown")
	case r.Alerts.P99Guardband < 0 || r.Alerts.ViolatedFraction < 0 || r.Alerts.DutyTolerance < 0:
		return fmt.Errorf("fleetops: negative alert threshold")
	}
	return nil
}

// Penelope reports whether the registration ages under the mitigated
// schedule.
func (r Registration) Penelope() bool { return r.Fleet != "baseline" }

// ConfigBuilder turns a registration into the lifetime engine config it
// ages under. The production builder measures duty profiles from the
// trace workload (ExperimentBuilder); tests substitute cheap synthetic
// configs.
type ConfigBuilder func(Registration) (lifetime.Config, error)

// ExperimentBuilder is the production ConfigBuilder: the exact config
// the lifetime experiment would run for the registration's options —
// measured duty profiles (memoized per workload), the compiled adder's
// delay model, and the attack phases implied by AttackYears.
func ExperimentBuilder(reg Registration) (lifetime.Config, error) {
	if err := reg.Validate(); err != nil {
		return lifetime.Config{}, err
	}
	return experiments.FleetConfig(reg.Options, reg.Penelope()), nil
}

// Storage is the persistence surface the scheduler needs; *store.Store
// implements it. Nil storage keeps every checkpoint in memory only — a
// restart then starts every fleet from epoch zero.
type Storage interface {
	// PutFleet persists a registration sidecar.
	PutFleet(name string, data []byte) error
	// RemoveFleet deletes a registration's sidecars.
	RemoveFleet(name string)
	// WriteFleetCheckpoint atomically replaces a fleet's engine
	// checkpoint.
	WriteFleetCheckpoint(name string, data []byte) error
	// ReadFleetCheckpoint returns a fleet's engine checkpoint, if any.
	ReadFleetCheckpoint(name string) ([]byte, bool)
}
