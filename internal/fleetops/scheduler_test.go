package fleetops

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"penelope/internal/lifetime"
)

// fastCfg returns scheduler settings tuned for tests: millisecond
// ticks, two failures to quarantine, short cooldowns.
func fastCfg(cfg lifetime.Config) Config {
	return Config{
		Builder:            testBuilder(cfg),
		DefaultInterval:    2 * time.Millisecond,
		MaxFailures:        2,
		QuarantineCooldown: 25 * time.Millisecond,
		TickTimeout:        2 * time.Second,
		RetryBackoff:       time.Millisecond,
		Workers:            2,
	}
}

func TestSchedulerRunsToDone(t *testing.T) {
	cfg := testConfig(0.5, 0, 0.05) // ~7 epochs
	bus := NewBus(0)
	sc := NewScheduler(func() Config { c := fastCfg(cfg); c.Bus = bus; return c }())
	defer sc.Close(time.Second)

	sub := bus.Subscribe(fleetTopic("pop"), 0, 256)
	defer sub.Close()
	bus.Touch(fleetTopic("pop"))

	st, err := sc.Register(Registration{Name: "pop", EpochsPerTick: 2})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if st.State != StateActive {
		t.Fatalf("initial state = %v, want active", st.State)
	}
	if !waitFor(5*time.Second, func() bool {
		st, ok := sc.Get("pop")
		return ok && st.State == StateDone
	}) {
		st, _ := sc.Get("pop")
		t.Fatalf("population never finished: %+v", st)
	}
	st, _ = sc.Get("pop")
	if st.Epoch != st.TotalEpochs || st.Epoch == 0 {
		t.Fatalf("done at epoch %d of %d", st.Epoch, st.TotalEpochs)
	}
	// EpochStats rows are 0-indexed, so the last row of a finished
	// schedule is TotalEpochs-1.
	if st.Last == nil || st.Last.Epoch != st.Epoch-1 {
		t.Fatalf("missing or stale last stats: %+v", st.Last)
	}

	// The bus saw every epoch in order, plus the terminal state event.
	epochs, doneSeen := 0, false
	deadline := time.After(2 * time.Second)
	for !doneSeen {
		select {
		case ev := <-sub.C():
			switch ev.Type {
			case "epoch":
				epochs++
			case "state":
				var se StateEvent
				if err := json.Unmarshal(ev.Data, &se); err != nil {
					t.Fatalf("bad state event %s: %v", ev.Data, err)
				}
				if se.State == StateDone {
					doneSeen = true
				}
			}
		case <-deadline:
			t.Fatalf("saw %d epoch events (want %d) and no terminal state event", epochs, st.TotalEpochs)
		}
	}
	if epochs != st.TotalEpochs {
		t.Fatalf("bus carried %d epoch events, want %d", epochs, st.TotalEpochs)
	}

	stats := sc.Stats()
	if stats.Done != 1 || stats.TickFailures != 0 {
		t.Fatalf("stats = %+v, want one done population with no failures", stats)
	}
}

// TestSchedulerQuarantineAndRecovery drives one population into
// quarantine with injected tick failures while a healthy population
// keeps aging, then lets the quarantined one recover via its probation
// probe.
func TestSchedulerQuarantineAndRecovery(t *testing.T) {
	cfg := testConfig(3, 0, 0.05)
	var failing atomic.Bool
	failing.Store(true)
	scCfg := fastCfg(cfg)
	scCfg.Tick = func(ctx context.Context, name string, eng *lifetime.Engine) error {
		if name == "bad" && failing.Load() {
			return errors.New("injected tick failure")
		}
		eng.Step(2)
		return nil
	}
	sc := NewScheduler(scCfg)
	defer sc.Close(time.Second)

	for _, name := range []string{"bad", "good"} {
		if _, err := sc.Register(Registration{Name: name}); err != nil {
			t.Fatalf("Register(%s): %v", name, err)
		}
	}

	if !waitFor(5*time.Second, func() bool {
		st, ok := sc.Get("bad")
		return ok && st.State == StateQuarantined
	}) {
		t.Fatal("bad population never quarantined")
	}
	if q := sc.Quarantined(); len(q) != 1 || q[0] != "bad" {
		t.Fatalf("Quarantined() = %v, want [bad]", q)
	}
	st, _ := sc.Get("bad")
	if st.TickFailures < uint64(scCfg.MaxFailures) || st.Quarantines != 1 {
		t.Fatalf("bad status after quarantine: %+v", st)
	}

	// The healthy population is not stalled by its quarantined sibling.
	goodBefore, _ := sc.Get("good")
	if !waitFor(5*time.Second, func() bool {
		st, ok := sc.Get("good")
		return ok && (st.Epoch > goodBefore.Epoch || st.State == StateDone)
	}) {
		t.Fatal("good population stalled while bad was quarantined")
	}

	// Heal the sink; the probation probe after the cooldown recovers it.
	failing.Store(false)
	if !waitFor(5*time.Second, func() bool {
		st, ok := sc.Get("bad")
		return ok && st.State != StateQuarantined && st.Epoch > 0
	}) {
		st, _ := sc.Get("bad")
		t.Fatalf("bad population never recovered: %+v", st)
	}
	st, _ = sc.Get("bad")
	if st.ConsecutiveFailures != 0 || st.LastError != "" {
		t.Fatalf("recovery did not clear failure state: %+v", st)
	}
}

// TestSchedulerWatchdog hangs a tick past its deadline and checks the
// watchdog abandons it, counts it, and that the population still makes
// progress once ticks behave again.
func TestSchedulerWatchdog(t *testing.T) {
	cfg := testConfig(3, 0, 0.05)
	var hang atomic.Bool
	hang.Store(true)
	scCfg := fastCfg(cfg)
	scCfg.TickTimeout = 15 * time.Millisecond
	scCfg.Tick = func(ctx context.Context, name string, eng *lifetime.Engine) error {
		if hang.Load() {
			<-ctx.Done() // wedge until the watchdog cancels us
			return ctx.Err()
		}
		eng.Step(2)
		return nil
	}
	sc := NewScheduler(scCfg)
	defer sc.Close(time.Second)

	if _, err := sc.Register(Registration{Name: "wedged"}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if !waitFor(5*time.Second, func() bool {
		st, ok := sc.Get("wedged")
		return ok && st.WatchdogTimeouts >= 1
	}) {
		t.Fatal("watchdog never fired")
	}
	hang.Store(false)
	if !waitFor(5*time.Second, func() bool {
		st, ok := sc.Get("wedged")
		return ok && st.Epoch > 0 && st.State != StateQuarantined
	}) {
		st, _ := sc.Get("wedged")
		t.Fatalf("population never progressed after watchdog recovery: %+v", st)
	}
}

// TestSchedulerResume closes a scheduler mid-schedule and restarts it
// against the same storage: the population resumes from its checkpoint
// (Resumed flag set) instead of restarting at epoch zero, and the
// resumed trajectory matches an uninterrupted reference run exactly.
func TestSchedulerResume(t *testing.T) {
	cfg := testConfig(0.5, 0, 0.08)
	storage := newMemStorage()

	scCfg := fastCfg(cfg)
	scCfg.Storage = storage
	sc := NewScheduler(scCfg)
	if _, err := sc.Register(Registration{Name: "pop", EpochsPerTick: 1}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if !waitFor(5*time.Second, func() bool {
		st, ok := sc.Get("pop")
		return ok && st.Epoch >= 2 && st.State == StateActive
	}) {
		t.Fatal("population never reached epoch 2")
	}
	sc.Close(time.Second)

	ck, ok := storage.ReadFleetCheckpoint("pop")
	if !ok || len(ck) == 0 {
		t.Fatal("Close left no checkpoint behind")
	}
	if _, ok := storage.fleets["pop"]; !ok {
		t.Fatal("registration sidecar missing")
	}

	sc2 := NewScheduler(scCfg)
	defer sc2.Close(time.Second)
	if _, err := sc2.Register(Registration{Name: "pop", EpochsPerTick: 4}); err != nil {
		t.Fatalf("re-Register: %v", err)
	}
	if !waitFor(10*time.Second, func() bool {
		st, ok := sc2.Get("pop")
		return ok && st.State == StateDone
	}) {
		st, _ := sc2.Get("pop")
		t.Fatalf("resumed population never finished: %+v", st)
	}
	st, _ := sc2.Get("pop")
	if !st.Resumed {
		t.Fatal("resumed population not flagged Resumed")
	}

	// Byte-identical resume: the final epoch row matches a reference
	// engine run with no interruption.
	ref, err := lifetime.New(cfg)
	if err != nil {
		t.Fatalf("reference engine: %v", err)
	}
	for !ref.Done() {
		ref.Step(2)
	}
	want := ref.Stats()[len(ref.Stats())-1]
	got := *st.Last
	if got.Epoch != want.Epoch || got.P99Guardband != want.P99Guardband ||
		got.ViolatedFraction != want.ViolatedFraction {
		t.Fatalf("resumed trajectory diverged:\n got %+v\nwant %+v", got, want)
	}
	for i := range want.MeanVTHShift {
		if got.MeanVTHShift[i] != want.MeanVTHShift[i] {
			t.Fatalf("MeanVTHShift[%d] = %v, want %v (bit-exact)", i, got.MeanVTHShift[i], want.MeanVTHShift[i])
		}
	}
}

func TestSchedulerDeregisterAndDuplicates(t *testing.T) {
	cfg := testConfig(3, 0, 0.05)
	storage := newMemStorage()
	bus := NewBus(0)
	scCfg := fastCfg(cfg)
	scCfg.Storage = storage
	scCfg.Bus = bus
	sc := NewScheduler(scCfg)
	defer sc.Close(time.Second)

	if _, err := sc.Register(Registration{Name: "pop"}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := sc.Register(Registration{Name: "pop"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Register error = %v, want ErrExists", err)
	}
	if _, err := sc.Register(Registration{Name: "Bad Name!"}); err == nil {
		t.Fatal("invalid name accepted")
	}
	if _, err := sc.Register(Registration{Name: "x", Fleet: "warp-core"}); err == nil {
		t.Fatal("unknown fleet accepted")
	}

	sub := bus.Subscribe(fleetTopic("pop"), 0, 16)
	if err := sc.Deregister("pop"); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if _, ok := sc.Get("pop"); ok {
		t.Fatal("deregistered population still listed")
	}
	if _, ok := storage.fleets["pop"]; ok {
		t.Fatal("deregistered sidecar still stored")
	}
	if bus.HasTopic(fleetTopic("pop")) {
		t.Fatal("deregistered topic still exists")
	}
	// The subscriber's channel closes so streams end.
	if !waitFor(time.Second, func() bool {
		for {
			select {
			case _, ok := <-sub.C():
				if !ok {
					return true
				}
			default:
				return false
			}
		}
	}) {
		t.Fatal("subscription never closed after Deregister")
	}
	if err := sc.Deregister("pop"); err == nil {
		t.Fatal("double Deregister succeeded")
	}
}

// TestSchedulerCloseIsIdempotentAndPersists covers Close: it persists
// the last good snapshot even when no clean tick boundary coincides
// with shutdown, and calling it twice is safe.
func TestSchedulerCloseIsIdempotentAndPersists(t *testing.T) {
	cfg := testConfig(3, 0, 0.05)
	storage := newMemStorage()
	scCfg := fastCfg(cfg)
	scCfg.Storage = storage
	sc := NewScheduler(scCfg)
	if _, err := sc.Register(Registration{Name: "pop"}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if !waitFor(5*time.Second, func() bool {
		st, ok := sc.Get("pop")
		return ok && st.Epoch >= 1
	}) {
		t.Fatal("population never ticked")
	}
	sc.Close(time.Second)
	sc.Close(time.Second) // idempotent
	if _, ok := storage.ReadFleetCheckpoint("pop"); !ok {
		t.Fatal("Close did not persist the checkpoint")
	}
	if _, err := sc.Register(Registration{Name: "late"}); err == nil {
		t.Fatal("Register after Close succeeded")
	}
}

// TestSchedulerResumeSeedsDetectorBaseline restarts a scheduler whose
// population has the wearout-attack monitor armed. The first resumed
// tick must seed the detector's previous-epoch baseline from the
// restored checkpoint's last stats row (Engine.LastStats) — seeding
// from zero would read the accumulated shift as one epoch at duty
// ~1.0 and fire a false wearout-attack alert on every restart.
func TestSchedulerResumeSeedsDetectorBaseline(t *testing.T) {
	cfg := testConfig(0.5, 0, 0.08)
	storage := newMemStorage()
	sink := &FaultSink{Seed: 1}
	reg := Registration{Name: "pop", EpochsPerTick: 1,
		Alerts: AlertRules{DutyTolerance: DefaultDutyTolerance}}

	run := func(minEpoch int) {
		t.Helper()
		d := NewDeliverer(DelivererConfig{
			Sink: sink, Workers: 1, Backoff: time.Microsecond, Timeout: time.Second,
		})
		scCfg := fastCfg(cfg)
		scCfg.Storage = storage
		scCfg.Alerter = NewAlerter(nil, d)
		sc := NewScheduler(scCfg)
		if _, err := sc.Register(reg); err != nil {
			t.Fatalf("Register: %v", err)
		}
		if !waitFor(10*time.Second, func() bool {
			st, ok := sc.Get("pop")
			return ok && st.Epoch >= minEpoch
		}) {
			st, _ := sc.Get("pop")
			t.Fatalf("population never reached epoch %d: %+v", minEpoch, st)
		}
		sc.Close(time.Second)
		d.Close()
	}

	run(3) // accumulate shift under the clean declared workload
	run(5) // restart: the resumed ticks must stay quiet too
	if got := sink.Delivered(); len(got) != 0 {
		t.Fatalf("clean resumed run fired alerts: %+v", got)
	}
}

// TestSchedulerBuilderFailureQuarantines exercises the registration
// whose engine cannot even be built: the failure lands in the tick
// path, retries, and quarantines without wedging Register.
func TestSchedulerBuilderFailureQuarantines(t *testing.T) {
	scCfg := fastCfg(testConfig(1, 0, 0.05))
	scCfg.Builder = func(reg Registration) (lifetime.Config, error) {
		return lifetime.Config{}, fmt.Errorf("no such workload")
	}
	sc := NewScheduler(scCfg)
	defer sc.Close(time.Second)
	if _, err := sc.Register(Registration{Name: "doomed"}); err != nil {
		t.Fatalf("Register should defer builder errors to the tick path, got %v", err)
	}
	if !waitFor(5*time.Second, func() bool {
		st, ok := sc.Get("doomed")
		return ok && st.State == StateQuarantined
	}) {
		t.Fatal("unbuildable population never quarantined")
	}
	st, _ := sc.Get("doomed")
	if st.LastError == "" {
		t.Fatal("quarantined status carries no error")
	}
}
