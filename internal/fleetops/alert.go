package fleetops

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"sync"
	"time"

	"penelope/internal/lifetime"
)

// Alert is one fired rule instance. The ID is deterministic —
// fleet/rule/epoch(/structure) — so delivery behavior keyed on it (the
// fault-injecting sink, jittered backoff) replays identically across
// runs and worker counts.
type Alert struct {
	ID        string    `json:"id"`
	Fleet     string    `json:"fleet"`
	Rule      string    `json:"rule"`
	Epoch     int       `json:"epoch"`
	Structure string    `json:"structure,omitempty"`
	Value     float64   `json:"value"`
	Threshold float64   `json:"threshold"`
	Message   string    `json:"message"`
	Time      time.Time `json:"time"`
}

// Rule names.
const (
	RuleP99Guardband     = "p99-guardband"
	RuleViolatedFraction = "violated-fraction"
	RuleDutyDeviation    = "duty-deviation"
)

// Sink delivers one alert attempt to its destination.
type Sink interface {
	Name() string
	Deliver(ctx context.Context, a Alert) error
}

// WebhookSink POSTs alerts as JSON to a URL; any non-2xx status is a
// delivery failure.
type WebhookSink struct {
	URL    string
	Client *http.Client
}

// Name identifies the sink in metrics and dead letters.
func (s *WebhookSink) Name() string { return "webhook:" + s.URL }

// Deliver POSTs the alert.
func (s *WebhookSink) Deliver(ctx context.Context, a Alert) error {
	body, err := json.Marshal(a)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.URL, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	client := s.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("fleetops: webhook returned %s", resp.Status)
	}
	return nil
}

// breaker is a circuit breaker over consecutive sink failures: closed →
// open after Threshold consecutive failures; open fast-fails deliveries
// until Cooldown passes; the first delivery after that is the half-open
// probe — success closes the breaker, failure re-opens it.
type breaker struct {
	mu          sync.Mutex
	threshold   int
	cooldown    time.Duration
	consecutive int
	openUntil   time.Time
	probing     bool
	opens       uint64
}

type breakerVerdict int

const (
	breakerAllow breakerVerdict = iota
	breakerReject
)

func (b *breaker) admit(now time.Time) breakerVerdict {
	if b.threshold <= 0 {
		return breakerAllow
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return breakerAllow
	}
	if now.Before(b.openUntil) {
		return breakerReject
	}
	if b.probing {
		// Another worker already holds the half-open probe slot.
		return breakerReject
	}
	b.probing = true
	return breakerAllow
}

func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.openUntil = time.Time{}
	b.probing = false
}

func (b *breaker) failure(now time.Time) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.consecutive++
	if b.consecutive >= b.threshold {
		if b.openUntil.IsZero() || !now.Before(b.openUntil) {
			b.opens++
		}
		b.openUntil = now.Add(b.cooldown)
	}
}

func (b *breaker) state(now time.Time) string {
	if b.threshold <= 0 {
		return "disabled"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.openUntil.IsZero():
		return "closed"
	case now.Before(b.openUntil):
		return "open"
	default:
		return "half-open"
	}
}

// DeadLetter is an alert the pipeline gave up on, with the reason.
type DeadLetter struct {
	Alert  Alert  `json:"alert"`
	Reason string `json:"reason"`
}

// DelivererConfig configures the hardened delivery pipeline.
type DelivererConfig struct {
	// Sink receives delivery attempts. Required.
	Sink Sink
	// Workers drain the queue concurrently (default 1).
	Workers int
	// QueueDepth bounds the intake queue; a full queue drops the alert
	// and counts it (default 256).
	QueueDepth int
	// Timeout bounds each delivery attempt (default 5s).
	Timeout time.Duration
	// MaxRetries re-attempts a failed delivery (default 3, so up to 4
	// attempts). Negative means no retries.
	MaxRetries int
	// Backoff is the base retry delay, doubled per attempt with
	// deterministic jitter (default 250ms).
	Backoff time.Duration
	// BreakerThreshold opens the circuit after this many consecutive
	// failures; 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown holds the circuit open before the half-open probe
	// (default 30s).
	BreakerCooldown time.Duration
	// Seed drives the jitter; fixed seed + deterministic alert IDs give
	// a reproducible retry schedule.
	Seed uint64
	// DeadLetterLimit bounds the retained dead letters (default 128).
	DeadLetterLimit int
	// Instruments, when set, records per-attempt sink latency and
	// delivery spans. Nil costs nothing.
	Instruments *Instruments
}

// Deliverer pushes alerts through the sink with per-attempt timeout,
// retry with backoff and jitter, a circuit breaker, and a bounded
// dead-letter queue. Enqueue never blocks.
type Deliverer struct {
	cfg   DelivererConfig
	queue chan Alert
	wg    sync.WaitGroup
	brk   breaker

	mu          sync.Mutex
	closed      bool
	enqueued    uint64
	delivered   uint64
	retries     uint64
	deadTotal   uint64
	dropped     uint64
	breakerFast uint64
	deadLetters []DeadLetter
}

// NewDeliverer starts the pipeline's workers.
func NewDeliverer(cfg DelivererConfig) *Deliverer {
	if cfg.Sink == nil {
		panic("fleetops: NewDeliverer requires a sink")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 250 * time.Millisecond
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 30 * time.Second
	}
	if cfg.DeadLetterLimit <= 0 {
		cfg.DeadLetterLimit = 128
	}
	d := &Deliverer{
		cfg:   cfg,
		queue: make(chan Alert, cfg.QueueDepth),
		brk:   breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown},
	}
	d.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go d.worker()
	}
	return d
}

// Enqueue hands an alert to the pipeline without blocking: a full queue
// or closed deliverer drops it (counted).
func (d *Deliverer) Enqueue(a Alert) bool {
	// The non-blocking send happens under the same lock Close holds
	// while marking the pipeline closed, so a late Enqueue racing Close
	// can never send on the already-closed channel.
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false
	}
	d.enqueued++
	select {
	case d.queue <- a:
		return true
	default:
		d.dropped++
		return false
	}
}

// Close stops intake and drains the queue — every enqueued alert is
// delivered or dead-lettered before Close returns, so counters are
// stable afterwards.
func (d *Deliverer) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	close(d.queue)
	d.wg.Wait()
}

func (d *Deliverer) worker() {
	defer d.wg.Done()
	for a := range d.queue {
		d.deliver(a)
	}
}

func (d *Deliverer) deliver(a Alert) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if d.brk.admit(time.Now()) == breakerReject {
			d.mu.Lock()
			d.breakerFast++
			d.mu.Unlock()
			reason := "circuit breaker open"
			if lastErr != nil {
				reason = fmt.Sprintf("circuit breaker open after: %v", lastErr)
			}
			d.deadLetter(a, reason)
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), d.cfg.Timeout)
		attemptStart := time.Now()
		err := d.cfg.Sink.Deliver(ctx, a)
		cancel()
		d.cfg.Instruments.observeDeliver(a.ID, attempt, attemptStart, err)
		if err == nil {
			d.brk.success()
			d.mu.Lock()
			d.delivered++
			d.mu.Unlock()
			return
		}
		lastErr = err
		d.brk.failure(time.Now())
		if attempt >= d.cfg.MaxRetries {
			d.deadLetter(a, fmt.Sprintf("retries exhausted: %v", err))
			return
		}
		d.mu.Lock()
		d.retries++
		d.mu.Unlock()
		time.Sleep(d.backoff(a.ID, attempt))
	}
}

// backoff doubles the base delay per attempt and adds up to 50%
// deterministic jitter keyed on (seed, alert ID, attempt) — the same
// alert retries on the same schedule in every run, regardless of which
// worker carries it.
func (d *Deliverer) backoff(id string, attempt int) time.Duration {
	base := float64(d.cfg.Backoff) * math.Pow(2, float64(attempt))
	if max := float64(30 * time.Second); base > max {
		base = max
	}
	jitter := unitHash(d.cfg.Seed, id, uint64(attempt)) * 0.5 * base
	return time.Duration(base + jitter)
}

func (d *Deliverer) deadLetter(a Alert, reason string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.deadTotal++
	d.deadLetters = append(d.deadLetters, DeadLetter{Alert: a, Reason: reason})
	if len(d.deadLetters) > d.cfg.DeadLetterLimit {
		d.deadLetters = d.deadLetters[len(d.deadLetters)-d.cfg.DeadLetterLimit:]
	}
}

// DeliveryStats is the alert-pipeline section of /metrics.
type DeliveryStats struct {
	Sink             string       `json:"sink"`
	QueueDepth       int          `json:"queue_depth"`
	Enqueued         uint64       `json:"enqueued"`
	Delivered        uint64       `json:"delivered"`
	Retries          uint64       `json:"retries"`
	DeadLettered     uint64       `json:"dead_lettered"`
	DroppedQueueFull uint64       `json:"dropped_queue_full"`
	BreakerState     string       `json:"breaker_state"`
	BreakerOpens     uint64       `json:"breaker_opens"`
	BreakerFastFails uint64       `json:"breaker_fast_fails"`
	DeadLetters      []DeadLetter `json:"dead_letters,omitempty"`
}

// Stats returns a point-in-time snapshot, including the retained dead
// letters.
func (d *Deliverer) Stats() DeliveryStats {
	now := time.Now()
	d.brk.mu.Lock()
	opens := d.brk.opens
	d.brk.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	return DeliveryStats{
		Sink:             d.cfg.Sink.Name(),
		QueueDepth:       len(d.queue),
		Enqueued:         d.enqueued,
		Delivered:        d.delivered,
		Retries:          d.retries,
		DeadLettered:     d.deadTotal,
		DroppedQueueFull: d.dropped,
		BreakerState:     d.brk.state(now),
		BreakerOpens:     opens,
		BreakerFastFails: d.breakerFast,
		DeadLetters:      append([]DeadLetter(nil), d.deadLetters...),
	}
}

// FaultSink is a deterministic fault-injecting Sink for tests and chaos
// drills, in the spirit of service/faultrunner: failure decisions key
// on (seed, alert ID, per-alert attempt index), never on global order,
// so the same seed and fault schedule reproduce the exact same
// delivery/retry/dead-letter counts at any worker count.
type FaultSink struct {
	// Seed drives the per-attempt failure draw.
	Seed uint64
	// FailFirst fails the first N attempts of every alert outright.
	FailFirst int
	// FailRate is the probability any later attempt fails.
	FailRate float64
	// Latency delays every attempt (simulates a slow sink).
	Latency time.Duration

	mu        sync.Mutex
	attempts  map[string]int
	delivered []Alert
}

// Name identifies the sink.
func (f *FaultSink) Name() string { return "fault-sink" }

// Deliver fails or succeeds per the seeded schedule.
func (f *FaultSink) Deliver(ctx context.Context, a Alert) error {
	if f.Latency > 0 {
		select {
		case <-time.After(f.Latency):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	f.mu.Lock()
	if f.attempts == nil {
		f.attempts = make(map[string]int)
	}
	attempt := f.attempts[a.ID]
	f.attempts[a.ID] = attempt + 1
	f.mu.Unlock()
	if attempt < f.FailFirst {
		return fmt.Errorf("fault-sink: injected failure (attempt %d of first %d)", attempt, f.FailFirst)
	}
	if f.FailRate > 0 && unitHash(f.Seed, a.ID, uint64(attempt)) < f.FailRate {
		return fmt.Errorf("fault-sink: injected failure (attempt %d)", attempt)
	}
	f.mu.Lock()
	f.delivered = append(f.delivered, a)
	f.mu.Unlock()
	return nil
}

// Delivered returns the successfully delivered alerts so far.
func (f *FaultSink) Delivered() []Alert {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Alert(nil), f.delivered...)
}

// unitHash maps (seed, id, n) to a uniform [0,1) draw via splitmix64
// over an FNV-1a digest of the id.
func unitHash(seed uint64, id string, n uint64) float64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	x := seed ^ h.Sum64() ^ (n * 0x9e3779b97f4a7c15)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// Alerter evaluates a registration's rules against each new epoch row
// and fans fired alerts out: onto the bus (as "alert" events on the
// fleet's topic) and into the delivery pipeline. Rules latch — a rule
// instance fires when its condition first becomes true and re-arms when
// the condition clears — so a sustained threshold crossing produces one
// alert, not one per epoch.
type Alerter struct {
	bus       *Bus
	deliverer *Deliverer

	mu        sync.Mutex
	latched   map[string]bool
	evaluated uint64
	fired     uint64
}

// NewAlerter wires the evaluator to an optional bus and optional
// delivery pipeline.
func NewAlerter(bus *Bus, deliverer *Deliverer) *Alerter {
	return &Alerter{bus: bus, deliverer: deliverer, latched: make(map[string]bool)}
}

// Observe evaluates one fleet epoch row. prev is the previous row's
// MeanVTHShift (nil for the first epoch); det may be nil when the
// detector is disarmed. It returns the alerts fired for this row.
func (al *Alerter) Observe(fleet string, rules AlertRules, det *DeviationDetector,
	prevVTH []float64, cur lifetime.EpochStats) []Alert {
	if al == nil {
		return nil
	}
	type candidate struct {
		rule      string
		latchKey  string
		active    bool
		structure string
		value     float64
		threshold float64
		message   string
	}
	var cands []candidate
	if rules.P99Guardband > 0 {
		cands = append(cands, candidate{
			rule:      RuleP99Guardband,
			latchKey:  fleet + "/" + RuleP99Guardband,
			active:    cur.P99Guardband >= rules.P99Guardband,
			value:     cur.P99Guardband,
			threshold: rules.P99Guardband,
			message: fmt.Sprintf("P99 guardband %.4f crossed %.4f at epoch %d (%.2f years)",
				cur.P99Guardband, rules.P99Guardband, cur.Epoch, cur.Years),
		})
	}
	if rules.ViolatedFraction > 0 {
		cands = append(cands, candidate{
			rule:      RuleViolatedFraction,
			latchKey:  fleet + "/" + RuleViolatedFraction,
			active:    cur.ViolatedFraction >= rules.ViolatedFraction,
			value:     cur.ViolatedFraction,
			threshold: rules.ViolatedFraction,
			message: fmt.Sprintf("violated fraction %.4f crossed %.4f at epoch %d (%.2f years)",
				cur.ViolatedFraction, rules.ViolatedFraction, cur.Epoch, cur.Years),
		})
	}
	if rules.DutyTolerance > 0 && det != nil {
		dev, deviant := det.Check(prevVTH, cur.MeanVTHShift)
		cands = append(cands, candidate{
			rule:      RuleDutyDeviation,
			latchKey:  fleet + "/" + RuleDutyDeviation + "/" + dev.Structure,
			active:    deviant,
			structure: dev.Structure,
			value:     dev.Implied,
			threshold: det.Tolerance(),
			message: fmt.Sprintf("wearout-attack suspect: %s implied duty %.3f vs declared %.3f (|Δ|=%.3f > %.3f) at epoch %d",
				dev.Structure, dev.Implied, dev.Declared, dev.Delta, det.Tolerance(), cur.Epoch),
		})
	}
	var fired []Alert
	al.mu.Lock()
	for _, c := range cands {
		al.evaluated++
		was := al.latched[c.latchKey]
		al.latched[c.latchKey] = c.active
		if !c.active || was {
			continue
		}
		al.fired++
		a := Alert{
			Fleet:     fleet,
			Rule:      c.rule,
			Epoch:     cur.Epoch,
			Structure: c.structure,
			Value:     c.value,
			Threshold: c.threshold,
			Message:   c.message,
			Time:      time.Now().UTC(),
		}
		a.ID = fmt.Sprintf("%s/%s/%d", a.Fleet, a.Rule, a.Epoch)
		if a.Structure != "" {
			a.ID += "/" + a.Structure
		}
		fired = append(fired, a)
	}
	al.mu.Unlock()
	for _, a := range fired {
		if al.bus != nil {
			al.bus.Publish(fleetTopic(fleet), "alert", a)
		}
		if al.deliverer != nil {
			al.deliverer.Enqueue(a)
		}
	}
	return fired
}

// AlertStats is the rule-evaluation section of /metrics.
type AlertStats struct {
	Evaluated uint64 `json:"evaluated"`
	Fired     uint64 `json:"fired"`
}

// Stats returns evaluation counters.
func (al *Alerter) Stats() AlertStats {
	al.mu.Lock()
	defer al.mu.Unlock()
	return AlertStats{Evaluated: al.evaluated, Fired: al.fired}
}
