package fleetops

import (
	"encoding/json"
	"testing"
)

func TestBusPublishSubscribeOrder(t *testing.T) {
	b := NewBus(0)
	sub := b.Subscribe("t", 0, 16)
	defer sub.Close()
	for i := 0; i < 5; i++ {
		if _, err := b.Publish("t", "n", map[string]int{"i": i}); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	for i := 0; i < 5; i++ {
		ev := <-sub.C()
		if ev.Seq != uint64(i+1) || ev.Topic != "t" || ev.Type != "n" {
			t.Fatalf("event %d = %+v", i, ev)
		}
		var d struct{ I int }
		if err := json.Unmarshal(ev.Data, &d); err != nil || d.I != i {
			t.Fatalf("payload %d = %s (%v)", i, ev.Data, err)
		}
	}
	if st := b.Stats(); st.Published != 5 || st.Dropped != 0 || st.Topics != 1 || st.Subscribers != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestBusResume replays the history ring past a Last-Event-ID sequence
// number with no gap into live delivery.
func TestBusResume(t *testing.T) {
	b := NewBus(8)
	for i := 0; i < 6; i++ {
		b.Publish("t", "n", i)
	}
	sub := b.Subscribe("t", 4, 16) // saw events 1..4 already
	defer sub.Close()
	b.Publish("t", "n", 6) // live event while resumed

	want := []uint64{5, 6, 7}
	for _, seq := range want {
		ev := <-sub.C()
		if ev.Seq != seq {
			t.Fatalf("resume got seq %d, want %d", ev.Seq, seq)
		}
	}
}

// TestBusHistoryEviction: the ring keeps only the newest `history`
// events, so a subscriber resuming from 0 sees just the tail.
func TestBusHistoryEviction(t *testing.T) {
	b := NewBus(4)
	for i := 0; i < 10; i++ {
		b.Publish("t", "n", i)
	}
	sub := b.Subscribe("t", 0, 16)
	defer sub.Close()
	for _, seq := range []uint64{7, 8, 9, 10} {
		ev := <-sub.C()
		if ev.Seq != seq {
			t.Fatalf("got seq %d, want %d", ev.Seq, seq)
		}
	}
	select {
	case ev := <-sub.C():
		t.Fatalf("unexpected extra event %+v", ev)
	default:
	}
}

// TestBusSlowSubscriberDrops: a full subscriber buffer drops events and
// counts them instead of blocking the publisher.
func TestBusSlowSubscriberDrops(t *testing.T) {
	b := NewBus(0)
	sub := b.Subscribe("t", 0, 4)
	defer sub.Close()
	for i := 0; i < 20; i++ {
		b.Publish("t", "n", i) // never blocks
	}
	if got := sub.Dropped(); got != 16 {
		t.Fatalf("Dropped() = %d, want 16", got)
	}
	if st := b.Stats(); st.Dropped != 16 || st.Published != 20 {
		t.Fatalf("stats = %+v", st)
	}
	// The first 4 made it through in order.
	for i := 0; i < 4; i++ {
		ev := <-sub.C()
		if ev.Seq != uint64(i+1) {
			t.Fatalf("got seq %d, want %d", ev.Seq, i+1)
		}
	}
}

func TestBusDropClosesSubscribers(t *testing.T) {
	b := NewBus(0)
	b.Touch("t")
	if !b.HasTopic("t") {
		t.Fatal("Touch did not create the topic")
	}
	sub := b.Subscribe("t", 0, 4)
	b.Drop("t")
	if b.HasTopic("t") {
		t.Fatal("dropped topic still exists")
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("subscription channel still open after Drop")
	}
	sub.Close() // double close after Drop must not panic
	b.Drop("t") // dropping a missing topic is a no-op
}

// TestBusSubscribeExisting checks the no-create subscribe variant:
// it refuses a missing (or dropped) topic instead of resurrecting a
// ghost, and still replays history on a live one.
func TestBusSubscribeExisting(t *testing.T) {
	b := NewBus(0)
	if _, ok := b.SubscribeExisting("t", 0, 4); ok {
		t.Fatal("SubscribeExisting created a missing topic")
	}
	if b.HasTopic("t") {
		t.Fatal("failed SubscribeExisting left a topic behind")
	}
	b.Publish("t", "n", 1)
	sub, ok := b.SubscribeExisting("t", 0, 4)
	if !ok {
		t.Fatal("SubscribeExisting refused an existing topic")
	}
	if ev := <-sub.C(); ev.Seq != 1 {
		t.Fatalf("replayed seq = %d, want 1", ev.Seq)
	}
	sub.Close()
	b.Drop("t")
	if _, ok := b.SubscribeExisting("t", 0, 4); ok {
		t.Fatal("SubscribeExisting attached to a dropped topic")
	}
}

func TestBusPerTopicSequences(t *testing.T) {
	b := NewBus(0)
	b.Publish("a", "n", 1)
	b.Publish("a", "n", 2)
	ev, _ := b.Publish("b", "n", 1)
	if ev.Seq != 1 {
		t.Fatalf("topic b first seq = %d, want 1 (sequences are per topic)", ev.Seq)
	}
}

func TestBusPublishUnmarshalable(t *testing.T) {
	b := NewBus(0)
	if _, err := b.Publish("t", "n", func() {}); err == nil {
		t.Fatal("publishing an unmarshalable payload succeeded")
	}
}

// BenchmarkBusPublishFanout measures publish cost with a handful of
// (deliberately saturated) subscribers — the hot path of the epoch
// loop's event fan-out.
func BenchmarkBusPublishFanout(b *testing.B) {
	bus := NewBus(DefaultHistory)
	for i := 0; i < 4; i++ {
		defer bus.Subscribe("t", 0, 8).Close()
	}
	payload := EpochEvent{Fleet: "bench"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bus.Publish("t", "epoch", payload); err != nil {
			b.Fatal(err)
		}
	}
}
