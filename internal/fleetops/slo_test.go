package fleetops

import (
	"strings"
	"testing"
	"time"
)

// fakeHistory scripts the reductions per (name, window).
type fakeHistory struct {
	increase map[string]map[time.Duration]float64
	avg      map[string]map[time.Duration]float64
	slope    map[string]map[time.Duration]float64
}

func lookup(m map[string]map[time.Duration]float64, name string, w time.Duration) (float64, bool) {
	if m == nil {
		return 0, false
	}
	v, ok := m[name][w]
	return v, ok
}

func (f *fakeHistory) Increase(name string, w time.Duration, _ time.Time) (float64, bool) {
	return lookup(f.increase, name, w)
}
func (f *fakeHistory) Avg(name string, w time.Duration, _ time.Time) (float64, bool) {
	return lookup(f.avg, name, w)
}
func (f *fakeHistory) Slope(name string, w time.Duration, _ time.Time) (float64, bool) {
	return lookup(f.slope, name, w)
}

func burnRule() SLORule {
	return SLORule{
		Name: "shed-budget", Kind: SLOBurnRate,
		Numerator: "shed_total", Denominator: "req_total",
		Objective:   0.01, // 1% error budget
		ShortWindow: Duration(5 * time.Minute),
		LongWindow:  Duration(time.Hour),
		Burn:        2,
	}
}

func setBurn(h *fakeHistory, short, long float64) {
	// req increase fixed at 1000 per window; shed scaled to hit the
	// requested burn multiple of the 1% objective.
	h.increase = map[string]map[time.Duration]float64{
		"shed_total": {5 * time.Minute: short * 0.01 * 1000, time.Hour: long * 0.01 * 1000},
		"req_total":  {5 * time.Minute: 1000, time.Hour: 1000},
	}
}

// TestSLOBurnRateMultiWindow drives the latch through the canonical
// multi-window sequence: long-only breach stays quiet, both-window
// breach fires once, sustained breach stays latched, a cleared short
// window re-arms, and the next both-window breach fires again.
func TestSLOBurnRateMultiWindow(t *testing.T) {
	h := &fakeHistory{}
	eng, err := NewSLOEngine(h, []SLORule{burnRule()}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	step := func(short, long float64, wantFired int, label string) []Alert {
		t.Helper()
		setBurn(h, short, long)
		now = now.Add(time.Minute)
		fired := eng.EvaluateOnce(now)
		if len(fired) != wantFired {
			t.Fatalf("%s: fired %d alerts, want %d (%+v)", label, len(fired), wantFired, fired)
		}
		return fired
	}

	step(0.5, 3, 0, "long-only breach")  // incident over, budget still drained
	step(3, 0.5, 0, "short-only breach") // blip, no sustained spend
	a := step(3, 3, 1, "both breach")    // fire
	if a[0].Fleet != "slo" || a[0].Rule != "shed-budget" || a[0].Threshold != 2 {
		t.Fatalf("alert = %+v, want fleet slo, rule shed-budget, threshold 2", a[0])
	}
	if !strings.HasPrefix(a[0].ID, "slo/shed-budget/") {
		t.Fatalf("alert ID %q not deterministic slo/<rule>/<unix>", a[0].ID)
	}
	step(4, 4, 0, "still breaching")  // latched
	step(0.5, 4, 0, "short recovers") // re-arm
	step(5, 5, 1, "breaches again")   // second incident

	st := eng.Stats()
	if st.Rules != 1 || st.Fired != 2 || st.Firing != 1 || st.Evaluated != 6 {
		t.Fatalf("stats = %+v, want 1 rule, 2 fired, 1 firing, 6 evaluated", st)
	}
	status := eng.Status()
	if len(status) != 1 || !status[0].Firing || status[0].Short.Value != 5 {
		t.Fatalf("status = %+v", status)
	}
	if status[0].LastFired.IsZero() {
		t.Fatal("LastFired not recorded")
	}
}

func TestSLOThresholdAndSlope(t *testing.T) {
	h := &fakeHistory{
		avg: map[string]map[time.Duration]float64{
			"depth": {time.Minute: 12, 10 * time.Minute: 11},
		},
		slope: map[string]map[time.Duration]float64{
			"gb": {time.Minute: -0.5, 10 * time.Minute: -0.4},
		},
	}
	rules := []SLORule{
		{Name: "depth-high", Kind: SLOThreshold, Series: "depth", Objective: 10,
			ShortWindow: Duration(time.Minute), LongWindow: Duration(10 * time.Minute)},
		{Name: "gb-eroding", Kind: SLOSlope, Series: "gb", Objective: -0.1, Direction: "below",
			ShortWindow: Duration(time.Minute), LongWindow: Duration(10 * time.Minute)},
	}
	eng, err := NewSLOEngine(h, rules, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fired := eng.EvaluateOnce(time.Unix(1_700_000_000, 0))
	if len(fired) != 2 {
		t.Fatalf("fired %d alerts, want both threshold and slope: %+v", len(fired), fired)
	}
}

// TestSLOInsufficientHistoryStaysQuiet: windows the source cannot
// answer (cold start) must not fire, whatever the other window says.
func TestSLOInsufficientHistoryStaysQuiet(t *testing.T) {
	h := &fakeHistory{increase: map[string]map[time.Duration]float64{
		"shed_total": {5 * time.Minute: 900},
		"req_total":  {5 * time.Minute: 1000},
	}} // long window entirely absent
	eng, err := NewSLOEngine(h, []SLORule{burnRule()}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fired := eng.EvaluateOnce(time.Unix(1_700_000_000, 0)); len(fired) != 0 {
		t.Fatalf("cold-start engine fired %+v", fired)
	}
	st := eng.Status()
	if st[0].Long.OK || !st[0].Short.OK {
		t.Fatalf("window OK flags = %+v", st[0])
	}
}

func TestSLORuleValidation(t *testing.T) {
	h := &fakeHistory{}
	bad := []SLORule{
		{Name: "", Kind: SLOBurnRate},
		{Name: "x", Kind: "bogus"},
		{Name: "x", Kind: SLOBurnRate, Numerator: "a"},
		{Name: "x", Kind: SLOBurnRate, Numerator: "a", Denominator: "b", Objective: 1.5},
		{Name: "x", Kind: SLOThreshold},
		{Name: "x", Kind: SLOThreshold, Series: "s", Direction: "sideways"},
	}
	for i, r := range bad {
		if _, err := NewSLOEngine(h, []SLORule{r}, nil, nil); err == nil {
			t.Errorf("rule %d (%+v) accepted", i, r)
		}
	}
	dup := []SLORule{
		{Name: "d", Kind: SLOThreshold, Series: "s", Objective: 1},
		{Name: "d", Kind: SLOThreshold, Series: "s", Objective: 2},
	}
	if _, err := NewSLOEngine(h, dup, nil, nil); err == nil {
		t.Error("duplicate rule names accepted")
	}
	// Defaults fill in.
	eng, err := NewSLOEngine(h, []SLORule{{Name: "ok", Numerator: "a", Denominator: "b", Objective: 0.01}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Status()
	_ = st
	eng.mu.Lock()
	r := eng.rules[0]
	eng.mu.Unlock()
	if r.Kind != SLOBurnRate || r.Burn != 1 ||
		time.Duration(r.ShortWindow) != 5*time.Minute || time.Duration(r.LongWindow) != time.Hour {
		t.Fatalf("defaults not applied: %+v", r)
	}
}

// TestSLOFiresThroughDeliveryPipeline is the acceptance-criteria test:
// a breaching burn-rate SLO fires through the same hardened pipeline
// epoch alerts use, and the retry / dead-letter / breaker bookkeeping
// stays intact. The FaultSink schedule keys on alert IDs, which are
// deterministic (slo/<rule>/<unix> with a scripted clock), so every
// count below is exact.
func TestSLOFiresThroughDeliveryPipeline(t *testing.T) {
	h := &fakeHistory{}
	setBurn(h, 3, 3)

	// First attempt of every alert fails: each fired alert costs one
	// retry, then delivers.
	sink := &FaultSink{FailFirst: 1}
	d := NewDeliverer(DelivererConfig{
		Sink: sink, MaxRetries: 2, Backoff: time.Millisecond,
		BreakerThreshold: 10, Seed: 42,
	})
	bus := NewBus(16)
	eng, err := NewSLOEngine(h, []SLORule{burnRule()}, bus, d)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	if fired := eng.EvaluateOnce(now); len(fired) != 1 {
		t.Fatalf("fired %d, want 1", len(fired))
	}
	// Clear and re-breach for a second deterministic incident.
	setBurn(h, 0.1, 3)
	eng.EvaluateOnce(now.Add(time.Minute))
	setBurn(h, 3, 3)
	if fired := eng.EvaluateOnce(now.Add(2 * time.Minute)); len(fired) != 1 {
		t.Fatalf("second incident fired %d, want 1", len(fired))
	}
	d.Close() // drains: every enqueued alert delivered or dead-lettered

	st := d.Stats()
	if st.Enqueued != 2 || st.Delivered != 2 || st.Retries != 2 || st.DeadLettered != 0 {
		t.Fatalf("pipeline stats = %+v, want 2 enqueued / 2 delivered / 2 retries / 0 dead", st)
	}
	got := sink.Delivered()
	if len(got) != 2 || got[0].ID == got[1].ID {
		t.Fatalf("sink saw %+v, want two distinct alerts", got)
	}

	// A sink that never recovers: retries exhaust into the dead-letter
	// queue and the breaker opens after the threshold.
	deadSink := &FaultSink{FailFirst: 1 << 20}
	d2 := NewDeliverer(DelivererConfig{
		Sink: deadSink, MaxRetries: 1, Backoff: time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: time.Hour, Seed: 42,
	})
	eng2, err := NewSLOEngine(h, []SLORule{burnRule()}, nil, d2)
	if err != nil {
		t.Fatal(err)
	}
	eng2.EvaluateOnce(now)
	d2.Close()
	st2 := d2.Stats()
	if st2.DeadLettered != 1 || st2.Delivered != 0 {
		t.Fatalf("dead-letter stats = %+v, want 1 dead / 0 delivered", st2)
	}
	if len(st2.DeadLetters) != 1 || !strings.Contains(st2.DeadLetters[0].Reason, "retries exhausted") {
		t.Fatalf("dead letters = %+v", st2.DeadLetters)
	}
	if st2.BreakerOpens != 1 || st2.BreakerState != "open" {
		t.Fatalf("breaker = %s with %d opens, want open/1", st2.BreakerState, st2.BreakerOpens)
	}
}
