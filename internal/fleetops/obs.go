package fleetops

import (
	"strconv"
	"time"

	"penelope/internal/obs"
)

// Instruments is fleetops' optional observability bundle: tick and
// delivery latency histograms, a throughput gauge, bus fan-out latency,
// and one-shot spans per tick/delivery. Nil (the default) makes every
// hook a no-op, so schedulers, buses and deliverers built without it —
// tests, benchmarks — pay nothing.
type Instruments struct {
	TickSeconds       *obs.Histogram
	ChipEpochsPerSec  *obs.Gauge
	BusPublishSeconds *obs.Histogram
	AttemptSeconds    *obs.Histogram
	Tracer            *obs.Tracer
}

// NewInstruments registers fleetops' metric families on reg and
// returns the bundle. Tick spans record under component "fleet",
// delivery attempts under "alert".
func NewInstruments(reg *obs.Registry, tracer *obs.Tracer) *Instruments {
	return &Instruments{
		TickSeconds: reg.Histogram("penelope_fleet_tick_seconds",
			"Duration of fleet scheduler ticks (engine build/restore + epoch steps + snapshot).", nil),
		ChipEpochsPerSec: reg.Gauge("penelope_fleet_chip_epochs_per_second",
			"Aging throughput of the most recent successful tick: population size times epochs advanced, divided by tick duration."),
		BusPublishSeconds: reg.Histogram("penelope_bus_publish_seconds",
			"Latency of one bus publish: marshal, history ring append, subscriber fan-out.", nil),
		AttemptSeconds: reg.Histogram("penelope_alert_attempt_seconds",
			"Latency of individual alert sink delivery attempts (webhook POST round-trips).", nil),
		Tracer: tracer,
	}
}

// observeTick records one scheduler tick: duration histogram, a fleet
// span, and — on success — the chip-epochs/s throughput gauge.
func (in *Instruments) observeTick(fleet string, start time.Time, epochs, population int, err error) {
	if in == nil {
		return
	}
	d := time.Since(start)
	in.TickSeconds.ObserveDuration(d)
	attrs := map[string]string{"fleet": fleet, "epochs": strconv.Itoa(epochs)}
	if err != nil {
		attrs["error"] = err.Error()
	} else if secs := d.Seconds(); secs > 0 && epochs > 0 {
		in.ChipEpochsPerSec.Set(float64(epochs) * float64(population) / secs)
	}
	in.Tracer.Record("fleet", "tick", start, d, attrs)
}

// observeDeliver records one alert delivery attempt.
func (in *Instruments) observeDeliver(alertID string, attempt int, start time.Time, err error) {
	if in == nil {
		return
	}
	d := time.Since(start)
	in.AttemptSeconds.ObserveDuration(d)
	attrs := map[string]string{"alert": alertID, "attempt": strconv.Itoa(attempt)}
	if err != nil {
		attrs["error"] = err.Error()
	}
	in.Tracer.Record("alert", "deliver", start, d, attrs)
}
