package fleetops

import (
	"fmt"
	"sync"
	"time"
)

// HistorySource is the metric-history surface the SLO engine evaluates
// against — implemented by obs/tsdb.DB. All three reductions answer
// over the trailing window ending at now; ok is false when the history
// is too short to say anything.
type HistorySource interface {
	// Increase is the reset-aware increase of a cumulative series.
	Increase(name string, window time.Duration, now time.Time) (float64, bool)
	// Avg is the mean sampled value.
	Avg(name string, window time.Duration, now time.Time) (float64, bool)
	// Slope is the least-squares trend in value units per second.
	Slope(name string, window time.Duration, now time.Time) (float64, bool)
}

// SLO rule kinds.
const (
	SLOBurnRate  = "burn_rate"
	SLOThreshold = "threshold"
	SLOSlope     = "slope"
)

// SLORule is one declarative objective.
//
// burn_rate divides the increase of Numerator by the increase of
// Denominator over each window (the bad-event ratio), divides that by
// Objective (the error budget), and fires when the result is at least
// Burn in BOTH windows — the standard multi-window pattern: the long
// window proves sustained budget spend, the short window proves it is
// still happening, so a resolved incident stops alerting without
// waiting for the long window to drain.
//
// threshold reduces Series (Avg over each window) and compares it
// against Objective in Direction; slope does the same over the
// least-squares trend per second. Both also require breach in both
// windows.
type SLORule struct {
	// Name keys the alert and the latch. Required, unique.
	Name string `json:"name"`
	// Kind is burn_rate, threshold or slope (default burn_rate).
	Kind string `json:"kind,omitempty"`
	// Numerator/Denominator are the burn-rate counters (e.g. shed
	// requests over all requests). Histogram family names address their
	// #count series.
	Numerator   string `json:"numerator,omitempty"`
	Denominator string `json:"denominator,omitempty"`
	// Series is the threshold/slope input.
	Series string `json:"series,omitempty"`
	// Objective: for burn_rate the error budget as a fraction (0.01 =
	// 1% of events may be bad); for threshold/slope the compared bound.
	Objective float64 `json:"objective"`
	// Direction for threshold/slope: "above" (default) fires when the
	// reduction is at least Objective, "below" when at most.
	Direction string `json:"direction,omitempty"`
	// ShortWindow/LongWindow are the two evaluation windows
	// (defaults 5m and 1h).
	ShortWindow Duration `json:"short_window,omitempty"`
	LongWindow  Duration `json:"long_window,omitempty"`
	// Burn is the burn-rate multiple that fires (default 1: spending
	// budget exactly at the sustainable rate).
	Burn float64 `json:"burn,omitempty"`
}

func (r *SLORule) normalize() error {
	if r.Name == "" {
		return fmt.Errorf("fleetops: SLO rule missing name")
	}
	if r.Kind == "" {
		r.Kind = SLOBurnRate
	}
	switch r.Kind {
	case SLOBurnRate:
		if r.Numerator == "" || r.Denominator == "" {
			return fmt.Errorf("fleetops: SLO rule %s: burn_rate needs numerator and denominator", r.Name)
		}
		if r.Objective <= 0 || r.Objective >= 1 {
			return fmt.Errorf("fleetops: SLO rule %s: burn_rate objective must be in (0,1)", r.Name)
		}
	case SLOThreshold, SLOSlope:
		if r.Series == "" {
			return fmt.Errorf("fleetops: SLO rule %s: %s needs a series", r.Name, r.Kind)
		}
	default:
		return fmt.Errorf("fleetops: SLO rule %s: unknown kind %q", r.Name, r.Kind)
	}
	switch r.Direction {
	case "":
		r.Direction = "above"
	case "above", "below":
	default:
		return fmt.Errorf("fleetops: SLO rule %s: direction must be above or below", r.Name)
	}
	if r.ShortWindow <= 0 {
		r.ShortWindow = Duration(5 * time.Minute)
	}
	if r.LongWindow <= 0 {
		r.LongWindow = Duration(time.Hour)
	}
	if r.Burn <= 0 {
		r.Burn = 1
	}
	return nil
}

// SLOWindow is one window's evaluated state in the status payload.
type SLOWindow struct {
	Window Duration `json:"window"`
	Value  float64  `json:"value"`
	Breach bool     `json:"breach"`
	OK     bool     `json:"ok"` // false: history too short to evaluate
}

// SLOStatus is one rule's last evaluation.
type SLOStatus struct {
	Rule      SLORule   `json:"rule"`
	Short     SLOWindow `json:"short"`
	Long      SLOWindow `json:"long"`
	Firing    bool      `json:"firing"`
	LastFired time.Time `json:"last_fired,omitzero"`
}

// SLOStats is the SLO section of /metrics.
type SLOStats struct {
	Rules     int    `json:"rules"`
	Evaluated uint64 `json:"evaluated"`
	Fired     uint64 `json:"fired"`
	Firing    int    `json:"firing"`
}

// SLOEngine evaluates declarative objectives against the metric
// history and fires breaches through the same bus and hardened
// delivery pipeline epoch alerts use. Rules latch exactly like the
// Alerter: one alert when both windows first breach, re-armed when
// either window clears.
type SLOEngine struct {
	src       HistorySource
	bus       *Bus
	deliverer *Deliverer

	mu        sync.Mutex
	rules     []SLORule
	status    []SLOStatus
	latched   map[string]bool
	evaluated uint64
	fired     uint64
}

// NewSLOEngine validates the rules and wires the engine. bus and
// deliverer may each be nil.
func NewSLOEngine(src HistorySource, rules []SLORule, bus *Bus, deliverer *Deliverer) (*SLOEngine, error) {
	if src == nil {
		return nil, fmt.Errorf("fleetops: SLO engine needs a history source")
	}
	seen := make(map[string]bool, len(rules))
	norm := make([]SLORule, len(rules))
	for i := range rules {
		norm[i] = rules[i]
		if err := norm[i].normalize(); err != nil {
			return nil, err
		}
		if seen[norm[i].Name] {
			return nil, fmt.Errorf("fleetops: duplicate SLO rule %s", norm[i].Name)
		}
		seen[norm[i].Name] = true
	}
	return &SLOEngine{
		src: src, bus: bus, deliverer: deliverer,
		rules:   norm,
		status:  make([]SLOStatus, len(norm)),
		latched: make(map[string]bool, len(norm)),
	}, nil
}

// evalWindow reduces one rule over one window.
func (e *SLOEngine) evalWindow(r *SLORule, w Duration, now time.Time) SLOWindow {
	out := SLOWindow{Window: w}
	win := time.Duration(w)
	switch r.Kind {
	case SLOBurnRate:
		num, okN := e.src.Increase(r.Numerator, win, now)
		den, okD := e.src.Increase(r.Denominator, win, now)
		if !okN || !okD || den <= 0 {
			return out
		}
		out.OK = true
		out.Value = (num / den) / r.Objective // burn-rate multiple
		out.Breach = out.Value >= r.Burn
	case SLOThreshold:
		v, ok := e.src.Avg(r.Series, win, now)
		if !ok {
			return out
		}
		out.OK = true
		out.Value = v
		out.Breach = breach(v, r.Objective, r.Direction)
	case SLOSlope:
		v, ok := e.src.Slope(r.Series, win, now)
		if !ok {
			return out
		}
		out.OK = true
		out.Value = v
		out.Breach = breach(v, r.Objective, r.Direction)
	}
	return out
}

func breach(v, objective float64, direction string) bool {
	if direction == "below" {
		return v <= objective
	}
	return v >= objective
}

// EvaluateOnce runs every rule against the history as of now and fires
// newly breaching rules through the bus and delivery pipeline. It is
// deterministic given the history contents and now, and returns the
// alerts fired this pass.
func (e *SLOEngine) EvaluateOnce(now time.Time) []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	var fired []Alert
	for i := range e.rules {
		r := &e.rules[i]
		e.evaluated++
		short := e.evalWindow(r, r.ShortWindow, now)
		long := e.evalWindow(r, r.LongWindow, now)
		active := short.OK && long.OK && short.Breach && long.Breach
		was := e.latched[r.Name]
		e.latched[r.Name] = active
		st := SLOStatus{Rule: *r, Short: short, Long: long, Firing: active,
			LastFired: e.status[i].LastFired}
		if active && !was {
			e.fired++
			a := Alert{
				Fleet:     "slo",
				Rule:      r.Name,
				Epoch:     int(now.Unix()),
				Value:     short.Value,
				Threshold: e.fireThreshold(r),
				Message: fmt.Sprintf("SLO %s (%s) breached: short %v=%.4g, long %v=%.4g",
					r.Name, r.Kind, time.Duration(r.ShortWindow), short.Value,
					time.Duration(r.LongWindow), long.Value),
				Time: now.UTC(),
			}
			a.ID = fmt.Sprintf("slo/%s/%d", r.Name, now.Unix())
			st.LastFired = now.UTC()
			fired = append(fired, a)
		}
		e.status[i] = st
	}
	e.mu.Unlock()
	for _, a := range fired {
		if e.bus != nil {
			e.bus.Publish("slo", "alert", a)
		}
		if e.deliverer != nil {
			e.deliverer.Enqueue(a)
		}
	}
	return fired
}

// fireThreshold is the alert's threshold field: the burn multiple for
// burn-rate rules, the objective otherwise.
func (e *SLOEngine) fireThreshold(r *SLORule) float64 {
	if r.Kind == SLOBurnRate {
		return r.Burn
	}
	return r.Objective
}

// Status returns every rule's last evaluation.
func (e *SLOEngine) Status() []SLOStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SLOStatus, len(e.status))
	copy(out, e.status)
	return out
}

// Stats returns the SLO counter section.
func (e *SLOEngine) Stats() SLOStats {
	if e == nil {
		return SLOStats{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	firing := 0
	for _, st := range e.status {
		if st.Firing {
			firing++
		}
	}
	return SLOStats{Rules: len(e.rules), Evaluated: e.evaluated, Fired: e.fired, Firing: firing}
}
