package fleetops

import (
	"errors"
	"testing"
	"time"
)

// failCkptStorage is a memStorage whose checkpoint writes always fail —
// a full disk under the fleet tier.
type failCkptStorage struct {
	*memStorage
}

func (f *failCkptStorage) WriteFleetCheckpoint(name string, data []byte) error {
	return errors.New("disk full")
}

// TestCheckpointFailuresCounted requires failed fleet checkpoint writes
// to surface in the scheduler stats instead of being swallowed: the
// population keeps aging, but the operator can see that a restart would
// rewind it.
func TestCheckpointFailuresCounted(t *testing.T) {
	cfg := testConfig(0.5, 0, 0.05)
	scCfg := fastCfg(cfg)
	scCfg.Storage = &failCkptStorage{newMemStorage()}
	sc := NewScheduler(scCfg)
	defer sc.Close(time.Second)

	if _, err := sc.Register(Registration{Name: "pop", EpochsPerTick: 2}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if !waitFor(5*time.Second, func() bool {
		st, ok := sc.Get("pop")
		return ok && st.State == StateDone
	}) {
		t.Fatal("population never finished")
	}
	st := sc.Stats()
	if st.CheckpointFailures == 0 {
		t.Error("checkpoint write failures not counted")
	}
	if st.TickFailures != 0 {
		t.Errorf("checkpoint failures must not fail ticks (tick failures = %d)", st.TickFailures)
	}
}
