package fleetops

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"penelope/internal/lifetime"
)

func mkAlert(i int) Alert {
	return Alert{
		ID:    fmt.Sprintf("pop/%s/%d", RuleP99Guardband, i),
		Fleet: "pop", Rule: RuleP99Guardband, Epoch: i,
		Value: 0.09, Threshold: 0.08, Message: "test alert",
	}
}

func TestDelivererRetriesThenDelivers(t *testing.T) {
	sink := &FaultSink{Seed: 1, FailFirst: 2}
	d := NewDeliverer(DelivererConfig{
		Sink: sink, Workers: 1, MaxRetries: 3, Backoff: time.Microsecond, Timeout: time.Second,
	})
	d.Enqueue(mkAlert(0))
	d.Close()
	st := d.Stats()
	if st.Delivered != 1 || st.Retries != 2 || st.DeadLettered != 0 {
		t.Fatalf("stats = %+v, want delivered=1 retries=2", st)
	}
	if got := sink.Delivered(); len(got) != 1 || got[0].ID != mkAlert(0).ID {
		t.Fatalf("sink saw %+v", got)
	}
}

func TestDelivererDeadLettersAfterRetriesExhausted(t *testing.T) {
	sink := &FaultSink{Seed: 1, FailFirst: 10}
	d := NewDeliverer(DelivererConfig{
		Sink: sink, Workers: 1, MaxRetries: 2, Backoff: time.Microsecond, Timeout: time.Second,
	})
	d.Enqueue(mkAlert(0))
	d.Close()
	st := d.Stats()
	if st.Delivered != 0 || st.Retries != 2 || st.DeadLettered != 1 {
		t.Fatalf("stats = %+v, want dead_lettered=1 after 2 retries", st)
	}
	if len(st.DeadLetters) != 1 || st.DeadLetters[0].Alert.ID != mkAlert(0).ID {
		t.Fatalf("dead letters = %+v", st.DeadLetters)
	}
}

// flakySink fails while broken is set — the mutable sink the breaker
// lifecycle test toggles.
type flakySink struct {
	broken   atomic.Bool
	attempts atomic.Uint64
}

func (f *flakySink) Name() string { return "flaky" }
func (f *flakySink) Deliver(ctx context.Context, a Alert) error {
	f.attempts.Add(1)
	if f.broken.Load() {
		return errors.New("flaky: down")
	}
	return nil
}

// TestBreakerLifecycle drives the circuit closed → open → half-open →
// closed: consecutive failures open it, deliveries during the cooldown
// fast-fail without touching the sink, and the first success after the
// cooldown closes it again.
func TestBreakerLifecycle(t *testing.T) {
	sink := &flakySink{}
	sink.broken.Store(true)
	d := NewDeliverer(DelivererConfig{
		Sink: sink, Workers: 1, MaxRetries: 0, Backoff: time.Microsecond, Timeout: time.Second,
		BreakerThreshold: 3, BreakerCooldown: 50 * time.Millisecond,
	})
	defer d.Close()

	// Three failed deliveries open the breaker.
	for i := 0; i < 3; i++ {
		d.Enqueue(mkAlert(i))
	}
	if !waitFor(2*time.Second, func() bool { return d.Stats().BreakerState == "open" }) {
		t.Fatalf("breaker never opened: %+v", d.Stats())
	}
	st := d.Stats()
	if st.BreakerOpens != 1 || st.DeadLettered != 3 {
		t.Fatalf("after opening: %+v", st)
	}

	// While open, deliveries fast-fail to the dead-letter queue without
	// touching the sink.
	before := sink.attempts.Load()
	d.Enqueue(mkAlert(10))
	if !waitFor(2*time.Second, func() bool { return d.Stats().DeadLettered == 4 }) {
		t.Fatalf("open breaker did not fast-fail: %+v", d.Stats())
	}
	if sink.attempts.Load() != before {
		t.Fatal("open breaker still hit the sink")
	}
	if d.Stats().BreakerFastFails == 0 {
		t.Fatal("fast fails not counted")
	}

	// Heal the sink and wait out the cooldown: the next delivery is the
	// half-open probe; its success closes the breaker.
	sink.broken.Store(false)
	time.Sleep(60 * time.Millisecond)
	if got := d.Stats().BreakerState; got != "half-open" {
		t.Fatalf("breaker state after cooldown = %q, want half-open", got)
	}
	d.Enqueue(mkAlert(11))
	if !waitFor(2*time.Second, func() bool { return d.Stats().Delivered == 1 }) {
		t.Fatalf("probe never delivered: %+v", d.Stats())
	}
	if got := d.Stats().BreakerState; got != "closed" {
		t.Fatalf("breaker state after successful probe = %q, want closed", got)
	}
}

// TestDelivererDeterministicAcrossWorkers is the seeded-determinism
// acceptance test: the same seed and fault schedule produce identical
// delivered/retried/dead-lettered counts on every run, whether the
// pipeline drains with one worker or four.
func TestDelivererDeterministicAcrossWorkers(t *testing.T) {
	const alerts = 40
	run := func(workers int) DeliveryStats {
		sink := &FaultSink{Seed: 99, FailRate: 0.45}
		d := NewDeliverer(DelivererConfig{
			Sink: sink, Workers: workers, QueueDepth: alerts,
			MaxRetries: 2, Backoff: time.Microsecond, Timeout: time.Second, Seed: 99,
		})
		for i := 0; i < alerts; i++ {
			if !d.Enqueue(mkAlert(i)) {
				t.Fatalf("enqueue %d rejected", i)
			}
		}
		d.Close()
		st := d.Stats()
		st.Sink, st.DeadLetters, st.BreakerState = "", nil, "" // compare counters only
		return st
	}
	base := run(1)
	if base.Delivered == 0 || base.DeadLettered == 0 {
		t.Fatalf("fault schedule not exercising both outcomes: %+v", base)
	}
	if base.Delivered+base.DeadLettered != alerts {
		t.Fatalf("accounting leak: %+v", base)
	}
	for _, workers := range []int{1, 4} {
		for rep := 0; rep < 3; rep++ {
			got := run(workers)
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("workers=%d rep=%d: stats diverged\n got %+v\nwant %+v", workers, rep, got, base)
			}
		}
	}
}

func TestDelivererQueueFullDrops(t *testing.T) {
	sink := &FaultSink{Latency: 50 * time.Millisecond}
	d := NewDeliverer(DelivererConfig{Sink: sink, Workers: 1, QueueDepth: 1, Timeout: time.Second})
	accepted := 0
	for i := 0; i < 10; i++ {
		if d.Enqueue(mkAlert(i)) {
			accepted++
		}
	}
	d.Close()
	st := d.Stats()
	if st.DroppedQueueFull == 0 {
		t.Fatalf("no drops with a 1-deep queue and a slow sink: %+v", st)
	}
	if uint64(accepted) != st.Enqueued-st.DroppedQueueFull {
		t.Fatalf("accepted %d but stats say %d", accepted, st.Enqueued-st.DroppedQueueFull)
	}
	if d.Enqueue(mkAlert(99)) {
		t.Fatal("Enqueue after Close accepted")
	}
}

// TestDelivererEnqueueCloseRace hammers Enqueue from several
// goroutines while Close runs: a late Enqueue must return false, never
// send on the closed queue and panic. Run with -race.
func TestDelivererEnqueueCloseRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		sink := &FaultSink{Seed: 1}
		d := NewDeliverer(DelivererConfig{
			Sink: sink, Workers: 2, Backoff: time.Microsecond, Timeout: time.Second,
		})
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					d.Enqueue(mkAlert(g*1000 + i))
				}
			}(g)
		}
		close(start)
		d.Close()
		wg.Wait()
		st := d.Stats()
		if st.Delivered != uint64(len(sink.Delivered())) {
			t.Fatalf("round %d: delivered counter %d != sink %d", round, st.Delivered, len(sink.Delivered()))
		}
		if d.Enqueue(mkAlert(0)) {
			t.Fatal("Enqueue after Close succeeded")
		}
	}
}

func TestWebhookSink(t *testing.T) {
	var got atomic.Int64
	fail := atomic.Bool{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() {
			http.Error(w, "nope", http.StatusInternalServerError)
			return
		}
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("Content-Type = %q", ct)
		}
		got.Add(1)
	}))
	defer ts.Close()
	sink := &WebhookSink{URL: ts.URL}
	if err := sink.Deliver(context.Background(), mkAlert(0)); err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	if got.Load() != 1 {
		t.Fatalf("webhook hit %d times", got.Load())
	}
	fail.Store(true)
	if err := sink.Deliver(context.Background(), mkAlert(1)); err == nil {
		t.Fatal("non-2xx treated as success")
	}
}

// TestAlerterLatching: a sustained threshold crossing fires once, and
// the rule re-arms after the condition clears.
func TestAlerterLatching(t *testing.T) {
	al := NewAlerter(nil, nil)
	rules := AlertRules{P99Guardband: 0.05}
	row := func(epoch int, p99 float64) lifetime.EpochStats {
		return lifetime.EpochStats{Epoch: epoch, P99Guardband: p99, MeanVTHShift: []float64{0, 0}}
	}
	seq := []struct {
		p99  float64
		want int
	}{
		{0.01, 0}, // below
		{0.06, 1}, // crossing: fire
		{0.07, 0}, // still above: latched
		{0.02, 0}, // cleared: re-arm
		{0.09, 1}, // second crossing: fire again
	}
	total := 0
	for i, s := range seq {
		fired := al.Observe("pop", rules, nil, nil, row(i, s.p99))
		if len(fired) != s.want {
			t.Fatalf("step %d (p99=%v): fired %d alerts, want %d", i, s.p99, len(fired), s.want)
		}
		total += len(fired)
		for _, a := range fired {
			if a.Rule != RuleP99Guardband || a.Fleet != "pop" || a.Epoch != i {
				t.Fatalf("bad alert %+v", a)
			}
			if want := fmt.Sprintf("pop/%s/%d", RuleP99Guardband, i); a.ID != want {
				t.Fatalf("ID = %q, want %q", a.ID, want)
			}
		}
	}
	st := al.Stats()
	if st.Fired != uint64(total) || st.Evaluated != uint64(len(seq)) {
		t.Fatalf("stats = %+v, want fired=%d evaluated=%d", st, total, len(seq))
	}
}

// TestAlerterFansOut: fired alerts land on the fleet's bus topic and in
// the delivery pipeline.
func TestAlerterFansOut(t *testing.T) {
	bus := NewBus(0)
	sink := &FaultSink{}
	d := NewDeliverer(DelivererConfig{Sink: sink, Workers: 1, Timeout: time.Second})
	al := NewAlerter(bus, d)
	sub := bus.Subscribe(fleetTopic("pop"), 0, 8)
	defer sub.Close()

	cur := lifetime.EpochStats{Epoch: 3, ViolatedFraction: 0.2, MeanVTHShift: []float64{0, 0}}
	fired := al.Observe("pop", AlertRules{ViolatedFraction: 0.1}, nil, nil, cur)
	if len(fired) != 1 {
		t.Fatalf("fired %d alerts, want 1", len(fired))
	}
	select {
	case ev := <-sub.C():
		if ev.Type != "alert" {
			t.Fatalf("bus event type = %q, want alert", ev.Type)
		}
	case <-time.After(time.Second):
		t.Fatal("alert never reached the bus")
	}
	d.Close()
	if got := sink.Delivered(); len(got) != 1 || got[0].Rule != RuleViolatedFraction {
		t.Fatalf("pipeline delivered %+v", got)
	}
}

// TestAlerterDutyDeviationEndToEnd wires the real detector into the
// alerter over an attacked fleet: the duty-deviation rule fires within
// two epochs of the attack phase and stays quiet before it.
func TestAlerterDutyDeviationEndToEnd(t *testing.T) {
	cfg := testConfig(2, 0.3, 0.08)
	rows := runFleet(t, cfg)
	first, _ := attackEpochs(rows)
	det := NewDeviationDetector(cfg, DefaultDutyTolerance)
	al := NewAlerter(nil, nil)
	rules := AlertRules{DutyTolerance: DefaultDutyTolerance}

	firedAt := -1
	var prev []float64
	for _, row := range rows {
		for _, a := range al.Observe("pop", rules, det, prev, row) {
			if a.Rule != RuleDutyDeviation {
				t.Fatalf("unexpected rule %q", a.Rule)
			}
			if a.Epoch < first {
				t.Fatalf("duty-deviation alert at epoch %d, before attack start %d", a.Epoch, first)
			}
			if firedAt < 0 {
				firedAt = a.Epoch
			}
			if a.Structure == "" {
				t.Fatal("duty-deviation alert names no structure")
			}
		}
		prev = row.MeanVTHShift
	}
	if firedAt < 0 || firedAt > first+1 {
		t.Fatalf("duty-deviation fired at %d, want within 2 epochs of %d", firedAt, first)
	}
}
