package fleetops

import (
	"sync"
	"time"

	"penelope/internal/circuit"
	"penelope/internal/lifetime"
)

// testConfig is a small, fast fleet: two structures under a service
// workload, optionally interrupted by a duty-1.0 attack phase in the
// middle (mirroring experiments.fleetSchedule).
func testConfig(serviceYears, attackYears float64, sigma float64) lifetime.Config {
	p := lifetime.DefaultParams()
	duty := []float64{0.55, 0.35}
	var phases []lifetime.Phase
	if attackYears > 0 {
		pre := (serviceYears - attackYears) / 2
		full := []float64{1, 1}
		phases = []lifetime.Phase{
			{Name: "service", Years: pre, Duty: duty},
			{Name: "attack", Years: attackYears, Duty: full},
			{Name: "service", Years: serviceYears - attackYears - pre, Duty: duty},
		}
	} else {
		phases = []lifetime.Phase{{Name: "service", Years: serviceYears, Duty: duty}}
	}
	return lifetime.Config{
		Structures: []string{"adder", "regfile"},
		Phases:     phases,
		Population: 512,
		EpochYears: 30.0 / 365.25,
		Seed:       1,
		Sigma:      sigma,
		Limit:      lifetime.DefaultLimit,
		Params:     p,
		Delay:      circuit.NewDelayModel(circuit.PathStats{Depth: 10, Narrow: 5}, p.MaxVTHShift, p.MaxGuardband),
	}
}

// testBuilder ignores the registration's options and returns a fixed
// small config, keeping scheduler tests far from the trace pipeline.
func testBuilder(cfg lifetime.Config) ConfigBuilder {
	return func(Registration) (lifetime.Config, error) { return cfg, nil }
}

// memStorage is an in-memory fleetops.Storage.
type memStorage struct {
	mu     sync.Mutex
	fleets map[string][]byte
	ckpts  map[string][]byte
}

func newMemStorage() *memStorage {
	return &memStorage{fleets: make(map[string][]byte), ckpts: make(map[string][]byte)}
}

func (m *memStorage) PutFleet(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fleets[name] = append([]byte(nil), data...)
	return nil
}

func (m *memStorage) RemoveFleet(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.fleets, name)
	delete(m.ckpts, name)
}

func (m *memStorage) WriteFleetCheckpoint(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ckpts[name] = append([]byte(nil), data...)
	return nil
}

func (m *memStorage) ReadFleetCheckpoint(name string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.ckpts[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), b...), true
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}
