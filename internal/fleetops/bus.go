package fleetops

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one bus message: a per-epoch fleet aggregate, a population
// state transition, a fired alert, or a completed sweep point. Seq is
// monotonic per topic and doubles as the SSE event id, so clients
// resume with Last-Event-ID (or ?after=) and receive exactly the
// events they missed that are still in the topic's history ring.
type Event struct {
	Seq   uint64          `json:"seq"`
	Topic string          `json:"topic"`
	Type  string          `json:"type"`
	Time  time.Time       `json:"time"`
	Data  json.RawMessage `json:"data,omitempty"`
}

// Bus is an in-process pub/sub fan-out with bounded, non-blocking
// delivery: a publish never waits on a subscriber — a full subscriber
// buffer drops the event and counts the drop instead of stalling the
// epoch loop. Each topic keeps a bounded ring of recent events for
// Last-Event-ID resume.
type Bus struct {
	mu      sync.Mutex
	topics  map[string]*topic
	history int

	published atomic.Uint64
	dropped   atomic.Uint64
	ins       atomic.Pointer[Instruments]
}

type topic struct {
	seq  uint64
	ring []Event // fixed-capacity ring once full
	head int     // next write position when len(ring) == cap
	subs map[*Subscription]struct{}
}

// DefaultHistory is the per-topic resume-ring capacity.
const DefaultHistory = 256

// NewBus builds a bus whose topics retain the last history events for
// resume (<=0 uses DefaultHistory).
func NewBus(history int) *Bus {
	if history <= 0 {
		history = DefaultHistory
	}
	return &Bus{topics: make(map[string]*topic), history: history}
}

func (b *Bus) topicLocked(name string) *topic {
	t := b.topics[name]
	if t == nil {
		t = &topic{subs: make(map[*Subscription]struct{})}
		b.topics[name] = t
	}
	return t
}

// Touch creates a topic if it does not exist, so streaming handlers can
// distinguish "no events yet" from "no such fleet".
func (b *Bus) Touch(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.topicLocked(name)
}

// HasTopic reports whether a topic exists (was touched or published to).
func (b *Bus) HasTopic(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.topics[name]
	return ok
}

// Drop removes a topic and closes its subscriptions (a deregistered
// fleet's stream ends rather than idling forever).
func (b *Bus) Drop(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.topics[name]
	if t == nil {
		return
	}
	for sub := range t.subs {
		sub.closed = true
		close(sub.ch)
	}
	delete(b.topics, name)
}

// SetInstruments attaches an observability bundle after construction
// (NewBus stays instrument-free so uninstrumented buses skip even the
// timestamp read on publish).
func (b *Bus) SetInstruments(ins *Instruments) {
	b.ins.Store(ins)
}

// Publish marshals data, appends the event to the topic's history ring,
// and fans it out to subscribers without blocking. It returns the
// assigned event.
func (b *Bus) Publish(topicName, eventType string, data any) (Event, error) {
	if ins := b.ins.Load(); ins != nil && ins.BusPublishSeconds != nil {
		start := time.Now()
		defer func() { ins.BusPublishSeconds.ObserveDuration(time.Since(start)) }()
	}
	raw, err := json.Marshal(data)
	if err != nil {
		return Event{}, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.topicLocked(topicName)
	t.seq++
	ev := Event{Seq: t.seq, Topic: topicName, Type: eventType, Time: time.Now().UTC(), Data: raw}
	if len(t.ring) < b.history {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.head] = ev
		t.head = (t.head + 1) % len(t.ring)
	}
	b.published.Add(1)
	for sub := range t.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	return ev, nil
}

// Subscription is one bounded listener on a topic. Read events from C;
// a closed channel means the topic was dropped or the subscription
// closed. Dropped counts events lost to a full buffer — the stream is
// lossy by design, never a brake on the publisher.
type Subscription struct {
	bus     *Bus
	topic   string
	ch      chan Event
	closed  bool
	dropped atomic.Uint64
}

// C returns the receive channel.
func (s *Subscription) C() <-chan Event { return s.ch }

// Dropped returns the number of events this subscriber lost to
// backpressure.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Subscribe registers a listener on a topic. Events already in the
// history ring with Seq > after are replayed into the channel first
// (the channel is sized to hold them plus buf live events), so a
// resuming client sees no gap between replay and live delivery. The
// topic is created if it does not exist.
func (b *Bus) Subscribe(topicName string, after uint64, buf int) *Subscription {
	sub, _ := b.subscribe(topicName, after, buf, true)
	return sub
}

// SubscribeExisting is Subscribe without topic creation: it returns
// ok=false when the topic does not exist, instead of resurrecting a
// ghost topic. Streaming handlers use it so an existence check followed
// by a subscribe cannot race a concurrent Drop.
func (b *Bus) SubscribeExisting(topicName string, after uint64, buf int) (*Subscription, bool) {
	return b.subscribe(topicName, after, buf, false)
}

func (b *Bus) subscribe(topicName string, after uint64, buf int, create bool) (*Subscription, bool) {
	if buf <= 0 {
		buf = 64
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.topics[topicName]
	if t == nil {
		if !create {
			return nil, false
		}
		t = b.topicLocked(topicName)
	}
	var replay []Event
	for i := 0; i < len(t.ring); i++ {
		ev := t.ring[(t.head+i)%len(t.ring)]
		if ev.Seq > after {
			replay = append(replay, ev)
		}
	}
	sub := &Subscription{bus: b, topic: topicName, ch: make(chan Event, buf+len(replay))}
	for _, ev := range replay {
		sub.ch <- ev
	}
	t.subs[sub] = struct{}{}
	return sub, true
}

// Close detaches the subscription and closes its channel. Safe to call
// once per subscription; the bus also closes subscriptions when their
// topic is dropped.
func (s *Subscription) Close() {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if t := s.bus.topics[s.topic]; t != nil {
		delete(t.subs, s)
	}
	close(s.ch)
}

// BusStats is the bus section of /metrics.
type BusStats struct {
	Topics      int    `json:"topics"`
	Subscribers int    `json:"subscribers"`
	Published   uint64 `json:"published"`
	Dropped     uint64 `json:"dropped"`
}

// Stats returns a point-in-time snapshot.
func (b *Bus) Stats() BusStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BusStats{
		Topics:    len(b.topics),
		Published: b.published.Load(),
		Dropped:   b.dropped.Load(),
	}
	for _, t := range b.topics {
		st.Subscribers += len(t.subs)
	}
	return st
}
