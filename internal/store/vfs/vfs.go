// Package vfs is the injectable filesystem under all of Penelope's
// persistence: the store, the fleet checkpoints and the CLI checkpoint
// writer perform every file operation through the FS interface instead
// of calling os.* directly. Production code runs on OS (a thin
// passthrough); tests run on FaultFS, which can fail any call with
// ENOSPC/EIO, truncate a write at byte k, or snapshot-freeze the tree
// at any I/O step to simulate a crash between two syscalls — the
// substrate of the crash-matrix suites that prove every write path is
// all-or-nothing.
package vfs

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// File is the writable handle surface the persistence layer needs.
// Sync must not return until the file's bytes are durable.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS is the filesystem surface the persistence layer needs. Every
// method maps one-to-one onto an os.* call, so the fault injector can
// meaningfully speak of "the I/O step between the write and the
// rename".
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory so a preceding rename or remove in it
	// is durable. Filesystems that cannot sync directories report an
	// error; callers decide whether that is fatal.
	SyncDir(name string) error
}

// OS is the real filesystem.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (OS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                   { return os.Remove(name) }
func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (OS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }

func (OS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// TempName returns the temp-file name WriteAtomic uses for path. The
// ".tmp-" prefix is the layer-wide convention: boot scans remove such
// leftovers, and name validators reject keys that could collide.
func TempName(path string) string {
	return filepath.Join(filepath.Dir(path), ".tmp-"+filepath.Base(path))
}

// WriteAtomic replaces path with data under the durability discipline
// every persistent artifact uses: temp file in the same directory,
// write, fsync, close, rename into place, directory fsync. After it
// returns nil, a crash at any point leaves either the previous bytes or
// the complete new bytes under path — never a torn file. The returned
// dirSynced is false when everything landed but the directory sync
// failed: the rename is applied, its durability across power loss is
// uncertain, and callers that care count it.
func WriteAtomic(fsys FS, path string, data []byte) (dirSynced bool, err error) {
	dir := filepath.Dir(path)
	tmp := TempName(path)
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return false, err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return false, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return false, err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return false, err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return false, err
	}
	return fsys.SyncDir(dir) == nil, nil
}

// VerifyDiscipline checks a fault-free FaultFS op log against the
// atomic-write contract: every rename whose source is a ".tmp-" file
// must see that file Synced after its last Write and Closed before the
// Rename, and the destination directory SyncDir'd at some later step.
// It is the regression net for "forgot the fsync" bugs — a write path
// that skips a sync still passes a crash matrix run on a real
// directory (already-executed writes are durable there), but it cannot
// pass this check.
func VerifyDiscipline(log []Record) error {
	for i, r := range log {
		if r.Op != OpRename || !strings.HasPrefix(filepath.Base(r.Path), ".tmp-") {
			continue
		}
		lastWrite, lastSync, lastClose := -1, -1, -1
		for j := 0; j < i; j++ {
			if log[j].Path != r.Path {
				continue
			}
			switch log[j].Op {
			case OpWrite:
				lastWrite = j
			case OpSync:
				lastSync = j
			case OpClose:
				lastClose = j
			}
		}
		if lastSync < lastWrite {
			return fmt.Errorf("vfs: step %d renames %s with unsynced writes (last write step %d, last sync step %d)",
				r.Step, r.Path, lastWrite, lastSync)
		}
		if lastClose < lastSync {
			return fmt.Errorf("vfs: step %d renames %s before closing it", r.Step, r.Path)
		}
		dir := filepath.Dir(r.Dest)
		synced := false
		for j := i + 1; j < len(log); j++ {
			if log[j].Op == OpSyncDir && log[j].Path == dir {
				synced = true
				break
			}
		}
		if !synced {
			return fmt.Errorf("vfs: rename at step %d into %s is never followed by a directory sync", r.Step, dir)
		}
	}
	return nil
}
