package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
)

// Op identifies one fallible filesystem call in a FaultFS log.
type Op string

const (
	OpMkdirAll Op = "mkdirall"
	OpOpen     Op = "open"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpReadDir  Op = "readdir"
	OpReadFile Op = "readfile"
	OpStat     Op = "stat"
	OpSyncDir  Op = "syncdir"
)

// Record is one logged I/O step.
type Record struct {
	Step int
	Op   Op
	Path string
	Dest string // rename destination
	N    int    // bytes, for writes
}

// Injected fault errors. ErrCrashed is what every operation returns
// once the tree is frozen; ErrNoSpace and ErrIO model the two disk
// failures the paper-style adversary cares about.
var (
	ErrCrashed = errors.New("vfs: simulated crash (tree frozen)")
	ErrNoSpace = errors.New("vfs: injected fault: no space left on device")
	ErrIO      = errors.New("vfs: injected fault: input/output error")
)

// fault is the scripted behaviour of one step.
type fault struct {
	err   error // fail the op with this error
	keep  int   // for writes: bytes actually applied before the fault
	torn  bool  // keep is meaningful (0 is a valid prefix)
	crash bool  // freeze the tree at this step
}

// FaultFS wraps an inner FS with deterministic fault injection. Every
// call — including the Write/Sync/Close of files it opened — is one
// numbered I/O step, logged in order. Faults are scripted per step
// (FailAt, ShortWriteAt, CrashAt) or drawn from a seeded schedule
// (SeedFaults); either way the same plan replays the same behaviour,
// so crash-matrix suites enumerate steps instead of sampling them.
//
// A crash freezes the tree: the faulted step is not executed (a torn
// write applies its prefix first) and every later operation fails with
// ErrCrashed. The inner filesystem then holds the exact state a power
// loss at that step would leave behind, ready to be rebooted.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	step    int
	faults  map[int]fault
	crashed bool
	log     []Record

	seed     uint64
	rate     float64
	seeded   bool
	injected int
}

// NewFaultFS wraps inner (nil means the real filesystem).
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OS{}
	}
	return &FaultFS{inner: inner, faults: make(map[int]fault)}
}

// FailAt makes the op at step fail with err without executing it.
func (f *FaultFS) FailAt(step int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults[step] = fault{err: err}
}

// ShortWriteAt makes the write at step apply only keep bytes and fail
// with ErrNoSpace — a torn write from a full disk.
func (f *FaultFS) ShortWriteAt(step, keep int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults[step] = fault{err: ErrNoSpace, keep: keep, torn: true}
}

// CrashAt freezes the tree at step: that op never executes and every
// later op fails with ErrCrashed.
func (f *FaultFS) CrashAt(step int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults[step] = fault{err: ErrCrashed, crash: true}
}

// CrashAtWrite freezes the tree at step, first applying keep bytes if
// that step is a write — power loss mid-write, leaving a torn prefix.
func (f *FaultFS) CrashAtWrite(step, keep int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults[step] = fault{err: ErrCrashed, keep: keep, torn: true, crash: true}
}

// SeedFaults arms a deterministic probabilistic schedule: the op at
// step s fails with ErrNoSpace or ErrIO when the splitmix64 draw keyed
// (seed, s) lands under rate. Scripted faults take precedence.
func (f *FaultFS) SeedFaults(seed uint64, rate float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seed, f.rate, f.seeded = seed, rate, true
}

// Steps returns how many I/O steps have executed so far; a fault-free
// rehearsal run uses it to size the crash matrix.
func (f *FaultFS) Steps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.step
}

// Injected returns how many faults fired (scripted or seeded).
func (f *FaultFS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Crashed reports whether the tree is frozen.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Log returns a copy of the op log, in execution order.
func (f *FaultFS) Log() []Record {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Record, len(f.log))
	copy(out, f.log)
	return out
}

// splitmix64 is the same mixer the fault runner and chip sampler use.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// begin numbers, logs and adjudicates one step. Callers hold f.mu.
func (f *FaultFS) begin(op Op, path, dest string, n int) (fault, error) {
	if f.crashed {
		return fault{}, ErrCrashed
	}
	s := f.step
	f.step++
	f.log = append(f.log, Record{Step: s, Op: op, Path: path, Dest: dest, N: n})
	ft, ok := f.faults[s]
	if !ok && f.seeded {
		draw := splitmix64(f.seed + uint64(s))
		if float64(draw>>11)/float64(1<<53) < f.rate {
			err := ErrNoSpace
			if draw&1 == 1 {
				err = ErrIO
			}
			ft, ok = fault{err: err}, true
		}
	}
	if !ok {
		return fault{}, nil
	}
	f.injected++
	if ft.crash {
		f.crashed = true
	}
	return ft, ft.err
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := f.begin(OpMkdirAll, path, "", 0); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := f.begin(OpOpen, name, "", 0); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, name: name}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := f.begin(OpReadFile, name, "", 0); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := f.begin(OpRename, oldpath, newpath, 0); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := f.begin(OpRemove, name, "", 0); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := f.begin(OpReadDir, name, "", 0); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := f.begin(OpStat, name, "", 0); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

func (f *FaultFS) SyncDir(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := f.begin(OpSyncDir, name, "", 0); err != nil {
		return err
	}
	return f.inner.SyncDir(name)
}

// faultFile threads a file's Write/Sync/Close back through the
// injector's step counter.
type faultFile struct {
	fs    *FaultFS
	inner File
	name  string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	ft, err := ff.fs.begin(OpWrite, ff.name, "", len(p))
	if err != nil {
		if ft.torn && ft.keep > 0 && ft.keep < len(p) {
			// Torn write: the prefix lands, then the fault (or the
			// crash) cuts it short.
			ff.inner.Write(p[:ft.keep])
		}
		if ff.fs.crashed {
			ff.inner.Close() // release the fd; the tree is frozen anyway
		}
		return 0, err
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if _, err := ff.fs.begin(OpSync, ff.name, "", 0); err != nil {
		if ff.fs.crashed {
			ff.inner.Close()
		}
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if _, err := ff.fs.begin(OpClose, ff.name, "", 0); err != nil {
		ff.inner.Close()
		return err
	}
	return ff.inner.Close()
}

// String renders a record for test failure messages.
func (r Record) String() string {
	if r.Op == OpRename {
		return fmt.Sprintf("#%d %s %s -> %s", r.Step, r.Op, r.Path, r.Dest)
	}
	return fmt.Sprintf("#%d %s %s", r.Step, r.Op, r.Path)
}
