package vfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteAtomicRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	if synced, err := WriteAtomic(OS{}, path, []byte("payload")); err != nil || !synced {
		t.Fatalf("WriteAtomic = synced %v, err %v", synced, err)
	}
	got, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	// Replacement, not append; temp file gone.
	if _, err := WriteAtomic(OS{}, path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("after replace: %q", got)
	}
	if _, err := os.Stat(TempName(path)); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
}

func TestWriteAtomicObeysDiscipline(t *testing.T) {
	dir := t.TempDir()
	f := NewFaultFS(OS{})
	if _, err := WriteAtomic(f, filepath.Join(dir, "blob"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := VerifyDiscipline(f.Log()); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDisciplineCatchesMissingSync(t *testing.T) {
	// A write path that skips the file sync (or the dir sync) must be
	// rejected: this is the regression net for the un-fsynced
	// checkpoint writer.
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	sloppy := func(fsys FS, skipDirSync bool) []Record {
		f := NewFaultFS(fsys)
		h, err := f.OpenFile(TempName(path), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		h.Write([]byte("x"))
		h.Close() // no Sync
		f.Rename(TempName(path), path)
		if !skipDirSync {
			f.SyncDir(dir)
		}
		return f.Log()
	}
	if err := VerifyDiscipline(sloppy(OS{}, false)); err == nil {
		t.Error("unsynced write before rename passed VerifyDiscipline")
	}
	full := NewFaultFS(OS{})
	if _, err := WriteAtomic(full, path, []byte("x")); err != nil {
		t.Fatal(err)
	}
	log := full.Log()
	// Strip the trailing SyncDir: the rename must then be flagged.
	if log[len(log)-1].Op != OpSyncDir {
		t.Fatalf("unexpected tail op %v", log[len(log)-1])
	}
	if err := VerifyDiscipline(log[:len(log)-1]); err == nil {
		t.Error("rename without directory sync passed VerifyDiscipline")
	}
}

func TestFailAtAndShortWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")

	// Rehearse to learn the step layout.
	r := NewFaultFS(OS{})
	if _, err := WriteAtomic(r, path, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	var writeStep, syncStep = -1, -1
	for _, rec := range r.Log() {
		switch rec.Op {
		case OpWrite:
			writeStep = rec.Step
		case OpSync:
			syncStep = rec.Step
		}
	}
	if writeStep < 0 || syncStep < 0 {
		t.Fatalf("rehearsal log missing write/sync: %v", r.Log())
	}

	// ENOSPC at the sync: WriteAtomic fails and removes its temp file.
	f := NewFaultFS(OS{})
	f.FailAt(syncStep, ErrNoSpace)
	if _, err := WriteAtomic(f, path, []byte("new")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("WriteAtomic with failing sync = %v, want ErrNoSpace", err)
	}
	if _, err := os.Stat(TempName(path)); !os.IsNotExist(err) {
		t.Error("temp file survived a failed WriteAtomic")
	}
	if got, _ := os.ReadFile(path); !bytes.Equal(got, []byte("0123456789")) {
		t.Errorf("previous bytes lost: %q", got)
	}

	// Short write: only the prefix lands in the temp file, the final
	// path never changes.
	f2 := NewFaultFS(OS{})
	f2.ShortWriteAt(writeStep, 4)
	if _, err := WriteAtomic(f2, path, []byte("abcdefgh")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("short write = %v, want ErrNoSpace", err)
	}
	if got, _ := os.ReadFile(path); !bytes.Equal(got, []byte("0123456789")) {
		t.Errorf("short write leaked into the final path: %q", got)
	}
}

func TestCrashFreezesTree(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	if _, err := WriteAtomic(OS{}, path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	r := NewFaultFS(OS{})
	if _, err := WriteAtomic(r, path, []byte("replacement")); err != nil {
		t.Fatal(err)
	}
	steps := r.Steps()
	if _, err := WriteAtomic(OS{}, path, []byte("old")); err != nil {
		t.Fatal(err)
	}

	// Crash at every step: the final path afterwards holds exactly the
	// old or the new bytes, and once crashed, everything errors.
	for i := 0; i < steps; i++ {
		if _, err := WriteAtomic(OS{}, path, []byte("old")); err != nil {
			t.Fatal(err)
		}
		f := NewFaultFS(OS{})
		f.CrashAt(i)
		synced, err := WriteAtomic(f, path, []byte("replacement"))
		if err == nil {
			// Only the final directory sync may crash without failing
			// the write: the rename landed, durability is uncertain.
			if synced {
				t.Fatalf("crash at %d reported a synced directory", i)
			}
		} else if !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash at %d: err = %v", i, err)
		}
		if !f.Crashed() {
			t.Fatalf("crash at %d did not freeze", i)
		}
		if _, err := f.ReadFile(path); !errors.Is(err, ErrCrashed) {
			t.Fatalf("frozen tree served a read at step %d", i)
		}
		got, rerr := os.ReadFile(path)
		if rerr != nil || (!bytes.Equal(got, []byte("old")) && !bytes.Equal(got, []byte("replacement"))) {
			t.Fatalf("crash at %d left torn bytes %q (err %v)", i, got, rerr)
		}
	}
}

func TestCrashAtWriteLeavesTornTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	r := NewFaultFS(OS{})
	if _, err := WriteAtomic(r, path, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	writeStep := -1
	for _, rec := range r.Log() {
		if rec.Op == OpWrite {
			writeStep = rec.Step
		}
	}
	os.Remove(path)

	f := NewFaultFS(OS{})
	f.CrashAtWrite(writeStep, 3)
	if _, err := WriteAtomic(f, path, []byte("0123456789")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	// The torn prefix is stranded in the temp file — exactly what a
	// boot scan must clean up — and the final path does not exist.
	got, err := os.ReadFile(TempName(path))
	if err != nil || !bytes.Equal(got, []byte("012")) {
		t.Fatalf("temp file = %q, %v; want torn prefix \"012\"", got, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("final path exists despite crash mid-write")
	}
}

func TestSeededFaultsDeterministic(t *testing.T) {
	run := func(seed uint64) (int, []error) {
		dir := t.TempDir()
		f := NewFaultFS(OS{})
		f.SeedFaults(seed, 0.3)
		var errs []error
		for i := 0; i < 40; i++ {
			_, err := WriteAtomic(f, filepath.Join(dir, "blob"), []byte("x"))
			errs = append(errs, err)
		}
		return f.Injected(), errs
	}
	n1, e1 := run(7)
	n2, e2 := run(7)
	if n1 == 0 {
		t.Fatal("seeded schedule injected nothing at rate 0.3")
	}
	if n1 != n2 {
		t.Fatalf("same seed injected %d vs %d faults", n1, n2)
	}
	for i := range e1 {
		if (e1[i] == nil) != (e2[i] == nil) || (e1[i] != nil && !errors.Is(e2[i], e1[i])) {
			t.Fatalf("step %d: %v vs %v", i, e1[i], e2[i])
		}
	}
	if n3, _ := run(8); n3 == n1 {
		t.Logf("different seed coincidentally injected the same count (%d); acceptable", n3)
	}
}
