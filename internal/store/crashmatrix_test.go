package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"penelope/internal/store/vfs"
)

// crashScenario is one write path under crash-matrix test: setup
// builds the pre-crash state through a healthy store, op is the write
// the crash interrupts, and check asserts the scenario's all-or-nothing
// invariant on the rebooted store.
type crashScenario struct {
	name  string
	cfg   Config // Dir and FS are filled by the harness
	setup func(t *testing.T, s *Store)
	op    func(s *Store) error
	check func(t *testing.T, s *Store)
}

// rebootInvariants are the matrix-wide guarantees, independent of the
// scenario: boot succeeds, every indexed entry verifies (zero
// un-quarantined corruption), nothing was quarantined (a crash between
// syscalls must never produce a torn file under a final name), and no
// temp litter survives the boot scan.
func rebootInvariants(t *testing.T, s *Store, label string) {
	t.Helper()
	for _, key := range s.Keys() {
		if _, ok := s.Get(key); !ok {
			t.Errorf("%s: indexed key %s failed verification after reboot", label, key)
		}
	}
	if st := s.Stats(); st.Quarantined != 0 {
		t.Errorf("%s: reboot quarantined %d entries; crash must be all-or-nothing", label, st.Quarantined)
	}
	for _, sub := range []string{"results", "checkpoints", "fleets"} {
		entries, err := os.ReadDir(filepath.Join(s.Dir(), sub))
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), ".tmp-") {
				t.Errorf("%s: temp litter %s/%s survived reboot", label, sub, e.Name())
			}
		}
	}
}

// runCrashMatrix rehearses the scenario fault-free to count its I/O
// steps and verify the write discipline, then replays it once per
// step with a simulated crash there — plus a torn-write variant for
// every write step — rebooting the store each time and asserting the
// invariants.
func runCrashMatrix(t *testing.T, sc crashScenario) {
	build := func(t *testing.T, fsys vfs.FS) (Config, *Store) {
		cfg := sc.cfg
		cfg.Dir = t.TempDir()
		plain := cfg
		s, err := OpenConfig(plain)
		if err != nil {
			t.Fatal(err)
		}
		if sc.setup != nil {
			sc.setup(t, s)
		}
		cfg.FS = fsys
		return cfg, nil
	}

	// Rehearsal: learn the op's step span and check fsync ordering.
	f := vfs.NewFaultFS(vfs.OS{})
	cfg, _ := build(t, f)
	s, err := OpenConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := f.Steps()
	if err := sc.op(s); err != nil {
		t.Fatalf("%s: fault-free op failed: %v", sc.name, err)
	}
	total := f.Steps()
	if total == base {
		t.Fatalf("%s: op performed no I/O; nothing to crash", sc.name)
	}
	if err := vfs.VerifyDiscipline(f.Log()); err != nil {
		t.Fatalf("%s: write discipline: %v", sc.name, err)
	}
	writes := map[int]int{} // step -> write size, for torn variants
	for _, rec := range f.Log() {
		if rec.Step >= base && rec.Op == vfs.OpWrite && rec.N > 1 {
			writes[rec.Step] = rec.N
		}
	}

	type variant struct {
		label string
		arm   func(f *vfs.FaultFS, step int)
	}
	for step := base; step < total; step++ {
		variants := []variant{{"crash", func(f *vfs.FaultFS, s int) { f.CrashAt(s) }}}
		if n := writes[step]; n > 1 {
			variants = append(variants,
				variant{"torn@1", func(f *vfs.FaultFS, s int) { f.CrashAtWrite(s, 1) }},
				variant{fmt.Sprintf("torn@%d", n/2), func(f *vfs.FaultFS, s int) { f.CrashAtWrite(s, n/2) }})
		}
		for _, v := range variants {
			label := fmt.Sprintf("%s/step-%d/%s", sc.name, step, v.label)
			f := vfs.NewFaultFS(vfs.OS{})
			cfg, _ := build(t, f)
			s, err := OpenConfig(cfg)
			if err != nil {
				t.Fatalf("%s: open: %v", label, err)
			}
			v.arm(f, step)
			sc.op(s) // crash makes it fail; the error itself is scenario-dependent
			if !f.Crashed() {
				t.Fatalf("%s: crash step never executed", label)
			}
			plain := cfg
			plain.FS = nil
			re, err := OpenConfig(plain)
			if err != nil {
				t.Fatalf("%s: reboot failed: %v", label, err)
			}
			rebootInvariants(t, re, label)
			if sc.check != nil {
				sc.check(t, re)
			}
		}
	}
}

var (
	crashOld = []byte(`{"v":"old","pad":"0123456789abcdef"}`)
	crashNew = []byte(`{"v":"new","pad":"fedcba9876543210"}`)
)

func TestCrashMatrixResultPutFresh(t *testing.T) {
	runCrashMatrix(t, crashScenario{
		name: "result-put-fresh",
		setup: func(t *testing.T, s *Store) {
			if err := s.Put(key(0), crashOld); err != nil {
				t.Fatal(err)
			}
		},
		op: func(s *Store) error { return s.Put(key(1), crashNew) },
		check: func(t *testing.T, s *Store) {
			if got, ok := s.Get(key(0)); !ok || !bytes.Equal(got, crashOld) {
				t.Errorf("bystander entry damaged: %q, %v", got, ok)
			}
			if got, ok := s.Get(key(1)); ok && !bytes.Equal(got, crashNew) {
				t.Errorf("in-flight entry neither absent nor complete: %q", got)
			}
		},
	})
}

func TestCrashMatrixResultOverwrite(t *testing.T) {
	runCrashMatrix(t, crashScenario{
		name: "result-overwrite",
		setup: func(t *testing.T, s *Store) {
			if err := s.Put(key(0), crashOld); err != nil {
				t.Fatal(err)
			}
		},
		op: func(s *Store) error { return s.Put(key(0), crashNew) },
		check: func(t *testing.T, s *Store) {
			got, ok := s.Get(key(0))
			if !ok || (!bytes.Equal(got, crashOld) && !bytes.Equal(got, crashNew)) {
				t.Errorf("overwritten entry = %q, %v; want exactly old or new bytes", got, ok)
			}
		},
	})
}

func TestCrashMatrixJobRecord(t *testing.T) {
	rec := JobRecord{Key: key(0), Experiment: "lifetime",
		Options: []byte(`{"population":1000}`), Client: "crash"}
	runCrashMatrix(t, crashScenario{
		name: "job-record",
		op:   func(s *Store) error { return s.PutJobRecord(rec) },
		check: func(t *testing.T, s *Store) {
			recs := s.JobRecords()
			switch len(recs) {
			case 0: // fully absent: the boot recovery simply re-runs nothing
			case 1:
				if recs[0].Key != rec.Key || recs[0].Experiment != rec.Experiment ||
					!bytes.Equal(recs[0].Options, rec.Options) || recs[0].Client != rec.Client {
					t.Errorf("job record partially present: %+v", recs[0])
				}
			default:
				t.Errorf("job record duplicated: %+v", recs)
			}
		},
	})
}

func TestCrashMatrixRemoveJob(t *testing.T) {
	rec := JobRecord{Key: key(0), Experiment: "lifetime", Options: []byte(`{}`)}
	runCrashMatrix(t, crashScenario{
		name: "remove-job",
		setup: func(t *testing.T, s *Store) {
			if err := s.PutJobRecord(rec); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(s.CheckpointPath(rec.Key), []byte("ckpt"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		op: func(s *Store) error { s.RemoveJob(rec.Key); return nil },
		check: func(t *testing.T, s *Store) {
			recs := s.JobRecords()
			if len(recs) == 1 {
				if recs[0].Key != rec.Key {
					t.Errorf("surviving record mutated: %+v", recs[0])
				}
			} else if len(recs) != 0 {
				t.Errorf("JobRecords = %+v", recs)
			}
		},
	})
}

func TestCrashMatrixFleetSidecar(t *testing.T) {
	runCrashMatrix(t, crashScenario{
		name: "fleet-register",
		op:   func(s *Store) error { return s.PutFleet("pop-a", crashNew) },
		check: func(t *testing.T, s *Store) {
			recs := s.Fleets()
			if len(recs) == 1 && (recs[0].Name != "pop-a" || !bytes.Equal(recs[0].Data, crashNew)) {
				t.Errorf("fleet sidecar partially present: %+v", recs[0])
			}
			if len(recs) > 1 {
				t.Errorf("Fleets = %+v", recs)
			}
		},
	})
}

func TestCrashMatrixFleetCheckpoint(t *testing.T) {
	runCrashMatrix(t, crashScenario{
		name: "fleet-checkpoint",
		setup: func(t *testing.T, s *Store) {
			if err := s.WriteFleetCheckpoint("pop-a", crashOld); err != nil {
				t.Fatal(err)
			}
		},
		op: func(s *Store) error { return s.WriteFleetCheckpoint("pop-a", crashNew) },
		check: func(t *testing.T, s *Store) {
			got, ok := s.ReadFleetCheckpoint("pop-a")
			if !ok || (!bytes.Equal(got, crashOld) && !bytes.Equal(got, crashNew)) {
				t.Errorf("fleet checkpoint = %q, %v; want exactly old or new bytes", got, ok)
			}
		},
	})
}

func TestCrashMatrixEviction(t *testing.T) {
	payload := func(i int) []byte {
		return bytes.Repeat([]byte{byte('a' + i)}, 100)
	}
	budget := int64(350) // holds three 100-byte payloads, not four
	runCrashMatrix(t, crashScenario{
		name: "eviction",
		cfg:  Config{Budget: budget},
		setup: func(t *testing.T, s *Store) {
			for i := 0; i < 3; i++ {
				if err := s.Put(key(i), payload(i)); err != nil {
					t.Fatal(err)
				}
			}
		},
		op: func(s *Store) error { return s.Put(key(3), payload(3)) },
		check: func(t *testing.T, s *Store) {
			// Boot re-enforces the budget, so even a crash mid-eviction
			// cannot leave the store oversubscribed; whatever survived
			// is complete.
			if st := s.Stats(); st.Bytes > budget {
				t.Errorf("rebooted store holds %d bytes over budget %d", st.Bytes, budget)
			}
			for i := 0; i < 4; i++ {
				if got, ok := s.Get(key(i)); ok && !bytes.Equal(got, payload(i)) {
					t.Errorf("entry %d present but wrong: %q", i, got)
				}
			}
		},
	})
}
