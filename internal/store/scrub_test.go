package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestScrubQuarantinesRot(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenConfig(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(key(i), pad(i, 50)); err != nil {
			t.Fatal(err)
		}
	}
	// Flip one byte mid-frame: the boot scan already passed, only a
	// scrub pass can notice.
	path := filepath.Join(dir, "results", key(1)+".res")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rep := s.Scrub()
	if rep.Checked != 2 || rep.Corrupt != 1 {
		t.Fatalf("scrub report = %+v, want 2 checked 1 corrupt", rep)
	}
	if s.Has(key(1)) {
		t.Error("rotten entry still indexed after scrub")
	}
	if _, err := os.Stat(path + ".quarantine"); err != nil {
		t.Errorf("rotten frame not quarantined: %v", err)
	}
	for _, i := range []int{0, 2} {
		if got, ok := s.Get(key(i)); !ok || !bytes.Equal(got, pad(i, 50)) {
			t.Errorf("healthy entry %d damaged by scrub", i)
		}
	}
	st := s.Stats()
	if st.ScrubPasses != 1 || st.ScrubChecked != 2 || st.ScrubCorrupt != 1 {
		t.Errorf("scrub stats = passes %d checked %d corrupt %d",
			st.ScrubPasses, st.ScrubChecked, st.ScrubCorrupt)
	}
	if st.Quarantined != 1 {
		t.Errorf("quarantined = %d", st.Quarantined)
	}
}

func TestScrubReEnforcesBudget(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenConfig(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Put(key(i), pad(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen over budget (as if the budget was lowered between runs):
	// the scrub pass, like boot, sheds back under it.
	re, err := OpenConfig(Config{Dir: dir, Budget: 10000})
	if err != nil {
		t.Fatal(err)
	}
	re.cfg.Budget = 250 // lower it mid-flight; only scrub re-checks
	re.Scrub()
	if st := re.Stats(); st.Bytes > 250 {
		t.Errorf("scrub left %d resident bytes over the 250 budget", st.Bytes)
	}
}

func TestBackgroundScrubberRunsAndStops(t *testing.T) {
	s, err := OpenConfig(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(0), pad(0, 10)); err != nil {
		t.Fatal(err)
	}
	s.StartScrubber(2 * time.Millisecond)
	s.StartScrubber(2 * time.Millisecond) // second start is a no-op
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().ScrubPasses < 2 {
		if time.Now().After(deadline) {
			t.Fatal("background scrubber never completed two passes")
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	s.Close() // idempotent
	passes := s.Stats().ScrubPasses
	time.Sleep(10 * time.Millisecond)
	if got := s.Stats().ScrubPasses; got != passes {
		t.Errorf("scrubber still running after Close: %d -> %d passes", passes, got)
	}
	// The store remains usable after Close.
	if _, ok := s.Get(key(0)); !ok {
		t.Error("store unusable after Close")
	}
}
