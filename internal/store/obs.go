package store

import (
	"strconv"
	"time"

	"penelope/internal/obs"
)

// Instruments is the store's optional observability bundle: operation
// latency and size histograms plus one-shot spans per put/get/scrub. A
// nil *Instruments (the default) makes every hook a no-op, so stores
// built without it — tests, the crash matrix, benchmarks — pay nothing.
type Instruments struct {
	PutSeconds   *obs.Histogram
	GetSeconds   *obs.Histogram
	ScrubSeconds *obs.Histogram
	PutBytes     *obs.Histogram
	GetBytes     *obs.Histogram
	Tracer       *obs.Tracer
}

// NewInstruments registers the store's metric families on reg and
// returns the bundle. Traces are recorded under components "store"
// (put/get) and "scrub" so high-volume I/O spans never evict the much
// rarer scrub history.
func NewInstruments(reg *obs.Registry, tracer *obs.Tracer) *Instruments {
	return &Instruments{
		PutSeconds: reg.Histogram("penelope_store_put_seconds",
			"Latency of durable result writes (frame, fsync, rename, dir fsync).", nil),
		GetSeconds: reg.Histogram("penelope_store_get_seconds",
			"Latency of verified result reads.", nil),
		ScrubSeconds: reg.Histogram("penelope_store_scrub_seconds",
			"Duration of full scrub passes.", nil),
		PutBytes: reg.Histogram("penelope_store_put_bytes",
			"Payload size of result writes.", obs.ByteBuckets()),
		GetBytes: reg.Histogram("penelope_store_get_bytes",
			"Payload size of result reads served from disk.", obs.ByteBuckets()),
		Tracer: tracer,
	}
}

// observePut records one Put outcome.
func (in *Instruments) observePut(key string, start time.Time, n int, err error) {
	if in == nil {
		return
	}
	d := time.Since(start)
	in.PutSeconds.ObserveDuration(d)
	in.PutBytes.Observe(float64(n))
	attrs := map[string]string{"key": key, "bytes": strconv.Itoa(n)}
	if err != nil {
		attrs["error"] = err.Error()
	}
	in.Tracer.Record("store", "put", start, d, attrs)
}

// observeGet records one Get that reached disk (index hits only; pure
// index misses are already counted by Stats and never touch I/O).
func (in *Instruments) observeGet(key string, start time.Time, n int, ok bool) {
	if in == nil {
		return
	}
	d := time.Since(start)
	in.GetSeconds.ObserveDuration(d)
	attrs := map[string]string{"key": key}
	if ok {
		in.GetBytes.Observe(float64(n))
		attrs["bytes"] = strconv.Itoa(n)
	} else {
		attrs["error"] = "verification failed"
	}
	in.Tracer.Record("store", "get", start, d, attrs)
}

// observeScrub records one scrub pass.
func (in *Instruments) observeScrub(start time.Time, rep ScrubReport) {
	if in == nil {
		return
	}
	d := time.Since(start)
	in.ScrubSeconds.ObserveDuration(d)
	in.Tracer.Record("scrub", "scrub", start, d, map[string]string{
		"checked": strconv.Itoa(rep.Checked),
		"corrupt": strconv.Itoa(rep.Corrupt),
		"expired": strconv.Itoa(rep.Expired),
	})
}
