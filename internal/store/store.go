// Package store is the crash-safe persistence layer under the
// experiment service: a content-addressed blob store for completed
// result payloads plus the sidecar files (fleet checkpoints, resumable
// job records) that let `penelope serve` survive a hard kill. Every
// write is atomic — temp file, fsync, rename, directory fsync — and
// every stored payload is framed with a checksum, so a torn write from
// a crash is detected on the next boot, quarantined, and re-simulated
// instead of served.
//
// All I/O goes through an injectable filesystem (internal/store/vfs);
// the crash-matrix suite reboots the store after a simulated crash at
// every I/O step of every write path and asserts all-or-nothing
// visibility. The result cache is the degradable class: an optional
// disk budget LRU-evicts cached results (never checkpoints or fleet
// sidecars), refusing new result writes — and reporting Degraded —
// before any checkpoint write is ever shed, and a background scrubber
// re-verifies frames on an interval, quarantining rot.
package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"penelope/internal/obs"
	"penelope/internal/store/vfs"
)

// resultMagic versions the on-disk result frame. Bump it whenever the
// layout below changes shape.
const resultMagic = "penelope-store-v1\n"

// resultExt, jobExt, ckptExt and fleetExt are the file extensions of
// the artifact kinds the store manages.
const (
	resultExt = ".res"
	jobExt    = ".job"
	ckptExt   = ".ckpt"
	fleetExt  = ".fleet"
)

// ErrBudget reports a result write refused because the store is at its
// disk budget and eviction could not make room. Checkpoint and fleet
// writes are never refused for budget reasons — results are shed
// first, always.
var ErrBudget = errors.New("store: result budget exhausted")

// Stats are the store counters surfaced through /metrics.
type Stats struct {
	// Entries is the number of verified result payloads on disk.
	Entries int `json:"entries"`
	// Bytes is the total payload size held (frame overhead excluded).
	Bytes int64 `json:"bytes"`
	// BudgetBytes is the configured result-cache budget (0 = none).
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
	// Hits counts Get calls served from disk; Misses counts Get calls
	// for keys the store does not hold.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Quarantined counts corrupt or truncated files set aside (renamed
	// to *.quarantine) at boot, on read, or by the scrubber, instead of
	// being served.
	Quarantined int `json:"quarantined"`
	// QuarantineFailures counts quarantine renames that themselves
	// failed: the corrupt file could not be set aside (it stays
	// excluded from the index either way).
	QuarantineFailures uint64 `json:"quarantine_failures"`
	// DirsyncFailures counts atomic writes whose final directory sync
	// failed: the rename landed, its durability across power loss is
	// uncertain.
	DirsyncFailures uint64 `json:"dirsync_failures"`
	// Checkpoints is the number of resumable job records on disk.
	Checkpoints int `json:"checkpoints"`
	// Fleets is the number of persisted fleet registrations on disk.
	Fleets int `json:"fleets"`

	// Evictions counts results removed by the disk budget or the
	// retention policy; EvictedBytes is their payload volume and
	// Expired the subset evicted by retention age alone.
	Evictions    uint64 `json:"evictions"`
	EvictedBytes int64  `json:"evicted_bytes"`
	Expired      uint64 `json:"expired"`
	// BudgetRefusals counts result writes refused because eviction
	// could not bring the store under budget; WriteFailures counts
	// result writes that failed in the filesystem itself.
	BudgetRefusals uint64 `json:"budget_refusals"`
	WriteFailures  uint64 `json:"write_failures"`
	// Degraded reports the store is shedding result writes; it clears
	// when a result write succeeds again.
	Degraded bool `json:"degraded"`

	// Scrub counters: completed passes, frames re-verified, and frames
	// the scrubber found rotten and quarantined.
	ScrubPasses  uint64 `json:"scrub_passes"`
	ScrubChecked uint64 `json:"scrub_checked"`
	ScrubCorrupt uint64 `json:"scrub_corrupt"`
}

// JobRecord is the sidecar written next to a resumable job's checkpoint
// before the job starts running: enough to resubmit the job after a
// crash. Options is the canonicalized options JSON.
type JobRecord struct {
	Key        string          `json:"key"`
	Experiment string          `json:"experiment"`
	Options    json.RawMessage `json:"options"`
	Client     string          `json:"client,omitempty"`
}

// Config tunes a Store beyond its root directory.
type Config struct {
	// Dir is the store's root directory.
	Dir string
	// FS is the filesystem everything runs on; nil means the real one.
	// Tests inject a vfs.FaultFS to crash, starve and corrupt the
	// store deterministically.
	FS vfs.FS
	// Budget bounds the resident result payload bytes; past it the
	// least-recently-used results are evicted down to the low
	// watermark (7/8 of Budget), and a write that still cannot fit is
	// refused with ErrBudget. Checkpoints and fleet sidecars are never
	// evicted and never refused. 0 means unbounded.
	Budget int64
	// Retention evicts results unused for longer than this (checked at
	// boot and on every scrub pass). 0 keeps results forever.
	Retention time.Duration
	// Clock overrides time.Now for retention tests.
	Clock func() time.Time
	// Instruments, when set, records operation latency/size histograms
	// and I/O spans. Nil costs nothing.
	Instruments *Instruments
	// Logger receives the store's structured log records; nil uses the
	// process default tagged with component=store.
	Logger *slog.Logger
}

// entry is one LRU-tracked resident result.
type entry struct {
	key     string
	size    int64
	lastUse time.Time
}

// Store is a disk-backed content-addressed result store rooted at one
// data directory:
//
//	<dir>/results/<key>.res      checksum-framed result payloads
//	<dir>/checkpoints/<key>.ckpt fleet checkpoints of in-flight jobs
//	<dir>/checkpoints/<key>.job  resumable job records
//	<dir>/fleets/<name>.fleet    scheduled fleet registrations
//	<dir>/fleets/<name>.ckpt     scheduled fleet engine checkpoints
//
// The in-memory index is rebuilt by scanning (and verifying) the
// results directory on Open, so the directory itself is the source of
// truth and a crashed process loses nothing that finished a rename.
type Store struct {
	cfg     Config
	fs      vfs.FS
	now     func() time.Time
	ins     *Instruments
	logger  *slog.Logger
	dir     string
	results string
	ckpts   string
	fleets  string

	mu       sync.Mutex
	index    map[string]*list.Element // key -> element holding *entry
	lru      *list.List               // front = least recently used
	bytes    int64
	hits     uint64
	misses   uint64
	quarant  int
	jobFiles int

	degraded       bool
	evictions      uint64
	evictedBytes   int64
	expired        uint64
	budgetRefused  uint64
	writeFailures  uint64
	quarantFail    uint64
	dirsyncFail    uint64
	scrubPasses    uint64
	scrubChecked   uint64
	scrubCorrupt   uint64
	loggedQuarFail bool
	loggedDirsync  bool
	loggedBudget   bool

	scrubStop chan struct{}
	scrubDone chan struct{}
	closeOnce sync.Once
}

// Open creates the store layout under dir with default configuration.
func Open(dir string) (*Store, error) {
	return OpenConfig(Config{Dir: dir})
}

// OpenConfig creates the store layout under cfg.Dir (making the
// directories if needed) and rebuilds the index by scanning and
// verifying every result file. Corrupt or truncated entries — a torn
// write from a crash, a flipped bit — are renamed to *.quarantine and
// logged; boot continues without them. Leftover temp files from
// interrupted writes are removed, and the retention policy and disk
// budget are enforced before the store is handed out, so a crash
// mid-eviction cannot leave the store over budget.
func OpenConfig(cfg Config) (*Store, error) {
	s := &Store{
		cfg:     cfg,
		fs:      cfg.FS,
		now:     cfg.Clock,
		ins:     cfg.Instruments,
		logger:  cfg.Logger,
		dir:     cfg.Dir,
		results: filepath.Join(cfg.Dir, "results"),
		ckpts:   filepath.Join(cfg.Dir, "checkpoints"),
		fleets:  filepath.Join(cfg.Dir, "fleets"),
		index:   make(map[string]*list.Element),
		lru:     list.New(),
	}
	if s.fs == nil {
		s.fs = vfs.OS{}
	}
	if s.now == nil {
		s.now = time.Now
	}
	if s.logger == nil {
		s.logger = obs.Logger("store")
	}
	for _, d := range []string{s.results, s.ckpts, s.fleets} {
		if err := s.fs.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", d, err)
		}
	}
	entries, err := s.fs.ReadDir(s.results)
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", s.results, err)
	}
	type scanned struct {
		ent   entry
		mtime time.Time
	}
	var found []scanned
	for _, e := range entries {
		name := e.Name()
		path := filepath.Join(s.results, name)
		switch {
		case strings.HasPrefix(name, ".tmp-"):
			s.fs.Remove(path) // interrupted write, never renamed in
		case strings.HasSuffix(name, resultExt):
			key := strings.TrimSuffix(name, resultExt)
			payload, err := s.readResultFile(path)
			if err != nil || !ValidKey(key) {
				s.quarantineLocked(path, err)
				continue
			}
			mtime := s.now()
			if info, err := e.Info(); err == nil {
				mtime = info.ModTime()
			}
			found = append(found, scanned{entry{key, int64(len(payload)), mtime}, mtime})
		}
	}
	// Rebuild the LRU in last-use order (mtime ascending): the oldest
	// results of the previous process are the first evicted by this
	// one.
	sort.Slice(found, func(i, j int) bool {
		if !found[i].mtime.Equal(found[j].mtime) {
			return found[i].mtime.Before(found[j].mtime)
		}
		return found[i].ent.key < found[j].ent.key
	})
	for _, f := range found {
		ent := f.ent
		s.index[ent.key] = s.lru.PushBack(&ent)
		s.bytes += ent.size
	}
	s.enforceRetentionLocked()
	if s.cfg.Budget > 0 && s.bytes > s.cfg.Budget {
		s.shedLocked(s.lowWater(), "")
	}

	for _, scan := range []string{s.ckpts, s.fleets} {
		files, err := s.fs.ReadDir(scan)
		if err != nil {
			return nil, fmt.Errorf("store: scanning %s: %w", scan, err)
		}
		for _, e := range files {
			name := e.Name()
			switch {
			case strings.HasPrefix(name, ".tmp-"):
				s.fs.Remove(filepath.Join(scan, name))
			case scan == s.ckpts && strings.HasSuffix(name, jobExt):
				s.jobFiles++
			}
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close stops the background scrubber, if one was started. Idempotent;
// the store's data methods stay usable after Close.
func (s *Store) Close() {
	s.closeOnce.Do(func() {
		if s.scrubStop != nil {
			close(s.scrubStop)
			<-s.scrubDone
		}
	})
}

// lowWater is the eviction target under budget pressure: 7/8 of the
// budget, so one eviction pass buys headroom instead of thrashing at
// the boundary.
func (s *Store) lowWater() int64 {
	return s.cfg.Budget - s.cfg.Budget/8
}

// ValidKey reports whether key is a plausible content address: short
// lowercase hex, so a key can never traverse out of the store
// directory or collide with the store's own temp/quarantine names.
func ValidKey(key string) bool {
	if len(key) < 8 || len(key) > 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Put durably persists payload under key: checksum-framed temp file,
// fsync, rename, directory fsync. After Put returns, a crash at any
// point leaves either the previous state or the complete new entry —
// never a half-written file under the final name. Under a disk budget
// Put first evicts least-recently-used results to make room and
// refuses with ErrBudget when it cannot — shedding the result cache
// before any checkpoint write is ever at risk.
func (s *Store) Put(key string, payload []byte) (err error) {
	if !ValidKey(key) {
		return fmt.Errorf("store: invalid result key %q", key)
	}
	start := time.Now()
	defer func() { s.ins.observePut(key, start, len(payload), err) }()
	size := int64(len(payload))
	s.mu.Lock()
	if s.cfg.Budget > 0 {
		var existing int64
		if el, ok := s.index[key]; ok {
			existing = el.Value.(*entry).size
		}
		if s.bytes-existing+size > s.cfg.Budget {
			s.shedLocked(s.lowWater()-(size-existing), key)
		}
		if s.bytes-existing+size > s.cfg.Budget {
			s.budgetRefused++
			s.degraded = true
			if !s.loggedBudget {
				s.loggedBudget = true
				s.logger.Warn("shedding result writes: payload will not fit the budget (logged once)",
					"key", key, "bytes", size, "budget_bytes", s.cfg.Budget)
			}
			s.mu.Unlock()
			return fmt.Errorf("store: %d-byte result %s over budget %d: %w", size, key, s.cfg.Budget, ErrBudget)
		}
	}
	s.mu.Unlock()

	frame := frameResult(payload)
	final := filepath.Join(s.results, key+resultExt)
	synced, err := vfs.WriteAtomic(s.fs, final, frame)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.noteDirsyncLocked(synced, err)
	if err != nil {
		s.writeFailures++
		s.degraded = true
		return fmt.Errorf("store: writing %s: %w", key, err)
	}
	if el, ok := s.index[key]; ok {
		old := el.Value.(*entry)
		s.bytes -= old.size
		old.size = size
		old.lastUse = s.now()
		s.lru.MoveToBack(el)
	} else {
		s.index[key] = s.lru.PushBack(&entry{key, size, s.now()})
	}
	s.bytes += size
	s.degraded = false
	return nil
}

// Get reads and verifies the payload stored under key. A file that
// fails verification is quarantined and reported as a miss, so a
// corrupt entry is re-simulated rather than served.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	_, ok := s.index[key]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Unlock()
	start := time.Now()
	path := filepath.Join(s.results, key+resultExt)
	payload, err := s.readResultFile(path)
	s.ins.observeGet(key, start, len(payload), err == nil)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.index[key]
	if err != nil {
		if ok {
			// Not re-verified concurrently: quarantine and drop.
			s.quarantineLocked(path, err)
			s.dropLocked(el)
		}
		s.misses++
		return nil, false
	}
	if ok {
		el.Value.(*entry).lastUse = s.now()
		s.lru.MoveToBack(el)
	}
	s.hits++
	return payload, true
}

// Has reports whether key is indexed, without reading the payload.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Keys returns every indexed result key, in no particular order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	return keys
}

// Degraded reports whether the store is currently shedding result
// writes (budget refusals or filesystem write failures); it recovers
// when a result write succeeds again.
func (s *Store) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// dropLocked removes an entry from the index without touching disk.
func (s *Store) dropLocked(el *list.Element) {
	ent := el.Value.(*entry)
	s.bytes -= ent.size
	s.lru.Remove(el)
	delete(s.index, ent.key)
}

// evictLocked removes one result from index and disk. A failed disk
// remove still drops the entry — the orphaned file is re-indexed (or
// re-evicted) at the next boot, and accounting stays truthful about
// what this process will serve.
func (s *Store) evictLocked(el *list.Element, expired bool) {
	ent := el.Value.(*entry)
	s.evictions++
	s.evictedBytes += ent.size
	if expired {
		s.expired++
	}
	s.dropLocked(el)
	s.fs.Remove(filepath.Join(s.results, ent.key+resultExt))
}

// shedLocked evicts least-recently-used results until the resident
// bytes drop to target. exclude (the key being written) is never
// evicted; checkpoints and fleet sidecars live outside this index and
// are untouchable by construction.
func (s *Store) shedLocked(target int64, exclude string) {
	for el := s.lru.Front(); el != nil && s.bytes > target; {
		next := el.Next()
		if el.Value.(*entry).key != exclude {
			s.evictLocked(el, false)
		}
		el = next
	}
}

// enforceRetentionLocked evicts results unused for longer than the
// retention window.
func (s *Store) enforceRetentionLocked() {
	if s.cfg.Retention <= 0 {
		return
	}
	cutoff := s.now().Add(-s.cfg.Retention)
	for el := s.lru.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*entry).lastUse.Before(cutoff) {
			s.evictLocked(el, true)
		}
		el = next
	}
}

// ScrubReport is one scrub pass's outcome.
type ScrubReport struct {
	Checked int // frames re-read and verified
	Corrupt int // frames quarantined (bit rot, truncation)
	Expired int // results evicted by the retention policy
}

// Scrub re-verifies every resident result frame against its checksum,
// quarantining any that rotted since the boot scan, and enforces the
// retention policy and disk budget. The background scrubber calls it on
// an interval; tests and operators can call it directly.
func (s *Store) Scrub() ScrubReport {
	start := time.Now()
	var rep ScrubReport
	defer func() { s.ins.observeScrub(start, rep) }()
	s.mu.Lock()
	expiredBefore := s.expired
	s.enforceRetentionLocked()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	for _, key := range keys {
		path := filepath.Join(s.results, key+resultExt)
		_, err := s.readResultFile(path)
		s.mu.Lock()
		el, ok := s.index[key]
		if !ok {
			// Evicted or replaced while we read it; not ours to judge.
			s.mu.Unlock()
			continue
		}
		if err != nil {
			s.quarantineLocked(path, err)
			s.dropLocked(el)
			s.scrubCorrupt++
			rep.Corrupt++
		} else {
			s.scrubChecked++
			rep.Checked++
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	if s.cfg.Budget > 0 && s.bytes > s.cfg.Budget {
		s.shedLocked(s.lowWater(), "")
	}
	s.scrubPasses++
	rep.Expired = int(s.expired - expiredBefore)
	s.mu.Unlock()
	return rep
}

// StartScrubber launches the background scrubber goroutine, running
// one Scrub pass every interval until Close. No-op for interval <= 0
// or if already started.
func (s *Store) StartScrubber(interval time.Duration) {
	if interval <= 0 {
		return
	}
	s.mu.Lock()
	if s.scrubStop != nil {
		s.mu.Unlock()
		return
	}
	s.scrubStop = make(chan struct{})
	s.scrubDone = make(chan struct{})
	s.mu.Unlock()
	go func() {
		defer close(s.scrubDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Scrub()
			case <-s.scrubStop:
				return
			}
		}
	}()
}

// CheckpointPath returns the path a resumable job's checkpoint should
// be written to. The store does not interpret the checkpoint's
// contents; the lifetime engine owns that format (and writes it
// through the same vfs atomic-write discipline).
func (s *Store) CheckpointPath(key string) string {
	return filepath.Join(s.ckpts, key+ckptExt)
}

// PutJobRecord durably records a resumable job before it starts, so a
// crash mid-run leaves enough on disk to resubmit it at the next boot.
// Job records are never shed by the disk budget.
func (s *Store) PutJobRecord(rec JobRecord) error {
	if !ValidKey(rec.Key) {
		return fmt.Errorf("store: invalid job record key %q", rec.Key)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.ckpts, rec.Key+jobExt)
	existed := true
	if _, err := s.fs.Stat(path); err != nil {
		existed = false
	}
	synced, err := vfs.WriteAtomic(s.fs, path, data)
	s.noteDirsyncLocked(synced, err)
	if err != nil {
		return fmt.Errorf("store: writing job record %s: %w", rec.Key, err)
	}
	if !existed {
		s.jobFiles++
	}
	return nil
}

// JobRecords returns every resumable job record on disk. Unparsable
// records are quarantined and skipped, so one corrupt sidecar never
// blocks boot recovery of the others.
func (s *Store) JobRecords() []JobRecord {
	entries, err := s.fs.ReadDir(s.ckpts)
	if err != nil {
		return nil
	}
	var recs []JobRecord
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), jobExt) {
			continue
		}
		path := filepath.Join(s.ckpts, e.Name())
		data, err := s.fs.ReadFile(path)
		var rec JobRecord
		if err == nil {
			err = json.Unmarshal(data, &rec)
		}
		if err == nil && rec.Key != strings.TrimSuffix(e.Name(), jobExt) {
			err = fmt.Errorf("store: job record key %q does not match filename", rec.Key)
		}
		if err != nil {
			s.mu.Lock()
			s.quarantineLocked(path, err)
			s.jobFiles--
			s.mu.Unlock()
			continue
		}
		recs = append(recs, rec)
	}
	return recs
}

// RemoveJob deletes a finished job's checkpoint and record (and any
// interrupted checkpoint temp file).
func (s *Store) RemoveJob(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jobPath := filepath.Join(s.ckpts, key+jobExt)
	if _, err := s.fs.Stat(jobPath); err == nil {
		s.jobFiles--
	}
	s.fs.Remove(jobPath)
	ckpt := filepath.Join(s.ckpts, key+ckptExt)
	s.fs.Remove(ckpt)
	s.fs.Remove(vfs.TempName(ckpt))
}

// ValidFleetName reports whether name is safe to use as a fleet
// sidecar filename: short lowercase alphanumerics with interior dashes,
// so a registration can never traverse out of the fleets directory or
// collide with the store's own temp/quarantine names.
func ValidFleetName(name string) bool {
	if len(name) < 1 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
			(c == '-' && i > 0 && i < len(name)-1)
		if !ok {
			return false
		}
	}
	return true
}

// FleetRecord is one persisted fleet registration: the scheduler's
// serialized Registration, opaque to the store.
type FleetRecord struct {
	Name string
	Data []byte
}

// PutFleet durably persists a fleet registration sidecar, so a restart
// re-registers every scheduled population. Fleet sidecars are never
// shed by the disk budget.
func (s *Store) PutFleet(name string, data []byte) error {
	if !ValidFleetName(name) {
		return fmt.Errorf("store: invalid fleet name %q", name)
	}
	path := filepath.Join(s.fleets, name+fleetExt)
	synced, err := vfs.WriteAtomic(s.fs, path, data)
	s.noteDirsync(synced, err)
	if err != nil {
		return fmt.Errorf("store: writing fleet %s: %w", name, err)
	}
	return nil
}

// Fleets returns every persisted fleet registration. Unreadable
// sidecars are quarantined and skipped, so one corrupt registration
// never blocks boot recovery of the others.
func (s *Store) Fleets() []FleetRecord {
	entries, err := s.fs.ReadDir(s.fleets)
	if err != nil {
		return nil
	}
	var recs []FleetRecord
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, fleetExt) {
			continue
		}
		path := filepath.Join(s.fleets, name)
		base := strings.TrimSuffix(name, fleetExt)
		data, err := s.fs.ReadFile(path)
		if err == nil && !ValidFleetName(base) {
			err = fmt.Errorf("store: invalid fleet sidecar name %q", base)
		}
		if err != nil {
			s.mu.Lock()
			s.quarantineLocked(path, err)
			s.mu.Unlock()
			continue
		}
		recs = append(recs, FleetRecord{Name: base, Data: data})
	}
	return recs
}

// RemoveFleet deletes a fleet's registration and checkpoint sidecars.
func (s *Store) RemoveFleet(name string) {
	if !ValidFleetName(name) {
		return
	}
	s.fs.Remove(filepath.Join(s.fleets, name+fleetExt))
	ckpt := filepath.Join(s.fleets, name+ckptExt)
	s.fs.Remove(ckpt)
	s.fs.Remove(vfs.TempName(ckpt))
}

// FleetCheckpointPath returns where a scheduled fleet's engine
// checkpoint lives. Writes go through WriteFleetCheckpoint; the path is
// exposed for reads and tests.
func (s *Store) FleetCheckpointPath(name string) string {
	return filepath.Join(s.fleets, name+ckptExt)
}

// WriteFleetCheckpoint atomically replaces a scheduled fleet's engine
// checkpoint. Fleet checkpoints are never shed by the disk budget.
func (s *Store) WriteFleetCheckpoint(name string, data []byte) error {
	if !ValidFleetName(name) {
		return fmt.Errorf("store: invalid fleet name %q", name)
	}
	synced, err := vfs.WriteAtomic(s.fs, s.FleetCheckpointPath(name), data)
	s.noteDirsync(synced, err)
	if err != nil {
		return fmt.Errorf("store: writing fleet checkpoint %s: %w", name, err)
	}
	return nil
}

// ReadFleetCheckpoint returns a scheduled fleet's engine checkpoint, or
// false if none has been written.
func (s *Store) ReadFleetCheckpoint(name string) ([]byte, bool) {
	if !ValidFleetName(name) {
		return nil, false
	}
	data, err := s.fs.ReadFile(s.FleetCheckpointPath(name))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	fleetCount := 0
	if entries, err := s.fs.ReadDir(s.fleets); err == nil {
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), fleetExt) {
				fleetCount++
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:            len(s.index),
		Bytes:              s.bytes,
		BudgetBytes:        s.cfg.Budget,
		Hits:               s.hits,
		Misses:             s.misses,
		Quarantined:        s.quarant,
		QuarantineFailures: s.quarantFail,
		DirsyncFailures:    s.dirsyncFail,
		Checkpoints:        s.jobFiles,
		Fleets:             fleetCount,
		Evictions:          s.evictions,
		EvictedBytes:       s.evictedBytes,
		Expired:            s.expired,
		BudgetRefusals:     s.budgetRefused,
		WriteFailures:      s.writeFailures,
		Degraded:           s.degraded,
		ScrubPasses:        s.scrubPasses,
		ScrubChecked:       s.scrubChecked,
		ScrubCorrupt:       s.scrubCorrupt,
	}
}

// noteDirsync counts a failed directory sync behind a successful
// atomic write, logging the first one.
func (s *Store) noteDirsync(synced bool, writeErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.noteDirsyncLocked(synced, writeErr)
}

func (s *Store) noteDirsyncLocked(synced bool, writeErr error) {
	if synced || writeErr != nil {
		return
	}
	s.dirsyncFail++
	if !s.loggedDirsync {
		s.loggedDirsync = true
		s.logger.Warn("directory sync failed after rename; rename durability uncertain (counted; logged once)")
	}
}

// quarantineLocked sets a bad file aside under a .quarantine suffix so
// it stops being scanned but stays inspectable. A failed quarantine
// rename is counted (and logged once) — the entry is excluded from the
// index either way, so the corruption is still never served. Callers
// hold s.mu.
func (s *Store) quarantineLocked(path string, cause error) {
	s.quarant++
	s.logger.Warn("quarantining corrupt file", "path", path, "cause", cause)
	if err := s.fs.Rename(path, path+".quarantine"); err != nil {
		s.quarantFail++
		if !s.loggedQuarFail {
			s.loggedQuarFail = true
			s.logger.Error("quarantine rename failed (counted; logged once)", "error", err)
		}
	}
}

// frameResult wraps a payload in the store's verification frame:
// magic, length, payload, SHA-256 of the payload.
func frameResult(payload []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(resultMagic) + 8 + len(payload) + sha256.Size)
	buf.WriteString(resultMagic)
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(payload)))
	buf.Write(n[:])
	buf.Write(payload)
	sum := sha256.Sum256(payload)
	buf.Write(sum[:])
	return buf.Bytes()
}

// readResultFile reads and fully verifies one framed result file:
// magic, exact length, checksum, no trailing bytes.
func (s *Store) readResultFile(path string) ([]byte, error) {
	data, err := s.fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(resultMagic)+8+sha256.Size {
		return nil, fmt.Errorf("truncated result file (%d bytes)", len(data))
	}
	if string(data[:len(resultMagic)]) != resultMagic {
		return nil, fmt.Errorf("bad magic %q", data[:len(resultMagic)])
	}
	rest := data[len(resultMagic):]
	n := binary.LittleEndian.Uint64(rest[:8])
	rest = rest[8:]
	if uint64(len(rest)) != n+sha256.Size {
		return nil, fmt.Errorf("result frame claims %d payload bytes, file holds %d", n, len(rest)-sha256.Size)
	}
	payload := rest[:n]
	want := rest[n:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], want) {
		return nil, fmt.Errorf("payload checksum mismatch")
	}
	return payload, nil
}
