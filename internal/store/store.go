// Package store is the crash-safe persistence layer under the
// experiment service: a content-addressed blob store for completed
// result payloads plus the sidecar files (fleet checkpoints, resumable
// job records) that let `penelope serve` survive a hard kill. Every
// write is atomic — temp file, fsync, rename — and every stored payload
// is framed with a checksum, so a torn write from a crash is detected
// on the next boot, quarantined, and re-simulated instead of served.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// resultMagic versions the on-disk result frame. Bump it whenever the
// layout below changes shape.
const resultMagic = "penelope-store-v1\n"

// resultExt, jobExt, ckptExt and fleetExt are the file extensions of
// the artifact kinds the store manages.
const (
	resultExt = ".res"
	jobExt    = ".job"
	ckptExt   = ".ckpt"
	fleetExt  = ".fleet"
)

// Stats are the store counters surfaced through /metrics.
type Stats struct {
	// Entries is the number of verified result payloads on disk.
	Entries int `json:"entries"`
	// Bytes is the total payload size held (frame overhead excluded).
	Bytes int64 `json:"bytes"`
	// Hits counts Get calls served from disk; Misses counts Get calls
	// for keys the store does not hold.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Quarantined counts corrupt or truncated files set aside (renamed
	// to *.quarantine) at boot or on read, instead of being served.
	Quarantined int `json:"quarantined"`
	// Checkpoints is the number of resumable job records on disk.
	Checkpoints int `json:"checkpoints"`
	// Fleets is the number of persisted fleet registrations on disk.
	Fleets int `json:"fleets"`
}

// JobRecord is the sidecar written next to a resumable job's checkpoint
// before the job starts running: enough to resubmit the job after a
// crash. Options is the canonicalized options JSON.
type JobRecord struct {
	Key        string          `json:"key"`
	Experiment string          `json:"experiment"`
	Options    json.RawMessage `json:"options"`
	Client     string          `json:"client,omitempty"`
}

// Store is a disk-backed content-addressed result store rooted at one
// data directory:
//
//	<dir>/results/<key>.res      checksum-framed result payloads
//	<dir>/checkpoints/<key>.ckpt fleet checkpoints of in-flight jobs
//	<dir>/checkpoints/<key>.job  resumable job records
//	<dir>/fleets/<name>.fleet    scheduled fleet registrations
//	<dir>/fleets/<name>.ckpt     scheduled fleet engine checkpoints
//
// The in-memory index is rebuilt by scanning (and verifying) the
// results directory on Open, so the directory itself is the source of
// truth and a crashed process loses nothing that finished a rename.
type Store struct {
	dir      string
	results  string
	ckpts    string
	fleets   string
	mu       sync.Mutex
	sizes    map[string]int64
	bytes    int64
	hits     uint64
	misses   uint64
	quarant  int
	jobFiles int
}

// Open creates the store layout under dir (making the directories if
// needed) and rebuilds the index by scanning and verifying every result
// file. Corrupt or truncated entries — a torn write from a crash, a
// flipped bit — are renamed to *.quarantine and logged; boot continues
// without them. Leftover temp files from interrupted writes are
// removed.
func Open(dir string) (*Store, error) {
	s := &Store{
		dir:     dir,
		results: filepath.Join(dir, "results"),
		ckpts:   filepath.Join(dir, "checkpoints"),
		fleets:  filepath.Join(dir, "fleets"),
		sizes:   make(map[string]int64),
	}
	for _, d := range []string{s.results, s.ckpts, s.fleets} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", d, err)
		}
	}
	entries, err := os.ReadDir(s.results)
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", s.results, err)
	}
	for _, e := range entries {
		name := e.Name()
		path := filepath.Join(s.results, name)
		switch {
		case strings.HasPrefix(name, ".tmp-"):
			os.Remove(path) // interrupted write, never renamed in
		case strings.HasSuffix(name, resultExt):
			key := strings.TrimSuffix(name, resultExt)
			payload, err := readResultFile(path)
			if err != nil || !ValidKey(key) {
				s.quarantineLocked(path, err)
				continue
			}
			s.sizes[key] = int64(len(payload))
			s.bytes += int64(len(payload))
		}
	}
	jobs, err := os.ReadDir(s.ckpts)
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", s.ckpts, err)
	}
	for _, e := range jobs {
		if strings.HasSuffix(e.Name(), jobExt) {
			s.jobFiles++
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// ValidKey reports whether key is a plausible content address: short
// lowercase hex, so a key can never traverse out of the store
// directory or collide with the store's own temp/quarantine names.
func ValidKey(key string) bool {
	if len(key) < 8 || len(key) > 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Put durably persists payload under key: checksum-framed temp file,
// fsync, rename, directory fsync. After Put returns, a crash at any
// point leaves either the previous state or the complete new entry —
// never a half-written file under the final name.
func (s *Store) Put(key string, payload []byte) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: invalid result key %q", key)
	}
	frame := frameResult(payload)
	final := filepath.Join(s.results, key+resultExt)
	if err := atomicWrite(final, frame); err != nil {
		return fmt.Errorf("store: writing %s: %w", key, err)
	}
	s.mu.Lock()
	if old, ok := s.sizes[key]; ok {
		s.bytes -= old
	}
	s.sizes[key] = int64(len(payload))
	s.bytes += int64(len(payload))
	s.mu.Unlock()
	return nil
}

// Get reads and verifies the payload stored under key. A file that
// fails verification is quarantined and reported as a miss, so a
// corrupt entry is re-simulated rather than served.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	_, ok := s.sizes[key]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Unlock()
	path := filepath.Join(s.results, key+resultExt)
	payload, err := readResultFile(path)
	if err != nil {
		s.mu.Lock()
		s.quarantineLocked(path, err)
		if old, ok := s.sizes[key]; ok {
			s.bytes -= old
			delete(s.sizes, key)
		}
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return payload, true
}

// Has reports whether key is indexed, without reading the payload.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sizes[key]
	return ok
}

// Keys returns every indexed result key, in no particular order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.sizes))
	for k := range s.sizes {
		keys = append(keys, k)
	}
	return keys
}

// CheckpointPath returns the path a resumable job's checkpoint should
// be written to. The store does not interpret the checkpoint's
// contents; the lifetime engine owns that format (and its own atomic
// rename discipline).
func (s *Store) CheckpointPath(key string) string {
	return filepath.Join(s.ckpts, key+ckptExt)
}

// PutJobRecord durably records a resumable job before it starts, so a
// crash mid-run leaves enough on disk to resubmit it at the next boot.
func (s *Store) PutJobRecord(rec JobRecord) error {
	if !ValidKey(rec.Key) {
		return fmt.Errorf("store: invalid job record key %q", rec.Key)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.ckpts, rec.Key+jobExt)
	if _, err := os.Stat(path); os.IsNotExist(err) {
		s.jobFiles++
	}
	if err := atomicWrite(path, data); err != nil {
		return fmt.Errorf("store: writing job record %s: %w", rec.Key, err)
	}
	return nil
}

// JobRecords returns every resumable job record on disk. Unparsable
// records are quarantined and skipped, so one corrupt sidecar never
// blocks boot recovery of the others.
func (s *Store) JobRecords() []JobRecord {
	entries, err := os.ReadDir(s.ckpts)
	if err != nil {
		return nil
	}
	var recs []JobRecord
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), jobExt) {
			continue
		}
		path := filepath.Join(s.ckpts, e.Name())
		data, err := os.ReadFile(path)
		var rec JobRecord
		if err == nil {
			err = json.Unmarshal(data, &rec)
		}
		if err == nil && rec.Key != strings.TrimSuffix(e.Name(), jobExt) {
			err = fmt.Errorf("store: job record key %q does not match filename", rec.Key)
		}
		if err != nil {
			s.mu.Lock()
			s.quarantineLocked(path, err)
			s.jobFiles--
			s.mu.Unlock()
			continue
		}
		recs = append(recs, rec)
	}
	return recs
}

// RemoveJob deletes a finished job's checkpoint and record (and any
// interrupted checkpoint temp file).
func (s *Store) RemoveJob(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jobPath := filepath.Join(s.ckpts, key+jobExt)
	if _, err := os.Stat(jobPath); err == nil {
		s.jobFiles--
	}
	os.Remove(jobPath)
	os.Remove(filepath.Join(s.ckpts, key+ckptExt))
	os.Remove(filepath.Join(s.ckpts, key+ckptExt+".tmp"))
}

// ValidFleetName reports whether name is safe to use as a fleet
// sidecar filename: short lowercase alphanumerics with interior dashes,
// so a registration can never traverse out of the fleets directory or
// collide with the store's own temp/quarantine names.
func ValidFleetName(name string) bool {
	if len(name) < 1 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
			(c == '-' && i > 0 && i < len(name)-1)
		if !ok {
			return false
		}
	}
	return true
}

// FleetRecord is one persisted fleet registration: the scheduler's
// serialized Registration, opaque to the store.
type FleetRecord struct {
	Name string
	Data []byte
}

// PutFleet durably persists a fleet registration sidecar, so a restart
// re-registers every scheduled population.
func (s *Store) PutFleet(name string, data []byte) error {
	if !ValidFleetName(name) {
		return fmt.Errorf("store: invalid fleet name %q", name)
	}
	path := filepath.Join(s.fleets, name+fleetExt)
	if err := atomicWrite(path, data); err != nil {
		return fmt.Errorf("store: writing fleet %s: %w", name, err)
	}
	return nil
}

// Fleets returns every persisted fleet registration. Unreadable
// sidecars are quarantined and skipped, so one corrupt registration
// never blocks boot recovery of the others.
func (s *Store) Fleets() []FleetRecord {
	entries, err := os.ReadDir(s.fleets)
	if err != nil {
		return nil
	}
	var recs []FleetRecord
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, fleetExt) {
			continue
		}
		path := filepath.Join(s.fleets, name)
		base := strings.TrimSuffix(name, fleetExt)
		data, err := os.ReadFile(path)
		if err == nil && !ValidFleetName(base) {
			err = fmt.Errorf("store: invalid fleet sidecar name %q", base)
		}
		if err != nil {
			s.mu.Lock()
			s.quarantineLocked(path, err)
			s.mu.Unlock()
			continue
		}
		recs = append(recs, FleetRecord{Name: base, Data: data})
	}
	return recs
}

// RemoveFleet deletes a fleet's registration and checkpoint sidecars.
func (s *Store) RemoveFleet(name string) {
	if !ValidFleetName(name) {
		return
	}
	os.Remove(filepath.Join(s.fleets, name+fleetExt))
	os.Remove(filepath.Join(s.fleets, name+ckptExt))
	os.Remove(filepath.Join(s.fleets, ".tmp-"+name+ckptExt))
}

// FleetCheckpointPath returns where a scheduled fleet's engine
// checkpoint lives. Writes go through WriteFleetCheckpoint; the path is
// exposed for reads and tests.
func (s *Store) FleetCheckpointPath(name string) string {
	return filepath.Join(s.fleets, name+ckptExt)
}

// WriteFleetCheckpoint atomically replaces a scheduled fleet's engine
// checkpoint.
func (s *Store) WriteFleetCheckpoint(name string, data []byte) error {
	if !ValidFleetName(name) {
		return fmt.Errorf("store: invalid fleet name %q", name)
	}
	if err := atomicWrite(s.FleetCheckpointPath(name), data); err != nil {
		return fmt.Errorf("store: writing fleet checkpoint %s: %w", name, err)
	}
	return nil
}

// ReadFleetCheckpoint returns a scheduled fleet's engine checkpoint, or
// false if none has been written.
func (s *Store) ReadFleetCheckpoint(name string) ([]byte, bool) {
	if !ValidFleetName(name) {
		return nil, false
	}
	data, err := os.ReadFile(s.FleetCheckpointPath(name))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	fleetCount := 0
	if entries, err := os.ReadDir(s.fleets); err == nil {
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), fleetExt) {
				fleetCount++
			}
		}
	}
	defer s.mu.Unlock()
	return Stats{
		Entries:     len(s.sizes),
		Bytes:       s.bytes,
		Hits:        s.hits,
		Misses:      s.misses,
		Quarantined: s.quarant,
		Checkpoints: s.jobFiles,
		Fleets:      fleetCount,
	}
}

// quarantineLocked sets a bad file aside under a .quarantine suffix so
// it stops being scanned but stays inspectable. Callers hold s.mu.
func (s *Store) quarantineLocked(path string, cause error) {
	s.quarant++
	log.Printf("store: quarantining %s: %v", path, cause)
	os.Rename(path, path+".quarantine")
}

// frameResult wraps a payload in the store's verification frame:
// magic, length, payload, SHA-256 of the payload.
func frameResult(payload []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(resultMagic) + 8 + len(payload) + sha256.Size)
	buf.WriteString(resultMagic)
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(payload)))
	buf.Write(n[:])
	buf.Write(payload)
	sum := sha256.Sum256(payload)
	buf.Write(sum[:])
	return buf.Bytes()
}

// readResultFile reads and fully verifies one framed result file:
// magic, exact length, checksum, no trailing bytes.
func readResultFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(resultMagic)+8+sha256.Size {
		return nil, fmt.Errorf("truncated result file (%d bytes)", len(data))
	}
	if string(data[:len(resultMagic)]) != resultMagic {
		return nil, fmt.Errorf("bad magic %q", data[:len(resultMagic)])
	}
	rest := data[len(resultMagic):]
	n := binary.LittleEndian.Uint64(rest[:8])
	rest = rest[8:]
	if uint64(len(rest)) != n+sha256.Size {
		return nil, fmt.Errorf("result frame claims %d payload bytes, file holds %d", n, len(rest)-sha256.Size)
	}
	payload := rest[:n]
	want := rest[n:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], want) {
		return nil, fmt.Errorf("payload checksum mismatch")
	}
	return payload, nil
}

// atomicWrite replaces path with data via temp file + fsync + rename,
// then fsyncs the directory so the rename itself is durable.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp := filepath.Join(dir, ".tmp-"+filepath.Base(path))
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // best-effort: not every filesystem supports dir fsync
		d.Close()
	}
	return nil
}
