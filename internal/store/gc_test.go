package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"penelope/internal/store/vfs"
)

func pad(i, n int) []byte { return bytes.Repeat([]byte{byte('a' + i)}, n) }

func openBudget(t *testing.T, budget int64) *Store {
	t.Helper()
	s, err := OpenConfig(Config{Dir: t.TempDir(), Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBudgetEvictsLRUOrder(t *testing.T) {
	s := openBudget(t, 400)
	for i := 0; i < 4; i++ {
		if err := s.Put(key(i), pad(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 0 so key 1 is now the least recently used.
	if _, ok := s.Get(key(0)); !ok {
		t.Fatal("warm get failed")
	}
	if err := s.Put(key(4), pad(4, 100)); err != nil {
		t.Fatal(err)
	}
	// Low watermark is 350, so the pass evicts down past it: keys 1 and
	// 2 (the two least recently used) go, the touched key 0 stays.
	if s.Has(key(1)) || s.Has(key(2)) {
		t.Errorf("LRU entries survived eviction: has1=%v has2=%v", s.Has(key(1)), s.Has(key(2)))
	}
	for _, i := range []int{0, 3, 4} {
		if !s.Has(key(i)) {
			t.Errorf("recently used key %d evicted", i)
		}
	}
	st := s.Stats()
	if st.Evictions != 2 || st.EvictedBytes != 200 {
		t.Errorf("evictions = %d (%d bytes), want 2 (200)", st.Evictions, st.EvictedBytes)
	}
	if st.Bytes > 400 {
		t.Errorf("resident bytes %d over budget", st.Bytes)
	}
}

func TestBudgetRefusalAndRecovery(t *testing.T) {
	s := openBudget(t, 100)
	if err := s.Put(key(0), pad(0, 60)); err != nil {
		t.Fatal(err)
	}
	// A payload larger than the whole budget can never fit: refused,
	// store degraded — and the resident entry was not sacrificed for a
	// write that would fail anyway.
	err := s.Put(key(1), pad(1, 150))
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("oversized put = %v, want ErrBudget", err)
	}
	if !s.Degraded() {
		t.Error("store not degraded after budget refusal")
	}
	if st := s.Stats(); st.BudgetRefusals != 1 {
		t.Errorf("budget refusals = %d", st.BudgetRefusals)
	}
	// Checkpoint-tier writes are never refused, degraded or not.
	if err := s.PutJobRecord(JobRecord{Key: key(2), Experiment: "lifetime", Options: []byte(`{}`)}); err != nil {
		t.Fatalf("job record refused under budget pressure: %v", err)
	}
	if err := s.WriteFleetCheckpoint("pop-a", pad(3, 500)); err != nil {
		t.Fatalf("fleet checkpoint refused under budget pressure: %v", err)
	}
	if err := s.PutFleet("pop-a", pad(4, 500)); err != nil {
		t.Fatalf("fleet sidecar refused under budget pressure: %v", err)
	}
	// A result write that fits recovers the store.
	if err := s.Put(key(5), pad(5, 30)); err != nil {
		t.Fatal(err)
	}
	if s.Degraded() {
		t.Error("store still degraded after a successful result write")
	}
}

func TestOverwriteNeverEvictsItsOwnTarget(t *testing.T) {
	s := openBudget(t, 100)
	if err := s.Put(key(0), pad(0, 90)); err != nil {
		t.Fatal(err)
	}
	// Growing the same key stays within budget once its old size is
	// released; the entry must not be evicted to make room for itself.
	if err := s.Put(key(0), pad(1, 95)); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key(0))
	if !ok || !bytes.Equal(got, pad(1, 95)) {
		t.Fatalf("overwrite lost the entry: %v", ok)
	}
	if st := s.Stats(); st.Evictions != 0 {
		t.Errorf("overwrite evicted %d entries", st.Evictions)
	}
}

func TestBootEnforcesBudgetByMtime(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenConfig(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 4; i++ {
		if err := s.Put(key(i), pad(i, 100)); err != nil {
			t.Fatal(err)
		}
		// Make the on-disk age order explicit: key 0 oldest.
		path := filepath.Join(dir, "results", key(i)+".res")
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(path, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	re, err := OpenConfig(Config{Dir: dir, Budget: 250})
	if err != nil {
		t.Fatal(err)
	}
	// 400 resident bytes against a 250 budget: boot sheds oldest-first
	// down to the low watermark (218), leaving the two newest.
	if re.Has(key(0)) || re.Has(key(1)) {
		t.Errorf("boot kept the oldest entries: has0=%v has1=%v", re.Has(key(0)), re.Has(key(1)))
	}
	if !re.Has(key(2)) || !re.Has(key(3)) {
		t.Errorf("boot evicted the newest entries")
	}
	if st := re.Stats(); st.Bytes > 250 {
		t.Errorf("boot left %d bytes over the 250 budget", st.Bytes)
	}
}

func TestRetentionExpiresIdleResults(t *testing.T) {
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { return now }
	s, err := OpenConfig(Config{Dir: t.TempDir(), Retention: time.Hour, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.Put(key(i), pad(i, 10)); err != nil {
			t.Fatal(err)
		}
	}
	// Reading key 0 refreshes its last use; key 1 then idles out.
	now = now.Add(45 * time.Minute)
	if _, ok := s.Get(key(0)); !ok {
		t.Fatal("get failed")
	}
	now = now.Add(50 * time.Minute)
	rep := s.Scrub()
	if rep.Expired != 1 {
		t.Fatalf("scrub expired %d entries, want 1 (report %+v)", rep.Expired, rep)
	}
	if !s.Has(key(0)) || s.Has(key(1)) {
		t.Errorf("retention kept the wrong entry: has0=%v has1=%v", s.Has(key(0)), s.Has(key(1)))
	}
	if st := s.Stats(); st.Expired != 1 || st.Evictions != 1 {
		t.Errorf("stats = expired %d evictions %d", st.Expired, st.Evictions)
	}
}

func TestBootEnforcesRetention(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenConfig(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(0), pad(0, 10)); err != nil {
		t.Fatal(err)
	}
	stale := time.Now().Add(-48 * time.Hour)
	path := filepath.Join(dir, "results", key(0)+".res")
	if err := os.Chtimes(path, stale, stale); err != nil {
		t.Fatal(err)
	}
	re, err := OpenConfig(Config{Dir: dir, Retention: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if re.Has(key(0)) {
		t.Error("boot kept a result past its retention window")
	}
	if st := re.Stats(); st.Expired != 1 {
		t.Errorf("boot expired %d, want 1", st.Expired)
	}
}

func TestPutWriteFailureDegradesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenConfig(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(0), pad(0, 20)); err != nil {
		t.Fatal(err)
	}

	// Rehearse one Put through a fault injector to find its sync step.
	f := vfs.NewFaultFS(vfs.OS{})
	fs, err := OpenConfig(Config{Dir: dir, FS: f})
	if err != nil {
		t.Fatal(err)
	}
	base := f.Steps()
	if err := fs.Put(key(1), pad(1, 20)); err != nil {
		t.Fatal(err)
	}
	syncStep := -1
	for _, rec := range f.Log() {
		if rec.Step >= base && rec.Op == vfs.OpSync {
			syncStep = rec.Step - base
		}
	}
	if syncStep < 0 {
		t.Fatal("no sync in Put's op span")
	}

	f2 := vfs.NewFaultFS(vfs.OS{})
	s2, err := OpenConfig(Config{Dir: dir, FS: f2})
	if err != nil {
		t.Fatal(err)
	}
	f2.FailAt(f2.Steps()+syncStep, vfs.ErrNoSpace)
	if err := s2.Put(key(2), pad(2, 20)); !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("put with failing sync = %v, want ErrNoSpace", err)
	}
	if !s2.Degraded() {
		t.Error("store not degraded after a write failure")
	}
	if st := s2.Stats(); st.WriteFailures != 1 {
		t.Errorf("write failures = %d", st.WriteFailures)
	}
	// The failed write is not indexed, its temp file is gone, and the
	// previously stored payloads still verify.
	if s2.Has(key(2)) {
		t.Error("failed write was cached")
	}
	if _, err := os.Stat(filepath.Join(dir, "results", ".tmp-"+key(2)+".res")); !os.IsNotExist(err) {
		t.Error("failed write left its temp file")
	}
	if got, ok := s2.Get(key(0)); !ok || !bytes.Equal(got, pad(0, 20)) {
		t.Error("bystander payload damaged by failed write")
	}
	// Retrying once the fault clears succeeds and recovers the store.
	if err := s2.Put(key(2), pad(2, 20)); err != nil {
		t.Fatal(err)
	}
	if s2.Degraded() {
		t.Error("store still degraded after successful retry")
	}
	if got, ok := s2.Get(key(2)); !ok || !bytes.Equal(got, pad(2, 20)) {
		t.Error("retried payload not served")
	}
}

func TestQuarantineFailureCounted(t *testing.T) {
	dir := t.TempDir()
	f := vfs.NewFaultFS(vfs.OS{})
	s, err := OpenConfig(Config{Dir: dir, FS: f})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(0), pad(0, 20)); err != nil {
		t.Fatal(err)
	}
	// Rot the frame behind the store's back, then fail the quarantine
	// rename itself: Get is a miss, the entry is dropped, and the
	// failure is counted rather than swallowed.
	path := filepath.Join(dir, "results", key(0)+".res")
	if err := os.WriteFile(path, []byte("rot"), 0o644); err != nil {
		t.Fatal(err)
	}
	f.FailAt(f.Steps()+1, vfs.ErrIO) // step 0: ReadFile, step 1: quarantine Rename
	if _, ok := s.Get(key(0)); ok {
		t.Fatal("corrupt frame served")
	}
	if s.Has(key(0)) {
		t.Error("corrupt entry still indexed")
	}
	st := s.Stats()
	if st.QuarantineFailures != 1 {
		t.Errorf("quarantine failures = %d, want 1", st.QuarantineFailures)
	}
}

func TestDirsyncFailureCounted(t *testing.T) {
	dir := t.TempDir()
	f := vfs.NewFaultFS(vfs.OS{})
	s, err := OpenConfig(Config{Dir: dir, FS: f})
	if err != nil {
		t.Fatal(err)
	}
	base := f.Steps()
	if err := s.Put(key(0), pad(0, 20)); err != nil {
		t.Fatal(err)
	}
	span := f.Steps() - base // open, write, sync, close, rename, syncdir
	f.FailAt(f.Steps()+span-1, vfs.ErrIO)
	// The write itself succeeds — only the final directory sync failed —
	// but the uncertainty is counted.
	if err := s.Put(key(1), pad(1, 20)); err != nil {
		t.Fatalf("put failed on a dir-sync error: %v", err)
	}
	if st := s.Stats(); st.DirsyncFailures != 1 {
		t.Errorf("dirsync failures = %d, want 1", st.DirsyncFailures)
	}
	if got, ok := s.Get(key(1)); !ok || !bytes.Equal(got, pad(1, 20)) {
		t.Error("payload not served after dir-sync failure")
	}
}
