package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func key(i int) string { return fmt.Sprintf("%032x", i+1) }

func TestPutGetRoundtrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"experiment":"fig4","data":{"x":1}}`)
	if err := s.Put(key(0), payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key(0))
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want stored payload", got, ok)
	}
	if _, ok := s.Get(key(1)); ok {
		t.Error("Get of unknown key succeeded")
	}
	st := s.Stats()
	if st.Entries != 1 || st.Bytes != int64(len(payload)) || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 entry / %d bytes / 1 hit / 1 miss", st, len(payload))
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i := 0; i < 5; i++ {
		payload := []byte(fmt.Sprintf(`{"n":%d}`, i))
		want[key(i)] = payload
		if err := s.Put(key(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrites replace, not duplicate.
	if err := s.Put(key(0), []byte(`{"n":0,"v":2}`)); err != nil {
		t.Fatal(err)
	}
	want[key(0)] = []byte(`{"n":0,"v":2}`)

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().Entries; got != 5 {
		t.Fatalf("reopened store has %d entries, want 5", got)
	}
	for k, payload := range want {
		got, ok := s2.Get(k)
		if !ok || !bytes.Equal(got, payload) {
			t.Errorf("reopened Get(%s) = %q, %v", k, got, ok)
		}
	}
}

func TestCorruptEntriesQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(0), []byte(`{"good":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(1), []byte(`{"torn":true}`)); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: truncate one file mid-frame.
	torn := filepath.Join(dir, "results", key(1)+".res")
	data, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	// And a file that is plain garbage.
	garbage := filepath.Join(dir, "results", key(2)+".res")
	if err := os.WriteFile(garbage, []byte("not a result frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	// And a leftover temp file from an interrupted write.
	tmp := filepath.Join(dir, "results", ".tmp-"+key(3)+".res")
	if err := os.WriteFile(tmp, []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("boot failed on corrupt entries: %v", err)
	}
	st := s2.Stats()
	if st.Entries != 1 || st.Quarantined != 2 {
		t.Errorf("stats = %+v, want 1 entry and 2 quarantined", st)
	}
	if _, ok := s2.Get(key(1)); ok {
		t.Error("torn entry served")
	}
	if got, ok := s2.Get(key(0)); !ok || !bytes.Equal(got, []byte(`{"good":true}`)) {
		t.Errorf("good entry lost: %q, %v", got, ok)
	}
	if _, err := os.Stat(torn + ".quarantine"); err != nil {
		t.Errorf("torn file not quarantined: %v", err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("leftover temp file not cleaned up")
	}
}

func TestCorruptionDetectedOnRead(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(0), []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit after the boot scan: Get must verify, not trust
	// the index.
	path := filepath.Join(dir, "results", key(0)+".res")
	data, _ := os.ReadFile(path)
	data[len(data)-40] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(0)); ok {
		t.Fatal("corrupted payload served")
	}
	if st := s.Stats(); st.Quarantined != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v, want quarantined entry dropped from index", st)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "short", "../../etc/passwd", "UPPERCASE00000000", "zzzz567890123456"} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", bad)
		}
	}
}

func TestJobRecordsRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := JobRecord{
		Key:        key(0),
		Experiment: "lifetime",
		Options:    json.RawMessage(`{"population":1000}`),
		Client:     "tester",
	}
	if err := s.PutJobRecord(rec); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "checkpoints", key(1)+".job"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := s2.JobRecords()
	if len(recs) != 1 || recs[0].Key != rec.Key || recs[0].Experiment != "lifetime" || recs[0].Client != "tester" {
		t.Fatalf("JobRecords = %+v, want the one valid record", recs)
	}
	if got := s2.Stats().Quarantined; got != 1 {
		t.Errorf("quarantined = %d, want 1 (the broken sidecar)", got)
	}

	// Checkpoint path lives in the checkpoints dir; RemoveJob clears
	// record and checkpoint together.
	ckpt := s2.CheckpointPath(rec.Key)
	if err := os.WriteFile(ckpt, []byte("checkpoint bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2.RemoveJob(rec.Key)
	if recs := s2.JobRecords(); len(recs) != 0 {
		t.Errorf("job record survived RemoveJob: %+v", recs)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Error("checkpoint survived RemoveJob")
	}
	if got := s2.Stats().Checkpoints; got != 0 {
		t.Errorf("checkpoint count = %d after RemoveJob, want 0", got)
	}
}
