package obs

import (
	"runtime"
	"runtime/debug"
)

// Label is one constant name/value pair attached to a scalar family at
// registration time — the *_info idiom, where the value is a constant 1
// and the payload rides in the labels.
type Label struct {
	Name  string
	Value string
}

// GaugeConst registers a gauge with constant labels and a fixed value.
// Labels render on the sample line with full exposition escaping, so
// values may contain backslashes, quotes and newlines.
func (r *Registry) GaugeConst(name, help string, labels []Label, v float64) {
	for _, l := range labels {
		if !validName(l.Name) {
			panic("obs: invalid label name " + l.Name)
		}
	}
	val := v
	r.register(&family{
		name: name, help: help, kind: kindGauge,
		labels:  append([]Label(nil), labels...),
		gaugeFn: func() float64 { return val },
	})
}

// BuildInfo identifies the running binary.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision"`
}

// ReadBuildInfo fills BuildInfo from the binary's embedded build
// metadata: the main module version, the toolchain version, and the
// stamped VCS revision when the binary was built inside a checkout.
func ReadBuildInfo() BuildInfo {
	bi := BuildInfo{Version: "unknown", GoVersion: runtime.Version(), Revision: "unknown"}
	if info, ok := debug.ReadBuildInfo(); ok {
		if info.Main.Version != "" {
			bi.Version = info.Main.Version
		}
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				bi.Revision = s.Value
			}
		}
	}
	return bi
}

// RegisterBuildInfo exposes the binary's identity as the constant-1
// penelope_build_info gauge.
func RegisterBuildInfo(r *Registry, bi BuildInfo) {
	r.GaugeConst("penelope_build_info",
		"Build identity of the running binary; the value is a constant 1.",
		[]Label{
			{Name: "goversion", Value: bi.GoVersion},
			{Name: "revision", Value: bi.Revision},
			{Name: "version", Value: bi.Version},
		}, 1)
}
