package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	var g Gauge
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2.0", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var (
		c  *Counter
		g  *Gauge
		h  *Histogram
		v  *HistogramVec
		tc *Trace
		tr *Tracer
	)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram snapshot count = %d", s.Count)
	}
	if v.With("x") != nil {
		t.Fatal("nil vec With should return nil")
	}
	tc.Phase("x")
	tc.Attr("k", "v")
	tc.Finish()
	if got := tr.Begin("id", "comp", "admit"); got != nil {
		t.Fatal("nil tracer Begin should return nil")
	}
	tr.Record("comp", "op", time.Now(), time.Millisecond, nil)
	if _, ok := tr.Get("id"); ok {
		t.Fatal("nil tracer Get should miss")
	}
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil values should be zero")
	}
}

func TestHistogramZeroObservations(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 {
		t.Fatalf("empty histogram count=%d sum=%v", s.Count, s.Sum)
	}
	if len(s.Counts) != 4 {
		t.Fatalf("want 3 bounds + overflow, got %d slots", len(s.Counts))
	}
	for i, c := range s.Counts {
		if c != 0 {
			t.Fatalf("bucket %d = %d, want 0", i, c)
		}
	}
}

func TestHistogramBucketAssignment(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// Inclusive upper bounds: 1 lands in the le=1 bucket, 1.5 in le=2,
	// 4 in le=4, anything beyond the last bound in +Inf.
	for _, v := range []float64{0.5, 1, 1.5, 2, 4, 4.0001, 1e9} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 1, 2} // le=1, le=2, le=4, +Inf
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts=%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	wantSum := 0.5 + 1 + 1.5 + 2 + 4 + 4.0001 + 1e9
	if math.Abs(s.Sum-wantSum) > 1e-9*wantSum {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramOverflowOnly(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(100)
	h.Observe(1e18)
	s := h.Snapshot()
	if s.Counts[0] != 0 || s.Counts[1] != 2 {
		t.Fatalf("counts = %v, want [0 2]", s.Counts)
	}
}

// TestHistogramConcurrent exercises observe-vs-snapshot under the race
// detector: the atomics must never tear, and the final snapshot must
// account for every observation.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExpBuckets(1e-6, 2, 20))
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				var total uint64
				for _, c := range s.Counts {
					total += c
				}
				if total != s.Count {
					panic("snapshot internally inconsistent")
				}
			}
		}
	}()
	var og sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		og.Add(1)
		go func(g int) {
			defer og.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g+1) * 1e-5)
			}
		}(g)
	}
	og.Wait()
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	wantSum := 0.0
	for g := 0; g < goroutines; g++ {
		wantSum += float64(g+1) * 1e-5 * perG
	}
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(b) != len(want) {
		t.Fatalf("len = %d, want %d", len(b), len(want))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("b[%d] = %v, want %v", i, b[i], want[i])
		}
	}
	if ExpBuckets(0, 2, 4) != nil || ExpBuckets(1, 1, 4) != nil || ExpBuckets(1, 2, 0) != nil {
		t.Fatal("degenerate ExpBuckets should return nil")
	}
}

func TestHistogramVecCardinalityBound(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("penelope_test_seconds", "t", "experiment", []float64{1})
	for i := 0; i < maxLabelValues; i++ {
		v.With(string(rune('a'+i%26)) + string(rune('a'+i/26))).Observe(1)
	}
	v.With("one-too-many").Observe(1)
	v.With("another").Observe(1)
	values, snaps := v.snapshot()
	if len(values) != maxLabelValues+1 {
		t.Fatalf("label values = %d, want %d", len(values), maxLabelValues+1)
	}
	var other *HistogramSnapshot
	for i, lv := range values {
		if lv == "~other" {
			other = &snaps[i]
		}
	}
	if other == nil || other.Count != 2 {
		t.Fatalf("overflow cell missing or wrong: %+v", other)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("penelope_x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	r.Gauge("penelope_x_total", "x again")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid name should panic")
		}
	}()
	r.Counter("0bad-name", "x")
}

func TestValidName(t *testing.T) {
	for _, ok := range []string{"a", "penelope_jobs_total", "A:b_9"} {
		if !validName(ok) {
			t.Errorf("validName(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "9a", "a-b", "a b", "é"} {
		if validName(bad) {
			t.Errorf("validName(%q) = true, want false", bad)
		}
	}
}
