package obs

import (
	"testing"
	"time"
)

func TestFamiliesWalker(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("b_total", "counter")
	g := r.Gauge("a_gauge", "gauge")
	h := r.Histogram("c_seconds", "hist", []float64{1, 2})
	v := r.HistogramVec("d_seconds", "vec", "route", []float64{1, 2})
	c.Add(7)
	g.Set(2.5)
	h.Observe(1)
	v.With("x").Observe(3)

	var names []string
	byName := map[string]FamilyInfo{}
	r.Families(func(f FamilyInfo) {
		names = append(names, f.Name)
		byName[f.Name] = f
	})
	want := []string{"a_gauge", "b_total", "c_seconds", "d_seconds"}
	if len(names) != len(want) {
		t.Fatalf("walked %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("walked %v, want %v (name order)", names, want)
		}
	}
	if got := byName["b_total"].ReadCounter(); got != 7 {
		t.Fatalf("counter accessor = %d, want 7", got)
	}
	if got := byName["a_gauge"].ReadGauge(); got != 2.5 {
		t.Fatalf("gauge accessor = %v, want 2.5", got)
	}
	if byName["c_seconds"].Hist != h {
		t.Fatal("plain histogram not surfaced")
	}
	fi := byName["d_seconds"]
	if fi.Vec != v || fi.VecLabel != "route" {
		t.Fatalf("vec family = %+v, want vec with label route", fi)
	}
}

func TestRegistryVersionMoves(t *testing.T) {
	r := NewRegistry()
	v0 := r.Version()
	r.Counter("a_total", "")
	if r.Version() == v0 {
		t.Fatal("Version did not move on registration")
	}
	vec := r.HistogramVec("b_seconds", "", "l", nil)
	v1 := r.Version()
	vec.With("cell")
	if r.Version() == v1 {
		t.Fatal("Version did not move when a vec gained a cell")
	}
	v2 := r.Version()
	vec.With("cell") // existing cell: no change
	if r.Version() != v2 {
		t.Fatal("Version moved on an existing cell lookup")
	}
}

func TestHistogramReadInto(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)
	dst := make([]uint64, len(h.Bounds())+1)
	count, sum := h.ReadInto(dst)
	if count != 3 || sum != 101 {
		t.Fatalf("ReadInto = count %d sum %v, want 3, 101", count, sum)
	}
	if dst[0] != 1 || dst[1] != 1 || dst[2] != 1 {
		t.Fatalf("ReadInto buckets = %v, want [1 1 1]", dst)
	}
	snap := h.Snapshot()
	for i := range dst {
		if dst[i] != snap.Counts[i] {
			t.Fatalf("ReadInto disagrees with Snapshot at %d: %v vs %v", i, dst, snap.Counts)
		}
	}
}

func TestVecEntriesSortedAndReused(t *testing.T) {
	v := (&Registry{families: map[string]*family{}}).HistogramVec("v_seconds", "", "l", nil)
	v.With("b").ObserveDuration(time.Millisecond)
	v.With("a").ObserveDuration(time.Millisecond)
	scratch := make([]VecEntry, 0, 8)
	got := v.Entries(scratch[:0])
	if len(got) != 2 || got[0].Value != "a" || got[1].Value != "b" {
		t.Fatalf("Entries = %+v, want sorted [a b]", got)
	}
	if got[0].Hist == nil || got[1].Hist == nil {
		t.Fatal("Entries returned nil histograms")
	}
}
