package obs

import (
	"runtime"
	"sync"
	"time"
)

// runtimeSampler caches runtime.ReadMemStats behind a short TTL so one
// scrape hitting several gauges pays for a single stop-the-world read.
type runtimeSampler struct {
	mu   sync.Mutex
	last time.Time
	ms   runtime.MemStats
}

func (rs *runtimeSampler) read() runtime.MemStats {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if now := time.Now(); now.Sub(rs.last) > 100*time.Millisecond {
		runtime.ReadMemStats(&rs.ms)
		rs.last = now
	}
	return rs.ms
}

// RegisterRuntimeMetrics adds Go runtime gauges (goroutines, heap, GC)
// to a registry.
func RegisterRuntimeMetrics(r *Registry) {
	rs := &runtimeSampler{}
	r.GaugeFunc("penelope_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("penelope_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 { return float64(rs.read().HeapAlloc) })
	r.GaugeFunc("penelope_heap_objects",
		"Number of allocated heap objects.",
		func() float64 { return float64(rs.read().HeapObjects) })
	r.CounterFunc("penelope_gc_runs_total",
		"Completed GC cycles since process start.",
		func() uint64 { return uint64(rs.read().NumGC) })
	r.GaugeFunc("penelope_gc_pause_total_seconds",
		"Cumulative GC stop-the-world pause time in seconds.",
		func() float64 { return float64(rs.read().PauseTotalNs) / 1e9 })
}
