package obs

import (
	"log/slog"
	"sync/atomic"
)

// base is the process-wide base logger for obs.Logger. Unset, it
// follows slog.Default(), which routes through the log package — so
// existing -logtostderr style setups and test log capture keep working.
var base atomic.Pointer[slog.Logger]

// SetLogger replaces the base logger used by Logger (nil restores the
// slog default).
func SetLogger(l *slog.Logger) {
	base.Store(l)
}

// Logger returns a structured logger tagged with the component name.
// Packages add job/fleet/trace IDs per call site via With or args.
func Logger(component string) *slog.Logger {
	l := base.Load()
	if l == nil {
		l = slog.Default()
	}
	return l.With("component", component)
}
