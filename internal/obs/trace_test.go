package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// checkContiguous asserts the snapshot's spans are monotonic and
// gap-free: each span starts exactly where the previous one ended.
func checkContiguous(t *testing.T, s TraceSnapshot) {
	t.Helper()
	at := int64(0)
	for i, sp := range s.Spans {
		if sp.StartNS != at {
			t.Fatalf("span %d (%s) starts at %d, want %d (gap or overlap)", i, sp.Name, sp.StartNS, at)
		}
		if sp.DurationNS < 0 {
			t.Fatalf("span %d (%s) has negative duration %d", i, sp.Name, sp.DurationNS)
		}
		at = sp.StartNS + sp.DurationNS
	}
	if s.Done && at != s.DurationNS {
		t.Fatalf("spans end at %d, trace duration %d", at, s.DurationNS)
	}
}

func TestTracePhases(t *testing.T) {
	tr := NewTracer()
	tc := tr.Begin("job-1", "job", "admit")
	tc.Attr("experiment", "fig4")
	tc.Phase("queue-wait")
	time.Sleep(time.Millisecond)
	tc.Phase("run")
	tc.Phase("store-write")
	tc.Phase("done")
	tc.Finish()

	s, ok := tr.Get("job-1")
	if !ok {
		t.Fatal("trace not found")
	}
	if !s.Done {
		t.Fatal("trace should be done")
	}
	names := make([]string, len(s.Spans))
	for i, sp := range s.Spans {
		names[i] = sp.Name
	}
	want := []string{"admit", "queue-wait", "run", "store-write", "done"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("spans = %v, want %v", names, want)
	}
	if s.Spans[0].Attrs["experiment"] != "fig4" {
		t.Fatalf("attr lost: %+v", s.Spans[0].Attrs)
	}
	checkContiguous(t, s)
	// queue-wait really slept.
	if s.Spans[1].DurationNS < int64(time.Millisecond/2) {
		t.Fatalf("queue-wait span too short: %d", s.Spans[1].DurationNS)
	}
}

func TestTraceFinishIdempotent(t *testing.T) {
	tr := NewTracer()
	tc := tr.Begin("job-2", "job", "admit")
	tc.Finish()
	end1, _ := tr.Get("job-2")
	tc.Phase("late") // ignored after finish
	tc.Finish()
	end2, _ := tr.Get("job-2")
	if len(end2.Spans) != len(end1.Spans) || end2.DurationNS != end1.DurationNS {
		t.Fatalf("finish not idempotent: %+v vs %+v", end1, end2)
	}
}

func TestTraceUnfinishedSnapshot(t *testing.T) {
	tr := NewTracer()
	tc := tr.Begin("job-3", "job", "admit")
	tc.Phase("run")
	s, ok := tr.Get("job-3")
	if !ok || s.Done {
		t.Fatalf("want live trace, got ok=%v done=%v", ok, s.Done)
	}
	checkContiguous(t, s)
	if len(s.Spans) != 2 || s.Spans[1].Name != "run" {
		t.Fatalf("spans = %+v", s.Spans)
	}
}

func TestTracerRecordAndRecent(t *testing.T) {
	tr := NewTracer()
	base := time.Now()
	for i := 0; i < 5; i++ {
		tr.Record("store", "put", base.Add(time.Duration(i)*time.Millisecond),
			time.Millisecond, map[string]string{"n": fmt.Sprint(i)})
	}
	got := tr.Recent("store", 3)
	if len(got) != 3 {
		t.Fatalf("recent = %d, want 3", len(got))
	}
	// Newest first.
	if got[0].Spans[0].Attrs["n"] != "4" || got[2].Spans[0].Attrs["n"] != "2" {
		t.Fatalf("order wrong: %+v", got)
	}
	for _, s := range got {
		if !s.Done || len(s.Spans) != 1 || s.Spans[0].Name != "put" {
			t.Fatalf("bad one-shot trace: %+v", s)
		}
		checkContiguous(t, s)
	}
	comps := tr.Components()
	if len(comps) != 1 || comps[0] != "store" {
		t.Fatalf("components = %v", comps)
	}
}

func TestTracerRingsBounded(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < defaultRingCap*2; i++ {
		tr.Record("fleet", "tick", time.Now(), time.Microsecond, nil)
	}
	if got := len(tr.Recent("fleet", 0)); got != defaultRingCap {
		t.Fatalf("ring size = %d, want %d", got, defaultRingCap)
	}
	for i := 0; i < defaultIDCap+10; i++ {
		tr.Begin(fmt.Sprintf("job-%d", i), "job", "admit").Finish()
	}
	if _, ok := tr.Get("job-0"); ok {
		t.Fatal("oldest ID should have been evicted")
	}
	if _, ok := tr.Get(fmt.Sprintf("job-%d", defaultIDCap+9)); !ok {
		t.Fatal("newest ID should be present")
	}
	tr.mu.Lock()
	n := len(tr.byID)
	tr.mu.Unlock()
	if n != defaultIDCap {
		t.Fatalf("byID size = %d, want %d", n, defaultIDCap)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := fmt.Sprintf("job-%d-%d", g, i)
				tc := tr.Begin(id, "job", "admit")
				tc.Phase("run")
				tr.Record("store", "put", time.Now(), time.Microsecond, nil)
				tc.Finish()
				if s, ok := tr.Get(id); ok {
					checkContiguous(t, s)
				}
				tr.Recent("job", 10)
			}
		}(g)
	}
	wg.Wait()
}
