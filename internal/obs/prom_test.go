package obs

import (
	"regexp"
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("penelope_jobs_done_total", "Jobs finished successfully.")
	c.Add(3)
	g := r.Gauge("penelope_queue_depth", "Jobs waiting in the queue.")
	g.Set(2)
	h := r.Histogram("penelope_job_seconds", "Job latency.", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(5)
	r.CounterFunc("penelope_fn_total", "", func() uint64 { return 7 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# TYPE penelope_fn_total counter
penelope_fn_total 7
# HELP penelope_job_seconds Job latency.
# TYPE penelope_job_seconds histogram
penelope_job_seconds_bucket{le="0.5"} 1
penelope_job_seconds_bucket{le="1"} 2
penelope_job_seconds_bucket{le="+Inf"} 3
penelope_job_seconds_sum 6
penelope_job_seconds_count 3
# HELP penelope_jobs_done_total Jobs finished successfully.
# TYPE penelope_jobs_done_total counter
penelope_jobs_done_total 3
# HELP penelope_queue_depth Jobs waiting in the queue.
# TYPE penelope_queue_depth gauge
penelope_queue_depth 2
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("penelope_run_seconds", "Per-experiment run time.", "experiment", []float64{1})
	v.With("fig4").Observe(0.5)
	v.With(`we"ird\lab` + "\nel").Observe(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, line := range []string{
		`penelope_run_seconds_bucket{experiment="fig4",le="1"} 1`,
		`penelope_run_seconds_bucket{experiment="fig4",le="+Inf"} 1`,
		`penelope_run_seconds_sum{experiment="fig4"} 0.5`,
		`penelope_run_seconds_count{experiment="fig4"} 1`,
		`penelope_run_seconds_bucket{experiment="we\"ird\\lab\nel",le="+Inf"} 1`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("missing line %q in:\n%s", line, got)
		}
	}
}

// expositionLine matches the subset of the text format this package
// emits: metric lines with optional labels and a numeric value.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ` +
		`(\+Inf|-?[0-9.eE+-]+)$`)

// ValidateExposition checks every line of a text exposition against
// the format grammar (the service smoke re-checks this over HTTP).
func ValidateExposition(t *testing.T, text string) {
	t.Helper()
	if !strings.HasSuffix(text, "\n") {
		t.Fatal("exposition must end with a newline")
	}
	for i, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("line %d not valid exposition: %q", i+1, line)
		}
	}
}

func TestExpositionGrammar(t *testing.T) {
	r := NewRegistry()
	r.Counter("penelope_a_total", "a").Inc()
	r.Gauge("penelope_b", "b").Set(-1.5e-3)
	r.Histogram("penelope_c_seconds", "c", LatencyBuckets()).Observe(0.01)
	v := r.HistogramVec("penelope_d_bytes", "d", "route", ByteBuckets())
	v.With("GET /v1/jobs/{id}").Observe(300)
	RegisterRuntimeMetrics(r)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	ValidateExposition(t, sb.String())
}
