package obs

// FamilyKind is the exposition type of a family, for visitors.
type FamilyKind int

const (
	KindCounter FamilyKind = iota
	KindGauge
	KindHistogram
)

// FamilyInfo describes one registered family to a Families visitor.
// Exactly one of the value accessors is set per kind: ReadCounter for
// counters, ReadGauge for gauges, Hist or Vec for histograms.
type FamilyInfo struct {
	Name string
	Help string
	Kind FamilyKind

	ReadCounter func() uint64
	ReadGauge   func() float64
	Hist        *Histogram
	VecLabel    string
	Vec         *HistogramVec
}

// Families calls fn for every registered family in name order. It is
// the binding hook for samplers (the embedded tsdb): call it once,
// cache the accessors, and re-call only when Version moves. The
// accessors themselves are safe for concurrent use and never allocate.
func (r *Registry) Families(fn func(FamilyInfo)) {
	for _, f := range r.sorted() {
		info := FamilyInfo{Name: f.name, Help: f.help}
		switch f.kind {
		case kindCounter:
			info.Kind = KindCounter
			if f.counter != nil {
				info.ReadCounter = f.counter.Value
			} else {
				info.ReadCounter = f.counterFn
			}
		case kindGauge:
			info.Kind = KindGauge
			if f.gauge != nil {
				info.ReadGauge = f.gauge.Value
			} else {
				info.ReadGauge = f.gaugeFn
			}
		case kindHistogram:
			info.Kind = KindHistogram
			info.Hist = f.hist
			if f.vec != nil {
				info.VecLabel = f.vec.label
				info.Vec = f.vec
			}
		}
		fn(info)
	}
}
