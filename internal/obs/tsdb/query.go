package tsdb

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"penelope/internal/obs"
)

// ErrNotFound reports a query against a name the history has never
// seen — neither a live registry family nor a series loaded from disk.
var ErrNotFound = errors.New("tsdb: no such series")

// Query is one range query.
type Query struct {
	// Name is a family name ("penelope_jobs_total",
	// "penelope_http_request_seconds") or a flat series name with a
	// histogram suffix ("penelope_store_write_seconds#count").
	Name string
	// Label filters a vec family to one cell; empty returns every cell.
	Label string
	// From/To bound the range (inclusive), Step the boundary spacing.
	From, To time.Time
	Step     time.Duration
	// Agg selects the per-window reduction: counters accept "rate"
	// (default) and "increase"; gauges "last" (default), "avg", "min",
	// "max"; histograms "quantile" (default, with Quantile), "rate"
	// (count rate) and "avg" (sum delta over count delta).
	Agg string
	// Quantile is the target for Agg "quantile" (e.g. 0.99).
	Quantile float64
}

// Point is one evaluated sample.
type Point struct {
	T int64   `json:"t"` // unix milliseconds (window end / boundary)
	V float64 `json:"v"`
}

// SeriesData is one evaluated series (one per vec cell).
type SeriesData struct {
	Value  string  `json:"value,omitempty"` // vec label value
	Points []Point `json:"points"`
}

// Result is the range-query payload.
type Result struct {
	Name     string       `json:"name"`
	Kind     string       `json:"kind"`
	Agg      string       `json:"agg"`
	Quantile float64      `json:"quantile,omitempty"`
	Label    string       `json:"label,omitempty"`
	FromMs   int64        `json:"from_ms"`
	ToMs     int64        `json:"to_ms"`
	StepMs   int64        `json:"step_ms"`
	Series   []SeriesData `json:"series"`
}

// statPoint is the tier-independent shape query evaluation runs on:
// raw points widen to cnt-1 windows, aggregate tiers pass through.
type statPoint struct {
	t    int64
	min  float64
	max  float64
	sum  float64
	last float64
	cnt  uint32
}

// Query evaluates a range query against the history.
func (db *DB) Query(q Query) (*Result, error) {
	if q.Step <= 0 {
		return nil, fmt.Errorf("tsdb: step must be positive")
	}
	if !q.To.After(q.From) {
		return nil, fmt.Errorf("tsdb: empty range")
	}
	fromMs, toMs, stepMs := q.From.UnixMilli(), q.To.UnixMilli(), q.Step.Milliseconds()
	if stepMs <= 0 {
		stepMs = 1
	}
	if n := (toMs-fromMs)/stepMs + 1; n > 100000 {
		return nil, fmt.Errorf("tsdb: range/step yields %d points (max 100000)", n)
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.haveBound || db.cfg.Registry.Version() != db.bindVersion {
		db.rebind()
	}

	bounds := make([]int64, 0, (toMs-fromMs)/stepMs+1)
	for t := fromMs; t <= toMs; t += stepMs {
		bounds = append(bounds, t)
	}

	res := &Result{
		Name: q.Name, Agg: q.Agg, Label: q.Label,
		FromMs: fromMs, ToMs: toMs, StepMs: stepMs,
	}

	if m, ok := db.meta[q.Name]; ok {
		res.Kind = m.Kind
		switch m.Kind {
		case "counter":
			if res.Agg == "" {
				res.Agg = "rate"
			}
			st := db.collect(q.Name, fromMs, toMs)
			res.Series = []SeriesData{{Points: evalCounter(st, bounds, res.Agg, stepMs)}}
			return res, nil
		case "gauge":
			if res.Agg == "" {
				res.Agg = "last"
			}
			st := db.collect(q.Name, fromMs, toMs)
			res.Series = []SeriesData{{Points: evalGauge(st, bounds, res.Agg)}}
			return res, nil
		case "histogram":
			if res.Agg == "" {
				res.Agg = "quantile"
			}
			if res.Agg == "quantile" {
				if q.Quantile <= 0 || q.Quantile > 1 {
					return nil, fmt.Errorf("tsdb: quantile must be in (0,1], got %v", q.Quantile)
				}
				res.Quantile = q.Quantile
			}
			cells := []string{""}
			if m.Label != "" {
				if q.Label != "" {
					cells = []string{q.Label}
				} else {
					cells = m.Values
				}
			}
			for _, cell := range cells {
				pts, err := db.evalHistogram(m, cell, bounds, res.Agg, q.Quantile, stepMs)
				if err != nil {
					return nil, err
				}
				res.Series = append(res.Series, SeriesData{Value: cell, Points: pts})
			}
			return res, nil
		}
	}

	// Not a live family: flat series (histogram components, or series
	// loaded from blocks whose family no longer registers) query as
	// gauges on their stored values.
	if _, ok := db.series[q.Name]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, q.Name)
	}
	res.Kind = "series"
	if res.Agg == "" {
		res.Agg = "last"
	}
	res.Series = []SeriesData{{Points: evalGauge(db.collect(q.Name, fromMs, toMs), bounds, res.Agg)}}
	return res, nil
}

// collect gathers a series' points overlapping [fromMs, toMs] from the
// finest tier that still covers fromMs, widened to statPoints. One
// point before fromMs rides along so boundary carry-forward and rate
// deltas have a left neighbor. Callers hold db.mu.
func (db *DB) collect(name string, fromMs, toMs int64) []statPoint {
	s, ok := db.series[name]
	if !ok {
		return nil
	}
	// Raw covers the range if it has not wrapped, or its oldest retained
	// point predates the range start.
	if s.raw.n > 0 && (!s.raw.full() || s.raw.at(0).t <= fromMs) {
		return rawStats(&s.raw, fromMs, toMs)
	}
	if s.t1.n > 0 && (!s.t1.full() || s.t1.at(0).t <= fromMs) {
		return aggStats(&s.t1, &s.f1, fromMs, toMs)
	}
	if s.t2.n > 0 || s.f2.cnt > 0 {
		return aggStats(&s.t2, &s.f2, fromMs, toMs)
	}
	return rawStats(&s.raw, fromMs, toMs)
}

func rawStats(r *ring, fromMs, toMs int64) []statPoint {
	var out []statPoint
	for i := 0; i < r.n; i++ {
		p := r.at(i)
		if p.t > toMs {
			break
		}
		sp := statPoint{t: p.t, min: p.v, max: p.v, sum: p.v, last: p.v, cnt: 1}
		if p.t < fromMs {
			// Keep only the newest point left of the range.
			if len(out) == 1 && out[0].t < fromMs {
				out[0] = sp
				continue
			}
		}
		out = append(out, sp)
	}
	return out
}

func aggStats(r *aggRing, f *fold, fromMs, toMs int64) []statPoint {
	var out []statPoint
	push := func(sp statPoint) {
		if sp.t > toMs {
			return
		}
		if sp.t < fromMs && len(out) == 1 && out[0].t < fromMs {
			out[0] = sp
			return
		}
		out = append(out, sp)
	}
	for i := 0; i < r.n; i++ {
		p := r.at(i)
		push(statPoint{t: p.t, min: p.min, max: p.max, sum: p.sum, last: p.last, cnt: p.cnt})
	}
	// The in-progress fold is the newest window; without it the query
	// edge lags a full window behind live data.
	if f.cnt > 0 {
		push(statPoint{t: f.start, min: f.min, max: f.max, sum: f.sum, last: f.last, cnt: f.cnt})
	}
	return out
}

// lastAt returns, per boundary, the last value at or before it (NaN
// when no point precedes the boundary).
func lastAt(st []statPoint, bounds []int64) []float64 {
	out := make([]float64, len(bounds))
	j := 0
	cur := math.NaN()
	for i, b := range bounds {
		for j < len(st) && st[j].t <= b {
			cur = st[j].last
			j++
		}
		out[i] = cur
	}
	return out
}

// evalCounter reduces a cumulative-counter series: "rate" is the
// per-second increase across each step, "increase" the raw delta.
// Counter resets (delta < 0) restart from the new value.
func evalCounter(st []statPoint, bounds []int64, agg string, stepMs int64) []Point {
	vals := lastAt(st, bounds)
	var out []Point
	for i := 1; i < len(bounds); i++ {
		prev, cur := vals[i-1], vals[i]
		if math.IsNaN(prev) || math.IsNaN(cur) {
			continue
		}
		d := cur - prev
		if d < 0 {
			d = cur
		}
		switch agg {
		case "increase":
			out = append(out, Point{T: bounds[i], V: d})
		default: // rate
			out = append(out, Point{T: bounds[i], V: d / (float64(stepMs) / 1000)})
		}
	}
	return out
}

// evalGauge reduces a gauge series: "last" carries the most recent
// value forward to each boundary; "avg"/"min"/"max" reduce the points
// inside each (prev, boundary] window and skip empty windows.
func evalGauge(st []statPoint, bounds []int64, agg string) []Point {
	var out []Point
	if agg == "last" || agg == "" {
		vals := lastAt(st, bounds)
		for i, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			out = append(out, Point{T: bounds[i], V: v})
		}
		return out
	}
	j := 0
	// Skip points at or before the first boundary: windows are
	// (bounds[i-1], bounds[i]].
	for j < len(st) && st[j].t <= bounds[0] {
		j++
	}
	for i := 1; i < len(bounds); i++ {
		var (
			mn, mx, sum float64
			cnt         uint64
		)
		for j < len(st) && st[j].t <= bounds[i] {
			p := st[j]
			if cnt == 0 {
				mn, mx = p.min, p.max
			} else {
				mn = math.Min(mn, p.min)
				mx = math.Max(mx, p.max)
			}
			sum += p.sum
			cnt += uint64(p.cnt)
			j++
		}
		if cnt == 0 {
			continue
		}
		switch agg {
		case "min":
			out = append(out, Point{T: bounds[i], V: mn})
		case "max":
			out = append(out, Point{T: bounds[i], V: mx})
		case "avg":
			out = append(out, Point{T: bounds[i], V: sum / float64(cnt)})
		default:
			return nil
		}
	}
	return out
}

// evalHistogram reassembles a histogram cell from its flat component
// series and reduces each step window: "quantile" estimates from the
// windowed bucket increments, "avg" is Δsum/Δcount, "rate" Δcount/s.
// Callers hold db.mu.
func (db *DB) evalHistogram(m *FamilyMeta, cell string, bounds []int64, agg string, q float64, stepMs int64) ([]Point, error) {
	base := m.Name
	if m.Label != "" {
		base = m.Name + "{" + cell + "}"
	}
	fromMs, toMs := bounds[0], bounds[len(bounds)-1]
	count := lastAt(db.collect(base+"#count", fromMs, toMs), bounds)
	switch agg {
	case "rate":
		var out []Point
		for i := 1; i < len(bounds); i++ {
			d, ok := windowDelta(count[i-1], count[i])
			if !ok {
				continue
			}
			out = append(out, Point{T: bounds[i], V: d / (float64(stepMs) / 1000)})
		}
		return out, nil
	case "avg":
		sum := lastAt(db.collect(base+"#sum", fromMs, toMs), bounds)
		var out []Point
		for i := 1; i < len(bounds); i++ {
			dc, ok := windowDelta(count[i-1], count[i])
			if !ok || dc == 0 {
				continue
			}
			ds := sum[i] - sum[i-1]
			if math.IsNaN(ds) || ds < 0 {
				continue
			}
			out = append(out, Point{T: bounds[i], V: ds / dc})
		}
		return out, nil
	case "quantile":
		nb := len(m.Bounds)
		cum := make([][]float64, nb)
		for bi := 0; bi < nb; bi++ {
			cum[bi] = lastAt(db.collect(base+"#b"+itoa(bi), fromMs, toMs), bounds)
		}
		snap := obs.HistogramSnapshot{Bounds: m.Bounds, Counts: make([]uint64, nb+1)}
		var out []Point
		for i := 1; i < len(bounds); i++ {
			dc, ok := windowDelta(count[i-1], count[i])
			if !ok || dc == 0 {
				continue
			}
			// Window increment per cumulative bucket, then de-cumulate
			// into the snapshot's per-bucket counts (+Inf slot last).
			valid, prevCum := true, 0.0
			total := uint64(0)
			for bi := 0; bi < nb; bi++ {
				d, ok := windowDelta(cum[bi][i-1], cum[bi][i])
				if !ok || d < prevCum {
					valid = false
					break
				}
				snap.Counts[bi] = uint64(d - prevCum)
				total += snap.Counts[bi]
				prevCum = d
			}
			if !valid {
				continue
			}
			inf := uint64(0)
			if dcU := uint64(dc); dcU > total {
				inf = dcU - total
			}
			snap.Counts[nb] = inf
			snap.Count = total + inf
			v := snap.Quantile(q)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			out = append(out, Point{T: bounds[i], V: v})
		}
		return out, nil
	}
	return nil, fmt.Errorf("tsdb: unknown histogram agg %q", agg)
}

// windowDelta is the reset-aware increment between two cumulative
// samples; !ok when either side is missing.
func windowDelta(prev, cur float64) (float64, bool) {
	if math.IsNaN(prev) || math.IsNaN(cur) {
		return 0, false
	}
	d := cur - prev
	if d < 0 {
		d = cur
	}
	return d, true
}

// --- SLO window reductions (fleetops.HistorySource) ---

// windowStats returns the statPoints of a flat series in
// [now-window, now], plus one left neighbor.
func (db *DB) windowStats(name string, window time.Duration, now time.Time) []statPoint {
	toMs := now.UnixMilli()
	return db.collect(name, toMs-window.Milliseconds(), toMs)
}

// resolve maps a rule's series reference to a flat series name: exact
// flat names pass through; a counter/gauge family name maps to itself;
// a histogram family name maps to its #count series (optionally with a
// "{cell}" already embedded by the rule author).
func (db *DB) resolve(name string) string {
	if strings.ContainsRune(name, '#') {
		return name
	}
	fam := name
	if i := strings.IndexByte(fam, '{'); i >= 0 {
		fam = fam[:i]
	}
	if m, ok := db.meta[fam]; ok && m.Kind == "histogram" {
		return name + "#count"
	}
	return name
}

// Increase returns the reset-aware increase of a cumulative series over
// the trailing window. ok is false with fewer than two points.
func (db *DB) Increase(name string, window time.Duration, now time.Time) (float64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	st := db.windowStats(db.resolve(name), window, now)
	if len(st) < 2 {
		return 0, false
	}
	total := 0.0
	for i := 1; i < len(st); i++ {
		d := st[i].last - st[i-1].last
		if d < 0 {
			d = st[i].last
		}
		total += d
	}
	return total, true
}

// Avg returns the mean sampled value over the trailing window.
func (db *DB) Avg(name string, window time.Duration, now time.Time) (float64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	st := db.windowStats(db.resolve(name), window, now)
	fromMs := now.UnixMilli() - window.Milliseconds()
	sum, cnt := 0.0, uint64(0)
	for _, p := range st {
		if p.t < fromMs {
			continue
		}
		sum += p.sum
		cnt += uint64(p.cnt)
	}
	if cnt == 0 {
		return 0, false
	}
	return sum / float64(cnt), true
}

// Slope returns the least-squares trend of the series over the
// trailing window, in value units per second.
func (db *DB) Slope(name string, window time.Duration, now time.Time) (float64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	st := db.windowStats(db.resolve(name), window, now)
	fromMs := now.UnixMilli() - window.Milliseconds()
	var xs, ys []float64
	for _, p := range st {
		if p.t < fromMs {
			continue
		}
		xs = append(xs, float64(p.t)/1000)
		ys = append(ys, p.last)
	}
	if len(xs) < 2 || xs[len(xs)-1] == xs[0] {
		return 0, false
	}
	// Center on the means before accumulating: epoch-scale x values
	// would otherwise lose the (tiny) variance to cancellation.
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var num, den float64
	for i := range xs {
		dx := xs[i] - mx
		num += dx * (ys[i] - my)
		den += dx * dx
	}
	if den == 0 {
		return 0, false
	}
	return num / den, true
}

// SeriesNames lists every flat series currently held (live or loaded),
// sorted — a debugging aid surfaced next to Names.
func (db *DB) SeriesNames() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.series))
	for name := range db.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
