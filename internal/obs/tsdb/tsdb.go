// Package tsdb is the embedded metric-history store: it samples an
// obs.Registry on a fixed cadence into per-series in-memory rings,
// downsamples raw points into 10x and 100x aggregate tiers so a week of
// history stays bounded, and (when given a directory) flushes immutable
// delta-of-delta/varint-encoded blocks through vfs.WriteAtomic so the
// history survives restarts under the same crash discipline as the
// result store.
//
// Every registered family flattens into named float64 series:
//
//	counter/gauge f            → "f"
//	histogram h                → "h#count", "h#sum", "h#b<i>" (cumulative
//	                             count at the i-th finite bound)
//	vec cell v{label="x"}      → "v{x}#count", "v{x}#sum", "v{x}#b<i>"
//
// The flat names are what blocks persist and what the SLO engine's
// window reductions address; the query layer reassembles histogram
// cells from them for quantile estimation.
package tsdb

import (
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"penelope/internal/obs"
	"penelope/internal/store/vfs"
)

// Config tunes a DB.
type Config struct {
	// Registry is the metric registry to sample. Required.
	Registry *obs.Registry
	// Interval is the sampling cadence the tiers are derived from:
	// tier 1 aggregates 10 intervals per point, tier 2 aggregates 100
	// (default 10s). The caller owns the ticker; Interval only shapes
	// the downsampling windows.
	Interval time.Duration
	// Retention bounds how far back persisted blocks are kept; older
	// blocks are deleted at boot and after each flush (default 168h).
	Retention time.Duration
	// RawPoints sizes the raw ring per series; the 10x tier holds the
	// same count and the 100x tier twice that, so coverage stretches
	// RawPoints*200 intervals (default 360 — at a 10s interval that is
	// 1h raw, 10h mid, 200h coarse).
	RawPoints int

	// Dir enables persistence: immutable blocks land here through
	// vfs.WriteAtomic. Empty keeps the history memory-only.
	Dir string
	// FS is the filesystem blocks are written through (default vfs.OS).
	FS vfs.FS
	// Budget bounds total block bytes on disk; past it the oldest
	// blocks are deleted (0 = unbounded).
	Budget int64
	// FlushEvery is the number of samples between block flushes
	// (default 30). Close always flushes the tail.
	FlushEvery int
	// ScrubInterval re-verifies every block checksum in the background
	// of the sampling loop, quarantining bit rot (0 disables).
	ScrubInterval time.Duration
	// Clock injects time for retention decisions at boot (tests);
	// sampling itself is driven by the caller's Sample(now).
	Clock func() time.Time
	// Logger receives flush/quarantine warnings. Nil discards.
	Logger *slog.Logger
}

// point is one raw sample.
type point struct {
	t int64 // unix milliseconds
	v float64
}

// aggPoint is one downsampled window: min/max/sum/count describe the
// raw points that fell in the window, last carries the final value so
// counter rates and cumulative bucket deltas survive downsampling.
type aggPoint struct {
	t    int64 // window start, unix milliseconds
	min  float64
	max  float64
	sum  float64
	last float64
	cnt  uint32
}

// ring is a fixed-capacity raw-point ring (oldest overwritten first).
type ring struct {
	buf  []point
	head int // next write index
	n    int
}

func (r *ring) push(p point) {
	r.buf[r.head] = p
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

func (r *ring) at(i int) point {
	return r.buf[(r.head-r.n+i+2*len(r.buf))%len(r.buf)]
}

// full reports whether the ring has wrapped (i.e. dropped history).
func (r *ring) full() bool { return r.n == len(r.buf) }

// aggRing is ring's shape over aggPoints.
type aggRing struct {
	buf  []aggPoint
	head int
	n    int
}

func (r *aggRing) push(p aggPoint) {
	r.buf[r.head] = p
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

func (r *aggRing) at(i int) aggPoint {
	return r.buf[(r.head-r.n+i+2*len(r.buf))%len(r.buf)]
}

func (r *aggRing) full() bool { return r.n == len(r.buf) }

// fold is an in-progress downsampling window.
type fold struct {
	start int64
	min   float64
	max   float64
	sum   float64
	last  float64
	cnt   uint32
}

// series is one flat sample stream with its three tiers.
type series struct {
	name     string
	raw      ring
	t1, t2   aggRing
	f1, f2   fold
	flushedT int64 // newest timestamp persisted to a block
}

// binding is one family's cached accessors, resolved against the
// registry when its version moves; the steady-state sample path walks
// bindings and pushes into pre-created series without allocating.
type binding struct {
	readCounter func() uint64
	readGauge   func() float64
	ser         *series

	hist *obs.Histogram
	hser []*series // count, sum, then one per finite bound
}

// FamilyMeta is one family's entry in the names listing.
type FamilyMeta struct {
	Name   string    `json:"name"`
	Kind   string    `json:"kind"`
	Help   string    `json:"help,omitempty"`
	Label  string    `json:"label,omitempty"`
	Values []string  `json:"values,omitempty"`
	Bounds []float64 `json:"bounds,omitempty"`
}

// blockInfo tracks one on-disk block.
type blockInfo struct {
	name string
	size int64
	minT int64
	maxT int64
}

// Stats is the history store's own counter section. Counters are
// atomics so exporting them as registry families never re-enters the
// DB mutex mid-sample.
type Stats struct {
	Series            int    `json:"series"`
	Samples           uint64 `json:"samples"`
	Points            uint64 `json:"points"`
	Blocks            int    `json:"blocks"`
	BlockBytes        int64  `json:"block_bytes"`
	BlocksWritten     uint64 `json:"blocks_written"`
	BlocksLoaded      uint64 `json:"blocks_loaded"`
	BlocksQuarantined uint64 `json:"blocks_quarantined"`
	BlocksDeleted     uint64 `json:"blocks_deleted"`
	FlushFailures     uint64 `json:"flush_failures"`
	ScrubPasses       uint64 `json:"scrub_passes"`
}

// DB is the embedded time-series store.
type DB struct {
	cfg        Config
	intervalMs int64
	win1Ms     int64
	win2Ms     int64
	rawN       int
	flushEvery int

	mu          sync.Mutex
	closed      bool
	series      map[string]*series
	order       []*series // registration order; flush iterates sorted copy
	meta        map[string]*FamilyMeta
	bindings    []binding
	bindVersion uint64
	haveBound   bool
	scratch     []uint64
	vecScratch  []obs.VecEntry
	encBuf      []byte
	lastSampleT int64
	ticksToGo   int
	blocks      []blockInfo
	blockSeq    int
	lastScrub   time.Time

	nSeries      atomic.Int64
	nSamples     atomic.Uint64
	nPoints      atomic.Uint64
	nBlocks      atomic.Int64
	nBlockBytes  atomic.Int64
	nWritten     atomic.Uint64
	nLoaded      atomic.Uint64
	nQuarantined atomic.Uint64
	nDeleted     atomic.Uint64
	nFlushFail   atomic.Uint64
	nScrubs      atomic.Uint64
}

// Open builds a DB and, when Dir is set, loads every durable block —
// quarantining torn or corrupt ones — and replays the samples through
// the downsampling path so the tiers match what a never-restarted
// process would hold.
func Open(cfg Config) (*DB, error) {
	if cfg.Registry == nil {
		panic("tsdb: Open requires a registry")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 168 * time.Hour
	}
	if cfg.RawPoints <= 0 {
		cfg.RawPoints = 360
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = 30
	}
	if cfg.FS == nil {
		cfg.FS = vfs.OS{}
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	db := &DB{
		cfg:        cfg,
		intervalMs: cfg.Interval.Milliseconds(),
		rawN:       cfg.RawPoints,
		flushEvery: cfg.FlushEvery,
		series:     make(map[string]*series),
		meta:       make(map[string]*FamilyMeta),
		ticksToGo:  cfg.FlushEvery,
		lastScrub:  cfg.Clock(),
	}
	if db.intervalMs <= 0 {
		db.intervalMs = 1
	}
	db.win1Ms = 10 * db.intervalMs
	db.win2Ms = 100 * db.intervalMs
	if cfg.Dir != "" {
		if err := db.loadBlocks(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func (db *DB) persistent() bool { return db.cfg.Dir != "" }

// getSeries returns (creating if needed) the flat series for name.
// Callers hold db.mu.
func (db *DB) getSeries(name string) *series {
	if s, ok := db.series[name]; ok {
		return s
	}
	s := &series{
		name: name,
		raw:  ring{buf: make([]point, db.rawN)},
		t1:   aggRing{buf: make([]aggPoint, db.rawN)},
		t2:   aggRing{buf: make([]aggPoint, 2*db.rawN)},
	}
	db.series[name] = s
	db.order = append(db.order, s)
	db.nSeries.Store(int64(len(db.series)))
	return s
}

// push appends one sample to a series: the raw ring plus both
// downsampling folds. Folds close on the first sample of a new
// time-aligned window, so replaying the same samples — live or from
// blocks — always reproduces the same tier contents.
func (db *DB) push(s *series, t int64, v float64) {
	s.raw.push(point{t: t, v: v})
	db.foldInto(&s.f1, &s.t1, db.win1Ms, t, v)
	db.foldInto(&s.f2, &s.t2, db.win2Ms, t, v)
	db.nPoints.Add(1)
}

func (db *DB) foldInto(f *fold, r *aggRing, winMs, t int64, v float64) {
	w := t - t%winMs
	if f.cnt > 0 && w != f.start {
		r.push(aggPoint{t: f.start, min: f.min, max: f.max, sum: f.sum, last: f.last, cnt: f.cnt})
		f.cnt = 0
	}
	if f.cnt == 0 {
		f.start = w
		f.min, f.max = v, v
		f.sum = 0
	} else {
		if v < f.min {
			f.min = v
		}
		if v > f.max {
			f.max = v
		}
	}
	f.sum += v
	f.last = v
	f.cnt++
}

// rebind resolves the registry's families into cached bindings and
// refreshed meta. Runs only when the registry version moved (a family
// was registered or a vec gained a cell), so steady-state sampling
// never allocates. Callers hold db.mu.
func (db *DB) rebind() {
	reg := db.cfg.Registry
	db.bindVersion = reg.Version()
	db.haveBound = true
	db.bindings = db.bindings[:0]
	db.meta = make(map[string]*FamilyMeta)
	maxBuckets := 0
	reg.Families(func(f obs.FamilyInfo) {
		switch f.Kind {
		case obs.KindCounter:
			db.meta[f.Name] = &FamilyMeta{Name: f.Name, Kind: "counter", Help: f.Help}
			db.bindings = append(db.bindings, binding{readCounter: f.ReadCounter, ser: db.getSeries(f.Name)})
		case obs.KindGauge:
			db.meta[f.Name] = &FamilyMeta{Name: f.Name, Kind: "gauge", Help: f.Help}
			db.bindings = append(db.bindings, binding{readGauge: f.ReadGauge, ser: db.getSeries(f.Name)})
		case obs.KindHistogram:
			m := &FamilyMeta{Name: f.Name, Kind: "histogram", Help: f.Help, Label: f.VecLabel}
			db.meta[f.Name] = m
			bindHist := func(h *obs.Histogram, cell string) {
				m.Bounds = h.Bounds()
				if n := len(m.Bounds) + 1; n > maxBuckets {
					maxBuckets = n
				}
				base := f.Name
				if f.VecLabel != "" {
					base = f.Name + "{" + cell + "}"
				}
				b := binding{hist: h}
				b.hser = append(b.hser, db.getSeries(base+"#count"), db.getSeries(base+"#sum"))
				for i := range m.Bounds {
					b.hser = append(b.hser, db.getSeries(base+"#b"+itoa(i)))
				}
				db.bindings = append(db.bindings, b)
			}
			if f.Vec != nil {
				db.vecScratch = f.Vec.Entries(db.vecScratch[:0])
				for _, e := range db.vecScratch {
					m.Values = append(m.Values, e.Value)
					bindHist(e.Hist, e.Value)
				}
			} else if f.Hist != nil {
				bindHist(f.Hist, "")
			}
		}
	})
	if cap(db.scratch) < maxBuckets {
		db.scratch = make([]uint64, maxBuckets)
	}
	db.scratch = db.scratch[:cap(db.scratch)]
}

// itoa is strconv.Itoa for the small non-negative ints bucket indices
// use, without pulling strconv into the hot rebind loop.
func itoa(i int) string {
	if i < 10 {
		return string([]byte{byte('0' + i)})
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// Sample takes one registry sweep at time now: every bound family
// appends one point per flat series. When persistence is on it also
// flushes a block every FlushEvery samples and runs the periodic scrub.
// The steady state (no new families, no flush due) performs zero heap
// allocations.
func (db *DB) Sample(now time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return
	}
	if !db.haveBound || db.cfg.Registry.Version() != db.bindVersion {
		db.rebind()
	}
	t := now.UnixMilli()
	if t <= db.lastSampleT {
		// Clock went backwards (or stood still): keep timestamps strictly
		// monotonic so encoding and queries stay well-ordered.
		t = db.lastSampleT + 1
	}
	for i := range db.bindings {
		b := &db.bindings[i]
		switch {
		case b.readCounter != nil:
			db.push(b.ser, t, float64(b.readCounter()))
		case b.readGauge != nil:
			db.push(b.ser, t, b.readGauge())
		case b.hist != nil:
			count, sum := b.hist.ReadInto(db.scratch)
			db.push(b.hser[0], t, float64(count))
			db.push(b.hser[1], t, sum)
			cum := uint64(0)
			for j := 0; j < len(b.hser)-2; j++ {
				cum += db.scratch[j]
				db.push(b.hser[2+j], t, float64(cum))
			}
		}
	}
	db.lastSampleT = t
	db.nSamples.Add(1)
	if db.persistent() {
		db.ticksToGo--
		if db.ticksToGo <= 0 {
			db.ticksToGo = db.flushEvery
			db.flushLocked(t)
		}
		if db.cfg.ScrubInterval > 0 && now.Sub(db.lastScrub) >= db.cfg.ScrubInterval {
			db.lastScrub = now
			db.scrubLocked()
		}
	}
}

// Flush forces any unflushed samples into a block (no-op when
// memory-only or nothing is pending).
func (db *DB) Flush() {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.persistent() && !db.closed {
		db.flushLocked(db.lastSampleT)
	}
}

// Close flushes the tail and stops accepting samples. Idempotent.
func (db *DB) Close() {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return
	}
	if db.persistent() {
		db.flushLocked(db.lastSampleT)
	}
	db.closed = true
}

// Stats assembles the counter section from atomics — no DB mutex, so
// the registry families mirroring it are safe to read mid-sample.
func (db *DB) Stats() Stats {
	return Stats{
		Series:            int(db.nSeries.Load()),
		Samples:           db.nSamples.Load(),
		Points:            db.nPoints.Load(),
		Blocks:            int(db.nBlocks.Load()),
		BlockBytes:        db.nBlockBytes.Load(),
		BlocksWritten:     db.nWritten.Load(),
		BlocksLoaded:      db.nLoaded.Load(),
		BlocksQuarantined: db.nQuarantined.Load(),
		BlocksDeleted:     db.nDeleted.Load(),
		FlushFailures:     db.nFlushFail.Load(),
		ScrubPasses:       db.nScrubs.Load(),
	}
}

// Names lists the families the history knows, sorted by name — the
// /v1/metrics/names payload. Bindings resolve lazily, so this also
// refreshes them if the registry moved since the last sample.
func (db *DB) Names() []FamilyMeta {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.haveBound || db.cfg.Registry.Version() != db.bindVersion {
		db.rebind()
	}
	out := make([]FamilyMeta, 0, len(db.meta))
	for _, m := range db.meta {
		out = append(out, *m)
	}
	sortMeta(out)
	return out
}

func sortMeta(ms []FamilyMeta) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Name < ms[j-1].Name; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}
