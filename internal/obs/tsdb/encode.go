package tsdb

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Chunk codec: one chunk holds one series' raw samples in time order.
//
// Layout:
//
//	uvarint n            sample count
//	byte    mode         valueModeInt or valueModeFloat
//	timestamps           delta-of-delta, zigzag-varint (first absolute,
//	                     second a delta, the rest delta-of-delta) — a
//	                     regular sampling interval costs one byte per
//	                     timestamp after the first two
//	values   int mode:   same delta-of-delta zigzag-varint scheme over
//	                     the int64 the float round-trips through; chosen
//	                     when every value in the chunk round-trips
//	                     bit-exactly (counters, bucket counts, integral
//	                     gauges — the overwhelming majority of series)
//	         float mode: XOR with the previous value's bits, uvarint;
//	                     nearby floats share sign/exponent/high-mantissa
//	                     bits, so the XOR is small and varints stay short
//
// Both modes reproduce the input float64 stream bit-exactly, including
// NaN payloads, -0 and infinities: int mode is only selected when the
// bits survive the int64 round trip (which -0 and NaN never do), and
// float mode moves raw bits.
const (
	valueModeInt   = 0
	valueModeFloat = 1
)

// intExact reports whether v survives float64 → int64 → float64
// bit-exactly. Rejects NaN, ±Inf, -0 and anything past 2^53.
func intExact(v float64) (int64, bool) {
	iv := int64(v)
	return iv, math.Float64bits(float64(iv)) == math.Float64bits(v)
}

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// dodEncoder appends a delta-of-delta zigzag-varint int64 stream.
type dodEncoder struct {
	n               int
	prev, prevDelta int64
}

func (e *dodEncoder) append(dst []byte, x int64) []byte {
	switch e.n {
	case 0:
		dst = appendZigzag(dst, x)
	case 1:
		e.prevDelta = x - e.prev
		dst = appendZigzag(dst, e.prevDelta)
	default:
		d := x - e.prev
		dst = appendZigzag(dst, d-e.prevDelta)
		e.prevDelta = d
	}
	e.prev = x
	e.n++
	return dst
}

// dodDecoder mirrors dodEncoder.
type dodDecoder struct {
	n               int
	prev, prevDelta int64
}

func (d *dodDecoder) next(src []byte) (int64, []byte, error) {
	v, k := binary.Varint(src)
	if k <= 0 {
		return 0, nil, fmt.Errorf("tsdb: truncated varint in chunk")
	}
	src = src[k:]
	var x int64
	switch d.n {
	case 0:
		x = v
	case 1:
		d.prevDelta = v
		x = d.prev + v
	default:
		d.prevDelta += v
		x = d.prev + d.prevDelta
	}
	d.prev = x
	d.n++
	return x, src, nil
}

// appendChunk encodes pts (time-ordered) as one chunk appended to dst.
func appendChunk(dst []byte, pts []point) []byte {
	dst = appendUvarint(dst, uint64(len(pts)))
	if len(pts) == 0 {
		return dst
	}
	mode := byte(valueModeInt)
	for _, p := range pts {
		if _, ok := intExact(p.v); !ok {
			mode = valueModeFloat
			break
		}
	}
	dst = append(dst, mode)
	var te dodEncoder
	for _, p := range pts {
		dst = te.append(dst, p.t)
	}
	if mode == valueModeInt {
		var ve dodEncoder
		for _, p := range pts {
			iv, _ := intExact(p.v)
			dst = ve.append(dst, iv)
		}
		return dst
	}
	prev := uint64(0)
	for _, p := range pts {
		bits := math.Float64bits(p.v)
		dst = appendUvarint(dst, bits^prev)
		prev = bits
	}
	return dst
}

// decodeChunk decodes one chunk from src, calling emit per sample, and
// returns the remaining bytes.
func decodeChunk(src []byte, emit func(t int64, v float64)) ([]byte, error) {
	n, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, fmt.Errorf("tsdb: truncated chunk header")
	}
	src = src[k:]
	if n == 0 {
		return src, nil
	}
	if len(src) == 0 {
		return nil, fmt.Errorf("tsdb: chunk missing mode byte")
	}
	mode := src[0]
	if mode != valueModeInt && mode != valueModeFloat {
		return nil, fmt.Errorf("tsdb: unknown chunk value mode %d", mode)
	}
	src = src[1:]
	ts := make([]int64, n)
	var td dodDecoder
	var err error
	for i := range ts {
		ts[i], src, err = td.next(src)
		if err != nil {
			return nil, err
		}
	}
	if mode == valueModeInt {
		var vd dodDecoder
		for i := range ts {
			var iv int64
			iv, src, err = vd.next(src)
			if err != nil {
				return nil, err
			}
			emit(ts[i], float64(iv))
		}
		return src, nil
	}
	prev := uint64(0)
	for i := range ts {
		x, k := binary.Uvarint(src)
		if k <= 0 {
			return nil, fmt.Errorf("tsdb: truncated float value")
		}
		src = src[k:]
		prev ^= x
		emit(ts[i], math.Float64frombits(prev))
	}
	return src, nil
}
