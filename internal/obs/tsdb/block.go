package tsdb

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"penelope/internal/store/vfs"
)

// Block file format. A block is an immutable flush of every series'
// unpersisted raw samples, written once through vfs.WriteAtomic and
// never modified:
//
//	magic    "penelope-tsdb-v1\n"
//	length   8-byte little-endian payload length
//	payload  uvarint series count, then per series:
//	           uvarint name length, name bytes,
//	           uvarint chunk length, chunk (see encode.go)
//	checksum sha256(payload)
//
// File names are block-<mints>-<seq>.tsb where <mints> is the block's
// minimum sample timestamp (unix milliseconds, zero-padded) and <seq> a
// monotonic sequence number, so a lexical directory sort is a time
// sort and replaying blocks in name order replays every series' samples
// in time order.
const blockMagic = "penelope-tsdb-v1\n"

const (
	blockPrefix  = "block-"
	blockSuffix  = ".tsb"
	quarantineSx = ".quarantine"
)

func blockName(minT int64, seq int) string {
	return fmt.Sprintf("%s%013d-%06d%s", blockPrefix, minT, seq, blockSuffix)
}

// frameBlock wraps payload in the magic/length/checksum frame.
func frameBlock(payload []byte) []byte {
	out := make([]byte, 0, len(blockMagic)+8+len(payload)+sha256.Size)
	out = append(out, blockMagic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	sum := sha256.Sum256(payload)
	return append(out, sum[:]...)
}

// unframeBlock validates the frame and returns the payload.
func unframeBlock(data []byte) ([]byte, error) {
	if len(data) < len(blockMagic)+8+sha256.Size {
		return nil, fmt.Errorf("tsdb: block too short (%d bytes)", len(data))
	}
	if string(data[:len(blockMagic)]) != blockMagic {
		return nil, fmt.Errorf("tsdb: bad block magic")
	}
	data = data[len(blockMagic):]
	n := binary.LittleEndian.Uint64(data[:8])
	data = data[8:]
	if uint64(len(data)) != n+sha256.Size {
		return nil, fmt.Errorf("tsdb: block length mismatch (header %d, have %d)", n, len(data)-sha256.Size)
	}
	payload, sum := data[:n], data[n:]
	want := sha256.Sum256(payload)
	if string(sum) != string(want[:]) {
		return nil, fmt.Errorf("tsdb: block checksum mismatch")
	}
	return payload, nil
}

// flushLocked writes every series' samples newer than its flush
// watermark into one block. A failed write counts a flush failure and
// leaves the watermarks untouched, so the samples ride along into the
// next attempt. Callers hold db.mu.
func (db *DB) flushLocked(now int64) {
	payload := db.encBuf[:0]
	var (
		flushed []*series
		marks   []int64
		nSeries uint64
		minT    int64 = 1<<63 - 1
		maxT    int64
		pts     []point
		body    []byte
	)
	// Series count is a varint prefix, so build the bodies first.
	for _, s := range db.sortedSeries() {
		pts = pts[:0]
		for i := 0; i < s.raw.n; i++ {
			p := s.raw.at(i)
			if p.t > s.flushedT {
				pts = append(pts, p)
			}
		}
		if len(pts) == 0 {
			continue
		}
		if pts[0].t < minT {
			minT = pts[0].t
		}
		if last := pts[len(pts)-1].t; last > maxT {
			maxT = last
		}
		chunk := appendChunk(nil, pts)
		body = appendUvarint(body, uint64(len(s.name)))
		body = append(body, s.name...)
		body = appendUvarint(body, uint64(len(chunk)))
		body = append(body, chunk...)
		flushed = append(flushed, s)
		marks = append(marks, pts[len(pts)-1].t)
		nSeries++
	}
	if nSeries == 0 {
		return
	}
	payload = appendUvarint(payload, nSeries)
	payload = append(payload, body...)
	db.encBuf = payload[:0]

	db.blockSeq++
	name := blockName(minT, db.blockSeq)
	path := filepath.Join(db.cfg.Dir, name)
	framed := frameBlock(payload)
	if _, err := vfs.WriteAtomic(db.cfg.FS, path, framed); err != nil {
		db.nFlushFail.Add(1)
		db.cfg.Logger.Warn("tsdb: block flush failed", "block", name, "err", err)
		return
	}
	for i, s := range flushed {
		s.flushedT = marks[i]
	}
	db.blocks = append(db.blocks, blockInfo{name: name, size: int64(len(framed)), minT: minT, maxT: maxT})
	db.nWritten.Add(1)
	db.updateBlockGauges()
	db.enforceLimits(now)
}

// sortedSeries returns the series in name order (stable across
// restarts, since block replay recreates them in flush order).
func (db *DB) sortedSeries() []*series {
	out := make([]*series, len(db.order))
	copy(out, db.order)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// enforceLimits deletes the oldest blocks until retention and the byte
// budget are both satisfied. Callers hold db.mu.
func (db *DB) enforceLimits(now int64) {
	cutoff := now - db.cfg.Retention.Milliseconds()
	total := int64(0)
	for _, b := range db.blocks {
		total += b.size
	}
	for len(db.blocks) > 1 {
		oldest := db.blocks[0]
		expired := oldest.maxT < cutoff
		overBudget := db.cfg.Budget > 0 && total > db.cfg.Budget
		if !expired && !overBudget {
			break
		}
		if err := db.cfg.FS.Remove(filepath.Join(db.cfg.Dir, oldest.name)); err != nil {
			db.cfg.Logger.Warn("tsdb: block delete failed", "block", oldest.name, "err", err)
			break
		}
		db.cfg.FS.SyncDir(db.cfg.Dir)
		total -= oldest.size
		db.blocks = db.blocks[1:]
		db.nDeleted.Add(1)
	}
	db.updateBlockGauges()
}

func (db *DB) updateBlockGauges() {
	total := int64(0)
	for _, b := range db.blocks {
		total += b.size
	}
	db.nBlocks.Store(int64(len(db.blocks)))
	db.nBlockBytes.Store(total)
}

// loadBlocks runs at Open: sweep temp leftovers, load every block in
// name (= time) order replaying its samples through the same push path
// live sampling uses, quarantine anything torn or corrupt, then apply
// retention and budget. After it returns, rings and tiers match a
// process that never restarted.
func (db *DB) loadBlocks() error {
	fsys := db.cfg.FS
	if err := fsys.MkdirAll(db.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("tsdb: create dir: %w", err)
	}
	ents, err := fsys.ReadDir(db.cfg.Dir)
	if err != nil {
		return fmt.Errorf("tsdb: read dir: %w", err)
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, ".tmp-"):
			fsys.Remove(filepath.Join(db.cfg.Dir, name))
		case strings.HasPrefix(name, blockPrefix) && strings.HasSuffix(name, blockSuffix):
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(db.cfg.Dir, name)
		info, err := db.loadOneBlock(path)
		if err != nil {
			db.quarantine(path, err)
			continue
		}
		info.name = name
		db.blocks = append(db.blocks, info)
		db.nLoaded.Add(1)
		if db.lastSampleT < info.maxT {
			db.lastSampleT = info.maxT
		}
		if seq, ok := blockSeqOf(name); ok && seq > db.blockSeq {
			db.blockSeq = seq
		}
	}
	db.updateBlockGauges()
	db.enforceLimits(db.cfg.Clock().UnixMilli())
	return nil
}

// loadOneBlock parses and replays one block file.
func (db *DB) loadOneBlock(path string) (blockInfo, error) {
	data, err := db.cfg.FS.ReadFile(path)
	if err != nil {
		return blockInfo{}, err
	}
	payload, err := unframeBlock(data)
	if err != nil {
		return blockInfo{}, err
	}
	info := blockInfo{size: int64(len(data)), minT: 1<<63 - 1}
	nSeries, k := binary.Uvarint(payload)
	if k <= 0 {
		return blockInfo{}, fmt.Errorf("tsdb: truncated series count")
	}
	payload = payload[k:]
	for i := uint64(0); i < nSeries; i++ {
		nameLen, k := binary.Uvarint(payload)
		if k <= 0 || uint64(len(payload)-k) < nameLen {
			return blockInfo{}, fmt.Errorf("tsdb: truncated series name")
		}
		name := string(payload[k : k+int(nameLen)])
		payload = payload[k+int(nameLen):]
		chunkLen, k := binary.Uvarint(payload)
		if k <= 0 || uint64(len(payload)-k) < chunkLen {
			return blockInfo{}, fmt.Errorf("tsdb: truncated chunk for %s", name)
		}
		chunk := payload[k : k+int(chunkLen)]
		payload = payload[k+int(chunkLen):]
		s := db.getSeries(name)
		rest, err := decodeChunk(chunk, func(t int64, v float64) {
			db.push(s, t, v)
			if t < info.minT {
				info.minT = t
			}
			if t > info.maxT {
				info.maxT = t
			}
			if t > s.flushedT {
				s.flushedT = t
			}
		})
		if err != nil {
			return blockInfo{}, err
		}
		if len(rest) != 0 {
			return blockInfo{}, fmt.Errorf("tsdb: %d trailing bytes after chunk for %s", len(rest), name)
		}
	}
	if len(payload) != 0 {
		return blockInfo{}, fmt.Errorf("tsdb: %d trailing bytes after last series", len(payload))
	}
	return info, nil
}

// quarantine renames a corrupt block aside so it is never loaded again
// but stays available for forensics.
func (db *DB) quarantine(path string, cause error) {
	db.nQuarantined.Add(1)
	db.cfg.Logger.Warn("tsdb: quarantining corrupt block", "block", filepath.Base(path), "err", cause)
	if err := db.cfg.FS.Rename(path, path+quarantineSx); err != nil {
		db.cfg.Logger.Warn("tsdb: quarantine rename failed", "block", filepath.Base(path), "err", err)
		return
	}
	db.cfg.FS.SyncDir(db.cfg.Dir)
}

// scrubLocked re-reads and re-verifies every tracked block, moving any
// that fail the checksum into quarantine. Callers hold db.mu.
func (db *DB) scrubLocked() {
	kept := db.blocks[:0]
	for _, b := range db.blocks {
		path := filepath.Join(db.cfg.Dir, b.name)
		data, err := db.cfg.FS.ReadFile(path)
		if err == nil {
			_, err = unframeBlock(data)
		}
		if err != nil {
			db.quarantine(path, err)
			continue
		}
		kept = append(kept, b)
	}
	db.blocks = kept
	db.nScrubs.Add(1)
	db.updateBlockGauges()
}

// blockSeqOf extracts the sequence number from a block file name.
func blockSeqOf(name string) (int, bool) {
	base := strings.TrimSuffix(strings.TrimPrefix(name, blockPrefix), blockSuffix)
	i := strings.LastIndexByte(base, '-')
	if i < 0 {
		return 0, false
	}
	seq := 0
	for _, c := range base[i+1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + int(c-'0')
	}
	return seq, true
}
