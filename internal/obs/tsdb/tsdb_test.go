package tsdb

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"penelope/internal/obs"
)

var t0 = time.UnixMilli(1_700_000_000_000)

func memDB(t *testing.T, reg *obs.Registry, interval time.Duration) *DB {
	t.Helper()
	db, err := Open(Config{Registry: reg, Interval: interval})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func TestCounterRateQuery(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("jobs_total", "jobs")
	db := memDB(t, reg, time.Second)
	// 2 jobs per second for 30s.
	for i := 0; i < 30; i++ {
		c.Add(2)
		db.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	res, err := db.Query(Query{Name: "jobs_total", From: t0, To: t0.Add(29 * time.Second), Step: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "counter" || res.Agg != "rate" {
		t.Fatalf("kind/agg = %s/%s, want counter/rate", res.Kind, res.Agg)
	}
	pts := res.Series[0].Points
	if len(pts) < 4 {
		t.Fatalf("got %d rate points, want ≥ 4: %+v", len(pts), pts)
	}
	for _, p := range pts {
		if p.V != 2 {
			t.Fatalf("steady 2/s counter rated %v at %d: %+v", p.V, p.T, pts)
		}
	}

	inc, err := db.Query(Query{Name: "jobs_total", From: t0, To: t0.Add(29 * time.Second), Step: 10 * time.Second, Agg: "increase"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range inc.Series[0].Points {
		if p.V != 20 {
			t.Fatalf("10s increase = %v, want 20", p.V)
		}
	}
}

func TestGaugeAggregations(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("depth", "queue depth")
	db := memDB(t, reg, time.Second)
	for i := 0; i < 10; i++ {
		g.Set(float64(i)) // 0..9
		db.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	end := t0.Add(9 * time.Second)
	for agg, want := range map[string]float64{"last": 9, "min": 1, "max": 9, "avg": 5} {
		res, err := db.Query(Query{Name: "depth", From: t0, To: end, Step: 9 * time.Second, Agg: agg})
		if err != nil {
			t.Fatal(err)
		}
		pts := res.Series[0].Points
		if len(pts) == 0 {
			t.Fatalf("%s: no points", agg)
		}
		got := pts[len(pts)-1].V
		if got != want {
			t.Fatalf("%s over (t0, t0+9s] = %v, want %v", agg, got, want)
		}
	}
}

func TestUnknownSeries(t *testing.T) {
	db := memDB(t, obs.NewRegistry(), time.Second)
	_, err := db.Query(Query{Name: "nope", From: t0, To: t0.Add(time.Second), Step: time.Second})
	if err == nil || !strings.Contains(err.Error(), "no such series") {
		t.Fatalf("query of unknown series: %v", err)
	}
}

// TestDownsampleTiersBracket samples a pseudo-random gauge stream and
// checks every closed tier-1 and tier-2 aggregate against the raw
// stream: min/max/sum/cnt must match the raw points in the window
// exactly, so the window mean always sits inside [min, max].
func TestDownsampleTiersBracket(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("sig", "")
	db := memDB(t, reg, time.Second)
	seed := uint64(42)
	type sample struct {
		t int64
		v float64
	}
	var all []sample
	for i := 0; i < 1000; i++ {
		v := float64(splitmix(&seed)%10_000)/13.0 - 300
		g.Set(v)
		now := t0.Add(time.Duration(i) * time.Second)
		db.Sample(now)
		all = append(all, sample{t: now.UnixMilli(), v: v})
	}
	s := db.series["sig"]
	checkTier := func(name string, r *aggRing, winMs int64) {
		if r.n == 0 {
			t.Fatalf("%s: no aggregates", name)
		}
		for i := 0; i < r.n; i++ {
			a := r.at(i)
			var (
				mn, mx, sum float64
				cnt         uint32
			)
			for _, p := range all {
				if p.t < a.t || p.t >= a.t+winMs {
					continue
				}
				if cnt == 0 {
					mn, mx = p.v, p.v
				} else {
					mn = math.Min(mn, p.v)
					mx = math.Max(mx, p.v)
				}
				sum += p.v
				cnt++
			}
			if cnt != a.cnt || mn != a.min || mx != a.max || sum != a.sum {
				t.Fatalf("%s window @%d: agg{min %v max %v sum %v cnt %d}, raw{%v %v %v %d}",
					name, a.t, a.min, a.max, a.sum, a.cnt, mn, mx, sum, cnt)
			}
			mean := a.sum / float64(a.cnt)
			if mean < a.min || mean > a.max {
				t.Fatalf("%s window @%d: mean %v outside [%v, %v]", name, a.t, mean, a.min, a.max)
			}
		}
	}
	checkTier("tier1", &s.t1, db.win1Ms)
	checkTier("tier2", &s.t2, db.win2Ms)
}

// TestTierFallback: a query whose range predates the raw ring must be
// served from an aggregate tier rather than returning nothing.
func TestTierFallback(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("old", "")
	db, err := Open(Config{Registry: reg, Interval: time.Second, RawPoints: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 400; i++ { // raw ring keeps only the last 32
		g.Set(float64(i))
		db.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	res, err := db.Query(Query{Name: "old", From: t0, To: t0.Add(100 * time.Second), Step: 20 * time.Second, Agg: "max"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series[0].Points) == 0 {
		t.Fatal("query over aged-out range returned no points; tier fallback broken")
	}
}

func TestHistogramQuantileQuery(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("lat_seconds", "", []float64{0.1, 1, 10})
	db := memDB(t, reg, time.Second)
	for i := 0; i < 20; i++ {
		h.Observe(0.5) // all mass in (0.1, 1]
		db.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	res, err := db.Query(Query{Name: "lat_seconds", From: t0, To: t0.Add(19 * time.Second), Step: 5 * time.Second, Quantile: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg != "quantile" || res.Quantile != 0.99 {
		t.Fatalf("agg/quantile = %s/%v", res.Agg, res.Quantile)
	}
	pts := res.Series[0].Points
	if len(pts) == 0 {
		t.Fatal("no quantile points")
	}
	for _, p := range pts {
		if p.V <= 0.1 || p.V > 1 {
			t.Fatalf("p99 = %v at %d, want inside the (0.1, 1] bucket", p.V, p.T)
		}
	}

	rate, err := db.Query(Query{Name: "lat_seconds", From: t0, To: t0.Add(19 * time.Second), Step: 5 * time.Second, Agg: "rate"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rate.Series[0].Points {
		if p.V != 1 {
			t.Fatalf("1-observation/s histogram rated %v", p.V)
		}
	}
	avg, err := db.Query(Query{Name: "lat_seconds", From: t0, To: t0.Add(19 * time.Second), Step: 5 * time.Second, Agg: "avg"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range avg.Series[0].Points {
		if p.V != 0.5 {
			t.Fatalf("avg = %v, want 0.5", p.V)
		}
	}
}

func TestHistogramVecCells(t *testing.T) {
	reg := obs.NewRegistry()
	v := reg.HistogramVec("http_seconds", "", "route", []float64{1, 2})
	db := memDB(t, reg, time.Second)
	for i := 0; i < 5; i++ {
		v.With("/a").Observe(0.5)
		v.With("/b").Observe(1.5)
		db.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	res, err := db.Query(Query{Name: "http_seconds", From: t0, To: t0.Add(4 * time.Second), Step: 2 * time.Second, Agg: "rate"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 || res.Series[0].Value != "/a" || res.Series[1].Value != "/b" {
		t.Fatalf("vec query returned %+v, want cells /a and /b", res.Series)
	}
	one, err := db.Query(Query{Name: "http_seconds", Label: "/b", From: t0, To: t0.Add(4 * time.Second), Step: 2 * time.Second, Agg: "rate"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Series) != 1 || one.Series[0].Value != "/b" {
		t.Fatalf("label-filtered query returned %+v", one.Series)
	}
}

func TestNamesListing(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("b_total", "help b")
	reg.HistogramVec("a_seconds", "", "route", []float64{1, 2}).With("/x").Observe(1)
	db := memDB(t, reg, time.Second)
	names := db.Names()
	if len(names) != 2 || names[0].Name != "a_seconds" || names[1].Name != "b_total" {
		t.Fatalf("Names = %+v", names)
	}
	if names[0].Kind != "histogram" || names[0].Label != "route" ||
		len(names[0].Values) != 1 || names[0].Values[0] != "/x" || len(names[0].Bounds) != 2 {
		t.Fatalf("histogram meta = %+v", names[0])
	}
	if names[1].Kind != "counter" || names[1].Help != "help b" {
		t.Fatalf("counter meta = %+v", names[1])
	}
}

// TestPersistRestartByteIdentical is the acceptance-criteria invariant:
// sample, flush, kill; a rebooted DB over the same directory answers
// the same range query with byte-identical JSON.
func TestPersistRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	clock := func() time.Time { return t0 }
	mkReg := func() (*obs.Registry, *obs.Counter, *obs.Histogram) {
		reg := obs.NewRegistry()
		return reg, reg.Counter("jobs_total", "jobs"), reg.Histogram("lat_seconds", "", []float64{0.1, 1, 10})
	}
	reg, c, h := mkReg()
	db, err := Open(Config{Registry: reg, Interval: time.Second, Dir: dir, FlushEvery: 7, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(7)
	for i := 0; i < 25; i++ {
		c.Add(splitmix(&seed) % 5)
		h.Observe(float64(splitmix(&seed)%200) / 100.0)
		db.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	db.Close() // flushes the tail

	run := func(db *DB) [][]byte {
		t.Helper()
		var outs [][]byte
		for _, q := range []Query{
			{Name: "jobs_total", From: t0, To: t0.Add(24 * time.Second), Step: 4 * time.Second},
			{Name: "lat_seconds", From: t0, To: t0.Add(24 * time.Second), Step: 6 * time.Second, Quantile: 0.95},
		} {
			res, err := db.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, b)
		}
		return outs
	}
	// Reopen over the same directory with a fresh (zeroed) registry: the
	// answers must come from the loaded blocks alone.
	reg2, _, _ := mkReg()
	db2, err := Open(Config{Registry: reg2, Interval: time.Second, Dir: dir, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()

	reg3, c3, h3 := mkReg()
	db3, err := Open(Config{Registry: reg3, Interval: time.Second, Dir: t.TempDir(), FlushEvery: 7, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	seed = 7
	for i := 0; i < 25; i++ {
		c3.Add(splitmix(&seed) % 5)
		h3.Observe(float64(splitmix(&seed)%200) / 100.0)
		db3.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	want, got := run(db3), run(db2)
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("query %d diverged after restart:\nlive:     %s\nrestored: %s", i, want[i], got[i])
		}
	}
	if st := db2.Stats(); st.BlocksLoaded == 0 || st.BlocksQuarantined != 0 {
		t.Fatalf("restart stats = %+v, want loaded blocks and no quarantine", st)
	}
}

func TestQuarantineCorruptBlock(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	c := reg.Counter("x_total", "")
	db, err := Open(Config{Registry: reg, Interval: time.Second, Dir: dir, FlushEvery: 5, Clock: func() time.Time { return t0 }})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ { // two flushes of five samples
		c.Inc()
		db.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	db.Close()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var blocks []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), blockSuffix) {
			blocks = append(blocks, e.Name())
		}
	}
	if len(blocks) != 2 {
		t.Fatalf("have %d blocks, want 2: %v", len(blocks), blocks)
	}
	// Flip one payload byte in the newest block.
	victim := filepath.Join(dir, blocks[1])
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(blockMagic)+8+2] ^= 0xff
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Config{Registry: obs.NewRegistry(), Interval: time.Second, Dir: dir, Clock: func() time.Time { return t0 }})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	st := db2.Stats()
	if st.BlocksLoaded != 1 || st.BlocksQuarantined != 1 {
		t.Fatalf("stats after corrupt reopen = %+v, want 1 loaded / 1 quarantined", st)
	}
	if _, err := os.Stat(victim + quarantineSx); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Fatalf("corrupt block still under its final name: %v", err)
	}
}

func TestBudgetDeletesOldestBlocks(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	c := reg.Counter("x_total", "")
	db, err := Open(Config{Registry: reg, Interval: time.Second, Dir: dir, FlushEvery: 5, Budget: 1, Clock: func() time.Time { return t0 }})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 20; i++ {
		c.Inc()
		db.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	st := db.Stats()
	if st.Blocks != 1 {
		t.Fatalf("blocks on disk = %d, want 1 under a 1-byte budget", st.Blocks)
	}
	if st.BlocksDeleted == 0 {
		t.Fatal("budget enforcement deleted nothing")
	}
}

func TestRetentionExpiresAtBoot(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	c := reg.Counter("x_total", "")
	db, err := Open(Config{Registry: reg, Interval: time.Second, Dir: dir, FlushEvery: 5, Clock: func() time.Time { return t0 }})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Inc()
		db.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	db.Close()
	// Reboot far past retention: everything but the newest block expires.
	future := t0.Add(400 * time.Hour)
	db2, err := Open(Config{Registry: obs.NewRegistry(), Interval: time.Second, Dir: dir, Retention: time.Hour, Clock: func() time.Time { return future }})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if st := db2.Stats(); st.Blocks != 1 || st.BlocksDeleted == 0 {
		t.Fatalf("post-retention stats = %+v, want 1 surviving block", st)
	}
}

func TestScrubQuarantinesBitRot(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	c := reg.Counter("x_total", "")
	db, err := Open(Config{Registry: reg, Interval: time.Second, Dir: dir, FlushEvery: 3, ScrubInterval: time.Minute, Clock: func() time.Time { return t0 }})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 6; i++ {
		c.Inc()
		db.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	ents, _ := os.ReadDir(dir)
	var victim string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), blockSuffix) {
			victim = filepath.Join(dir, e.Name())
			break
		}
	}
	if victim == "" {
		t.Fatal("no block to corrupt")
	}
	data, _ := os.ReadFile(victim)
	data[len(data)-1] ^= 0xff // break the checksum
	os.WriteFile(victim, data, 0o644)
	// Next sample past the scrub interval triggers the pass.
	c.Inc()
	db.Sample(t0.Add(2 * time.Minute))
	st := db.Stats()
	if st.ScrubPasses == 0 || st.BlocksQuarantined != 1 {
		t.Fatalf("scrub stats = %+v, want a pass and 1 quarantined block", st)
	}
}

func TestHistoryReductions(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("req_total", "")
	g := reg.Gauge("gb", "")
	db := memDB(t, reg, time.Second)
	for i := 0; i < 10; i++ {
		c.Add(3)
		g.Set(float64(i) * 2) // slope 2/s
		db.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	now := t0.Add(9 * time.Second)
	if inc, ok := db.Increase("req_total", 20*time.Second, now); !ok || inc != 27 {
		t.Fatalf("Increase = %v, %v; want 27 over 9 deltas of 3", inc, ok)
	}
	if avg, ok := db.Avg("gb", 20*time.Second, now); !ok || avg != 9 {
		t.Fatalf("Avg = %v, %v; want 9 (mean of 0..18)", avg, ok)
	}
	slope, ok := db.Slope("gb", 20*time.Second, now)
	if !ok || math.Abs(slope-2) > 1e-9 {
		t.Fatalf("Slope = %v, %v; want 2.0/s", slope, ok)
	}
	if _, ok := db.Increase("missing", time.Minute, now); ok {
		t.Fatal("Increase on a missing series reported ok")
	}
}

// TestSampleSteadyStateAllocs pins the sampler's hot path at zero heap
// allocations once bindings are resolved.
func TestSampleSteadyStateAllocs(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("a_total", "")
	g := reg.Gauge("b_gauge", "")
	h := reg.Histogram("c_seconds", "", []float64{0.1, 1, 10})
	v := reg.HistogramVec("d_seconds", "", "route", []float64{0.1, 1})
	v.With("/x").Observe(0.5)
	v.With("/y").Observe(2)
	db := memDB(t, reg, time.Second)
	now := t0
	db.Sample(now) // resolve bindings
	allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Set(1)
		h.Observe(0.2)
		now = now.Add(time.Second)
		db.Sample(now)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Sample allocates %v times per run, want 0", allocs)
	}
}
