package tsdb

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"penelope/internal/obs"
	"penelope/internal/store/vfs"
)

// TestCrashMatrixBlockFlush interrupts a block flush at every I/O step
// (plus torn-write variants at every write step) and reboots the DB
// over the surviving tree. The invariants are the same all-or-nothing
// contract the result store proves: no temp litter survives the boot
// scan, nothing is quarantined (a crash between syscalls must never
// leave a torn file under a final block name), and the flushed samples
// are either fully absent or fully present.
func TestCrashMatrixBlockFlush(t *testing.T) {
	type handle struct {
		db *DB
		c  *obs.Counter
	}
	build := func(t *testing.T, dir string, fsys vfs.FS) handle {
		reg := obs.NewRegistry()
		c := reg.Counter("crash_total", "")
		db, err := Open(Config{
			Registry: reg, Interval: time.Second,
			Dir: dir, FS: fsys, FlushEvery: 3,
			Clock: func() time.Time { return t0 },
		})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return handle{db: db, c: c}
	}
	// The op under test: three samples, the third of which flushes.
	op := func(h handle) {
		for i := 0; i < 3; i++ {
			h.c.Inc()
			h.db.Sample(t0.Add(time.Duration(i) * time.Second))
		}
	}

	// Rehearsal: fault-free run to learn the flush's step span and to
	// verify the write discipline (fsync before rename, dir sync after).
	f := vfs.NewFaultFS(vfs.OS{})
	h := build(t, t.TempDir(), f)
	base := f.Steps()
	op(h)
	total := f.Steps()
	if total == base {
		t.Fatal("flush performed no I/O; nothing to crash")
	}
	if err := vfs.VerifyDiscipline(f.Log()); err != nil {
		t.Fatalf("write discipline: %v", err)
	}
	writes := map[int]int{}
	for _, rec := range f.Log() {
		if rec.Step >= base && rec.Op == vfs.OpWrite && rec.N > 1 {
			writes[rec.Step] = rec.N
		}
	}

	type variant struct {
		label string
		arm   func(f *vfs.FaultFS, step int)
	}
	for step := base; step < total; step++ {
		variants := []variant{{"crash", func(f *vfs.FaultFS, s int) { f.CrashAt(s) }}}
		if n := writes[step]; n > 1 {
			variants = append(variants,
				variant{"torn@1", func(f *vfs.FaultFS, s int) { f.CrashAtWrite(s, 1) }},
				variant{fmt.Sprintf("torn@%d", n/2), func(f *vfs.FaultFS, s int) { f.CrashAtWrite(s, n/2) }})
		}
		for _, v := range variants {
			label := fmt.Sprintf("step-%d/%s", step, v.label)
			dir := t.TempDir()
			f := vfs.NewFaultFS(vfs.OS{})
			h := build(t, dir, f)
			v.arm(f, step)
			op(h) // flush failure is swallowed and counted; the crash freezes the tree
			if !f.Crashed() {
				t.Fatalf("%s: crash step never executed", label)
			}

			re, err := Open(Config{
				Registry: obs.NewRegistry(), Interval: time.Second,
				Dir: dir, Clock: func() time.Time { return t0 },
			})
			if err != nil {
				t.Fatalf("%s: reboot failed: %v", label, err)
			}
			st := re.Stats()
			if st.BlocksQuarantined != 0 {
				t.Errorf("%s: reboot quarantined %d blocks; crash must be all-or-nothing", label, st.BlocksQuarantined)
			}
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			for _, e := range ents {
				if strings.HasPrefix(e.Name(), ".tmp-") {
					t.Errorf("%s: temp litter %s survived reboot", label, e.Name())
				}
			}
			// All-or-nothing on content: the counter series either never
			// made it to disk or carries all three samples, bit-exact.
			if s, ok := re.series["crash_total"]; ok {
				if s.raw.n != 3 {
					t.Errorf("%s: rebooted series has %d samples, want 0 (absent) or 3", label, s.raw.n)
				}
				for i := 0; i < s.raw.n; i++ {
					p := s.raw.at(i)
					if p.v != float64(i+1) {
						t.Errorf("%s: sample %d = %v, want %d", label, i, p.v, i+1)
					}
				}
			} else if st.BlocksLoaded != 0 {
				t.Errorf("%s: block loaded but series missing", label)
			}
			re.Close()
		}
	}
}

// TestFlushFailureRetries: a flush that fails with ENOSPC leaves the
// watermarks untouched, so the next flush carries the same samples and
// nothing is lost once the disk recovers.
func TestFlushFailureRetries(t *testing.T) {
	dir := t.TempDir()
	f := vfs.NewFaultFS(vfs.OS{})
	reg := obs.NewRegistry()
	c := reg.Counter("retry_total", "")
	db, err := Open(Config{Registry: reg, Interval: time.Second, Dir: dir, FS: f, FlushEvery: 2,
		Clock: func() time.Time { return t0 }})
	if err != nil {
		t.Fatal(err)
	}
	// Fail the first flush's temp-file open.
	f.FailAt(f.Steps(), vfs.ErrNoSpace)
	c.Inc()
	db.Sample(t0)
	c.Inc()
	db.Sample(t0.Add(time.Second)) // flush #1: fails
	if st := db.Stats(); st.FlushFailures != 1 || st.BlocksWritten != 0 {
		t.Fatalf("after failed flush: %+v", st)
	}
	c.Inc()
	db.Sample(t0.Add(2 * time.Second))
	c.Inc()
	db.Sample(t0.Add(3 * time.Second)) // flush #2: succeeds, carries all 4 samples
	db.Close()

	re, err := Open(Config{Registry: obs.NewRegistry(), Interval: time.Second, Dir: dir,
		Clock: func() time.Time { return t0 }})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	s, ok := re.series["retry_total"]
	if !ok || s.raw.n != 4 {
		t.Fatalf("recovered %v samples, want all 4 despite the failed flush", s)
	}
}
