package tsdb

import (
	"math"
	"testing"
)

// xorshift-style deterministic generator for the property tests.
func splitmix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestChunkRoundTripProperty drives the codec with pseudo-random sample
// streams — integral values, arbitrary float bit patterns (NaN payloads
// included), specials (-0, ±Inf), jittered timestamps — and requires
// decode(encode(s)) to reproduce every timestamp and every value
// bit-exactly with no trailing bytes.
func TestChunkRoundTripProperty(t *testing.T) {
	seed := uint64(0xbeef)
	specials := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1),
		math.Copysign(0, -1), 0, 1 << 60, -(1 << 60), math.MaxFloat64,
	}
	for trial := 0; trial < 500; trial++ {
		n := int(splitmix(&seed) % 60)
		shape := splitmix(&seed) % 4
		pts := make([]point, 0, n)
		tcur := int64(splitmix(&seed) % (1 << 41)) // plausible unix-milli era
		for i := 0; i < n; i++ {
			tcur += int64(splitmix(&seed)%10_000) + 1
			var v float64
			switch shape {
			case 0: // integral (the counter/bucket fast path)
				v = float64(int64(splitmix(&seed)%1_000_000) - 500_000)
			case 1: // arbitrary bit patterns, NaN payloads included
				v = math.Float64frombits(splitmix(&seed))
			case 2: // smooth-ish floats
				v = float64(splitmix(&seed)%100_000) / 7.0
			default: // specials
				v = specials[splitmix(&seed)%uint64(len(specials))]
			}
			pts = append(pts, point{t: tcur, v: v})
		}
		enc := appendChunk(nil, pts)
		var got []point
		rest, err := decodeChunk(enc, func(ts int64, v float64) {
			got = append(got, point{t: ts, v: v})
		})
		if err != nil {
			t.Fatalf("trial %d (shape %d, n %d): decode: %v", trial, shape, n, err)
		}
		if len(rest) != 0 {
			t.Fatalf("trial %d: %d trailing bytes after decode", trial, len(rest))
		}
		if len(got) != len(pts) {
			t.Fatalf("trial %d: decoded %d samples, want %d", trial, len(got), len(pts))
		}
		for i := range pts {
			if got[i].t != pts[i].t {
				t.Fatalf("trial %d sample %d: t=%d, want %d", trial, i, got[i].t, pts[i].t)
			}
			if math.Float64bits(got[i].v) != math.Float64bits(pts[i].v) {
				t.Fatalf("trial %d sample %d: bits %016x, want %016x (v=%v want %v)",
					trial, i, math.Float64bits(got[i].v), math.Float64bits(pts[i].v), got[i].v, pts[i].v)
			}
		}
	}
}

// TestChunkTruncationRejected: every strict prefix of a valid non-empty
// chunk must fail decoding with an error, never panic or succeed.
func TestChunkTruncationRejected(t *testing.T) {
	pts := []point{
		{t: 1_700_000_000_000, v: 1},
		{t: 1_700_000_001_000, v: 2.5},
		{t: 1_700_000_002_000, v: math.NaN()},
		{t: 1_700_000_003_000, v: -7},
	}
	enc := appendChunk(nil, pts)
	for cut := 0; cut < len(enc); cut++ {
		_, err := decodeChunk(enc[:cut], func(int64, float64) {})
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(enc))
		}
	}
}

// TestChunkRegularCadenceCompact pins the design point: a regular
// sampling interval costs ~1 byte per timestamp after the first two,
// and a flat counter ~1 byte per value.
func TestChunkRegularCadenceCompact(t *testing.T) {
	pts := make([]point, 120)
	for i := range pts {
		pts[i] = point{t: 1_700_000_000_000 + int64(i)*10_000, v: float64(500 + i)}
	}
	enc := appendChunk(nil, pts)
	if len(enc) > 2*len(pts)+20 {
		t.Fatalf("regular 120-sample chunk is %d bytes; want ≲ %d", len(enc), 2*len(pts)+20)
	}
}

func TestEmptyChunk(t *testing.T) {
	enc := appendChunk(nil, nil)
	rest, err := decodeChunk(enc, func(int64, float64) { t.Fatal("emit on empty chunk") })
	if err != nil || len(rest) != 0 {
		t.Fatalf("empty chunk: rest=%d err=%v", len(rest), err)
	}
}
