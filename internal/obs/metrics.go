// Package obs is the dependency-free observability core under the
// Penelope serving stack: atomic counters and gauges, fixed-bucket
// log-spaced histograms with a lock-free hot path, a named metric
// registry with Prometheus text-format exposition, a lightweight
// per-job span tracer with bounded in-memory rings, and structured
// logging helpers on log/slog.
//
// Everything is nil-safe: a nil *Counter, *Gauge, *Histogram, *Trace
// or *Tracer turns every method into a no-op, so instrumented packages
// (store, fleetops) cost nothing when constructed without instruments
// — tests and benchmarks that build components directly are untouched.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 metric (stored as float bits, so Set and
// Value are single atomic operations).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments the gauge by delta (CAS loop; gauges are not hot-path
// metrics).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with inclusive upper bounds
// (Prometheus `le` semantics) plus an implicit +Inf overflow bucket.
// Observe is lock-free: one atomic bucket increment and one CAS-loop
// float add for the sum, so it is safe on hot paths and under
// concurrent Snapshot.
type Histogram struct {
	bounds  []float64 // sorted inclusive upper bounds; +Inf implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram over the given sorted upper bounds.
// Most callers want Registry.Histogram instead, which also names and
// exposes it.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v is the inclusive bucket; beyond every bound it
	// lands in the +Inf overflow slot.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// HistogramSnapshot is a point-in-time copy of a histogram: per-bucket
// (non-cumulative) counts aligned with Bounds plus the overflow count
// in the final slot.
type HistogramSnapshot struct {
	Bounds []float64 // inclusive upper bounds; Counts has one extra +Inf slot
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Bounds returns the sorted inclusive upper bounds. The slice is the
// histogram's own — callers must not mutate it.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// ReadInto copies the per-bucket (non-cumulative) counts into dst —
// which must have len(Bounds())+1 slots — and returns the total count
// and sum: Snapshot without the allocation, for samplers on a cadence.
func (h *Histogram) ReadInto(dst []uint64) (count uint64, sum float64) {
	if h == nil {
		return 0, 0
	}
	sum = math.Float64frombits(h.sumBits.Load())
	for i := range h.counts {
		c := h.counts[i].Load()
		dst[i] = c
		count += c
	}
	return count, sum
}

// Snapshot copies the histogram state. Concurrent Observe calls may or
// may not be included; counts and sum are each individually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// ExpBuckets returns n log-spaced bucket bounds: start, start*factor,
// start*factor^2, ... — the shape latency and size distributions want.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := 0; i < n; i++ {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets spans 1µs to ~67s in powers of two — wide enough for
// HTTP handlers and multi-second fleet simulations alike.
func LatencyBuckets() []float64 { return ExpBuckets(1e-6, 2, 27) }

// ByteBuckets spans 64B to ~1GB in powers of four — result payloads,
// checkpoints and store frames.
func ByteBuckets() []float64 { return ExpBuckets(64, 4, 13) }

// maxLabelValues bounds a HistogramVec's label cardinality; values past
// it aggregate under "~other" so a hostile label can never grow the
// registry without bound.
const maxLabelValues = 64

// HistogramVec is a histogram family partitioned by one label.
type HistogramVec struct {
	label  string
	bounds []float64
	ver    *atomic.Uint64 // owning registry's version; bumped on new cells

	mu   sync.Mutex
	byLV map[string]*Histogram
}

// With returns the histogram for one label value, creating it on first
// use. Past maxLabelValues distinct values, observations aggregate
// under the "~other" cell.
func (v *HistogramVec) With(labelValue string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.byLV[labelValue]; ok {
		return h
	}
	if len(v.byLV) >= maxLabelValues {
		labelValue = "~other"
		if h, ok := v.byLV[labelValue]; ok {
			return h
		}
	}
	h := NewHistogram(v.bounds)
	v.byLV[labelValue] = h
	if v.ver != nil {
		v.ver.Add(1)
	}
	return h
}

// VecEntry is one (label value, histogram) cell of a HistogramVec.
type VecEntry struct {
	Value string
	Hist  *Histogram
}

// Entries appends one entry per label value, sorted by value, to dst
// and returns it. Callers reuse dst across calls to avoid allocating.
func (v *HistogramVec) Entries(dst []VecEntry) []VecEntry {
	if v == nil {
		return dst
	}
	v.mu.Lock()
	start := len(dst)
	for lv, h := range v.byLV {
		dst = append(dst, VecEntry{Value: lv, Hist: h})
	}
	v.mu.Unlock()
	s := dst[start:]
	sort.Slice(s, func(i, j int) bool { return s[i].Value < s[j].Value })
	return dst
}

// snapshot returns the label values in sorted order with their
// histograms' snapshots.
func (v *HistogramVec) snapshot() ([]string, []HistogramSnapshot) {
	v.mu.Lock()
	values := make([]string, 0, len(v.byLV))
	for lv := range v.byLV {
		values = append(values, lv)
	}
	sort.Strings(values)
	hists := make([]HistogramSnapshot, len(values))
	for i, lv := range values {
		hists[i] = v.byLV[lv].Snapshot()
	}
	v.mu.Unlock()
	return values, hists
}

// kind is the exposition type of a registered family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// family is one named metric family in a registry.
type family struct {
	name, help string
	kind       kind
	labels     []Label // constant labels (GaugeConst); nil for everything else

	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
	vec       *HistogramVec
}

// Registry names and exposes metrics. Each server owns its own
// registry (no global state), so tests and multi-server processes
// never collide on registration.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	// version moves whenever the family set — or any vec's label-value
	// set — changes, so samplers can cache per-family bindings and
	// rebuild them only when the registry actually grew.
	version atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName enforces the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// register adds a family, panicking on an invalid or duplicate name —
// both are programmer errors worth failing loudly at startup.
func (r *Registry) register(f *family) {
	if !validName(f.name) {
		panic("obs: invalid metric name " + f.name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[f.name]; ok {
		panic("obs: duplicate metric " + f.name)
	}
	r.families[f.name] = f
	r.version.Add(1)
}

// Version is the registry's change counter: it moves when a family is
// registered or a vec gains a label value. Samplers snapshot it, cache
// their bindings, and rebuild only when it moves — the steady state
// allocates nothing.
func (r *Registry) Version() uint64 { return r.version.Load() }

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for counters that already live
// elsewhere (the service's job counters).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(&family{name: name, help: help, kind: kindCounter, counterFn: fn})
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindGauge, gaugeFn: fn})
}

// Histogram registers and returns a new histogram over bounds (nil
// bounds use LatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets()
	}
	h := NewHistogram(bounds)
	r.register(&family{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// HistogramVec registers and returns a histogram family partitioned by
// one label (nil bounds use LatencyBuckets).
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if bounds == nil {
		bounds = LatencyBuckets()
	}
	if !validName(label) {
		panic("obs: invalid label name " + label)
	}
	v := &HistogramVec{label: label, bounds: bounds, ver: &r.version, byLV: make(map[string]*Histogram)}
	r.register(&family{name: name, help: help, kind: kindHistogram, vec: v})
	return v
}

// sorted returns the registered families ordered by name, so the
// exposition is deterministic.
func (r *Registry) sorted() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
