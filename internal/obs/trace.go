package obs

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// span is one timed segment of a trace.
type span struct {
	name  string
	start time.Time
	end   time.Time // zero while the span is open
	attrs map[string]string
}

// Trace is a sequence of contiguous spans for one unit of work (a job,
// a store operation, a fleet tick). Phase transitions close the current
// span and open the next at the same instant, so a finished trace is
// monotonic and gap-free by construction.
type Trace struct {
	id        string
	component string
	start     time.Time

	mu    sync.Mutex
	spans []span
	done  bool
	end   time.Time
}

// Phase ends the current span and starts a new one named name at the
// same timestamp. No-op after Finish.
func (t *Trace) Phase(name string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	if n := len(t.spans); n > 0 && t.spans[n-1].end.IsZero() {
		t.spans[n-1].end = now
	}
	t.spans = append(t.spans, span{name: name, start: now})
}

// Attr attaches a key/value to the current (most recent) span.
func (t *Trace) Attr(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.spans)
	if n == 0 {
		return
	}
	if t.spans[n-1].attrs == nil {
		t.spans[n-1].attrs = make(map[string]string, 2)
	}
	t.spans[n-1].attrs[key] = value
}

// Finish closes the current span and marks the trace complete.
// Idempotent.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	if n := len(t.spans); n > 0 && t.spans[n-1].end.IsZero() {
		t.spans[n-1].end = now
	}
	t.done = true
	t.end = now
}

// SpanSnapshot is one span rendered for the trace API: start as a
// nanosecond offset from the trace start, so consumers see monotonic,
// gap-free segments without wall-clock skew.
type SpanSnapshot struct {
	Name       string            `json:"name"`
	StartNS    int64             `json:"start_ns"`
	DurationNS int64             `json:"duration_ns"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// TraceSnapshot is a point-in-time copy of a trace for the trace API.
type TraceSnapshot struct {
	ID         string         `json:"trace_id"`
	Component  string         `json:"component"`
	Start      time.Time      `json:"start"`
	Done       bool           `json:"done"`
	DurationNS int64          `json:"duration_ns"`
	Spans      []SpanSnapshot `json:"spans"`
}

// snapshot copies the trace. Open spans (and an unfinished trace) are
// rendered as extending to now.
func (t *Trace) snapshot() TraceSnapshot {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TraceSnapshot{
		ID:        t.id,
		Component: t.component,
		Start:     t.start,
		Done:      t.done,
		Spans:     make([]SpanSnapshot, 0, len(t.spans)),
	}
	end := t.end
	if !t.done {
		end = now
	}
	s.DurationNS = end.Sub(t.start).Nanoseconds()
	for _, sp := range t.spans {
		spEnd := sp.end
		if spEnd.IsZero() {
			spEnd = now
		}
		ss := SpanSnapshot{
			Name:       sp.name,
			StartNS:    sp.start.Sub(t.start).Nanoseconds(),
			DurationNS: spEnd.Sub(sp.start).Nanoseconds(),
		}
		if len(sp.attrs) > 0 {
			ss.Attrs = make(map[string]string, len(sp.attrs))
			for k, v := range sp.attrs {
				ss.Attrs[k] = v
			}
		}
		s.Spans = append(s.Spans, ss)
	}
	return s
}

// Tracer records traces in bounded rings: one FIFO index by trace ID
// (for GET /v1/jobs/{id}/trace) and one ring per component (for
// GET /v1/debug/traces). Memory is bounded regardless of traffic.
type Tracer struct {
	idCap   int
	ringCap int

	mu      sync.Mutex
	byID    map[string]*Trace
	idOrder []string
	rings   map[string][]*Trace
	seq     uint64
}

// Default ring sizes: enough history to debug a burst without letting
// the tracer grow past a few MB.
const (
	defaultIDCap   = 4096
	defaultRingCap = 256
)

// NewTracer returns a tracer with the default capacities.
func NewTracer() *Tracer {
	return &Tracer{
		idCap:   defaultIDCap,
		ringCap: defaultRingCap,
		byID:    make(map[string]*Trace),
		rings:   make(map[string][]*Trace),
	}
}

// Begin starts a trace for id under component, opening its first span
// named firstPhase. The trace is immediately visible in both rings.
func (tr *Tracer) Begin(id, component, firstPhase string) *Trace {
	if tr == nil {
		return nil
	}
	now := time.Now()
	t := &Trace{
		id:        id,
		component: component,
		start:     now,
		spans:     []span{{name: firstPhase, start: now}},
	}
	tr.mu.Lock()
	// A re-submitted ID (e.g. a resumed job) replaces its index entry in
	// place; the stale pointer ages out of the component ring naturally.
	if _, ok := tr.byID[id]; !ok {
		tr.idOrder = append(tr.idOrder, id)
		if len(tr.idOrder) > tr.idCap {
			evict := tr.idOrder[0]
			tr.idOrder = tr.idOrder[1:]
			delete(tr.byID, evict)
		}
	}
	tr.byID[id] = t
	tr.pushRingLocked(component, t)
	tr.mu.Unlock()
	return t
}

// Record adds an already-measured single-span trace to a component ring
// — the one-shot form for store I/O, fleet ticks, alert deliveries and
// scrub passes, where the caller has start and duration in hand.
func (tr *Tracer) Record(component, name string, start time.Time, d time.Duration, attrs map[string]string) {
	if tr == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	end := start.Add(d)
	tr.mu.Lock()
	tr.seq++
	id := component + "-" + strconv.FormatUint(tr.seq, 10)
	t := &Trace{
		id:        id,
		component: component,
		start:     start,
		done:      true,
		end:       end,
		spans:     []span{{name: name, start: start, end: end, attrs: attrs}},
	}
	tr.pushRingLocked(component, t)
	tr.mu.Unlock()
}

// pushRingLocked appends to a component ring, evicting the oldest entry
// past capacity. Caller holds tr.mu.
func (tr *Tracer) pushRingLocked(component string, t *Trace) {
	ring := append(tr.rings[component], t)
	if len(ring) > tr.ringCap {
		ring = ring[1:]
	}
	tr.rings[component] = ring
}

// Get returns the trace recorded under id.
func (tr *Tracer) Get(id string) (TraceSnapshot, bool) {
	if tr == nil {
		return TraceSnapshot{}, false
	}
	tr.mu.Lock()
	t, ok := tr.byID[id]
	tr.mu.Unlock()
	if !ok {
		return TraceSnapshot{}, false
	}
	return t.snapshot(), true
}

// Recent returns up to n most-recent traces for a component, newest
// first. n <= 0 means the whole ring.
func (tr *Tracer) Recent(component string, n int) []TraceSnapshot {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	ring := tr.rings[component]
	if n <= 0 || n > len(ring) {
		n = len(ring)
	}
	picked := make([]*Trace, n)
	for i := 0; i < n; i++ {
		picked[i] = ring[len(ring)-1-i]
	}
	tr.mu.Unlock()
	out := make([]TraceSnapshot, n)
	for i, t := range picked {
		out[i] = t.snapshot()
	}
	return out
}

// Components returns the component names with recorded traces, sorted.
func (tr *Tracer) Components() []string {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	out := make([]string, 0, len(tr.rings))
	for c := range tr.rings {
		out = append(out, c)
	}
	tr.mu.Unlock()
	sort.Strings(out)
	return out
}
