package obs

import (
	"math"
	"testing"
)

func TestQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// 10 observations uniformly in (0,1]: every quantile interpolates
	// inside the first bucket, whose lower edge is 0.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 0.5 {
		t.Fatalf("p50 of first-bucket mass = %v, want 0.5 (interpolated)", got)
	}
	if got := s.Quantile(1.0); got != 1.0 {
		t.Fatalf("p100 of first-bucket mass = %v, want the bucket bound 1", got)
	}

	// Mass split across buckets: 5 in (1,2], 5 in (2,4]. The median sits
	// exactly at the shared edge, p75 halfway into the (2,4] bucket.
	h2 := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 5; i++ {
		h2.Observe(1.5)
		h2.Observe(3)
	}
	s2 := h2.Snapshot()
	if got := s2.Quantile(0.5); got != 2 {
		t.Fatalf("p50 = %v, want 2", got)
	}
	if got := s2.Quantile(0.75); got != 3 {
		t.Fatalf("p75 = %v, want 3", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Snapshot().Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("quantile of empty histogram = %v, want NaN", got)
	}
	// Overflow-bucket mass reports the highest finite bound.
	h.Observe(100)
	if got := h.Snapshot().Quantile(0.99); got != 2 {
		t.Fatalf("quantile of overflow mass = %v, want highest bound 2", got)
	}
	if got := h.Snapshot().Quantile(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("quantile(NaN) = %v, want NaN", got)
	}
	if got := h.Snapshot().Quantile(-0.1); !math.IsInf(got, -1) {
		t.Fatalf("quantile(-0.1) = %v, want -Inf", got)
	}
	if got := h.Snapshot().Quantile(1.5); !math.IsInf(got, 1) {
		t.Fatalf("quantile(1.5) = %v, want +Inf", got)
	}
}

func TestHistogramSummaries(t *testing.T) {
	r := NewRegistry()
	plain := r.Histogram("zz_plain_seconds", "plain", []float64{1, 2, 4})
	vec := r.HistogramVec("aa_vec_seconds", "vec", "route", []float64{1, 2, 4})
	r.Counter("a_counter_total", "not a histogram")
	plain.Observe(1.5)
	plain.Observe(1.5)
	vec.With("b").Observe(0.5)
	vec.With("a").Observe(3)

	sums := r.HistogramSummaries()
	if len(sums) != 3 {
		t.Fatalf("got %d summaries, want 3: %+v", len(sums), sums)
	}
	// Sorted by name then label value: aa_vec{a}, aa_vec{b}, zz_plain.
	if sums[0].Name != "aa_vec_seconds" || sums[0].Value != "a" || sums[0].Label != "route" {
		t.Fatalf("summary[0] = %+v, want aa_vec_seconds{route=a}", sums[0])
	}
	if sums[1].Value != "b" {
		t.Fatalf("summary[1] = %+v, want label value b", sums[1])
	}
	if sums[2].Name != "zz_plain_seconds" || sums[2].Count != 2 || sums[2].Sum != 3 {
		t.Fatalf("summary[2] = %+v, want zz_plain_seconds count=2 sum=3", sums[2])
	}
	if sums[2].P50 != 1.5 { // rank 1 of 2 in bucket (1,2]: 1 + (2-1)*(1/2)
		t.Fatalf("plain p50 = %v, want 1.5", sums[2].P50)
	}
	// Empty cells must summarize to zeros, not NaN (JSON encodability).
	r2 := NewRegistry()
	r2.Histogram("empty_seconds", "", nil)
	es := r2.HistogramSummaries()
	if len(es) != 1 || es[0].P99 != 0 {
		t.Fatalf("empty histogram summary = %+v, want zero percentiles", es)
	}
}
