package obs

import (
	"strings"
	"testing"
)

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r, BuildInfo{Version: "v1.2.3", GoVersion: "go1.24.0", Revision: "abc123"})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `penelope_build_info{goversion="go1.24.0",revision="abc123",version="v1.2.3"} 1` + "\n"
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing %q:\n%s", want, out)
	}
	if !strings.Contains(out, "# TYPE penelope_build_info gauge\n") {
		t.Fatalf("exposition missing TYPE line:\n%s", out)
	}
}

func TestReadBuildInfo(t *testing.T) {
	bi := ReadBuildInfo()
	if bi.GoVersion == "" {
		t.Fatal("ReadBuildInfo returned empty GoVersion")
	}
	if bi.Version == "" || bi.Revision == "" {
		t.Fatalf("ReadBuildInfo left fields empty: %+v", bi)
	}
}

// TestConstLabelEscaping pins the exposition escaping for label values
// carrying backslashes, double quotes and newlines.
func TestConstLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeConst("escape_info", "tricky values", []Label{
		{Name: "backslash", Value: `a\b`},
		{Name: "quote", Value: `say "hi"`},
		{Name: "newline", Value: "line1\nline2"},
	}, 1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `escape_info{backslash="a\\b",quote="say \"hi\"",newline="line1\nline2"} 1` + "\n"
	if !strings.Contains(out, want) {
		t.Fatalf("escaped sample line wrong.\nwant: %s got:\n%s", want, out)
	}
}

func TestGaugeConstRejectsBadLabelName(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("GaugeConst accepted an invalid label name")
		}
	}()
	r.GaugeConst("x_info", "", []Label{{Name: "bad-name", Value: "v"}}, 1)
}
