package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4), families sorted by name,
// histogram buckets cumulative with a trailing +Inf.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sorted() {
		writeHeader(bw, f)
		switch f.kind {
		case kindCounter:
			v := uint64(0)
			if f.counter != nil {
				v = f.counter.Value()
			} else if f.counterFn != nil {
				v = f.counterFn()
			}
			bw.WriteString(f.name)
			writeConstLabels(bw, f.labels)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(v, 10))
			bw.WriteByte('\n')
		case kindGauge:
			v := 0.0
			if f.gauge != nil {
				v = f.gauge.Value()
			} else if f.gaugeFn != nil {
				v = f.gaugeFn()
			}
			bw.WriteString(f.name)
			writeConstLabels(bw, f.labels)
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(v))
			bw.WriteByte('\n')
		case kindHistogram:
			if f.hist != nil {
				writeHistogram(bw, f.name, "", "", f.hist.Snapshot())
			} else if f.vec != nil {
				values, snaps := f.vec.snapshot()
				for i, lv := range values {
					writeHistogram(bw, f.name, f.vec.label, lv, snaps[i])
				}
			}
		}
	}
	return bw.Flush()
}

// writeHeader emits the # HELP and # TYPE comment lines.
func writeHeader(bw *bufio.Writer, f *family) {
	if f.help != "" {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteByte('\n')
	}
	bw.WriteString("# TYPE ")
	bw.WriteString(f.name)
	switch f.kind {
	case kindCounter:
		bw.WriteString(" counter\n")
	case kindGauge:
		bw.WriteString(" gauge\n")
	case kindHistogram:
		bw.WriteString(" histogram\n")
	}
}

// writeHistogram emits cumulative _bucket lines, then _sum and _count.
// label/labelValue are empty for plain histograms.
func writeHistogram(bw *bufio.Writer, name, label, labelValue string, s HistogramSnapshot) {
	cum := uint64(0)
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		writeBucket(bw, name, label, labelValue, formatFloat(bound), cum)
	}
	writeBucket(bw, name, label, labelValue, "+Inf", s.Count)

	bw.WriteString(name)
	bw.WriteString("_sum")
	writeLabels(bw, label, labelValue, "")
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(s.Sum))
	bw.WriteByte('\n')

	bw.WriteString(name)
	bw.WriteString("_count")
	writeLabels(bw, label, labelValue, "")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(s.Count, 10))
	bw.WriteByte('\n')
}

func writeBucket(bw *bufio.Writer, name, label, labelValue, le string, cum uint64) {
	bw.WriteString(name)
	bw.WriteString("_bucket")
	writeLabels(bw, label, labelValue, le)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(cum, 10))
	bw.WriteByte('\n')
}

// writeLabels writes a {label="value",le="bound"} block, omitting empty
// parts; writes nothing when both are absent.
func writeLabels(bw *bufio.Writer, label, labelValue, le string) {
	if label == "" && le == "" {
		return
	}
	bw.WriteByte('{')
	if label != "" {
		bw.WriteString(label)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(labelValue))
		bw.WriteByte('"')
		if le != "" {
			bw.WriteByte(',')
		}
	}
	if le != "" {
		bw.WriteString(`le="`)
		bw.WriteString(le)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

// writeConstLabels renders a {name="value",...} block for a family's
// constant labels (penelope_build_info); values get full exposition
// escaping.
func writeConstLabels(bw *bufio.Writer, labels []Label) {
	if len(labels) == 0 {
		return
	}
	bw.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(l.Name)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(l.Value))
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

// formatFloat renders a float the way Prometheus clients expect:
// shortest round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a help string: backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
