package obs

import (
	"math"
	"sort"
)

// Quantile estimates the q-th quantile (0 < q <= 1) of the observed
// distribution from the bucket counts, interpolating linearly inside
// the containing bucket — the same estimator Prometheus's
// histogram_quantile applies to the exposition buckets, so the server's
// own percentiles and a scraping Prometheus agree. An empty histogram
// (or NaN q) reports NaN; values landing in the +Inf overflow bucket
// report the highest finite bound, which is the best upper estimate the
// bucket layout can give.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		return math.Inf(-1)
	}
	if q > 1 {
		return math.Inf(1)
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, bound := range s.Bounds {
		prev := cum
		cum += s.Counts[i]
		if s.Counts[i] == 0 || float64(cum) < rank {
			continue
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		frac := (rank - float64(prev)) / float64(s.Counts[i])
		return lower + (bound-lower)*frac
	}
	// The rank lands in the +Inf overflow bucket.
	if len(s.Bounds) > 0 {
		return s.Bounds[len(s.Bounds)-1]
	}
	return math.NaN()
}

// HistogramSummary is the JSON-facing digest of one histogram cell:
// count, sum and interpolated p50/p95/p99, so consumers stop re-deriving
// percentiles from raw buckets by hand. Percentiles of an empty cell
// are 0 (NaN is not JSON-encodable and an empty distribution has no
// meaningful percentile anyway).
type HistogramSummary struct {
	Name  string  `json:"name"`
	Label string  `json:"label,omitempty"`
	Value string  `json:"value,omitempty"`
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// summarize digests one snapshot into a HistogramSummary.
func summarize(name, label, value string, s HistogramSnapshot) HistogramSummary {
	h := HistogramSummary{Name: name, Label: label, Value: value, Count: s.Count, Sum: s.Sum}
	if s.Count > 0 {
		h.P50 = s.Quantile(0.50)
		h.P95 = s.Quantile(0.95)
		h.P99 = s.Quantile(0.99)
	}
	return h
}

// HistogramSummaries digests every registered histogram family — vec
// cells flattened, ordered by family name then label value — for the
// JSON metrics payload.
func (r *Registry) HistogramSummaries() []HistogramSummary {
	var out []HistogramSummary
	for _, f := range r.sorted() {
		if f.kind != kindHistogram {
			continue
		}
		switch {
		case f.hist != nil:
			out = append(out, summarize(f.name, "", "", f.hist.Snapshot()))
		case f.vec != nil:
			values, snaps := f.vec.snapshot()
			for i, lv := range values {
				out = append(out, summarize(f.name, f.vec.label, lv, snaps[i]))
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Value < out[j].Value
	})
	return out
}
