package service

import (
	"sync"
	"testing"
	"time"
)

// TestFairPoolRoundRobin floods one client's queue, then enqueues a
// single job from a second client, and requires the single job to run
// next — not behind the flood — because workers drain clients
// round-robin rather than FIFO.
func TestFairPoolRoundRobin(t *testing.T) {
	p := newFairPool(1, 64)
	defer p.close()

	gate := make(chan struct{})
	var mu sync.Mutex
	var order []string
	record := func(who string) func() {
		return func() {
			<-gate
			mu.Lock()
			order = append(order, who)
			mu.Unlock()
		}
	}

	// The worker picks up the first flood job and blocks on the gate;
	// everything enqueued after that sits in the queues.
	if err := p.submit("flood", record("flood")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return p.queueDepth() == 0 })
	for i := 0; i < 10; i++ {
		if err := p.submit("flood", record("flood")); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.submit("polite", record("polite")); err != nil {
		t.Fatal(err)
	}
	close(gate)
	waitFor(t, func() bool { return p.queueDepth() == 0 })
	p.close()

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 12 {
		t.Fatalf("ran %d tasks, want 12", len(order))
	}
	// The polite client's one job must run within the first round of
	// turns after the in-flight flood job, not behind the whole backlog.
	pos := -1
	for i, who := range order {
		if who == "polite" {
			pos = i
		}
	}
	if pos > 2 {
		t.Errorf("polite client's job ran at position %d behind the flood (order %v)", pos, order)
	}
}

// TestFairPoolBounds checks the depth bound and the shutdown error.
func TestFairPoolBounds(t *testing.T) {
	p := newFairPool(1, 2)
	gate := make(chan struct{})
	block := func() { <-gate }
	if err := p.submit("a", block); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return p.queueDepth() == 0 })
	if err := p.submit("a", block); err != nil {
		t.Fatal(err)
	}
	if err := p.submit("b", block); err != nil {
		t.Fatal(err)
	}
	if err := p.submit("c", func() {}); err != errQueueFull {
		t.Fatalf("overflow submit: err = %v, want errQueueFull", err)
	}
	close(gate)
	p.close()
	if err := p.submit("a", func() {}); err != errShuttingDown {
		t.Fatalf("submit after close: err = %v, want errShuttingDown", err)
	}
}

// TestRateLimiterBuckets drives the token bucket with a fake clock:
// burst spends, refill restores, and clients do not share buckets.
func TestRateLimiterBuckets(t *testing.T) {
	l := newRateLimiter(2, 3)
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if !l.allow("a", 1) {
			t.Fatalf("burst spend %d refused", i)
		}
	}
	if l.allow("a", 1) {
		t.Fatal("allowed past burst without refill")
	}
	if !l.allow("b", 1) {
		t.Fatal("client b blocked by client a's empty bucket")
	}
	if wait := l.retryAfter("a", 1); wait <= 0 || wait > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s] at 2 tokens/s", wait)
	}

	now = now.Add(time.Second) // refills 2 tokens
	if !l.allow("a", 2) {
		t.Fatal("refill did not restore tokens")
	}
	if l.allow("a", 1) {
		t.Fatal("allowed more than the refill granted")
	}

	// Disabled limiter admits everything.
	open := newRateLimiter(0, 0)
	for i := 0; i < 100; i++ {
		if !open.allow("a", 1000) {
			t.Fatal("disabled limiter refused")
		}
	}
}

// TestBackoffController checks the shedding thresholds and the
// Retry-After clamp.
func TestBackoffController(t *testing.T) {
	b := newBackoffController(0.75)
	if !b.admit(10, 100) {
		t.Error("admission refused below high water")
	}
	if b.admit(100, 100) {
		t.Error("admission granted at a full queue")
	}
	if got := b.shedCount(); got != 1 {
		t.Errorf("shed = %d, want 1", got)
	}
	// Between high water and full, admission is probabilistic; over many
	// trials both outcomes must occur.
	admitted, refused := 0, 0
	for i := 0; i < 500; i++ {
		if b.admit(90, 100) {
			admitted++
		} else {
			refused++
		}
	}
	if admitted == 0 || refused == 0 {
		t.Errorf("progressive shedding degenerate: %d admitted, %d refused", admitted, refused)
	}

	b.observe(2 * time.Second)
	if got := b.retryAfter(9, 2); got < 5*time.Second || got > 20*time.Second {
		t.Errorf("retryAfter(9 deep, 2 workers, ~2s svc) = %v, want ~10s", got)
	}
	if got := b.retryAfter(0, 8); got < time.Second {
		t.Errorf("retryAfter floor violated: %v", got)
	}
	b.observe(10000 * time.Second)
	if got := b.retryAfter(1000, 1); got != 300*time.Second {
		t.Errorf("retryAfter ceiling violated: %v", got)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
