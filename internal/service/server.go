package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"

	"penelope/internal/experiments"
)

// Runner executes one experiment. The default runs the registry driver;
// tests substitute instrumented runners to count and gate simulations.
type Runner func(experiment string, o experiments.Options) (experiments.Result, error)

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrent simulations (default GOMAXPROCS). Each
	// experiment driver already fans its own sweeps out over
	// pipeline.RunBatch, so a small pool keeps the machine busy without
	// oversubscribing it.
	Workers int
	// QueueDepth bounds queued leader jobs (default 256). Submissions
	// beyond it are rejected with 503 rather than buffered without
	// bound.
	QueueDepth int
	// RetainJobs bounds how many finished (done/failed) jobs stay
	// pollable (default 4096). The oldest are evicted first; their
	// results remain fetchable through the content-addressed cache, so
	// eviction only limits how long /v1/jobs/{id} answers for a
	// long-finished job.
	RetainJobs int
	// Runner overrides experiment execution (tests). Nil runs the
	// registry.
	Runner Runner
}

// Server is the experiment service: it validates requests against the
// experiments registry, deduplicates them through the content-addressed
// cache, and executes cache leaders on the worker pool.
type Server struct {
	cfg   Config
	cache *Cache
	pool  *pool

	mu       sync.Mutex
	jobs     map[string]*Job
	terminal []string // finished job ids, oldest first, for eviction
	nextID   uint64

	done     uint64 // jobs finished successfully (cumulative)
	failed   uint64 // jobs finished with an error (cumulative)
	rejected uint64 // submissions dropped because the queue was full
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 4096
	}
	if cfg.Runner == nil {
		cfg.Runner = func(experiment string, o experiments.Options) (experiments.Result, error) {
			return experiments.Run(experiment, o)
		}
	}
	return &Server{
		cfg:   cfg,
		cache: NewCache(),
		pool:  newPool(cfg.Workers, cfg.QueueDepth),
		jobs:  make(map[string]*Job),
	}
}

// Workers returns the worker pool size.
func (s *Server) Workers() int { return s.cfg.Workers }

// Close drains the queue and stops the workers.
func (s *Server) Close() { s.pool.close() }

// submit registers a job for (experiment, o) and routes it through the
// cache: completed entries finish the job immediately, in-flight
// entries attach a waiter, and new keys enqueue a leader on the pool.
func (s *Server) submit(experiment string, o experiments.Options) (*Job, error) {
	spec, ok := experiments.Lookup(experiment)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q (have %s)", experiment, experiments.IDList())
	}
	// Canonicalize to the fields the driver consumes (defaults for
	// options-free drivers, fleet knobs dropped for trace-only ones) so
	// every spelling of the same simulation shares one cache entry.
	o = spec.CanonicalOptions(o)
	key := ResultKey(experiment, o)

	s.mu.Lock()
	s.nextID++
	job := &Job{
		ID:         fmt.Sprintf("job-%d", s.nextID),
		Experiment: experiment,
		Options:    o,
		ResultKey:  key,
		State:      StateQueued,
	}
	s.jobs[job.ID] = job
	s.mu.Unlock()

	entry, leader, ready := s.cache.Acquire(key)
	switch {
	case ready:
		// Served from cache: the payload is resident, the job is done
		// before the response is written.
		_, err := entry.Wait()
		s.finish(job, err, true)
	case !leader:
		// In-flight dedup: share the running simulation's outcome.
		s.setCacheHit(job)
		go func() {
			_, err := entry.Wait()
			s.finish(job, err, true)
		}()
	default:
		if !s.pool.submit(func() { s.runJob(job, entry) }) {
			s.cache.Abandon(entry, "job queue full")
			s.mu.Lock()
			s.rejected++
			s.mu.Unlock()
			s.finish(job, errQueueFull, false)
			return job, errQueueFull
		}
	}
	return job, nil
}

// errQueueFull distinguishes a saturated pool from a bad request.
var errQueueFull = fmt.Errorf("service: job queue full")

// runJob executes a leader job and completes its cache entry.
func (s *Server) runJob(job *Job, entry *Entry) {
	s.mu.Lock()
	job.State = StateRunning
	s.mu.Unlock()

	res, err := s.cfg.Runner(job.Experiment, job.Options)
	var payload []byte
	if err == nil {
		payload, err = experiments.NewPayload(res, job.Options).Marshal()
	}
	s.cache.Complete(entry, payload, err)
	s.finish(job, err, false)
}

// finish moves a job to its terminal state and evicts the oldest
// finished jobs beyond the retention bound. In-flight jobs are never
// evicted: their population is bounded by the queue depth and the
// attached waiters.
func (s *Server) finish(job *Job, err error, cacheHit bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job.CacheHit = job.CacheHit || cacheHit
	if err != nil {
		job.State = StateFailed
		job.Error = err.Error()
		s.failed++
	} else {
		job.State = StateDone
		s.done++
	}
	s.terminal = append(s.terminal, job.ID)
	for len(s.terminal) > s.cfg.RetainJobs {
		delete(s.jobs, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
}

func (s *Server) setCacheHit(job *Job) {
	s.mu.Lock()
	job.CacheHit = true
	s.mu.Unlock()
}

// snapshot copies a job under the lock so handlers can marshal it
// without racing state transitions.
func (s *Server) snapshot(job *Job) Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return *job
}

// Metrics is the /metrics payload.
type Metrics struct {
	Jobs struct {
		Submitted uint64 `json:"submitted"`
		Queued    uint64 `json:"queued"`
		Running   uint64 `json:"running"`
		Done      uint64 `json:"done"`
		Failed    uint64 `json:"failed"`
		Rejected  uint64 `json:"rejected"`
	} `json:"jobs"`
	Cache   CacheStats `json:"cache"`
	Workers int        `json:"workers"`
}

// metrics snapshots the job and cache counters.
func (s *Server) metrics() Metrics {
	var m Metrics
	s.mu.Lock()
	m.Jobs.Submitted = s.nextID
	m.Jobs.Rejected = s.rejected
	m.Jobs.Done = s.done
	m.Jobs.Failed = s.failed
	for _, j := range s.jobs {
		switch j.State {
		case StateQueued:
			m.Jobs.Queued++
		case StateRunning:
			m.Jobs.Running++
		}
	}
	s.mu.Unlock()
	m.Cache = s.cache.Stats()
	m.Workers = s.cfg.Workers
	return m
}

// Handler returns the HTTP API:
//
//	GET  /v1/experiments   list the experiment registry
//	POST /v1/jobs          submit {"experiment": id, "options": {...}}
//	GET  /v1/jobs/{id}     poll a job
//	GET  /v1/results/{key} fetch a completed result payload
//	POST /v1/sweeps        fan a job out over an Options grid
//	GET  /healthz          liveness
//	GET  /metrics          job and cache counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.metrics())
	})
	return mux
}

// ExperimentInfo is one row of the GET /v1/experiments listing — the
// registry projected for clients, so they can discover experiment ids
// without reading CLI help text.
type ExperimentInfo struct {
	ID          string `json:"id"`
	Description string `json:"description"`
	OptionsFree bool   `json:"options_free"`
	// Fleet marks experiments that consume the fleet lifetime knobs;
	// for the others those knobs are canonicalized away, so a
	// fleet-axis sweep over them collapses to one cached point.
	Fleet bool `json:"fleet"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	specs := experiments.Experiments()
	infos := make([]ExperimentInfo, len(specs))
	for i, spec := range specs {
		infos[i] = ExperimentInfo{ID: spec.ID, Description: spec.Description,
			OptionsFree: spec.OptionsFree, Fleet: spec.Fleet}
	}
	writeJSON(w, http.StatusOK, map[string][]ExperimentInfo{"experiments": infos})
}

// jobRequest is the POST /v1/jobs body.
type jobRequest struct {
	Experiment string              `json:"experiment"`
	Options    experiments.Options `json:"options"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.submit(req.Experiment, req.Options)
	switch {
	case err == errQueueFull:
		writeJSON(w, http.StatusServiceUnavailable, s.snapshot(job))
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, s.snapshot(job))
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.snapshot(job))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.cache.Get(r.PathValue("key"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no completed result for key %q", r.PathValue("key")))
		return
	}
	payload, err := entry.Wait()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(payload)
}

// sweepRequest is the POST /v1/sweeps body: the cross product of
// experiments × trace_lengths × trace_strides × populations ×
// variation_sigmas × years becomes one job per grid point. Empty axes
// default to a single default-valued point, so sweeps over trace
// options alone behave exactly as before the fleet axes existed.
type sweepRequest struct {
	Experiments  []string `json:"experiments"`
	TraceLengths []int    `json:"trace_lengths"`
	TraceStrides []int    `json:"trace_strides"`

	// Fleet axes, consumed by the lifetime/yield experiments.
	Populations     []int     `json:"populations"`
	VariationSigmas []float64 `json:"variation_sigmas"`
	Years           []float64 `json:"years"`
}

// maxSweepJobs bounds one sweep request's fan-out.
const maxSweepJobs = 1024

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Experiments) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweep needs at least one experiment"))
		return
	}
	if len(req.TraceLengths) == 0 {
		req.TraceLengths = []int{0}
	}
	if len(req.TraceStrides) == 0 {
		req.TraceStrides = []int{0}
	}
	if len(req.Populations) == 0 {
		req.Populations = []int{0}
	}
	if len(req.VariationSigmas) == 0 {
		req.VariationSigmas = []float64{0}
	}
	if len(req.Years) == 0 {
		req.Years = []float64{0}
	}
	// Bound each axis before multiplying: any axis longer than the grid
	// cap already exceeds it, and capped axes keep the product far from
	// int overflow (1024^6 < 2^63).
	n := 1
	for _, axis := range []int{
		len(req.Experiments), len(req.TraceLengths), len(req.TraceStrides),
		len(req.Populations), len(req.VariationSigmas), len(req.Years),
	} {
		if axis > maxSweepJobs {
			writeError(w, http.StatusBadRequest, fmt.Errorf("sweep axis has %d values, limit %d", axis, maxSweepJobs))
			return
		}
		n *= axis
	}
	if n > maxSweepJobs {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweep grid has %d points, limit %d", n, maxSweepJobs))
		return
	}
	// Validate the whole grid up front: a bad id must not leave the
	// valid points already enqueued behind a 400.
	for _, exp := range req.Experiments {
		if _, ok := experiments.Lookup(exp); !ok {
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown experiment %q (have %s)", exp, experiments.IDList()))
			return
		}
	}
	var jobs []Job
	for _, exp := range req.Experiments {
		for _, length := range req.TraceLengths {
			for _, stride := range req.TraceStrides {
				for _, pop := range req.Populations {
					for _, sigma := range req.VariationSigmas {
						for _, yrs := range req.Years {
							job, err := s.submit(exp, experiments.Options{
								TraceLength: length, TraceStride: stride,
								Population: pop, VariationSigma: sigma, Years: yrs,
							})
							if err == errQueueFull {
								jobs = append(jobs, s.snapshot(job))
								continue
							}
							if err != nil {
								writeError(w, http.StatusBadRequest, err)
								return
							}
							jobs = append(jobs, s.snapshot(job))
						}
					}
				}
			}
		}
	}
	writeJSON(w, http.StatusAccepted, map[string][]Job{"jobs": jobs})
}

// decodeStrict parses a JSON body, rejecting unknown fields and
// trailing garbage so malformed Options fail loudly with a 400.
func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("bad request body: trailing data")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf.Bytes())
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
