package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"penelope/internal/experiments"
	"penelope/internal/fleetops"
	"penelope/internal/obs"
	"penelope/internal/obs/tsdb"
	"penelope/internal/store"
)

// Runner executes one experiment. The default runs the registry driver
// (routing lifetime jobs through the checkpointed, cancellable path
// when persistence is on); tests substitute instrumented runners to
// count, gate and fault-inject simulations. The context is cancelled on
// job timeout and on server shutdown; cooperative runners should
// persist what they can and return promptly.
type Runner func(ctx context.Context, experiment string, o experiments.Options) (experiments.Result, error)

// ErrTransient marks runner failures worth retrying: wrap it
// (fmt.Errorf("...: %w", service.ErrTransient)) to tell the server a
// failure was environmental rather than deterministic. Leader jobs
// retry transient failures with exponential backoff and jitter up to
// Config.MaxRetries; every other error fails the job on the first
// attempt.
var ErrTransient = errors.New("transient failure")

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrent simulations (default GOMAXPROCS). Each
	// experiment driver already fans its own sweeps out over
	// pipeline.RunBatch, so a small pool keeps the machine busy without
	// oversubscribing it.
	Workers int
	// QueueDepth bounds queued leader jobs (default 256). Submissions
	// beyond it are rejected with 503 + Retry-After rather than
	// buffered without bound, and progressive shedding starts at
	// HighWater of the depth.
	QueueDepth int
	// RetainJobs bounds how many finished (done/failed) jobs stay
	// pollable (default 4096). The oldest are evicted first; their
	// results remain fetchable through the content-addressed cache, so
	// eviction only limits how long /v1/jobs/{id} answers for a
	// long-finished job.
	RetainJobs int
	// Runner overrides experiment execution (tests). Nil runs the
	// registry.
	Runner Runner

	// DataDir enables persistence: completed result payloads are
	// written through the in-memory cache to a content-addressed disk
	// store under this directory, and served from it after a restart.
	// Lifetime jobs checkpoint there and resume automatically at the
	// next boot if interrupted. Empty keeps the server fully in-memory.
	DataDir string
	// StoreBudget bounds the disk store's result-cache payload bytes:
	// past it the least-recently-used cached results are evicted, and a
	// result write that still cannot fit is shed (the job itself
	// succeeds; only its cache entry is lost). Checkpoints and fleet
	// sidecars are never budget-evicted or refused. 0 is unbounded.
	StoreBudget int64
	// StoreRetention evicts cached results unused for longer than this,
	// at boot and on every scrub pass. 0 keeps results forever.
	StoreRetention time.Duration
	// ScrubInterval is how often the store's background scrubber
	// re-verifies every result frame against its checksum, quarantining
	// bit rot. 0 disables the scrubber.
	ScrubInterval time.Duration
	// Rate is the per-client admission budget in submissions/second
	// (sweeps charge one token per grid point). 0 disables rate
	// limiting. Clients over budget get 429 + Retry-After.
	Rate float64
	// Burst is the per-client token bucket size (default ceil(Rate)).
	Burst int
	// JobTimeout bounds one runner attempt; a job past it fails with a
	// timeout error and its context is cancelled. 0 = unbounded.
	JobTimeout time.Duration
	// MaxRetries bounds retry attempts for transient leader failures
	// (default 2; negative disables retries).
	MaxRetries int
	// RetryBackoff is the base backoff between retries (default 100ms),
	// doubled per attempt with jitter.
	RetryBackoff time.Duration
	// CheckpointEvery is the epoch interval between lifetime checkpoint
	// writes when persistence is on (default 16).
	CheckpointEvery int
	// HighWater is the queue fraction where readiness degrades and
	// progressive shedding starts (default 0.75).
	HighWater float64
	// DrainGrace bounds how long Close waits for a cancelled in-flight
	// job to persist its state and return (default 5s). The fleet
	// scheduler checkpoints every registered population within the same
	// grace.
	DrainGrace time.Duration
	// SweepRetention keeps a finished sweep's event topic (and its
	// resume ring) alive after the "done" event so late subscribers can
	// still replay it; past that the topic is dropped so a long-lived
	// server's bus does not grow one topic per sweep forever (default
	// 5m).
	SweepRetention time.Duration

	// FleetTick is the default interval between scheduled fleet epoch
	// ticks for registrations that do not set their own (default 30s).
	FleetTick time.Duration
	// FleetTickTimeout is the fleet watchdog deadline: a tick running
	// longer is cancelled and counted as a failure (default 60s).
	FleetTickTimeout time.Duration
	// FleetMaxFailures consecutive tick failures quarantine a fleet
	// population (default 3).
	FleetMaxFailures int
	// FleetRetryBackoff is the base delay before retrying a failed
	// fleet tick (default 1s).
	FleetRetryBackoff time.Duration
	// FleetQuarantine is how long a quarantined population parks before
	// a probation probe (default 5m).
	FleetQuarantine time.Duration
	// FleetBuilder overrides how fleet registrations become engine
	// configs (tests); nil measures duty profiles from the trace
	// workload like the lifetime experiment.
	FleetBuilder fleetops.ConfigBuilder
	// AlertWebhook POSTs fired fleet alerts to this URL through the
	// hardened delivery pipeline. Empty disables webhook delivery
	// (alerts still publish on the event bus).
	AlertWebhook string
	// AlertSink overrides the webhook sink (tests inject seeded fault
	// sinks); takes precedence over AlertWebhook.
	AlertSink fleetops.Sink
	// AlertSeed drives the delivery pipeline's deterministic retry
	// jitter.
	AlertSeed uint64

	// HistoryInterval is the metric-history sampling cadence: every
	// interval the registry is sampled into the embedded time-series
	// store behind /v1/metrics/query and /dashboard (default 10s;
	// negative disables history entirely).
	HistoryInterval time.Duration
	// HistoryRetention bounds how far back persisted history blocks are
	// kept when DataDir is set (default 168h — one week).
	HistoryRetention time.Duration
	// HistoryBudget bounds history block bytes on disk (0 = unbounded).
	HistoryBudget int64
	// SLORules are declarative objectives evaluated against the metric
	// history on every sampling tick; breaches fire through the event
	// bus and the alert delivery pipeline like fleet alerts.
	SLORules []fleetops.SLORule
	// BuildInfo overrides the binary identity exposed as
	// penelope_build_info and in the JSON payload (tests pin it for
	// golden stability). Nil reads the embedded build metadata.
	BuildInfo *obs.BuildInfo
}

// Server is the experiment service: it validates requests against the
// experiments registry, deduplicates them through the content-addressed
// cache (backed by the disk store when DataDir is set), and executes
// cache leaders on a per-client fair worker pool with admission
// control, bounded retries and panic containment.
type Server struct {
	cfg     Config
	cache   *Cache
	pool    *fairPool
	store   *store.Store
	limiter *rateLimiter
	backoff *backoffController
	obs     *serverObs
	logger  *slog.Logger

	bus       *fleetops.Bus
	sched     *fleetops.Scheduler
	alerter   *fleetops.Alerter
	deliverer *fleetops.Deliverer

	history   *tsdb.DB
	slo       *fleetops.SLOEngine
	started   time.Time
	historyWG sync.WaitGroup

	baseCtx   context.Context
	cancelCtx context.CancelFunc
	closeOnce sync.Once
	closed    atomic.Bool

	mu       sync.Mutex
	jobs     map[string]*Job
	terminal []string // finished job ids, oldest first, for eviction
	nextID   uint64

	queued  int // jobs currently in StateQueued (O(1) metrics scan)
	running int // jobs currently in StateRunning

	done      uint64 // jobs finished successfully (cumulative)
	failed    uint64 // jobs finished with an error (cumulative)
	rejected  uint64 // submissions dropped because the queue was full
	retries   uint64 // transient-failure retry attempts
	panics    uint64 // driver panics recovered into failed jobs
	timeouts  uint64 // jobs failed by the per-job timeout
	resumed   uint64 // interrupted jobs resubmitted at boot
	throttled uint64 // submissions rejected by per-client rate limiting

	clients        map[string]*ClientCounters
	clientOverflow ClientCounters // aggregate beyond the tracked bound
	untracked      uint64         // requests folded into the overflow cell

	sweeps    map[string]*sweepTrack // in-flight sweeps, for point streaming
	sweepSeq  uint64
	fleetBoot uint64 // registrations reloaded from sidecars at boot
}

// sweepTrack counts a sweep's completed points so the stream can close
// with a "done" event.
type sweepTrack struct {
	total, completed, failed int
}

// ClientCounters are the per-client admission counters in /metrics.
type ClientCounters struct {
	Admitted  uint64 `json:"admitted"`
	Throttled uint64 `json:"throttled"`
}

// maxTrackedClients bounds the per-client metrics map; clients beyond
// it aggregate under "~other" so a client-id flood cannot grow the map
// without bound.
const maxTrackedClients = 64

// New builds a Server, starts its worker pool, and — when DataDir is
// set — opens the disk store, serves every result already on disk, and
// resubmits interrupted resumable jobs found there.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 4096
	}
	switch {
	case cfg.MaxRetries == 0:
		cfg.MaxRetries = 2
	case cfg.MaxRetries < 0:
		cfg.MaxRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 16
	}
	if cfg.HighWater <= 0 || cfg.HighWater >= 1 {
		cfg.HighWater = 0.75
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 5 * time.Second
	}
	if cfg.SweepRetention <= 0 {
		cfg.SweepRetention = 5 * time.Minute
	}
	if cfg.HistoryInterval == 0 {
		cfg.HistoryInterval = 10 * time.Second
	}
	if cfg.HistoryRetention <= 0 {
		cfg.HistoryRetention = 168 * time.Hour
	}
	if cfg.BuildInfo == nil {
		bi := obs.ReadBuildInfo()
		cfg.BuildInfo = &bi
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		started:   time.Now(),
		cache:     NewCache(),
		pool:      newFairPool(cfg.Workers, cfg.QueueDepth),
		limiter:   newRateLimiter(cfg.Rate, cfg.Burst),
		backoff:   newBackoffController(cfg.HighWater),
		baseCtx:   ctx,
		cancelCtx: cancel,
		jobs:      make(map[string]*Job),
		clients:   make(map[string]*ClientCounters),
		sweeps:    make(map[string]*sweepTrack),
	}
	s.logger = obs.Logger("service")
	s.initObs()
	if cfg.DataDir != "" {
		st, err := store.OpenConfig(store.Config{
			Dir:         cfg.DataDir,
			Budget:      cfg.StoreBudget,
			Retention:   cfg.StoreRetention,
			Instruments: s.storeInstruments(),
		})
		if err != nil {
			cancel()
			s.pool.close()
			return nil, err
		}
		st.StartScrubber(cfg.ScrubInterval)
		s.store = st
		s.registerStoreMetrics()
	}
	if s.cfg.Runner == nil {
		s.cfg.Runner = s.registryRunner
	}
	s.initFleetops()
	if err := s.initHistory(); err != nil {
		s.Close()
		return nil, err
	}
	s.recoverInterrupted()
	s.recoverFleets()
	return s, nil
}

// initFleetops wires the continuous-operations layer: the event bus,
// the alert pipeline (when a sink is configured), and the self-healing
// fleet scheduler backed by the disk store's sidecars.
func (s *Server) initFleetops() {
	fleetIns := s.fleetInstruments()
	s.bus = fleetops.NewBus(0)
	s.bus.SetInstruments(fleetIns)
	sink := s.cfg.AlertSink
	if sink == nil && s.cfg.AlertWebhook != "" {
		sink = &fleetops.WebhookSink{URL: s.cfg.AlertWebhook}
	}
	if sink != nil {
		s.deliverer = fleetops.NewDeliverer(fleetops.DelivererConfig{
			Sink:             sink,
			Workers:          2,
			Timeout:          5 * time.Second,
			MaxRetries:       3,
			Backoff:          250 * time.Millisecond,
			BreakerThreshold: 5,
			BreakerCooldown:  30 * time.Second,
			Seed:             s.cfg.AlertSeed,
			Instruments:      fleetIns,
		})
	}
	s.alerter = fleetops.NewAlerter(s.bus, s.deliverer)
	var storage fleetops.Storage
	if s.store != nil {
		storage = s.store
	}
	s.sched = fleetops.NewScheduler(fleetops.Config{
		Builder:            s.cfg.FleetBuilder,
		Storage:            storage,
		Bus:                s.bus,
		Alerter:            s.alerter,
		DefaultInterval:    s.cfg.FleetTick,
		MaxFailures:        s.cfg.FleetMaxFailures,
		QuarantineCooldown: s.cfg.FleetQuarantine,
		TickTimeout:        s.cfg.FleetTickTimeout,
		RetryBackoff:       s.cfg.FleetRetryBackoff,
		Workers:            s.cfg.Workers,
		Instruments:        fleetIns,
	})
	s.registerFleetMetrics()
}

// recoverFleets re-registers every fleet sidecar found on disk, so a
// restarted server resumes each scheduled population from its last
// checkpointed epoch.
func (s *Server) recoverFleets() {
	if s.store == nil {
		return
	}
	for _, rec := range s.store.Fleets() {
		var reg fleetops.Registration
		if err := json.Unmarshal(rec.Data, &reg); err != nil {
			s.logger.Warn("skipping fleet sidecar with unreadable registration", "fleet", rec.Name, "error", err)
			continue
		}
		if _, err := s.sched.Register(reg); err != nil {
			s.logger.Warn("re-registering fleet failed", "fleet", rec.Name, "error", err)
			continue
		}
		s.mu.Lock()
		s.fleetBoot++
		s.mu.Unlock()
		s.logger.Info("resumed fleet from its sidecar", "fleet", rec.Name)
	}
}

// registryRunner is the default Runner: the experiments registry, with
// lifetime jobs routed through the checkpointed cancellable driver when
// persistence is on, so a crash or shutdown mid-fleet resumes instead
// of restarting.
func (s *Server) registryRunner(ctx context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
	if experiment == "lifetime" && s.store != nil {
		key := ResultKey(experiment, o)
		return experiments.LifetimeCheckpointedCtx(ctx, o, s.store.CheckpointPath(key), s.cfg.CheckpointEvery)
	}
	return experiments.Run(experiment, o)
}

// recoverInterrupted resubmits every resumable job record found on disk
// whose result is not already stored: jobs that were queued or running
// when the previous process died. Lifetime jobs resume from their
// checkpoints inside the driver.
func (s *Server) recoverInterrupted() {
	if s.store == nil {
		return
	}
	for _, rec := range s.store.JobRecords() {
		if s.store.Has(rec.Key) {
			s.store.RemoveJob(rec.Key)
			continue
		}
		var o experiments.Options
		if err := json.Unmarshal(rec.Options, &o); err != nil {
			s.logger.Warn("skipping job record with unreadable options", "key", rec.Key, "error", err)
			continue
		}
		client := rec.Client
		if client == "" {
			client = "recovery"
		}
		job, err := s.submit(client, rec.Experiment, o, "")
		if err != nil {
			s.logger.Warn("resubmitting interrupted job failed", "key", rec.Key, "error", err)
			continue
		}
		if job.ResultKey != rec.Key {
			// The key schema changed across versions; the stale sidecar
			// would otherwise be resubmitted on every boot.
			s.store.RemoveJob(rec.Key)
		}
		s.mu.Lock()
		s.resumed++
		s.mu.Unlock()
		s.logger.Info("resumed interrupted job", "experiment", rec.Experiment, "job", job.ID, "key", job.ResultKey)
	}
}

// Workers returns the worker pool size.
func (s *Server) Workers() int { return s.cfg.Workers }

// Store returns the disk store, or nil when persistence is off.
func (s *Server) Store() *store.Store { return s.store }

// Close shuts down gracefully: new submissions fail with a
// shutting-down error, the fleet scheduler checkpoints every
// registered population (bounded by DrainGrace), in-flight job
// contexts are cancelled (the checkpointed lifetime driver persists
// its state before returning, also bounded by DrainGrace), queued jobs
// drain as fast failures, and pending alerts flush through the
// delivery pipeline. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		s.cancelCtx()
		s.sched.Close(s.cfg.DrainGrace)
		s.pool.close()
		if s.deliverer != nil {
			s.deliverer.Close()
		}
		s.historyWG.Wait()
		if s.history != nil {
			s.history.Close()
		}
		if s.store != nil {
			s.store.Close()
		}
	})
}

// submit registers a job for (experiment, o) and routes it through the
// cache: completed entries (in memory or on disk) finish the job
// immediately, in-flight entries attach a waiter, and new keys enqueue
// a leader on the fair pool under the submitting client. A non-empty
// sweepID tags the job so its completion streams as a sweep point.
func (s *Server) submit(client, experiment string, o experiments.Options, sweepID string) (*Job, error) {
	spec, ok := experiments.Lookup(experiment)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q (have %s)", experiment, experiments.IDList())
	}
	// Canonicalize to the fields the driver consumes (defaults for
	// options-free drivers, fleet knobs dropped for trace-only ones) so
	// every spelling of the same simulation shares one cache entry.
	o = spec.CanonicalOptions(o)
	key := ResultKey(experiment, o)

	s.mu.Lock()
	s.nextID++
	job := &Job{
		ID:         fmt.Sprintf("job-%d", s.nextID),
		Experiment: experiment,
		Options:    o,
		Client:     client,
		ResultKey:  key,
		State:      StateQueued,
		SweepID:    sweepID,
	}
	job.submittedAt = time.Now()
	job.trace = s.obs.tracer.Begin(job.ID, "job", "admit")
	job.trace.Attr("experiment", experiment)
	job.trace.Attr("client", client)
	job.trace.Attr("key", key)
	s.jobs[job.ID] = job
	s.queued++
	s.mu.Unlock()

	entry, leader, ready := s.cache.Acquire(key)
	switch {
	case ready:
		// Served from cache: the payload is resident, the job is done
		// before the response is written.
		job.trace.Attr("source", "cache")
		_, err := entry.Wait()
		s.finish(job, err, true)
	case !leader:
		// In-flight dedup: share the running simulation's outcome.
		s.setCacheHit(job)
		job.trace.Phase("follow")
		go func() {
			_, err := entry.Wait()
			s.finish(job, err, true)
		}()
	default:
		if s.store != nil {
			// Read-through: a result persisted by an earlier process
			// completes the job without re-simulation.
			if payload, ok := s.store.Get(key); ok {
				job.trace.Attr("source", "store")
				s.cache.Complete(entry, payload, nil)
				s.finish(job, nil, true)
				return job, nil
			}
			if experiment == "lifetime" {
				// Record the job before it runs so a crash mid-run (or
				// while queued) leaves enough on disk to resume at boot.
				optJSON, err := json.Marshal(o)
				if err == nil {
					err = s.store.PutJobRecord(store.JobRecord{
						Key: key, Experiment: experiment, Options: optJSON, Client: client,
					})
				}
				if err != nil {
					s.logger.Warn("recording resumable job failed", "key", key, "error", err)
				}
			}
		}
		job.trace.Phase("queue-wait")
		job.enqueuedAt = time.Now()
		if err := s.pool.submit(client, func() { s.runJob(job, entry) }); err != nil {
			s.cache.Abandon(entry, err.Error())
			s.mu.Lock()
			s.rejected++
			s.mu.Unlock()
			s.finish(job, err, false)
			return job, err
		}
	}
	return job, nil
}

// errQueueFull and errShuttingDown distinguish a saturated or closing
// server from a bad request; both map to 503 + Retry-After.
var (
	errQueueFull    = errors.New("service: job queue full")
	errShuttingDown = errors.New("service: server shutting down")
)

// runJob executes a leader job — with retries, timeout and panic
// containment — persists a successful payload, and completes its cache
// entry.
func (s *Server) runJob(job *Job, entry *Entry) {
	s.mu.Lock()
	job.State = StateRunning
	s.queued--
	s.running++
	s.mu.Unlock()

	// The measured wait feeds both the exported distribution and the
	// Retry-After estimator, so backpressure hints track what leaders
	// actually experienced.
	wait := time.Since(job.enqueuedAt)
	s.obs.queueWait.ObserveDuration(wait)
	s.backoff.observeWait(wait)
	job.trace.Phase("run")

	start := time.Now()
	payload, err := s.runWithRetry(job)
	elapsed := time.Since(start)
	s.backoff.observe(elapsed)
	s.obs.runSeconds.With(job.Experiment).ObserveDuration(elapsed)

	if err == nil && s.store != nil {
		job.trace.Phase("store-write")
		if perr := s.store.Put(job.ResultKey, payload); perr != nil {
			s.logger.Warn("persisting result failed", "key", job.ResultKey, "error", perr)
		}
		s.store.RemoveJob(job.ResultKey)
	}
	s.cache.Complete(entry, payload, err)
	s.finish(job, err, false)
}

// runWithRetry runs the job, retrying transient failures with
// exponential backoff and jitter up to MaxRetries.
func (s *Server) runWithRetry(job *Job) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		job.Attempts = attempt + 1
		s.mu.Unlock()
		payload, err := s.runOnce(job)
		if err == nil || !errors.Is(err, ErrTransient) || attempt >= s.cfg.MaxRetries || s.closed.Load() {
			return payload, err
		}
		s.mu.Lock()
		s.retries++
		s.mu.Unlock()
		backoff := s.cfg.RetryBackoff << attempt
		if max := 30 * s.cfg.RetryBackoff; backoff > max {
			backoff = max
		}
		// Half fixed, half jitter: retries from concurrent failures
		// decorrelate instead of stampeding together.
		delay := backoff/2 + time.Duration(rand.Int64N(int64(backoff/2)+1))
		select {
		case <-time.After(delay):
		case <-s.baseCtx.Done():
			return nil, errShuttingDown
		}
	}
}

// runOnce executes one runner attempt under the per-job timeout and the
// server's lifetime context, recovering panics into errors so a
// misbehaving driver can never take down the process.
func (s *Server) runOnce(job *Job) ([]byte, error) {
	ctx := s.baseCtx
	cancel := func() {}
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
	}
	defer cancel()
	if s.closed.Load() {
		return nil, errShuttingDown
	}
	type outcome struct {
		payload []byte
		err     error
	}
	ch := make(chan outcome, 1) // buffered: an abandoned attempt never wedges its goroutine
	go func() {
		defer func() {
			if r := recover(); r != nil {
				s.mu.Lock()
				s.panics++
				s.mu.Unlock()
				ch <- outcome{nil, fmt.Errorf("experiment driver panicked: %v", r)}
			}
		}()
		res, err := s.cfg.Runner(ctx, job.Experiment, job.Options)
		var payload []byte
		if err == nil {
			payload, err = experiments.NewPayload(res, job.Options).Marshal()
		}
		ch <- outcome{payload, err}
	}()
	select {
	case out := <-ch:
		return out.payload, out.err
	case <-ctx.Done():
		if s.closed.Load() {
			// Graceful shutdown: give a cooperative runner (the
			// checkpointed lifetime driver) a bounded grace period to
			// persist its state and return.
			select {
			case out := <-ch:
				if out.err == nil {
					return out.payload, nil
				}
			case <-time.After(s.cfg.DrainGrace):
			}
			return nil, errShuttingDown
		}
		s.mu.Lock()
		s.timeouts++
		s.mu.Unlock()
		// The runner goroutine may outlive the attempt (it is leaked
		// until it returns); ctx cancellation asks cooperative drivers
		// to stop early.
		return nil, fmt.Errorf("service: job exceeded timeout %s", s.cfg.JobTimeout)
	}
}

// finish moves a job to its terminal state and evicts the oldest
// finished jobs beyond the retention bound. In-flight jobs are never
// evicted: their population is bounded by the queue depth and the
// attached waiters. Jobs belonging to a sweep stream their terminal
// snapshot as a "point" event, and the sweep's last point closes the
// stream with a "done" event.
func (s *Server) finish(job *Job, err error, cacheHit bool) {
	s.mu.Lock()
	switch job.State {
	case StateQueued:
		s.queued--
	case StateRunning:
		s.running--
	}
	job.CacheHit = job.CacheHit || cacheHit
	if err != nil {
		job.State = StateFailed
		job.Error = err.Error()
		s.failed++
	} else {
		job.State = StateDone
		s.done++
	}
	s.terminal = append(s.terminal, job.ID)
	for len(s.terminal) > s.cfg.RetainJobs {
		delete(s.jobs, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
	s.obs.jobSeconds.ObserveDuration(time.Since(job.submittedAt))
	job.trace.Phase("done")
	job.trace.Attr("state", string(job.State))
	if job.Error != "" {
		job.trace.Attr("error", job.Error)
	}
	if job.CacheHit {
		job.trace.Attr("cache_hit", "true")
	}
	job.trace.Finish()
	var point *Job
	var doneTrack *sweepTrack
	if job.SweepID != "" {
		snap := *job
		point = &snap
		if tr := s.sweeps[job.SweepID]; tr != nil {
			tr.completed++
			if err != nil {
				tr.failed++
			}
			if tr.completed >= tr.total {
				doneTrack = tr
				delete(s.sweeps, job.SweepID)
			}
		}
	}
	s.mu.Unlock()
	if point != nil && s.bus != nil {
		s.bus.Publish(sweepTopic(point.SweepID), "point", point)
		if doneTrack != nil {
			s.bus.Publish(sweepTopic(point.SweepID), "done", map[string]any{
				"sweep_id": point.SweepID,
				"total":    doneTrack.total,
				"failed":   doneTrack.failed,
			})
			// Expire the topic after a retention window: late
			// subscribers can still replay the ring for a while, but a
			// long-lived server does not accumulate one topic per
			// finished sweep forever. Sweep ids are unique per process,
			// so the delayed drop cannot hit a reused name.
			topic := sweepTopic(point.SweepID)
			time.AfterFunc(s.cfg.SweepRetention, func() { s.bus.Drop(topic) })
		}
	}
}

func (s *Server) setCacheHit(job *Job) {
	s.mu.Lock()
	job.CacheHit = true
	s.mu.Unlock()
}

// snapshot copies a job under the lock so handlers can marshal it
// without racing state transitions.
func (s *Server) snapshot(job *Job) Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return *job
}

// clientCounters returns the (bounded) counter cell for a client.
// Callers hold s.mu.
func (s *Server) clientCounters(client string) *ClientCounters {
	if c, ok := s.clients[client]; ok {
		return c
	}
	if len(s.clients) >= maxTrackedClients {
		// The request is not lost — it aggregates under "~other" — but
		// its client id is, so count the fold-ins where operators can
		// see them (untracked_clients in both metrics formats).
		s.untracked++
		return &s.clientOverflow
	}
	c := &ClientCounters{}
	s.clients[client] = c
	return c
}

// admitClient charges one rate-limit token per unit of work and counts
// the outcome; on refusal it returns the wait until the client's bucket
// refills.
func (s *Server) admitClient(client string, units float64) (bool, time.Duration) {
	ok := s.limiter.allow(client, units)
	s.mu.Lock()
	c := s.clientCounters(client)
	if ok {
		c.Admitted++
	} else {
		c.Throttled++
		s.throttled++
	}
	s.mu.Unlock()
	if ok {
		return true, 0
	}
	return false, s.limiter.retryAfter(client, units)
}

// Metrics is the /metrics payload.
type Metrics struct {
	Jobs struct {
		Submitted       uint64 `json:"submitted"`
		Queued          uint64 `json:"queued"`
		Running         uint64 `json:"running"`
		Done            uint64 `json:"done"`
		Failed          uint64 `json:"failed"`
		Rejected        uint64 `json:"rejected"`
		Throttled       uint64 `json:"throttled"`
		Shed            uint64 `json:"shed"`
		Retries         uint64 `json:"retries"`
		PanicsRecovered uint64 `json:"panics_recovered"`
		Timeouts        uint64 `json:"timeouts"`
		Resumed         uint64 `json:"resumed"`
	} `json:"jobs"`
	Clients map[string]ClientCounters `json:"clients,omitempty"`
	// UntrackedClients counts requests folded into the "~other" cell
	// because the per-client map hit its bound; omitted while zero so
	// pre-existing payloads are byte-identical.
	UntrackedClients uint64       `json:"untracked_clients,omitempty"`
	Cache            CacheStats   `json:"cache"`
	Store            *store.Stats `json:"store,omitempty"`
	Queue            QueueStatus  `json:"queue"`
	Workers          int          `json:"workers"`
	Fleet            FleetMetrics `json:"fleet"`
	// Build identifies the running binary; UptimeSeconds is whole
	// seconds since the server object was built.
	Build         obs.BuildInfo `json:"build"`
	UptimeSeconds uint64        `json:"uptime_seconds"`
	// Histograms digests every histogram family into count/sum and
	// interpolated p50/p95/p99. The HTTP latency family is deliberately
	// excluded: scrapes observe themselves, so including it would make
	// two consecutive scrapes of an otherwise idle server differ —
	// byte-stability of this payload is a pinned contract. HTTP
	// latencies remain in the Prometheus exposition and the history.
	Histograms []obs.HistogramSummary `json:"histograms,omitempty"`
	// History is the embedded time-series store's bookkeeping, present
	// whenever metric history is enabled.
	History *tsdb.Stats `json:"history,omitempty"`
	// SLO summarizes objective evaluation, present when rules are
	// configured.
	SLO *fleetops.SLOStats `json:"slo,omitempty"`
}

// FleetMetrics is the continuous-operations section of /metrics: the
// scheduler's population states, the event bus, rule evaluation, and —
// when a sink is configured — the delivery pipeline with its dead
// letters.
type FleetMetrics struct {
	Scheduler   fleetops.Stats          `json:"scheduler"`
	Quarantined []string                `json:"quarantined,omitempty"`
	ResumedBoot uint64                  `json:"resumed_at_boot,omitempty"`
	Bus         fleetops.BusStats       `json:"bus"`
	Alerts      fleetops.AlertStats     `json:"alerts"`
	Delivery    *fleetops.DeliveryStats `json:"delivery,omitempty"`
}

// QueueStatus describes queue pressure, shared by /metrics and /readyz.
type QueueStatus struct {
	Depth     int  `json:"depth"`
	Capacity  int  `json:"capacity"`
	HighWater int  `json:"high_water"`
	Degraded  bool `json:"degraded"`
}

// queueStatus snapshots queue pressure. The depth is a counter read,
// not a scan.
func (s *Server) queueStatus() QueueStatus {
	q := QueueStatus{
		Depth:     s.pool.queueDepth(),
		Capacity:  s.cfg.QueueDepth,
		HighWater: int(s.cfg.HighWater * float64(s.cfg.QueueDepth)),
	}
	q.Degraded = q.HighWater > 0 && q.Depth >= q.HighWater
	return q
}

// metrics snapshots the job, client, cache and store counters. Queued
// and running are O(1) counter reads — the retained-job map is never
// scanned.
func (s *Server) metrics() Metrics {
	var m Metrics
	s.mu.Lock()
	m.Jobs.Submitted = s.nextID
	m.Jobs.Queued = uint64(s.queued)
	m.Jobs.Running = uint64(s.running)
	m.Jobs.Rejected = s.rejected
	m.Jobs.Throttled = s.throttled
	m.Jobs.Done = s.done
	m.Jobs.Failed = s.failed
	m.Jobs.Retries = s.retries
	m.Jobs.PanicsRecovered = s.panics
	m.Jobs.Timeouts = s.timeouts
	m.Jobs.Resumed = s.resumed
	if len(s.clients) > 0 {
		m.Clients = make(map[string]ClientCounters, len(s.clients)+1)
		for name, c := range s.clients {
			m.Clients[name] = *c
		}
		if s.clientOverflow != (ClientCounters{}) {
			m.Clients["~other"] = s.clientOverflow
		}
	}
	m.UntrackedClients = s.untracked
	s.mu.Unlock()
	m.Jobs.Shed = s.backoff.shedCount()
	m.Cache = s.cache.Stats()
	if s.store != nil {
		st := s.store.Stats()
		m.Store = &st
	}
	m.Queue = s.queueStatus()
	m.Workers = s.cfg.Workers
	m.Fleet.Scheduler = s.sched.Stats()
	m.Fleet.Quarantined = s.sched.Quarantined()
	m.Fleet.Bus = s.bus.Stats()
	m.Fleet.Alerts = s.alerter.Stats()
	s.mu.Lock()
	m.Fleet.ResumedBoot = s.fleetBoot
	s.mu.Unlock()
	if s.deliverer != nil {
		d := s.deliverer.Stats()
		m.Fleet.Delivery = &d
	}
	m.Build = *s.cfg.BuildInfo
	m.UptimeSeconds = uint64(time.Since(s.started).Seconds())
	for _, h := range s.obs.reg.HistogramSummaries() {
		if h.Name == httpLatencyFamily {
			continue
		}
		m.Histograms = append(m.Histograms, h)
	}
	if s.history != nil {
		hs := s.history.Stats()
		m.History = &hs
	}
	if s.slo != nil {
		st := s.slo.Stats()
		m.SLO = &st
	}
	return m
}

// Handler returns the HTTP API:
//
//	GET  /v1/experiments            list the experiment registry
//	POST /v1/jobs                   submit {"experiment": id, "options": {...}, "client": id}
//	GET  /v1/jobs                   list jobs, filterable by ?state= &client= &experiment=
//	GET  /v1/jobs/{id}              poll a job
//	GET  /v1/results/{key}          fetch a completed result payload
//	POST /v1/sweeps                 fan a job out over an Options grid
//	GET  /v1/sweeps/{id}/events     stream sweep points as SSE
//	GET  /v1/sweeps/{id}/events.ndjson  same stream as NDJSON
//	POST /v1/fleets                 register a continuously-aged population
//	GET  /v1/fleets                 list registered populations
//	GET  /v1/fleets/{name}          one population's status
//	DELETE /v1/fleets/{name}        deregister a population
//	GET  /v1/fleets/{name}/events   stream epoch/state/alert events as SSE
//	GET  /v1/fleets/{name}/events.ndjson  same stream as NDJSON
//	GET  /v1/jobs/{id}/trace        one job's lifecycle trace (admit → queue-wait → run → done)
//	GET  /v1/debug/traces           recent spans by ?component= (job, store, scrub, fleet, alert)
//	GET  /healthz                   liveness
//	GET  /readyz                    readiness (degraded above the queue high-water mark)
//	GET  /metrics                   Prometheus text exposition; JSON with Accept: application/json
//	GET  /metrics.json              job, client, cache, store and fleet counters as JSON
//	GET  /v1/metrics/names          families the metric history tracks
//	GET  /v1/metrics/query          range-query the history (?name= &from= &to= &step= &agg= &q= &label=)
//	GET  /v1/slo                    SLO rule status and counters
//	GET  /dashboard                 self-contained live fleet dashboard (no external assets)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.route(mux, "GET /v1/experiments", s.handleExperiments)
	s.route(mux, "POST /v1/jobs", s.handleSubmit)
	s.route(mux, "GET /v1/jobs", s.handleJobs)
	s.route(mux, "GET /v1/jobs/{id}", s.handleJob)
	s.route(mux, "GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.route(mux, "GET /v1/debug/traces", s.handleDebugTraces)
	s.route(mux, "GET /v1/results/{key}", s.handleResult)
	s.route(mux, "POST /v1/sweeps", s.handleSweep)
	s.route(mux, "GET /v1/sweeps/{id}/events", s.handleSweepEvents)
	s.route(mux, "GET /v1/sweeps/{id}/events.ndjson", s.handleSweepEventsNDJSON)
	s.route(mux, "POST /v1/fleets", s.handleFleetRegister)
	s.route(mux, "GET /v1/fleets", s.handleFleetList)
	s.route(mux, "GET /v1/fleets/{name}", s.handleFleetGet)
	s.route(mux, "DELETE /v1/fleets/{name}", s.handleFleetDelete)
	s.route(mux, "GET /v1/fleets/{name}/events", s.handleFleetEvents)
	s.route(mux, "GET /v1/fleets/{name}/events.ndjson", s.handleFleetEventsNDJSON)
	s.route(mux, "GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.route(mux, "GET /readyz", s.handleReady)
	s.route(mux, "GET /metrics", s.handleMetrics)
	s.route(mux, "GET /metrics.json", s.handleMetricsJSON)
	s.route(mux, "GET /v1/metrics/names", s.handleMetricsNames)
	s.route(mux, "GET /v1/metrics/query", s.handleMetricsQuery)
	s.route(mux, "GET /v1/slo", s.handleSLO)
	s.route(mux, "GET /dashboard", s.handleDashboard)
	return mux
}

// readiness is the /readyz payload: whether a load balancer should keep
// routing to this instance, with the queue pressure behind the answer.
type readiness struct {
	Status        string      `json:"status"`
	Queue         QueueStatus `json:"queue"`
	RejectionRate float64     `json:"rejection_rate"`
	// Fleets summarizes the scheduled populations; quarantined fleets
	// are named so an operator sees them without walking /v1/fleets.
	Fleets            fleetops.Stats `json:"fleets"`
	QuarantinedFleets []string       `json:"quarantined_fleets,omitempty"`
	// Store carries the disk-store counters when the store is shedding
	// result writes (disk budget exhausted or write failures), so the
	// degraded answer names its cause.
	Store *store.Stats `json:"store,omitempty"`
}

// handleReady reports readiness: 200 "ready" normally, 503 "degraded"
// once the queue crosses its high-water mark or the disk store starts
// shedding result writes (liveness stays green — the process is
// healthy, it just should not receive new load), and 503 "draining"
// during shutdown.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	q := s.queueStatus()
	s.mu.Lock()
	accepted := s.nextID
	refused := s.rejected + s.throttled
	s.mu.Unlock()
	refused += s.backoff.shedCount()
	rate := 0.0
	if total := accepted + refused; total > 0 {
		rate = float64(refused) / float64(total)
	}
	body := readiness{Status: "ready", Queue: q, RejectionRate: rate,
		Fleets: s.sched.Stats(), QuarantinedFleets: s.sched.Quarantined()}
	storeDegraded := s.store != nil && s.store.Degraded()
	if storeDegraded {
		st := s.store.Stats()
		body.Store = &st
	}
	code := http.StatusOK
	switch {
	case s.closed.Load():
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	case q.Degraded, storeDegraded:
		body.Status = "degraded"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// ExperimentInfo is one row of the GET /v1/experiments listing — the
// registry projected for clients, so they can discover experiment ids
// without reading CLI help text.
type ExperimentInfo struct {
	ID          string `json:"id"`
	Description string `json:"description"`
	OptionsFree bool   `json:"options_free"`
	// Fleet marks experiments that consume the fleet lifetime knobs;
	// for the others those knobs are canonicalized away, so a
	// fleet-axis sweep over them collapses to one cached point.
	Fleet bool `json:"fleet"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	specs := experiments.Experiments()
	infos := make([]ExperimentInfo, len(specs))
	for i, spec := range specs {
		infos[i] = ExperimentInfo{ID: spec.ID, Description: spec.Description,
			OptionsFree: spec.OptionsFree, Fleet: spec.Fleet}
	}
	writeJSON(w, http.StatusOK, map[string][]ExperimentInfo{"experiments": infos})
}

// jobRequest is the POST /v1/jobs body. Client identifies the
// submitter for fair scheduling and rate limiting; the X-Client-Id
// header takes precedence.
type jobRequest struct {
	Experiment string              `json:"experiment"`
	Options    experiments.Options `json:"options"`
	Client     string              `json:"client"`
}

// clientID resolves the submitting client: header, then body field,
// then "anonymous". Ids are capped so a hostile header cannot bloat
// the queues and counters.
func clientID(r *http.Request, field string) string {
	c := r.Header.Get("X-Client-Id")
	if c == "" {
		c = field
	}
	if c == "" {
		return "anonymous"
	}
	if len(c) > 64 {
		c = c[:64]
	}
	return c
}

// setRetryAfter attaches the backpressure hint rejected submissions
// retry against, clamped to a minimum of one second: a sub-second EWMA
// estimate would otherwise serialize as "Retry-After: 0", which
// well-behaved clients treat as "retry immediately" — the opposite of
// backpressure during a shed storm.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := retryAfterSeconds(d)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	client := clientID(r, req.Client)
	if ok, wait := s.admitClient(client, 1); !ok {
		setRetryAfter(w, wait)
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("client %q over rate limit (%.3g/s)", client, s.cfg.Rate))
		return
	}
	if depth := s.pool.queueDepth(); !s.backoff.admit(depth, s.cfg.QueueDepth) {
		setRetryAfter(w, s.backoff.retryAfter(depth, s.cfg.Workers))
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("service overloaded (queue %d/%d); retry later", depth, s.cfg.QueueDepth))
		return
	}
	job, err := s.submit(client, req.Experiment, req.Options, "")
	switch {
	case errors.Is(err, errQueueFull) || errors.Is(err, errShuttingDown):
		setRetryAfter(w, s.backoff.retryAfter(s.pool.queueDepth(), s.cfg.Workers))
		writeJSON(w, http.StatusServiceUnavailable, s.snapshot(job))
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, s.snapshot(job))
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.snapshot(job))
}

// maxJobListing bounds one GET /v1/jobs response.
const maxJobListing = 1000

// handleJobs lists retained jobs, filterable by ?state=, ?client= and
// ?experiment=, newest first — the incident view: "what is queued,
// running or failed right now, and whose is it". The response reports
// the total match count alongside the (possibly truncated) page.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	state := r.URL.Query().Get("state")
	if state != "" {
		switch JobState(state) {
		case StateQueued, StateRunning, StateDone, StateFailed:
		default:
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("unknown state %q (want queued, running, done or failed)", state))
			return
		}
	}
	client := r.URL.Query().Get("client")
	experiment := r.URL.Query().Get("experiment")
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		limit = n
	}
	if limit > maxJobListing {
		limit = maxJobListing
	}
	s.mu.Lock()
	matched := make([]Job, 0, 64)
	for _, job := range s.jobs {
		if state != "" && job.State != JobState(state) {
			continue
		}
		if client != "" && job.Client != client {
			continue
		}
		if experiment != "" && job.Experiment != experiment {
			continue
		}
		matched = append(matched, *job)
	}
	s.mu.Unlock()
	// Job ids are "job-<n>" with n monotonic; newest first.
	sort.Slice(matched, func(i, j int) bool {
		return jobSeq(matched[i].ID) > jobSeq(matched[j].ID)
	})
	total := len(matched)
	if len(matched) > limit {
		matched = matched[:limit]
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": matched, "total": total})
}

// jobSeq extracts the monotonic sequence number from a "job-<n>" id.
func jobSeq(id string) uint64 {
	n, _ := strconv.ParseUint(strings.TrimPrefix(id, "job-"), 10, 64)
	return n
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	var payload []byte
	if entry, ok := s.cache.Get(key); ok {
		p, err := entry.Wait()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		payload = p
	} else if s.store != nil {
		// Results from previous processes outlive the in-memory cache.
		if p, ok := s.store.Get(key); ok {
			payload = p
		}
	}
	if payload == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no completed result for key %q", key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(payload)
}

// sweepRequest is the POST /v1/sweeps body: the cross product of
// experiments × trace_lengths × trace_strides × populations ×
// variation_sigmas × years becomes one job per grid point. Empty axes
// default to a single default-valued point, so sweeps over trace
// options alone behave exactly as before the fleet axes existed.
type sweepRequest struct {
	Experiments  []string `json:"experiments"`
	TraceLengths []int    `json:"trace_lengths"`
	TraceStrides []int    `json:"trace_strides"`

	// Fleet axes, consumed by the lifetime/yield experiments.
	Populations     []int     `json:"populations"`
	VariationSigmas []float64 `json:"variation_sigmas"`
	Years           []float64 `json:"years"`

	Client string `json:"client"`
}

// maxSweepJobs bounds one sweep request's fan-out.
const maxSweepJobs = 1024

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Experiments) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweep needs at least one experiment"))
		return
	}
	if len(req.TraceLengths) == 0 {
		req.TraceLengths = []int{0}
	}
	if len(req.TraceStrides) == 0 {
		req.TraceStrides = []int{0}
	}
	if len(req.Populations) == 0 {
		req.Populations = []int{0}
	}
	if len(req.VariationSigmas) == 0 {
		req.VariationSigmas = []float64{0}
	}
	if len(req.Years) == 0 {
		req.Years = []float64{0}
	}
	// Bound each axis before multiplying: any axis longer than the grid
	// cap already exceeds it, and capped axes keep the product far from
	// int overflow (1024^6 < 2^63).
	n := 1
	for _, axis := range []int{
		len(req.Experiments), len(req.TraceLengths), len(req.TraceStrides),
		len(req.Populations), len(req.VariationSigmas), len(req.Years),
	} {
		if axis > maxSweepJobs {
			writeError(w, http.StatusBadRequest, fmt.Errorf("sweep axis has %d values, limit %d", axis, maxSweepJobs))
			return
		}
		n *= axis
	}
	if n > maxSweepJobs {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweep grid has %d points, limit %d", n, maxSweepJobs))
		return
	}
	// Validate the whole grid up front: a bad id must not leave the
	// valid points already enqueued behind a 400.
	for _, exp := range req.Experiments {
		if _, ok := experiments.Lookup(exp); !ok {
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown experiment %q (have %s)", exp, experiments.IDList()))
			return
		}
	}
	// Admission: a sweep charges one token per grid point, so sweep
	// flooding and job flooding share one budget.
	client := clientID(r, req.Client)
	if ok, wait := s.admitClient(client, float64(n)); !ok {
		setRetryAfter(w, wait)
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("client %q over rate limit for a %d-point sweep", client, n))
		return
	}
	if depth := s.pool.queueDepth(); !s.backoff.admit(depth, s.cfg.QueueDepth) {
		setRetryAfter(w, s.backoff.retryAfter(depth, s.cfg.Workers))
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("service overloaded (queue %d/%d); retry later", depth, s.cfg.QueueDepth))
		return
	}
	// Allocate the sweep stream before any point runs: cache-hit points
	// complete synchronously inside submit, and their "point" events
	// must land in the topic's history ring for late subscribers.
	s.mu.Lock()
	s.sweepSeq++
	sweepID := fmt.Sprintf("sweep-%d", s.sweepSeq)
	s.sweeps[sweepID] = &sweepTrack{total: n}
	s.mu.Unlock()
	s.bus.Touch(sweepTopic(sweepID))
	var jobs []Job
	for _, exp := range req.Experiments {
		for _, length := range req.TraceLengths {
			for _, stride := range req.TraceStrides {
				for _, pop := range req.Populations {
					for _, sigma := range req.VariationSigmas {
						for _, yrs := range req.Years {
							job, err := s.submit(client, exp, experiments.Options{
								TraceLength: length, TraceStride: stride,
								Population: pop, VariationSigma: sigma, Years: yrs,
							}, sweepID)
							if errors.Is(err, errQueueFull) || errors.Is(err, errShuttingDown) {
								// Report the failed point; the rest of
								// the grid still enqueues.
								jobs = append(jobs, s.snapshot(job))
								continue
							}
							if err != nil {
								// The sweep is dead: untrack it and drop
								// its topic so the aborted grid does not
								// leak a stream that never finishes.
								s.mu.Lock()
								delete(s.sweeps, sweepID)
								s.mu.Unlock()
								s.bus.Drop(sweepTopic(sweepID))
								writeError(w, http.StatusBadRequest, err)
								return
							}
							jobs = append(jobs, s.snapshot(job))
						}
					}
				}
			}
		}
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"sweep_id": sweepID,
		"events":   "/v1/sweeps/" + sweepID + "/events",
		"jobs":     jobs,
	})
}

// decodeStrict parses a JSON body, rejecting unknown fields and
// trailing garbage so malformed Options fail loudly with a 400.
func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("bad request body: trailing data")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf.Bytes())
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
