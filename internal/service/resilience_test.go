package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"penelope/internal/experiments"
	"penelope/internal/store"
)

// postRaw posts JSON and returns the raw response (caller closes the
// body) so tests can inspect headers like Retry-After.
func postRaw(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// okRunner is an instant success runner for tests that exercise the
// control plane rather than the simulation.
func okRunner(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
	return fakeResult{Name: experiment, N: o.TraceLength}, nil
}

// TestSubmitAfterClose is the regression test for the submit-after-Close
// panic: the old pool pushed onto a closed channel and took the whole
// process down. Now the submission fails cleanly with a shutting-down
// error, and Close is idempotent.
func TestSubmitAfterClose(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Runner: okRunner})
	s.Close()
	s.Close() // idempotent

	var job Job
	if code := postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"fig4"}`, &job); code != http.StatusServiceUnavailable {
		t.Fatalf("submit after close: status %d, want 503", code)
	}
	if job.State != StateFailed || !strings.Contains(job.Error, "shutting down") {
		t.Fatalf("submit after close: job = %+v, want failed with shutting-down error", job)
	}
	// The operational endpoints stay alive through shutdown.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz during shutdown: status %d", code)
	}
	var r struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, ts.URL+"/readyz", &r); code != http.StatusServiceUnavailable || r.Status != "draining" {
		t.Errorf("readyz during shutdown = %d %q, want 503 draining", code, r.Status)
	}
}

// TestPanicRecovered checks a panicking driver fails only its own job:
// the panic is recovered into the job error, counted, and the server
// keeps serving.
func TestPanicRecovered(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:    1,
		MaxRetries: -1,
		Runner: func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
			if o.TraceLength == 666 {
				panic("simulated driver bug")
			}
			return fakeResult{Name: experiment, N: o.TraceLength}, nil
		},
	})

	var job Job
	postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"fig6","options":{"trace_length":666}}`, &job)
	done := pollJob(t, ts.URL, job.ID)
	if done.State != StateFailed || !strings.Contains(done.Error, "panicked") ||
		!strings.Contains(done.Error, "simulated driver bug") {
		t.Fatalf("panicked job = %+v, want failed with panic message", done)
	}

	// The server survives and the next job runs normally.
	postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"fig6","options":{"trace_length":1000}}`, &job)
	if done := pollJob(t, ts.URL, job.ID); done.State != StateDone {
		t.Fatalf("job after panic: %+v", done)
	}
	if m := s.metrics(); m.Jobs.PanicsRecovered != 1 {
		t.Errorf("panics_recovered = %d, want 1", m.Jobs.PanicsRecovered)
	}
}

// TestTransientRetry checks bounded retry: transient failures are
// retried with backoff until the runner recovers, and the attempt count
// is visible on the job.
func TestTransientRetry(t *testing.T) {
	var calls atomic.Int64
	s, ts := newTestServer(t, Config{
		Workers:      1,
		MaxRetries:   3,
		RetryBackoff: time.Millisecond,
		Runner: func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
			if calls.Add(1) <= 2 {
				return nil, fmt.Errorf("flaky dependency: %w", ErrTransient)
			}
			return fakeResult{Name: experiment, N: 1}, nil
		},
	})

	var job Job
	postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"fig4"}`, &job)
	done := pollJob(t, ts.URL, job.ID)
	if done.State != StateDone || done.Attempts != 3 {
		t.Fatalf("job = %+v, want done after 3 attempts", done)
	}
	if m := s.metrics(); m.Jobs.Retries != 2 {
		t.Errorf("retries = %d, want 2", m.Jobs.Retries)
	}
}

// TestNonTransientNotRetried checks deterministic failures fail on the
// first attempt — re-running a simulation that deterministically errors
// would only burn workers.
func TestNonTransientNotRetried(t *testing.T) {
	var calls atomic.Int64
	_, ts := newTestServer(t, Config{
		Workers:      1,
		MaxRetries:   3,
		RetryBackoff: time.Millisecond,
		Runner: func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
			calls.Add(1)
			return nil, fmt.Errorf("deterministic failure")
		},
	})

	var job Job
	postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"fig4"}`, &job)
	done := pollJob(t, ts.URL, job.ID)
	if done.State != StateFailed || done.Attempts != 1 {
		t.Fatalf("job = %+v, want failed on first attempt", done)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("runner called %d times, want 1", got)
	}
}

// TestJobTimeout checks the per-job timeout: a hung driver fails its
// job (and only its job) after JobTimeout.
func TestJobTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:    2,
		MaxRetries: -1,
		JobTimeout: 30 * time.Millisecond,
		Runner: func(ctx context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
			if o.TraceLength == 4242 {
				<-ctx.Done() // hang until the timeout fires
				return nil, ctx.Err()
			}
			return fakeResult{Name: experiment, N: o.TraceLength}, nil
		},
	})

	var hung, ok Job
	postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"fig6","options":{"trace_length":4242}}`, &hung)
	postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"fig6","options":{"trace_length":1000}}`, &ok)
	if done := pollJob(t, ts.URL, hung.ID); done.State != StateFailed || !strings.Contains(done.Error, "timeout") {
		t.Fatalf("hung job = %+v, want timeout failure", done)
	}
	if done := pollJob(t, ts.URL, ok.ID); done.State != StateDone {
		t.Fatalf("unrelated job caught in timeout: %+v", done)
	}
	if m := s.metrics(); m.Jobs.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", m.Jobs.Timeouts)
	}
}

// TestReadinessDegrades checks the liveness/readiness split: a queue
// over its high-water mark flips /readyz to 503 degraded (with the
// queue depth in the body) while /healthz stays 200, and readiness
// recovers when the queue drains.
func TestReadinessDegrades(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 4, // high water at 3
		Runner: func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
			<-gate
			return fakeResult{Name: experiment, N: o.TraceLength}, nil
		},
	})

	var jobs []Job
	for i := 0; i < 4; i++ {
		var job Job
		body := fmt.Sprintf(`{"experiment":"fig6","options":{"trace_length":%d}}`, 1000+i)
		if code := postJSON(t, ts.URL+"/v1/jobs", body, &job); code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		jobs = append(jobs, job)
		if i == 0 {
			// Let the worker pick the first job up (and park on the
			// gate) so the later queue-depth checks are deterministic:
			// three queued jobs behind one running one.
			waitFor(t, func() bool { return s.pool.queueDepth() == 0 })
		}
	}

	var r struct {
		Status string      `json:"status"`
		Queue  QueueStatus `json:"queue"`
	}
	if code := getJSON(t, ts.URL+"/readyz", &r); code != http.StatusServiceUnavailable || r.Status != "degraded" {
		t.Fatalf("readyz under load = %d %q, want 503 degraded", code, r.Status)
	}
	if r.Queue.Depth < 3 || r.Queue.Capacity != 4 || r.Queue.HighWater != 3 {
		t.Errorf("queue status = %+v, want depth >= 3 of 4 (hw 3)", r.Queue)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz under load: status %d, want 200 (liveness is not readiness)", code)
	}

	close(gate)
	for _, j := range jobs {
		pollJob(t, ts.URL, j.ID)
	}
	if code := getJSON(t, ts.URL+"/readyz", &r); code != http.StatusOK || r.Status != "ready" {
		t.Errorf("readyz after drain = %d %q, want 200 ready", code, r.Status)
	}
}

// TestSaturationRetryAfter checks backpressure at the queue bound: a
// saturated server answers 503 with a Retry-After hint instead of
// queueing without bound or hanging.
func TestSaturationRetryAfter(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	s, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 2,
		Runner: func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
			<-gate
			return fakeResult{Name: experiment, N: o.TraceLength}, nil
		},
	})

	// One running (off-queue) plus two queued saturates the pool. The
	// wait after the first submission pins the depth the admission
	// checks observe, keeping them below the shedding band.
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"experiment":"fig6","options":{"trace_length":%d}}`, 2000+i)
		if code := postJSON(t, ts.URL+"/v1/jobs", body, nil); code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		if i == 0 {
			waitFor(t, func() bool { return s.pool.queueDepth() == 0 })
		}
	}

	resp := postRaw(t, ts.URL+"/v1/jobs", `{"experiment":"fig6","options":{"trace_length":9999}}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated submit: status %d, want 503", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer of seconds", resp.Header.Get("Retry-After"))
	}

	// Sweeps saturate against the same backpressure.
	resp = postRaw(t, ts.URL+"/v1/sweeps", `{"experiments":["fig6"],"trace_lengths":[100,200]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("saturated sweep: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestTwoClientFairness is the acceptance scenario for per-client
// admission: a flooding client exhausts its own rate budget and gets
// 429s, while a well-behaved client's submissions keep flowing.
func TestTwoClientFairness(t *testing.T) {
	s, err := New(Config{Workers: 2, Rate: 1, Burst: 2, Runner: okRunner})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(5000, 0)
	s.limiter.now = func() time.Time { return now }
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	submit := func(client string, length int) int {
		body := fmt.Sprintf(`{"experiment":"fig6","client":%q,"options":{"trace_length":%d}}`, client, length)
		resp := postRaw(t, ts.URL+"/v1/jobs", body)
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if retry, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || retry < 1 {
				t.Errorf("429 without usable Retry-After: %q", resp.Header.Get("Retry-After"))
			}
		}
		return resp.StatusCode
	}

	// The flooder burns its burst, then gets throttled.
	flooderOK, flooderThrottled := 0, 0
	for i := 0; i < 6; i++ {
		switch code := submit("flooder", 3000+i); code {
		case http.StatusAccepted:
			flooderOK++
		case http.StatusTooManyRequests:
			flooderThrottled++
		default:
			t.Fatalf("flooder submit %d: status %d", i, code)
		}
	}
	if flooderOK != 2 || flooderThrottled != 4 {
		t.Fatalf("flooder: %d accepted / %d throttled, want 2/4 (burst 2)", flooderOK, flooderThrottled)
	}

	// The well-behaved client is untouched by the flooder's empty bucket.
	for i := 0; i < 2; i++ {
		if code := submit("polite", 4000+i); code != http.StatusAccepted {
			t.Fatalf("polite submit %d: status %d, want 202", i, code)
		}
	}

	// Time refills the flooder's bucket.
	now = now.Add(2 * time.Second)
	if code := submit("flooder", 3100); code != http.StatusAccepted {
		t.Fatalf("flooder after refill: status %d, want 202", code)
	}

	m := s.metrics()
	fl, pol := m.Clients["flooder"], m.Clients["polite"]
	if fl.Admitted != 3 || fl.Throttled != 4 {
		t.Errorf("flooder counters = %+v, want 3 admitted / 4 throttled", fl)
	}
	if pol.Admitted != 2 || pol.Throttled != 0 {
		t.Errorf("polite counters = %+v, want 2 admitted / 0 throttled", pol)
	}
	if m.Jobs.Throttled != 4 {
		t.Errorf("total throttled = %d, want 4", m.Jobs.Throttled)
	}
}

// TestCrashRecoveryStoreHits rebuilds a Server over the same data
// directory — the unit-test shape of kill -9 + restart — and requires
// completed results to be served from disk without re-simulation.
func TestCrashRecoveryStoreHits(t *testing.T) {
	dir := t.TempDir()
	bodies := []string{
		`{"experiment":"fig6","options":{"trace_length":1000}}`,
		`{"experiment":"fig6","options":{"trace_length":2000}}`,
		`{"experiment":"fig4"}`,
	}

	var runs atomic.Int64
	s1, err := New(Config{Workers: 2, DataDir: dir, Runner: func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
		runs.Add(1)
		return fakeResult{Name: experiment, N: o.TraceLength}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	keys := make([]string, len(bodies))
	payloads := make([][]byte, len(bodies))
	for i, body := range bodies {
		var job Job
		if code := postJSON(t, ts1.URL+"/v1/jobs", body, &job); code != http.StatusAccepted {
			t.Fatalf("submit: status %d", code)
		}
		if done := pollJob(t, ts1.URL, job.ID); done.State != StateDone {
			t.Fatalf("job failed: %+v", done)
		}
		keys[i] = job.ResultKey
		resp := postRawGet(t, ts1.URL+"/v1/results/"+job.ResultKey)
		payloads[i] = resp
	}
	if got := runs.Load(); got != int64(len(bodies)) {
		t.Fatalf("phase 1 ran %d simulations, want %d", got, len(bodies))
	}
	// Kill -9 semantics: the first process is abandoned, never Closed.
	ts1.Close()

	s2, ts2 := newTestServer(t, Config{Workers: 2, DataDir: dir, Runner: func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
		t.Errorf("restart re-simulated %s despite a persisted result", experiment)
		return fakeResult{Name: experiment}, nil
	}})
	for i, body := range bodies {
		var job Job
		if code := postJSON(t, ts2.URL+"/v1/jobs", body, &job); code != http.StatusAccepted {
			t.Fatalf("resubmit: status %d", code)
		}
		if job.State != StateDone || !job.CacheHit {
			t.Fatalf("restarted server did not serve %s from disk: %+v", body, job)
		}
		if job.ResultKey != keys[i] {
			t.Errorf("result key changed across restart: %s vs %s", job.ResultKey, keys[i])
		}
		got := postRawGet(t, ts2.URL+"/v1/results/"+job.ResultKey)
		if string(got) != string(payloads[i]) {
			t.Errorf("restart served different bytes for %s", keys[i])
		}
	}
	m := s2.metrics()
	if m.Store == nil || m.Store.Hits < uint64(len(bodies)) {
		t.Errorf("store metrics after restart = %+v, want >= %d hits", m.Store, len(bodies))
	}
}

// postRawGet fetches a URL and returns the body bytes.
func postRawGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCorruptedStoreEntryQuarantined corrupts one persisted result
// between restarts: boot must quarantine it and keep going, the
// corrupted key re-simulates, and intact keys still hit.
func TestCorruptedStoreEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	counting := func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
		runs.Add(1)
		return fakeResult{Name: experiment, N: o.TraceLength}, nil
	}
	s1, err := New(Config{Workers: 1, DataDir: dir, Runner: counting})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	var corrupt, intact Job
	postJSON(t, ts1.URL+"/v1/jobs", `{"experiment":"fig6","options":{"trace_length":1000}}`, &corrupt)
	pollJob(t, ts1.URL, corrupt.ID)
	postJSON(t, ts1.URL+"/v1/jobs", `{"experiment":"fig6","options":{"trace_length":2000}}`, &intact)
	pollJob(t, ts1.URL, intact.ID)
	ts1.Close()

	// Truncate one frame mid-payload: the torn-write shape.
	path := filepath.Join(dir, "results", corrupt.ResultKey+".res")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Config{Workers: 1, DataDir: dir, Runner: counting})
	var job Job
	postJSON(t, ts2.URL+"/v1/jobs", `{"experiment":"fig6","options":{"trace_length":2000}}`, &job)
	if job.State != StateDone || !job.CacheHit {
		t.Errorf("intact entry not served from disk: %+v", job)
	}
	postJSON(t, ts2.URL+"/v1/jobs", `{"experiment":"fig6","options":{"trace_length":1000}}`, &job)
	if done := pollJob(t, ts2.URL, job.ID); done.State != StateDone || done.CacheHit {
		t.Errorf("corrupted entry should re-simulate: %+v", done)
	}
	if got := runs.Load(); got != 3 {
		t.Errorf("%d simulations total, want 3 (2 initial + 1 re-run of the corrupted key)", got)
	}
	if m := s2.metrics(); m.Store == nil || m.Store.Quarantined != 1 {
		t.Errorf("store metrics = %+v, want 1 quarantined entry", m.Store)
	}
}

// TestBootResumesInterruptedJob checks the generic boot-recovery path: a
// job record left on disk by a dead process is resubmitted at New and
// runs to completion, after which the sidecar is cleaned up.
func TestBootResumesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	spec, _ := experiments.Lookup("fig4")
	canon := spec.CanonicalOptions(experiments.Options{})
	key := ResultKey("fig4", canon)

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutJobRecord(store.JobRecord{
		Key: key, Experiment: "fig4", Options: []byte(`{}`), Client: "tester",
	}); err != nil {
		t.Fatal(err)
	}

	var runs atomic.Int64
	s, ts := newTestServer(t, Config{Workers: 1, DataDir: dir, Runner: func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
		runs.Add(1)
		return fakeResult{Name: experiment, N: 1}, nil
	}})

	waitFor(t, func() bool { return s.Store().Has(key) })
	if got := runs.Load(); got != 1 {
		t.Errorf("recovery ran %d simulations, want 1", got)
	}
	if m := s.metrics(); m.Jobs.Resumed != 1 {
		t.Errorf("resumed = %d, want 1", m.Jobs.Resumed)
	}
	if recs := s.Store().JobRecords(); len(recs) != 0 {
		t.Errorf("job record not cleaned up after completion: %+v", recs)
	}
	// The recovered result is served.
	if code := getJSON(t, ts.URL+"/v1/results/"+key, nil); code != http.StatusOK {
		t.Errorf("recovered result not served: status %d", code)
	}
}
