// Package faultrunner wraps a service.Runner with deterministic fault
// injection for chaos testing: transient errors, panics and delays at
// configurable rates, driven by a seeded counter hash so a given seed
// replays the exact same fault schedule on every run. The chaos suite
// uses it to prove the server's containment story — retries absorb
// transient faults, recover() absorbs panics, timeouts absorb hangs —
// under the race detector, without any nondeterministic flakiness.
package faultrunner

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"penelope/internal/experiments"
	"penelope/internal/service"
)

// Config sets the fault schedule. Rates are probabilities in [0, 1]
// evaluated independently per invocation; FailFirst short-circuits them
// for the first N invocations, which is the deterministic way to script
// "fails twice, then succeeds".
type Config struct {
	// Seed drives the per-invocation fault decisions; the same seed
	// yields the same schedule.
	Seed uint64
	// FailFirst makes the first N invocations fail with a transient
	// error regardless of the rates.
	FailFirst int
	// ErrorRate is the probability an invocation returns a transient
	// error (wrapped around service.ErrTransient, so the server
	// retries it).
	ErrorRate float64
	// PanicRate is the probability an invocation panics.
	PanicRate float64
	// Delay is injected before every invocation, honouring context
	// cancellation — set it near the server's JobTimeout to exercise
	// the timeout path.
	Delay time.Duration
}

// Injector wraps a Runner and counts what it injected.
type Injector struct {
	cfg  Config
	next service.Runner

	runs   atomic.Uint64
	faults atomic.Uint64
	panics atomic.Uint64
}

// New wraps next with cfg's fault schedule.
func New(cfg Config, next service.Runner) *Injector {
	return &Injector{cfg: cfg, next: next}
}

// Runs, Faults and Panics report what the injector did so far.
func (f *Injector) Runs() uint64   { return f.runs.Load() }
func (f *Injector) Faults() uint64 { return f.faults.Load() }
func (f *Injector) Panics() uint64 { return f.panics.Load() }

// Runner returns the fault-injecting service.Runner.
func (f *Injector) Runner() service.Runner {
	return func(ctx context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
		n := f.runs.Add(1)
		if f.cfg.Delay > 0 {
			select {
			case <-time.After(f.cfg.Delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if n <= uint64(f.cfg.FailFirst) {
			f.faults.Add(1)
			return nil, fmt.Errorf("faultrunner: scripted fault on run %d: %w", n, service.ErrTransient)
		}
		// Two independent uniforms per invocation, derived from the
		// seeded counter: deterministic, yet uncorrelated decisions.
		h := splitmix64(f.cfg.Seed + 2*n)
		if f.cfg.ErrorRate > 0 && unit(h) < f.cfg.ErrorRate {
			f.faults.Add(1)
			return nil, fmt.Errorf("faultrunner: injected fault on run %d: %w", n, service.ErrTransient)
		}
		h = splitmix64(f.cfg.Seed + 2*n + 1)
		if f.cfg.PanicRate > 0 && unit(h) < f.cfg.PanicRate {
			f.panics.Add(1)
			panic(fmt.Sprintf("faultrunner: injected panic on run %d", n))
		}
		return f.next(ctx, experiment, o)
	}
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed hash of
// the invocation counter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}
