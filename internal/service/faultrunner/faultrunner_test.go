package faultrunner

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"penelope/internal/experiments"
	"penelope/internal/service"
)

type okResult struct{}

func (okResult) ID() string         { return "ok" }
func (okResult) Render(w io.Writer) {}

// okRunner never fails; the injector supplies all the trouble.
func okRunner(ctx context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
	return okResult{}, nil
}

// faultSchedule replays n invocations and records which ones faulted or
// panicked.
func faultSchedule(cfg Config, n int) []string {
	inj := New(cfg, okRunner)
	run := inj.Runner()
	out := make([]string, n)
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if recover() != nil {
					out[i] = "panic"
				}
			}()
			_, err := run(context.Background(), "fig4", experiments.Options{})
			switch {
			case err == nil:
				out[i] = "ok"
			case errors.Is(err, service.ErrTransient):
				out[i] = "transient"
			default:
				out[i] = "error"
			}
		}()
	}
	return out
}

// TestDeterministicSchedule requires the same seed to replay the exact
// same fault sequence — the property the chaos suite's reproducibility
// rests on — and different seeds to diverge.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 7, ErrorRate: 0.3, PanicRate: 0.2}
	a := faultSchedule(cfg, 200)
	b := faultSchedule(cfg, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d diverged across replays: %s vs %s", i, a[i], b[i])
		}
	}
	saw := map[string]int{}
	for _, s := range a {
		saw[s]++
	}
	if saw["transient"] == 0 || saw["panic"] == 0 || saw["ok"] == 0 {
		t.Errorf("schedule not mixed: %v", saw)
	}

	c := faultSchedule(Config{Seed: 8, ErrorRate: 0.3, PanicRate: 0.2}, 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical schedules")
	}
}

// TestFailFirst checks the scripted prefix: exactly the first N runs
// fail, transiently, then the runner recovers.
func TestFailFirst(t *testing.T) {
	inj := New(Config{FailFirst: 2}, okRunner)
	run := inj.Runner()
	for i := 0; i < 2; i++ {
		if _, err := run(context.Background(), "fig4", experiments.Options{}); !errors.Is(err, service.ErrTransient) {
			t.Fatalf("run %d: err = %v, want transient", i, err)
		}
	}
	if _, err := run(context.Background(), "fig4", experiments.Options{}); err != nil {
		t.Fatalf("run after FailFirst prefix failed: %v", err)
	}
	if inj.Runs() != 3 || inj.Faults() != 2 || inj.Panics() != 0 {
		t.Errorf("counters = %d runs / %d faults / %d panics, want 3/2/0",
			inj.Runs(), inj.Faults(), inj.Panics())
	}
}

// TestDelayHonoursContext checks an injected delay aborts promptly on
// cancellation instead of sleeping through it — what makes the injector
// usable for timeout testing.
func TestDelayHonoursContext(t *testing.T) {
	inj := New(Config{Delay: time.Minute}, okRunner)
	run := inj.Runner()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := run(ctx, "fig4", experiments.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled delay still blocked for %v", elapsed)
	}
}
