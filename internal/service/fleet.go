package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"penelope/internal/fleetops"
)

// sweepTopic names the bus topic carrying a sweep's point events.
func sweepTopic(id string) string { return "sweep/" + id }

// RegisterFleet admits a population into the continuous scheduler —
// the programmatic form of POST /v1/fleets, used by the CLI's
// -fleet-config boot path.
func (s *Server) RegisterFleet(reg fleetops.Registration) (fleetops.Status, error) {
	return s.sched.Register(reg)
}

// FleetStatus returns one scheduled population's status.
func (s *Server) FleetStatus(name string) (fleetops.Status, bool) {
	return s.sched.Get(name)
}

// handleFleetRegister admits POST /v1/fleets: one registration, charged
// one admission token like a job submission.
func (s *Server) handleFleetRegister(w http.ResponseWriter, r *http.Request) {
	var reg fleetops.Registration
	if err := decodeStrict(r, &reg); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, errShuttingDown)
		return
	}
	client := clientID(r, "")
	if ok, wait := s.admitClient(client, 1); !ok {
		setRetryAfter(w, wait)
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("client %q over rate limit (%.3g/s)", client, s.cfg.Rate))
		return
	}
	st, err := s.sched.Register(reg)
	switch {
	case errors.Is(err, fleetops.ErrExists):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusCreated, st)
	}
}

func (s *Server) handleFleetList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"fleets": s.sched.List()})
}

func (s *Server) handleFleetGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, ok := s.sched.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown fleet %q", name))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleFleetDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.sched.Deregister(name); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deregistered", "name": name})
}

func (s *Server) handleFleetEvents(w http.ResponseWriter, r *http.Request) {
	s.streamFleet(w, r, false)
}

func (s *Server) handleFleetEventsNDJSON(w http.ResponseWriter, r *http.Request) {
	s.streamFleet(w, r, true)
}

func (s *Server) streamFleet(w http.ResponseWriter, r *http.Request, ndjson bool) {
	name := r.PathValue("name")
	topic := fleetTopicName(name)
	// A fleet streams while registered; after deregistration the topic
	// is dropped and the stream 404s rather than idling forever.
	if !s.bus.HasTopic(topic) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown fleet %q", name))
		return
	}
	s.streamEvents(w, r, topic, ndjson)
}

// fleetTopicName mirrors fleetops' topic naming for fleet events.
func fleetTopicName(name string) string { return "fleet/" + name }

func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	s.streamSweep(w, r, false)
}

func (s *Server) handleSweepEventsNDJSON(w http.ResponseWriter, r *http.Request) {
	s.streamSweep(w, r, true)
}

func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, ndjson bool) {
	id := r.PathValue("id")
	topic := sweepTopic(id)
	if !s.bus.HasTopic(topic) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", id))
		return
	}
	s.streamEvents(w, r, topic, ndjson)
}

// streamHeartbeat spaces SSE keepalive comments so idle streams survive
// proxies with read timeouts.
const streamHeartbeat = 15 * time.Second

// streamEvents serves one topic as SSE or NDJSON. Resume: the
// Last-Event-ID header (or ?after=seq) replays the history ring past
// that sequence number before live delivery. ?max=N ends the response
// after N events — the hook that lets curl-based smoke tests read a
// bounded stream. The subscriber buffer is bounded; a slow client drops
// events (counted in /metrics) rather than slowing the epoch loop.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, topic string, ndjson bool) {
	var after uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			after = n
		}
	}
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad after %q", v))
			return
		}
		after = n
	}
	max := 0
	if v := r.URL.Query().Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad max %q", v))
			return
		}
		max = n
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	// Subscribe before committing the response: SubscribeExisting fails
	// when a concurrent Deregister/expiry dropped the topic between the
	// handler's HasTopic check and here, so the losing stream 404s
	// instead of attaching to a resurrected ghost topic and idling
	// forever.
	sub, ok := s.bus.SubscribeExisting(topic, after, 64)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown stream topic %q", topic))
		return
	}
	defer sub.Close()
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	heartbeat := time.NewTicker(streamHeartbeat)
	defer heartbeat.Stop()
	sent := 0
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				// Topic dropped (fleet deregistered): end the stream.
				return
			}
			if err := writeStreamEvent(w, ev, ndjson); err != nil {
				return
			}
			flusher.Flush()
			sent++
			if max > 0 && sent >= max {
				return
			}
		case <-heartbeat.C:
			if !ndjson {
				if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
					return
				}
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		}
	}
}

// writeStreamEvent renders one event: an NDJSON line, or an SSE frame
// with the sequence number as the resumable event id.
func writeStreamEvent(w http.ResponseWriter, ev fleetops.Event, ndjson bool) error {
	payload, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if ndjson {
		_, err = fmt.Fprintf(w, "%s\n", payload)
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, payload)
	return err
}
