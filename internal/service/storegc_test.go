package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"penelope/internal/experiments"
)

// blobResult pads its payload to a size the test controls, so the
// store's disk budget can be crossed on purpose.
type blobResult struct {
	Name string `json:"name"`
	Blob string `json:"blob"`
}

func (r blobResult) ID() string         { return r.Name }
func (r blobResult) Render(w io.Writer) { fmt.Fprintln(w, r.Name) }

// blobRunner sizes each result's padding from TraceLength, so distinct
// options produce distinct keys and predictable payload sizes.
func blobRunner(ctx context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
	return blobResult{Name: experiment, Blob: strings.Repeat("x", o.TraceLength)}, nil
}

// TestReadyzStoreDegradedAndRecovers drives the store over its disk
// budget through the service: an oversized result sheds its cache
// write (the job itself still succeeds), /readyz degrades and names
// the store as the cause, and a result that fits recovers it.
func TestReadyzStoreDegradedAndRecovers(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:     1,
		DataDir:     t.TempDir(),
		StoreBudget: 4096,
		Runner:      blobRunner,
	})

	submit := func(traceLength int) Job {
		var job Job
		body := fmt.Sprintf(`{"experiment":"fig5","options":{"trace_length":%d}}`, traceLength)
		if code := postJSON(t, ts.URL+"/v1/jobs", body, &job); code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit: status %d", code)
		}
		return pollJob(t, ts.URL, job.ID)
	}

	// A payload bigger than the whole budget can never be cached: the
	// job still completes, the store degrades.
	job := submit(64 * 1024)
	if job.State != StateDone {
		t.Fatalf("oversized job failed: %+v", job.Error)
	}
	if s.store.Has(job.ResultKey) {
		t.Error("oversized result cached past the budget")
	}
	var ready readiness
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with degraded store: status %d, body %+v", code, ready)
	}
	if ready.Status != "degraded" || ready.Store == nil || ready.Store.BudgetRefusals == 0 {
		t.Fatalf("degraded readyz does not name the store: %+v", ready)
	}

	// A result that fits recovers the store and readiness.
	job = submit(64)
	if job.State != StateDone {
		t.Fatalf("small job failed: %+v", job.Error)
	}
	if !s.store.Has(job.ResultKey) {
		t.Fatal("small result not cached; budget sized wrong for the envelope")
	}
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusOK || ready.Status != "ready" {
		t.Fatalf("readyz after recovery: status %d %q", code, ready.Status)
	}

	// The store section rides along in /metrics, budget included.
	var m Metrics
	if code := getJSON(t, ts.URL+"/metrics.json", &m); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if m.Store == nil || m.Store.BudgetBytes != 4096 || m.Store.BudgetRefusals == 0 {
		t.Fatalf("store metrics missing budget counters: %+v", m.Store)
	}
}

// TestServerCloseStopsScrubber covers the scrubber lifecycle through
// the server: New starts it, Close stops it, and a scrub pass is
// visible in the store stats.
func TestServerCloseStopsScrubber(t *testing.T) {
	s, err := New(Config{
		Workers:       1,
		DataDir:       t.TempDir(),
		ScrubInterval: time.Millisecond,
		Runner:        blobRunner,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !waitForCond(2*time.Second, func() bool { return s.store.Stats().ScrubPasses > 0 }) {
		t.Error("background scrubber never ran")
	}
	s.Close()
	passes := s.store.Stats().ScrubPasses
	time.Sleep(10 * time.Millisecond)
	if got := s.store.Stats().ScrubPasses; got != passes {
		t.Errorf("scrubber survived Close: %d -> %d passes", passes, got)
	}
}

// waitForCond polls cond until it holds or the timeout passes.
func waitForCond(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}
