package service_test

// The chaos suite runs the server against the fault-injection harness
// and through simulated crash/restart cycles. It lives in an external
// test package so it exercises only the exported surface — the same
// contract cmd/penelope and real clients get — and it is written to be
// deterministic: faults come from a seeded schedule, and interruptions
// are driven by counted context polls, not wall-clock timing.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"penelope/internal/circuit"
	"penelope/internal/experiments"
	"penelope/internal/fleetops"
	"penelope/internal/lifetime"
	"penelope/internal/service"
	"penelope/internal/service/faultrunner"
	"penelope/internal/store"
)

type chaosResult struct {
	Name string
	N    int
}

func (r chaosResult) ID() string { return r.Name }
func (r chaosResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", r.Name, r.N)
}

func baseRunner(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
	return chaosResult{Name: experiment, N: o.TraceLength}, nil
}

func pollTerminal(t *testing.T, base, id string) service.Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var job service.Job
		err = jsonDecode(resp, &job)
		if err != nil {
			t.Fatal(err)
		}
		if job.State == service.StateDone || job.State == service.StateFailed {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// TestChaosFaultStorm floods the server with jobs while the injector
// fires transient errors and panics from a fixed seed, and requires
// every job to reach a terminal state with the books balanced: the
// server absorbs the storm instead of deadlocking, leaking jobs, or
// crashing.
func TestChaosFaultStorm(t *testing.T) {
	inj := faultrunner.New(faultrunner.Config{
		Seed:      42,
		ErrorRate: 0.25,
		PanicRate: 0.10,
	}, baseRunner)
	srv, err := service.New(service.Config{
		Workers:      4,
		QueueDepth:   128,
		MaxRetries:   4,
		RetryBackoff: time.Millisecond,
		Runner:       inj.Runner(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	const n = 40
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		body := fmt.Sprintf(`{"experiment":"fig6","client":"storm-%d","options":{"trace_length":%d}}`, i%3, 1000+i)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var job service.Job
		if err := jsonDecode(resp, &job); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids[i] = job.ID
	}

	done, failed := 0, 0
	for _, id := range ids {
		switch job := pollTerminal(t, ts.URL, id); job.State {
		case service.StateDone:
			done++
		case service.StateFailed:
			failed++
			if job.Error == "" {
				t.Errorf("failed job %s carries no error", id)
			}
		}
	}
	if done+failed != n {
		t.Fatalf("%d done + %d failed != %d submitted", done, failed, n)
	}
	if done == 0 {
		t.Error("no job survived the storm; retries should absorb most transient faults")
	}

	// The books balance: recovered panics equal injected panics, and the
	// server is still healthy enough to run a clean job.
	resp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var m service.Metrics
	if err := jsonDecode(resp, &m); err != nil {
		t.Fatal(err)
	}
	if m.Jobs.PanicsRecovered != inj.Panics() {
		t.Errorf("panics recovered %d != injected %d", m.Jobs.PanicsRecovered, inj.Panics())
	}
	if m.Jobs.Done != uint64(done) || m.Jobs.Failed != uint64(failed) {
		t.Errorf("metrics %d/%d disagree with observed %d/%d", m.Jobs.Done, m.Jobs.Failed, done, failed)
	}
	if m.Jobs.Queued != 0 || m.Jobs.Running != 0 {
		t.Errorf("leaked active jobs: %d queued, %d running after the storm", m.Jobs.Queued, m.Jobs.Running)
	}
}

// TestChaosKillRestartServesFromDisk simulates kill -9 (the first
// server is abandoned, never Closed) and requires the restarted server
// to answer identical submissions byte-for-byte from the persistent
// store, even while the injector keeps faulting around the live runs.
func TestChaosKillRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	inj := faultrunner.New(faultrunner.Config{Seed: 7, ErrorRate: 0.3}, baseRunner)
	s1, err := service.New(service.Config{
		Workers: 2, DataDir: dir,
		MaxRetries: 6, RetryBackoff: time.Millisecond,
		Runner: inj.Runner(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	const n = 8
	payloads := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		body := fmt.Sprintf(`{"experiment":"fig6","options":{"trace_length":%d}}`, 5000+i)
		resp, err := http.Post(ts1.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var job service.Job
		if err := jsonDecode(resp, &job); err != nil {
			t.Fatal(err)
		}
		if done := pollTerminal(t, ts1.URL, job.ID); done.State != service.StateDone {
			t.Fatalf("job %d failed despite retries: %+v", i, done)
		}
		payloads[job.ResultKey] = fetch(t, ts1.URL+"/v1/results/"+job.ResultKey)
	}
	ts1.Close() // abandon s1 without Close: kill -9

	s2, err := service.New(service.Config{
		Workers: 2, DataDir: dir,
		Runner: func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
			t.Errorf("restarted server re-simulated %s/%d", experiment, o.TraceLength)
			return chaosResult{Name: experiment}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		s2.Close()
	}()

	for i := 0; i < n; i++ {
		body := fmt.Sprintf(`{"experiment":"fig6","options":{"trace_length":%d}}`, 5000+i)
		resp, err := http.Post(ts2.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var job service.Job
		if err := jsonDecode(resp, &job); err != nil {
			t.Fatal(err)
		}
		if job.State != service.StateDone || !job.CacheHit {
			t.Fatalf("restart did not serve job %d from disk: %+v", i, job)
		}
		if got := fetch(t, ts2.URL+"/v1/results/"+job.ResultKey); !bytes.Equal(got, payloads[job.ResultKey]) {
			t.Errorf("restart served different bytes for %s", job.ResultKey)
		}
	}
}

// pollCtx cancels after a fixed number of Err() polls — the
// deterministic way to interrupt a checkpointing lifetime run at an
// exact epoch.
type pollCtx struct {
	context.Context
	polls, limit int
}

func (c *pollCtx) Err() error {
	c.polls++
	if c.polls > c.limit {
		return context.Canceled
	}
	return nil
}

// TestChaosLifetimeResumeAcrossRestart is the end-to-end resume
// guarantee: a lifetime job killed mid-run leaves a checkpoint and a
// job record; the next boot resumes it automatically from the
// checkpointed epoch; and the final payload is byte-identical to an
// uninterrupted run.
func TestChaosLifetimeResumeAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real fleet lifetime engine")
	}
	dir := t.TempDir()
	o := experiments.Options{
		TraceLength: 2000, TraceStride: 120,
		Population: 900, Years: 3, EpochDays: 45,
		VariationSigma: 0.1, FleetSeed: 5,
	}
	spec, _ := experiments.Lookup("lifetime")
	canon := spec.CanonicalOptions(o)
	key := service.ResultKey("lifetime", canon)

	// Phase 1: the runner mimics a process dying mid-run — the
	// checkpointed engine advances a handful of epochs under a counted
	// context, persists its state, and the job fails as interrupted.
	// Because it never completes, the resumable job record stays on
	// disk, exactly as kill -9 would leave things.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := st.CheckpointPath(key)
	s1, err := service.New(service.Config{
		Workers: 1, DataDir: dir, MaxRetries: -1,
		Runner: func(_ context.Context, experiment string, opts experiments.Options) (experiments.Result, error) {
			limited := &pollCtx{Context: context.Background(), limit: 4}
			return experiments.LifetimeCheckpointedCtx(limited, opts, ckpt, 1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	optJSON, _ := json.Marshal(canon)
	resp, err := http.Post(ts1.URL+"/v1/jobs", "application/json",
		strings.NewReader(fmt.Sprintf(`{"experiment":"lifetime","options":%s}`, optJSON)))
	if err != nil {
		t.Fatal(err)
	}
	var job service.Job
	if err := jsonDecode(resp, &job); err != nil {
		t.Fatal(err)
	}
	if job.ResultKey != key {
		t.Fatalf("submitted key %s != computed %s", job.ResultKey, key)
	}
	if done := pollTerminal(t, ts1.URL, job.ID); done.State != service.StateFailed ||
		!strings.Contains(done.Error, "interrupted") {
		t.Fatalf("phase 1 job = %+v, want interrupted failure", done)
	}
	if len(st.JobRecords()) != 1 {
		t.Fatal("no resumable job record left behind")
	}
	ts1.Close() // kill -9: no graceful Close

	// Phase 2: a fresh boot over the same data dir resumes the job with
	// the real registry runner (nil Runner) and completes it.
	s2, err := service.New(service.Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		s2.Close()
	}()
	deadline := time.Now().Add(120 * time.Second)
	for !s2.Store().Has(key) {
		if time.Now().After(deadline) {
			t.Fatal("resumed lifetime job never completed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	got := fetch(t, ts2.URL+"/v1/results/"+key)

	// Reference: an uninterrupted in-process run under the same
	// canonical options.
	res, err := experiments.Run("lifetime", canon)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.NewPayload(res, canon).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed lifetime payload not byte-identical to an uninterrupted run")
	}

	// The resume bookkeeping: counted, and the sidecar cleaned up.
	resp, err = http.Get(ts2.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var m service.Metrics
	if err := jsonDecode(resp, &m); err != nil {
		t.Fatal(err)
	}
	if m.Jobs.Resumed != 1 {
		t.Errorf("resumed = %d, want 1", m.Jobs.Resumed)
	}
	if recs := s2.Store().JobRecords(); len(recs) != 0 {
		t.Errorf("job record survived completion: %+v", recs)
	}
}

// TestChaosGracefulCloseCheckpoints drives the cooperative-shutdown
// path: Close cancels an in-flight checkpointed lifetime run, which
// persists its state within the drain grace instead of being lost.
func TestChaosGracefulCloseCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real fleet lifetime engine")
	}
	dir := t.TempDir()
	o := experiments.Options{
		TraceLength: 2000, TraceStride: 120,
		Population: 900, Years: 3, EpochDays: 45,
		VariationSigma: 0.1, FleetSeed: 5,
	}
	s, err := service.New(service.Config{
		Workers: 1, DataDir: dir, MaxRetries: -1, CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec, _ := experiments.Lookup("lifetime")
	canon := spec.CanonicalOptions(o)
	key := service.ResultKey("lifetime", canon)
	optJSON, _ := json.Marshal(canon)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(fmt.Sprintf(`{"experiment":"lifetime","options":%s}`, optJSON)))
	if err != nil {
		t.Fatal(err)
	}
	var job service.Job
	if err := jsonDecode(resp, &job); err != nil {
		t.Fatal(err)
	}

	// Wait for the first checkpoint write — proof the engine is mid-run
	// — then pull the plug gracefully.
	ckpt := s.Store().CheckpointPath(key)
	deadline := time.Now().Add(120 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if s.Store().Has(key) {
			t.Skip("run completed before the shutdown raced it; nothing to drain")
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint ever written")
		}
		time.Sleep(10 * time.Millisecond)
	}
	start := time.Now()
	s.Close()
	if took := time.Since(start); took > 30*time.Second {
		t.Fatalf("graceful close took %v", took)
	}
	// Either the run finished during the drain (result stored) or it
	// was interrupted with its state checkpointed for the next boot.
	if !s.Store().Has(key) {
		if _, err := os.Stat(ckpt); err != nil {
			t.Fatalf("close lost the in-flight run: no result and no checkpoint (%v)", err)
		}
		if len(s.Store().JobRecords()) != 1 {
			t.Error("interrupted run left no resumable job record")
		}
	}
}

// fetch GETs a URL and returns the body, failing on non-200.
func fetch(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// chaosFleetConfig is the deterministic synthetic population the fleet
// chaos tests age: small, fast, with real process variation so resumed
// trajectories have something nontrivial to diverge on.
func chaosFleetConfig() lifetime.Config {
	p := lifetime.DefaultParams()
	return lifetime.Config{
		Structures: []string{"adder", "regfile"},
		// ~73 epochs: long enough that the SIGTERM below always lands
		// mid-run, short enough that the resumed run finishes in well
		// under a second of 1ms ticks.
		Phases:     []lifetime.Phase{{Name: "service", Years: 6.0, Duty: []float64{0.55, 0.35}}},
		Population: 512,
		EpochYears: 30.0 / 365.25,
		Seed:       11,
		Sigma:      0.08,
		Limit:      lifetime.DefaultLimit,
		Params:     p,
		Delay:      circuit.NewDelayModel(circuit.PathStats{Depth: 10, Narrow: 5}, p.MaxVTHShift, p.MaxGuardband),
	}
}

// TestChaosFleetSIGTERMMidTickResumes is the continuous-operations
// drain guarantee: Close (the SIGTERM path) lands while registered
// populations are mid-tick, every population's checkpoint persists
// within the drain grace, and a restarted server resumes each one from
// its sidecar — finishing with a trajectory byte-identical to an
// uninterrupted reference run of the same engine config.
func TestChaosFleetSIGTERMMidTickResumes(t *testing.T) {
	dir := t.TempDir()
	cfg := chaosFleetConfig()
	mk := func() (*service.Server, *httptest.Server) {
		s, err := service.New(service.Config{
			Workers: 2, DataDir: dir, DrainGrace: 5 * time.Second,
			FleetTick:        time.Millisecond,
			FleetTickTimeout: 2 * time.Second,
			FleetBuilder: func(fleetops.Registration) (lifetime.Config, error) {
				return cfg, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return s, httptest.NewServer(s.Handler())
	}

	s1, ts1 := mk()
	names := []string{"fleet-a", "fleet-b"}
	for _, name := range names {
		resp, err := http.Post(ts1.URL+"/v1/fleets", "application/json",
			strings.NewReader(fmt.Sprintf(`{"name":%q}`, name)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register %s: status %d", name, resp.StatusCode)
		}
	}

	// Let every population tick a few epochs; with 1ms ticks the Close
	// below almost certainly lands mid-tick for at least one of them.
	preKill := make(map[string]int, len(names))
	deadline := time.Now().Add(30 * time.Second)
	for {
		ready := 0
		for _, name := range names {
			// Sticky: once a population has been seen active past epoch
			// 2 it stays counted, so one fleet racing ahead can't starve
			// the wait on the other.
			if _, ok := preKill[name]; ok {
				ready++
				continue
			}
			if st, ok := s1.FleetStatus(name); ok && st.Epoch >= 2 && st.State == fleetops.StateActive {
				preKill[name] = st.Epoch
				ready++
			}
		}
		if ready == len(names) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("populations never reached epoch 2")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ts1.Close()
	start := time.Now()
	s1.Close() // SIGTERM: drain, checkpoint every population
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("drain took %v, want within the grace", took)
	}

	// Phase 2: a fresh boot over the same data dir resumes both
	// populations automatically (no re-registration) and runs them to
	// done.
	s2, ts2 := mk()
	defer func() {
		ts2.Close()
		s2.Close()
	}()
	// The engine restore happens inside the first tick (under the same
	// retry protection as any tick), so wait for it: each population
	// must come back flagged resumed, continuing past its pre-kill epoch
	// rather than restarting from zero.
	for _, name := range names {
		if _, ok := s2.FleetStatus(name); !ok {
			t.Fatalf("restart lost fleet %s", name)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			st, _ := s2.FleetStatus(name)
			if st.Ticks >= 1 {
				if !st.Resumed {
					t.Fatalf("fleet %s ticked without resuming its checkpoint: %+v", name, st)
				}
				if st.Epoch <= preKill[name] {
					t.Fatalf("fleet %s resumed at epoch %d, not past pre-kill epoch %d", name, st.Epoch, preKill[name])
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("fleet %s never ticked after restart: %+v", name, st)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	for _, name := range names {
		deadline := time.Now().Add(60 * time.Second)
		for {
			st, ok := s2.FleetStatus(name)
			if ok && st.State == fleetops.StateDone {
				if !st.Resumed {
					t.Errorf("fleet %s finished without the resumed flag", name)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("fleet %s never finished after resume: %+v", name, st)
			}
			time.Sleep(3 * time.Millisecond)
		}
	}

	// Byte-identical resume: the final epoch row of each resumed
	// population equals an uninterrupted reference run's.
	ref, err := lifetime.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for !ref.Done() {
		ref.Step(2)
	}
	want := ref.Stats()[len(ref.Stats())-1]
	for _, name := range names {
		st, _ := s2.FleetStatus(name)
		if st.Last == nil {
			t.Fatalf("fleet %s has no final stats", name)
		}
		if !reflect.DeepEqual(*st.Last, want) {
			t.Errorf("fleet %s resumed trajectory diverged:\n got %+v\nwant %+v", name, *st.Last, want)
		}
	}

	// /metrics reports the boot-time resumes.
	resp, err := http.Get(ts2.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var m service.Metrics
	if err := jsonDecode(resp, &m); err != nil {
		t.Fatal(err)
	}
	if m.Fleet.ResumedBoot != uint64(len(names)) {
		t.Errorf("resumed_at_boot = %d, want %d", m.Fleet.ResumedBoot, len(names))
	}
}
