package service

import (
	"math"
	"math/rand/v2"
	"sync"
	"time"
)

// This file is the admission-control and fairness layer of the server:
// a per-client round-robin work queue (so one flooding client cannot
// starve the others behind a FIFO), per-client token-bucket rate
// limiting (429 + Retry-After for clients submitting faster than their
// budget), and a backoff controller that turns queue depth and observed
// service time into honest Retry-After hints and progressive load
// shedding instead of a cliff-edge reject at the queue bound.

// fairPool replaces the single FIFO channel of the original worker
// pool: each client gets its own pending queue, and workers drain the
// clients round-robin, one job per turn (deficit round-robin with a
// unit quantum — jobs are single simulations, so equal turn counts are
// equal shares). A greedy client's backlog therefore delays only
// itself; a client with one queued job waits at most one full turn of
// the active clients, not the whole backlog.
type fairPool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string][]func()
	ring   []string // clients with pending work, round-robin order
	next   int      // ring cursor
	depth  int      // total queued tasks across clients
	max    int
	closed bool
	wg     sync.WaitGroup
}

// newFairPool starts `workers` goroutines draining a fair queue bounded
// at `depth` total tasks.
func newFairPool(workers, depth int) *fairPool {
	p := &fairPool{queues: make(map[string][]func()), max: depth}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.work()
	}
	return p
}

// submit enqueues fn on client's queue. It never blocks: a full queue
// returns errQueueFull and a closed pool errShuttingDown, so HTTP
// handlers fail the job instead of wedging (and never panic on a
// closed channel — there is no channel).
func (p *fairPool) submit(client string, fn func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errShuttingDown
	}
	if p.depth >= p.max {
		return errQueueFull
	}
	q, active := p.queues[client]
	if !active {
		p.ring = append(p.ring, client)
	}
	p.queues[client] = append(q, fn)
	p.depth++
	p.cond.Signal()
	return nil
}

// queueDepth returns the number of queued (not yet running) tasks.
func (p *fairPool) queueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.depth
}

// work is one worker: pick the next client in the ring, run its oldest
// task, advance the ring. Exits when the pool is closed and drained —
// queued tasks still run after close (their cache entries must
// complete), but the server's context is already cancelled, so they
// fail fast instead of simulating.
func (p *fairPool) work() {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		for p.depth == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.depth == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		if p.next >= len(p.ring) {
			p.next = 0
		}
		client := p.ring[p.next]
		q := p.queues[client]
		fn := q[0]
		q[0] = nil
		if len(q) == 1 {
			delete(p.queues, client)
			p.ring = append(p.ring[:p.next], p.ring[p.next+1:]...)
			// next now indexes the following client; no advance.
		} else {
			p.queues[client] = q[1:]
			p.next++
		}
		p.depth--
		p.mu.Unlock()
		fn()
		p.mu.Lock()
	}
}

// close marks the pool closed and waits for the workers to drain what
// is already queued. Safe to call once; submit after close fails with
// errShuttingDown.
func (p *fairPool) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// rateLimiter is a per-client token bucket: each submission spends one
// token (sweeps spend one per grid point), buckets refill at `rate`
// tokens/second up to `burst`. rate <= 0 disables limiting.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	buckets map[string]*bucket
	now     func() time.Time // test hook
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = int(math.Ceil(rate))
		if burst < 1 {
			burst = 1
		}
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow spends n tokens from client's bucket if available.
func (l *rateLimiter) allow(client string, n float64) bool {
	if l == nil || l.rate <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[client]
	if !ok {
		// A full bucket is indistinguishable from an absent one, so the
		// map only holds clients below their burst; sweep refilled
		// buckets when the map grows past a bound.
		if len(l.buckets) > 4096 {
			for k, old := range l.buckets {
				if refill(old, now, l.rate, l.burst) >= l.burst {
					delete(l.buckets, k)
				}
			}
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	b.tokens = refill(b, now, l.rate, l.burst)
	b.last = now
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// retryAfter returns how long client must wait for n tokens.
func (l *rateLimiter) retryAfter(client string, n float64) time.Duration {
	if l == nil || l.rate <= 0 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[client]
	if !ok {
		return 0
	}
	have := refill(b, l.now(), l.rate, l.burst)
	if have >= n {
		return 0
	}
	return time.Duration((n - have) / l.rate * float64(time.Second))
}

func refill(b *bucket, now time.Time, rate, burst float64) float64 {
	tokens := b.tokens + now.Sub(b.last).Seconds()*rate
	if tokens > burst {
		tokens = burst
	}
	return tokens
}

// backoffController turns queue pressure into backpressure signals. It
// tracks an EWMA of observed job service time, computes Retry-After
// hints from queue depth (the time until a newly rejected job would
// plausibly find a slot), and sheds load progressively once the queue
// crosses its high-water mark — the acceptance probability falls
// linearly from 1 at the high-water mark to 0 at the full queue, so an
// overloaded server degrades smoothly instead of oscillating between
// all-accept and all-reject.
type backoffController struct {
	mu        sync.Mutex
	svcTime   float64 // EWMA of job service seconds; 0 = no samples yet
	waitTime  float64 // EWMA of observed queue-wait seconds; 0 = no samples yet
	highWater float64 // queue fraction where shedding starts
	rng       *rand.Rand
	shed      uint64
}

// defaultServiceTime seeds Retry-After before any job has completed.
const defaultServiceTime = 500 * time.Millisecond

func newBackoffController(highWater float64) *backoffController {
	if highWater <= 0 || highWater >= 1 {
		highWater = 0.75
	}
	return &backoffController{
		highWater: highWater,
		rng:       rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64())),
	}
}

// observe folds one completed job's service time into the EWMA.
func (b *backoffController) observe(d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := d.Seconds()
	if b.svcTime == 0 {
		b.svcTime = s
	} else {
		b.svcTime = 0.8*b.svcTime + 0.2*s
	}
}

// observeWait folds one leader job's measured queue wait (submit →
// worker pickup) into the wait EWMA. The same measurement feeds the
// queue-wait histogram, so the Retry-After hint and the exported
// distribution can never disagree about what the server observed.
func (b *backoffController) observeWait(d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := d.Seconds()
	if b.waitTime == 0 {
		b.waitTime = s
	} else {
		b.waitTime = 0.8*b.waitTime + 0.2*s
	}
}

// admit decides whether a submission may enqueue given the current
// queue depth. Below the high-water mark everything is admitted; above
// it, admission probability decays linearly to zero at the bound.
func (b *backoffController) admit(depth, max int) bool {
	if max <= 0 {
		return true
	}
	q := float64(depth) / float64(max)
	if q < b.highWater {
		return true
	}
	if q >= 1 {
		b.mu.Lock()
		b.shed++
		b.mu.Unlock()
		return false
	}
	pReject := (q - b.highWater) / (1 - b.highWater)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rng.Float64() < pReject {
		b.shed++
		return false
	}
	return true
}

// retryAfter estimates when a rejected submission is worth retrying:
// the time for the current backlog to drain through the workers, at
// the observed per-job service time — raised to the measured queue-wait
// EWMA when jobs are actually waiting longer than the model predicts
// (ring contention, uneven service times) — clamped to [1s, 300s].
func (b *backoffController) retryAfter(depth, workers int) time.Duration {
	b.mu.Lock()
	svc := b.svcTime
	observedWait := b.waitTime
	b.mu.Unlock()
	if svc == 0 {
		svc = defaultServiceTime.Seconds()
	}
	if workers < 1 {
		workers = 1
	}
	secs := svc * float64(depth+1) / float64(workers)
	if observedWait > secs {
		secs = observedWait
	}
	wait := time.Duration(secs * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	if wait > 300*time.Second {
		wait = 300 * time.Second
	}
	return wait
}

// shedCount returns how many submissions progressive shedding dropped.
func (b *backoffController) shedCount() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.shed
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1.
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
