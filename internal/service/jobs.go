package service

import (
	"time"

	"penelope/internal/experiments"
	"penelope/internal/obs"
)

// JobState is the lifecycle of a job: queued → running → done|failed.
// Jobs that attach to a cached or in-flight result skip running and
// complete when the result does.
type JobState string

// The job states.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Job is one experiment request: {experiment, Options} → result. The
// result itself lives in the cache under ResultKey; the job records the
// request's lifecycle and where to fetch the payload.
type Job struct {
	ID         string              `json:"id"`
	Experiment string              `json:"experiment"`
	Options    experiments.Options `json:"options"`
	// Client is the submitting client id (X-Client-Id header or the
	// request's "client" field); fair scheduling and rate limiting key
	// on it. Empty submissions share the "anonymous" client.
	Client string `json:"client,omitempty"`
	// ResultKey is the content address of the result; fetch it at
	// /v1/results/{key} once the job is done.
	ResultKey string   `json:"result_key"`
	State     JobState `json:"state"`
	// CacheHit reports that the job did not trigger its own simulation:
	// the result was already cached (in memory or on disk) or already
	// being computed.
	CacheHit bool `json:"cache_hit"`
	// Attempts counts runner invocations for leader jobs: 1 for a clean
	// run, more when transient failures were retried.
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
	// SweepID groups the jobs of one sweep submission; their completions
	// stream as "point" events on /v1/sweeps/{id}/events.
	SweepID string `json:"sweep_id,omitempty"`

	// Unexported observability state: invisible to the JSON API and to
	// snapshot copies' consumers. trace is set once in submit before the
	// job is shared, so later reads need no lock; the Trace itself is
	// internally synchronized.
	trace       *obs.Trace
	submittedAt time.Time // when submit registered the job
	enqueuedAt  time.Time // when the leader entered the fair pool
}
