package service

import (
	"sync"

	"penelope/internal/experiments"
)

// JobState is the lifecycle of a job: queued → running → done|failed.
// Jobs that attach to a cached or in-flight result skip running and
// complete when the result does.
type JobState string

// The job states.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Job is one experiment request: {experiment, Options} → result. The
// result itself lives in the cache under ResultKey; the job records the
// request's lifecycle and where to fetch the payload.
type Job struct {
	ID         string              `json:"id"`
	Experiment string              `json:"experiment"`
	Options    experiments.Options `json:"options"`
	// ResultKey is the content address of the result; fetch it at
	// /v1/results/{key} once the job is done.
	ResultKey string   `json:"result_key"`
	State     JobState `json:"state"`
	// CacheHit reports that the job did not trigger its own simulation:
	// the result was already cached or already being computed.
	CacheHit bool   `json:"cache_hit"`
	Error    string `json:"error,omitempty"`
}

// pool is the bounded worker pool that executes leader jobs. Submission
// never blocks: a full queue is reported to the caller, which fails the
// job instead of wedging the HTTP handler.
type pool struct {
	queue chan func()
	wg    sync.WaitGroup
}

// newPool starts workers goroutines draining a queue of depth tasks.
func newPool(workers, depth int) *pool {
	p := &pool{queue: make(chan func(), depth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.queue {
				fn()
			}
		}()
	}
	return p
}

// submit enqueues fn, reporting false if the queue is full.
func (p *pool) submit(fn func()) bool {
	select {
	case p.queue <- fn:
		return true
	default:
		return false
	}
}

// close stops the workers after the queued tasks drain.
func (p *pool) close() {
	close(p.queue)
	p.wg.Wait()
}
