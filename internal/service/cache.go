// Package service turns the experiment drivers into a long-running,
// queryable system: a job model over the registry, a bounded worker
// pool that executes jobs through the shared recording-bank machinery,
// a content-addressed result cache with in-flight deduplication, and an
// HTTP JSON API on top. cmd/penelope exposes it as `penelope serve`.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"penelope/internal/experiments"
)

// ResultKey content-addresses one experiment request: the SHA-256 of
// the experiment id and the canonicalized Options. Every request that
// would run the same simulation — permuted JSON fields, zeroed or
// defaulted options — maps to the same key, so overlapping sweeps
// deduplicate against each other and against past runs.
func ResultKey(experiment string, o experiments.Options) string {
	sum := sha256.Sum256([]byte(experiment + "|" + o.Key()))
	return hex.EncodeToString(sum[:16])
}

// Entry is one cache slot: created when the first request for its key
// arrives, completed exactly once when the leader finishes computing.
// Followers wait on done.
type Entry struct {
	Key string

	done    chan struct{}
	payload []byte // marshaled result payload, set before done closes
	err     error  // terminal error, set before done closes
}

// Wait blocks until the entry completes and returns the marshaled
// payload or the leader's error.
func (e *Entry) Wait() ([]byte, error) {
	<-e.done
	return e.payload, e.err
}

// Ready reports whether the entry has completed, without blocking.
func (e *Entry) Ready() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// CacheStats are the cache counters the /metrics endpoint reports.
type CacheStats struct {
	// Entries is the number of completed results held.
	Entries int `json:"entries"`
	// Hits counts requests served from a completed entry.
	Hits uint64 `json:"hits"`
	// Misses counts requests that had to run the simulation.
	Misses uint64 `json:"misses"`
	// InflightDedups counts requests that attached to a simulation
	// another request had already started.
	InflightDedups uint64 `json:"inflight_dedups"`
}

// Cache is the content-addressed result cache. Acquire is the only
// entry point for computing: the first caller for a key becomes the
// leader and must Complete (or Abandon) the entry; every concurrent or
// later caller shares the leader's outcome, so N identical requests
// trigger exactly one simulation.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*Entry
	stats   CacheStats
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*Entry)}
}

// Acquire returns the entry for key. leader reports whether the caller
// must compute and Complete it; when leader is false, ready reports
// whether the entry had already completed (a cache hit) as opposed to
// still being computed (an in-flight dedup).
func (c *Cache) Acquire(key string) (e *Entry, leader, ready bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		if e.Ready() {
			c.stats.Hits++
			return e, false, true
		}
		c.stats.InflightDedups++
		return e, false, false
	}
	e = &Entry{Key: key, done: make(chan struct{})}
	c.entries[key] = e
	c.stats.Misses++
	return e, true, false
}

// Get returns the completed entry for key, if any. In-flight entries
// are not visible: GET /v1/results only serves finished payloads.
func (c *Cache) Get(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !e.Ready() {
		return nil, false
	}
	return e, true
}

// Complete finishes a leader's entry. A successful payload stays
// resident and serves every later request for the key; an error is
// propagated to current waiters and the entry is dropped so the next
// request retries.
func (c *Cache) Complete(e *Entry, payload []byte, err error) {
	c.mu.Lock()
	if err != nil {
		delete(c.entries, e.Key)
	}
	c.mu.Unlock()
	e.payload, e.err = payload, err
	close(e.done)
}

// Abandon releases a leader's entry without computing it (e.g. the job
// queue was full). Waiters get the reason as an error; the next request
// for the key starts fresh.
func (c *Cache) Abandon(e *Entry, reason string) {
	c.Complete(e, nil, fmt.Errorf("service: %s", reason))
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = 0
	for _, e := range c.entries {
		if e.Ready() {
			s.Entries++
		}
	}
	return s
}
