package service

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"penelope/internal/fleetops"
	"penelope/internal/obs"
	"penelope/internal/store"
)

// This file is the server's observability surface: the per-server
// metrics registry (Prometheus text on GET /metrics, the original JSON
// payload on /metrics.json or Accept: application/json), the job
// lifecycle tracer behind /v1/jobs/{id}/trace and /v1/debug/traces,
// and the histograms the hot paths feed. Every server owns its own
// Registry and Tracer — nothing is global — so tests and multi-server
// processes never collide.

// httpLatencyFamily is the per-route request histogram's family name,
// named once because the JSON payload excludes it (scrapes observe
// themselves; see Metrics.Histograms).
const httpLatencyFamily = "penelope_http_request_seconds"

// serverObs bundles the service tier's own instruments. The registry
// also carries the store and fleetops families (registered by their
// NewInstruments constructors) and mirrors of the JSON counters via
// CounterFunc/GaugeFunc, so one scrape sees the whole process.
type serverObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	httpSeconds *obs.HistogramVec // request latency by route pattern
	jobSeconds  *obs.Histogram    // submit → terminal state
	queueWait   *obs.Histogram    // submit → worker pickup (leaders)
	runSeconds  *obs.HistogramVec // runner latency by experiment
}

// cached wraps a stats snapshot function with a small TTL so one
// Prometheus scrape reading several families from the same source
// (store.Stats walks directories, Deliverer.Stats copies dead letters)
// pays for one snapshot, not one per family.
func cached[T any](ttl time.Duration, fn func() T) func() T {
	var mu sync.Mutex
	var at time.Time
	var v T
	return func() T {
		mu.Lock()
		defer mu.Unlock()
		if at.IsZero() || time.Since(at) > ttl {
			v = fn()
			at = time.Now()
		}
		return v
	}
}

// statsCacheTTL bounds staleness of snapshot-backed families within a
// scrape; small enough that tests polling after an action still see it.
const statsCacheTTL = 100 * time.Millisecond

// initObs builds the registry and tracer and registers the service
// tier's families. It runs before the store opens and before
// initFleetops, so those layers can hang their instruments on the same
// registry; store- and fleet-stat mirrors are registered later, once
// the objects they read exist.
func (s *Server) initObs() {
	reg := obs.NewRegistry()
	o := &serverObs{
		reg:    reg,
		tracer: obs.NewTracer(),
		httpSeconds: reg.HistogramVec(httpLatencyFamily,
			"HTTP request latency by route pattern.", "route", nil),
		jobSeconds: reg.Histogram("penelope_job_seconds",
			"Job latency from submission to terminal state, cache hits included.", nil),
		queueWait: reg.Histogram("penelope_job_queue_wait_seconds",
			"Leader job wait from submission to worker pickup; feeds the Retry-After estimator.", nil),
		runSeconds: reg.HistogramVec("penelope_experiment_run_seconds",
			"Runner attempt latency by experiment id (retries observe once per attempt).", "experiment", nil),
	}
	s.obs = o

	lockedU64 := func(f func() uint64) func() uint64 {
		return func() uint64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return f()
		}
	}
	reg.CounterFunc("penelope_jobs_submitted_total", "Jobs ever submitted (including cache hits and rejected leaders).",
		lockedU64(func() uint64 { return s.nextID }))
	reg.CounterFunc("penelope_jobs_done_total", "Jobs finished successfully.",
		lockedU64(func() uint64 { return s.done }))
	reg.CounterFunc("penelope_jobs_failed_total", "Jobs finished with an error.",
		lockedU64(func() uint64 { return s.failed }))
	reg.CounterFunc("penelope_jobs_rejected_total", "Submissions dropped because the queue was full.",
		lockedU64(func() uint64 { return s.rejected }))
	reg.CounterFunc("penelope_jobs_throttled_total", "Submissions rejected by per-client rate limiting.",
		lockedU64(func() uint64 { return s.throttled }))
	reg.CounterFunc("penelope_jobs_retries_total", "Transient-failure retry attempts.",
		lockedU64(func() uint64 { return s.retries }))
	reg.CounterFunc("penelope_jobs_panics_recovered_total", "Driver panics recovered into failed jobs.",
		lockedU64(func() uint64 { return s.panics }))
	reg.CounterFunc("penelope_jobs_timeouts_total", "Jobs failed by the per-job timeout.",
		lockedU64(func() uint64 { return s.timeouts }))
	reg.CounterFunc("penelope_jobs_resumed_total", "Interrupted jobs resubmitted at boot.",
		lockedU64(func() uint64 { return s.resumed }))
	reg.CounterFunc("penelope_jobs_shed_total", "Submissions dropped by progressive load shedding.",
		s.backoff.shedCount)
	reg.CounterFunc("penelope_untracked_clients_total", "Requests attributed to the ~other cell because the per-client counter map was full.",
		lockedU64(func() uint64 { return s.untracked }))
	lockedGauge := func(f func() float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return f()
		}
	}
	reg.GaugeFunc("penelope_jobs_queued", "Jobs currently queued.",
		lockedGauge(func() float64 { return float64(s.queued) }))
	reg.GaugeFunc("penelope_jobs_running", "Jobs currently running.",
		lockedGauge(func() float64 { return float64(s.running) }))

	obs.RegisterBuildInfo(reg, *s.cfg.BuildInfo)
	reg.CounterFunc("penelope_uptime_seconds", "Whole seconds since the server started.",
		func() uint64 { return uint64(time.Since(s.started).Seconds()) })
	reg.GaugeFunc("penelope_shed_retry_after_seconds",
		"Retry-After the shed estimator would attach to a rejected submission right now.",
		func() float64 { return s.backoff.retryAfter(s.pool.queueDepth(), s.cfg.Workers).Seconds() })

	reg.GaugeFunc("penelope_queue_depth", "Fair-pool queued tasks.",
		func() float64 { return float64(s.pool.queueDepth()) })
	reg.GaugeFunc("penelope_queue_capacity", "Fair-pool queue bound.",
		func() float64 { return float64(s.cfg.QueueDepth) })
	reg.GaugeFunc("penelope_workers", "Worker pool size.",
		func() float64 { return float64(s.cfg.Workers) })

	cacheStats := cached(statsCacheTTL, s.cache.Stats)
	reg.GaugeFunc("penelope_cache_entries", "Completed results held in the in-memory cache.",
		func() float64 { return float64(cacheStats().Entries) })
	reg.CounterFunc("penelope_cache_hits_total", "Requests served from a completed cache entry.",
		func() uint64 { return cacheStats().Hits })
	reg.CounterFunc("penelope_cache_misses_total", "Requests that had to run the simulation.",
		func() uint64 { return cacheStats().Misses })
	reg.CounterFunc("penelope_cache_inflight_dedups_total", "Requests that attached to an already-running simulation.",
		func() uint64 { return cacheStats().InflightDedups })

	obs.RegisterRuntimeMetrics(reg)
}

// registerStoreMetrics mirrors the disk store's JSON counters as
// Prometheus families. Called only when persistence is on, so an
// in-memory server's exposition carries no store families at all.
func (s *Server) registerStoreMetrics() {
	st := cached(statsCacheTTL, s.store.Stats)
	reg := s.obs.reg
	reg.GaugeFunc("penelope_store_entries", "Verified result payloads on disk.",
		func() float64 { return float64(st().Entries) })
	reg.GaugeFunc("penelope_store_bytes", "Total result payload bytes held on disk.",
		func() float64 { return float64(st().Bytes) })
	reg.GaugeFunc("penelope_store_degraded", "1 while the store is shedding result writes, else 0.",
		func() float64 {
			if st().Degraded {
				return 1
			}
			return 0
		})
	reg.CounterFunc("penelope_store_hits_total", "Store reads served from disk.",
		func() uint64 { return st().Hits })
	reg.CounterFunc("penelope_store_misses_total", "Store reads for keys not held.",
		func() uint64 { return st().Misses })
	reg.CounterFunc("penelope_store_quarantined_total", "Corrupt or truncated files set aside instead of served.",
		func() uint64 { return uint64(st().Quarantined) })
	reg.CounterFunc("penelope_store_evictions_total", "Results removed by the disk budget or retention policy.",
		func() uint64 { return st().Evictions })
	reg.CounterFunc("penelope_store_budget_refusals_total", "Result writes refused because eviction could not free enough budget.",
		func() uint64 { return st().BudgetRefusals })
	reg.CounterFunc("penelope_store_write_failures_total", "Result writes that failed in the filesystem.",
		func() uint64 { return st().WriteFailures })
}

// registerFleetMetrics mirrors the continuous-operations counters.
// Called from initFleetops once the scheduler, bus, alerter and (maybe)
// deliverer exist.
func (s *Server) registerFleetMetrics() {
	reg := s.obs.reg
	sched := cached(statsCacheTTL, s.sched.Stats)
	reg.GaugeFunc("penelope_fleet_populations", "Registered fleet populations.",
		func() float64 { return float64(sched().Populations) })
	reg.GaugeFunc("penelope_fleet_active", "Fleet populations currently active.",
		func() float64 { return float64(sched().Active) })
	reg.GaugeFunc("penelope_fleet_quarantined", "Fleet populations currently quarantined.",
		func() float64 { return float64(sched().Quarantined) })
	reg.CounterFunc("penelope_fleet_ticks_total", "Fleet scheduler ticks completed.",
		func() uint64 { return sched().Ticks })
	reg.CounterFunc("penelope_fleet_tick_failures_total", "Fleet ticks that failed.",
		func() uint64 { return sched().TickFailures })
	reg.CounterFunc("penelope_fleet_watchdog_timeouts_total", "Fleet ticks cancelled by the watchdog.",
		func() uint64 { return sched().WatchdogTimeouts })
	reg.CounterFunc("penelope_fleet_checkpoint_failures_total", "Fleet checkpoint writes refused or failed.",
		func() uint64 { return sched().CheckpointFailures })

	gb := cached(statsCacheTTL, s.sched.Guardband)
	reg.GaugeFunc("penelope_fleet_p99_guardband", "Worst p99 guardband across scheduled populations.",
		func() float64 { return gb().P99Guardband })
	reg.GaugeFunc("penelope_fleet_mean_guardband", "Worst mean guardband across scheduled populations.",
		func() float64 { return gb().MeanGuardband })
	reg.GaugeFunc("penelope_fleet_violated_fraction", "Worst guardband-violation fraction across scheduled populations.",
		func() float64 { return gb().ViolatedFraction })

	bus := cached(statsCacheTTL, s.bus.Stats)
	reg.GaugeFunc("penelope_bus_topics", "Event bus topics.",
		func() float64 { return float64(bus().Topics) })
	reg.GaugeFunc("penelope_bus_subscribers", "Event bus subscriptions.",
		func() float64 { return float64(bus().Subscribers) })
	reg.CounterFunc("penelope_bus_published_total", "Events published on the bus.",
		func() uint64 { return bus().Published })
	reg.CounterFunc("penelope_bus_dropped_total", "Events dropped by full subscriber buffers.",
		func() uint64 { return bus().Dropped })

	alerts := cached(statsCacheTTL, s.alerter.Stats)
	reg.CounterFunc("penelope_alerts_evaluated_total", "Alert rule evaluations.",
		func() uint64 { return alerts().Evaluated })
	reg.CounterFunc("penelope_alerts_fired_total", "Alerts fired.",
		func() uint64 { return alerts().Fired })

	if s.deliverer != nil {
		del := cached(statsCacheTTL, s.deliverer.Stats)
		reg.GaugeFunc("penelope_alert_queue_depth", "Alert delivery queue depth.",
			func() float64 { return float64(del().QueueDepth) })
		reg.CounterFunc("penelope_alert_delivered_total", "Alerts delivered to the sink.",
			func() uint64 { return del().Delivered })
		reg.CounterFunc("penelope_alert_retries_total", "Alert delivery retries.",
			func() uint64 { return del().Retries })
		reg.CounterFunc("penelope_alert_dead_lettered_total", "Alerts dead-lettered after exhausting retries.",
			func() uint64 { return del().DeadLettered })
	}
}

// route registers a handler wrapped with the per-route latency
// histogram. The pattern string itself is the label, so cardinality is
// bounded by the route table, never by request paths.
func (s *Server) route(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	hist := s.obs.httpSeconds.With(pattern)
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.ObserveDuration(time.Since(start))
	})
}

// handleMetrics negotiates the exposition format: Prometheus text by
// default, the original JSON payload (byte-identical to /metrics.json)
// when the client asks for application/json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		s.handleMetricsJSON(w, r)
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	w.WriteHeader(http.StatusOK)
	s.obs.reg.WritePrometheus(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics())
}

// handleJobTrace serves one job's lifecycle trace: spans from admission
// through queue wait, run, store write, to done.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.obs.tracer.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no trace for job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleDebugTraces serves recent traces by component
// (?component=job|store|scrub|fleet|alert&n=32); without a component it
// lists the components that have recorded anything.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	component := r.URL.Query().Get("component")
	if component == "" {
		writeJSON(w, http.StatusOK, map[string]any{"components": s.obs.tracer.Components()})
		return
	}
	n := 32
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad n %q", v))
			return
		}
		n = parsed
	}
	traces := s.obs.tracer.Recent(component, n)
	if traces == nil {
		traces = []obs.TraceSnapshot{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"component": component, "traces": traces})
}

// Registry exposes the server's metrics registry (CLI wiring, tests).
func (s *Server) Registry() *obs.Registry { return s.obs.reg }

// Tracer exposes the server's span tracer (CLI wiring, tests).
func (s *Server) Tracer() *obs.Tracer { return s.obs.tracer }

// storeInstruments builds the disk store's instrument bundle on the
// server's registry.
func (s *Server) storeInstruments() *store.Instruments {
	return store.NewInstruments(s.obs.reg, s.obs.tracer)
}

// fleetInstruments builds the fleetops instrument bundle on the
// server's registry.
func (s *Server) fleetInstruments() *fleetops.Instruments {
	return fleetops.NewInstruments(s.obs.reg, s.obs.tracer)
}
