package service

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"penelope/internal/fleetops"
	"penelope/internal/obs/tsdb"
)

// feedHistory drives the server's sampler directly with fabricated
// times, so history tests never wait on the real 10s cadence. Returns
// the time of the last sample.
func feedHistory(s *Server, start time.Time, n int, step time.Duration, tick func(i int)) time.Time {
	now := start
	for i := 0; i < n; i++ {
		if tick != nil {
			tick(i)
		}
		s.history.Sample(now)
		now = now.Add(step)
	}
	return now.Add(-step)
}

// TestHistoryQueryEndpoint drives samples through the embedded store
// and reads them back over the HTTP range-query API: a counter rate, a
// histogram quantile, the names listing, and the error paths.
func TestHistoryQueryEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	reg := s.Registry()
	ctr := reg.Counter("test_events_total", "test counter")
	hist := reg.Histogram("test_latency_seconds", "test histogram", []float64{0.1, 1, 10})

	start := time.Now().Add(-30 * time.Minute)
	end := feedHistory(s, start, 20, 10*time.Second, func(i int) {
		ctr.Add(5) // 0.5/s at a 10s cadence
		hist.Observe(0.5)
	})

	base := fmt.Sprintf("from=%d&to=%d&step=30s", start.Unix(), end.Unix())
	var res tsdb.Result
	if code := getJSON(t, ts.URL+"/v1/metrics/query?name=test_events_total&"+base, &res); code != http.StatusOK {
		t.Fatalf("counter query: status %d", code)
	}
	if res.Kind != "counter" || res.Agg != "rate" || len(res.Series) != 1 {
		t.Fatalf("counter result = %+v", res)
	}
	if n := len(res.Series[0].Points); n < 2 {
		t.Fatalf("counter rate has %d points, want >= 2", n)
	}
	lastRate := res.Series[0].Points[len(res.Series[0].Points)-1].V
	if lastRate < 0.4 || lastRate > 0.6 {
		t.Fatalf("steady 0.5/s counter reports rate %v", lastRate)
	}

	if code := getJSON(t, ts.URL+"/v1/metrics/query?name=test_latency_seconds&q=0.5&"+base, &res); code != http.StatusOK {
		t.Fatalf("histogram query: status %d", code)
	}
	if res.Kind != "histogram" || res.Agg != "quantile" || len(res.Series) != 1 {
		t.Fatalf("histogram result = %+v", res)
	}
	if n := len(res.Series[0].Points); n < 2 {
		t.Fatalf("histogram quantile has %d points, want >= 2", n)
	}
	p50 := res.Series[0].Points[len(res.Series[0].Points)-1].V
	if p50 <= 0.1 || p50 > 1 {
		t.Fatalf("p50 of 0.5s observations = %v, want inside (0.1, 1]", p50)
	}

	var names struct {
		Families []tsdb.FamilyMeta `json:"families"`
	}
	if code := getJSON(t, ts.URL+"/v1/metrics/names", &names); code != http.StatusOK {
		t.Fatal("names endpoint not OK")
	}
	found := false
	for _, f := range names.Families {
		if f.Name == "test_events_total" && f.Kind == "counter" {
			found = true
		}
	}
	if !found {
		t.Fatalf("names listing missing the test counter (%d families)", len(names.Families))
	}

	for query, want := range map[string]int{
		"":                                     http.StatusBadRequest, // no name
		"name=no_such_family":                  http.StatusNotFound,
		"name=test_events_total&step=bogus":    http.StatusBadRequest,
		"name=test_events_total&from=whenever": http.StatusBadRequest,
		"name=test_latency_seconds&q=2.5":      http.StatusBadRequest,
	} {
		if code := getJSON(t, ts.URL+"/v1/metrics/query?"+query, nil); code != want {
			t.Errorf("query %q: status %d, want %d", query, code, want)
		}
	}
}

// TestHistoryDisabled: a negative interval turns the whole subsystem
// off, and configuring SLO rules without history is a wiring error.
func TestHistoryDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, HistoryInterval: -1})
	if s.history != nil {
		t.Fatal("history open despite negative interval")
	}
	if code := getJSON(t, ts.URL+"/v1/metrics/query?name=x", nil); code != http.StatusNotFound {
		t.Fatalf("query on disabled history: status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/metrics/names", nil); code != http.StatusNotFound {
		t.Fatalf("names on disabled history: status %d, want 404", code)
	}
	// /v1/slo and /dashboard still answer.
	if code := getJSON(t, ts.URL+"/v1/slo", nil); code != http.StatusOK {
		t.Fatalf("slo on disabled history: status %d", code)
	}

	if _, err := New(Config{Workers: 1, HistoryInterval: -1,
		SLORules: []fleetops.SLORule{{Name: "r", Numerator: "a", Denominator: "b", Objective: 0.01}}}); err == nil {
		t.Fatal("SLO rules with disabled history accepted")
	}
	if _, err := New(Config{Workers: 1,
		SLORules: []fleetops.SLORule{{Name: "", Kind: "bogus"}}}); err == nil {
		t.Fatal("invalid SLO rule accepted")
	}
}

// TestHistoryRestartServesPrerestartSamples is the service-level
// restart criterion: flush, restart over the same data dir, and the
// same range query answers byte-identically from the reloaded blocks.
func TestHistoryRestartServesPrerestartSamples(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, DataDir: dir}
	s1, ts1 := newTestServer(t, cfg)

	ctr := s1.Registry().Counter("test_restart_total", "survives restarts")
	start := time.Now().Add(-20 * time.Minute)
	end := feedHistory(s1, start, 12, 10*time.Second, func(i int) { ctr.Add(3) })
	s1.history.Flush()

	query := fmt.Sprintf("/v1/metrics/query?name=test_restart_total&agg=increase&from=%d&to=%d&step=30s",
		start.Unix(), end.Unix())
	code, before, _ := get(t, ts1.URL+query, nil)
	if code != http.StatusOK {
		t.Fatalf("pre-restart query: status %d", code)
	}
	ts1.Close()
	s1.Close()

	s2, ts2 := newTestServer(t, cfg)
	// The restarted process registers the same family (fresh at zero, as
	// any counter is after a reboot); history for it comes from blocks.
	s2.Registry().Counter("test_restart_total", "survives restarts")
	if st := s2.history.Stats(); st.BlocksLoaded == 0 || st.BlocksQuarantined != 0 {
		t.Fatalf("restart loaded %d blocks, quarantined %d", st.BlocksLoaded, st.BlocksQuarantined)
	}
	code, after, _ := get(t, ts2.URL+query, nil)
	if code != http.StatusOK {
		t.Fatalf("post-restart query: status %d", code)
	}
	if string(before) != string(after) {
		t.Fatalf("restart changed the range-query payload:\n before: %s\n after:  %s", before, after)
	}
	if !strings.Contains(string(after), `"v":`) || strings.Contains(string(after), `"points":[]`) {
		t.Fatalf("post-restart payload has no points: %s", after)
	}
}

// TestSLOThroughServer wires burn-rate rules into a real server, drives
// the sampled history into breach, and checks the alert leaves through
// the configured sink and the status surfaces on /v1/slo and /metrics.
func TestSLOThroughServer(t *testing.T) {
	sink := &fleetops.FaultSink{}
	s, ts := newTestServer(t, Config{
		Workers:   1,
		AlertSink: sink,
		SLORules: []fleetops.SLORule{{
			Name: "bad-ratio", Numerator: "test_bad_total", Denominator: "test_all_total",
			Objective:   0.01,
			ShortWindow: fleetops.Duration(5 * time.Minute),
			LongWindow:  fleetops.Duration(time.Hour),
			Burn:        2,
		}},
	})

	reg := s.Registry()
	bad := reg.Counter("test_bad_total", "failing events")
	all := reg.Counter("test_all_total", "all events")

	// 61 minutes of samples at 3% bad: burn 3x the 1% objective in both
	// the 5m and 1h windows.
	start := time.Now().Add(-90 * time.Minute)
	end := feedHistory(s, start, 61, time.Minute, func(i int) {
		bad.Add(3)
		all.Add(100)
	})
	fired := s.slo.EvaluateOnce(end)
	if len(fired) != 1 {
		t.Fatalf("breaching rule fired %d alerts, want 1", len(fired))
	}
	if fired[0].Fleet != "slo" || fired[0].Rule != "bad-ratio" {
		t.Fatalf("alert = %+v", fired[0])
	}

	deadline := time.Now().Add(5 * time.Second)
	for len(sink.Delivered()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("alert never reached the sink through the delivery pipeline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	got := sink.Delivered()
	if got[0].Rule != "bad-ratio" || !strings.HasPrefix(got[0].ID, "slo/bad-ratio/") {
		t.Fatalf("sink saw %+v", got[0])
	}

	var slo struct {
		Stats fleetops.SLOStats    `json:"stats"`
		Rules []fleetops.SLOStatus `json:"rules"`
	}
	if code := getJSON(t, ts.URL+"/v1/slo", &slo); code != http.StatusOK {
		t.Fatal("/v1/slo not OK")
	}
	if slo.Stats.Rules != 1 || slo.Stats.Fired != 1 || len(slo.Rules) != 1 || !slo.Rules[0].Firing {
		t.Fatalf("slo payload = %+v", slo)
	}

	var m Metrics
	if code := getJSON(t, ts.URL+"/metrics.json", &m); code != http.StatusOK {
		t.Fatal("/metrics.json not OK")
	}
	if m.SLO == nil || m.SLO.Fired != 1 {
		t.Fatalf("metrics SLO section = %+v", m.SLO)
	}
	if m.History == nil || m.History.Samples == 0 {
		t.Fatalf("metrics history section = %+v", m.History)
	}
}

// TestShedRetryAfterGauge pins the exported Retry-After estimate to the
// backoff controller's own answer, including the measured-wait path.
func TestShedRetryAfterGauge(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	read := func() string {
		_, text, _ := get(t, ts.URL+"/metrics", nil)
		for _, line := range strings.Split(string(text), "\n") {
			if strings.HasPrefix(line, "penelope_shed_retry_after_seconds ") {
				return strings.TrimPrefix(line, "penelope_shed_retry_after_seconds ")
			}
		}
		t.Fatal("exposition missing penelope_shed_retry_after_seconds")
		return ""
	}
	if got := read(); got != "1" {
		t.Fatalf("idle Retry-After gauge = %s, want the 1s clamp", got)
	}
	s.backoff.observeWait(42 * time.Second)
	if got := read(); got != "42" {
		t.Fatalf("Retry-After gauge = %s after observing 42s waits, want 42", got)
	}
	want := s.backoff.retryAfter(s.pool.queueDepth(), s.cfg.Workers).Seconds()
	if want != 42 {
		t.Fatalf("controller answer drifted: %v", want)
	}
}

// TestDashboardServed: the dashboard is one self-contained page with no
// external assets, so it works with no network beyond this server.
func TestDashboardServed(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, body, ctype := get(t, ts.URL+"/dashboard", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /dashboard: status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/html") {
		t.Fatalf("dashboard Content-Type = %q", ctype)
	}
	page := string(body)
	if !strings.Contains(page, "fleet dashboard") || !strings.Contains(page, "/v1/metrics/query") {
		t.Fatal("dashboard page missing expected content")
	}
	for _, external := range []string{"http://", "https://", "src=\"//", "@import", "cdn."} {
		if strings.Contains(page, external) {
			t.Fatalf("dashboard references an external resource (%q)", external)
		}
	}
}
