package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"penelope/internal/circuit"
	"penelope/internal/experiments"
	"penelope/internal/fleetops"
	"penelope/internal/lifetime"
)

// testFleetBuilder returns a ConfigBuilder producing a small synthetic
// population (~totalEpochs epochs), keeping HTTP-level fleet tests away
// from the trace pipeline.
func testFleetBuilder(years float64) fleetops.ConfigBuilder {
	p := lifetime.DefaultParams()
	cfg := lifetime.Config{
		Structures: []string{"adder", "regfile"},
		Phases:     []lifetime.Phase{{Name: "service", Years: years, Duty: []float64{0.55, 0.35}}},
		Population: 256,
		EpochYears: 30.0 / 365.25,
		Seed:       1,
		Sigma:      0.08,
		Limit:      lifetime.DefaultLimit,
		Params:     p,
		Delay:      circuit.NewDelayModel(circuit.PathStats{Depth: 10, Narrow: 5}, p.MaxVTHShift, p.MaxGuardband),
	}
	return func(fleetops.Registration) (lifetime.Config, error) { return cfg, nil }
}

// fastFleetConfig returns service settings with millisecond fleet
// ticks.
func fastFleetConfig(builder fleetops.ConfigBuilder) Config {
	return Config{
		Workers:           2,
		FleetTick:         2 * time.Millisecond,
		FleetTickTimeout:  2 * time.Second,
		FleetMaxFailures:  2,
		FleetRetryBackoff: time.Millisecond,
		FleetQuarantine:   25 * time.Millisecond,
		FleetBuilder:      builder,
	}
}

func waitForStatus(t *testing.T, base, name string, cond func(fleetops.Status) bool) fleetops.Status {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		var st fleetops.Status
		code := getJSON(t, base+"/v1/fleets/"+name, &st)
		if code == http.StatusOK && cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet %s never reached the wanted state: %+v (status %d)", name, st, code)
		}
		time.Sleep(3 * time.Millisecond)
	}
}

// TestFleetRegisterLifecycle drives the registration API end to end:
// register, observe epochs advance, list, duplicate conflict, bad
// requests, deregister.
func TestFleetRegisterLifecycle(t *testing.T) {
	_, ts := newTestServer(t, fastFleetConfig(testFleetBuilder(0.5)))

	var st fleetops.Status
	if code := postJSON(t, ts.URL+"/v1/fleets", `{"name":"pop-a","epochs_per_tick":2}`, &st); code != http.StatusCreated {
		t.Fatalf("register: status %d", code)
	}
	if st.Name != "pop-a" || st.Fleet != "penelope" || st.State != fleetops.StateActive {
		t.Fatalf("registered status = %+v", st)
	}

	// The population ages without any further requests.
	waitForStatus(t, ts.URL, "pop-a", func(st fleetops.Status) bool { return st.Epoch >= 2 })

	if code := postJSON(t, ts.URL+"/v1/fleets", `{"name":"pop-a"}`, nil); code != http.StatusConflict {
		t.Fatalf("duplicate register: status %d, want 409", code)
	}
	for body, why := range map[string]string{
		`{"name":"Bad Name"}`:                         "invalid name",
		`{"name":"x","fleet":"warp"}`:                 "unknown fleet",
		`{"name":"x","epochs_per_tick":-1}`:           "negative epochs per tick",
		`{"name":"x","alerts":{"duty_tolerance":-1}}`: "negative threshold",
	} {
		if code := postJSON(t, ts.URL+"/v1/fleets", body, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", why, code)
		}
	}

	var list struct {
		Fleets []fleetops.Status `json:"fleets"`
	}
	if code := getJSON(t, ts.URL+"/v1/fleets", &list); code != http.StatusOK || len(list.Fleets) != 1 {
		t.Fatalf("list = %d %+v", code, list)
	}

	resp, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/fleets/pop-a", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(resp)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("deregister: status %d", res.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/v1/fleets/pop-a", nil); code != http.StatusNotFound {
		t.Fatalf("deregistered fleet still served: status %d", code)
	}
	// Its event stream 404s instead of hanging forever.
	if code := getJSON(t, ts.URL+"/v1/fleets/pop-a/events.ndjson?max=1", nil); code != http.StatusNotFound {
		t.Fatalf("deregistered fleet stream: status %d, want 404", code)
	}
}

// readNDJSON reads up to max events from an events.ndjson stream.
func readNDJSON(t *testing.T, url string) []fleetops.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []fleetops.Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev fleetops.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	return events
}

// TestFleetEventStreamNDJSONResume streams a fleet's epoch events over
// NDJSON with ?max, then resumes from the last seen sequence number via
// ?after and checks the continuation starts exactly one past it.
func TestFleetEventStreamNDJSONResume(t *testing.T) {
	_, ts := newTestServer(t, fastFleetConfig(testFleetBuilder(1)))
	if code := postJSON(t, ts.URL+"/v1/fleets", `{"name":"pop"}`, nil); code != http.StatusCreated {
		t.Fatalf("register: status %d", code)
	}

	first := readNDJSON(t, ts.URL+"/v1/fleets/pop/events.ndjson?max=4")
	if len(first) != 4 {
		t.Fatalf("got %d events, want 4", len(first))
	}
	for i, ev := range first {
		if ev.Seq != uint64(i+1) || ev.Topic != "fleet/pop" {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	// The first event is the registration state event; epochs follow.
	if first[0].Type != "state" || first[1].Type != "epoch" {
		t.Fatalf("event types = %s, %s; want state then epoch", first[0].Type, first[1].Type)
	}

	last := first[len(first)-1].Seq
	resumed := readNDJSON(t, fmt.Sprintf("%s/v1/fleets/pop/events.ndjson?after=%d&max=3", ts.URL, last))
	if len(resumed) != 3 {
		t.Fatalf("resume got %d events, want 3", len(resumed))
	}
	if resumed[0].Seq != last+1 {
		t.Fatalf("resume started at seq %d, want %d (gapless continuation)", resumed[0].Seq, last+1)
	}

	// Bad stream parameters are rejected.
	if code := getJSON(t, ts.URL+"/v1/fleets/pop/events.ndjson?max=0", nil); code != http.StatusBadRequest {
		t.Fatalf("max=0: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/v1/fleets/pop/events.ndjson?after=x", nil); code != http.StatusBadRequest {
		t.Fatalf("after=x: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/v1/fleets/nope/events.ndjson?max=1", nil); code != http.StatusNotFound {
		t.Fatalf("unknown fleet stream: status %d, want 404", code)
	}
}

// TestFleetEventStreamSSE checks the SSE framing: id/event/data lines
// per frame, with the sequence number as the resumable id, honoring the
// Last-Event-ID request header.
func TestFleetEventStreamSSE(t *testing.T) {
	_, ts := newTestServer(t, fastFleetConfig(testFleetBuilder(1)))
	if code := postJSON(t, ts.URL+"/v1/fleets", `{"name":"pop"}`, nil); code != http.StatusCreated {
		t.Fatalf("register: status %d", code)
	}
	// Let a couple of epochs accumulate in the history ring.
	waitForStatus(t, ts.URL, "pop", func(st fleetops.Status) bool { return st.Epoch >= 2 })

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/fleets/pop/events?max=2", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "1") // skip the registration state event
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	var ids, types, datas []string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			ids = append(ids, strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "event: "):
			types = append(types, strings.TrimPrefix(line, "event: "))
		case strings.HasPrefix(line, "data: "):
			datas = append(datas, strings.TrimPrefix(line, "data: "))
		}
	}
	if len(ids) != 2 || len(types) != 2 || len(datas) != 2 {
		t.Fatalf("frames = %v / %v / %v, want 2 complete frames", ids, types, datas)
	}
	if ids[0] != "2" {
		t.Fatalf("first frame id = %s, want 2 (Last-Event-ID resume past seq 1)", ids[0])
	}
	if types[0] != "epoch" {
		t.Fatalf("first frame type = %s, want epoch", types[0])
	}
	var ev fleetops.Event
	if err := json.Unmarshal([]byte(datas[0]), &ev); err != nil {
		t.Fatalf("frame data not JSON: %v", err)
	}
	if ev.Seq != 2 || ev.Topic != "fleet/pop" {
		t.Fatalf("frame payload = %+v", ev)
	}
}

// TestSweepEventStream checks sweeps publish per-point events plus a
// terminal done event on their own topic, replayable after completion.
func TestSweepEventStream(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 2,
		Runner: func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
			return fakeResult{Name: experiment, N: o.TraceLength}, nil
		},
	})

	var resp struct {
		SweepID string `json:"sweep_id"`
		Events  string `json:"events"`
		Jobs    []Job  `json:"jobs"`
	}
	body := `{"experiments":["fig5"],"trace_lengths":[3000,4000],"trace_strides":[60]}`
	if code := postJSON(t, ts.URL+"/v1/sweeps", body, &resp); code != http.StatusAccepted {
		t.Fatalf("sweep: status %d", code)
	}
	if resp.SweepID == "" || !strings.Contains(resp.Events, resp.SweepID) {
		t.Fatalf("sweep response missing stream pointers: %+v", resp)
	}
	for _, j := range resp.Jobs {
		pollJob(t, ts.URL, j.ID)
	}

	// All events sit in the history ring: 2 points + 1 done.
	events := readNDJSON(t, fmt.Sprintf("%s/v1/sweeps/%s/events.ndjson?max=3", ts.URL, resp.SweepID))
	points, dones := 0, 0
	for _, ev := range events {
		switch ev.Type {
		case "point":
			points++
			var job Job
			if err := json.Unmarshal(ev.Data, &job); err != nil {
				t.Fatalf("point payload: %v", err)
			}
			if job.SweepID != resp.SweepID || job.State != StateDone {
				t.Fatalf("point job = %+v", job)
			}
		case "done":
			dones++
			var d struct {
				SweepID string `json:"sweep_id"`
				Total   int    `json:"total"`
				Failed  int    `json:"failed"`
			}
			if err := json.Unmarshal(ev.Data, &d); err != nil {
				t.Fatalf("done payload: %v", err)
			}
			if d.Total != 2 || d.Failed != 0 {
				t.Fatalf("done event = %+v", d)
			}
		}
	}
	if points != 2 || dones != 1 {
		t.Fatalf("saw %d points and %d done events, want 2 and 1", points, dones)
	}
	if code := getJSON(t, ts.URL+"/v1/sweeps/nope/events.ndjson?max=1", nil); code != http.StatusNotFound {
		t.Fatalf("unknown sweep stream: status %d, want 404", code)
	}
}

// TestSweepTopicExpiresAfterRetention checks a finished sweep's bus
// topic is dropped once SweepRetention passes, so a long-lived server
// does not accumulate one topic (and history ring) per sweep forever.
func TestSweepTopicExpiresAfterRetention(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:        2,
		SweepRetention: 30 * time.Millisecond,
		Runner: func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
			return fakeResult{Name: experiment, N: o.TraceLength}, nil
		},
	})

	var resp struct {
		SweepID string `json:"sweep_id"`
		Jobs    []Job  `json:"jobs"`
	}
	body := `{"experiments":["fig5"],"trace_lengths":[3000,4000],"trace_strides":[60]}`
	if code := postJSON(t, ts.URL+"/v1/sweeps", body, &resp); code != http.StatusAccepted {
		t.Fatalf("sweep: status %d", code)
	}
	for _, j := range resp.Jobs {
		pollJob(t, ts.URL, j.ID)
	}
	waitFor(t, func() bool { return !s.bus.HasTopic(sweepTopic(resp.SweepID)) })
	// The expired stream 404s like an unknown sweep instead of idling.
	if code := getJSON(t, fmt.Sprintf("%s/v1/sweeps/%s/events.ndjson?max=1", ts.URL, resp.SweepID), nil); code != http.StatusNotFound {
		t.Fatalf("expired sweep stream: status %d, want 404", code)
	}
}

// TestJobsListing covers GET /v1/jobs: state/client filters, newest
// first, totals, limits, and bad parameters.
func TestJobsListing(t *testing.T) {
	gate := make(chan struct{})
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Runner: func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
			if o.TraceLength >= 9000 {
				<-gate // hold late jobs in queued/running
			}
			return fakeResult{Name: experiment, N: o.TraceLength}, nil
		},
	})
	defer close(gate)

	var first Job
	postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"fig6","client":"ana","options":{"trace_length":1000}}`, &first)
	pollJob(t, ts.URL, first.ID)
	for i, client := range []string{"ana", "bob", "bob"} {
		postJSON(t, ts.URL+"/v1/jobs",
			fmt.Sprintf(`{"experiment":"fig6","client":%q,"options":{"trace_length":%d}}`, client, 9000+i), nil)
	}

	var all struct {
		Jobs  []Job `json:"jobs"`
		Total int   `json:"total"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs", &all); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if all.Total != 4 || len(all.Jobs) != 4 {
		t.Fatalf("total = %d, page = %d, want 4/4", all.Total, len(all.Jobs))
	}
	for i := 1; i < len(all.Jobs); i++ {
		if jobSeq(all.Jobs[i-1].ID) <= jobSeq(all.Jobs[i].ID) {
			t.Fatalf("listing not newest-first: %s before %s", all.Jobs[i-1].ID, all.Jobs[i].ID)
		}
	}

	var done struct {
		Jobs  []Job `json:"jobs"`
		Total int   `json:"total"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs?state=done", &done); code != http.StatusOK || done.Total != 1 {
		t.Fatalf("state=done: status %d, total %d, want 1", code, done.Total)
	}
	if done.Jobs[0].ID != first.ID {
		t.Fatalf("state=done returned %s, want %s", done.Jobs[0].ID, first.ID)
	}

	var bobs struct {
		Jobs  []Job `json:"jobs"`
		Total int   `json:"total"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs?client=bob", &bobs); code != http.StatusOK || bobs.Total != 2 {
		t.Fatalf("client=bob: status %d, total %d, want 2", code, bobs.Total)
	}
	for _, j := range bobs.Jobs {
		if j.Client != "bob" {
			t.Fatalf("client filter leaked job %+v", j)
		}
	}

	var limited struct {
		Jobs  []Job `json:"jobs"`
		Total int   `json:"total"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs?limit=2", &limited); code != http.StatusOK {
		t.Fatalf("limit=2: status %d", code)
	}
	if len(limited.Jobs) != 2 || limited.Total != 4 {
		t.Fatalf("limit=2 returned %d jobs with total %d, want 2 with total 4", len(limited.Jobs), limited.Total)
	}

	if code := getJSON(t, ts.URL+"/v1/jobs?state=sideways", nil); code != http.StatusBadRequest {
		t.Fatalf("bad state filter: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs?limit=0", nil); code != http.StatusBadRequest {
		t.Fatalf("limit=0: status %d, want 400", code)
	}
}

// TestRetryAfterNeverZero pins the backpressure clamp: however small
// the wait estimate, the Retry-After header is at least one second —
// "Retry-After: 0" would tell clients to hammer a shedding server.
func TestRetryAfterNeverZero(t *testing.T) {
	for _, d := range []time.Duration{0, time.Millisecond, 499 * time.Millisecond, time.Second, 3 * time.Second} {
		rec := httptest.NewRecorder()
		setRetryAfter(rec, d)
		got := rec.Header().Get("Retry-After")
		if got == "" || got == "0" {
			t.Fatalf("setRetryAfter(%v) = %q, want >= 1", d, got)
		}
	}
	// End to end: a rate-limited submission carries the clamped header.
	_, ts := newTestServer(t, Config{
		Workers: 1, Rate: 0.0001, Burst: 1,
		Runner: func(context.Context, string, experiments.Options) (experiments.Result, error) {
			return fakeResult{Name: "fig6"}, nil
		},
	})
	postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"fig6","client":"greedy"}`, nil)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"fig6","client":"greedy","options":{"trace_length":2000}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submission: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a clamped positive integer", ra)
	}
}

// TestFleetQuarantineVisible drives a population whose engine cannot be
// built into quarantine and checks it shows up in /readyz and /metrics
// without affecting healthy populations or overall readiness.
func TestFleetQuarantineVisible(t *testing.T) {
	healthy := testFleetBuilder(1)
	cfg := fastFleetConfig(func(reg fleetops.Registration) (lifetime.Config, error) {
		if reg.Name == "doomed" {
			return lifetime.Config{}, fmt.Errorf("no such workload")
		}
		return healthy(reg)
	})
	_, ts := newTestServer(t, cfg)

	for _, name := range []string{"doomed", "healthy"} {
		if code := postJSON(t, ts.URL+"/v1/fleets", fmt.Sprintf(`{"name":%q}`, name), nil); code != http.StatusCreated {
			t.Fatalf("register %s: status %d", name, code)
		}
	}
	waitForStatus(t, ts.URL, "doomed", func(st fleetops.Status) bool {
		return st.State == fleetops.StateQuarantined
	})
	waitForStatus(t, ts.URL, "healthy", func(st fleetops.Status) bool { return st.Epoch >= 1 })

	var ready struct {
		Status            string         `json:"status"`
		Fleets            fleetops.Stats `json:"fleets"`
		QuarantinedFleets []string       `json:"quarantined_fleets"`
	}
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusOK {
		t.Fatalf("quarantined fleet degraded readiness: status %d", code)
	}
	if len(ready.QuarantinedFleets) != 1 || ready.QuarantinedFleets[0] != "doomed" {
		t.Fatalf("readyz quarantined_fleets = %v, want [doomed]", ready.QuarantinedFleets)
	}
	if ready.Fleets.Populations != 2 || ready.Fleets.Quarantined != 1 {
		t.Fatalf("readyz fleets = %+v", ready.Fleets)
	}

	var m Metrics
	if code := getJSON(t, ts.URL+"/metrics.json", &m); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if m.Fleet.Scheduler.Quarantined != 1 || m.Fleet.Scheduler.TickFailures < 2 {
		t.Fatalf("metrics fleet scheduler = %+v", m.Fleet.Scheduler)
	}
	if len(m.Fleet.Quarantined) != 1 || m.Fleet.Quarantined[0] != "doomed" {
		t.Fatalf("metrics quarantined = %v", m.Fleet.Quarantined)
	}
	if m.Fleet.Bus.Published == 0 {
		t.Fatal("bus metrics empty despite epoch events")
	}
}

// TestFleetAlertsDeliveredDeterministically registers a population with
// alert rules against a seeded fault-injecting sink and checks fired
// alerts traverse the hardened pipeline with stable accounting.
func TestFleetAlertsDeliveredDeterministically(t *testing.T) {
	sink := &fleetops.FaultSink{Seed: 7, FailFirst: 1}
	cfg := fastFleetConfig(testFleetBuilder(1))
	cfg.AlertSink = sink
	cfg.AlertSeed = 7
	_, ts := newTestServer(t, cfg)

	// A threshold low enough that aging crosses it quickly.
	body := `{"name":"pop","alerts":{"p99_guardband":0.0001}}`
	if code := postJSON(t, ts.URL+"/v1/fleets", body, nil); code != http.StatusCreated {
		t.Fatalf("register: status %d", code)
	}
	deadline := time.Now().Add(15 * time.Second)
	for len(sink.Delivered()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("alert never delivered")
		}
		time.Sleep(3 * time.Millisecond)
	}
	got := sink.Delivered()[0]
	if got.Rule != fleetops.RuleP99Guardband || got.Fleet != "pop" {
		t.Fatalf("delivered alert = %+v", got)
	}

	var m Metrics
	if code := getJSON(t, ts.URL+"/metrics.json", &m); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if m.Fleet.Alerts.Fired == 0 {
		t.Fatalf("alert metrics = %+v", m.Fleet.Alerts)
	}
	if m.Fleet.Delivery == nil || m.Fleet.Delivery.Delivered == 0 || m.Fleet.Delivery.Retries == 0 {
		t.Fatalf("delivery metrics = %+v (FailFirst=1 forces one retry)", m.Fleet.Delivery)
	}
}
