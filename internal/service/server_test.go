package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"penelope/internal/experiments"
	"penelope/internal/obs"
)

// fakeResult is a minimal experiments.Result for instrumented runners.
// Its ID must be a real registry id: the server validates experiments
// against the registry before the runner ever sees them.
type fakeResult struct {
	Name string
	N    int
}

func (r fakeResult) ID() string         { return r.Name }
func (r fakeResult) Render(w io.Writer) { fmt.Fprintf(w, "%s %d\n", r.Name, r.N) }

// newTestServer starts an httptest server over a service with the
// given runner (nil = real registry runner).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.BuildInfo == nil {
		// Pin the binary identity so golden payloads never depend on the
		// toolchain that ran the tests.
		cfg.BuildInfo = &obs.BuildInfo{Version: "(devel)", GoVersion: "gotest", Revision: "0000000"}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postJSON posts body and decodes the response JSON into out,
// returning the status code.
func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("bad response JSON %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("bad response JSON %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

// pollJob polls until the job reaches a terminal state.
func pollJob(t *testing.T, base, id string) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var job Job
		if code := getJSON(t, base+"/v1/jobs/"+id, &job); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if job.State == StateDone || job.State == StateFailed {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSubmitPollFetch drives the primary flow end to end against the
// real registry runner: submit fig1, poll to completion, fetch the
// payload by its content address.
func TestSubmitPollFetch(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	var job Job
	if code := postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"fig1"}`, &job); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if job.Experiment != "fig1" || job.ID == "" || job.ResultKey == "" {
		t.Fatalf("bad job: %+v", job)
	}
	done := pollJob(t, ts.URL, job.ID)
	if done.State != StateDone {
		t.Fatalf("job failed: %+v", done)
	}

	var payload struct {
		Schema     int                 `json:"schema"`
		Experiment string              `json:"experiment"`
		Options    experiments.Options `json:"options"`
		Data       struct {
			LifetimeAt50 float64
		} `json:"data"`
	}
	if code := getJSON(t, ts.URL+"/v1/results/"+job.ResultKey, &payload); code != http.StatusOK {
		t.Fatalf("fetch result: status %d", code)
	}
	if payload.Experiment != "fig1" || payload.Schema != experiments.SchemaVersion {
		t.Errorf("bad envelope: %+v", payload)
	}
	if payload.Data.LifetimeAt50 < 4 {
		t.Errorf("LifetimeAt50 = %v, want >= 4", payload.Data.LifetimeAt50)
	}
	if payload.Options != experiments.DefaultOptions() {
		t.Errorf("options = %+v, want defaults", payload.Options)
	}
}

// TestConcurrentDuplicatesRunOnce submits the same (experiment,
// Options) from many goroutines while the simulation is gated open, and
// checks that exactly one simulation ran — the rest deduplicated
// against the in-flight leader or the completed cache entry.
func TestConcurrentDuplicatesRunOnce(t *testing.T) {
	var runs atomic.Int64
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers: 4,
		Runner: func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
			runs.Add(1)
			<-gate
			return fakeResult{Name: experiment, N: 1}, nil
		},
	})

	const n = 24
	jobs := make([]Job, n)
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if code := postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"fig4","options":{"trace_length":7000}}`, &jobs[i]); code != http.StatusAccepted {
				t.Errorf("submit %d: status %d", i, code)
			}
		}(i)
	}
	wg.Wait()
	close(gate)

	key := jobs[0].ResultKey
	hits := 0
	for i := range jobs {
		if jobs[i].ResultKey != key {
			t.Fatalf("job %d key %q != %q: duplicates must share one content address", i, jobs[i].ResultKey, key)
		}
		done := pollJob(t, ts.URL, jobs[i].ID)
		if done.State != StateDone {
			t.Fatalf("job %d failed: %+v", i, done)
		}
		if done.CacheHit {
			hits++
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("%d simulations ran, want exactly 1", got)
	}
	if hits != n-1 {
		t.Errorf("%d jobs marked cache_hit, want %d", hits, n-1)
	}
	m := s.metrics()
	if m.Cache.Misses != 1 || m.Cache.Hits+m.Cache.InflightDedups != n-1 {
		t.Errorf("cache counters %+v, want 1 miss and %d hits+dedups", m.Cache, n-1)
	}

	// A fresh submission after completion is a pure cache hit: done in
	// the submit response itself, no new simulation.
	var again Job
	if code := postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"fig4","options":{"trace_length":7000}}`, &again); code != http.StatusAccepted {
		t.Fatalf("resubmit: status %d", code)
	}
	if again.State != StateDone || !again.CacheHit {
		t.Errorf("resubmission not served from cache: %+v", again)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("resubmission ran a simulation (%d total)", got)
	}
}

// TestSweepGrid fans one sweep out over an Options grid and checks one
// job (and one result) per grid point, with overlapping points
// deduplicated against already-cached results.
func TestSweepGrid(t *testing.T) {
	var runs atomic.Int64
	_, ts := newTestServer(t, Config{
		Workers: 4,
		Runner: func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
			runs.Add(1)
			return fakeResult{Name: experiment, N: o.TraceLength}, nil
		},
	})

	var resp struct {
		Jobs []Job `json:"jobs"`
	}
	body := `{"experiments":["fig5","fig6"],"trace_lengths":[3000,4000],"trace_strides":[60]}`
	if code := postJSON(t, ts.URL+"/v1/sweeps", body, &resp); code != http.StatusAccepted {
		t.Fatalf("sweep: status %d", code)
	}
	if len(resp.Jobs) != 4 {
		t.Fatalf("sweep returned %d jobs, want one per grid point (4)", len(resp.Jobs))
	}
	keys := map[string]bool{}
	for _, j := range resp.Jobs {
		done := pollJob(t, ts.URL, j.ID)
		if done.State != StateDone {
			t.Fatalf("grid job failed: %+v", done)
		}
		keys[j.ResultKey] = true
		if code := getJSON(t, ts.URL+"/v1/results/"+j.ResultKey, nil); code != http.StatusOK {
			t.Errorf("result %s: status %d", j.ResultKey, code)
		}
	}
	if len(keys) != 4 {
		t.Errorf("sweep produced %d distinct results, want 4", len(keys))
	}
	if got := runs.Load(); got != 4 {
		t.Errorf("%d simulations ran, want 4", got)
	}

	// An overlapping sweep re-uses every cached grid point.
	if code := postJSON(t, ts.URL+"/v1/sweeps", body, &resp); code != http.StatusAccepted {
		t.Fatalf("overlapping sweep: status %d", code)
	}
	for _, j := range resp.Jobs {
		if !j.CacheHit {
			t.Errorf("overlapping sweep job %s not served from cache", j.ID)
		}
	}
	if got := runs.Load(); got != 4 {
		t.Errorf("overlapping sweep re-ran simulations (%d total)", got)
	}
}

// TestOptionsFreeCanonicalized checks that experiments whose drivers
// ignore Options (fig4 et al.) share one cache entry across every
// spelling of the request.
func TestOptionsFreeCanonicalized(t *testing.T) {
	var runs atomic.Int64
	_, ts := newTestServer(t, Config{
		Workers: 2,
		Runner: func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
			runs.Add(1)
			return fakeResult{Name: experiment, N: 1}, nil
		},
	})

	bodies := []string{
		`{"experiment":"fig4"}`,
		`{"experiment":"fig4","options":{"trace_length":4000}}`,
		`{"experiment":"fig4","options":{"trace_length":8000,"trace_stride":3}}`,
	}
	keys := map[string]bool{}
	for _, body := range bodies {
		var job Job
		if code := postJSON(t, ts.URL+"/v1/jobs", body, &job); code != http.StatusAccepted {
			t.Fatalf("submit %s: status %d", body, code)
		}
		pollJob(t, ts.URL, job.ID)
		keys[job.ResultKey] = true
	}
	if len(keys) != 1 {
		t.Errorf("options-free experiment produced %d keys, want 1", len(keys))
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("%d simulations ran for an options-free experiment, want 1", got)
	}
}

// TestTerminalJobEviction checks that finished jobs beyond the
// retention bound stop being pollable while their results stay
// fetchable from the cache.
func TestTerminalJobEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:    1,
		RetainJobs: 2,
		Runner: func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
			return fakeResult{Name: experiment, N: o.TraceLength}, nil
		},
	})

	var first Job
	postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"fig6","options":{"trace_length":1000}}`, &first)
	pollJob(t, ts.URL, first.ID)
	for _, l := range []int{2000, 3000, 4000} {
		var job Job
		postJSON(t, ts.URL+"/v1/jobs", fmt.Sprintf(`{"experiment":"fig6","options":{"trace_length":%d}}`, l), &job)
		pollJob(t, ts.URL, job.ID)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+first.ID, nil); code != http.StatusNotFound {
		t.Errorf("evicted job still pollable: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/results/"+first.ResultKey, nil); code != http.StatusOK {
		t.Errorf("evicted job's result gone from cache: status %d", code)
	}
}

// TestBadRequests exercises the 400/404 paths.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Runner: func(context.Context, string, experiments.Options) (experiments.Result, error) {
		return fakeResult{Name: "fig4"}, nil
	}})

	cases := []struct {
		name, url, body string
		want            int
	}{
		{"malformed JSON", "/v1/jobs", `{"experiment":`, http.StatusBadRequest},
		{"unknown option field", "/v1/jobs", `{"experiment":"fig4","options":{"trace_len":1}}`, http.StatusBadRequest},
		{"wrong option type", "/v1/jobs", `{"experiment":"fig4","options":{"trace_length":"big"}}`, http.StatusBadRequest},
		{"unknown experiment", "/v1/jobs", `{"experiment":"fig99"}`, http.StatusBadRequest},
		{"trailing garbage", "/v1/jobs", `{"experiment":"fig4"} extra`, http.StatusBadRequest},
		{"empty sweep", "/v1/sweeps", `{}`, http.StatusBadRequest},
		{"sweep unknown experiment", "/v1/sweeps", `{"experiments":["nope"]}`, http.StatusBadRequest},
		{"sweep with one bad id", "/v1/sweeps", `{"experiments":["fig6","nope"],"trace_lengths":[4000,8000]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var e struct {
			Error string `json:"error"`
		}
		if code := postJSON(t, ts.URL+tc.url, tc.body, &e); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		} else if e.Error == "" {
			t.Errorf("%s: missing error message", tc.name)
		}
	}

	// A sweep containing one bad id must reject the whole grid before
	// enqueuing anything: no orphan jobs for the valid points.
	var m Metrics
	if code := getJSON(t, ts.URL+"/metrics.json", &m); code != http.StatusOK {
		t.Fatal("metrics unavailable")
	}
	if m.Jobs.Submitted != 0 {
		t.Errorf("rejected requests enqueued %d jobs, want 0", m.Jobs.Submitted)
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/job-999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/results/deadbeef", nil); code != http.StatusNotFound {
		t.Errorf("unknown result: status %d, want 404", code)
	}
}

// TestFailedJobsRetry checks that a failed run reports its error, does
// not poison the cache, and a retry can succeed.
func TestFailedJobsRetry(t *testing.T) {
	var calls atomic.Int64
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Runner: func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
			if calls.Add(1) == 1 {
				return nil, fmt.Errorf("transient failure")
			}
			return fakeResult{Name: experiment, N: 2}, nil
		},
	})

	var job Job
	postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"table3"}`, &job)
	if done := pollJob(t, ts.URL, job.ID); done.State != StateFailed || done.Error == "" {
		t.Fatalf("want failed job with error, got %+v", done)
	}
	if code := getJSON(t, ts.URL+"/v1/results/"+job.ResultKey, nil); code != http.StatusNotFound {
		t.Errorf("failed result cached: status %d, want 404", code)
	}

	postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"table3"}`, &job)
	if done := pollJob(t, ts.URL, job.ID); done.State != StateDone {
		t.Fatalf("retry did not run: %+v", done)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("runner called %d times, want 2", got)
	}
}

// TestHealthzAndMetrics checks the operational endpoints.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Runner: func(context.Context, string, experiments.Options) (experiments.Result, error) {
		return fakeResult{Name: "mru"}, nil
	}})

	var h map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, h)
	}

	var job Job
	postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"mru"}`, &job)
	pollJob(t, ts.URL, job.ID)
	postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"mru"}`, &job)

	var m Metrics
	if code := getJSON(t, ts.URL+"/metrics.json", &m); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if m.Jobs.Submitted != 2 || m.Cache.Misses != 1 || m.Cache.Hits != 1 || m.Cache.Entries != 1 {
		t.Errorf("metrics = %+v, want 2 submitted, 1 miss, 1 hit, 1 entry", m)
	}
	if m.Workers != 1 {
		t.Errorf("workers = %d", m.Workers)
	}
}

// TestRenderedPayloadMatchesRun pins the service payload to the -json
// CLI payload: the same experiment under the same options marshals to
// the same bytes whether it went through the HTTP API or through
// `penelope run -json`.
func TestRenderedPayloadMatchesRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	var job Job
	if code := postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"table2"}`, &job); code != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	pollJob(t, ts.URL, job.ID)
	resp, err := http.Get(ts.URL + "/v1/results/" + job.ResultKey)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	res, err := experiments.Run("table2", experiments.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.NewPayload(res, experiments.DefaultOptions()).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("service payload diverges from direct marshal:\n%s\nvs\n%s", got, want)
	}
}

// TestExperimentsEndpoint checks GET /v1/experiments mirrors the
// registry: every id in report order, with descriptions and the
// options-free flag, so clients can discover experiments without
// reading CLI help text.
func TestExperimentsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	var resp struct {
		Experiments []ExperimentInfo `json:"experiments"`
	}
	if code := getJSON(t, ts.URL+"/v1/experiments", &resp); code != http.StatusOK {
		t.Fatalf("GET /v1/experiments: status %d", code)
	}
	specs := experiments.Experiments()
	if len(resp.Experiments) != len(specs) {
		t.Fatalf("listed %d experiments, registry has %d", len(resp.Experiments), len(specs))
	}
	for i, spec := range specs {
		got := resp.Experiments[i]
		if got.ID != spec.ID || got.Description != spec.Description ||
			got.OptionsFree != spec.OptionsFree || got.Fleet != spec.Fleet {
			t.Errorf("entry %d = %+v, want registry spec %q", i, got, spec.ID)
		}
		if got.Description == "" {
			t.Errorf("experiment %s listed without a description", got.ID)
		}
	}
	// The new fleet experiments are discoverable.
	fleet := map[string]bool{}
	for _, e := range resp.Experiments {
		fleet[e.ID] = e.Fleet
	}
	if !fleet["lifetime"] || !fleet["yield"] {
		t.Errorf("fleet experiments missing or unflagged in listing: %v", fleet)
	}
	if fleet["fig6"] {
		t.Error("fig6 flagged as a fleet experiment")
	}
}

// TestSweepFleetAxes fans a sweep over the fleet axes (populations x
// variation sigmas) and checks each grid point becomes a distinct
// cache key while repeated points deduplicate, mirroring the trace-axis
// sweep behaviour.
func TestSweepFleetAxes(t *testing.T) {
	var runs atomic.Int64
	_, ts := newTestServer(t, Config{
		Workers: 4,
		Runner: func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
			runs.Add(1)
			return fakeResult{Name: experiment, N: o.Population}, nil
		},
	})

	var resp struct {
		Jobs []Job `json:"jobs"`
	}
	body := `{"experiments":["lifetime"],"populations":[1000,2000],"variation_sigmas":[0.05,0.1],"years":[3]}`
	if code := postJSON(t, ts.URL+"/v1/sweeps", body, &resp); code != http.StatusAccepted {
		t.Fatalf("sweep: status %d", code)
	}
	if len(resp.Jobs) != 4 {
		t.Fatalf("sweep returned %d jobs, want one per fleet grid point (4)", len(resp.Jobs))
	}
	keys := map[string]bool{}
	for _, j := range resp.Jobs {
		if done := pollJob(t, ts.URL, j.ID); done.State != StateDone {
			t.Fatalf("grid job failed: %+v", done)
		}
		keys[j.ResultKey] = true
	}
	if len(keys) != 4 {
		t.Errorf("fleet sweep produced %d distinct result keys, want 4", len(keys))
	}
	if got := runs.Load(); got != 4 {
		t.Errorf("%d simulations ran, want 4", got)
	}

	// Overlapping fleet sweeps are served from cache.
	if code := postJSON(t, ts.URL+"/v1/sweeps", body, &resp); code != http.StatusAccepted {
		t.Fatalf("overlapping sweep: status %d", code)
	}
	for _, j := range resp.Jobs {
		if !j.CacheHit {
			t.Errorf("overlapping fleet sweep job %s not served from cache", j.ID)
		}
	}
	if got := runs.Load(); got != 4 {
		t.Errorf("overlapping fleet sweep re-ran simulations (%d total)", got)
	}
}

// TestFleetKnobsCanonicalizedForTraceExperiments checks a fleet-axis
// sweep over a trace-only experiment collapses to one cache entry: the
// fleet knobs are irrelevant to fig6, so varying them must not re-run
// the identical simulation under fresh keys.
func TestFleetKnobsCanonicalizedForTraceExperiments(t *testing.T) {
	var runs atomic.Int64
	_, ts := newTestServer(t, Config{
		Workers: 2,
		Runner: func(_ context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
			runs.Add(1)
			return fakeResult{Name: experiment}, nil
		},
	})

	var first, second Job
	if code := postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"fig6","options":{"population":1000}}`, &first); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	pollJob(t, ts.URL, first.ID)
	if code := postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"fig6","options":{"population":2000}}`, &second); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if second.ResultKey != first.ResultKey {
		t.Errorf("fleet knobs leaked into a trace-only key: %s vs %s", first.ResultKey, second.ResultKey)
	}
	if !second.CacheHit {
		t.Error("second fig6 submission with different population missed the cache")
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("%d simulations ran, want 1", got)
	}
	// A fleet experiment keeps the knobs: different populations are
	// genuinely different simulations.
	a := experiments.Options{Population: 1000}
	b := experiments.Options{Population: 2000}
	spec, _ := experiments.Lookup("lifetime")
	if spec.CanonicalOptions(a).Key() == spec.CanonicalOptions(b).Key() {
		t.Error("lifetime canonicalization dropped the population knob")
	}
}
