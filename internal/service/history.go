package service

import (
	_ "embed"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"penelope/internal/fleetops"
	"penelope/internal/obs/tsdb"
)

// This file wires the embedded metric history: a sampling loop feeding
// the obs/tsdb store, the range-query API behind /v1/metrics/query, the
// SLO engine evaluated on the same cadence, and the self-contained
// /dashboard page. History is on by default (10s cadence, memory-only
// without a DataDir) and disabled with a negative HistoryInterval.

//go:embed dashboard.html
var dashboardHTML []byte

// initHistory opens the time-series store, builds the SLO engine from
// the configured rules, registers the history's own families, and
// starts the sampling loop. Called after initFleetops so SLO breaches
// can ride the same bus and delivery pipeline as fleet alerts.
func (s *Server) initHistory() error {
	if s.cfg.HistoryInterval < 0 {
		if len(s.cfg.SLORules) > 0 {
			return fmt.Errorf("service: SLO rules configured but metric history is disabled")
		}
		return nil
	}
	cfg := tsdb.Config{
		Registry:  s.obs.reg,
		Interval:  s.cfg.HistoryInterval,
		Retention: s.cfg.HistoryRetention,
		Budget:    s.cfg.HistoryBudget,
		Logger:    s.logger,
	}
	if s.cfg.DataDir != "" {
		cfg.Dir = filepath.Join(s.cfg.DataDir, "metrics")
		cfg.ScrubInterval = s.cfg.ScrubInterval
	}
	db, err := tsdb.Open(cfg)
	if err != nil {
		return fmt.Errorf("opening metric history: %w", err)
	}
	s.history = db
	if len(s.cfg.SLORules) > 0 {
		eng, err := fleetops.NewSLOEngine(db, s.cfg.SLORules, s.bus, s.deliverer)
		if err != nil {
			return err
		}
		s.slo = eng
	}
	s.registerHistoryMetrics()
	s.historyWG.Add(1)
	go s.historyLoop()
	return nil
}

// registerHistoryMetrics mirrors the history's bookkeeping as metric
// families. tsdb.Stats reads only atomics, so the sampler reading these
// gauges mid-Sample (while it holds the store's own lock) cannot
// deadlock.
func (s *Server) registerHistoryMetrics() {
	reg := s.obs.reg
	hs := s.history.Stats
	reg.GaugeFunc("penelope_tsdb_series", "Flat series the metric history tracks.",
		func() float64 { return float64(hs().Series) })
	reg.GaugeFunc("penelope_tsdb_blocks", "Persisted history blocks on disk.",
		func() float64 { return float64(hs().Blocks) })
	reg.GaugeFunc("penelope_tsdb_block_bytes", "Total persisted history block bytes.",
		func() float64 { return float64(hs().BlockBytes) })
	reg.CounterFunc("penelope_tsdb_samples_total", "Registry sampling passes completed.",
		func() uint64 { return hs().Samples })
	reg.CounterFunc("penelope_tsdb_points_total", "Raw points appended to the history.",
		func() uint64 { return hs().Points })
	reg.CounterFunc("penelope_tsdb_blocks_written_total", "History blocks flushed to disk.",
		func() uint64 { return hs().BlocksWritten })
	reg.CounterFunc("penelope_tsdb_blocks_quarantined_total", "Corrupt history blocks set aside instead of loaded.",
		func() uint64 { return hs().BlocksQuarantined })
	reg.CounterFunc("penelope_tsdb_blocks_deleted_total", "History blocks deleted by retention or the disk budget.",
		func() uint64 { return hs().BlocksDeleted })
	reg.CounterFunc("penelope_tsdb_flush_failures_total", "History block flushes that failed (samples retry in the next flush).",
		func() uint64 { return hs().FlushFailures })
	reg.CounterFunc("penelope_tsdb_scrub_passes_total", "Background history scrub passes completed.",
		func() uint64 { return hs().ScrubPasses })
}

// historyLoop samples the registry and evaluates SLO rules on the
// configured cadence until shutdown.
func (s *Server) historyLoop() {
	defer s.historyWG.Done()
	ticker := time.NewTicker(s.cfg.HistoryInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case now := <-ticker.C:
			s.history.Sample(now)
			if s.slo != nil {
				for _, a := range s.slo.EvaluateOnce(now) {
					s.logger.Warn("SLO breached", "rule", a.Rule, "message", a.Message)
				}
			}
		}
	}
}

// parseQueryTime accepts RFC3339 timestamps, integer unix seconds, and
// negative durations relative to now ("-15m").
func parseQueryTime(v string, now time.Time) (time.Time, error) {
	if strings.HasPrefix(v, "-") {
		d, err := time.ParseDuration(v)
		if err != nil {
			return time.Time{}, fmt.Errorf("bad time %q: %v", v, err)
		}
		return now.Add(d), nil
	}
	if sec, err := strconv.ParseInt(v, 10, 64); err == nil {
		return time.Unix(sec, 0), nil
	}
	t, err := time.Parse(time.RFC3339, v)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad time %q (want RFC3339, unix seconds, or -duration)", v)
	}
	return t, nil
}

// handleMetricsQuery serves range queries against the metric history:
// GET /v1/metrics/query?name=penelope_jobs_done_total&from=-15m&step=30s&agg=rate
func (s *Server) handleMetricsQuery(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		writeError(w, http.StatusNotFound, errors.New("metric history is disabled"))
		return
	}
	params := r.URL.Query()
	q := tsdb.Query{Name: params.Get("name"), Label: params.Get("label"), Agg: params.Get("agg")}
	if q.Name == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing name parameter"))
		return
	}
	now := time.Now()
	q.To = now
	if v := params.Get("to"); v != "" {
		t, err := parseQueryTime(v, now)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		q.To = t
	}
	q.From = q.To.Add(-15 * time.Minute)
	if v := params.Get("from"); v != "" {
		t, err := parseQueryTime(v, now)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		q.From = t
	}
	if v := params.Get("step"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad step %q", v))
			return
		}
		q.Step = d
	} else {
		// Default to ~120 windows across the range, no finer than the
		// sampling cadence.
		q.Step = q.To.Sub(q.From) / 120
		if q.Step < s.cfg.HistoryInterval {
			q.Step = s.cfg.HistoryInterval
		}
		if q.Step <= 0 {
			q.Step = time.Second
		}
	}
	if v := params.Get("q"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad quantile %q", v))
			return
		}
		q.Quantile = f
	} else {
		q.Quantile = 0.99
	}
	res, err := s.history.Query(q)
	switch {
	case errors.Is(err, tsdb.ErrNotFound):
		writeError(w, http.StatusNotFound, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleMetricsNames lists the families the history tracks, with kinds,
// vec label values and histogram bounds — everything a client needs to
// build queries.
func (s *Server) handleMetricsNames(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		writeError(w, http.StatusNotFound, errors.New("metric history is disabled"))
		return
	}
	fams := s.history.Names()
	if fams == nil {
		fams = []tsdb.FamilyMeta{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"families": fams})
}

// handleSLO serves SLO rule status: last window evaluations, latches,
// and the engine counters. Always 200 — no rules is an empty list, so
// dashboards need no special case.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	rules := s.slo.Status()
	if rules == nil {
		rules = []fleetops.SLOStatus{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"stats": s.slo.Stats(),
		"rules": rules,
	})
}

// handleDashboard serves the embedded single-file dashboard. Everything
// it needs ships inline — no external scripts, styles or fonts — so it
// works on an air-gapped host.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(dashboardHTML)
}
