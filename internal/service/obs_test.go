package service

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"penelope/internal/experiments"
	"penelope/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// get fetches url with optional headers and returns status, body and
// the Content-Type header.
func get(t *testing.T, url string, headers map[string]string) (int, []byte, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header.Get("Content-Type")
}

// TestMetricsContentNegotiation pins the format contract: GET /metrics
// defaults to Prometheus text, Accept: application/json returns the
// JSON payload byte-identical to /metrics.json.
func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, text, ctype := get(t, ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	if ctype != obs.PromContentType {
		t.Fatalf("Content-Type = %q, want %q", ctype, obs.PromContentType)
	}
	for _, family := range []string{
		"# TYPE penelope_jobs_submitted_total counter",
		"# TYPE penelope_job_seconds histogram",
		"# TYPE penelope_job_queue_wait_seconds histogram",
		"# TYPE penelope_queue_depth gauge",
		"# TYPE penelope_fleet_tick_seconds histogram",
		"# TYPE penelope_goroutines gauge",
	} {
		if !strings.Contains(string(text), family) {
			t.Errorf("exposition missing %q", family)
		}
	}
	// No store configured: no store families at all.
	if strings.Contains(string(text), "penelope_store_") {
		t.Error("in-memory server exposes store families")
	}

	// The payload carries uptime in whole seconds, so a pair of fetches
	// straddling a second boundary can legitimately differ; retry the
	// byte comparison a couple of times before calling it a format bug.
	var viaAccept, viaPath []byte
	for attempt := 0; attempt < 3; attempt++ {
		var code int
		var ctype string
		code, viaAccept, ctype = get(t, ts.URL+"/metrics", map[string]string{"Accept": "application/json"})
		if code != http.StatusOK || ctype != "application/json" {
			t.Fatalf("GET /metrics (Accept json): status %d, Content-Type %q", code, ctype)
		}
		code, viaPath, _ = get(t, ts.URL+"/metrics.json", nil)
		if code != http.StatusOK {
			t.Fatalf("GET /metrics.json: status %d", code)
		}
		if string(viaAccept) == string(viaPath) {
			break
		}
	}
	if string(viaAccept) != string(viaPath) {
		t.Fatalf("Accept-negotiated JSON differs from /metrics.json:\n%s\nvs\n%s", viaAccept, viaPath)
	}
}

// TestMetricsJSONGolden pins the JSON metrics payload of a fresh,
// fixed-config server byte-for-byte against a golden file, so format
// drift against pre-observability consumers fails loudly. Refresh with
// go test ./internal/service -run TestMetricsJSONGolden -update.
func TestMetricsJSONGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	code, body, _ := get(t, ts.URL+"/metrics.json", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /metrics.json: status %d", code)
	}
	golden := filepath.Join("testdata", "metrics_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(body) != string(want) {
		t.Fatalf("JSON metrics drifted from golden:\n got: %s\nwant: %s", body, want)
	}
}

// TestJobTraceLifecycle verifies a completed leader job serves a trace
// whose spans are monotonic and gap-free from admit to done, covering
// the queue wait and the run.
func TestJobTraceLifecycle(t *testing.T) {
	runner := func(ctx context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
		time.Sleep(10 * time.Millisecond)
		return fakeResult{Name: experiment, N: 1}, nil
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: runner})

	var job Job
	if code := postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"fig1"}`, &job); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	pollJob(t, ts.URL, job.ID)

	var trace obs.TraceSnapshot
	if code := getJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/trace", &trace); code != http.StatusOK {
		t.Fatalf("GET trace: status %d", code)
	}
	if !trace.Done {
		t.Fatal("trace of a finished job is not done")
	}
	if trace.ID != job.ID || trace.Component != "job" {
		t.Fatalf("bad trace identity: %+v", trace)
	}
	names := make([]string, len(trace.Spans))
	var cursor int64
	for i, span := range trace.Spans {
		names[i] = span.Name
		if span.StartNS != cursor {
			t.Fatalf("span %q starts at %d, want %d (gap or overlap)", span.Name, span.StartNS, cursor)
		}
		if span.DurationNS < 0 {
			t.Fatalf("span %q has negative duration", span.Name)
		}
		cursor = span.StartNS + span.DurationNS
	}
	if cursor != trace.DurationNS {
		t.Fatalf("spans end at %d, trace duration %d", cursor, trace.DurationNS)
	}
	want := []string{"admit", "queue-wait", "run", "done"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("span names = %v, want %v", names, want)
	}
	var run obs.SpanSnapshot
	for _, span := range trace.Spans {
		if span.Name == "run" {
			run = span
		}
	}
	if run.DurationNS < (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("run span too short for a 10ms runner: %dns", run.DurationNS)
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/no-such-job/trace", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job trace: status %d, want 404", code)
	}
}

// TestDebugTraces exercises the component ring endpoint.
func TestDebugTraces(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	var job Job
	if code := postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"fig1"}`, &job); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	pollJob(t, ts.URL, job.ID)

	var listing struct {
		Components []string `json:"components"`
	}
	if code := getJSON(t, ts.URL+"/v1/debug/traces", &listing); code != http.StatusOK {
		t.Fatalf("GET /v1/debug/traces: status %d", code)
	}
	found := false
	for _, c := range listing.Components {
		if c == "job" {
			found = true
		}
	}
	if !found {
		t.Fatalf("components %v missing \"job\"", listing.Components)
	}

	var byComponent struct {
		Component string              `json:"component"`
		Traces    []obs.TraceSnapshot `json:"traces"`
	}
	if code := getJSON(t, ts.URL+"/v1/debug/traces?component=job&n=4", &byComponent); code != http.StatusOK {
		t.Fatalf("GET traces by component: status %d", code)
	}
	if len(byComponent.Traces) == 0 {
		t.Fatal("no job traces recorded")
	}

	if code := getJSON(t, ts.URL+"/v1/debug/traces?component=job&n=bogus", nil); code != http.StatusBadRequest {
		t.Fatalf("bad n: status %d, want 400", code)
	}
	// Unknown components are empty, not errors.
	if code := getJSON(t, ts.URL+"/v1/debug/traces?component=nope", &byComponent); code != http.StatusOK {
		t.Fatalf("unknown component: status %d", code)
	}
}

// TestUntrackedClients floods the server with more client ids than the
// tracked bound and checks the overflow is counted in both formats.
func TestUntrackedClients(t *testing.T) {
	runner := func(ctx context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
		return fakeResult{Name: experiment, N: 1}, nil
	}
	_, ts := newTestServer(t, Config{Workers: 2, Runner: runner})

	const extra = 7
	for i := 0; i < maxTrackedClients+extra; i++ {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
			strings.NewReader(`{"experiment":"fig1"}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Client-Id", fmt.Sprintf("client-%d", i))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
	}

	var m Metrics
	if code := getJSON(t, ts.URL+"/metrics.json", &m); code != http.StatusOK {
		t.Fatalf("GET /metrics.json: status %d", code)
	}
	if m.UntrackedClients != extra {
		t.Fatalf("untracked_clients = %d, want %d", m.UntrackedClients, extra)
	}
	other, ok := m.Clients["~other"]
	if !ok || other.Admitted != extra {
		t.Fatalf("~other cell = %+v (ok=%v), want %d admitted", other, ok, extra)
	}
	// The raw JSON carries the field (it is non-zero here).
	code, body, _ := get(t, ts.URL+"/metrics.json", nil)
	if code != http.StatusOK || !strings.Contains(string(body), `"untracked_clients"`) {
		t.Fatal("untracked_clients missing from JSON payload")
	}

	_, text, _ := get(t, ts.URL+"/metrics", nil)
	wantLine := fmt.Sprintf("penelope_untracked_clients_total %d", extra)
	if !strings.Contains(string(text), wantLine) {
		t.Fatalf("exposition missing %q", wantLine)
	}
}

// TestStoreInstrumentsObserve checks a persisted job shows up in the
// store's put histogram and the job trace gains a store-write span.
func TestStoreInstrumentsObserve(t *testing.T) {
	runner := func(ctx context.Context, experiment string, o experiments.Options) (experiments.Result, error) {
		return fakeResult{Name: experiment, N: 1}, nil
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: runner, DataDir: t.TempDir()})

	var job Job
	if code := postJSON(t, ts.URL+"/v1/jobs", `{"experiment":"fig1"}`, &job); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	pollJob(t, ts.URL, job.ID)

	_, text, _ := get(t, ts.URL+"/metrics", nil)
	if !strings.Contains(string(text), "penelope_store_put_seconds_count 1") {
		t.Fatal("store put histogram did not observe the persisted result")
	}

	var trace obs.TraceSnapshot
	if code := getJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/trace", &trace); code != http.StatusOK {
		t.Fatalf("GET trace: status %d", code)
	}
	var names []string
	for _, span := range trace.Spans {
		names = append(names, span.Name)
	}
	if fmt.Sprint(names) != fmt.Sprint([]string{"admit", "queue-wait", "run", "store-write", "done"}) {
		t.Fatalf("persisted job spans = %v", names)
	}
}

// TestObserveWaitRaisesRetryAfter verifies the measured queue-wait EWMA
// lifts the Retry-After hint when waits exceed the service-time model.
func TestObserveWaitRaisesRetryAfter(t *testing.T) {
	b := newBackoffController(0.75)
	base := b.retryAfter(0, 4)
	b.observeWait(10 * time.Second)
	if got := b.retryAfter(0, 4); got < 10*time.Second {
		t.Fatalf("retryAfter = %v after observing 10s waits (was %v)", got, base)
	}
	// The model path still wins when it predicts the longer wait.
	b2 := newBackoffController(0.75)
	b2.observe(2 * time.Second)
	b2.observeWait(10 * time.Millisecond)
	if got := b2.retryAfter(100, 2); got < 100*time.Second {
		t.Fatalf("retryAfter = %v, want the service-time model's estimate", got)
	}
}

// TestMetricsJSONOmitsNewFieldsWhenZero guards byte-compat directly:
// a fresh server's JSON payload must not mention any of the fields
// this layer added.
func TestMetricsJSONOmitsNewFieldsWhenZero(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	code, body, _ := get(t, ts.URL+"/metrics.json", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /metrics.json: status %d", code)
	}
	if strings.Contains(string(body), "untracked_clients") {
		t.Fatal("zero untracked_clients serialized; breaks byte-compat")
	}
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
}
