package pipeline

import (
	"testing"

	"penelope/internal/cache"
	"penelope/internal/trace"
)

func shortTrace(id trace.SuiteID, idx int) *trace.Trace {
	return trace.NewTrace(id, idx, 15000)
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.AllocWidth = 0 },
		func(c *Config) { c.SchedEntries = 0 },
		func(c *Config) { c.IntRegs = 8 },
		func(c *Config) { c.NumAdders = 0 },
		func(c *Config) { c.DL0Bytes = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d should be invalid", i)
		}
	}
	if AdderPriority.String() != "priority" || AdderUniform.String() != "uniform" {
		t.Error("policy names wrong")
	}
}

func TestRunBasics(t *testing.T) {
	r := Run(DefaultConfig(), shortTrace(trace.SpecINT2000, 0))
	if r.Uops != 15000 {
		t.Fatalf("uops = %d, want 15000", r.Uops)
	}
	if r.Cycles == 0 || r.CPI <= 0 {
		t.Fatal("no cycles simulated")
	}
	// A 4-wide core cannot beat 0.25 CPI and should stay well under the
	// fully serialized bound.
	if r.CPI < 0.25 || r.CPI > 5 {
		t.Errorf("CPI = %.3f, outside plausible range", r.CPI)
	}
}

// TestPaperOccupancies checks the headline §4.4/§4.5 statistics land in
// the paper's neighbourhood: register files free more than half the
// time, scheduler occupancy moderate-high, write ports mostly available.
func TestPaperOccupancies(t *testing.T) {
	r := Run(DefaultConfig(), shortTrace(trace.Multimedia, 0))
	if r.IntRF.FreeFraction < 0.45 || r.IntRF.FreeFraction > 0.85 {
		t.Errorf("int RF free = %.2f, want around the paper's 0.54", r.IntRF.FreeFraction)
	}
	if r.FPRF.FreeFraction < 0.5 {
		t.Errorf("fp RF free = %.2f, want > 0.5 (paper: 0.69)", r.FPRF.FreeFraction)
	}
	if r.Sched.EntryOccupancy < 0.3 {
		t.Errorf("scheduler occupancy = %.2f, want moderate-high (paper: 0.63)", r.Sched.EntryOccupancy)
	}
	if r.Sched.DataOccupancy >= r.Sched.EntryOccupancy {
		t.Error("data fields must be freer than entries (§4.5: 70-75% free)")
	}
	if r.IntRF.PortAvailability < 0.8 {
		t.Errorf("int write-port availability = %.2f, want high (paper: 0.92)", r.IntRF.PortAvailability)
	}
}

// TestDL0MRUHits checks §3.2.1's locality claim: the bulk of DL0 hits
// land in the MRU position.
func TestDL0MRUHits(t *testing.T) {
	r := Run(DefaultConfig(), shortTrace(trace.Office, 0))
	if r.DL0MRUHits < 0.80 {
		t.Errorf("MRU hit fraction = %.2f, want > 0.80 (paper: 0.90)", r.DL0MRUHits)
	}
}

// TestAdderPolicies reproduces §4.3: uniform distribution evens the
// adders out (paper: 21% each); priority allocation skews them (paper:
// 11%–30%).
func TestAdderPolicies(t *testing.T) {
	cfgU := DefaultConfig()
	cfgU.AdderPolicy = AdderUniform
	u := Run(cfgU, shortTrace(trace.SpecINT2000, 1))
	spreadU := 0.0
	for _, util := range u.AdderUtil {
		if d := util - u.AdderUtilMean; d > spreadU {
			spreadU = d
		}
	}
	if spreadU > 0.02 {
		t.Errorf("uniform policy spread = %.3f, want near-flat utilization", spreadU)
	}
	if u.AdderUtilMean < 0.08 || u.AdderUtilMean > 0.40 {
		t.Errorf("uniform mean utilization = %.3f, want in the paper's 11-30%% band", u.AdderUtilMean)
	}

	cfgP := DefaultConfig()
	cfgP.AdderPolicy = AdderPriority
	p := Run(cfgP, shortTrace(trace.SpecINT2000, 1))
	for i := 1; i < len(p.AdderUtil); i++ {
		if p.AdderUtil[i] > p.AdderUtil[i-1]+1e-9 {
			t.Fatalf("priority utilization must decrease with adder index: %v", p.AdderUtil)
		}
	}
	if p.AdderUtil[0] < u.AdderUtilMean {
		t.Error("priority policy must load the first adder above the uniform mean")
	}
}

// TestCacheSchemeCostsCPI checks the Table 3 mechanism end to end:
// running with SetFixed50% must cost some CPI relative to the baseline,
// and LineDynamic must cost less than SetFixed on average.
func TestCacheSchemeCostsCPI(t *testing.T) {
	tr := shortTrace(trace.Server, 0)
	base := Run(DefaultConfig(), tr)

	cfgSet := DefaultConfig()
	cfgSet.DL0Options = cache.Options{Scheme: cache.SchemeSetFixed, InvertRatio: 0.5, RotatePeriod: 5_000_000}
	set := Run(cfgSet, tr)

	cfgDyn := DefaultConfig()
	cfgDyn.DL0Options = cache.DefaultDynamicOptions(0.6, 0.02, 1)
	cfgDyn.DL0Options.PeriodCycles = 10000
	cfgDyn.DL0Options.WarmupCycles = 1000
	cfgDyn.DL0Options.TestCycles = 1000
	dyn := Run(cfgDyn, tr)

	lossSet := set.CPI/base.CPI - 1
	lossDyn := dyn.CPI/base.CPI - 1
	if lossSet <= 0 {
		t.Errorf("SetFixed50%% CPI loss = %.4f, want positive", lossSet)
	}
	if lossSet > 0.25 {
		t.Errorf("SetFixed50%% CPI loss = %.4f, implausibly large", lossSet)
	}
	if lossDyn >= lossSet {
		t.Errorf("LineDynamic loss (%.4f) should undercut SetFixed (%.4f)", lossDyn, lossSet)
	}
	if set.DL0Inverted < 0.4 {
		t.Errorf("SetFixed inverted fraction = %.2f, want ≈ 0.5", set.DL0Inverted)
	}
}

// TestISVEndToEnd drives the register-file ISV mechanism through the full
// pipeline: worst bias must fall from the baseline's high values towards
// 50% (Figure 6).
func TestISVEndToEnd(t *testing.T) {
	tr := shortTrace(trace.SpecINT2000, 2)
	base := Run(DefaultConfig(), tr)
	cfg := DefaultConfig()
	cfg.EnableISV = true
	isv := Run(cfg, tr)

	if base.IntRF.WorstBias < 0.70 {
		t.Errorf("baseline int worst bias = %.3f, want high (paper: 0.899)", base.IntRF.WorstBias)
	}
	if isv.IntRF.WorstBias > 0.60 {
		t.Errorf("ISV int worst bias = %.3f, want ≈ 0.5 (paper: 0.485)", isv.IntRF.WorstBias)
	}
	if isv.IntRF.WorstBias >= base.IntRF.WorstBias {
		t.Error("ISV must improve on the baseline")
	}
	if isv.IntRF.RepairWrites == 0 {
		t.Error("ISV performed no repair writes")
	}
}

func TestMispredictionsSlowTheCore(t *testing.T) {
	// The same instruction stream with a larger redirect penalty must
	// take longer.
	slowCfg := DefaultConfig()
	slowCfg.RedirectPenalty = 60
	fast := Run(DefaultConfig(), shortTrace(trace.Office, 2))
	slow := Run(slowCfg, shortTrace(trace.Office, 2))
	if slow.CPI <= fast.CPI {
		t.Errorf("redirect penalty 60 CPI (%.3f) should exceed penalty 12 CPI (%.3f)",
			slow.CPI, fast.CPI)
	}
}

func TestRunPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run with invalid config did not panic")
		}
	}()
	Run(Config{}, shortTrace(trace.Office, 0))
}
