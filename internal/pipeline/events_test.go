package pipeline

import (
	"testing"
	"testing/quick"
)

// collectWheel returns a wheel whose handler appends fired records to the
// returned slice.
func collectWheel() (*wheel, *[]eventRec) {
	var fired []eventRec
	w := &wheel{}
	w.handler = func(r eventRec) { fired = append(fired, r) }
	return w, &fired
}

func TestWheelFiresInOrder(t *testing.T) {
	w, fired := collectWheel()
	for _, tm := range []uint64{5, 1, 3, 1, 9} {
		w.at(tm, eventRec{})
	}
	w.fireUpTo(4)
	want := []uint64{1, 1, 3}
	if len(*fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(*fired), len(want))
	}
	for i := range want {
		if (*fired)[i].time != want[i] {
			t.Fatalf("event %d fired at %d, want %d", i, (*fired)[i].time, want[i])
		}
	}
	if last := w.drain(); last != 9 {
		t.Fatalf("drain returned %d, want 9", last)
	}
}

func TestWheelTieBreaksFIFO(t *testing.T) {
	w, fired := collectWheel()
	for i := 0; i < 5; i++ {
		w.at(7, eventRec{arg: int32(i)})
	}
	w.drain()
	for i, r := range *fired {
		if int(r.arg) != i {
			t.Fatalf("same-time events fired out of insertion order: %v", *fired)
		}
	}
}

func TestWheelNextTime(t *testing.T) {
	w, _ := collectWheel()
	if w.nextTime() != ^uint64(0) {
		t.Fatal("empty wheel nextTime should be max")
	}
	w.at(42, eventRec{})
	if w.nextTime() != 42 {
		t.Fatalf("nextTime = %d, want 42", w.nextTime())
	}
}

// TestWheelOverflow schedules events far beyond the bucket horizon and
// checks they still fire, in time order, via the overflow path.
func TestWheelOverflow(t *testing.T) {
	w, fired := collectWheel()
	times := []uint64{3, wheelSize + 10, 5 * wheelSize, wheelSize - 1, 2*wheelSize + 7}
	for _, tm := range times {
		w.at(tm, eventRec{})
	}
	if got := w.nextTime(); got != 3 {
		t.Fatalf("nextTime = %d, want 3", got)
	}
	if last := w.drain(); last != 5*wheelSize {
		t.Fatalf("drain returned %d, want %d", last, 5*wheelSize)
	}
	if len(*fired) != len(times) {
		t.Fatalf("fired %d events, want %d", len(*fired), len(times))
	}
	for i := 1; i < len(*fired); i++ {
		if (*fired)[i].time < (*fired)[i-1].time {
			t.Fatalf("events fired out of time order: %v", *fired)
		}
	}
}

func TestWheelPropertySortedDelivery(t *testing.T) {
	f := func(times []uint16) bool {
		w, fired := collectWheel()
		for _, tm := range times {
			w.at(uint64(tm), eventRec{})
		}
		w.drain()
		if len(*fired) != len(times) {
			return false
		}
		for i := 1; i < len(*fired); i++ {
			if (*fired)[i].time < (*fired)[i-1].time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
