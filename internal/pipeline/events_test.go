package pipeline

import (
	"testing"
	"testing/quick"
)

func TestWheelFiresInOrder(t *testing.T) {
	var w wheel
	var got []uint64
	for _, tm := range []uint64{5, 1, 3, 1, 9} {
		tm := tm
		w.at(tm, func(cyc uint64) { got = append(got, cyc) })
	}
	w.fireUpTo(4)
	want := []uint64{1, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if last := w.drain(); last != 9 {
		t.Fatalf("drain returned %d, want 9", last)
	}
}

func TestWheelTieBreaksFIFO(t *testing.T) {
	var w wheel
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		w.at(7, func(uint64) { order = append(order, i) })
	}
	w.drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of insertion order: %v", order)
		}
	}
}

func TestWheelNextTime(t *testing.T) {
	var w wheel
	if w.nextTime() != ^uint64(0) {
		t.Fatal("empty wheel nextTime should be max")
	}
	w.at(42, func(uint64) {})
	if w.nextTime() != 42 {
		t.Fatalf("nextTime = %d, want 42", w.nextTime())
	}
}

func TestWheelPropertySortedDelivery(t *testing.T) {
	f := func(times []uint16) bool {
		var w wheel
		var fired []uint64
		for _, tm := range times {
			w.at(uint64(tm), func(cyc uint64) { fired = append(fired, cyc) })
		}
		w.drain()
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
