package pipeline

import "container/heap"

// event is a deferred action at a cycle. Events with equal times fire in
// insertion order so runs are deterministic.
type event struct {
	time uint64
	seq  uint64
	fn   func(cycle uint64)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// wheel schedules and fires events in time order.
type wheel struct {
	h   eventHeap
	seq uint64
}

// at schedules fn to run at the given cycle.
func (w *wheel) at(cycle uint64, fn func(cycle uint64)) {
	w.seq++
	heap.Push(&w.h, event{time: cycle, seq: w.seq, fn: fn})
}

// fireUpTo runs every event with time ≤ cycle, in order.
func (w *wheel) fireUpTo(cycle uint64) {
	for len(w.h) > 0 && w.h[0].time <= cycle {
		e := heap.Pop(&w.h).(event)
		e.fn(e.time)
	}
}

// drain runs all remaining events and returns the time of the last one.
func (w *wheel) drain() uint64 {
	var last uint64
	for len(w.h) > 0 {
		e := heap.Pop(&w.h).(event)
		e.fn(e.time)
		if e.time > last {
			last = e.time
		}
	}
	return last
}

// nextTime returns the time of the earliest pending event, or ^uint64(0)
// if none.
func (w *wheel) nextTime() uint64 {
	if len(w.h) == 0 {
		return ^uint64(0)
	}
	return w.h[0].time
}
