package pipeline

// The event wheel schedules the core's deferred actions (issue, slot
// release, write-back, retire) as small typed records in per-cycle
// buckets, replacing a container/heap of closures: no per-uop closure
// allocations, no heap sift operations — scheduling is an append into the
// bucket of the target cycle and firing is a linear walk of the clock.
// Bucket slices are retained and reused across cycles, so a warmed-up
// wheel performs no allocation at all on the hot path.

// eventKind discriminates the deferred actions a core schedules.
type eventKind uint8

const (
	evIssue     eventKind = iota // mark operands ready and issue a scheduler slot
	evRelease                    // deallocate a scheduler slot
	evWriteInt                   // integer register write-back
	evWriteFP                    // FP register write-back
	evRetireInt                  // retire: free ROB slot and previous int register
	evRetireFP                   // retire: free ROB slot and previous FP register
)

// eventRec is one deferred action. The payload fields are a union over
// the kinds: arg holds the scheduler slot or the physical register
// (negative: none), val/ext the write-back data.
type eventRec struct {
	time uint64
	val  uint64
	arg  int32
	ext  uint16 // FP write-back extension bits (the 80-bit high bank)
	kind eventKind
}

const (
	wheelBits = 10
	// wheelSize is the wheel horizon in cycles. Every latency chain of
	// the core (execution latency + TLB and L2 penalties + redirect +
	// ROB-backpressure on retire) is far below it for any sane
	// configuration; events beyond the horizon spill to the overflow
	// list and are pulled back in as the clock advances.
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1

	// bucketInline is the per-cycle event capacity served without any
	// slice append; cycles with more events (stall-drain bursts) spill
	// into a per-bucket slice whose storage is reused after firing.
	bucketInline = 8
)

// bucket holds the events of one cycle: a fixed inline chunk plus a
// reusable spill slice, so steady-state scheduling allocates nothing.
type bucket struct {
	n     uint8
	evs   [bucketInline]eventRec
	spill []eventRec
}

// wheel schedules and fires events in time order. Events with equal times
// fire in insertion order so runs are deterministic (overflow events that
// re-enter the horizon fire after same-cycle events already in their
// bucket — irrelevant within the horizon, which covers every default
// configuration).
type wheel struct {
	handler  func(eventRec) // invoked for each fired event
	base     uint64         // next unfired cycle
	inWheel  int            // events currently stored in buckets
	buckets  [wheelSize]bucket
	overflow []eventRec // events at or beyond base+wheelSize (rare)
}

// at schedules r to fire at the given cycle.
func (w *wheel) at(cycle uint64, r eventRec) {
	if cycle < w.base {
		cycle = w.base // never schedule into the already-fired past
	}
	r.time = cycle
	if cycle >= w.base+wheelSize {
		w.overflow = append(w.overflow, r)
		return
	}
	b := &w.buckets[cycle&wheelMask]
	if int(b.n) < bucketInline {
		b.evs[b.n] = r
		b.n++
	} else {
		b.spill = append(b.spill, r)
	}
	w.inWheel++
}

// fireUpTo runs every event with time ≤ cycle, in order.
func (w *wheel) fireUpTo(cycle uint64) {
	for w.inWheel+len(w.overflow) > 0 {
		if w.inWheel == 0 {
			// Every pending event lies beyond the horizon: jump the
			// clock to the earliest one and pull what now fits back in.
			m := w.overflowMin()
			if m > cycle {
				return
			}
			if m > w.base {
				w.base = m
			}
			w.migrate()
			continue
		}
		if w.base > cycle {
			return // remaining events are in the future
		}
		b := &w.buckets[w.base&wheelMask]
		if b.n > 0 {
			for i := 0; i < int(b.n); i++ {
				w.inWheel--
				w.handler(b.evs[i])
			}
			for i := 0; i < len(b.spill); i++ {
				w.inWheel--
				w.handler(b.spill[i])
			}
			b.n = 0
			b.spill = b.spill[:0]
		}
		w.base++
		if len(w.overflow) > 0 {
			w.migrate() // the horizon advanced; pull in what fits
		}
	}
	if w.base <= cycle {
		w.base = cycle + 1
	}
}

// migrate moves overflow events that now fit the horizon into buckets.
func (w *wheel) migrate() {
	kept := w.overflow[:0]
	for _, r := range w.overflow {
		if r.time < w.base+wheelSize {
			b := &w.buckets[r.time&wheelMask]
			if int(b.n) < bucketInline {
				b.evs[b.n] = r
				b.n++
			} else {
				b.spill = append(b.spill, r)
			}
			w.inWheel++
		} else {
			kept = append(kept, r)
		}
	}
	w.overflow = kept
}

// overflowMin returns the earliest overflow event time.
func (w *wheel) overflowMin() uint64 {
	m := ^uint64(0)
	for _, r := range w.overflow {
		if r.time < m {
			m = r.time
		}
	}
	return m
}

// drain runs all remaining events and returns the time of the last one.
func (w *wheel) drain() uint64 {
	var last uint64
	for {
		t := w.nextTime()
		if t == ^uint64(0) {
			return last
		}
		w.fireUpTo(t)
		last = t
	}
}

// nextTime returns the time of the earliest pending event, or ^uint64(0)
// if none.
func (w *wheel) nextTime() uint64 {
	if w.inWheel > 0 {
		for t := w.base; ; t++ {
			if w.buckets[t&wheelMask].n > 0 {
				return t
			}
		}
	}
	if len(w.overflow) > 0 {
		return w.overflowMin()
	}
	return ^uint64(0)
}
