package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"

	"penelope/internal/trace"
)

// RunBatch runs every source through an independent core built from cfg,
// fanning the work out over a pool of workers, and returns the results in
// source order. Each Run is completely independent — cores share no state
// and sources are deterministic streams — so the result slice is
// bit-identical to calling Run serially on each source, regardless of the
// worker count or scheduling order.
//
// workers <= 0 uses GOMAXPROCS. Sources are stateful streams, so the
// parallel path gives every job its own Fork: replay cursors fork into
// fresh cursors over the one shared immutable recording (no copy, no
// re-synthesis), generator traces fork into independent generators. The
// same source may therefore appear any number of times in the slice.
func RunBatch(cfg Config, sources []trace.Source, workers int) []Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	results := make([]Result, len(sources))
	if len(sources) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers == 1 {
		for i, src := range sources {
			results[i] = Run(cfg, src)
		}
		return results
	}

	jobs := make([]trace.Source, len(sources))
	for i, src := range sources {
		jobs[i] = src.Fork()
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				results[i] = Run(cfg, jobs[i])
			}
		}()
	}
	wg.Wait()
	return results
}
