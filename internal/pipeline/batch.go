package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"

	"penelope/internal/trace"
)

// RunBatch runs every trace through an independent core built from cfg,
// fanning the work out over a pool of workers, and returns the results in
// trace order. Each Run is completely independent — cores share no state
// and traces are deterministic streams — so the result slice is
// bit-identical to calling Run serially on each trace, regardless of the
// worker count or scheduling order.
//
// workers <= 0 uses GOMAXPROCS. Traces that appear more than once in the
// slice are cloned so no two workers ever share a stream.
func RunBatch(cfg Config, traces []*trace.Trace, workers int) []Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	results := make([]Result, len(traces))
	if len(traces) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(traces) {
		workers = len(traces)
	}
	if workers == 1 {
		for i, tr := range traces {
			results[i] = Run(cfg, tr)
		}
		return results
	}

	// Traces are stateful streams: a pointer appearing twice would be
	// Reset and consumed by two workers at once. Clone duplicates so
	// every job owns its stream.
	jobs := make([]*trace.Trace, len(traces))
	seen := make(map[*trace.Trace]bool, len(traces))
	for i, tr := range traces {
		if seen[tr] {
			tr = tr.Clone()
		} else {
			seen[tr] = true
		}
		jobs[i] = tr
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				results[i] = Run(cfg, jobs[i])
			}
		}()
	}
	wg.Wait()
	return results
}
