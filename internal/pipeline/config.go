// Package pipeline is the trace-driven out-of-order core model used to
// evaluate the Penelope mechanisms (paper §4.1: "an IA32 trace-driven
// Intel production simulator ... resembles the Intel Core
// microarchitecture").
//
// The model renames uops onto physical register files, dispatches them
// into the scheduler, resolves dependences through a scoreboard, applies
// issue-port and adder contention, accesses the DL0 and DTLB for memory
// uops, and retires in order through a ROB. It is approximate — a
// resource-and-latency model, not RTL — but it produces exactly the
// statistics the paper consumes: CPI, structure occupancy and idle time,
// write-port availability, per-bit value bias and cache behaviour.
package pipeline

import (
	"fmt"

	"penelope/internal/cache"
	"penelope/internal/sched"
)

// AdderPolicy selects how additions are distributed over the adders
// (§4.3: priorities give 11–30% utilization, uniform gives 21%).
type AdderPolicy int

// Adder allocation policies.
const (
	// AdderPriority picks the lowest-numbered free adder, skewing work
	// toward adder 0.
	AdderPriority AdderPolicy = iota
	// AdderUniform distributes additions round-robin.
	AdderUniform
)

// String names the policy.
func (p AdderPolicy) String() string {
	if p == AdderPriority {
		return "priority"
	}
	return "uniform"
}

// Config parameterizes a pipeline run. DefaultConfig supplies the
// Core-like baseline of §4.1.
type Config struct {
	// Front-end and window sizes.
	AllocWidth  int // uops dispatched per cycle
	ROB         int
	RetireWidth int

	// Scheduler.
	SchedEntries int
	AllocPorts   int
	SchedPlan    *sched.Plan
	RINVPeriod   uint64

	// Physical register files.
	IntRegs       int
	FPRegs        int
	IntWritePorts int
	FPWritePorts  int
	EnableISV     bool

	// Execution resources.
	IssuePorts  int
	NumAdders   int
	AdderPolicy AdderPolicy

	// Memory hierarchy.
	DL0Bytes    int
	DL0Line     int
	DL0Ways     int
	DL0Options  cache.Options
	DTLBEntries int
	DTLBWays    int
	PageBytes   int
	DTLBOptions cache.Options
	L2Latency   int // extra cycles on a DL0 miss
	TLBPenalty  int // extra cycles on a DTLB miss

	// RedirectPenalty is the front-end refill delay after a branch
	// misprediction resolves.
	RedirectPenalty int
}

// DefaultConfig returns the Core-like configuration used throughout the
// reproduction: 4-wide, 96-entry ROB, 32-entry scheduler, 128-entry
// register files, 32KB 8-way DL0, 128-entry 8-way DTLB.
func DefaultConfig() Config {
	return Config{
		AllocWidth:   4,
		ROB:          96,
		RetireWidth:  4,
		SchedEntries: 32,
		AllocPorts:   4,
		// The paper refreshes RINV "every one million cycles" on
		// 10M-instruction traces; our default run lengths are ~100x
		// shorter, so the period scales down to keep a comparable
		// number of samples per run.
		RINVPeriod: 256,
		// 128-entry register files (§4.4): the full 7-bit tag space is
		// used uniformly, which is what makes the scheduler's tag
		// fields self-balanced (§4.5).
		IntRegs:         128,
		FPRegs:          128,
		IntWritePorts:   4,
		FPWritePorts:    3,
		IssuePorts:      5,
		NumAdders:       6,
		AdderPolicy:     AdderUniform,
		DL0Bytes:        32 * 1024,
		DL0Line:         64,
		DL0Ways:         8,
		DTLBEntries:     128,
		DTLBWays:        8,
		PageBytes:       4096,
		L2Latency:       10,
		TLBPenalty:      30,
		RedirectPenalty: 16,
	}
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.AllocWidth <= 0 || c.ROB <= 0 || c.RetireWidth <= 0:
		return fmt.Errorf("pipeline: front-end sizes must be positive")
	case c.SchedEntries <= 0 || c.AllocPorts <= 0:
		return fmt.Errorf("pipeline: scheduler sizes must be positive")
	case c.IntRegs < 32 || c.FPRegs < 16:
		return fmt.Errorf("pipeline: register files too small for architectural state")
	case c.IssuePorts <= 0 || c.NumAdders <= 0:
		return fmt.Errorf("pipeline: execution resources must be positive")
	case c.DL0Bytes <= 0 || c.DTLBEntries <= 0:
		return fmt.Errorf("pipeline: memory hierarchy must be sized")
	default:
		return nil
	}
}
