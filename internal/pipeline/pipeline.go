package pipeline

import (
	"penelope/internal/cache"
	"penelope/internal/regfile"
	"penelope/internal/sched"
	"penelope/internal/trace"
)

// Result is the outcome of running one trace through the core.
type Result struct {
	Trace  string
	Uops   uint64
	Cycles uint64
	CPI    float64

	IntRF regfile.Report
	FPRF  regfile.Report
	Sched sched.Report

	DL0MissRate   float64
	DTLBMissRate  float64
	DL0MRUHits    float64 // fraction of DL0 hits at the MRU position
	DL0Inverted   float64 // average inverted-line fraction
	DTLBInverted  float64
	DL0Stats      cache.Stats
	DTLBStats     cache.Stats
	AdderUtil     []float64 // per-adder busy fraction
	AdderUtilMean float64
}

// core is the running state of one simulation.
type core struct {
	cfg   Config
	w     wheel
	cycle uint64

	intRF *regfile.File
	fpRF  *regfile.File
	sch   *sched.Scheduler
	dl0   *cache.Cache
	dtlb  *cache.Cache

	intRAT [trace.NumIntRegs]int
	fpRAT  [trace.NumFPRegs]int
	// Dense scoreboards indexed by physical register: the ready cycle of
	// the last value written, 0 once the register retires (a map would
	// pay hashing on the two lookups every uop makes).
	ready  []uint64
	fready []uint64

	portFree  []uint64 // issue port -> next free cycle
	adderFree []uint64 // adder -> next free cycle
	adderBusy []uint64 // adder -> total busy cycles
	adderRR   int

	robCount    int
	lastRetire  uint64
	retiredAt   uint64
	retiredThis int

	dispatched      uint64
	allocThis       int
	allocCycle      uint64
	frontStallUntil uint64
}

// Run simulates one uop source through a core built from cfg and returns
// the measured statistics. The source is reset first; runs are
// deterministic. Sources are either synthesizing generators
// (*trace.Trace) or zero-allocation replay cursors over a shared
// recording (*trace.Cursor); sweeping many configurations over the same
// workload should record once and hand each Run a cursor.
func Run(cfg Config, src trace.Source) Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	src.Reset()
	c := &core{
		cfg: cfg,
		intRF: regfile.New(regfile.Config{
			Name: "int", Entries: cfg.IntRegs, Bits: 32,
			WritePorts: cfg.IntWritePorts, RINVPeriod: cfg.RINVPeriod,
			EnableISV: cfg.EnableISV,
		}),
		fpRF: regfile.New(regfile.Config{
			Name: "fp", Entries: cfg.FPRegs, Bits: 80,
			WritePorts: cfg.FPWritePorts, RINVPeriod: cfg.RINVPeriod,
			EnableISV: cfg.EnableISV,
		}),
		sch: sched.New(sched.Config{
			Entries: cfg.SchedEntries, AllocPorts: cfg.AllocPorts,
			RINVPeriod: cfg.RINVPeriod, Plan: cfg.SchedPlan,
		}),
		dl0:       cache.New("DL0", cfg.DL0Bytes, cfg.DL0Line, cfg.DL0Ways, cfg.DL0Options),
		dtlb:      cache.NewTLB("DTLB", cfg.DTLBEntries, cfg.DTLBWays, cfg.PageBytes, cfg.DTLBOptions),
		ready:     make([]uint64, cfg.IntRegs),
		fready:    make([]uint64, cfg.FPRegs),
		portFree:  make([]uint64, cfg.IssuePorts),
		adderFree: make([]uint64, cfg.NumAdders),
		adderBusy: make([]uint64, cfg.NumAdders),
	}
	c.w.handler = c.fire
	// Architectural state: allocate and zero-fill the committed
	// registers at cycle 0 (the cold-start state §4.4 mentions).
	for i := 0; i < trace.NumIntRegs; i++ {
		r, _ := c.intRF.Allocate(0)
		c.intRF.Write(r, 0, 0, 0)
		c.intRAT[i] = r
	}
	for i := 0; i < trace.NumFPRegs; i++ {
		r, _ := c.fpRF.Allocate(0)
		c.fpRF.Write(r, 0, 0, 0)
		c.fpRAT[i] = r
	}

	for {
		u, ok := src.NextUop()
		if !ok {
			break
		}
		c.dispatchUop(u)
	}
	end := c.w.drain()
	if end < c.cycle {
		end = c.cycle
	}
	end++
	c.intRF.Finish(end)
	c.fpRF.Finish(end)
	c.sch.Finish(end)

	res := Result{
		Trace:  src.Name(),
		Uops:   c.dispatched,
		Cycles: end,
		IntRF:  c.intRF.Report(),
		FPRF:   c.fpRF.Report(),
		Sched:  c.sch.Report(),
	}
	if c.dispatched > 0 {
		res.CPI = float64(end) / float64(c.dispatched)
	}
	res.DL0Stats = *c.dl0.Stats()
	res.DTLBStats = *c.dtlb.Stats()
	res.DL0MissRate = res.DL0Stats.MissRate()
	res.DTLBMissRate = res.DTLBStats.MissRate()
	res.DL0MRUHits = res.DL0Stats.MRUHitFraction(0)
	res.DL0Inverted = res.DL0Stats.AvgInvertedFraction(c.dl0.Lines())
	res.DTLBInverted = res.DTLBStats.AvgInvertedFraction(c.dtlb.Lines())
	res.AdderUtil = make([]float64, cfg.NumAdders)
	var sum float64
	for i, busy := range c.adderBusy {
		res.AdderUtil[i] = float64(busy) / float64(end)
		sum += res.AdderUtil[i]
	}
	res.AdderUtilMean = sum / float64(cfg.NumAdders)
	return res
}

// advanceTo moves the core clock forward, firing pending events.
func (c *core) advanceTo(cycle uint64) {
	if cycle > c.cycle {
		c.cycle = cycle
	}
	c.w.fireUpTo(c.cycle)
}

// dispatchUop renames, schedules and executes one uop, stalling the
// front end as resources demand.
func (c *core) dispatchUop(u *trace.Uop) {
	// Front-end redirect after a mispredicted branch.
	if c.cycle < c.frontStallUntil {
		c.advanceTo(c.frontStallUntil)
	}
	// I-cache miss bubble: fetch delivers nothing while the line comes
	// in, letting the back-end window drain.
	if u.FetchBubble > 0 {
		c.advanceTo(c.cycle + uint64(u.FetchBubble))
		c.allocCycle = c.cycle
		c.allocThis = 0
	}
	// Allocation bandwidth.
	if c.allocCycle != c.cycle {
		c.allocCycle = c.cycle
		c.allocThis = 0
	}
	if c.allocThis >= c.cfg.AllocWidth {
		c.advanceTo(c.cycle + 1)
		c.allocCycle = c.cycle
		c.allocThis = 0
	}

	// Stall until a scheduler slot, ROB slot and destination register
	// are available.
	for {
		c.w.fireUpTo(c.cycle)
		if c.sch.FreeSlots() == 0 || c.robCount >= c.cfg.ROB || !c.destAvailable(u) {
			next := c.w.nextTime()
			if next == ^uint64(0) {
				c.advanceTo(c.cycle + 1)
			} else if next > c.cycle {
				c.advanceTo(next)
			} else {
				c.advanceTo(c.cycle + 1)
			}
			c.allocCycle = c.cycle
			c.allocThis = 0
			continue
		}
		break
	}
	dispatch := c.cycle
	c.allocThis++
	c.dispatched++
	c.robCount++

	// Rename sources.
	src1Phys, src1Ready := c.lookupSrc(u, u.Src1)
	src2Phys, src2Ready := c.lookupSrc(u, u.Src2)

	// Rename destination.
	dstPhys, prevPhys := -1, -1
	if u.Dst >= 0 {
		if u.Class.IsFP() {
			dstPhys, _ = c.fpRF.Allocate(dispatch)
			prevPhys = c.fpRAT[u.Dst]
			c.fpRAT[u.Dst] = dstPhys
		} else {
			dstPhys, _ = c.intRF.Allocate(dispatch)
			prevPhys = c.intRAT[u.Dst]
			c.intRAT[u.Dst] = dstPhys
		}
	}

	// Operand readiness (two cycles of scheduling-loop latency) and
	// issue-port contention: ALU uops may issue on port 0 or 1, the
	// other classes are port-affine.
	ready := dispatch + 2
	if src1Ready > ready {
		ready = src1Ready
	}
	if src2Ready > ready {
		ready = src2Ready
	}
	port := u.Class.Port()
	switch {
	case u.Class == trace.ClassALU && c.portFree[1] < c.portFree[0]:
		port = 1
	case (u.Class.IsFP() || u.Class == trace.ClassMul) && c.portFree[0] < c.portFree[4]:
		// The second FP/Mul pipe shares port 0 with ALU work, so
		// FP-heavy traces don't serialize on a single port.
		port = 0
	}
	issue := ready
	if c.portFree[port] > issue {
		issue = c.portFree[port]
	}
	c.portFree[port] = issue + 1

	// Adders serve integer ALU work and address generation (§4.1:
	// "there is an adder in each integer and address generation port").
	if u.Class == trace.ClassALU || u.Class.IsMem() {
		adder := c.pickAdder(issue)
		if c.adderFree[adder] > issue {
			issue = c.adderFree[adder]
		}
		c.adderFree[adder] = issue + 1
		c.adderBusy[adder]++
	}

	// Execution latency, including the memory hierarchy.
	latency := uint64(u.Class.Latency())
	if u.Class.IsMem() {
		if !c.dtlb.Access(u.Addr, issue) {
			latency += uint64(c.cfg.TLBPenalty)
		}
		if !c.dl0.Access(u.Addr, issue) {
			latency += uint64(c.cfg.L2Latency)
		}
	}
	complete := issue + latency

	// A mispredicted branch starves the front end until it resolves and
	// the pipeline refills; this is what periodically drains the window
	// (without it the scheduler would sit at 100% occupancy forever).
	if u.Class == trace.ClassBranch && u.Mispredict {
		c.frontStallUntil = complete + uint64(c.cfg.RedirectPenalty)
	}

	// Scheduler entry lifecycle: data-capture fields die at issue, the
	// entry itself deallocates two cycles after writeback (replay-safe
	// deallocation), which is what keeps occupancy near the paper's
	// 63% under dependence and miss pressure.
	// Operands count as captured when they arrive within the two-cycle
	// scheduling loop; later ones come over the bypass network.
	d := sched.FromUop(u, dstPhys, src1Phys, src2Phys, src1Ready <= dispatch+2, src2Ready <= dispatch+2)
	d.Port = port
	slot, ok := c.sch.Dispatch(&d, dispatch)
	if !ok {
		panic("pipeline: scheduler slot vanished")
	}
	c.w.at(issue, eventRec{kind: evIssue, arg: int32(slot)})
	// Memory uops hand over to the MOB once their address generation
	// issues; other uops hold their entry until writeback for replay.
	releaseAt := complete + 1
	if u.Class.IsMem() {
		releaseAt = issue + 1
	}
	c.w.at(releaseAt, eventRec{kind: evRelease, arg: int32(slot)})

	// Destination write-back and scoreboard.
	if dstPhys >= 0 {
		if u.Class.IsFP() {
			c.fready[dstPhys] = complete
			c.w.at(complete, eventRec{kind: evWriteFP, arg: int32(dstPhys), val: u.DstVal, ext: u.DstExt})
		} else {
			c.ready[dstPhys] = complete
			c.w.at(complete, eventRec{kind: evWriteInt, arg: int32(dstPhys), val: u.DstVal})
		}
	}

	// In-order retirement frees the ROB slot and the previous physical
	// register of the destination's architectural register.
	retire := complete
	if retire < c.lastRetire {
		retire = c.lastRetire
	}
	if retire == c.retiredAt && c.retiredThis >= c.cfg.RetireWidth {
		retire++
	}
	if retire != c.retiredAt {
		c.retiredAt = retire
		c.retiredThis = 0
	}
	c.retiredThis++
	c.lastRetire = retire
	retireKind := evRetireInt
	if u.Class.IsFP() {
		retireKind = evRetireFP
	}
	c.w.at(retire, eventRec{kind: retireKind, arg: int32(prevPhys)})
}

// fire executes one event record; the wheel invokes it in time order.
// Handlers never schedule further events, which keeps the wheel's firing
// walk simple.
func (c *core) fire(r eventRec) {
	switch r.kind {
	case evIssue:
		c.sch.MarkReady(int(r.arg), true, true, r.time)
		c.sch.Issue(int(r.arg), r.time)
	case evRelease:
		c.sch.Release(int(r.arg), r.time)
	case evWriteInt:
		c.intRF.Write(int(r.arg), r.val, 0, r.time)
	case evWriteFP:
		c.fpRF.Write(int(r.arg), r.val, uint64(r.ext), r.time)
	case evRetireInt:
		c.robCount--
		if r.arg >= 0 {
			c.ready[r.arg] = 0
			c.intRF.Release(int(r.arg), r.time)
		}
	case evRetireFP:
		c.robCount--
		if r.arg >= 0 {
			c.fready[r.arg] = 0
			c.fpRF.Release(int(r.arg), r.time)
		}
	}
}

// destAvailable reports whether the uop's destination register file has a
// free entry.
func (c *core) destAvailable(u *trace.Uop) bool {
	if u.Dst < 0 {
		return true
	}
	if u.Class.IsFP() {
		return c.fpRF.FreeCount() > 0
	}
	return c.intRF.FreeCount() > 0
}

// lookupSrc renames a source register, returning its physical tag and
// ready cycle.
func (c *core) lookupSrc(u *trace.Uop, src int) (phys int, readyAt uint64) {
	if src < 0 {
		return -1, 0
	}
	if u.Class.IsFP() {
		phys = c.fpRAT[src%trace.NumFPRegs]
		return phys, c.fready[phys]
	}
	phys = c.intRAT[src%trace.NumIntRegs]
	return phys, c.ready[phys]
}

// pickAdder chooses an adder per the configured policy.
func (c *core) pickAdder(issue uint64) int {
	switch c.cfg.AdderPolicy {
	case AdderPriority:
		for i, free := range c.adderFree {
			if free <= issue {
				return i
			}
		}
		// All busy: the earliest-free one.
		best, bestFree := 0, c.adderFree[0]
		for i, free := range c.adderFree {
			if free < bestFree {
				best, bestFree = i, free
			}
		}
		return best
	default: // uniform round-robin
		a := c.adderRR
		c.adderRR = (c.adderRR + 1) % len(c.adderFree)
		return a
	}
}
