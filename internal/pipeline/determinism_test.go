package pipeline

import (
	"reflect"
	"testing"

	"penelope/internal/cache"
	"penelope/internal/sched"
	"penelope/internal/trace"
)

// determinismConfigs exercises every hot-path mechanism the performance
// work touches: baseline accounting, the ISV register files, the planned
// scheduler (repair writes), and cache inversion.
func determinismConfigs(t *testing.T) map[string]Config {
	t.Helper()
	base := DefaultConfig()

	isv := DefaultConfig()
	isv.EnableISV = true

	planned := DefaultConfig()
	planned.SchedPlan = sched.BuildPlan(Run(DefaultConfig(), trace.NewTrace(trace.Multimedia, 1, 4000)).Sched)

	inverted := DefaultConfig()
	inverted.EnableISV = true
	inverted.DL0Options = cache.Options{Scheme: cache.SchemeLineFixed, InvertRatio: 0.5, Seed: 17}
	inverted.DTLBOptions = cache.Options{Scheme: cache.SchemeLineFixed, InvertRatio: 0.5, Seed: 2}

	return map[string]Config{"base": base, "isv": isv, "planned": planned, "inverted": inverted}
}

// TestRunDeterministic re-runs every configuration on the same trace and
// requires the full Result — CPI, worst biases, per-bit series, miss
// rates, occupancies, every field — to be deep-equal. This is the guard
// that keeps hot-path rewrites (run-length bias accounting, the event
// wheel) from silently changing reported statistics.
func TestRunDeterministic(t *testing.T) {
	for name, cfg := range determinismConfigs(t) {
		t.Run(name, func(t *testing.T) {
			tr := trace.NewTrace(trace.Server, 2, 6000)
			a := Run(cfg, tr)
			b := Run(cfg, tr)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("two runs of the same config/trace diverged:\n%+v\nvs\n%+v", a, b)
			}
		})
	}
}

// TestRunBatchMatchesSerial requires RunBatch to return, in order, the
// bit-identical Results of serial Run calls — for any worker count, even
// when the same source appears twice in the batch, and for a mix of
// generator traces and replay cursors (aliased cursors share one
// immutable recording).
func TestRunBatchMatchesSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableISV = true
	sharedTrace := trace.NewTrace(trace.SpecINT2000, 3, 5000)
	sharedCursor := trace.Record(trace.Server, 1, 5000).Cursor()
	sources := []trace.Source{
		trace.NewTrace(trace.SpecINT2000, 0, 5000),
		trace.Record(trace.Multimedia, 2, 5000).Cursor(),
		sharedTrace,
		sharedCursor,
		sharedTrace, // aliased on purpose: RunBatch must fork it
		sharedCursor,
		trace.NewTrace(trace.SpecFP2000, 4, 5000),
	}

	want := make([]Result, len(sources))
	for i, src := range sources {
		want[i] = Run(cfg, src)
	}

	for _, workers := range []int{0, 1, 3, 16} {
		got := RunBatch(cfg, sources, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("workers=%d: result %d (%s) differs from serial run", workers, i, want[i].Trace)
			}
		}
	}
}

// TestRunRecordingMatchesGenerator is the pipeline-level half of the
// record/replay equivalence guarantee: for every hot-path configuration,
// Run over a replay cursor must return the bit-identical Result — every
// float, every per-bit series — as Run over the synthesizing generator.
func TestRunRecordingMatchesGenerator(t *testing.T) {
	rec := trace.Record(trace.Server, 2, 6000)
	for name, cfg := range determinismConfigs(t) {
		t.Run(name, func(t *testing.T) {
			gen := Run(cfg, trace.NewTrace(trace.Server, 2, 6000))
			rep := Run(cfg, rec.Cursor())
			if !reflect.DeepEqual(gen, rep) {
				t.Errorf("replay Result differs from generator Result:\n%+v\nvs\n%+v", rep, gen)
			}
		})
	}
}

// TestRunBatchEmpty covers the degenerate inputs.
func TestRunBatchEmpty(t *testing.T) {
	if got := RunBatch(DefaultConfig(), nil, 4); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}
