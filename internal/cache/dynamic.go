package cache

// monitor implements the §3.2.1 dynamic-ratio controller for
// LineDynamic: each period it warms the cache up, marks shadow lines that
// would be inverted, counts hits on them as induced extra misses, and
// activates or deactivates the mechanism for the rest of the period based
// on a threshold.
type monitor struct {
	phase        monitorPhase
	phaseStart   uint64
	periodStart  uint64
	windowBase   uint64 // accesses at test-window start
	extraBase    uint64 // induced extra misses at test-window start
	shadowCount  int
	shadowTarget int
}

type monitorPhase int

const (
	phaseWarmup monitorPhase = iota
	phaseTest
	phaseRun
)

// stepMonitor advances the monitor state machine to the given cycle.
func (c *Cache) stepMonitor(cycle uint64) {
	m := &c.mon
	opt := &c.opt
	if opt.PeriodCycles == 0 {
		return
	}
	// Start a new period: switch the mechanism off so the shadow-bit
	// measurement observes the cache "without actually performing"
	// the inversion (§3.2.1).
	if cycle-m.periodStart >= opt.PeriodCycles {
		m.periodStart = cycle - (cycle-m.periodStart)%opt.PeriodCycles
		m.phase = phaseWarmup
		m.phaseStart = m.periodStart
		if c.active {
			c.releaseInverted()
		}
		c.active = false
		c.clearShadows()
		c.stats.MonitorWindows++
	}
	switch m.phase {
	case phaseWarmup:
		if cycle-m.phaseStart >= opt.WarmupCycles {
			m.phase = phaseTest
			m.phaseStart = cycle
			m.windowBase = c.stats.Accesses
			m.extraBase = c.stats.InducedExtraMisses
			m.shadowTarget = c.targetInverted()
			m.shadowCount = 0
			c.seedShadows()
		}
	case phaseTest:
		if cycle-m.phaseStart >= opt.TestCycles {
			accesses := c.stats.Accesses - m.windowBase
			extra := c.stats.InducedExtraMisses - m.extraBase
			c.stats.MonitorAccesses += accesses
			rate := 0.0
			if accesses > 0 {
				rate = float64(extra) / float64(accesses)
			}
			c.active = rate <= opt.MissThreshold
			if !c.active {
				c.stats.MonitorDeactivated++
			}
			c.clearShadows()
			m.phase = phaseRun
			m.phaseStart = cycle
		}
	case phaseRun:
		// maintain() rebuilds the inverted pool while active; nothing
		// to do here until the next period begins.
	}
}

// seedShadows marks the would-be-inverted lines for the test window, up
// to the target count, mirroring how the live mechanism picks victims:
// invalid lines first (whose hypothetical inversion costs nothing — they
// can never be hit), then LRU valid lines.
func (c *Cache) seedShadows() {
	m := &c.mon
	attempts := 0
	for m.shadowCount < m.shadowTarget && attempts < 8*c.sets*c.ways {
		attempts++
		s := c.rng.Intn(c.sets)
		w := c.shadowCandidate(s)
		if w < 0 {
			continue
		}
		c.lines[s*c.ways+w].shadow = true
		m.shadowCount++
	}
}

// markShadowLine replaces a consumed shadow mark with a fresh one so the
// hypothetical inverted-line count stays at target during the window.
func (c *Cache) markShadowLine() {
	if c.mon.phase != phaseTest {
		return
	}
	c.mon.shadowCount--
	for tries := 0; tries < 8; tries++ {
		s := c.rng.Intn(c.sets)
		w := c.shadowCandidate(s)
		if w < 0 {
			continue
		}
		c.lines[s*c.ways+w].shadow = true
		c.mon.shadowCount++
		return
	}
}

// shadowCandidate mirrors invertCandidate for the hypothetical pool:
// invalid non-inverted non-shadow lines first, then LRU valid non-shadow
// lines. Returns -1 if the set is exhausted.
func (c *Cache) shadowCandidate(set int) int {
	base := set * c.ways
	for rank := c.ways - 1; rank >= 0; rank-- {
		w := int(c.order[base+rank])
		l := &c.lines[base+w]
		if !l.valid && !l.inverted && !l.shadow {
			return w
		}
	}
	for rank := c.ways - 1; rank >= 0; rank-- {
		w := int(c.order[base+rank])
		l := &c.lines[base+w]
		if l.valid && !l.shadow {
			return w
		}
	}
	return -1
}

// clearShadows removes all shadow marks.
func (c *Cache) clearShadows() {
	for i := range c.lines {
		c.lines[i].shadow = false
	}
	c.mon.shadowCount = 0
}

// releaseInverted returns inverted lines to the free pool when the
// mechanism deactivates: they stay invalid but stop being counted or
// replenished, so demand fills reclaim them naturally.
func (c *Cache) releaseInverted() {
	for i := range c.lines {
		if c.lines[i].inverted {
			c.lines[i].inverted = false
		}
	}
	c.invCount = 0
}
