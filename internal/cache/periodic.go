package cache

// PeriodicInverter models the conventional alternative Penelope is
// compared against (§3): the whole structure operates in inverted mode
// half of the time, with XNOR gates in the read/write paths flipping
// data on the fly. Contents never need invalidation — the invert bit is
// global — but the XNOR costs roughly one FO4 of cycle time (10% at a
// 10 FO4 cycle), which is why the paper reserves it for slow structures
// like second-level caches.
//
// The inverter tracks the time spent in each mode and exposes the
// resulting cell-bias correction: a bit with raw zero bias b stored
// under a 50% inverted schedule wears as b/2 + (1-b)/2 = 50%.
type PeriodicInverter struct {
	period   uint64
	inverted bool
	lastFlip uint64
	invTime  uint64
	totTime  uint64
	flips    uint64
	// CycleTimeFactor is the relative cycle time the XNOR in the access
	// path costs (paper example: 1.10).
	CycleTimeFactor float64
}

// NewPeriodicInverter returns an inverter that flips mode every period
// cycles. Period must be positive.
func NewPeriodicInverter(period uint64) *PeriodicInverter {
	if period == 0 {
		panic("cache: periodic inverter needs a positive period")
	}
	return &PeriodicInverter{period: period, CycleTimeFactor: 1.10}
}

// Advance moves time forward to the given cycle, flipping the mode at
// each period boundary and integrating per-mode time.
func (p *PeriodicInverter) Advance(cycle uint64) {
	for cycle-p.lastFlip >= p.period {
		dt := p.period
		p.account(dt)
		p.lastFlip += p.period
		p.inverted = !p.inverted
		p.flips++
	}
	// Partial interval up to 'cycle' is accounted lazily on the next
	// flip or on Finish; keep only flip bookkeeping here.
}

func (p *PeriodicInverter) account(dt uint64) {
	p.totTime += dt
	if p.inverted {
		p.invTime += dt
	}
}

// Finish closes accounting at the end cycle.
func (p *PeriodicInverter) Finish(cycle uint64) {
	if cycle > p.lastFlip {
		p.account(cycle - p.lastFlip)
		p.lastFlip = cycle
	}
}

// Inverted reports the current mode.
func (p *PeriodicInverter) Inverted() bool { return p.inverted }

// Flips returns how many mode changes have happened.
func (p *PeriodicInverter) Flips() uint64 { return p.flips }

// InvertedFraction returns the fraction of time spent in inverted mode.
func (p *PeriodicInverter) InvertedFraction() float64 {
	if p.totTime == 0 {
		return 0
	}
	return float64(p.invTime) / float64(p.totTime)
}

// EffectiveBias returns the cell bias a raw data bias settles at under
// the inverter's measured schedule: f·(1-b) + (1-f)·b for inverted
// fraction f.
func (p *PeriodicInverter) EffectiveBias(rawBias float64) float64 {
	f := p.InvertedFraction()
	return f*(1-rawBias) + (1-f)*rawBias
}

// Store transforms a value on its way into the array (XNOR with the
// invert bit), and Load transforms it back. Width is in bits.
func (p *PeriodicInverter) Store(v uint64, width int) uint64 {
	if p.inverted {
		return ^v & mask64(width)
	}
	return v & mask64(width)
}

// Load undoes the Store transform under the current mode. A value stored
// and loaded in the same mode round-trips; the paper's scheme flushes or
// rewrites contents at mode changes, which callers model by re-storing.
func (p *PeriodicInverter) Load(v uint64, width int) uint64 {
	if p.inverted {
		return ^v & mask64(width)
	}
	return v & mask64(width)
}

func mask64(width int) uint64 {
	if width <= 0 || width > 64 {
		panic("cache: width must be in (0, 64]")
	}
	if width == 64 {
		return ^uint64(0)
	}
	return 1<<uint(width) - 1
}
