package cache

import (
	"math/rand"
	"testing"
)

// dynOptions returns a fast monitor configuration for tests: 1K warmup,
// 1K test, 20K period.
func dynOptions(ratio, threshold float64, seed int64) Options {
	return Options{
		Scheme:        SchemeLineDynamic,
		InvertRatio:   ratio,
		PeriodCycles:  20_000,
		WarmupCycles:  1_000,
		TestCycles:    1_000,
		MissThreshold: threshold,
		PortFreeProb:  1,
		Seed:          seed,
	}
}

func TestDynamicActivatesForSmallWorkingSet(t *testing.T) {
	c := New("dyn", 32*1024, 64, 8, dynOptions(0.6, 0.02, 1))
	rng := rand.New(rand.NewSource(4))
	// 4KB working set: inversion is harmless, monitor must engage it.
	for cyc := uint64(0); cyc < 100_000; cyc++ {
		c.Access(uint64(rng.Intn(64))*64, cyc)
	}
	if !c.Active() {
		t.Error("mechanism should be active for a cache-friendly program")
	}
	if c.InvertedLines() == 0 {
		t.Error("active mechanism should hold inverted lines")
	}
	if c.Stats().MonitorWindows == 0 {
		t.Error("monitor should have run windows")
	}
}

func TestDynamicDeactivatesForFullCacheUse(t *testing.T) {
	c := New("dyn", 8*1024, 64, 8, dynOptions(0.6, 0.02, 2))
	rng := rand.New(rand.NewSource(6))
	// Working set equals the full cache: inverting 60% would hurt, the
	// monitor must see induced extra misses and deactivate.
	lines := c.Lines()
	deactivations := uint64(0)
	for cyc := uint64(0); cyc < 200_000; cyc++ {
		c.Access(uint64(rng.Intn(lines))*64, cyc)
		deactivations = c.Stats().MonitorDeactivated
	}
	if deactivations == 0 {
		t.Error("monitor never deactivated despite full cache pressure")
	}
}

func TestDynamicBeatsFixedOnHostileWorkload(t *testing.T) {
	// Table 3's point: LineDynamic60% loses less performance than
	// LineFixed50% on average because it backs off when a program uses
	// the whole cache.
	run := func(opt Options) float64 {
		c := New("c", 8*1024, 64, 8, opt)
		rng := rand.New(rand.NewSource(13))
		lines := c.Lines()
		var misses int
		const n = 150_000
		for cyc := uint64(0); cyc < n; cyc++ {
			if !c.Access(uint64(rng.Intn(lines))*64, cyc) {
				misses++
			}
		}
		return float64(misses) / n
	}
	fixed := run(Options{Scheme: SchemeLineFixed, InvertRatio: 0.5, Seed: 9})
	dynamic := run(dynOptions(0.6, 0.02, 9))
	none := run(Options{Scheme: SchemeNone})
	// The monitor should fully back off, leaving the dynamic scheme at
	// (or extremely near) the unprotected miss rate, far below fixed.
	if dynamic > none+0.01 {
		t.Errorf("dynamic miss rate %.4f should approach baseline %.4f", dynamic, none)
	}
	if dynamic >= fixed/2 {
		t.Errorf("dynamic miss rate %.4f should be far below fixed %.4f", dynamic, fixed)
	}
}

func TestDynamicInvertedFractionNearTarget(t *testing.T) {
	// §4.6: "on average the number of cache lines inverted is slightly
	// above the desired 50%" with K=60% — for friendly programs the
	// mechanism is active nearly all the time.
	c := New("dyn", 32*1024, 64, 8, dynOptions(0.6, 0.02, 3))
	rng := rand.New(rand.NewSource(8))
	for cyc := uint64(0); cyc < 300_000; cyc++ {
		c.Access(uint64(rng.Intn(64))*64, cyc)
	}
	frac := c.Stats().AvgInvertedFraction(c.Lines())
	if frac < 0.45 || frac > 0.62 {
		t.Errorf("avg inverted fraction = %.3f, want ≈ 0.5–0.6", frac)
	}
}

func TestShadowBitsCountExtraMisses(t *testing.T) {
	c := New("dyn", 4096, 64, 4, dynOptions(0.6, 0.0, 5)) // threshold 0: always deactivate on any extra miss
	rng := rand.New(rand.NewSource(10))
	lines := c.Lines()
	for cyc := uint64(0); cyc < 100_000; cyc++ {
		c.Access(uint64(rng.Intn(lines))*64, cyc)
	}
	if c.Stats().InducedExtraMisses == 0 {
		t.Error("shadow bits should have recorded induced extra misses")
	}
	if c.Active() {
		t.Error("zero threshold must leave the mechanism off")
	}
}

func TestMonitorWindowsAdvance(t *testing.T) {
	c := New("dyn", 4096, 64, 4, dynOptions(0.6, 0.02, 5))
	for cyc := uint64(0); cyc < 100_000; cyc += 10 {
		c.Access(uint64(cyc%64)*64, cyc)
	}
	if got := c.Stats().MonitorWindows; got < 4 {
		t.Errorf("monitor windows = %d, want ≥ 4 over 5 periods", got)
	}
}
