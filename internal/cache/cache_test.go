package cache

import (
	"math/rand"
	"testing"
)

func baseline(size, line, ways int) *Cache {
	return New("t", size, line, ways, Options{Scheme: SchemeNone})
}

func TestBasicHitMiss(t *testing.T) {
	c := baseline(1024, 64, 2) // 8 sets, 2 ways
	if c.Access(0x1000, 1) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(0x1000, 2) {
		t.Fatal("second access must hit")
	}
	if c.Access(0x1040, 3) {
		t.Fatal("different line must miss")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats = %+v", *s)
	}
}

func TestGeometry(t *testing.T) {
	c := baseline(32*1024, 64, 8)
	if c.Sets() != 64 || c.Ways() != 8 || c.Lines() != 512 {
		t.Fatalf("32KB 8-way: sets=%d ways=%d lines=%d", c.Sets(), c.Ways(), c.Lines())
	}
	tlb := NewTLB("dtlb", 128, 8, 4096, Options{Scheme: SchemeNone})
	if tlb.Sets() != 16 || tlb.Ways() != 8 {
		t.Fatalf("128-entry 8-way TLB: sets=%d ways=%d", tlb.Sets(), tlb.Ways())
	}
	if c.Name() != "t" {
		t.Error("name mismatch")
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New("x", 0, 64, 8, Options{}) },
		func() { New("x", 1000, 64, 8, Options{}) },     // 15 lines, not divisible
		func() { New("x", 3*1024, 64, 8, Options{}) },   // 48 lines -> 6 sets, not pow2
		func() { New("x", 1024, 60, 2, Options{}) },     // line not pow2
		func() { NewTLB("x", 100, 8, 4096, Options{}) }, // 100 not divisible by 8
		func() { NewTLB("x", 96, 8, 4096, Options{}) },  // 12 sets, not pow2
		func() { NewTLB("x", 128, 8, 1000, Options{}) }, // page not pow2
		func() { New("x", 1024, 64, 2, Options{InvertRatio: 1.5}) },
		func() { New("x", 1024, 64, 2, Options{Scheme: SchemeLineDynamic}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLRUReplacement(t *testing.T) {
	c := baseline(256, 64, 4) // 1 set, 4 ways
	for i := 0; i < 4; i++ {
		c.Access(uint64(i)*64, uint64(i))
	}
	// Touch line 0 to make line 1 the LRU.
	c.Access(0, 10)
	// Fill a new line: must evict line 1.
	c.Access(4*64, 11)
	if !c.Access(0, 12) {
		t.Error("line 0 was MRU, must still be resident")
	}
	if c.Access(1*64, 13) {
		t.Error("line 1 was LRU, must have been evicted")
	}
}

func TestHitRankHistogram(t *testing.T) {
	c := baseline(512, 64, 8) // 1 set, 8 ways
	c.Access(0, 1)
	c.Access(0, 2) // MRU hit
	c.Access(64, 3)
	c.Access(0, 4) // hit at rank 1
	s := c.Stats()
	if s.HitWayRank[0] != 1 || s.HitWayRank[1] != 1 {
		t.Fatalf("rank histogram = %v", s.HitWayRank[:2])
	}
	if got := s.MRUHitFraction(0); got != 0.5 {
		t.Errorf("MRUHitFraction(0) = %v, want 0.5", got)
	}
	if got := s.MRUHitFraction(7); got != 1 {
		t.Errorf("MRUHitFraction(7) = %v, want 1", got)
	}
}

func TestStatsHelpers(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 || s.MRUHitFraction(0) != 0 || s.AvgInvertedFraction(10) != 0 {
		t.Error("zero-value stats helpers should return 0")
	}
}

func TestSetFixedHalvesCapacity(t *testing.T) {
	opt := Options{Scheme: SchemeSetFixed, InvertRatio: 0.5}
	c := New("sf", 1024, 64, 2, opt) // 8 sets, 2 ways; 4 live sets
	if got := c.InvertedLines(); got != 8 {
		t.Fatalf("inverted lines = %d, want 8 (half the cache)", got)
	}
	// A working set equal to the full cache no longer fits: with 8
	// distinct sets mapped into 4 live ones, conflicts appear.
	misses := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 16; i++ {
			if !c.Access(uint64(i)*64, uint64(round*16+i)) {
				misses++
			}
		}
	}
	if misses <= 16 { // more than just cold misses
		t.Errorf("SetFixed should cause conflict misses, got %d", misses)
	}
	// The same workload fits the unprotected cache exactly.
	b := baseline(1024, 64, 2)
	bm := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 16; i++ {
			if !b.Access(uint64(i)*64, uint64(round*16+i)) {
				bm++
			}
		}
	}
	if bm != 16 {
		t.Errorf("baseline misses = %d, want 16 cold misses", bm)
	}
}

func TestWayFixedReducesAssociativity(t *testing.T) {
	opt := Options{Scheme: SchemeWayFixed, InvertRatio: 0.5}
	c := New("wf", 512, 64, 8, opt) // 1 set, 8 ways; 4 live
	if c.InvertedLines() != 4 {
		t.Fatalf("inverted lines = %d, want 4", c.InvertedLines())
	}
	// 8 distinct lines cycle: with only 4 live ways everything thrashes.
	misses := 0
	for round := 0; round < 10; round++ {
		for i := 0; i < 8; i++ {
			if !c.Access(uint64(i)*64, uint64(round*8+i)) {
				misses++
			}
		}
	}
	if misses != 80 {
		t.Errorf("LRU thrash should miss every access, got %d/80", misses)
	}
}

func TestLineFixedMaintainsRatio(t *testing.T) {
	opt := Options{Scheme: SchemeLineFixed, InvertRatio: 0.5, Seed: 42}
	c := New("lf", 32*1024, 64, 8, opt)
	if got, want := c.InvertedLines(), c.targetInverted(); got != want {
		t.Fatalf("initial inverted = %d, want %d", got, want)
	}
	rng := rand.New(rand.NewSource(9))
	for cyc := uint64(0); cyc < 30000; cyc++ {
		c.Access(uint64(rng.Intn(1024))*64, cyc)
	}
	got := c.InvertedLines()
	want := c.targetInverted()
	if got < want-16 || got > want {
		t.Errorf("inverted lines drifted to %d, target %d", got, want)
	}
	if frac := c.Stats().AvgInvertedFraction(c.Lines()); frac < 0.40 || frac > 0.55 {
		t.Errorf("avg inverted fraction = %.3f, want ≈ 0.5", frac)
	}
}

func TestLineFixedVictimsAreLRU(t *testing.T) {
	// With a hot working set smaller than half the cache, inversion
	// should bite cold lines, not hot ones: hit rate on the hot set
	// stays high.
	opt := Options{Scheme: SchemeLineFixed, InvertRatio: 0.5, Seed: 1}
	c := New("lf", 32*1024, 64, 8, opt)
	rng := rand.New(rand.NewSource(2))
	var hits, accesses int
	for cyc := uint64(0); cyc < 40000; cyc++ {
		addr := uint64(rng.Intn(128)) * 64 // 8KB hot set in a 32KB cache
		if c.Access(addr, cyc) {
			hits++
		}
		accesses++
	}
	if frac := float64(hits) / float64(accesses); frac < 0.95 {
		t.Errorf("hot-set hit rate under LineFixed50%% = %.3f, want > 0.95", frac)
	}
}

func TestPortPressureDefersMaintenance(t *testing.T) {
	opt := Options{Scheme: SchemeLineFixed, InvertRatio: 0.5, Seed: 3, PortFreeProb: 0.2}
	c := New("lf", 4096, 64, 4, opt)
	rng := rand.New(rand.NewSource(5))
	for cyc := uint64(0); cyc < 5000; cyc++ {
		c.Access(uint64(rng.Intn(256))*64, cyc)
	}
	if c.Stats().MaintenanceDeferred == 0 {
		t.Error("constrained ports should defer some maintenance")
	}
}

func TestRotationRefreshesSets(t *testing.T) {
	opt := Options{Scheme: SchemeSetFixed, InvertRatio: 0.5, RotatePeriod: 1000}
	c := New("sf", 1024, 64, 2, opt)
	before := c.setRot
	c.Access(0, 1)
	c.Access(0, 2500) // crosses at least one rotation boundary
	if c.setRot == before {
		t.Error("set rotation did not advance")
	}
	if c.InvertedLines() != 8 {
		t.Errorf("rotation must preserve the inverted count, got %d", c.InvertedLines())
	}
	// WayFixed rotation too.
	wopt := Options{Scheme: SchemeWayFixed, InvertRatio: 0.5, RotatePeriod: 500}
	wc := New("wf", 512, 64, 8, wopt)
	wBefore := wc.wayRot
	wc.Access(0, 1)
	wc.Access(0, 1600)
	if wc.wayRot == wBefore {
		t.Error("way rotation did not advance")
	}
}

func TestSchemeString(t *testing.T) {
	if SchemeLineDynamic.String() != "LineDynamic" || Scheme(42).String() == "" {
		t.Error("scheme names wrong")
	}
}

func TestAccessDeterminism(t *testing.T) {
	mk := func() *Cache {
		return New("d", 8192, 64, 4, Options{Scheme: SchemeLineFixed, InvertRatio: 0.5, Seed: 7})
	}
	a, b := mk(), mk()
	rngA := rand.New(rand.NewSource(11))
	rngB := rand.New(rand.NewSource(11))
	for cyc := uint64(0); cyc < 5000; cyc++ {
		ha := a.Access(uint64(rngA.Intn(512))*64, cyc)
		hb := b.Access(uint64(rngB.Intn(512))*64, cyc)
		if ha != hb {
			t.Fatalf("divergence at cycle %d", cyc)
		}
	}
	if a.Stats().Misses != b.Stats().Misses {
		t.Error("identical runs must produce identical stats")
	}
}
