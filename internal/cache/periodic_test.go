package cache

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPeriodicInverterFlips(t *testing.T) {
	p := NewPeriodicInverter(100)
	if p.Inverted() {
		t.Fatal("must start non-inverted")
	}
	p.Advance(100)
	if !p.Inverted() || p.Flips() != 1 {
		t.Fatal("first flip missing")
	}
	p.Advance(350)
	if p.Flips() != 3 {
		t.Fatalf("flips = %d, want 3", p.Flips())
	}
	p.Finish(400)
	if got := p.InvertedFraction(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("inverted fraction = %v, want 0.5", got)
	}
}

func TestPeriodicInverterEffectiveBias(t *testing.T) {
	p := NewPeriodicInverter(10)
	p.Advance(100)
	p.Finish(100)
	// At a 50% schedule, any raw bias balances to 0.5 (§3.2: "holding
	// 50% of the time values inverted would produce 50% degradation").
	for _, b := range []float64{0.0, 0.3, 0.9, 1.0} {
		if got := p.EffectiveBias(b); math.Abs(got-0.5) > 1e-9 {
			t.Errorf("EffectiveBias(%v) = %v, want 0.5", b, got)
		}
	}
}

func TestPeriodicInverterStoreLoad(t *testing.T) {
	p := NewPeriodicInverter(100)
	if got := p.Store(0xAB, 8); got != 0xAB {
		t.Errorf("non-inverted store = %#x", got)
	}
	p.Advance(100) // inverted now
	stored := p.Store(0xAB, 8)
	if stored != 0x54 {
		t.Errorf("inverted store = %#x, want 0x54", stored)
	}
	if got := p.Load(stored, 8); got != 0xAB {
		t.Errorf("round trip = %#x, want 0xAB", got)
	}
}

func TestPeriodicInverterPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewPeriodicInverter(0) },
		func() { NewPeriodicInverter(10).Store(1, 0) },
		func() { NewPeriodicInverter(10).Store(1, 65) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPeriodicInverterPropertyRoundTrip(t *testing.T) {
	// Property: Store/Load round-trips in any mode, and effective bias
	// stays within [min(b,1-b), max(b,1-b)].
	f := func(v uint64, flips uint8, bRaw uint8) bool {
		p := NewPeriodicInverter(10)
		p.Advance(uint64(flips) * 10)
		p.Finish(uint64(flips)*10 + 5)
		if p.Load(p.Store(v, 64), 64) != v {
			return false
		}
		b := float64(bRaw) / 255
		eb := p.EffectiveBias(b)
		lo, hi := b, 1-b
		if lo > hi {
			lo, hi = hi, lo
		}
		return eb >= lo-1e-9 && eb <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeriodicInverterFullWidth(t *testing.T) {
	p := NewPeriodicInverter(1)
	p.Advance(1)
	if got := p.Store(0, 64); got != ^uint64(0) {
		t.Errorf("64-bit inverted store of 0 = %#x", got)
	}
}
