// Package cache models set-associative caches and TLBs with the
// invalidate-and-invert NBTI mechanisms of paper §3.2.1.
//
// A fraction K of the lines is kept invalid with inverted contents so the
// PMOS transistors of the data and tag arrays degrade evenly. The package
// implements the granularities and policies the paper evaluates:
//
//   - SetFixed:  K of the sets are disabled (rotating at coarse periods);
//     the cache effectively shrinks.
//   - WayFixed:  K of the ways are disabled (rotating); associativity and
//     capacity shrink.
//   - LineFixed: an INVCOUNT counter tracks inverted lines; whenever it
//     falls below the target, the LRU line of a random set is invalidated
//     and inverted through an available write port.
//   - LineDynamic: LineFixed plus the §3.2.1 monitor — shadow bits mark
//     lines that would have been inverted, hits on them count as induced
//     extra misses, and the mechanism is deactivated for a period when
//     the induced miss rate exceeds a threshold.
//
// Accesses carry the current cycle so the package can integrate the
// inverted-line fraction over time; that fraction is what balances cell
// bias (§4.6: bias drops from ~90% to ~50%).
package cache

import (
	"fmt"
	"math/rand"
)

// Scheme selects the inversion mechanism.
type Scheme int

// Inversion schemes of §3.2.1 plus the unprotected baseline.
const (
	SchemeNone Scheme = iota
	SchemeSetFixed
	SchemeWayFixed
	SchemeLineFixed
	SchemeLineDynamic
)

var schemeNames = map[Scheme]string{
	SchemeNone: "none", SchemeSetFixed: "SetFixed", SchemeWayFixed: "WayFixed",
	SchemeLineFixed: "LineFixed", SchemeLineDynamic: "LineDynamic",
}

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Options configures the inversion mechanism of a cache.
type Options struct {
	Scheme Scheme

	// InvertRatio is K: the target fraction of lines (or sets, or ways)
	// kept invalid and inverted. The paper uses 0.5 for the fixed
	// schemes and 0.6 for the dynamic one.
	InvertRatio float64

	// RotatePeriod is the coarse period, in cycles, at which SetFixed
	// and WayFixed rotate which sets/ways are inverted. 0 disables
	// rotation.
	RotatePeriod uint64

	// Dynamic-monitor parameters (§3.2.1, §4.6): every PeriodCycles the
	// cache warms up for WarmupCycles, measures induced extra misses
	// with shadow bits for TestCycles, and deactivates the mechanism
	// for the rest of the period if extraMisses/accesses exceeds
	// MissThreshold.
	PeriodCycles  uint64
	WarmupCycles  uint64
	TestCycles    uint64
	MissThreshold float64

	// PortFreeProb is the probability a write port is available for a
	// maintenance inversion on a given attempt; unavailable ports defer
	// the inversion, which the paper notes is harmless (§3.2).
	PortFreeProb float64

	// Seed drives the random set selection; runs are deterministic.
	Seed int64
}

// DefaultDynamicOptions returns the §4.6 monitor configuration: 200K
// warm-up, 200K test window, 10M period and the given miss threshold.
func DefaultDynamicOptions(ratio, threshold float64, seed int64) Options {
	return Options{
		Scheme:        SchemeLineDynamic,
		InvertRatio:   ratio,
		PeriodCycles:  10_000_000,
		WarmupCycles:  200_000,
		TestCycles:    200_000,
		MissThreshold: threshold,
		PortFreeProb:  1,
		Seed:          seed,
	}
}

// Stats accumulates cache behaviour.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64

	// HitWayRank histograms hits by position in the set's MRU stack:
	// index 0 is the MRU line. §3.2.1 reports 90% of DL0 hits at MRU.
	HitWayRank []uint64

	// Maintenance counts successful invert-and-invalidate operations;
	// MaintenanceDeferred counts attempts deferred for lack of a write
	// port or a valid victim.
	Maintenance         uint64
	MaintenanceDeferred uint64

	// InvertedLineTime integrates inverted-lines×cycles; divided by
	// ObservedCycles×lines it yields the average inverted fraction.
	InvertedLineTime uint64
	ObservedCycles   uint64

	// Monitor statistics (LineDynamic only).
	MonitorWindows     uint64
	MonitorDeactivated uint64
	InducedExtraMisses uint64
	MonitorAccesses    uint64
	ActiveCycles       uint64
}

// MissRate returns misses per access.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// MRUHitFraction returns the fraction of hits found at stack position
// rank or better.
func (s *Stats) MRUHitFraction(rank int) float64 {
	if s.Hits == 0 {
		return 0
	}
	var n uint64
	for i := 0; i <= rank && i < len(s.HitWayRank); i++ {
		n += s.HitWayRank[i]
	}
	return float64(n) / float64(s.Hits)
}

// AvgInvertedFraction returns the time-averaged fraction of lines held
// inverted, over the lines the scheme manages.
func (s *Stats) AvgInvertedFraction(lines int) float64 {
	if s.ObservedCycles == 0 || lines == 0 {
		return 0
	}
	return float64(s.InvertedLineTime) / float64(s.ObservedCycles) / float64(lines)
}

type line struct {
	tag      uint64
	valid    bool
	inverted bool // invalid with inverted repair contents
	shadow   bool // monitor: would be inverted if mechanism were active
}

// Cache is a set-associative cache or TLB with an optional inversion
// mechanism.
type Cache struct {
	name      string
	sets      int
	ways      int
	lineShift uint
	opt       Options

	lines []line  // sets*ways
	order []uint8 // per-set MRU order, MRU first: order[set*ways+i] = way

	rng        *rand.Rand
	stats      Stats
	lastCycle  uint64
	invCount   int // currently inverted lines
	rotEpoch   uint64
	active     bool // mechanism currently active (dynamic scheme)
	mon        monitor
	setMask    uint64
	activeSets int // SetFixed: number of usable sets
	activeWays int // WayFixed: number of usable ways
	wayRot     int // WayFixed: rotation offset
	setRot     int // SetFixed: rotation offset
}

// New builds a cache of sizeBytes bytes with lineBytes lines and the
// given associativity. Sizes must make sets a power of two.
func New(name string, sizeBytes, lineBytes, ways int, opt Options) *Cache {
	if lineBytes <= 0 || sizeBytes <= 0 || ways <= 0 {
		panic("cache: sizes must be positive")
	}
	lines := sizeBytes / lineBytes
	if lines%ways != 0 {
		panic("cache: lines not divisible by ways")
	}
	sets := lines / ways
	if sets&(sets-1) != 0 || sets == 0 {
		panic("cache: set count must be a power of two")
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	if 1<<shift != lineBytes {
		panic("cache: line size must be a power of two")
	}
	return newCache(name, sets, ways, shift, opt)
}

// NewTLB builds a TLB with the given entry count and associativity over
// pageBytes pages.
func NewTLB(name string, entries, ways, pageBytes int, opt Options) *Cache {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("cache: invalid TLB shape")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic("cache: TLB set count must be a power of two")
	}
	shift := uint(0)
	for 1<<shift < pageBytes {
		shift++
	}
	if 1<<shift != pageBytes {
		panic("cache: page size must be a power of two")
	}
	return newCache(name, sets, ways, shift, opt)
}

func newCache(name string, sets, ways int, shift uint, opt Options) *Cache {
	if ways > 255 {
		panic("cache: too many ways")
	}
	if opt.InvertRatio < 0 || opt.InvertRatio > 1 {
		panic("cache: invert ratio must be in [0,1]")
	}
	if opt.PortFreeProb == 0 {
		opt.PortFreeProb = 1
	}
	c := &Cache{
		name:      name,
		sets:      sets,
		ways:      ways,
		lineShift: shift,
		opt:       opt,
		lines:     make([]line, sets*ways),
		order:     make([]uint8, sets*ways),
		rng:       rand.New(rand.NewSource(opt.Seed + 1)),
		setMask:   uint64(sets - 1),
		active:    opt.Scheme != SchemeNone,
	}
	c.stats.HitWayRank = make([]uint64, ways)
	for s := 0; s < sets; s++ {
		for w := 0; w < ways; w++ {
			c.order[s*ways+w] = uint8(w)
		}
	}
	c.configureScheme()
	return c
}

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }

// Sets and Ways describe the geometry.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Lines returns the total line count.
func (c *Cache) Lines() int { return c.sets * c.ways }

// Stats exposes the accumulated statistics.
func (c *Cache) Stats() *Stats { return &c.stats }

// InvertedLines returns how many lines are currently inverted.
func (c *Cache) InvertedLines() int { return c.invCount }

// Active reports whether the inversion mechanism is currently engaged
// (always true for fixed schemes; toggled by the monitor for dynamic).
func (c *Cache) Active() bool { return c.active }

func (c *Cache) configureScheme() {
	switch c.opt.Scheme {
	case SchemeNone:
		c.activeSets = c.sets
		c.activeWays = c.ways
	case SchemeSetFixed:
		c.activeSets = c.sets - int(float64(c.sets)*c.opt.InvertRatio)
		if c.activeSets < 1 {
			c.activeSets = 1
		}
		c.activeWays = c.ways
		c.markDisabledSets()
	case SchemeWayFixed:
		c.activeWays = c.ways - int(float64(c.ways)*c.opt.InvertRatio)
		if c.activeWays < 1 {
			c.activeWays = 1
		}
		c.activeSets = c.sets
		c.markDisabledWays()
	case SchemeLineFixed:
		c.activeSets = c.sets
		c.activeWays = c.ways
		// Start with the target fraction inverted, spread over sets; at
		// construction everything is invalid, so lines are picked
		// directly.
		target := c.targetInverted()
		guard := 64 * c.sets * c.ways
		for target > 0 && guard > 0 {
			guard--
			s := c.rng.Intn(c.sets)
			w := c.rng.Intn(c.ways)
			l := &c.lines[s*c.ways+w]
			if l.inverted {
				continue
			}
			l.valid = false
			l.inverted = true
			c.invCount++
			target--
		}
	case SchemeLineDynamic:
		c.activeSets = c.sets
		c.activeWays = c.ways
		if c.opt.PeriodCycles == 0 {
			panic("cache: LineDynamic needs PeriodCycles > 0")
		}
		// The mechanism starts off; the first monitor window decides
		// whether to engage it (§3.2.1).
		c.active = false
	}
}

func (c *Cache) targetInverted() int {
	return int(float64(c.sets*c.ways)*c.opt.InvertRatio + 0.5)
}

// markDisabledSets (re)marks the inverted set range for SetFixed.
func (c *Cache) markDisabledSets() {
	c.invCount = 0
	for s := 0; s < c.sets; s++ {
		disabled := c.setDisabled(s)
		for w := 0; w < c.ways; w++ {
			l := &c.lines[s*c.ways+w]
			l.inverted = disabled
			if disabled {
				l.valid = false
				c.invCount++
			}
		}
	}
}

func (c *Cache) setDisabled(s int) bool {
	// Sets [setRot, setRot+activeSets) mod sets are live.
	rel := (s - c.setRot + c.sets) % c.sets
	return rel >= c.activeSets
}

// markDisabledWays (re)marks the inverted ways for WayFixed.
func (c *Cache) markDisabledWays() {
	c.invCount = 0
	for s := 0; s < c.sets; s++ {
		for w := 0; w < c.ways; w++ {
			disabled := c.wayDisabled(w)
			l := &c.lines[s*c.ways+w]
			l.inverted = disabled
			if disabled {
				l.valid = false
				c.invCount++
			}
		}
	}
}

func (c *Cache) wayDisabled(w int) bool {
	rel := (w - c.wayRot + c.ways) % c.ways
	return rel >= c.activeWays
}
