package cache

// Access looks up addr at the given cycle, allocating on miss, and
// reports whether it hit. Cycle values must be non-decreasing across
// calls; they drive inverted-time integration, set/way rotation and the
// dynamic monitor.
func (c *Cache) Access(addr uint64, cycle uint64) bool {
	c.advance(cycle)
	c.stats.Accesses++

	set := c.mapSet(addr)
	tag := addr >> c.lineShift

	// Probe in MRU order so the hit rank histogram falls out directly.
	base := set * c.ways
	hitRank := -1
	var hitWay int
	for rank := 0; rank < c.ways; rank++ {
		w := int(c.order[base+rank])
		l := &c.lines[base+w]
		if l.valid && l.tag == tag {
			hitRank, hitWay = rank, w
			break
		}
	}

	if hitRank >= 0 {
		c.stats.Hits++
		c.stats.HitWayRank[hitRank]++
		l := &c.lines[base+hitWay]
		if l.shadow {
			// Monitor: this line would have been inverted; the hit
			// would have been a miss (§3.2.1).
			c.stats.InducedExtraMisses++
			l.shadow = false
			c.markShadowLine()
		}
		c.touch(set, hitWay)
		c.maintain(set)
		return true
	}

	c.stats.Misses++
	w := c.victimWay(set, false)
	l := &c.lines[base+w]
	if l.inverted {
		// Refilling an inverted line: restore the ratio by inverting a
		// different valid line (LineFixed/LineDynamic refill rule).
		l.inverted = false
		c.invCount--
	}
	if l.shadow {
		l.shadow = false
		c.markShadowLine()
	}
	l.valid = true
	l.tag = tag
	c.touch(set, w)
	c.maintain(set)
	return false
}

// mapSet computes the effective set index, folding disabled sets for
// SetFixed into the live window.
func (c *Cache) mapSet(addr uint64) int {
	set := int((addr >> c.lineShift) & c.setMask)
	if c.opt.Scheme == SchemeSetFixed && c.active {
		set = c.setRot + set%c.activeSets
		if set >= c.sets {
			set -= c.sets
		}
	}
	return set
}

// victimWay picks the replacement victim in a set: the least recent
// eligible line, preferring invalid ones. onlyValid selects only valid
// lines (used when picking a line to invert). Returns -1 if no candidate
// exists.
func (c *Cache) victimWay(set int, onlyValid bool) int {
	base := set * c.ways
	if !onlyValid {
		// Prefer the LRU-most invalid line.
		for rank := c.ways - 1; rank >= 0; rank-- {
			w := int(c.order[base+rank])
			if c.wayEligible(w) && !c.lines[base+w].valid {
				return w
			}
		}
	}
	for rank := c.ways - 1; rank >= 0; rank-- {
		w := int(c.order[base+rank])
		if !c.wayEligible(w) {
			continue
		}
		if onlyValid && !c.lines[base+w].valid {
			continue
		}
		return w
	}
	return -1
}

func (c *Cache) wayEligible(w int) bool {
	if c.opt.Scheme == SchemeWayFixed && c.active {
		return !c.wayDisabled(w)
	}
	return true
}

// touch moves way w to the MRU position of its set. Most hits land on
// the line that is already MRU (the MRU study measures ~90%), so that
// case returns before any scan or shift.
func (c *Cache) touch(set, w int) {
	base := set * c.ways
	if int(c.order[base]) == w {
		return
	}
	pos := 1
	for ; pos < c.ways; pos++ {
		if int(c.order[base+pos]) == w {
			break
		}
	}
	copy(c.order[base+1:base+pos+1], c.order[base:base+pos])
	c.order[base] = uint8(w)
}

// maintain restores the inverted-line count toward the target for the
// line-granularity schemes: when INVCOUNT is below INVTHRESHOLD and a
// write port is free, a line of a random set is invalidated and inverted
// (§3.2.1). Lines that are already invalid are preferred — rewriting
// useless contents costs nothing — and otherwise the LRU valid line is
// sacrificed, since "most of the cache access hits occur in the MRU
// position".
func (c *Cache) maintain(_ int) {
	if !c.lineScheme() || !c.active {
		return
	}
	target := c.targetInverted()
	if c.invCount >= target {
		return
	}
	if c.opt.PortFreeProb < 1 && c.rng.Float64() >= c.opt.PortFreeProb {
		c.stats.MaintenanceDeferred++
		return
	}
	// "To select the cache line to be inverted, we can use the
	// information provided by the replacement policy and pick those
	// cache lines that will be replaced earlier" (§3.2.1): sample a few
	// random sets and prefer one offering a free (invalid) line, then
	// one whose LRU victim is not also its MRU line — sacrificing a
	// set's only live line is what hurts.
	bestSet, bestWay, bestClass := -1, -1, 3
	for probe := 0; probe < 4 && bestClass > 0; probe++ {
		s := c.rng.Intn(c.sets)
		w := c.invertCandidate(s)
		if w < 0 {
			continue
		}
		class := 2
		l := &c.lines[s*c.ways+w]
		if !l.valid {
			class = 0 // free inversion
		} else if int(c.order[s*c.ways]) != w {
			class = 1 // LRU valid line that is not the MRU
		}
		if class < bestClass {
			bestSet, bestWay, bestClass = s, w, class
		}
	}
	if bestSet < 0 {
		c.stats.MaintenanceDeferred++
		return
	}
	l := &c.lines[bestSet*c.ways+bestWay]
	l.valid = false
	l.inverted = true
	c.invCount++
	c.stats.Maintenance++
}

// invertCandidate picks the line of a set to invert next: an invalid
// not-yet-inverted line if one exists (free), else the LRU valid line.
// Returns -1 when every line is already inverted.
func (c *Cache) invertCandidate(set int) int {
	base := set * c.ways
	for rank := c.ways - 1; rank >= 0; rank-- {
		w := int(c.order[base+rank])
		l := &c.lines[base+w]
		if !l.valid && !l.inverted {
			return w
		}
	}
	for rank := c.ways - 1; rank >= 0; rank-- {
		w := int(c.order[base+rank])
		if c.lines[base+w].valid {
			return w
		}
	}
	return -1
}

func (c *Cache) lineScheme() bool {
	return c.opt.Scheme == SchemeLineFixed || c.opt.Scheme == SchemeLineDynamic
}

// advance integrates time-weighted statistics, rotates fixed schemes and
// steps the dynamic monitor.
func (c *Cache) advance(cycle uint64) {
	if cycle > c.lastCycle {
		dt := cycle - c.lastCycle
		c.stats.InvertedLineTime += uint64(c.invCount) * dt
		c.stats.ObservedCycles += dt
		if c.active {
			c.stats.ActiveCycles += dt
		}
		c.lastCycle = cycle
	}
	c.rotate(cycle)
	if c.opt.Scheme == SchemeLineDynamic {
		c.stepMonitor(cycle)
	}
}

// rotate advances the inverted set/way window at coarse periods so all
// cells age evenly (§3.2.1 "selected in a round-robin fashion at coarse
// time periods").
func (c *Cache) rotate(cycle uint64) {
	if c.opt.RotatePeriod == 0 {
		return
	}
	epoch := cycle / c.opt.RotatePeriod
	if epoch == c.rotEpoch {
		return
	}
	c.rotEpoch = epoch
	switch c.opt.Scheme {
	case SchemeSetFixed:
		c.setRot = (c.setRot + 1) % c.sets
		c.markDisabledSets()
	case SchemeWayFixed:
		c.wayRot = (c.wayRot + 1) % c.ways
		c.markDisabledWays()
	}
}
