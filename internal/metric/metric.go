// Package metric implements the NBTIefficiency metric of paper §4.2 and
// the processor-level combination rules of equations (2)–(4).
//
// NBTIefficiency weighs what a mitigation technique costs against what it
// saves. Like PD³ (ED²) for power-aware design, delay is cubed; the
// residual NBTI guardband stretches the effective cycle time and is
// therefore folded into the delay before cubing:
//
//	NBTIefficiency = (Delay · (1 + NBTIguardband))³ · TDP    (eq. 1)
//
// This grouping reproduces every value printed in the paper: the baseline
// with a 20% guardband scores 1.2³ = 1.73, periodic inversion
// (1.1·1.02)³ = 1.41, the adder 1.074³ = 1.24, the register file
// 1.036³·1.01 = 1.12, the scheduler 1.067³·1.02 = 1.24, the DL0
// (1.0053·1.02)³·1.01 = 1.09 and the whole Penelope processor
// (1.007·1.074)³·1.01 = 1.28.
//
// All parameters are relative to the unprotected, unguardbanded design:
// Delay 1.0 means no slowdown, TDP 1.0 means no extra peak power, and the
// guardband term charges the residual cycle-time margin the block still
// needs. Lower is better.
package metric

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Efficiency returns (delay·(1+guardband))³·tdp (eq. 1). Delay and TDP
// are relative factors (1.0 = baseline); guardband is a fraction of the
// cycle time (e.g. 0.20 for a 20% guardband).
func Efficiency(delay, guardband, tdp float64) float64 {
	d := delay * (1 + guardband)
	return d * d * d * tdp
}

// FoldedEfficiency is an explicit-name alias of Efficiency, kept so call
// sites can state that they use the paper's folded-guardband grouping.
func FoldedEfficiency(delay, guardband, tdp float64) float64 {
	return Efficiency(delay, guardband, tdp)
}

// EfficiencyExp generalizes eq. 1 with a configurable delay exponent, for
// ablating the PD¹/PD²/PD³ choice.
func EfficiencyExp(delay, guardband, tdp float64, delayExp float64) float64 {
	return math.Pow(delay*(1+guardband), delayExp) * tdp
}

// Block is the cost/benefit summary of one processor block under one
// mitigation technique, in the units eq. 1 expects.
type Block struct {
	Name string

	// CPIFactor is the relative cycles-per-instruction contribution of
	// the technique (1.0 = no performance loss). CPI effects from
	// different blocks interact, so whole-processor evaluation should
	// pass the jointly simulated CPI via Processor's cpiCombined
	// argument; per-block CPIFactor is used when evaluating the block
	// alone.
	CPIFactor float64

	// CycleTimeFactor is the relative cycle time the technique imposes
	// (e.g. 1.10 if an XNOR in the access path costs 1 FO4 out of 10).
	CycleTimeFactor float64

	// Guardband is the residual NBTI guardband the block requires, as a
	// fraction of cycle time.
	Guardband float64

	// TDPFactor is the relative thermal design power of the block under
	// the technique (1.0 = unchanged).
	TDPFactor float64
}

// Delay returns the block's stand-alone relative delay:
// CPIFactor·CycleTimeFactor.
func (b Block) Delay() float64 { return b.CPIFactor * b.CycleTimeFactor }

// Efficiency returns the block's stand-alone NBTIefficiency.
func (b Block) Efficiency() float64 {
	return Efficiency(b.Delay(), b.Guardband, b.TDPFactor)
}

// ProcessorSummary aggregates blocks into whole-processor figures per
// equations (2)–(4).
type ProcessorSummary struct {
	Delay     float64 // CPI_combined · max CycleTimeFactor  (eq. 2)
	TDP       float64 // mean of block TDP factors           (eq. 3, equal weights)
	Guardband float64 // max block guardband                 (eq. 4)
}

// Efficiency returns the whole-processor NBTIefficiency.
func (s ProcessorSummary) Efficiency() float64 {
	return Efficiency(s.Delay, s.Guardband, s.TDP)
}

// Processor combines per-block costs into processor-level Delay, TDP and
// guardband. cpiCombined is the jointly simulated relative CPI of all
// mechanisms running together (paper §4.2: per-block CPIs "cannot be
// combined directly and require full simulation"); pass 1.0 if no
// mechanism affects CPI. Each block is weighted equally in TDP, as in the
// paper's five-block example (§4.7).
func Processor(cpiCombined float64, blocks []Block) ProcessorSummary {
	if len(blocks) == 0 {
		return ProcessorSummary{Delay: cpiCombined, TDP: 1, Guardband: 0}
	}
	var s ProcessorSummary
	maxCT := 0.0
	var tdp float64
	for _, b := range blocks {
		if b.CycleTimeFactor > maxCT {
			maxCT = b.CycleTimeFactor
		}
		tdp += b.TDPFactor
		if b.Guardband > s.Guardband {
			s.Guardband = b.Guardband
		}
	}
	s.Delay = cpiCombined * maxCT
	s.TDP = tdp / float64(len(blocks))
	return s
}

// Comparison is a named technique with its efficiency, for report tables.
type Comparison struct {
	Name       string
	Block      Block
	Efficiency float64
}

// Compare evaluates each block stand-alone and returns the comparisons
// sorted best (lowest efficiency) first.
func Compare(blocks []Block) []Comparison {
	out := make([]Comparison, len(blocks))
	for i, b := range blocks {
		out[i] = Comparison{Name: b.Name, Block: b, Efficiency: b.Efficiency()}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Efficiency < out[j].Efficiency })
	return out
}

// FormatTable renders comparisons as an aligned text table.
func FormatTable(cs []Comparison) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %8s %10s %8s %12s\n", "technique", "delay", "guardband", "TDP", "efficiency")
	for _, c := range cs {
		fmt.Fprintf(&sb, "%-28s %8.3f %9.1f%% %8.3f %12.3f\n",
			c.Name, c.Block.Delay(), c.Block.Guardband*100, c.Block.TDPFactor, c.Efficiency)
	}
	return sb.String()
}

// Baseline returns the block the paper uses as reference: no mitigation,
// paying the full 20% guardband (NBTIefficiency 1.73, §4.2).
func Baseline() Block {
	return Block{Name: "baseline (full guardband)", CPIFactor: 1, CycleTimeFactor: 1, Guardband: 0.20, TDPFactor: 1}
}

// PeriodicInversion returns the conventional alternative for memory-like
// blocks: operate inverted half the time, paying one FO4 of XNOR delay in
// a 10 FO4 cycle but cutting the guardband 10X (NBTIefficiency 1.41,
// §4.2).
func PeriodicInversion() Block {
	return Block{Name: "periodic inversion", CPIFactor: 1, CycleTimeFactor: 1.10, Guardband: 0.02, TDPFactor: 1}
}
