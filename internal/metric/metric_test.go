package metric

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// TestPaperEfficiencyNumbers reproduces every NBTIefficiency value quoted
// in §4.2–§4.7 of the paper under eq. 1's folded-guardband grouping.
func TestPaperEfficiencyNumbers(t *testing.T) {
	tests := []struct {
		name                  string
		delay, guardband, tdp float64
		want                  float64
	}{
		{"baseline full guardband", 1.0, 0.20, 1.0, 1.73},
		{"periodic inversion", 1.10, 0.02, 1.0, 1.41},
		{"adder round-robin inputs", 1.0, 0.074, 1.0, 1.24},
		{"register file ISV", 1.0, 0.036, 1.01, 1.12},
		{"scheduler ALL1/K/ISV", 1.0, 0.067, 1.02, 1.24},
		{"DL0 LineFixed50%", 1.0053, 0.02, 1.01, 1.09},
		{"Penelope processor", 1.007, 0.074, 1.01, 1.28},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Efficiency(tc.delay, tc.guardband, tc.tdp)
			if !almostEqual(got, tc.want, 0.006) {
				t.Errorf("Efficiency(%v, %v, %v) = %.3f, want %.3f",
					tc.delay, tc.guardband, tc.tdp, got, tc.want)
			}
		})
	}
}

func TestFoldedAlias(t *testing.T) {
	if Efficiency(1.1, 0.05, 1.02) != FoldedEfficiency(1.1, 0.05, 1.02) {
		t.Error("FoldedEfficiency must equal Efficiency")
	}
}

func TestBaselineAndPeriodicInversionBlocks(t *testing.T) {
	b := Baseline()
	if got := b.Efficiency(); !almostEqual(got, 1.728, 1e-9) {
		t.Errorf("baseline efficiency = %v, want 1.728", got)
	}
	pi := PeriodicInversion()
	if got := pi.Efficiency(); !almostEqual(got, 1.41, 0.005) {
		t.Errorf("periodic inversion efficiency = %v, want ~1.41", got)
	}
	if pi.Efficiency() >= b.Efficiency() {
		t.Error("periodic inversion must beat paying the full guardband")
	}
}

func TestEfficiencyExp(t *testing.T) {
	if got := EfficiencyExp(2, 0, 1, 3); !almostEqual(got, 8, 1e-12) {
		t.Errorf("EfficiencyExp cubic = %v, want 8", got)
	}
	if got := EfficiencyExp(2, 0, 1, 1); !almostEqual(got, 2, 1e-12) {
		t.Errorf("EfficiencyExp linear = %v, want 2", got)
	}
	if got := EfficiencyExp(1, 0.2, 1, 3); !almostEqual(got, 1.728, 1e-9) {
		t.Errorf("EfficiencyExp folds guardband: got %v, want 1.728", got)
	}
}

func TestBlockDelay(t *testing.T) {
	b := Block{CPIFactor: 1.007, CycleTimeFactor: 1.1}
	if got := b.Delay(); !almostEqual(got, 1.1077, 1e-9) {
		t.Errorf("Delay = %v, want 1.1077", got)
	}
}

// TestProcessorCombination reproduces §4.7: five equally weighted blocks,
// combined CPI 1.007, no cycle-time impact, max guardband 7.4%, mean TDP
// 1.01 — whole-processor NBTIefficiency 1.28.
func TestProcessorCombination(t *testing.T) {
	blocks := []Block{
		{Name: "adder", CPIFactor: 1, CycleTimeFactor: 1, Guardband: 0.074, TDPFactor: 1.00},
		{Name: "regfile", CPIFactor: 1, CycleTimeFactor: 1, Guardband: 0.036, TDPFactor: 1.01},
		{Name: "scheduler", CPIFactor: 1, CycleTimeFactor: 1, Guardband: 0.067, TDPFactor: 1.02},
		{Name: "DL0", CPIFactor: 1.005, CycleTimeFactor: 1, Guardband: 0.02, TDPFactor: 1.01},
		{Name: "DTLB", CPIFactor: 1.002, CycleTimeFactor: 1, Guardband: 0.02, TDPFactor: 1.01},
	}
	s := Processor(1.007, blocks)
	if !almostEqual(s.Delay, 1.007, 1e-12) {
		t.Errorf("Delay = %v, want 1.007", s.Delay)
	}
	if !almostEqual(s.TDP, 1.01, 1e-9) {
		t.Errorf("TDP = %v, want 1.01", s.TDP)
	}
	if !almostEqual(s.Guardband, 0.074, 1e-12) {
		t.Errorf("Guardband = %v, want 0.074 (max)", s.Guardband)
	}
	if got := s.Efficiency(); !almostEqual(got, 1.28, 0.005) {
		t.Errorf("processor efficiency = %.3f, want 1.28", got)
	}
	// Penelope must beat both the baseline and periodic inversion.
	if got := s.Efficiency(); got >= Baseline().Efficiency() || got >= PeriodicInversion().Efficiency() {
		t.Errorf("Penelope (%.3f) should beat baseline (1.73) and inversion (1.41)", got)
	}
}

func TestProcessorMaxCycleTime(t *testing.T) {
	blocks := []Block{
		{CPIFactor: 1, CycleTimeFactor: 1.0, TDPFactor: 1},
		{CPIFactor: 1, CycleTimeFactor: 1.1, TDPFactor: 1},
	}
	s := Processor(1.0, blocks)
	if !almostEqual(s.Delay, 1.1, 1e-12) {
		t.Errorf("Delay = %v, want max cycle time 1.1", s.Delay)
	}
}

func TestProcessorEmpty(t *testing.T) {
	s := Processor(1.0, nil)
	if s.Delay != 1 || s.TDP != 1 || s.Guardband != 0 {
		t.Errorf("empty processor summary = %+v", s)
	}
}

func TestCompareSorts(t *testing.T) {
	cs := Compare([]Block{Baseline(), PeriodicInversion()})
	if len(cs) != 2 {
		t.Fatalf("Compare returned %d entries", len(cs))
	}
	if cs[0].Efficiency > cs[1].Efficiency {
		t.Error("Compare must sort best-first")
	}
	if cs[0].Name != "periodic inversion" {
		t.Errorf("best technique = %q, want periodic inversion", cs[0].Name)
	}
}

func TestFormatTable(t *testing.T) {
	s := FormatTable(Compare([]Block{Baseline()}))
	if !strings.Contains(s, "baseline") || !strings.Contains(s, "20.0%") {
		t.Errorf("table missing expected cells:\n%s", s)
	}
}

func TestEfficiencyPropertyMonotone(t *testing.T) {
	// Property: efficiency increases with each cost factor.
	f := func(dRaw, gRaw, tRaw uint8) bool {
		d := 1 + float64(dRaw)/255
		g := float64(gRaw) / 255 * 0.2
		tdp := 1 + float64(tRaw)/255
		base := Efficiency(d, g, tdp)
		return Efficiency(d+0.01, g, tdp) > base &&
			Efficiency(d, g+0.01, tdp) > base &&
			Efficiency(d, g, tdp+0.01) > base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEfficiencyPropertyGuardbandEquivalence(t *testing.T) {
	// Property: a guardband g is exactly as costly as stretching delay by
	// (1+g) — that is what "folding" means.
	f := func(dRaw, gRaw uint8) bool {
		d := 1 + float64(dRaw)/255
		g := float64(gRaw) / 255 * 0.2
		return almostEqual(Efficiency(d, g, 1), Efficiency(d*(1+g), 0, 1), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
