// Package bpred models a bimodal branch predictor as the second
// cache-like NBTI case study: §3.2.1 names "caches, branch predictor,
// etc." as the structures whose entries can be invalidated and inverted
// at will because stale contents only cost re-training, never
// correctness.
//
// The predictor is a table of 2-bit saturating counters. Real branch
// behaviour is biased — most counters sit saturated at strongly-taken —
// so counter cells wear unevenly (the high bit of a saturated-taken
// counter holds "1" almost always, stressing the complementary PMOS).
// The inversion mechanism keeps a fraction of the counters invalidated
// with inverted contents, rotating round-robin so every cell spends
// comparable time in each state; an invalidated counter predicts the
// static default until re-trained, which costs a small amount of
// accuracy instead of performance-critical capacity.
package bpred

import (
	"fmt"

	"penelope/internal/stats"
)

// Counter states of the 2-bit saturating counter.
const (
	StronglyNotTaken = 0
	WeaklyNotTaken   = 1
	WeaklyTaken      = 2
	StronglyTaken    = 3
)

// Config describes a bimodal predictor.
type Config struct {
	// Entries is the counter-table size; must be a power of two.
	Entries int
	// InvertRatio is the fraction of counters kept invalid-and-inverted
	// (0 disables the mechanism).
	InvertRatio float64
	// RotatePeriod is how many predictions pass between rotations of
	// the inverted window.
	RotatePeriod uint64
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Entries <= 0 || c.Entries&(c.Entries-1) != 0:
		return fmt.Errorf("bpred: entries must be a positive power of two")
	case c.InvertRatio < 0 || c.InvertRatio > 1:
		return fmt.Errorf("bpred: invert ratio must be in [0,1]")
	case c.InvertRatio > 0 && c.RotatePeriod == 0:
		return fmt.Errorf("bpred: inversion needs a rotate period")
	default:
		return nil
	}
}

// Predictor is a bimodal predictor with optional NBTI inversion.
type Predictor struct {
	cfg      Config
	counters []uint8
	inverted []bool // counter currently holds inverted repair contents

	bias *stats.BitBias // aggregated 2-bit cell bias

	predictions uint64
	hits        uint64
	lastRotate  uint64
	invStart    int // start of the inverted window
	invCount    int
	lastTouch   []uint64
}

// New builds a predictor; counters start weakly taken (the usual reset
// state).
func New(cfg Config) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Predictor{
		cfg:       cfg,
		counters:  make([]uint8, cfg.Entries),
		inverted:  make([]bool, cfg.Entries),
		bias:      stats.NewBitBias(2),
		lastTouch: make([]uint64, cfg.Entries),
	}
	for i := range p.counters {
		p.counters[i] = WeaklyTaken
	}
	p.invCount = int(float64(cfg.Entries) * cfg.InvertRatio)
	p.applyInversionWindow()
	return p
}

// applyInversionWindow marks [invStart, invStart+invCount) as inverted:
// their contents are replaced by the bitwise complement and they predict
// the default until re-trained.
func (p *Predictor) applyInversionWindow() {
	for i := 0; i < p.invCount; i++ {
		idx := (p.invStart + i) % p.cfg.Entries
		if !p.inverted[idx] {
			p.flush(idx)
			p.counters[idx] = ^p.counters[idx] & 0x3
			p.inverted[idx] = true
		}
	}
}

// rotate advances the inverted window by one slot, restoring the slot
// that leaves the window to the reset state.
func (p *Predictor) rotate() {
	leaving := p.invStart
	p.flush(leaving)
	p.inverted[leaving] = false
	p.counters[leaving] = WeaklyTaken // retrains from default
	p.invStart = (p.invStart + 1) % p.cfg.Entries
	entering := (p.invStart + p.invCount - 1) % p.cfg.Entries
	if p.invCount > 0 && !p.inverted[entering] {
		p.flush(entering)
		p.counters[entering] = ^p.counters[entering] & 0x3
		p.inverted[entering] = true
	}
}

// flush accumulates the bias interval of counter idx up to the current
// prediction count.
func (p *Predictor) flush(idx int) {
	dt := p.predictions - p.lastTouch[idx]
	if dt > 0 {
		v := uint64(p.counters[idx])
		if p.inverted[idx] {
			p.bias.ObserveFree(v, dt)
		} else {
			p.bias.Observe(v, dt)
		}
		p.lastTouch[idx] = p.predictions
	}
}

// Predict consumes one branch (pc, taken outcome), returns whether the
// prediction was correct, and trains the counter.
func (p *Predictor) Predict(pc uint64, taken bool) bool {
	idx := int((pc >> 2) & uint64(p.cfg.Entries-1))
	p.predictions++
	if p.cfg.InvertRatio > 0 && p.predictions-p.lastRotate >= p.cfg.RotatePeriod {
		p.lastRotate = p.predictions
		p.rotate()
	}

	if p.inverted[idx] {
		// Invalidated entry: static default prediction (taken, as most
		// branches are). The cell keeps its inverted repair contents —
		// that is the whole point — and re-enters service re-trained
		// when the rotating window moves past it.
		correct := taken
		if correct {
			p.hits++
		}
		return correct
	}

	predictTaken := p.counters[idx] >= WeaklyTaken
	correct := predictTaken == taken
	if correct {
		p.hits++
	}
	// 2-bit saturating update.
	p.flush(idx)
	c := p.counters[idx]
	if taken && c < StronglyTaken {
		p.counters[idx] = c + 1
	} else if !taken && c > StronglyNotTaken {
		p.counters[idx] = c - 1
	}
	return correct
}

// Finish closes bias accounting.
func (p *Predictor) Finish() {
	for i := range p.counters {
		p.flush(i)
	}
}

// Accuracy returns the fraction of correct predictions.
func (p *Predictor) Accuracy() float64 {
	if p.predictions == 0 {
		return 0
	}
	return float64(p.hits) / float64(p.predictions)
}

// Predictions returns the number of branches seen.
func (p *Predictor) Predictions() uint64 { return p.predictions }

// CellBiases returns the per-bit zero bias of the counter cells
// (bit 0 = hysteresis, bit 1 = direction).
func (p *Predictor) CellBiases() []float64 { return p.bias.Biases() }

// WorstCellBias returns the worst cell stress across the two counter
// bits.
func (p *Predictor) WorstCellBias() float64 { return p.bias.WorstCellBias() }
