package bpred

import (
	"math/rand"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Entries: 0},
		{Entries: 100},                  // not a power of two
		{Entries: 64, InvertRatio: 1.5}, // ratio out of range
		{Entries: 64, InvertRatio: 0.5, RotatePeriod: 0}, // no rotation
	}
	for _, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %+v should be invalid", cfg)
		}
	}
	if (Config{Entries: 64}).Validate() != nil {
		t.Error("plain predictor should validate")
	}
	defer func() {
		if recover() == nil {
			t.Error("New with bad config did not panic")
		}
	}()
	New(Config{})
}

func TestLearnsStableBranch(t *testing.T) {
	p := New(Config{Entries: 64})
	// An always-taken branch must be predicted correctly after training.
	var correct int
	for i := 0; i < 100; i++ {
		if p.Predict(0x400, true) {
			correct++
		}
	}
	if correct < 99 {
		t.Errorf("always-taken branch predicted %d/100", correct)
	}
	// An always-not-taken branch trains within a couple of predictions.
	for i := 0; i < 5; i++ {
		p.Predict(0x800, false)
	}
	if !p.Predict(0x800, false) {
		t.Error("not-taken branch still mispredicted after training")
	}
}

func TestAccuracyOnBiasedStream(t *testing.T) {
	p := New(Config{Entries: 256})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		pc := uint64(rng.Intn(64)) * 4
		taken := rng.Float64() < 0.9 // strongly biased branches
		p.Predict(pc, taken)
	}
	p.Finish()
	if acc := p.Accuracy(); acc < 0.85 {
		t.Errorf("accuracy = %.3f on 90%%-biased stream, want > 0.85", acc)
	}
}

func TestBaselineCounterBiasIsSkewed(t *testing.T) {
	// Saturated-taken counters hold "11" nearly always: both bits wear
	// one-sided.
	p := New(Config{Entries: 64})
	for i := 0; i < 20000; i++ {
		p.Predict(uint64(i%64)*4, true)
	}
	p.Finish()
	if got := p.WorstCellBias(); got < 0.9 {
		t.Errorf("baseline worst cell bias = %.3f, want near 1", got)
	}
}

func TestInversionBalancesCounters(t *testing.T) {
	run := func(ratio float64) (float64, float64) {
		cfg := Config{Entries: 64, InvertRatio: ratio, RotatePeriod: 16}
		if ratio == 0 {
			cfg = Config{Entries: 64}
		}
		p := New(cfg)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 60000; i++ {
			pc := uint64(rng.Intn(64)) * 4
			p.Predict(pc, rng.Float64() < 0.85)
		}
		p.Finish()
		return p.WorstCellBias(), p.Accuracy()
	}
	baseBias, baseAcc := run(0)
	invBias, invAcc := run(0.5)
	if invBias >= baseBias {
		t.Errorf("inversion must reduce worst bias: %.3f -> %.3f", baseBias, invBias)
	}
	if invBias > 0.70 {
		t.Errorf("inverted predictor worst bias = %.3f, want near 0.5", invBias)
	}
	// Accuracy cost must be modest — invalidated counters retrain.
	if baseAcc-invAcc > 0.05 {
		t.Errorf("inversion cost %.3f accuracy (%.3f -> %.3f), too much",
			baseAcc-invAcc, baseAcc, invAcc)
	}
}

func TestRotationCoversAllEntries(t *testing.T) {
	p := New(Config{Entries: 16, InvertRatio: 0.25, RotatePeriod: 4})
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		p.Predict(uint64(i%16)*4, true)
		seen[p.invStart] = true
	}
	if len(seen) != 16 {
		t.Errorf("rotation visited %d/16 window positions", len(seen))
	}
}

func TestCellBiasesShape(t *testing.T) {
	p := New(Config{Entries: 32})
	p.Predict(0, true)
	p.Finish()
	if got := len(p.CellBiases()); got != 2 {
		t.Errorf("CellBiases length = %d, want 2", got)
	}
	if p.Predictions() != 1 {
		t.Error("prediction count wrong")
	}
	if (&Predictor{}).Accuracy() != 0 {
		t.Error("zero-value accuracy should be 0")
	}
}
