// Package regfile models a physical register file with the NBTI-aware
// invert-at-release mechanism of paper §4.4 (Figure 7).
//
// The register file is an explicitly managed block whose entries are free
// most of the time (54% for the integer file, 69% for FP). The ISV
// technique keeps a per-file RINV register holding the inversion of a
// periodically sampled write-port value; when a register is released and
// a write port is free, RINV is written into it, so over time cells hold
// inverted and non-inverted data in near-equal shares and per-bit bias
// approaches 50% (Figure 6).
//
// Registers wider than 64 bits (the 80-bit FP registers) are modelled as
// a 64-bit low bank plus a 16-bit extension bank, each with its own bias
// tracker and RINV slice.
package regfile

import (
	"fmt"

	"penelope/internal/mitigation"
	"penelope/internal/stats"
)

// Config describes a register file.
type Config struct {
	Name    string
	Entries int
	// Bits is the register width: 32 for the integer file, 80 for FP.
	// Widths above 64 split into a 64-bit bank plus an extension bank.
	Bits int
	// WritePorts bounds how many writes (including repair writes) can
	// retire per cycle.
	WritePorts int
	// RINVPeriod is the sampling period of the repair register in
	// cycles (§3.2: "we can update RINV ... every one million cycles";
	// the register file samples far more often since its values churn).
	RINVPeriod uint64
	// EnableISV turns the mechanism on; off gives the baseline.
	EnableISV bool
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Entries <= 0:
		return fmt.Errorf("regfile %q: entries must be positive", c.Name)
	case c.Bits <= 0 || c.Bits > 128:
		return fmt.Errorf("regfile %q: bits must be in (0,128]", c.Name)
	case c.WritePorts <= 0:
		return fmt.Errorf("regfile %q: need at least one write port", c.Name)
	default:
		return nil
	}
}

type entry struct {
	busy       bool
	value      uint64
	ext        uint64 // bits above 64
	lastTouch  uint64 // cycle the pending segment starts
	pendBusy   uint64 // pending busy cycles under the current value
	pendFree   uint64 // pending free cycles under the current value
	invContent bool   // holds RINV repair contents (only while free)
}

// File is a physical register file.
type File struct {
	cfg     Config
	loBits  int // tracked in the low bank (≤ 64)
	extBits int // tracked in the extension bank

	entries []entry
	// freeList is a FIFO: hardware free lists are circular queues, so
	// registers rotate through allocation instead of a stack bottom
	// stagnating with one value for the whole run (which would defeat
	// the balancing).
	freeList []int
	freeHead int

	rinvLo  *mitigation.RINV
	rinvExt *mitigation.RINV

	biasLo  *stats.BitBias
	biasExt *stats.BitBias
	occ     *stats.Occupancy
	ports   *stats.Utilization

	busyCount    int
	lastOccCycle uint64
	portCycle    uint64
	portUsed     int

	// ISV timestamp rule (§3.2.2): inverted contents may only be
	// written while cumulative inverted-cell time lags half the total
	// cell time, so cells hold inverted data exactly 50% of the time
	// regardless of how long entries stay free.
	invertedCells int
	invertedTime  uint64
	totalCellTime uint64

	// Counters the paper reports.
	releases        uint64
	repairWrites    uint64
	repairDiscarded uint64
}

// New builds a register file. All entries start free holding zeros (the
// cold-start state §4.4 blames for the slightly worse FP balance).
func New(cfg Config) *File {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	lo, ext := cfg.Bits, 0
	if lo > 64 {
		ext = lo - 64
		lo = 64
	}
	f := &File{
		cfg:     cfg,
		loBits:  lo,
		extBits: ext,
		entries: make([]entry, cfg.Entries),
		biasLo:  stats.NewBitBias(lo),
		occ:     stats.NewOccupancy(cfg.Entries),
		ports:   stats.NewUtilization(cfg.WritePorts),
		rinvLo:  mitigation.NewRINV(lo, cfg.RINVPeriod),
	}
	if ext > 0 {
		f.biasExt = stats.NewBitBias(ext)
		f.rinvExt = mitigation.NewRINV(ext, cfg.RINVPeriod)
	}
	for i := 0; i < cfg.Entries; i++ {
		f.freeList = append(f.freeList, i)
	}
	return f
}

// Config returns the file's configuration.
func (f *File) Config() Config { return f.cfg }

// FreeCount returns how many registers are currently free.
func (f *File) FreeCount() int { return len(f.freeList) - f.freeHead }

// accountOccupancy integrates occupancy up to the given cycle.
func (f *File) accountOccupancy(cycle uint64) {
	if cycle > f.lastOccCycle {
		dt := cycle - f.lastOccCycle
		f.occ.Observe(f.busyCount, dt)
		f.ports.Tick(dt)
		f.invertedTime += uint64(f.invertedCells) * dt
		f.totalCellTime += uint64(f.cfg.Entries) * dt
		f.lastOccCycle = cycle
	}
}

// refreshPorts resets the per-cycle write-port budget.
func (f *File) refreshPorts(cycle uint64) {
	if cycle != f.portCycle {
		f.portCycle = cycle
		f.portUsed = 0
	}
}

// takePortDemand consumes a port for a demand write. Demand writes have
// priority and always proceed; the budget merely records how many ports
// the cycle has left for repair writes.
func (f *File) takePortDemand(cycle uint64) {
	f.refreshPorts(cycle)
	if f.portUsed < f.cfg.WritePorts {
		f.ports.Use(f.portUsed, 1)
	}
	f.portUsed++
}

// takePortRepair claims a leftover port for a repair write, returning
// false when the cycle's ports are exhausted ("Any update that cannot be
// done when the register is released because of lack of idle ports is
// discarded", §4.4).
func (f *File) takePortRepair(cycle uint64) bool {
	f.refreshPorts(cycle)
	if f.portUsed >= f.cfg.WritePorts {
		f.ports.Deny()
		return false
	}
	f.ports.Use(f.portUsed, 1)
	f.portUsed++
	return true
}

// touchEntry closes the current segment of entry i at cycle, crediting
// it to the pending busy or free counter of the register's value-run.
// Allocate and Release only move this busy/free boundary; the per-bit
// expansion waits until the stored value changes, so a register that is
// written once and recycled keeps one long run per value.
func (f *File) touchEntry(i int, cycle uint64) {
	e := &f.entries[i]
	if cycle <= e.lastTouch {
		return
	}
	dt := cycle - e.lastTouch
	if e.busy {
		e.pendBusy += dt
	} else {
		e.pendFree += dt
	}
	e.lastTouch = cycle
}

// flushEntry expands the pending value-run of entry i into the bias
// trackers. Callers invoke it just before the stored value changes.
func (f *File) flushEntry(i int, cycle uint64) {
	f.touchEntry(i, cycle)
	e := &f.entries[i]
	if e.pendBusy > 0 {
		f.biasLo.Observe(e.value, e.pendBusy)
		if f.biasExt != nil {
			f.biasExt.Observe(e.ext, e.pendBusy)
		}
		e.pendBusy = 0
	}
	if e.pendFree > 0 {
		f.biasLo.ObserveFree(e.value, e.pendFree)
		if f.biasExt != nil {
			f.biasExt.ObserveFree(e.ext, e.pendFree)
		}
		e.pendFree = 0
	}
}

// Allocate claims a free register at the given cycle. ok is false when
// the file is full.
func (f *File) Allocate(cycle uint64) (reg int, ok bool) {
	f.accountOccupancy(cycle)
	if f.FreeCount() == 0 {
		return -1, false
	}
	reg = f.freeList[f.freeHead]
	f.freeHead++
	if f.freeHead > f.cfg.Entries {
		copy(f.freeList, f.freeList[f.freeHead:])
		f.freeList = f.freeList[:len(f.freeList)-f.freeHead]
		f.freeHead = 0
	}
	f.touchEntry(reg, cycle)
	f.entries[reg].busy = true
	f.busyCount++
	return reg, true
}

// Write stores a value into a busy register through a write port. The
// value also feeds the RINV sampler ("RINV is updated periodically with
// the value flowing through a given write port").
func (f *File) Write(reg int, value, ext uint64, cycle uint64) {
	f.accountOccupancy(cycle)
	e := &f.entries[reg]
	if !e.busy {
		panic(fmt.Sprintf("regfile %s: write to free register %d", f.cfg.Name, reg))
	}
	f.takePortDemand(cycle)
	v, x := f.maskLo(value), f.maskExt(ext)
	// A write of the value the cell already holds extends the current
	// run instead of closing it: the bias totals are identical (Observe
	// is additive over equal-value intervals) and the per-bit expansion
	// is skipped. Rewrites with identical data are common — zero results,
	// repeated constants — so this is a hot-path win, not a corner case.
	if v != e.value || x != e.ext {
		f.flushEntry(reg, cycle)
		e.value = v
		e.ext = x
	}
	if e.invContent {
		e.invContent = false
		f.invertedCells--
	}
	f.rinvLo.Offer(v, cycle)
	if f.rinvExt != nil {
		f.rinvExt.Offer(x, cycle)
	}
}

// Release frees a register. With ISV enabled and a write port free, the
// RINV repair value is written into the cell; otherwise the update is
// discarded, which §4.4 measures to be rare (ports are free 92%/86% of
// the time) and harmless.
func (f *File) Release(reg int, cycle uint64) {
	f.accountOccupancy(cycle)
	e := &f.entries[reg]
	if !e.busy {
		panic(fmt.Sprintf("regfile %s: double release of register %d", f.cfg.Name, reg))
	}
	f.touchEntry(reg, cycle)
	e.busy = false
	f.busyCount--
	f.releases++
	if f.cfg.EnableISV && f.invertedTime*2 <= f.totalCellTime {
		if f.takePortRepair(cycle) {
			// The repair overwrites the cell: expand its run first.
			f.flushEntry(reg, cycle)
			e.value = f.rinvLo.Value()
			if f.rinvExt != nil {
				e.ext = f.rinvExt.Value()
			}
			e.invContent = true
			f.invertedCells++
			f.repairWrites++
		} else {
			f.repairDiscarded++
		}
	}
	f.freeList = append(f.freeList, reg)
}

// Finish closes all accounting at the given end cycle. Call once before
// reading Report.
func (f *File) Finish(cycle uint64) {
	f.accountOccupancy(cycle)
	for i := range f.entries {
		f.flushEntry(i, cycle)
	}
}

func (f *File) maskLo(v uint64) uint64 {
	if f.loBits == 64 {
		return v
	}
	return v & (1<<uint(f.loBits) - 1)
}

func (f *File) maskExt(v uint64) uint64 {
	if f.extBits == 0 {
		return 0
	}
	return v & (1<<uint(f.extBits) - 1)
}

// Report summarizes the NBTI-relevant statistics of a run.
type Report struct {
	Name             string
	Bits             int
	FreeFraction     float64   // fraction of time entries are free
	PortAvailability float64   // fraction of repair writes finding a port
	Biases           []float64 // per-bit zero bias over total time
	WorstBias        float64   // worst cell bias (max of bias, 1-bias)
	RepairWrites     uint64
	RepairDiscarded  uint64
	Releases         uint64
}

// Report computes the run summary. Finish must have been called.
func (f *File) Report() Report {
	r := Report{
		Name:             f.cfg.Name,
		Bits:             f.cfg.Bits,
		FreeFraction:     f.occ.FreeFraction(),
		PortAvailability: f.ports.Availability(),
		RepairWrites:     f.repairWrites,
		RepairDiscarded:  f.repairDiscarded,
		Releases:         f.releases,
	}
	// One exactly-sized backing array for the full bit series: the report
	// is built once per run per file, and the append-of-append pattern
	// here used to churn three allocations per call.
	r.Biases = f.biasLo.AppendBiases(make([]float64, 0, f.cfg.Bits))
	worst := f.biasLo.WorstCellBias()
	if f.biasExt != nil {
		r.Biases = f.biasExt.AppendBiases(r.Biases)
		if w := f.biasExt.WorstCellBias(); w > worst {
			worst = w
		}
	}
	r.WorstBias = worst
	return r
}
