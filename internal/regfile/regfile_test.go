package regfile

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func intConfig(isv bool) Config {
	return Config{Name: "int", Entries: 16, Bits: 32, WritePorts: 4, RINVPeriod: 16, EnableISV: isv}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "a", Entries: 0, Bits: 32, WritePorts: 1},
		{Name: "b", Entries: 4, Bits: 0, WritePorts: 1},
		{Name: "c", Entries: 4, Bits: 200, WritePorts: 1},
		{Name: "d", Entries: 4, Bits: 32, WritePorts: 0},
	}
	for _, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %+v should be invalid", cfg)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("New with invalid config did not panic")
				}
			}()
			New(cfg)
		}()
	}
	if err := intConfig(true).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestAllocateReleaseCycle(t *testing.T) {
	f := New(intConfig(false))
	if f.FreeCount() != 16 {
		t.Fatalf("fresh file has %d free, want 16", f.FreeCount())
	}
	regs := map[int]bool{}
	for i := 0; i < 16; i++ {
		r, ok := f.Allocate(uint64(i))
		if !ok || regs[r] {
			t.Fatalf("allocation %d failed or duplicated (reg %d)", i, r)
		}
		regs[r] = true
	}
	if _, ok := f.Allocate(20); ok {
		t.Fatal("full file must refuse allocation")
	}
	for r := range regs {
		f.Release(r, 30)
	}
	if f.FreeCount() != 16 {
		t.Fatal("releases did not refill the free list")
	}
}

func TestWriteToFreePanics(t *testing.T) {
	f := New(intConfig(false))
	r, _ := f.Allocate(0)
	f.Release(r, 1)
	for _, fn := range []func(){
		func() { f.Write(r, 1, 0, 2) },
		func() { f.Release(r, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestValueMasking(t *testing.T) {
	f := New(intConfig(false))
	r, _ := f.Allocate(0)
	f.Write(r, ^uint64(0), ^uint64(0), 1)
	f.Release(r, 10)
	f.Finish(20)
	rep := f.Report()
	if len(rep.Biases) != 32 {
		t.Fatalf("32-bit file reports %d bit biases", len(rep.Biases))
	}
}

func TestFP80Banks(t *testing.T) {
	f := New(Config{Name: "fp", Entries: 8, Bits: 80, WritePorts: 2, EnableISV: true})
	r, _ := f.Allocate(0)
	f.Write(r, 0x8000000000000001, 0x3FFF, 1)
	f.Release(r, 100)
	f.Finish(200)
	rep := f.Report()
	if len(rep.Biases) != 80 {
		t.Fatalf("80-bit file reports %d bit biases, want 80", len(rep.Biases))
	}
	if rep.Bits != 80 {
		t.Error("report width wrong")
	}
}

// TestBaselineBiasIsHigh drives the file with biased integer values (no
// ISV): per-bit zero bias must stay high, like Figure 6's baseline.
func TestBaselineBiasIsHigh(t *testing.T) {
	f := New(intConfig(false))
	rng := rand.New(rand.NewSource(1))
	runWorkload(f, rng, 30000)
	rep := f.Report()
	if rep.WorstBias < 0.80 {
		t.Errorf("baseline worst bias = %.3f, want > 0.80 (paper: 89.9%%)", rep.WorstBias)
	}
}

// TestISVBalancesBias reproduces the §4.4 result: ISV pulls the worst
// bias close to 50% (paper: 89.9% -> 48.5%, i.e. within ~2.5% of
// optimal).
func TestISVBalancesBias(t *testing.T) {
	f := New(intConfig(true))
	rng := rand.New(rand.NewSource(1))
	runWorkload(f, rng, 30000)
	rep := f.Report()
	if rep.WorstBias > 0.58 {
		t.Errorf("ISV worst bias = %.3f, want ≈ 0.5 (paper: 48.5%%)", rep.WorstBias)
	}
	if rep.RepairWrites == 0 {
		t.Error("ISV performed no repair writes")
	}
	// The file must be free more than half the time for ISV to apply
	// (Figure 3 casuistic).
	if rep.FreeFraction < 0.5 {
		t.Errorf("free fraction = %.3f; workload should leave entries free >50%%", rep.FreeFraction)
	}
}

// runWorkload allocates, writes biased values, and releases registers so
// that entries are busy ~45% of the time.
func runWorkload(f *File, rng *rand.Rand, cycles uint64) {
	type live struct {
		reg   int
		until uint64
	}
	var inFlight []live
	for cyc := uint64(0); cyc < cycles; cyc++ {
		// Release matured registers.
		keep := inFlight[:0]
		for _, l := range inFlight {
			if l.until <= cyc {
				f.Release(l.reg, cyc)
			} else {
				keep = append(keep, l)
			}
		}
		inFlight = keep
		// Allocate a new one with ~30% probability.
		if rng.Float64() < 0.30 {
			if r, ok := f.Allocate(cyc); ok {
				f.Write(r, biasedValue(rng), 0, cyc)
				life := uint64(5 + rng.Intn(40))
				inFlight = append(inFlight, live{reg: r, until: cyc + life})
			}
		}
	}
	f.Finish(cycles)
}

// biasedValue mimics the integer value mixture: zeros, small ints, few
// negatives.
func biasedValue(rng *rand.Rand) uint64 {
	switch r := rng.Float64(); {
	case r < 0.3:
		return 0
	case r < 0.7:
		return uint64(rng.Intn(256))
	case r < 0.8:
		return uint64(uint32(-int32(rng.Intn(100) - 1)))
	default:
		return uint64(rng.Uint32())
	}
}

func TestPortAvailabilityTracked(t *testing.T) {
	// One write port and bursts of releases: some repair writes must be
	// discarded.
	f := New(Config{Name: "tiny", Entries: 8, Bits: 8, WritePorts: 1, EnableISV: true})
	var regs []int
	for i := 0; i < 8; i++ {
		r, _ := f.Allocate(0)
		f.Write(r, uint64(i), 0, 1) // all writes in cycle 1 exhaust the port
		regs = append(regs, r)
	}
	for _, r := range regs {
		f.Release(r, 1) // same cycle: port already consumed
	}
	f.Finish(10)
	rep := f.Report()
	if rep.RepairDiscarded == 0 {
		t.Error("port-starved releases should discard repair writes")
	}
	if rep.PortAvailability >= 1 {
		t.Errorf("port availability = %v, want < 1", rep.PortAvailability)
	}
}

func TestRepairWritesMostlySucceedWithManyPorts(t *testing.T) {
	// §4.4: ports are available 92% (86%) of the time; discards are rare.
	f := New(intConfig(true))
	rng := rand.New(rand.NewSource(3))
	runWorkload(f, rng, 20000)
	rep := f.Report()
	if rep.Releases == 0 {
		t.Fatal("workload produced no releases")
	}
	frac := float64(rep.RepairWrites) / float64(rep.Releases)
	if frac < 0.85 {
		t.Errorf("repair writes succeeded for %.2f of releases, want > 0.85", frac)
	}
}

func TestFreeFractionAccounting(t *testing.T) {
	f := New(Config{Name: "t", Entries: 2, Bits: 4, WritePorts: 1})
	r, _ := f.Allocate(0)
	f.Release(r, 50) // busy half of [0,100) for one of two entries
	f.Finish(100)
	rep := f.Report()
	// One entry busy 50 of 100 cycles, the other always free:
	// occupancy = 25%, free = 75%.
	if !almostEqual(rep.FreeFraction, 0.75, 1e-9) {
		t.Errorf("free fraction = %v, want 0.75", rep.FreeFraction)
	}
}

func TestColdStartBiasNeutral(t *testing.T) {
	// Untouched file: every cell holds zero the whole time; zero bias 1.
	f := New(Config{Name: "t", Entries: 4, Bits: 4, WritePorts: 1})
	f.Finish(100)
	rep := f.Report()
	for i, b := range rep.Biases {
		if b != 1 {
			t.Errorf("bit %d bias = %v, want 1 (all zeros)", i, b)
		}
	}
}
