package lifetime

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// checkpointMagic versions the checkpoint layout. Bump it whenever the
// binary format below changes shape.
const checkpointMagic = "penelope-fleet-v1\n"

// WriteCheckpoint serializes the engine's full resumable state: the
// config (JSON header), the epoch cursor, the population trap
// densities as raw float bits, the violation bitset, and the stats
// accumulated so far. Chip parameters are not stored — they re-derive
// from (Seed, Sigma) on load — so the payload is dominated by one
// float64 per device: a million-chip, four-structure fleet checkpoints
// in ~32 MB. A resumed engine produces byte-identical results to an
// uninterrupted run.
func (e *Engine) WriteCheckpoint(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	cfgJSON, err := json.Marshal(e.cfg)
	if err != nil {
		return err
	}
	writeUint := func(v uint64) { binary.Write(bw, binary.LittleEndian, v) }
	writeUint(uint64(len(cfgJSON)))
	bw.Write(cfgJSON)
	writeUint(uint64(e.epoch))
	writeUint(uint64(len(e.nit)))
	for _, v := range e.nit {
		writeUint(math.Float64bits(v))
	}
	writeUint(uint64(len(e.violated)))
	for _, v := range e.violated {
		writeUint(v)
	}
	writeUint(uint64(len(e.stats)))
	for _, st := range e.stats {
		writeUint(uint64(st.Epoch))
		writeUint(math.Float64bits(st.Years))
		writeUint(uint64(len(st.Phase)))
		bw.WriteString(st.Phase)
		for _, f := range []float64{st.MeanGuardband, st.P50Guardband, st.P95Guardband,
			st.P99Guardband, st.MaxGuardband, st.ViolatedFraction} {
			writeUint(math.Float64bits(f))
		}
		writeUint(uint64(len(st.MeanVTHShift)))
		for _, f := range st.MeanVTHShift {
			writeUint(math.Float64bits(f))
		}
	}
	return bw.Flush()
}

// Snapshot serializes the engine's resumable state to memory — the
// in-RAM form of WriteCheckpoint, for callers (the fleetops scheduler)
// that keep a live checkpoint of every population between epoch steps
// and only touch disk when persistence is on.
func (e *Engine) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// FromSnapshot rebuilds an engine from a Snapshot payload.
func FromSnapshot(data []byte) (*Engine, error) {
	return ReadCheckpoint(bytes.NewReader(data))
}

// ReadCheckpoint rebuilds an engine from a checkpoint stream: the
// config is validated and the chip parameters resampled exactly as New
// would, then the population state and accumulated stats are restored
// bit-for-bit.
func ReadCheckpoint(r io.Reader) (*Engine, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("lifetime: reading checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("lifetime: not a fleet checkpoint (magic %q)", magic)
	}
	var readErr error
	readUint := func() uint64 {
		var v uint64
		if readErr == nil {
			readErr = binary.Read(br, binary.LittleEndian, &v)
		}
		return v
	}
	readBytes := func(n uint64) []byte {
		if readErr != nil || n > 1<<32 {
			if readErr == nil {
				readErr = fmt.Errorf("lifetime: implausible checkpoint length %d", n)
			}
			return nil
		}
		buf := make([]byte, n)
		_, readErr = io.ReadFull(br, buf)
		return buf
	}
	cfgJSON := readBytes(readUint())
	if readErr != nil {
		return nil, fmt.Errorf("lifetime: reading checkpoint config: %w", readErr)
	}
	var cfg Config
	if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
		return nil, fmt.Errorf("lifetime: parsing checkpoint config: %w", err)
	}
	e, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("lifetime: checkpoint config invalid: %w", err)
	}
	e.epoch = int(readUint())
	if n := readUint(); readErr == nil && int(n) != len(e.nit) {
		return nil, fmt.Errorf("lifetime: checkpoint state has %d devices, config implies %d", n, len(e.nit))
	}
	for i := range e.nit {
		e.nit[i] = math.Float64frombits(readUint())
	}
	if n := readUint(); readErr == nil && int(n) != len(e.violated) {
		return nil, fmt.Errorf("lifetime: checkpoint bitset has %d words, config implies %d", n, len(e.violated))
	}
	for i := range e.violated {
		e.violated[i] = readUint()
	}
	nStats := readUint()
	if readErr == nil && nStats > uint64(e.epochTotal) {
		return nil, fmt.Errorf("lifetime: checkpoint has %d stat rows for a %d-epoch schedule", nStats, e.epochTotal)
	}
	for i := uint64(0); i < nStats && readErr == nil; i++ {
		var st EpochStats
		st.Epoch = int(readUint())
		st.Years = math.Float64frombits(readUint())
		st.Phase = string(readBytes(readUint()))
		st.MeanGuardband = math.Float64frombits(readUint())
		st.P50Guardband = math.Float64frombits(readUint())
		st.P95Guardband = math.Float64frombits(readUint())
		st.P99Guardband = math.Float64frombits(readUint())
		st.MaxGuardband = math.Float64frombits(readUint())
		st.ViolatedFraction = math.Float64frombits(readUint())
		nVTH := readUint()
		if readErr == nil && nVTH != uint64(len(cfg.Structures)) {
			return nil, fmt.Errorf("lifetime: checkpoint stat row has %d structure shifts, config has %d",
				nVTH, len(cfg.Structures))
		}
		st.MeanVTHShift = make([]float64, nVTH)
		for s := range st.MeanVTHShift {
			st.MeanVTHShift[s] = math.Float64frombits(readUint())
		}
		e.stats = append(e.stats, st)
	}
	if readErr != nil {
		return nil, fmt.Errorf("lifetime: reading checkpoint state: %w", readErr)
	}
	if e.epoch < 0 || e.epoch > e.epochTotal || len(e.stats) != e.epoch {
		return nil, fmt.Errorf("lifetime: checkpoint cursor at epoch %d with %d stat rows", e.epoch, len(e.stats))
	}
	return e, nil
}
