package lifetime

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"penelope/internal/circuit"
	"penelope/internal/nbti"
)

// testConfig returns a small two-structure fleet over a three-phase
// schedule (service, wearout attack, service).
func testConfig(pop int, sigma float64) Config {
	p := DefaultParams()
	return Config{
		Structures: []string{"adder", "regfile"},
		Phases: []Phase{
			{Name: "service", Years: 2, Duty: []float64{0.9, 0.7}},
			{Name: "attack", Years: 1, Duty: []float64{1, 1}},
			{Name: "service", Years: 2, Duty: []float64{0.9, 0.7}},
		},
		Population: pop,
		EpochYears: 0.25,
		Seed:       7,
		Sigma:      sigma,
		Limit:      DefaultLimit,
		Params:     p,
		Delay:      circuit.NewDelayModel(circuit.PathStats{Depth: 10, Narrow: 5}, p.MaxVTHShift, p.MaxGuardband),
	}
}

func mustNew(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestTrajectoryShape checks the basic physics of a fleet run: the
// schedule covers every epoch, guardbands rise monotonically under
// sustained stress, the attack phase accelerates degradation, and the
// trajectory converges toward the duty equilibrium.
func TestTrajectoryShape(t *testing.T) {
	cfg := testConfig(500, 0)
	e := mustNew(t, cfg)
	stats := e.Run(0)
	if len(stats) != e.TotalEpochs() || !e.Done() {
		t.Fatalf("ran %d epochs of %d", len(stats), e.TotalEpochs())
	}
	if got, want := stats[len(stats)-1].Years, 5.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("final year = %g, want %g", got, want)
	}
	// Guardband rises monotonically through the first service phase and
	// the attack (epochs 0..11): degradation only accumulates there.
	for i := 1; i < 12; i++ {
		if stats[i].MeanGuardband < stats[i-1].MeanGuardband-1e-12 {
			t.Errorf("epoch %d: mean guardband fell %g -> %g under sustained stress",
				i, stats[i-1].MeanGuardband, stats[i].MeanGuardband)
		}
	}
	// The attack phase (epochs 8..11) must age the fleet faster than the
	// preceding service epochs.
	serviceRate := stats[7].MeanGuardband - stats[6].MeanGuardband
	attackRate := stats[9].MeanGuardband - stats[8].MeanGuardband
	if attackRate <= serviceRate {
		t.Errorf("attack epoch rate %g not above service rate %g", attackRate, serviceRate)
	}
	// After the attack ends the fleet partially recovers toward the
	// (lower) service equilibrium: guardband declines but stays above
	// the pre-attack level for a while.
	if !(stats[19].MeanGuardband < stats[11].MeanGuardband) {
		t.Errorf("no post-attack recovery: epoch 11 %g, epoch 19 %g",
			stats[11].MeanGuardband, stats[19].MeanGuardband)
	}
	if !(stats[12].MeanGuardband > stats[7].MeanGuardband) {
		t.Errorf("attack left no residue: epoch 7 %g, epoch 12 %g",
			stats[7].MeanGuardband, stats[12].MeanGuardband)
	}
	// With sigma 0 every chip is nominal: the distribution collapses.
	last := stats[len(stats)-1]
	if last.MaxGuardband-last.MeanGuardband > 1e-9 {
		t.Errorf("sigma=0 fleet spread: mean %g max %g", last.MeanGuardband, last.MaxGuardband)
	}
}

// TestEquilibriumConvergence runs a long constant-duty schedule and
// checks the fleet-mean VTH shift converges to the closed-form duty
// equilibrium of the nbti layer.
func TestEquilibriumConvergence(t *testing.T) {
	const duty = 0.8
	cfg := testConfig(64, 0)
	cfg.Phases = []Phase{{Name: "dc", Years: 40, Duty: []float64{duty, duty}}}
	e := mustNew(t, cfg)
	stats := e.Run(0)
	want := cfg.Params.VTHShift(duty)
	got := stats[len(stats)-1].MeanVTHShift[0]
	// The duty-averaged integration has the closed-form equilibrium as
	// its exact fixed point; after 40 years the residual is below the
	// fixed-point quantization of the aggregate.
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("equilibrium VTH shift = %g, closed form %g", got, want)
	}
}

// TestVariationSpreadsFleet checks that process variation produces a
// real distribution: percentiles order correctly and the tail exceeds
// the mean.
func TestVariationSpreadsFleet(t *testing.T) {
	e := mustNew(t, testConfig(4000, 0.15))
	stats := e.Run(0)
	last := stats[len(stats)-1]
	if !(last.P50Guardband <= last.P95Guardband && last.P95Guardband <= last.P99Guardband) {
		t.Errorf("percentiles out of order: %+v", last)
	}
	if last.P99Guardband <= last.MeanGuardband {
		t.Errorf("P99 %g not above mean %g under sigma=0.15", last.P99Guardband, last.MeanGuardband)
	}
	if last.MaxGuardband < last.P99Guardband {
		t.Errorf("max %g below P99 %g", last.MaxGuardband, last.P99Guardband)
	}
	// Violations must appear gradually (a yield curve, not a cliff).
	if e.FirstViolationYears() < 0 {
		t.Error("no violations in a varied fleet at the default limit")
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].ViolatedFraction < stats[i-1].ViolatedFraction {
			t.Errorf("violated fraction shrank at epoch %d", i)
		}
	}
}

// TestChipParamsDeterministic checks the splittable sampling: chip k's
// parameters depend only on (seed, sigma, k).
func TestChipParamsDeterministic(t *testing.T) {
	for _, chip := range []int{0, 1, 63, 1 << 20} {
		a0, a1, a2 := chipParams(42, 0.1, chip)
		b0, b1, b2 := chipParams(42, 0.1, chip)
		if a0 != b0 || a1 != b1 || a2 != b2 {
			t.Fatalf("chip %d resampled differently", chip)
		}
		if a0 <= 0 || a1 <= 0 || a2 <= 0 {
			t.Fatalf("chip %d has non-positive lognormal multipliers", chip)
		}
	}
	if x, _, _ := chipParams(42, 0.1, 5); x == func() float64 { y, _, _ := chipParams(43, 0.1, 5); return y }() {
		t.Error("different seeds gave chip 5 identical parameters")
	}
}

// TestWorkerCountInvariance requires bit-identical trajectories for
// any worker count: aggregation is fixed-point and shard decomposition
// is independent of the pool size.
func TestWorkerCountInvariance(t *testing.T) {
	cfg := testConfig(10000, 0.1) // > 2 shards
	want := mustNew(t, cfg).Run(1)
	for _, workers := range []int{2, 3, 8} {
		got := mustNew(t, cfg).Run(workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trajectory with %d workers diverges from serial run", workers)
		}
	}
}

// TestCheckpointResumeIdentical is the checkpoint determinism
// guarantee: a run checkpointed at epoch k and resumed — with a
// different worker count — produces byte-identical stats to an
// uninterrupted run.
func TestCheckpointResumeIdentical(t *testing.T) {
	cfg := testConfig(6000, 0.12)
	full := mustNew(t, cfg)
	wantStats := full.Run(3)
	want, err := json.Marshal(wantStats)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{0, 1, 7, full.TotalEpochs() - 1, full.TotalEpochs()} {
		e := mustNew(t, cfg)
		for i := 0; i < k; i++ {
			e.Step(2)
		}
		var buf bytes.Buffer
		if err := e.WriteCheckpoint(&buf); err != nil {
			t.Fatalf("checkpoint at epoch %d: %v", k, err)
		}
		resumed, err := ReadCheckpoint(&buf)
		if err != nil {
			t.Fatalf("resume from epoch %d: %v", k, err)
		}
		if resumed.Epoch() != k {
			t.Fatalf("resumed cursor at epoch %d, want %d", resumed.Epoch(), k)
		}
		got, err := json.Marshal(resumed.Run(5))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("resume at epoch %d: results not byte-identical to uninterrupted run", k)
		}
	}
}

// TestCheckpointRejectsGarbage covers the loud failure paths: wrong
// magic, truncated state, and an invalid embedded config.
func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("not a checkpoint at all......"))); err == nil {
		t.Error("bad magic accepted")
	}
	e := mustNew(t, testConfig(100, 0))
	e.Step(0)
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := ReadCheckpoint(bytes.NewReader(full[:len(full)-9])); err == nil {
		t.Error("truncated checkpoint accepted")
	}
}

// TestConfigValidate spot-checks the validation errors.
func TestConfigValidate(t *testing.T) {
	good := testConfig(10, 0)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Structures = nil },
		func(c *Config) { c.Phases = nil },
		func(c *Config) { c.Population = 0 },
		func(c *Config) { c.EpochYears = 0 },
		func(c *Config) { c.Sigma = -1 },
		func(c *Config) { c.Limit = 0 },
		func(c *Config) { c.Phases[0].Duty = []float64{0.5} },
		func(c *Config) { c.Phases[0].Duty[0] = 1.5 },
		func(c *Config) { c.Phases[0].Years = 0 },
		func(c *Config) { c.Delay = circuit.DelayModel{} },
		func(c *Config) { c.Params = nbti.Params{} },
	}
	for i, mutate := range bad {
		c := testConfig(10, 0)
		c.Phases = []Phase{
			{Name: "service", Years: 2, Duty: []float64{0.9, 0.7}},
		}
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestDelayModelAnchors checks the circuit-calibrated guardband map:
// zero at zero shift, the measured worst case at the calibration
// anchor, convex in between, clamped far beyond it.
func TestDelayModelAnchors(t *testing.T) {
	p := nbti.DefaultParams()
	m := circuit.NewDelayModel(circuit.PathStats{Depth: 20, Narrow: 11}, p.MaxVTHShift, p.MaxGuardband)
	if g := m.Guardband(0); g != 0 {
		t.Errorf("fresh circuit guardband = %g", g)
	}
	if g := m.Guardband(p.MaxVTHShift); math.Abs(g-p.MaxGuardband) > 1e-12 {
		t.Errorf("anchor guardband = %g, want %g", g, p.MaxGuardband)
	}
	mid := m.Guardband(p.MaxVTHShift / 2)
	if !(mid > 0 && mid < p.MaxGuardband/2+1e-12) {
		t.Errorf("mid-shift guardband %g not convex below linear %g", mid, p.MaxGuardband/2)
	}
	if g, gClamp := m.Guardband(10), m.Guardband(100); g != gClamp {
		t.Errorf("extreme shifts not clamped: %g vs %g", g, gClamp)
	}
}
