// Package lifetime is the fleet lifetime engine: it ages a population
// of chips — each a set of nbti-modeled structures with per-chip
// process variation — through a multi-year schedule of workload phases
// and reports the guardband trajectory and lifetime yield of the fleet.
//
// The paper's argument is about service life: NBTI guardbands are
// provisioned for years of aging, and Penelope's balancing mechanisms
// pay off as a smaller guardband over that whole period (§1, §4.7).
// The rest of the repository measures instantaneous duty cycles; this
// package integrates them over time. Each simulated chip carries one
// representative worst-stressed PMOS device per microarchitectural
// structure (adder, register files, scheduler), advanced with the exact
// stress/recovery integration of nbti.Device. Per-chip parameters are
// drawn from a deterministic splittable RNG — "Building Reliable
// Arithmetic Multipliers Under NBTI Aging and Process Variations"
// shows aging conclusions flip under per-chip variation, so the fleet
// distribution, not a single nominal chip, is the unit of evaluation.
// Accumulated VTH shift maps to a cycle-time guardband through the
// compiled adder's critical-path delay model (circuit.DelayModel), and
// the engine emits per-epoch fleet aggregates: mean and percentile
// guardband, violation fractions against a provisioned guardband
// budget, and the lifetime-yield curve those violations trace out.
//
// The engine is epoch-major so long jobs checkpoint at epoch
// boundaries: population state is a flat array of trap densities plus a
// violation bitset, serializable with Engine.WriteCheckpoint and
// restored bit-exactly with ReadCheckpoint. Within an epoch the
// population shards across a worker pool in the pipeline.RunBatch
// style; every aggregate is accumulated in fixed-point integers, so
// results are bit-identical for any worker count or scheduling order.
package lifetime

import (
	"fmt"
	"math"

	"penelope/internal/circuit"
	"penelope/internal/nbti"
)

// Phase is one segment of the service-life schedule: the per-structure
// stress duty cycles the fleet observes for a span of years. A phase's
// duty is the zero-signal probability of the structure's worst-stressed
// PMOS under that workload — measured profiles for normal service, 1.0
// everywhere for an adversarial wearout-attack phase ("Targeted Wearout
// Attacks in Microprocessor Cores" motivates treating that schedule as
// a first-class scenario).
type Phase struct {
	Name  string  `json:"name"`
	Years float64 `json:"years"`
	// Duty holds one stress duty in [0,1] per configured structure.
	Duty []float64 `json:"duty"`
}

// Config parameterizes a fleet simulation. All fields participate in
// the checkpoint header; two configs must be equal for a checkpoint to
// resume.
type Config struct {
	// Structures names the per-chip aged structures; every phase's Duty
	// slice is indexed by it.
	Structures []string `json:"structures"`
	Phases     []Phase  `json:"phases"`
	Population int      `json:"population"`
	// EpochYears is the aggregation step: duties are integrated exactly
	// within an epoch, and one EpochStats row is emitted per epoch.
	EpochYears float64 `json:"epoch_years"`
	// Seed roots the per-chip parameter sampling. Chip k's parameters
	// depend only on (Seed, Sigma, k), never on worker count or
	// population size, so growing the fleet extends it deterministically.
	Seed uint64 `json:"seed"`
	// Sigma is the lognormal process-variation spread applied to each
	// chip's KStress, KRelax and VTH sensitivity. 0 disables variation.
	Sigma float64 `json:"sigma"`
	// Limit is the provisioned guardband budget: a chip whose required
	// guardband exceeds it is in violation, and the fraction of the
	// fleet not yet in violation is the lifetime yield.
	Limit float64 `json:"limit"`
	// Params is the NBTI calibration on the schedule's timescale (see
	// DefaultParams for the service-life scaling).
	Params nbti.Params `json:"params"`
	// Delay maps accumulated relative VTH shift to required guardband.
	Delay circuit.DelayModel `json:"delay"`
}

// DefaultParams returns the nbti calibration rescaled to a service-life
// timescale: KStress and KRelax shrink by a common factor so a
// DC-stressed device reaches ~99% of its equilibrium trap density after
// seven years (1-exp(-0.66·7) ≈ 0.99) instead of within a few time
// units. The KRelax/KStress ratio — and with it every duty-cycle
// equilibrium and guardband anchor — is unchanged.
func DefaultParams() nbti.Params {
	p := nbti.DefaultParams()
	const perYear = 0.66
	p.KStress *= perYear
	p.KRelax *= perYear
	return p
}

// DefaultLimit is the default provisioned guardband budget: half the
// worst-case end-of-life guardband, i.e. the budget a designer would
// dare only with mitigation in place (the paper's point: Penelope makes
// the smaller provision safe, the baseline fleet burns through it).
const DefaultLimit = 0.10

// Validate reports the first problem with the config.
func (c Config) Validate() error {
	switch {
	case len(c.Structures) == 0:
		return fmt.Errorf("lifetime: no structures")
	case len(c.Phases) == 0:
		return fmt.Errorf("lifetime: no phases")
	case c.Population < 1:
		return fmt.Errorf("lifetime: population %d < 1", c.Population)
	case c.EpochYears <= 0:
		return fmt.Errorf("lifetime: epoch length %g <= 0", c.EpochYears)
	case c.Sigma < 0:
		return fmt.Errorf("lifetime: negative variation sigma")
	case c.Limit <= 0:
		return fmt.Errorf("lifetime: guardband limit %g <= 0", c.Limit)
	case !c.Params.Valid():
		return fmt.Errorf("lifetime: invalid nbti params")
	case !c.Delay.Valid():
		return fmt.Errorf("lifetime: invalid delay model")
	}
	for _, ph := range c.Phases {
		if ph.Years <= 0 {
			return fmt.Errorf("lifetime: phase %q spans %g years", ph.Name, ph.Years)
		}
		if len(ph.Duty) != len(c.Structures) {
			return fmt.Errorf("lifetime: phase %q has %d duties for %d structures",
				ph.Name, len(ph.Duty), len(c.Structures))
		}
		for s, d := range ph.Duty {
			if d < 0 || d > 1 || math.IsNaN(d) {
				return fmt.Errorf("lifetime: phase %q duty[%s] = %g out of [0,1]",
					ph.Name, c.Structures[s], d)
			}
		}
	}
	return nil
}

// splitmix64 is the splittable seeding mix of Steele et al. — one
// invertible permutation of the state per draw, so chip streams derived
// from (seed, chip index) are independent and reproducible with no
// shared generator state.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// chipStream is the per-chip RNG: a splitmix64 counter stream rooted at
// a mix of the fleet seed and the chip index.
type chipStream struct{ state uint64 }

func newChipStream(seed uint64, chip int) chipStream {
	return chipStream{state: splitmix64(seed ^ splitmix64(uint64(chip)+0x632BE59BD9B4E019))}
}

// next returns the next raw 64-bit draw.
func (s *chipStream) next() uint64 {
	s.state = splitmix64(s.state)
	return s.state
}

// uniform returns a draw in the open interval (0,1).
func (s *chipStream) uniform() float64 {
	return (float64(s.next()>>11) + 0.5) / (1 << 53)
}

// gauss returns one standard-normal pair via Box-Muller.
func (s *chipStream) gauss() (float64, float64) {
	u1, u2 := s.uniform(), s.uniform()
	r := math.Sqrt(-2 * math.Log(u1))
	sin, cos := math.Sincos(2 * math.Pi * u2)
	return r * cos, r * sin
}

// chipParams samples chip k's process-variation multipliers: lognormal
// factors on KStress, KRelax and the VTH→delay sensitivity (the Vth0
// spread), all with the same sigma. Lognormal keeps every rate positive
// and centers the fleet median on the nominal chip.
func chipParams(seed uint64, sigma float64, chip int) (kStress, kRelax, vthMult float64) {
	if sigma == 0 {
		return 1, 1, 1
	}
	rng := newChipStream(seed, chip)
	g0, g1 := rng.gauss()
	g2, _ := rng.gauss()
	return math.Exp(sigma * g0), math.Exp(sigma * g1), math.Exp(sigma * g2)
}
