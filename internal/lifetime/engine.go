package lifetime

import (
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Aggregation constants. Every per-epoch statistic is accumulated in
// fixed-point integers so the merge across shards is a commutative,
// associative sum — bit-identical for any worker count, scheduling
// order, or checkpoint split.
const (
	// qScale quantizes guardbands and VTH shifts to nano-units.
	// Guardbands stay below histMax (a full cycle time; the clamped
	// delay model tops out near 0.52 even under extreme variation), so
	// a uint64 sum is exact up to ~1.8e10 chips — far beyond any fleet
	// this runs.
	qScale = 1e9
	// histBins buckets the guardband histogram over [0, histMax): the
	// percentile resolution is histMax/histBins ≈ 0.1% guardband.
	histBins = 1024
	histMax  = 1.0
	// shardSize chips form one unit of parallel work. It is a multiple
	// of 64 so shards never share a violation-bitset word, and it is
	// fixed — never derived from the worker count — so the shard
	// decomposition itself is deterministic.
	shardSize = 4096
)

// EpochStats is one row of the fleet trajectory: the guardband
// distribution and violation state of the whole population at the end
// of an epoch.
type EpochStats struct {
	Epoch int     `json:"epoch"`
	Years float64 `json:"years"` // end-of-epoch service time
	Phase string  `json:"phase"`

	MeanGuardband float64 `json:"mean_guardband"`
	P50Guardband  float64 `json:"p50_guardband"`
	P95Guardband  float64 `json:"p95_guardband"`
	P99Guardband  float64 `json:"p99_guardband"`
	MaxGuardband  float64 `json:"max_guardband"`

	// ViolatedFraction is the cumulative fraction of the fleet whose
	// guardband has ever exceeded the provisioned limit; 1 minus it is
	// the lifetime yield at this epoch.
	ViolatedFraction float64 `json:"violated_fraction"`

	// MeanVTHShift is the fleet-mean relative VTH shift per structure,
	// in Config.Structures order.
	MeanVTHShift []float64 `json:"mean_vth_shift"`
}

// Engine advances a fleet through its schedule epoch by epoch. It is
// not safe for concurrent use; Step itself fans out internally.
type Engine struct {
	cfg        Config
	epochTotal int
	phaseOf    []int16 // epoch -> phase index

	// Per-chip sampled parameters, recomputed deterministically from
	// (Seed, Sigma) — never serialized.
	kStress, kRelax, vthScale []float64 // vthScale folds MaxVTHShift/N0 and the chip's Vth0 spread

	// Population state: trap density per chip per structure (chip-major)
	// and the first-violation bitset. This plus the accumulated stats is
	// the whole checkpoint payload.
	epoch    int
	nit      []float64
	violated []uint64
	stats    []EpochStats

	// Current-phase affine step coefficients. Within an epoch a real
	// workload interleaves stress and recovery at cycle granularity —
	// far below the epoch length — so the engine integrates the
	// duty-averaged reaction-diffusion dynamics
	//
	//	dN/dt = d·KStress·(N0-N) - (1-d)·KRelax·N
	//
	// which is exact for infinitesimal interleaving and solves in closed
	// form to nit' = m·nit + c with λ = d·KStress + (1-d)·KRelax,
	// m = exp(-λ·dt) and c = Neq·(1-m) for Neq = N0·d·KStress/λ. The
	// fixed point Neq equals nbti.Params.EquilibriumTraps(d) exactly
	// (guarded by TestEquilibriumConvergence). Rebuilt on phase entry,
	// so steady phases cost one multiply-add per device per epoch.
	coefPhase int
	coefM     []float64
	coefC     []float64
}

// New builds a fleet engine at epoch zero. Chip parameters are sampled
// here; the population starts unstressed.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, coefPhase: -1}
	for pi, ph := range cfg.Phases {
		n := int(math.Round(ph.Years / cfg.EpochYears))
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			e.phaseOf = append(e.phaseOf, int16(pi))
		}
	}
	e.epochTotal = len(e.phaseOf)
	pop, S := cfg.Population, len(cfg.Structures)
	e.nit = make([]float64, pop*S)
	e.violated = make([]uint64, (pop+63)/64)
	e.kStress = make([]float64, pop)
	e.kRelax = make([]float64, pop)
	e.vthScale = make([]float64, pop)
	base := cfg.Params.MaxVTHShift / cfg.Params.N0
	for c := 0; c < pop; c++ {
		ks, kr, vm := chipParams(cfg.Seed, cfg.Sigma, c)
		e.kStress[c] = cfg.Params.KStress * ks
		e.kRelax[c] = cfg.Params.KRelax * kr
		e.vthScale[c] = base * vm
	}
	e.coefM = make([]float64, pop*S)
	e.coefC = make([]float64, pop*S)
	return e, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Epoch returns the next epoch to simulate (== completed epochs).
func (e *Engine) Epoch() int { return e.epoch }

// TotalEpochs returns the schedule length in epochs.
func (e *Engine) TotalEpochs() int { return e.epochTotal }

// Done reports whether the schedule has been fully simulated.
func (e *Engine) Done() bool { return e.epoch >= e.epochTotal }

// Stats returns the per-epoch fleet aggregates accumulated so far. The
// slice is owned by the engine; callers must not modify it.
func (e *Engine) Stats() []EpochStats { return e.stats }

// LastStats returns the most recent epoch row, if any. A freshly built
// (or epoch-zero restored) engine has none.
func (e *Engine) LastStats() (EpochStats, bool) {
	if len(e.stats) == 0 {
		return EpochStats{}, false
	}
	return e.stats[len(e.stats)-1], true
}

// shardAgg is one worker's integer accumulator for an epoch.
type shardAgg struct {
	sumG    uint64
	maxG    uint64
	newViol uint64
	hist    [histBins]uint64
	sumVTH  []uint64
}

// buildCoefs precomputes the affine per-epoch step for phase pi across
// the population, sharded over the workers.
func (e *Engine) buildCoefs(pi, workers int) {
	ph := e.cfg.Phases[pi]
	S := len(e.cfg.Structures)
	dt := e.cfg.EpochYears
	n0 := e.cfg.Params.N0
	e.forEachShard(workers, func(lo, hi int, _ *shardAgg) {
		for c := lo; c < hi; c++ {
			ks, kr := e.kStress[c], e.kRelax[c]
			for s := 0; s < S; s++ {
				d := ph.Duty[s]
				create := d * ks
				lambda := create + (1-d)*kr
				i := c*S + s
				if lambda == 0 {
					e.coefM[i], e.coefC[i] = 1, 0
					continue
				}
				m := math.Exp(-lambda * dt)
				e.coefM[i] = m
				e.coefC[i] = n0 * create / lambda * (1 - m)
			}
		}
	})
	e.coefPhase = pi
}

// forEachShard runs fn over fixed-size population shards on a worker
// pool. Shards are disjoint chip ranges, so fn may write per-chip state
// freely; each worker gets its own aggregate to fill.
func (e *Engine) forEachShard(workers int, fn func(lo, hi int, agg *shardAgg)) []*shardAgg {
	pop := e.cfg.Population
	shards := (pop + shardSize - 1) / shardSize
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	aggs := make([]*shardAgg, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		agg := &shardAgg{sumVTH: make([]uint64, len(e.cfg.Structures))}
		aggs[w] = agg
		go func() {
			defer wg.Done()
			for {
				si := int(next.Add(1)) - 1
				if si >= shards {
					return
				}
				lo := si * shardSize
				hi := lo + shardSize
				if hi > pop {
					hi = pop
				}
				fn(lo, hi, agg)
			}
		}()
	}
	wg.Wait()
	return aggs
}

// Step simulates one epoch across the whole fleet and appends its
// aggregate row. workers <= 0 uses GOMAXPROCS; the result is
// bit-identical for any worker count.
func (e *Engine) Step(workers int) EpochStats {
	if e.Done() {
		panic("lifetime: Step past the end of the schedule")
	}
	pi := int(e.phaseOf[e.epoch])
	if pi != e.coefPhase {
		e.buildCoefs(pi, workers)
	}
	S := len(e.cfg.Structures)
	limit := e.cfg.Limit
	delay := e.cfg.Delay
	const binScale = histBins / histMax
	aggs := e.forEachShard(workers, func(lo, hi int, agg *shardAgg) {
		for c := lo; c < hi; c++ {
			vscale := e.vthScale[c]
			worst := 0.0
			for s := 0; s < S; s++ {
				i := c*S + s
				v := e.nit[i]*e.coefM[i] + e.coefC[i]
				e.nit[i] = v
				shift := v * vscale
				agg.sumVTH[s] += uint64(shift*qScale + 0.5)
				if g := delay.Guardband(shift); g > worst {
					worst = g
				}
			}
			q := uint64(worst*qScale + 0.5)
			agg.sumG += q
			if q > agg.maxG {
				agg.maxG = q
			}
			bin := int(worst * binScale)
			if bin >= histBins {
				bin = histBins - 1
			}
			agg.hist[bin]++
			if worst > limit {
				if w, m := c>>6, uint64(1)<<uint(c&63); e.violated[w]&m == 0 {
					e.violated[w] |= m
					agg.newViol++
				}
			}
		}
	})

	// Merge: plain integer sums and maxes, order-irrelevant.
	total := &shardAgg{sumVTH: make([]uint64, S)}
	for _, a := range aggs {
		total.sumG += a.sumG
		total.newViol += a.newViol
		if a.maxG > total.maxG {
			total.maxG = a.maxG
		}
		for b := range total.hist {
			total.hist[b] += a.hist[b]
		}
		for s := range total.sumVTH {
			total.sumVTH[s] += a.sumVTH[s]
		}
	}

	pop := uint64(e.cfg.Population)
	violated := uint64(0)
	for _, w := range e.violated {
		violated += uint64(bits.OnesCount64(w))
	}
	st := EpochStats{
		Epoch:            e.epoch,
		Years:            float64(e.epoch+1) * e.cfg.EpochYears,
		Phase:            e.cfg.Phases[pi].Name,
		MeanGuardband:    float64(total.sumG) / qScale / float64(pop),
		P50Guardband:     percentile(&total.hist, pop, 0.50),
		P95Guardband:     percentile(&total.hist, pop, 0.95),
		P99Guardband:     percentile(&total.hist, pop, 0.99),
		MaxGuardband:     float64(total.maxG) / qScale,
		ViolatedFraction: float64(violated) / float64(pop),
		MeanVTHShift:     make([]float64, S),
	}
	for s := range st.MeanVTHShift {
		st.MeanVTHShift[s] = float64(total.sumVTH[s]) / qScale / float64(pop)
	}
	e.stats = append(e.stats, st)
	e.epoch++
	return st
}

// percentile returns the upper edge of the histogram bin where the
// cumulative count first reaches p of the population — an approximation
// with histMax/histBins resolution, exact in the aggregate sense that
// at least p of the fleet needs no more than the returned guardband.
func percentile(hist *[histBins]uint64, pop uint64, p float64) float64 {
	target := uint64(math.Ceil(p * float64(pop)))
	if target < 1 {
		target = 1
	}
	cum := uint64(0)
	for b := 0; b < histBins; b++ {
		cum += hist[b]
		if cum >= target {
			return float64(b+1) * (histMax / histBins)
		}
	}
	return histMax
}

// Run simulates every remaining epoch and returns the full stats
// trajectory, including epochs restored from a checkpoint.
func (e *Engine) Run(workers int) []EpochStats {
	for !e.Done() {
		e.Step(workers)
	}
	return e.stats
}

// FirstViolationYears returns the service time at the end of the first
// epoch in which any chip violated the guardband limit, or -1 if the
// fleet (so far) never violated.
func (e *Engine) FirstViolationYears() float64 {
	for _, st := range e.stats {
		if st.ViolatedFraction > 0 {
			return st.Years
		}
	}
	return -1
}
