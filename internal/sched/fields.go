// Package sched models the out-of-order scheduler (reservation stations)
// of paper §4.5 with the field layout of Table 2, and applies the
// per-field NBTI techniques chosen by the Figure 3 casuistic: ALL1 for
// near-constant control bits, ALL1-K%/ALL0-K% for moderately biased
// bits, ISV for the wide data fields, nothing for self-balanced tags and
// the unprotectable valid bit.
package sched

import "fmt"

// FieldID identifies a scheduler field (Table 2).
type FieldID int

// The fields of Table 2, in layout order.
const (
	FieldValid FieldID = iota
	FieldLatency
	FieldPort
	FieldTaken
	FieldMOBid
	FieldTOS
	FieldFlags
	FieldShift1
	FieldShift2
	FieldDSTTag
	FieldSRC1Tag
	FieldSRC2Tag
	FieldReady1
	FieldReady2
	FieldSRC1Data
	FieldSRC2Data
	FieldImm
	FieldOpcode
	NumFields
)

// FieldSpec describes one scheduler field.
type FieldSpec struct {
	ID          FieldID
	Name        string
	Bits        int
	Description string
	// DataField marks fields that are released at issue time rather
	// than at entry deallocation (SRC data and immediate: "available
	// 70-75% of the time on average because they remain unused beyond
	// the allocation", §4.5).
	DataField bool
	// Plot reports whether the field appears in Figure 8 (opcode is
	// excluded: "Opcode bits are not shown").
	Plot bool
}

var fieldSpecs = [NumFields]FieldSpec{
	{FieldValid, "valid", 1, "Slot is valid", false, true},
	{FieldLatency, "latency", 5, "Latency of the uop", false, true},
	{FieldPort, "port", 5, "Port for issue (loads and stores are not in the scheduler)", false, true},
	{FieldTaken, "taken", 1, "The branch is taken", false, true},
	{FieldMOBid, "MOB id", 6, "Memory Order Buffer identifier", false, true},
	{FieldTOS, "tos", 3, "Top of stack position for FPs", false, true},
	{FieldFlags, "flags", 6, "Flags for the uop", false, true},
	{FieldShift1, "shift1", 1, "Source 1 must be shifted (AH, BH, CH and DH)", false, true},
	{FieldShift2, "shift2", 1, "Source 2 must be shifted (AH, BH, CH and DH)", false, true},
	{FieldDSTTag, "DST tag", 7, "Destination register", false, true},
	{FieldSRC1Tag, "SRC1 tag", 7, "Source 1 register", false, true},
	{FieldSRC2Tag, "SRC2 tag", 7, "Source 2 register", false, true},
	{FieldReady1, "ready1", 1, "Source 1 is ready for issue", false, true},
	{FieldReady2, "ready2", 1, "Source 2 is ready for issue", false, true},
	{FieldSRC1Data, "SRC1 data", 32, "Source 1 data for data capture schedulers", true, true},
	{FieldSRC2Data, "SRC2 data", 32, "Source 2 data for data capture schedulers", true, true},
	{FieldImm, "immediate", 16, "Immediate data field", true, true},
	{FieldOpcode, "opcode", 12, "Opcode for the uop. Not shown in Figure 8", false, false},
}

// Specs returns the Table 2 field layout. The slice is shared; callers
// must not modify it.
func Specs() []FieldSpec { return fieldSpecs[:] }

// Spec returns the descriptor of one field.
func Spec(id FieldID) FieldSpec {
	if id < 0 || id >= NumFields {
		panic(fmt.Sprintf("sched: unknown field %d", id))
	}
	return fieldSpecs[id]
}

// TotalBits returns the bits per scheduler entry (sum of Table 2).
func TotalBits() int {
	n := 0
	for _, f := range fieldSpecs {
		n += f.Bits
	}
	return n
}

// String returns the field name.
func (id FieldID) String() string {
	if id < 0 || id >= NumFields {
		return fmt.Sprintf("field(%d)", int(id))
	}
	return fieldSpecs[id].Name
}

// Dispatch carries the raw field values of a uop entering the scheduler.
// The pipeline fills it from a trace uop plus rename state.
type Dispatch struct {
	Latency  int
	Port     int // issue port index, stored one-hot in the port field
	Taken    bool
	MOBid    int
	TOS      int
	Flags    uint8
	Shift1   bool
	Shift2   bool
	DstTag   int
	Src1Tag  int
	Src2Tag  int
	Ready1   bool
	Ready2   bool
	Src1Data uint64
	Src2Data uint64
	Imm      uint64
	HasImm   bool
	HasDst   bool
	HasSrc1  bool
	HasSrc2  bool
	MemUop   bool
	Opcode   uint16
}

// fieldValue extracts the stored bit pattern for a field from a dispatch.
func fieldValue(d *Dispatch, id FieldID) uint64 {
	switch id {
	case FieldValid:
		return 1
	case FieldLatency:
		return uint64(d.Latency) & 0x1F
	case FieldPort:
		return 1 << uint(d.Port) & 0x1F
	case FieldTaken:
		return b2u(d.Taken)
	case FieldMOBid:
		return uint64(d.MOBid) & 0x3F
	case FieldTOS:
		return uint64(d.TOS) & 0x7
	case FieldFlags:
		return uint64(d.Flags) & 0x3F
	case FieldShift1:
		return b2u(d.Shift1)
	case FieldShift2:
		return b2u(d.Shift2)
	case FieldDSTTag:
		return uint64(clampTag(d.DstTag))
	case FieldSRC1Tag:
		return uint64(clampTag(d.Src1Tag))
	case FieldSRC2Tag:
		return uint64(clampTag(d.Src2Tag))
	case FieldReady1:
		return b2u(d.Ready1)
	case FieldReady2:
		return b2u(d.Ready2)
	case FieldSRC1Data:
		return d.Src1Data & 0xFFFFFFFF
	case FieldSRC2Data:
		return d.Src2Data & 0xFFFFFFFF
	case FieldImm:
		return d.Imm & 0xFFFF
	case FieldOpcode:
		return uint64(d.Opcode) & 0xFFF
	default:
		panic("sched: unknown field")
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func clampTag(t int) int {
	if t < 0 {
		return 0
	}
	return t & 0x7F
}
