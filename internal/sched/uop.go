package sched

import "penelope/internal/trace"

// FromUop builds the dispatch field values for a trace uop. The physical
// register tags come from the pipeline's renamer, -1 when the uop has no
// such operand (the tag cell is then left untouched, which is part of
// why tags self-balance); ready1/ready2 say whether the source operands
// were captured at dispatch (data-capture scheduler: only captured
// operands occupy the SRC data cells).
func FromUop(u *trace.Uop, dstTag, src1Tag, src2Tag int, ready1, ready2 bool) Dispatch {
	return Dispatch{
		HasDst:   dstTag >= 0,
		HasSrc1:  src1Tag >= 0,
		HasSrc2:  src2Tag >= 0,
		Latency:  u.Class.Latency(),
		Port:     u.Class.Port(),
		Taken:    u.Taken,
		MOBid:    u.MOBid,
		TOS:      u.TOS,
		Flags:    u.Flags,
		Shift1:   u.Shift1,
		Shift2:   u.Shift2,
		DstTag:   dstTag,
		Src1Tag:  src1Tag,
		Src2Tag:  src2Tag,
		Ready1:   ready1,
		Ready2:   ready2,
		Src1Data: u.SrcVal1,
		Src2Data: u.SrcVal2,
		Imm:      u.Imm,
		HasImm:   u.HasImm,
		MemUop:   u.Class.IsMem(),
		Opcode:   u.Opcode,
	}
}
