package sched

import (
	"fmt"
	"strings"

	"penelope/internal/mitigation"
)

// FieldReport is the measured state of one scheduler field.
type FieldReport struct {
	ID        FieldID
	Name      string
	Bits      int
	Occupancy float64   // fraction of time the field's cells hold live data
	Biases    []float64 // per-bit zero bias over total time
	BusyBias  []float64 // per-bit zero bias over busy time (for profiling)
	WorstBias float64   // worst cell bias across the field's bits
	Technique mitigation.Technique
}

// Report is a full scheduler measurement.
type Report struct {
	Fields           []FieldReport
	EntryOccupancy   float64
	DataOccupancy    float64
	PortAvailability float64
	Dispatches       uint64
	RepairWrites     uint64
	RepairDiscarded  uint64
}

// WorstBias returns the worst cell bias across plottable fields (Figure
// 8 excludes the opcode).
func (r Report) WorstBias() float64 {
	worst := 0.5
	for _, f := range r.Fields {
		if !Spec(f.ID).Plot {
			continue
		}
		if f.WorstBias > worst {
			worst = f.WorstBias
		}
	}
	return worst
}

// BitSeries flattens the plottable fields' per-bit biases in Table 2
// order — the Figure 8 x-axis.
func (r Report) BitSeries() []float64 {
	var out []float64
	for _, f := range r.Fields {
		if !Spec(f.ID).Plot {
			continue
		}
		out = append(out, f.Biases...)
	}
	return out
}

// String renders a per-field summary table.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %5s %10s %10s %-14s\n", "field", "bits", "occupancy", "worstbias", "technique")
	for _, f := range r.Fields {
		fmt.Fprintf(&sb, "%-12s %5d %9.1f%% %9.1f%% %-14s\n",
			f.Name, f.Bits, f.Occupancy*100, f.WorstBias*100, f.Technique)
	}
	fmt.Fprintf(&sb, "entry occupancy %.1f%%, data occupancy %.1f%%, ports available %.1f%%\n",
		r.EntryOccupancy*100, r.DataOccupancy*100, r.PortAvailability*100)
	return sb.String()
}

// Report computes the measurement summary. Finish must have been called.
// plan may be nil (baseline); when set, each field is annotated with its
// dominant technique.
func (s *Scheduler) Report() Report {
	r := Report{
		Fields:           make([]FieldReport, 0, NumFields),
		EntryOccupancy:   s.occ.Average(),
		DataOccupancy:    s.dataOcc.Average(),
		PortAvailability: s.portStats.Availability(),
		Dispatches:       s.dispatches,
		RepairWrites:     s.repairWrites,
		RepairDiscarded:  s.repairDiscarded,
	}
	// One backing array per field for its two bit series, sized up front:
	// Report runs once per pipeline run, and the per-field appends were a
	// measurable slice of the Fig 8 sweep's allocations.
	for f := FieldID(0); f < NumFields; f++ {
		spec := fieldSpecs[f]
		fr := FieldReport{ID: f, Name: spec.Name, Bits: spec.Bits}
		b := s.bias[f]
		// Per-field occupancy comes from the tracker itself: data-
		// capture fields and the MOB id are live less often than the
		// entry (§4.5: "some fields ... are available 70-75% of the
		// time").
		if total := b.TotalTime(); total > 0 {
			fr.Occupancy = float64(b.BusyTime()) / float64(total)
		}
		series := make([]float64, 0, 2*spec.Bits)
		series = b.AppendBiases(series)
		for i := 0; i < spec.Bits; i++ {
			series = append(series, b.BusyZeroBias(i))
		}
		fr.Biases = series[:spec.Bits:spec.Bits]
		fr.BusyBias = series[spec.Bits:]
		fr.WorstBias = b.WorstCellBias()
		if s.cfg.Plan != nil {
			fr.Technique = s.cfg.Plan.Technique(f)
		}
		r.Fields = append(r.Fields, fr)
	}
	return r
}

// BuildPlan classifies every bit of every field from a baseline
// measurement, per the Figure 3 casuistic (§4.5: profiling on a subset of
// traces chooses the techniques and K values used everywhere else).
//
// The valid bit is forced to "uncovered": its contents are always live.
func BuildPlan(baseline Report) *Plan {
	p := &Plan{}
	for _, fr := range baseline.Fields {
		plans := make([]mitigation.BitPlan, fr.Bits)
		for bit := 0; bit < fr.Bits; bit++ {
			if fr.ID == FieldValid {
				plans[bit] = mitigation.BitPlan{Technique: mitigation.TechUncovered}
				continue
			}
			plans[bit] = mitigation.ClassifyBit(fr.Occupancy, fr.BusyBias[bit])
		}
		p.Fields[fr.ID] = plans
	}
	return p
}
