package sched

import (
	"math/rand"
	"testing"

	"penelope/internal/mitigation"
	"penelope/internal/trace"
)

func TestTotalBits(t *testing.T) {
	if got := TotalBits(); got != 144 {
		t.Errorf("TotalBits = %d, want 144 (Table 2)", got)
	}
	if len(Specs()) != int(NumFields) {
		t.Error("Specs length mismatch")
	}
	if Spec(FieldOpcode).Plot {
		t.Error("opcode must be excluded from Figure 8")
	}
	if !Spec(FieldSRC1Data).DataField || Spec(FieldValid).DataField {
		t.Error("data-field marking wrong")
	}
	if FieldLatency.String() != "latency" || FieldID(99).String() == "" {
		t.Error("field names wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Spec(99) did not panic")
		}
	}()
	Spec(FieldID(99))
}

func TestConfigValidate(t *testing.T) {
	if (Config{Entries: 0, AllocPorts: 1}).Validate() == nil {
		t.Error("zero entries should be invalid")
	}
	if (Config{Entries: 32, AllocPorts: 0}).Validate() == nil {
		t.Error("zero ports should be invalid")
	}
	defer func() {
		if recover() == nil {
			t.Error("New with bad config did not panic")
		}
	}()
	New(Config{})
}

func TestDispatchIssueReleaseLifecycle(t *testing.T) {
	s := New(Config{Entries: 2, AllocPorts: 4})
	d := Dispatch{Latency: 3, Port: 2, Src1Data: 0xABCD}
	slot, ok := s.Dispatch(&d, 1)
	if !ok || s.FreeSlots() != 1 {
		t.Fatal("dispatch failed")
	}
	s.MarkReady(slot, true, true, 2)
	s.Issue(slot, 3)
	s.Release(slot, 5)
	if s.FreeSlots() != 2 {
		t.Fatal("release did not free the slot")
	}
	// Filling both slots blocks the third dispatch.
	s.Dispatch(&d, 6)
	s.Dispatch(&d, 6)
	if _, ok := s.Dispatch(&d, 6); ok {
		t.Fatal("full scheduler accepted a dispatch")
	}
}

func TestLifecyclePanics(t *testing.T) {
	s := New(Config{Entries: 2, AllocPorts: 4})
	slot, _ := s.Dispatch(&Dispatch{}, 1)
	s.Issue(slot, 2)
	for _, f := range []func(){
		func() { s.Issue(slot, 3) },               // double issue
		func() { s.MarkReady(1, true, false, 3) }, // free slot
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	s.Release(slot, 4)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	s.Release(slot, 5)
}

// driveScheduler runs a synthetic pipeline over the scheduler: dispatch
// from a trace, issue after a queue delay, release shortly after,
// targeting the paper's ~63% occupancy.
func driveScheduler(s *Scheduler, tr *trace.Trace, cycles uint64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	type inflight struct {
		slot          int
		issueAt, done uint64
	}
	var live []inflight
	tags := 0
	for cyc := uint64(0); cyc < cycles; cyc++ {
		// Retire matured entries.
		keep := live[:0]
		for _, fl := range live {
			switch {
			case fl.done <= cyc:
				s.Release(fl.slot, cyc)
			default:
				if fl.issueAt == cyc {
					s.MarkReady(fl.slot, true, true, cyc)
					s.Issue(fl.slot, cyc)
				}
				keep = append(keep, fl)
			}
		}
		live = keep
		// Dispatch up to 2 uops per cycle; waiting times are tuned so
		// occupancy lands near the paper's 63%.
		for n := 0; n < 2; n++ {
			if rng.Float64() > 0.50 {
				continue
			}
			u, ok := tr.Next()
			if !ok {
				tr.Reset()
				u, _ = tr.Next()
			}
			d := FromUop(&u, tags%128, (tags+7)%128, (tags+13)%128, rng.Float64() < 0.5, rng.Float64() < 0.5)
			tags++
			slot, ok := s.Dispatch(&d, cyc)
			if !ok {
				break
			}
			wait := uint64(6 + rng.Intn(27))
			live = append(live, inflight{slot: slot, issueAt: cyc + wait, done: cyc + wait + 2})
		}
	}
	s.Finish(cycles)
}

func newTestScheduler(plan *Plan) *Scheduler {
	return New(Config{Entries: 32, AllocPorts: 4, RINVPeriod: 64, Plan: plan})
}

func TestBaselineSchedulerBias(t *testing.T) {
	s := newTestScheduler(nil)
	driveScheduler(s, trace.NewTrace(trace.Multimedia, 1, 40000), 30000, 1)
	r := s.Report()
	// §4.5: occupancy around 63%, some flags/shift bits near 100% bias.
	if r.EntryOccupancy < 0.40 || r.EntryOccupancy > 0.85 {
		t.Errorf("entry occupancy = %.2f, want moderate-high (~0.63)", r.EntryOccupancy)
	}
	if r.DataOccupancy >= r.EntryOccupancy {
		t.Error("data fields release at issue; their occupancy must be lower")
	}
	if got := r.WorstBias(); got < 0.90 {
		t.Errorf("baseline worst bias = %.3f, want near 1.0", got)
	}
	shift := r.Fields[FieldShift1]
	if shift.Biases[0] < 0.90 {
		t.Errorf("shift1 zero bias = %.3f, want near 1 (rare partial-register uops)", shift.Biases[0])
	}
	if len(r.BitSeries()) != TotalBits()-Spec(FieldOpcode).Bits {
		t.Errorf("BitSeries length = %d", len(r.BitSeries()))
	}
	if r.String() == "" {
		t.Error("report should render")
	}
}

func TestBuildPlanMatchesPaperClassification(t *testing.T) {
	s := newTestScheduler(nil)
	driveScheduler(s, trace.NewTrace(trace.Multimedia, 2, 40000), 30000, 2)
	base := s.Report()
	plan := BuildPlan(base)

	// §4.5's classification: flags, shift1, shift2 and the top latency
	// bits are ALL1 (stored zeros nearly all busy time, occupancy·bias
	// > 50%); SRC data and immediate are ISV (free > 50%); tags and MOB
	// id are self-balanced; the valid bit is uncovered.
	for _, f := range []FieldID{FieldShift1, FieldShift2} {
		if got := plan.Technique(f); got != mitigation.TechALL1 {
			t.Errorf("%v technique = %v, want ALL1", f, got)
		}
	}
	for _, f := range []FieldID{FieldSRC1Data, FieldSRC2Data, FieldImm} {
		if got := plan.Technique(f); got != mitigation.TechISV {
			t.Errorf("%v technique = %v, want ISV", f, got)
		}
	}
	for _, f := range []FieldID{FieldDSTTag, FieldSRC1Tag, FieldSRC2Tag, FieldMOBid} {
		got := plan.Technique(f)
		if got != mitigation.TechSelfBalanced {
			t.Errorf("%v technique = %v, want self-balanced", f, got)
		}
	}
	if got := plan.Technique(FieldValid); got != mitigation.TechUncovered {
		t.Errorf("valid technique = %v, want uncovered", got)
	}
	// Flags: the high flag bits (OF/PF/AF rare) must be ALL1.
	flagsPlan := plan.Fields[FieldFlags]
	if flagsPlan[3].Technique != mitigation.TechALL1 {
		t.Errorf("flags bit OF technique = %v, want ALL1", flagsPlan[3].Technique)
	}
}

// TestProtectedSchedulerBias reproduces Figure 8 / §4.5: applying the
// techniques pulls the worst bias from ~100% down to the valid-bit /
// ALL1 level (paper: 63.2%), with most bits near 50%.
func TestProtectedSchedulerBias(t *testing.T) {
	// Profile on one trace...
	prof := newTestScheduler(nil)
	driveScheduler(prof, trace.NewTrace(trace.Multimedia, 3, 40000), 30000, 3)
	plan := BuildPlan(prof.Report())

	// ...evaluate on another (the paper profiles on 100 traces, runs on
	// the remaining 431).
	s := newTestScheduler(plan)
	driveScheduler(s, trace.NewTrace(trace.Multimedia, 4, 40000), 30000, 4)
	r := s.Report()

	if r.RepairWrites == 0 {
		t.Fatal("no repair writes happened")
	}
	worst := r.WorstBias()
	if worst > 0.80 {
		t.Errorf("protected worst bias = %.3f, want well below baseline (~0.63 in paper)", worst)
	}
	// Data fields must balance near 50%.
	for _, f := range []FieldID{FieldSRC1Data, FieldSRC2Data, FieldImm} {
		if b := r.Fields[f].WorstBias; b > 0.60 {
			t.Errorf("%v worst bias = %.3f, want ≈ 0.5 under ISV", f, b)
		}
	}
	// The valid bit remains at its occupancy-driven bias.
	validBias := r.Fields[FieldValid].WorstBias
	if validBias < 0.52 {
		t.Errorf("valid bit bias = %.3f; it cannot be repaired", validBias)
	}
}

func TestPortAvailabilityReported(t *testing.T) {
	s := newTestScheduler(nil)
	driveScheduler(s, trace.NewTrace(trace.Office, 0, 30000), 20000, 5)
	r := s.Report()
	if r.PortAvailability <= 0 || r.PortAvailability > 1 {
		t.Errorf("port availability = %v", r.PortAvailability)
	}
	if r.Dispatches == 0 {
		t.Error("no dispatches recorded")
	}
}
