package sched

import (
	"fmt"

	"penelope/internal/mitigation"
	"penelope/internal/stats"
)

// Config describes a scheduler instance.
type Config struct {
	// Entries is the number of reservation-station slots (32 in §4.5).
	Entries int
	// AllocPorts bounds dispatches — and therefore leftover repair
	// writes — per cycle ("on average 77% of the ports from allocate
	// are available").
	AllocPorts int
	// RINVPeriod is the resampling period of the ISV fields' RINV in
	// cycles ("every some thousands or millions of cycles").
	RINVPeriod uint64
	// Plan, when non-nil, enables the NBTI techniques. A nil plan is
	// the measured baseline.
	Plan *Plan
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Entries <= 0:
		return fmt.Errorf("sched: entries must be positive")
	case c.AllocPorts <= 0:
		return fmt.Errorf("sched: need at least one allocate port")
	default:
		return nil
	}
}

// Plan assigns a repair technique to every bit of every field.
type Plan struct {
	Fields [NumFields][]mitigation.BitPlan
}

// Technique returns the dominant technique of a field (the technique of
// the majority of its bits), for reporting. Ties break toward the
// technique of the lowest bit so the answer is deterministic (a map
// iteration here once made tied fields flip between runs). Counting uses
// a dense per-technique array: Technique runs once per field per Report,
// and the map it used to allocate showed up in the sweep profiles.
func (p *Plan) Technique(id FieldID) mitigation.Technique {
	var counts [mitigation.NumTechniques]int
	best, bestN := mitigation.TechNone, 0
	for _, bp := range p.Fields[id] {
		counts[bp.Technique]++
		if n := counts[bp.Technique]; n > bestN {
			best, bestN = bp.Technique, n
		}
	}
	return best
}

// repairProg is one field's repair plan compiled to bit masks. Bits
// outside every mask are ALL0: they repair to "0" and need no work.
type repairProg struct {
	present bool   // the plan covers this field
	ones    uint64 // ALL1 bits: written to "1" on every repair
	stale   uint64 // self-balanced/uncovered bits: keep current contents
	isv     uint64 // ISV bits: RINV contents while inverting, else stale
	kbits   []kRepairBit
}

// kRepairBit is one ALL1-K%/ALL0-K% bit; Tick must run once per repair
// in bit order to advance the shared duty counter exactly as the
// uncompiled per-bit loop did.
type kRepairBit struct {
	mask uint64 // 1 << bit position
	ctr  *mitigation.DutyCounter
	zero bool // ALL0-K%: repair level is the counter's complement
}

// valueTableBits bounds the field width accounted through dense
// per-value time tables: the 12-bit opcode is the widest narrow field,
// and 2·2¹²·8 B = 64 KB per scheduler keeps the tables cheap to zero.
const valueTableBits = 12

// fieldRun is the pending accounting run of one (slot, field) pair: the
// cycles accrued under the field's current value, split by the busy-live
// state they were observed in.
type fieldRun struct {
	last uint64 // cycle the pending segment starts
	busy uint64 // pending busy-live cycles under the current value
	free uint64 // pending free cycles under the current value
}

type entry struct {
	busy   bool
	issued bool
	values [NumFields]uint64
	// live marks fields holding meaningful data: data-capture fields
	// are live only when the operand was captured at dispatch and die
	// at issue; the MOB id is live only for memory uops.
	live [NumFields]bool
	// invContent marks fields currently holding RINV-inverted repair
	// contents (meaningful while free; cleared when real data arrives).
	invContent [NumFields]bool
}

// isvClock implements the timestamp rule of §3.2.2: entries are written
// with inverted contents only while cumulative inverted-cell time lags
// half the total cell time, pinning inverted occupancy at 50%. Busy
// entries hold real (non-inverted) data, so only free inverted cells
// accumulate inverted time. This is the "track all entries" variant the
// paper notes is statistically identical to sampling one fixed entry.
type isvClock struct {
	cells         int // pool size (entries, or 2·entries when shared)
	invertedCells int // cells currently holding inverted contents
	invertedTime  uint64
	totalTime     uint64
}

func (c *isvClock) advance(dt uint64) {
	c.invertedTime += uint64(c.invertedCells) * dt
	c.totalTime += uint64(c.cells) * dt
}

// wantInvert reports whether the next release should write inverted
// contents.
func (c *isvClock) wantInvert() bool {
	return c.invertedTime*2 <= c.totalTime
}

// Scheduler is the reservation-station model.
type Scheduler struct {
	cfg Config

	entries []entry
	// freeList is a FIFO so slots rotate through allocation; a LIFO
	// would leave low slots stagnating with one value at moderate
	// occupancy, defeating the balancing.
	freeList []int
	freeHead int

	// Per-field aggregated bias trackers. runs[slot][f] carries the
	// pending value-run of (slot, f): the busy-live and free cycles the
	// field has accrued under its current value since the last expansion.
	// State transitions (dispatch, issue, release) merely move the
	// boundary between the two pending counters; the run is expanded into
	// the bias tracker only when the stored value actually changes, so a
	// field that keeps its contents across whole lifecycles — latencies,
	// flags, stale data — is accounted as one long interval instead of
	// one per event. The totals are identical (Observe is additive over
	// equal-value intervals) and the per-bit expansion runs a fraction as
	// often.
	bias [NumFields]*stats.BitBias
	runs [][NumFields]fieldRun
	// valueTime[f] aggregates expanded runs per stored value for narrow
	// fields (width ≤ valueTableBits): slot 2v holds busy time, 2v+1
	// free time. Narrow fields cycle through a handful of values
	// (latencies, ports, opcodes, tags), so almost every expansion is
	// one indexed add; the per-bit Observe walk happens once per
	// distinct value at Finish. Wide fields (SRC data, immediate) keep
	// the direct path — their value space is too large to table.
	valueTime [NumFields][]uint64

	occ       *stats.Occupancy
	dataOcc   *stats.Occupancy // occupancy of the SRC1 data field cells
	busyCount int
	dataCount int
	lastCycle uint64

	// Allocate-port budget per cycle.
	portCycle uint64
	portUsed  int
	portStats *stats.Utilization

	// ISV machinery: every field has its own RINV (§3.2.2: "independent
	// RINV registers and strategies are used for each field"); SRC1 and
	// SRC2 data share a timestamp clock, the rest have their own (§4.5:
	// "2 timestamps of 10 bits each suffice" for the ISV fields).
	rinv [NumFields]*mitigation.RINV
	isv  [NumFields]*isvClock
	// clocks holds the distinct isvClock instances, so advance need not
	// deduplicate the shared SRC-data clock on every call.
	clocks []*isvClock

	// Duty counters per distinct K, lazily created.
	duty map[int]*mitigation.DutyCounter

	// repair holds the plan compiled into per-field mask programs, so
	// the per-release repair path is a handful of word operations
	// instead of a per-bit technique switch (the switch dominated the
	// Fig 8 sweep profile). Only the ALL1-K%/ALL0-K% bits keep a per-bit
	// walk, because each Tick advances shared duty-counter state.
	repair [NumFields]repairProg

	repairWrites    uint64
	repairDiscarded uint64
	dispatches      uint64
}

// New builds a scheduler.
func New(cfg Config) *Scheduler {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Scheduler{
		cfg:       cfg,
		entries:   make([]entry, cfg.Entries),
		runs:      make([][NumFields]fieldRun, cfg.Entries),
		occ:       stats.NewOccupancy(cfg.Entries),
		dataOcc:   stats.NewOccupancy(cfg.Entries),
		portStats: stats.NewUtilization(cfg.AllocPorts),
		duty:      map[int]*mitigation.DutyCounter{},
	}
	for f := FieldID(0); f < NumFields; f++ {
		s.bias[f] = stats.NewBitBias(fieldSpecs[f].Bits)
		s.rinv[f] = mitigation.NewRINV(fieldSpecs[f].Bits, cfg.RINVPeriod)
		if fieldSpecs[f].Bits <= valueTableBits {
			s.valueTime[f] = make([]uint64, 2<<uint(fieldSpecs[f].Bits))
		}
	}
	// SRC1/SRC2 data share one clock; every other field has its own.
	shared := &isvClock{cells: 2 * cfg.Entries}
	s.isv[FieldSRC1Data] = shared
	s.isv[FieldSRC2Data] = shared
	s.clocks = append(s.clocks, shared)
	for f := FieldID(0); f < NumFields; f++ {
		if s.isv[f] == nil {
			s.isv[f] = &isvClock{cells: cfg.Entries}
			s.clocks = append(s.clocks, s.isv[f])
		}
	}
	for i := 0; i < cfg.Entries; i++ {
		s.freeList = append(s.freeList, i)
	}
	if cfg.Plan != nil {
		s.compilePlan()
	}
	return s
}

// compilePlan folds the plan's per-bit techniques into the repair mask
// programs. Duty counters are resolved here (shared per K exactly like
// the lazy map lookups were) so the repair path never hashes.
func (s *Scheduler) compilePlan() {
	for f := FieldID(0); f < NumFields; f++ {
		plans := s.cfg.Plan.Fields[f]
		if len(plans) == 0 {
			continue
		}
		p := &s.repair[f]
		p.present = true
		for bit, bp := range plans {
			m := uint64(1) << uint(bit)
			switch bp.Technique {
			case mitigation.TechALL1:
				p.ones |= m
			case mitigation.TechALL0:
				// Repairs to "0": no mask contributes the bit.
			case mitigation.TechALL1K:
				p.kbits = append(p.kbits, kRepairBit{mask: m, ctr: s.dutyFor(bp.K)})
			case mitigation.TechALL0K:
				p.kbits = append(p.kbits, kRepairBit{mask: m, ctr: s.dutyFor(bp.K), zero: true})
			case mitigation.TechISV:
				p.isv |= m
			default: // self-balanced, uncovered, unclassified: keep stale
				p.stale |= m
			}
		}
	}
}

// Config returns the scheduler configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// FreeSlots returns the number of available entries.
func (s *Scheduler) FreeSlots() int { return len(s.freeList) - s.freeHead }

func (s *Scheduler) advance(cycle uint64) {
	if cycle > s.lastCycle {
		dt := cycle - s.lastCycle
		s.occ.Observe(s.busyCount, dt)
		s.dataOcc.Observe(s.dataCount, dt)
		s.portStats.Tick(dt)
		for _, c := range s.clocks {
			c.advance(dt)
		}
		s.lastCycle = cycle
	}
}

func (s *Scheduler) refreshPorts(cycle uint64) {
	if cycle != s.portCycle {
		s.portCycle = cycle
		s.portUsed = 0
	}
}

// takePort consumes one allocate port this cycle; repair is true for
// leftover-port repair writes, which may be denied.
func (s *Scheduler) takePort(cycle uint64, repair bool) bool {
	s.refreshPorts(cycle)
	if s.portUsed >= s.cfg.AllocPorts {
		if repair {
			s.portStats.Deny()
			return false
		}
		s.portUsed++
		return true
	}
	s.portStats.Use(s.portUsed, 1)
	s.portUsed++
	return true
}

// touchField closes the current segment of (slot, field) at cycle,
// crediting it to the pending busy or free counter of the field's
// value-run. Callers invoke it just before a busy/live state change;
// the per-bit expansion is deferred until the value itself changes.
func (s *Scheduler) touchField(slot int, f FieldID, cycle uint64) {
	r := &s.runs[slot][f]
	if cycle <= r.last {
		return
	}
	dt := cycle - r.last
	e := &s.entries[slot]
	if e.busy && e.live[f] {
		r.busy += dt
	} else {
		r.free += dt
	}
	r.last = cycle
}

// flushField expands the pending value-run of (slot, field) into the
// field's value table (narrow fields) or bias tracker (wide fields).
// Callers invoke it just before a mutation that changes the stored
// value; state-only mutations use touchField and let the run keep
// accruing.
func (s *Scheduler) flushField(slot int, f FieldID, cycle uint64) {
	s.touchField(slot, f, cycle)
	r := &s.runs[slot][f]
	if r.busy == 0 && r.free == 0 {
		return
	}
	v := s.entries[slot].values[f]
	if t := s.valueTime[f]; t != nil {
		t[2*v] += r.busy
		t[2*v+1] += r.free
		r.busy, r.free = 0, 0
		return
	}
	if r.busy > 0 {
		s.bias[f].Observe(v, r.busy)
		r.busy = 0
	}
	if r.free > 0 {
		s.bias[f].ObserveFree(v, r.free)
		r.free = 0
	}
}

func (s *Scheduler) flushAll(slot int, cycle uint64) {
	for f := FieldID(0); f < NumFields; f++ {
		s.flushField(slot, f, cycle)
	}
}

// dataFields are the data-capture fields released at issue (§4.5).
var dataFields = [...]FieldID{FieldSRC1Data, FieldSRC2Data, FieldImm}

// Dispatch fills a free slot with a uop's fields, consuming one allocate
// port. ok is false when the scheduler is full. d is read-only; it is
// taken by pointer to keep the per-uop hot path copy-free.
func (s *Scheduler) Dispatch(d *Dispatch, cycle uint64) (slot int, ok bool) {
	s.advance(cycle)
	if s.FreeSlots() == 0 {
		return -1, false
	}
	s.takePort(cycle, false)
	slot = s.freeList[s.freeHead]
	s.freeHead++
	if s.freeHead > s.cfg.Entries {
		copy(s.freeList, s.freeList[s.freeHead:])
		s.freeList = s.freeList[:len(s.freeList)-s.freeHead]
		s.freeHead = 0
	}
	e := &s.entries[slot]
	for f := FieldID(0); f < NumFields; f++ {
		// Conditional fields are only written when the uop actually
		// uses them: uncaptured operands arrive over the bypass, uops
		// without an immediate or a MOB slot leave those cells alone —
		// including any repair contents they hold ("they remain unused
		// beyond the allocation or are not used at all", §4.5).
		live := true
		switch f {
		case FieldSRC1Data:
			live = d.Ready1 && d.HasSrc1
		case FieldSRC2Data:
			live = d.Ready2 && d.HasSrc2 && !d.HasImm
		case FieldImm:
			live = d.HasImm
		case FieldMOBid:
			live = d.MemUop
		case FieldDSTTag:
			live = d.HasDst
		case FieldSRC1Tag:
			live = d.HasSrc1
		case FieldSRC2Tag:
			live = d.HasSrc2
		}
		if !live {
			// The cell keeps its contents and stays in free-time
			// accounting (the slot was free, and a dead field of a busy
			// slot is accounted the same way), so its run just extends.
			e.live[f] = false
			continue
		}
		// State always changes (free → busy-live); the per-bit expansion
		// is only needed when the incoming data differs from the cell's
		// current contents — redispatching an equal value (zero results,
		// repeated latencies and flags) just extends the value-run.
		v := fieldValue(d, f)
		if v != e.values[f] {
			s.flushField(slot, f, cycle)
			e.values[f] = v
		} else {
			s.touchField(slot, f, cycle)
		}
		e.live[f] = true
		if e.invContent[f] {
			// Real data overwrites repair contents.
			e.invContent[f] = false
			s.isv[f].invertedCells--
		}
		// Sample write-port data into the RINVs (§4.5: "Sampled values
		// ... can be taken from the register file when read or from
		// bypasses ... immediate values are taken directly from the
		// instruction").
		s.rinv[f].Offer(v, cycle)
	}
	e.busy = true
	e.issued = false
	if e.live[FieldSRC1Data] {
		s.dataCount++
	}
	s.busyCount++
	s.dispatches++
	return slot, true
}

// MarkReady sets the ready bits when operands arrive.
func (s *Scheduler) MarkReady(slot int, src1, src2 bool, cycle uint64) {
	e := &s.entries[slot]
	if !e.busy {
		panic("sched: MarkReady on free slot")
	}
	// A ready bit that is already set extends its run untouched.
	if src1 && e.values[FieldReady1] != 1 {
		s.flushField(slot, FieldReady1, cycle)
		e.values[FieldReady1] = 1
	}
	if src2 && e.values[FieldReady2] != 1 {
		s.flushField(slot, FieldReady2, cycle)
		e.values[FieldReady2] = 1
	}
}

// Issue releases the data-capture fields of a slot: the uop has left for
// execution, so SRC data and the immediate are dead from here on and can
// take repair values through one leftover allocate port.
func (s *Scheduler) Issue(slot int, cycle uint64) {
	s.advance(cycle)
	e := &s.entries[slot]
	if !e.busy || e.issued {
		panic("sched: bad Issue")
	}
	e.issued = true
	if e.live[FieldSRC1Data] {
		s.dataCount--
	}
	for _, f := range dataFields {
		// Only fields that actually held captured data change state
		// (busy-live → free); dead data cells keep their free run going.
		// The value survives the issue, so the run is touched, not
		// expanded.
		if e.live[f] {
			s.touchField(slot, f, cycle)
			e.live[f] = false
		}
	}
	if s.cfg.Plan == nil {
		return
	}
	if !s.takePort(cycle, true) {
		s.repairDiscarded++
		return
	}
	for _, f := range dataFields {
		s.repairField(slot, f, cycle)
	}
	s.repairWrites++
}

// Release frees the whole slot, applying the plan's repair values to the
// remaining fields through one leftover allocate port.
func (s *Scheduler) Release(slot int, cycle uint64) {
	s.advance(cycle)
	e := &s.entries[slot]
	if !e.busy {
		panic("sched: double release")
	}
	// Close the segments of the live fields (busy-live → free); dead
	// fields keep value and free state, so their runs extend across the
	// release. Values survive the release, so nothing expands here.
	for f := FieldID(0); f < NumFields; f++ {
		if e.live[f] {
			s.touchField(slot, f, cycle)
		}
	}
	e.busy = false
	if !e.issued && e.live[FieldSRC1Data] {
		s.dataCount--
	}
	s.busyCount--
	// The valid bit physically drops to 0 the moment the slot frees;
	// that is its unprotectable duty cycle — a real value change, so its
	// pending run expands first.
	s.flushField(slot, FieldValid, cycle)
	e.values[FieldValid] = 0
	if s.cfg.Plan != nil {
		if s.takePort(cycle, true) {
			for f := FieldID(0); f < NumFields; f++ {
				if f == FieldValid || fieldSpecs[f].DataField {
					continue // valid unprotectable; data fields repaired at issue
				}
				s.repairField(slot, f, cycle)
			}
			s.repairWrites++
		} else {
			s.repairDiscarded++
		}
	}
	s.freeList = append(s.freeList, slot)
}

// repairField writes the plan's repair value into a freed field, closing
// the field's pending run first when the value actually changes. The
// compiled mask program assembles the value word-at-a-time; only the
// K% bits tick their duty counters individually, in bit order, so the
// shared counter state advances exactly as the per-bit loop did.
func (s *Scheduler) repairField(slot int, f FieldID, cycle uint64) {
	p := &s.repair[f]
	if !p.present {
		return
	}
	e := &s.entries[slot]
	clk := s.isv[f]
	invert := clk.wantInvert()
	v := e.values[f]&p.stale | p.ones
	if invert {
		v |= s.rinv[f].Value() & p.isv
	} else {
		v |= e.values[f] & p.isv // keep stale
	}
	for _, kb := range p.kbits {
		if kb.ctr.Tick() != kb.zero {
			v |= kb.mask
		}
	}
	if v != e.values[f] {
		s.flushField(slot, f, cycle)
		e.values[f] = v
	}
	if invert && p.isv != 0 && !e.invContent[f] {
		e.invContent[f] = true
		clk.invertedCells++
	}
}

// dutyFor returns the shared duty counter for a K value, quantized to a
// 20-cycle period (the paper's "4 small counters of up to 5 bits each").
func (s *Scheduler) dutyFor(k float64) *mitigation.DutyCounter {
	key := int(k*20 + 0.5)
	if c, ok := s.duty[key]; ok {
		return c
	}
	c := mitigation.NewDutyCounter(20, float64(key)/20)
	s.duty[key] = c
	return c
}

// Finish closes all accounting at the end cycle: every pending run is
// expanded, and the narrow fields' value tables drain into the bias
// trackers — one Observe per distinct value ever held.
func (s *Scheduler) Finish(cycle uint64) {
	s.advance(cycle)
	for i := range s.entries {
		s.flushAll(i, cycle)
	}
	for f := FieldID(0); f < NumFields; f++ {
		t := s.valueTime[f]
		if t == nil {
			continue
		}
		for v := 0; v < len(t); v += 2 {
			if t[v] > 0 {
				s.bias[f].Observe(uint64(v/2), t[v])
				t[v] = 0
			}
			if t[v+1] > 0 {
				s.bias[f].ObserveFree(uint64(v/2), t[v+1])
				t[v+1] = 0
			}
		}
	}
}
