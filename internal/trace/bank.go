package trace

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Bank is an immutable set of workload recordings: every stride-th trace
// of the 531-trace Table 1 workload, synthesized exactly once and then
// shared by every sweep. Experiments that replay the same workload
// through many processor configurations (Fig 6 runs it twice, Fig 8
// three times, Table 3 once per scheme) draw fresh Cursors from the bank
// instead of re-synthesizing the streams.
type Bank struct {
	Length int // uops per trace
	Stride int // workload subsampling stride the bank was built with

	recs []*Recording
	ord  []int // workload ordinal (0..530) of each recording
}

// NewBank records every stride-th trace of the workload at the given
// replay length, preserving the suite mix exactly like SampleTraces.
// Recording fans out over the CPUs: each trace is an independent
// deterministic stream, so the bank's contents do not depend on the
// recording order.
func NewBank(length, stride int) *Bank {
	if stride <= 0 {
		panic("trace: stride must be positive")
	}
	type slot struct {
		id  SuiteID
		idx int
		ord int
	}
	var slots []slot
	k := 0
	for _, s := range suites {
		for i := 0; i < s.Count; i++ {
			if k%stride == 0 {
				slots = append(slots, slot{id: s.ID, idx: i, ord: k})
			}
			k++
		}
	}
	b := &Bank{Length: length, Stride: stride, recs: make([]*Recording, len(slots)), ord: make([]int, len(slots))}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(slots) {
		workers = len(slots)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(slots) {
					return
				}
				b.recs[i] = Record(slots[i].id, slots[i].idx, length)
				b.ord[i] = slots[i].ord
			}
		}()
	}
	wg.Wait()
	return b
}

// Recordings returns the bank's recordings in workload order. The slice
// is shared; callers must not modify it.
func (b *Bank) Recordings() []*Recording { return b.recs }

// Sources returns a fresh replay cursor per recording, in workload
// order.
func (b *Bank) Sources() []Source {
	out := make([]Source, len(b.recs))
	for i, r := range b.recs {
		out[i] = r.Cursor()
	}
	return out
}

// SampleSources returns cursors for every stride-th trace of the full
// workload — the subset SampleTraces(length, stride) would synthesize.
// stride must be a positive multiple of the bank's own stride so the
// requested traces are actually in the bank.
func (b *Bank) SampleSources(stride int) []Source {
	if stride <= 0 || stride%b.Stride != 0 {
		panic(fmt.Sprintf("trace: bank stride %d cannot sample stride %d (need a positive multiple)", b.Stride, stride))
	}
	var out []Source
	for i, r := range b.recs {
		if b.ord[i]%stride == 0 {
			out = append(out, r.Cursor())
		}
	}
	return out
}

// Bytes returns the total packed payload of the bank's recordings.
func (b *Bank) Bytes() int {
	n := 0
	for _, r := range b.recs {
		n += r.Bytes()
	}
	return n
}
