package trace

// generate synthesizes the next uop according to the suite profile.
func (t *Trace) generate() Uop {
	p := t.profile
	r := t.rng.Float64()
	var class Class
	switch {
	case r < p.LoadFrac:
		class = ClassLoad
	case r < p.LoadFrac+p.StoreFrac:
		class = ClassStore
	case r < p.LoadFrac+p.StoreFrac+p.BranchFrac:
		class = ClassBranch
	case r < p.LoadFrac+p.StoreFrac+p.BranchFrac+p.FPFrac:
		if t.rng.Float64() < 0.5 {
			class = ClassFPAdd
		} else {
			class = ClassFPMul
		}
	case r < p.LoadFrac+p.StoreFrac+p.BranchFrac+p.FPFrac+p.MulFrac:
		class = ClassMul
	default:
		class = ClassALU
	}

	u := Uop{Class: class, Dst: -1, Src1: -1, Src2: -1, TOS: t.tos}
	u.Opcode = t.opcode(class)
	if t.rng.Float64() < p.ICacheMissFrac {
		u.FetchBubble = uint8(6 + t.rng.Intn(10))
	}
	// Every uop latches the current MOB allocation pointer; memory uops
	// advance it. Slots are therefore used evenly over time, which is
	// what makes the scheduler's MOB id field self-balanced (§4.5).
	u.MOBid = t.mob

	if class.IsFP() {
		t.genFP(&u)
		return u
	}

	// Integer sources: bias towards recently written registers with the
	// profile's dependency distance, mimicking real ILP.
	u.Src1 = t.pickSrc()
	u.SrcVal1 = t.intRegs[u.Src1]
	if class != ClassLoad { // loads take one register + displacement
		u.Src2 = t.pickSrc()
		u.SrcVal2 = t.intRegs[u.Src2]
	}
	if t.rng.Float64() < p.ImmFrac {
		u.HasImm = true
		u.Imm = t.immediate()
		u.Src2 = -1
		u.SrcVal2 = 0
	}
	// Partial-register shifts (AH/BH/CH/DH accesses) are rare.
	u.Shift1 = t.rng.Float64() < p.PartialRegFrac
	u.Shift2 = t.rng.Float64() < p.PartialRegFrac

	switch class {
	case ClassLoad:
		u.Addr = t.address()
		u.Dst = t.pickDst()
		u.DstVal = t.value() // loaded value from the modelled data stream
		t.writeInt(u.Dst, u.DstVal)
		u.MOBid = t.nextMOB()
	case ClassStore:
		u.Addr = t.address()
		u.MOBid = t.nextMOB()
	case ClassBranch:
		u.Taken = t.rng.Float64() < p.BranchTaken
		u.Mispredict = t.rng.Float64() < p.MispredictFrac
		u.Flags = t.flags(u.SrcVal1)
	case ClassALU, ClassMul:
		u.Dst = t.pickDst()
		u.DstVal = t.combine(u.SrcVal1, u.SrcVal2, u.Imm, u.HasImm, class)
		t.writeInt(u.Dst, u.DstVal)
		u.Flags = t.flags(u.DstVal)
	}
	return u
}

// genFP fills in an FP uop: x87-style stack operands with 80-bit
// extended-precision bit patterns.
func (t *Trace) genFP(u *Uop) {
	u.Src1 = t.tos
	u.Src2 = (t.tos + 1 + t.rng.Intn(3)) % NumFPRegs
	u.SrcVal1, u.SrcExt1 = t.fpRegs[u.Src1], t.fpExts[u.Src1]
	u.SrcVal2, u.SrcExt2 = t.fpRegs[u.Src2], t.fpExts[u.Src2]
	u.Dst = t.tos
	lo, hi := t.fpValue()
	u.DstVal, u.DstExt = lo, hi
	t.fpRegs[u.Dst], t.fpExts[u.Dst] = lo, hi
	if t.rng.Float64() < 0.3 { // stack push/pop activity
		t.tos = (t.tos + 1) % NumFPRegs
	}
	u.TOS = t.tos
}

// pickSrc chooses a source register: geometrically distributed over the
// most recent destinations (dependency distance), falling back to a
// uniform pick.
func (t *Trace) pickSrc() int {
	if len(t.lastDst) > 0 && t.rng.Float64() < 0.7 {
		d := t.rng.Intn(t.profile.DepDistance)
		if d < len(t.lastDst) {
			return t.lastDst[len(t.lastDst)-1-d]
		}
	}
	return t.rng.Intn(NumIntRegs)
}

// pickDst chooses a destination register and records it for dependency
// tracking.
func (t *Trace) pickDst() int {
	d := t.rng.Intn(NumIntRegs)
	t.lastDst = append(t.lastDst, d)
	if len(t.lastDst) > 32 {
		t.lastDst = t.lastDst[1:]
	}
	return d
}

func (t *Trace) writeInt(reg int, v uint64) { t.intRegs[reg] = v }

// value draws an integer data value from the suite's biased mixture:
// exact zeros, small constants, sign-extended negatives, pointers and
// uniform residue. The mixture is what produces the 65–90% per-bit zero
// bias of §1.1 / Figure 6.
func (t *Trace) value() uint64 {
	p := t.profile
	r := t.rng.Float64()
	switch {
	case r < p.ZeroValFrac:
		return 0
	case r < p.ZeroValFrac+p.SmallValFrac:
		return uint64(t.rng.Intn(256))
	case r < p.ZeroValFrac+p.SmallValFrac+p.NegValFrac:
		// Small negative number: two's complement, high bits all ones.
		return uint64(uint32(-int32(t.rng.Intn(256) + 1)))
	case r < p.ZeroValFrac+p.SmallValFrac+p.NegValFrac+p.AddrValFrac:
		// Pointer-like: inside the working set's address range.
		return t.address()
	default:
		return uint64(t.rng.Uint32())
	}
}

// combine produces an ALU result value. Rather than emulating IA32
// semantics, it mixes the operand magnitudes so results inherit the
// value-bias structure of their inputs.
func (t *Trace) combine(a, b, imm uint64, hasImm bool, class Class) uint64 {
	if hasImm {
		b = imm
	}
	switch class {
	case ClassMul:
		return uint64(uint32(a) * uint32(b))
	default:
		switch t.rng.Intn(4) {
		case 0:
			return uint64(uint32(a) + uint32(b))
		case 1:
			return uint64(uint32(a) - uint32(b))
		case 2:
			return a & b
		default:
			return t.value() // mov/load-immediate style overwrite
		}
	}
}

// fpValue draws an 80-bit extended-precision pattern (lo 64 bits =
// mantissa, hi 16 bits = sign+exponent). Values cluster around small
// magnitudes: exponents near the bias, mantissas with trailing zeros —
// giving FP register bits the strong bias of Figure 6.
func (t *Trace) fpValue() (lo uint64, hi uint16) {
	r := t.rng.Float64()
	switch {
	case r < t.profile.ZeroValFrac:
		return 0, 0 // +0.0
	case r < t.profile.ZeroValFrac+0.3:
		// Small integral constant like 1.0, 2.0, 10.0: exponent near
		// bias 16383, mantissa mostly zeros after the leading 1.
		exp := uint16(16383 + t.rng.Intn(8))
		mant := uint64(1)<<63 | uint64(t.rng.Intn(16))<<59
		return mant, exp
	case r < t.profile.ZeroValFrac+0.6:
		// Computed value: exponent in a narrow band, random mantissa
		// high bits, trailing zeros common.
		exp := uint16(16383 - 10 + t.rng.Intn(21))
		mant := uint64(1)<<63 | (t.rng.Uint64() >> uint(1+t.rng.Intn(24)))
		return mant, exp
	default:
		sign := uint16(0)
		if t.rng.Float64() < 0.3 {
			sign = 1 << 15
		}
		exp := uint16(16383-100+t.rng.Intn(201)) | sign
		return uint64(1)<<63 | t.rng.Uint64()>>1, exp
	}
}

// immediate draws a 16-bit immediate: mostly tiny constants.
func (t *Trace) immediate() uint64 {
	r := t.rng.Float64()
	switch {
	case r < 0.4:
		return uint64(t.rng.Intn(8))
	case r < 0.8:
		return uint64(t.rng.Intn(256))
	default:
		return uint64(t.rng.Intn(1 << 16))
	}
}

// address draws a memory address: a temporal burst on the last-touched
// line, a sequential stream step, hot-set reuse or a cold-set spill, per
// the profile's locality knobs. Bursts model same-line field and spill
// accesses and are what puts ~90% of DL0 hits at the MRU position
// (§3.2.1).
func (t *Trace) address() uint64 {
	p := t.profile
	r := t.rng.Float64()
	var addr uint64
	switch {
	case r < p.BurstFrac:
		addr = t.lastAddr&^63 + uint64(t.rng.Intn(64))&^3
	case r < p.BurstFrac+p.StreamFrac:
		// Streams walk words, crossing into a new line every few
		// accesses rather than every access.
		t.curPos += uint64(4 + 4*t.rng.Intn(4))
		addr = t.curPos
	case r < p.BurstFrac+p.StreamFrac+p.HotFrac:
		addr = t.hot[t.rng.Intn(len(t.hot))] + uint64(t.rng.Intn(64))&^3
	default:
		addr = t.cold[t.rng.Intn(len(t.cold))] + uint64(t.rng.Intn(64))&^3
	}
	t.lastAddr = addr
	return addr
}

// flags computes the 6-bit flags field from a result value. Real flags
// are mostly zero (results are rarely zero, rarely negative), which is
// the near-100% bias §4.5 reports.
func (t *Trace) flags(v uint64) uint8 {
	var f uint8
	if uint32(v) == 0 {
		f |= FlagZF
	}
	if int32(v) < 0 {
		f |= FlagSF
	}
	// Carry/overflow/parity/aux: rare events synthesized directly.
	if t.rng.Float64() < 0.05 {
		f |= FlagCF
	}
	if t.rng.Float64() < 0.01 {
		f |= FlagOF
	}
	if popcount8(uint8(v))%2 == 0 && t.rng.Float64() < 0.2 {
		f |= FlagPF
	}
	if t.rng.Float64() < 0.02 {
		f |= FlagAF
	}
	return f
}

// nextMOB allocates the next memory-order-buffer slot, wrapping at 64
// (the 6-bit MOB id field of Table 2). Slots are used round-robin, which
// is why the field is self-balanced (§4.5).
func (t *Trace) nextMOB() int {
	id := t.mob
	t.mob = (t.mob + 1) % 64
	return id
}

// opcode returns a 12-bit encoding for the class. The encoding is the
// "smartly chosen" one of §4.5: class base patterns are complementary so
// no opcode bit is persistently biased.
func (t *Trace) opcode(c Class) uint16 {
	base := [numClasses]uint16{
		0x555, 0x2AA, 0x333, 0xCCC, 0x0F0, 0xF0F, 0x3C3,
	}[c]
	// Low two bits distinguish variants within the class.
	return (base &^ 3) | uint16(t.rng.Intn(4))
}

func popcount8(b uint8) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}
