package trace

import "fmt"

// OperandStream adapts a set of uop sources into a stream of integer ALU
// operand samples, for feeding the adder aging study (§4.3: "Inputs for
// the adder have been sampled from the traces in Table 1"). It cycles
// through the sources round-robin, drawing the operands of integer
// arithmetic uops; the carry-in models the add/sub and address-generation
// mix, where carry-in is rarely set (§1.1). Sources are usually replay
// Cursors over shared Recordings, so repeated adder studies pay no
// re-synthesis cost.
type OperandStream struct {
	sources []Source
	cur     int
	limit   int // uops in one full cycle through every source
}

// NewOperandStream returns a stream over the given sources. The sources
// are reset and replayed as needed; at least one is required.
func NewOperandStream(sources []Source) *OperandStream {
	if len(sources) == 0 {
		panic("trace: operand stream needs at least one source")
	}
	limit := len(sources)
	for _, s := range sources {
		s.Reset()
		limit += s.Len()
	}
	return &OperandStream{sources: sources, limit: limit}
}

// NextOperands returns the operand values and carry-in of the next
// integer arithmetic uop, skipping other classes. It satisfies
// adder.OperandSource. A source set without a single ALU/Mul uop cannot
// yield operands; the scan is bounded by one full cycle through every
// source so such a profile panics instead of spinning forever.
func (s *OperandStream) NextOperands() (a, b uint64, cin bool) {
	for tries := 0; tries <= s.limit; tries++ {
		src := s.sources[s.cur]
		u, ok := src.NextUop()
		if !ok {
			src.Reset()
			s.cur = (s.cur + 1) % len(s.sources)
			continue
		}
		switch u.Class {
		case ClassALU, ClassMul:
			a = u.SrcVal1 & 0xFFFFFFFF
			b = u.SrcVal2 & 0xFFFFFFFF
			if u.HasImm {
				b = u.Imm
			}
			// Carry-in is set only for the rare borrow/adc-style uops;
			// address generation and plain adds drive it to zero —
			// "such carry in is typically 0" more than 90% of the time.
			cin = u.Flags&FlagCF != 0
			return a, b, cin
		}
	}
	panic(fmt.Sprintf("trace: operand stream scanned %d uops across %d sources without finding an ALU/Mul uop",
		s.limit, len(s.sources)))
}
