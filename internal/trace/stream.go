package trace

// OperandStream adapts a set of traces into a stream of integer ALU
// operand samples, for feeding the adder aging study (§4.3: "Inputs for
// the adder have been sampled from the traces in Table 1"). It cycles
// through the traces round-robin, drawing the operands of integer
// arithmetic uops; the carry-in models the add/sub and address-generation
// mix, where carry-in is rarely set (§1.1).
type OperandStream struct {
	traces []*Trace
	cur    int
}

// NewOperandStream returns a stream over the given traces. The traces
// are reset and replayed as needed; at least one is required.
func NewOperandStream(traces []*Trace) *OperandStream {
	if len(traces) == 0 {
		panic("trace: operand stream needs at least one trace")
	}
	for _, t := range traces {
		t.Reset()
	}
	return &OperandStream{traces: traces}
}

// NextOperands returns the operand values and carry-in of the next
// integer arithmetic uop, skipping other classes. It satisfies
// adder.OperandSource.
func (s *OperandStream) NextOperands() (a, b uint64, cin bool) {
	for tries := 0; ; tries++ {
		t := s.traces[s.cur]
		u, ok := t.Next()
		if !ok {
			t.Reset()
			s.cur = (s.cur + 1) % len(s.traces)
			continue
		}
		switch u.Class {
		case ClassALU, ClassMul:
			a = u.SrcVal1 & 0xFFFFFFFF
			b = u.SrcVal2 & 0xFFFFFFFF
			if u.HasImm {
				b = u.Imm
			}
			// Carry-in is set only for the rare borrow/adc-style uops;
			// address generation and plain adds drive it to zero —
			// "such carry in is typically 0" more than 90% of the time.
			cin = u.Flags&FlagCF != 0
			return a, b, cin
		}
	}
}
