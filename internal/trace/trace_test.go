package trace

import (
	"testing"
)

func TestTable1Counts(t *testing.T) {
	if got := TotalTraces(); got != 531 {
		t.Fatalf("TotalTraces = %d, want 531 (Table 1)", got)
	}
	wants := map[string]int{
		"encoder": 62, "specfp2000": 41, "specint2000": 33, "kernels": 53,
		"multimedia": 85, "office": 75, "productivity": 45, "server": 55,
		"workstation": 49, "spec2006": 33,
	}
	if len(Suites()) != int(NumSuites) {
		t.Fatalf("got %d suites, want %d", len(Suites()), NumSuites)
	}
	for _, s := range Suites() {
		if want, ok := wants[s.Name]; !ok || s.Count != want {
			t.Errorf("suite %s count = %d, want %d", s.Name, s.Count, want)
		}
	}
}

func TestSuiteLookups(t *testing.T) {
	s := SuiteByID(Server)
	if s.Name != "server" || s.Description != "TPC-C" {
		t.Errorf("SuiteByID(Server) = %+v", s)
	}
	if s2, ok := SuiteByName("office"); !ok || s2.ID != Office {
		t.Error("SuiteByName(office) failed")
	}
	if _, ok := SuiteByName("nope"); ok {
		t.Error("SuiteByName should fail for unknown suites")
	}
	defer func() {
		if recover() == nil {
			t.Error("SuiteByID(-1) did not panic")
		}
	}()
	SuiteByID(-1)
}

func TestTraceDeterminism(t *testing.T) {
	a := NewTrace(Multimedia, 3, 500)
	b := NewTrace(Multimedia, 3, 500)
	for i := 0; i < 500; i++ {
		ua, oka := a.Next()
		ub, okb := b.Next()
		if oka != okb || ua != ub {
			t.Fatalf("uop %d differs between identical traces", i)
		}
	}
	if _, ok := a.Next(); ok {
		t.Fatal("trace must end after Length uops")
	}
	// Reset replays identically.
	a.Reset()
	b.Reset()
	for i := 0; i < 100; i++ {
		ua, _ := a.Next()
		ub, _ := b.Next()
		if ua != ub {
			t.Fatalf("replay diverged at uop %d", i)
		}
	}
}

func TestTracesDifferAcrossIndices(t *testing.T) {
	a := NewTrace(Office, 0, 200)
	b := NewTrace(Office, 1, 200)
	same := 0
	for i := 0; i < 200; i++ {
		ua, _ := a.Next()
		ub, _ := b.Next()
		if ua == ub {
			same++
		}
	}
	if same > 100 {
		t.Errorf("traces 0 and 1 share %d/200 uops; should differ", same)
	}
}

func TestNewTraceValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewTrace(Office, -1, 10) },
		func() { NewTrace(Office, 75, 10) }, // office has 75 traces: 0..74
		func() { NewTrace(Office, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestInstructionMixTracksProfile(t *testing.T) {
	tr := NewTrace(SpecINT2000, 0, 20000)
	counts := map[Class]int{}
	for {
		u, ok := tr.Next()
		if !ok {
			break
		}
		counts[u.Class]++
	}
	total := float64(tr.Length)
	loadFrac := float64(counts[ClassLoad]) / total
	if loadFrac < 0.15 || loadFrac > 0.40 {
		t.Errorf("load fraction = %.3f, expected near profile (~0.26)", loadFrac)
	}
	if counts[ClassFPAdd]+counts[ClassFPMul] > int(total)/20 {
		t.Errorf("specint2000 should have almost no FP uops, got %d",
			counts[ClassFPAdd]+counts[ClassFPMul])
	}
	if counts[ClassBranch] == 0 || counts[ClassStore] == 0 {
		t.Error("mix missing branches or stores")
	}
}

func TestIntegerValueBias(t *testing.T) {
	// §1.1: per-bit zero bias of integer data should be high — between
	// roughly 65% and 90% across all 32 bits.
	tr := NewTrace(SpecINT2000, 1, 30000)
	zero := make([]int, 32)
	n := 0
	for {
		u, ok := tr.Next()
		if !ok {
			break
		}
		if u.Dst < 0 || u.Class.IsFP() {
			continue
		}
		n++
		for b := 0; b < 32; b++ {
			if u.DstVal&(1<<uint(b)) == 0 {
				zero[b]++
			}
		}
	}
	if n == 0 {
		t.Fatal("no integer results generated")
	}
	for b := 0; b < 32; b++ {
		bias := float64(zero[b]) / float64(n)
		if bias < 0.55 || bias > 0.99 {
			t.Errorf("bit %d zero bias = %.3f, want in [0.55, 0.99]", b, bias)
		}
	}
}

func TestFlagsMostlyZero(t *testing.T) {
	// §4.5: flags show almost 100% bias. ZF/OF/AF must be rare.
	tr := NewTrace(Multimedia, 0, 20000)
	var zf, of, n int
	for {
		u, ok := tr.Next()
		if !ok {
			break
		}
		if u.Class != ClassALU && u.Class != ClassMul {
			continue
		}
		n++
		if u.Flags&FlagZF != 0 {
			zf++
		}
		if u.Flags&FlagOF != 0 {
			of++
		}
	}
	if n == 0 {
		t.Fatal("no ALU uops")
	}
	if frac := float64(zf) / float64(n); frac > 0.45 {
		t.Errorf("ZF set fraction = %.3f, should be well below half", frac)
	}
	if frac := float64(of) / float64(n); frac > 0.05 {
		t.Errorf("OF set fraction = %.3f, should be rare", frac)
	}
}

func TestMOBRoundRobin(t *testing.T) {
	tr := NewTrace(Server, 0, 5000)
	seen := map[int]int{}
	prev := -1
	for {
		u, ok := tr.Next()
		if !ok {
			break
		}
		if !u.Class.IsMem() {
			continue
		}
		if u.MOBid < 0 || u.MOBid > 63 {
			t.Fatalf("MOB id %d out of 6-bit range", u.MOBid)
		}
		if prev >= 0 && u.MOBid != (prev+1)%64 {
			t.Fatalf("MOB ids not round-robin: %d after %d", u.MOBid, prev)
		}
		prev = u.MOBid
		seen[u.MOBid]++
	}
	if len(seen) != 64 {
		t.Errorf("only %d MOB slots used, want all 64 (self-balanced field)", len(seen))
	}
}

func TestAddressesWithinWorkingSet(t *testing.T) {
	tr := NewTrace(Office, 2, 10000)
	lines := map[uint64]bool{}
	for {
		u, ok := tr.Next()
		if !ok {
			break
		}
		if u.Class.IsMem() {
			lines[u.Addr>>6] = true
		}
	}
	if len(lines) == 0 {
		t.Fatal("no memory accesses")
	}
	// Office has a small working set; the distinct-line count must stay
	// bounded (streaming adds a linear component).
	if len(lines) > 4000 {
		t.Errorf("office trace touched %d lines; working set should be small", len(lines))
	}
}

func TestServerTouchesManyPages(t *testing.T) {
	small := pagesTouched(t, NewTrace(Office, 0, 20000))
	big := pagesTouched(t, NewTrace(Server, 0, 20000))
	if big <= small {
		t.Errorf("server pages (%d) should exceed office pages (%d)", big, small)
	}
	// The server page working set should be in the neighbourhood of a
	// 128-entry DTLB so the smaller 64/32-entry configurations of
	// Table 3 feel pressure.
	if big < 30 {
		t.Errorf("server should pressure small DTLBs, touched only %d pages", big)
	}
}

func pagesTouched(t *testing.T, tr *Trace) int {
	t.Helper()
	pages := map[uint64]bool{}
	for {
		u, ok := tr.Next()
		if !ok {
			break
		}
		if u.Class.IsMem() {
			pages[u.Addr>>12] = true
		}
	}
	return len(pages)
}

func TestOpcodeTwelveBits(t *testing.T) {
	tr := NewTrace(Encoder, 0, 2000)
	for {
		u, ok := tr.Next()
		if !ok {
			break
		}
		if u.Opcode >= 1<<12 {
			t.Fatalf("opcode %#x exceeds 12 bits", u.Opcode)
		}
	}
}

func TestSampleTraces(t *testing.T) {
	all := SampleTraces(100, 1)
	if len(all) != 531 {
		t.Errorf("stride 1 = %d traces, want 531", len(all))
	}
	some := SampleTraces(100, 10)
	if len(some) < 50 || len(some) > 60 {
		t.Errorf("stride 10 = %d traces, want ~53", len(some))
	}
	defer func() {
		if recover() == nil {
			t.Error("stride 0 did not panic")
		}
	}()
	SampleTraces(100, 0)
}

func TestOperandStream(t *testing.T) {
	s := NewOperandStream([]Source{NewTrace(Kernels, 0, 300)})
	cinSet, n := 0, 2000
	for i := 0; i < n; i++ {
		a, b, cin := s.NextOperands()
		_ = a
		_ = b
		if cin {
			cinSet++
		}
	}
	// Carry-in must be "0" more than 90% of the time (§1.1).
	if frac := float64(cinSet) / float64(n); frac > 0.10 {
		t.Errorf("carry-in set fraction = %.3f, want < 0.10", frac)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty stream did not panic")
		}
	}()
	NewOperandStream(nil)
}

func TestTraceName(t *testing.T) {
	if got := NewTrace(Server, 12, 10).Name(); got != "server/12" {
		t.Errorf("Name = %q", got)
	}
}

func TestClassHelpers(t *testing.T) {
	if !ClassLoad.IsMem() || ClassALU.IsMem() {
		t.Error("IsMem wrong")
	}
	if !ClassFPAdd.IsFP() || ClassMul.IsFP() {
		t.Error("IsFP wrong")
	}
	if ClassALU.String() != "alu" || Class(99).String() == "" {
		t.Error("String wrong")
	}
	for c := Class(0); c < numClasses; c++ {
		if c.Latency() < 1 || c.Latency() > 31 {
			t.Errorf("%v latency %d outside 5-bit field", c, c.Latency())
		}
		if c.Port() < 0 || c.Port() > 4 {
			t.Errorf("%v port %d outside 0..4", c, c.Port())
		}
	}
}
