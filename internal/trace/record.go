package trace

import "fmt"

// Source is a replayable uop stream: the common face of the synthesizing
// generator (*Trace) and the packed recording replayer (*Cursor). The
// pipeline and the experiment drivers consume Sources, so a workload can
// be synthesized once and replayed from a Recording for every subsequent
// configuration sweep.
type Source interface {
	// Name identifies the stream, e.g. "server/12".
	Name() string
	// Len is the number of uops one full replay yields.
	Len() int
	// Reset rewinds to the first uop; replays are identical.
	Reset()
	// NextUop returns a view of the next uop and true, or nil and false
	// at end of stream. The view is only valid until the next NextUop or
	// Reset call and must not be mutated or retained.
	NextUop() (*Uop, bool)
	// Fork returns an independent Source producing the identical stream,
	// for concurrent consumers. Fork is safe to call concurrently.
	Fork() Source
}

// Statically assert both implementations.
var (
	_ Source = (*Trace)(nil)
	_ Source = (*Cursor)(nil)
)

// Packed boolean flags of a recorded uop.
const (
	recHasImm = 1 << iota
	recTaken
	recMispredict
	recShift1
	recShift2
)

// Recording is a trace captured once into a packed structure-of-arrays
// buffer: ~51 bytes per uop instead of the ~136-byte Uop struct, with
// the narrow fields stored at their architectural widths (16-bit
// immediates, byte-sized register indices, TOS and MOB ids, booleans
// folded into one flag byte). A Recording is immutable after Record
// returns; any number of Cursors may replay it concurrently.
type Recording struct {
	suite  SuiteID
	index  int
	name   string
	length int

	class  []uint8
	dst    []int8
	src1   []int8
	src2   []int8
	sv1    []uint64
	sv2    []uint64
	dv     []uint64
	se1    []uint16
	se2    []uint16
	de     []uint16
	imm    []uint16
	addr   []uint64
	bubble []uint8
	flags  []uint8
	bools  []uint8
	mob    []uint8
	tos    []uint8
	opcode []uint16
}

// Record synthesizes the deterministic trace (id, idx, length) once and
// returns its packed recording. The generator remains the oracle: a
// Cursor over the result replays the bit-identical uop sequence.
func Record(id SuiteID, idx, length int) *Recording {
	t := NewTrace(id, idx, length)
	r := newRecording(id, idx, t.Name(), length)
	for {
		u, ok := t.Next()
		if !ok {
			break
		}
		r.append(&u)
	}
	return r
}

func newRecording(id SuiteID, idx int, name string, length int) *Recording {
	return &Recording{
		suite: id, index: idx, name: name,
		class:  make([]uint8, 0, length),
		dst:    make([]int8, 0, length),
		src1:   make([]int8, 0, length),
		src2:   make([]int8, 0, length),
		sv1:    make([]uint64, 0, length),
		sv2:    make([]uint64, 0, length),
		dv:     make([]uint64, 0, length),
		se1:    make([]uint16, 0, length),
		se2:    make([]uint16, 0, length),
		de:     make([]uint16, 0, length),
		imm:    make([]uint16, 0, length),
		addr:   make([]uint64, 0, length),
		bubble: make([]uint8, 0, length),
		flags:  make([]uint8, 0, length),
		bools:  make([]uint8, 0, length),
		mob:    make([]uint8, 0, length),
		tos:    make([]uint8, 0, length),
		opcode: make([]uint16, 0, length),
	}
}

// append packs one uop. The narrow columns hold the fields at their
// architectural widths, so any generator change that overflows them is a
// recording bug — fail loudly rather than truncate.
func (r *Recording) append(u *Uop) {
	checkRange := func(name string, v, lo, hi int) {
		if v < lo || v > hi {
			panic(fmt.Sprintf("trace: recording %s: uop %d field %s = %d outside packed range [%d,%d]",
				r.name, r.length, name, v, lo, hi))
		}
	}
	checkRange("dst", u.Dst, -1, NumIntRegs-1)
	checkRange("src1", u.Src1, -1, NumIntRegs-1)
	checkRange("src2", u.Src2, -1, NumIntRegs-1)
	checkRange("mob", u.MOBid, 0, 63)
	checkRange("tos", u.TOS, 0, NumFPRegs-1)
	if u.Imm >= 1<<16 {
		panic(fmt.Sprintf("trace: recording %s: uop %d immediate %#x exceeds 16 bits", r.name, r.length, u.Imm))
	}

	r.class = append(r.class, uint8(u.Class))
	r.dst = append(r.dst, int8(u.Dst))
	r.src1 = append(r.src1, int8(u.Src1))
	r.src2 = append(r.src2, int8(u.Src2))
	r.sv1 = append(r.sv1, u.SrcVal1)
	r.sv2 = append(r.sv2, u.SrcVal2)
	r.dv = append(r.dv, u.DstVal)
	r.se1 = append(r.se1, u.SrcExt1)
	r.se2 = append(r.se2, u.SrcExt2)
	r.de = append(r.de, u.DstExt)
	r.imm = append(r.imm, uint16(u.Imm))
	r.addr = append(r.addr, u.Addr)
	r.bubble = append(r.bubble, u.FetchBubble)
	r.flags = append(r.flags, u.Flags)
	var b uint8
	if u.HasImm {
		b |= recHasImm
	}
	if u.Taken {
		b |= recTaken
	}
	if u.Mispredict {
		b |= recMispredict
	}
	if u.Shift1 {
		b |= recShift1
	}
	if u.Shift2 {
		b |= recShift2
	}
	r.bools = append(r.bools, b)
	r.mob = append(r.mob, uint8(u.MOBid))
	r.tos = append(r.tos, uint8(u.TOS))
	r.opcode = append(r.opcode, u.Opcode)
	r.length++
}

// uopAt unpacks uop i into u, overwriting every field.
func (r *Recording) uopAt(i int, u *Uop) {
	u.Class = Class(r.class[i])
	u.Dst = int(r.dst[i])
	u.Src1 = int(r.src1[i])
	u.Src2 = int(r.src2[i])
	u.SrcVal1 = r.sv1[i]
	u.SrcVal2 = r.sv2[i]
	u.DstVal = r.dv[i]
	u.SrcExt1 = r.se1[i]
	u.SrcExt2 = r.se2[i]
	u.DstExt = r.de[i]
	u.Imm = uint64(r.imm[i])
	u.Addr = r.addr[i]
	u.FetchBubble = r.bubble[i]
	u.Flags = r.flags[i]
	b := r.bools[i]
	u.HasImm = b&recHasImm != 0
	u.Taken = b&recTaken != 0
	u.Mispredict = b&recMispredict != 0
	u.Shift1 = b&recShift1 != 0
	u.Shift2 = b&recShift2 != 0
	u.MOBid = int(r.mob[i])
	u.TOS = int(r.tos[i])
	u.Opcode = r.opcode[i]
}

// SuiteID returns the recorded trace's suite.
func (r *Recording) SuiteID() SuiteID { return r.suite }

// Index returns the recorded trace's index within its suite.
func (r *Recording) Index() int { return r.index }

// Name identifies the recording, e.g. "server/12".
func (r *Recording) Name() string { return r.name }

// Len returns the number of recorded uops.
func (r *Recording) Len() int { return r.length }

// recordedUopBytes is the packed payload per uop, summed from the
// column element sizes: four uint64 columns (source values, destination
// value, address), five uint16 columns (the three FP extensions, the
// immediate, the opcode) and nine byte columns (class, three register
// indices, fetch bubble, flags, folded booleans, MOB id, TOS). Keep it
// in sync with the Recording columns.
const recordedUopBytes = 4*8 + 5*2 + 9*1

// Bytes returns the packed payload size of the recording, for memory
// budgeting (slice headers excluded).
func (r *Recording) Bytes() int { return r.length * recordedUopBytes }

// Cursor returns a fresh replayer positioned at the first uop.
func (r *Recording) Cursor() *Cursor { return &Cursor{rec: r} }

// Cursor replays a Recording with zero per-uop allocation: NextUop
// unpacks into an internal scratch Uop and hands out a view of it.
// A Cursor is single-consumer; concurrent readers each Fork their own.
type Cursor struct {
	rec *Recording
	pos int
	u   Uop
}

// Name identifies the underlying recording.
func (c *Cursor) Name() string { return c.rec.name }

// Len returns the recorded uop count.
func (c *Cursor) Len() int { return c.rec.length }

// Pos returns how many uops have been produced since the last Reset.
func (c *Cursor) Pos() int { return c.pos }

// Recording returns the shared immutable recording.
func (c *Cursor) Recording() *Recording { return c.rec }

// Reset rewinds the cursor to the first uop.
func (c *Cursor) Reset() { c.pos = 0 }

// NextUop returns a view of the next uop, valid until the next NextUop
// or Reset call.
func (c *Cursor) NextUop() (*Uop, bool) {
	if c.pos >= c.rec.length {
		return nil, false
	}
	c.rec.uopAt(c.pos, &c.u)
	c.pos++
	return &c.u, true
}

// Fork returns a fresh cursor over the same shared recording.
func (c *Cursor) Fork() Source { return c.rec.Cursor() }

// Sources adapts a slice of generator traces to the Source interface.
func Sources(traces []*Trace) []Source {
	out := make([]Source, len(traces))
	for i, t := range traces {
		out[i] = t
	}
	return out
}
