package trace

import (
	"fmt"
	"math/rand"
)

// SuiteID enumerates the benchmark suites of paper Table 1.
type SuiteID int

// The ten suites of Table 1.
const (
	Encoder SuiteID = iota
	SpecFP2000
	SpecINT2000
	Kernels
	Multimedia
	Office
	Productivity
	Server
	Workstation
	SPEC2006
	NumSuites
)

// Profile is the statistical recipe a suite's traces are generated from.
// All fractions are probabilities per uop; see gen.go for how each knob
// is consumed.
type Profile struct {
	// Instruction mix.
	LoadFrac, StoreFrac, BranchFrac, FPFrac, MulFrac float64
	// Fraction of integer uops that carry an immediate.
	ImmFrac float64
	// Branch taken probability.
	BranchTaken float64
	// Integer value mixture (remainder is uniform 32-bit).
	ZeroValFrac, SmallValFrac, NegValFrac, AddrValFrac float64
	// Branch misprediction probability (drains the pipeline window).
	MispredictFrac float64
	// Probability a uop's fetch suffers an I-cache miss bubble.
	ICacheMissFrac float64
	// Memory behaviour.
	WorkingSetLines int     // distinct cold cache lines
	HotFrac         float64 // probability an access hits the hot subset
	StreamFrac      float64 // probability an access streams sequentially
	BurstFrac       float64 // probability an access re-touches the last line
	PageSpread      int     // cold-line stride in 64B lines (1 = dense)
	// Dependency distance: mean distance (in uops) to the producer of a
	// source operand; smaller = less ILP.
	DepDistance int
	// Probability a source uses a partial register (AH/BH/CH/DH),
	// setting the scheduler's shift1/shift2 bits.
	PartialRegFrac float64
}

// Suite is one row of Table 1.
type Suite struct {
	ID          SuiteID
	Name        string
	Description string
	Count       int // number of traces in the workload
	Profile     Profile
}

var suites = []Suite{
	{Encoder, "encoder", "Audio/video encoding", 62, Profile{
		LoadFrac: 0.28, StoreFrac: 0.12, BranchFrac: 0.10, FPFrac: 0.05, MulFrac: 0.06,
		ImmFrac: 0.30, BranchTaken: 0.62, MispredictFrac: 0.04, ICacheMissFrac: 0.008,
		ZeroValFrac: 0.25, SmallValFrac: 0.35, NegValFrac: 0.05, AddrValFrac: 0.10,
		WorkingSetLines: 384, HotFrac: 0.55, StreamFrac: 0.15, BurstFrac: 0.5, PageSpread: 2,
		DepDistance: 6, PartialRegFrac: 0.03,
	}},
	{SpecFP2000, "specfp2000", "Floating-point specs", 41, Profile{
		LoadFrac: 0.30, StoreFrac: 0.10, BranchFrac: 0.05, FPFrac: 0.30, MulFrac: 0.02,
		ImmFrac: 0.20, BranchTaken: 0.70, MispredictFrac: 0.02, ICacheMissFrac: 0.004,
		ZeroValFrac: 0.20, SmallValFrac: 0.25, NegValFrac: 0.03, AddrValFrac: 0.10,
		WorkingSetLines: 1024, HotFrac: 0.35, StreamFrac: 0.35, BurstFrac: 0.45, PageSpread: 2,
		DepDistance: 10, PartialRegFrac: 0.01,
	}},
	{SpecINT2000, "specint2000", "Integer specs", 33, Profile{
		LoadFrac: 0.26, StoreFrac: 0.11, BranchFrac: 0.14, FPFrac: 0.00, MulFrac: 0.02,
		ImmFrac: 0.32, BranchTaken: 0.60, MispredictFrac: 0.06, ICacheMissFrac: 0.012,
		ZeroValFrac: 0.30, SmallValFrac: 0.35, NegValFrac: 0.06, AddrValFrac: 0.12,
		WorkingSetLines: 512, HotFrac: 0.50, StreamFrac: 0.10, BurstFrac: 0.5, PageSpread: 2,
		DepDistance: 5, PartialRegFrac: 0.04,
	}},
	{Kernels, "kernels", "VectorAdd, FIRs", 53, Profile{
		LoadFrac: 0.35, StoreFrac: 0.15, BranchFrac: 0.06, FPFrac: 0.10, MulFrac: 0.05,
		ImmFrac: 0.25, BranchTaken: 0.85, MispredictFrac: 0.01, ICacheMissFrac: 0.002,
		ZeroValFrac: 0.20, SmallValFrac: 0.50, NegValFrac: 0.02, AddrValFrac: 0.08,
		WorkingSetLines: 256, HotFrac: 0.30, StreamFrac: 0.50, BurstFrac: 0.35, PageSpread: 1,
		DepDistance: 12, PartialRegFrac: 0.01,
	}},
	{Multimedia, "multimedia", "WMedia, photoshop", 85, Profile{
		LoadFrac: 0.27, StoreFrac: 0.12, BranchFrac: 0.11, FPFrac: 0.08, MulFrac: 0.05,
		ImmFrac: 0.30, BranchTaken: 0.63, MispredictFrac: 0.05, ICacheMissFrac: 0.012,
		ZeroValFrac: 0.30, SmallValFrac: 0.35, NegValFrac: 0.04, AddrValFrac: 0.10,
		WorkingSetLines: 448, HotFrac: 0.50, StreamFrac: 0.20, BurstFrac: 0.5, PageSpread: 2,
		DepDistance: 7, PartialRegFrac: 0.03,
	}},
	{Office, "office", "Excel, Word, Powerpoint", 75, Profile{
		LoadFrac: 0.24, StoreFrac: 0.12, BranchFrac: 0.17, FPFrac: 0.01, MulFrac: 0.01,
		ImmFrac: 0.35, BranchTaken: 0.58, MispredictFrac: 0.07, ICacheMissFrac: 0.024,
		ZeroValFrac: 0.35, SmallValFrac: 0.35, NegValFrac: 0.05, AddrValFrac: 0.15,
		WorkingSetLines: 160, HotFrac: 0.65, StreamFrac: 0.05, BurstFrac: 0.6, PageSpread: 4,
		DepDistance: 4, PartialRegFrac: 0.05,
	}},
	{Productivity, "productivity", "Internet contents creation", 45, Profile{
		LoadFrac: 0.25, StoreFrac: 0.12, BranchFrac: 0.15, FPFrac: 0.02, MulFrac: 0.02,
		ImmFrac: 0.33, BranchTaken: 0.59, MispredictFrac: 0.06, ICacheMissFrac: 0.02,
		ZeroValFrac: 0.32, SmallValFrac: 0.34, NegValFrac: 0.05, AddrValFrac: 0.13,
		WorkingSetLines: 224, HotFrac: 0.60, StreamFrac: 0.08, BurstFrac: 0.55, PageSpread: 4,
		DepDistance: 5, PartialRegFrac: 0.04,
	}},
	{Server, "server", "TPC-C", 55, Profile{
		LoadFrac: 0.30, StoreFrac: 0.14, BranchFrac: 0.13, FPFrac: 0.00, MulFrac: 0.01,
		ImmFrac: 0.28, BranchTaken: 0.57, MispredictFrac: 0.06, ICacheMissFrac: 0.03,
		ZeroValFrac: 0.28, SmallValFrac: 0.30, NegValFrac: 0.04, AddrValFrac: 0.20,
		WorkingSetLines: 1024, HotFrac: 0.40, StreamFrac: 0.05, BurstFrac: 0.45, PageSpread: 3,
		DepDistance: 4, PartialRegFrac: 0.03,
	}},
	{Workstation, "workstation", "CAD, rendering", 49, Profile{
		LoadFrac: 0.28, StoreFrac: 0.11, BranchFrac: 0.09, FPFrac: 0.18, MulFrac: 0.04,
		ImmFrac: 0.24, BranchTaken: 0.66, MispredictFrac: 0.03, ICacheMissFrac: 0.008,
		ZeroValFrac: 0.22, SmallValFrac: 0.30, NegValFrac: 0.03, AddrValFrac: 0.12,
		WorkingSetLines: 768, HotFrac: 0.45, StreamFrac: 0.25, BurstFrac: 0.45, PageSpread: 2,
		DepDistance: 8, PartialRegFrac: 0.02,
	}},
	{SPEC2006, "spec2006", "Specs", 33, Profile{
		LoadFrac: 0.28, StoreFrac: 0.12, BranchFrac: 0.12, FPFrac: 0.12, MulFrac: 0.03,
		ImmFrac: 0.28, BranchTaken: 0.61, MispredictFrac: 0.05, ICacheMissFrac: 0.016,
		ZeroValFrac: 0.26, SmallValFrac: 0.32, NegValFrac: 0.05, AddrValFrac: 0.12,
		WorkingSetLines: 1024, HotFrac: 0.45, StreamFrac: 0.15, BurstFrac: 0.5, PageSpread: 3,
		DepDistance: 6, PartialRegFrac: 0.03,
	}},
}

// Suites returns all suites in Table 1 order. The returned slice is
// shared; callers must not modify it.
func Suites() []Suite { return suites }

// SuiteByID returns the suite with the given id.
func SuiteByID(id SuiteID) Suite {
	if id < 0 || id >= NumSuites {
		panic(fmt.Sprintf("trace: unknown suite id %d", id))
	}
	return suites[id]
}

// SuiteByName returns the suite with the given name and true, or false if
// no suite matches.
func SuiteByName(name string) (Suite, bool) {
	for _, s := range suites {
		if s.Name == name {
			return s, true
		}
	}
	return Suite{}, false
}

// TotalTraces returns the workload size: 531 traces, as in Table 1.
func TotalTraces() int {
	n := 0
	for _, s := range suites {
		n += s.Count
	}
	return n
}

// jitter perturbs a suite profile deterministically per trace so traces
// within a suite differ, the way 62 different encoder runs would.
func jitter(p Profile, rng *rand.Rand) Profile {
	scale := func(f float64, spread float64) float64 {
		v := f * (1 + spread*(rng.Float64()*2-1))
		if v < 0 {
			v = 0
		}
		if v > 0.9 {
			v = 0.9
		}
		return v
	}
	p.LoadFrac = scale(p.LoadFrac, 0.15)
	p.StoreFrac = scale(p.StoreFrac, 0.15)
	p.BranchFrac = scale(p.BranchFrac, 0.15)
	p.FPFrac = scale(p.FPFrac, 0.25)
	p.MulFrac = scale(p.MulFrac, 0.25)
	p.ImmFrac = scale(p.ImmFrac, 0.10)
	p.BranchTaken = 0.4 + 0.55*scale(p.BranchTaken, 0.10)/0.95
	p.ZeroValFrac = scale(p.ZeroValFrac, 0.20)
	p.SmallValFrac = scale(p.SmallValFrac, 0.20)
	p.HotFrac = scale(p.HotFrac, 0.20)
	p.StreamFrac = scale(p.StreamFrac, 0.20)
	ws := float64(p.WorkingSetLines) * (0.5 + rng.Float64()*1.5)
	p.WorkingSetLines = int(ws)
	if p.WorkingSetLines < 16 {
		p.WorkingSetLines = 16
	}
	return p
}

// AllTraces instantiates the full 531-trace workload with the given
// replay length per trace.
func AllTraces(length int) []*Trace {
	var out []*Trace
	for _, s := range suites {
		for i := 0; i < s.Count; i++ {
			out = append(out, NewTrace(s.ID, i, length))
		}
	}
	return out
}

// SampleTraces returns every stride-th trace of the workload, preserving
// suite mix, for quicker experiments. Stride must be positive.
func SampleTraces(length, stride int) []*Trace {
	if stride <= 0 {
		panic("trace: stride must be positive")
	}
	var out []*Trace
	k := 0
	for _, s := range suites {
		for i := 0; i < s.Count; i++ {
			if k%stride == 0 {
				out = append(out, NewTrace(s.ID, i, length))
			}
			k++
		}
	}
	return out
}
